// Command benchjson converts `go test -bench` text output on stdin to
// a JSON document on stdout, so CI can archive benchmark runs (e.g.
// BENCH_simmpi.json) in a machine-readable form. The text lines are
// preserved verbatim in the document too, so the original file remains
// benchstat-comparable: feed the "lines" entries back to benchstat to
// diff two archived runs.
//
// Usage:
//
//	go test -bench=SimMPI -benchtime=1x -run='^$' . | go run ./tools/benchjson > BENCH_simmpi.json
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line: the stable sub-benchmark name,
// the iteration count and every reported metric keyed by its unit
// (ns/op, events/s, B/op, ...).
type result struct {
	Name    string             `json:"name"`
	N       int64              `json:"n"`
	Metrics map[string]float64 `json:"metrics"`
}

type document struct {
	Context map[string]string `json:"context"` // goos, goarch, pkg, cpu
	Results []result          `json:"results"`
	Lines   []string          `json:"lines"` // verbatim benchmark lines, for benchstat
}

func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], N: n, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// run converts benchmark text on r to the JSON document on w.
// Malformed benchmark-shaped lines are skipped, not fatal — `go test
// -bench` output legitimately interleaves PASS/ok/log noise — but a
// run that yields zero parsable results is an error, so an upstream
// benchmark failure cannot produce an empty-but-plausible artifact.
func run(r io.Reader, w io.Writer) error {
	doc := document{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if rest, ok := strings.CutPrefix(line, key+": "); ok {
				doc.Context[key] = rest
			}
		}
		if r, ok := parseLine(line); ok {
			doc.Results = append(doc.Results, r)
			doc.Lines = append(doc.Lines, line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(doc.Results) == 0 {
		return errors.New("no benchmark lines on stdin")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
