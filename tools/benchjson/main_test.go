package main

import (
	"reflect"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		want result
		ok   bool
	}{
		{
			line: "BenchmarkSimMPIRankScaling/ranks=32-4 \t 100\t 4532780 ns/op\t 836802 events/s",
			want: result{
				Name: "BenchmarkSimMPIRankScaling/ranks=32-4",
				N:    100,
				Metrics: map[string]float64{
					"ns/op":    4532780,
					"events/s": 836802,
				},
			},
			ok: true,
		},
		{
			line: "BenchmarkX 3 120 ns/op 16 B/op 2 allocs/op",
			want: result{
				Name: "BenchmarkX",
				N:    3,
				Metrics: map[string]float64{
					"ns/op":     120,
					"B/op":      16,
					"allocs/op": 2,
				},
			},
			ok: true,
		},
		{line: "PASS", ok: false},
		{line: "ok  \tmontblanc\t1.187s", ok: false},
		{line: "goos: linux", ok: false},
		{line: "", ok: false},
	}
	for _, tc := range cases {
		got, ok := parseLine(tc.line)
		if ok != tc.ok {
			t.Errorf("parseLine(%q) ok = %v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if ok && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseLine(%q) = %+v, want %+v", tc.line, got, tc.want)
		}
	}
}
