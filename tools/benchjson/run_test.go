package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// These tests pin the unhappy paths: benchjson feeds CI artifacts, so
// a malformed or empty benchmark run must fail loudly instead of
// archiving a plausible-looking empty document.

func TestRunEmptyInputFails(t *testing.T) {
	var out strings.Builder
	err := run(strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "no benchmark lines") {
		t.Fatalf("empty input: err = %v, want 'no benchmark lines'", err)
	}
	if out.Len() != 0 {
		t.Errorf("empty input still wrote output: %q", out.String())
	}
}

func TestRunNoiseOnlyInputFails(t *testing.T) {
	in := `goos: linux
goarch: arm64
PASS
ok  	montblanc	1.187s
`
	var out strings.Builder
	if err := run(strings.NewReader(in), &out); err == nil {
		t.Fatal("context-and-noise-only input produced a document")
	}
}

func TestRunSkipsMalformedLinesKeepsGood(t *testing.T) {
	in := `goos: linux
cpu: Cortex-A9
BenchmarkGood 10 250 ns/op
Benchmark 10 250 ns/op extra-note
BenchmarkBadIters notanumber 250 ns/op
BenchmarkBadValue 10 nan-but-not-float ns/op
BenchmarkTooShort 10
`
	var out strings.Builder
	if err := run(strings.NewReader(in), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var doc document
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	// "Benchmark 10 250 ns/op extra-note" has the Benchmark prefix
	// and a valid leading pair: it parses, with the odd trailing
	// field ignored (benchstat does the same).
	wantNames := []string{"BenchmarkGood", "Benchmark"}
	if len(doc.Results) != len(wantNames) {
		t.Fatalf("got %d results %v, want %d", len(doc.Results), doc.Results, len(wantNames))
	}
	for i, want := range wantNames {
		if doc.Results[i].Name != want {
			t.Errorf("result %d = %q, want %q", i, doc.Results[i].Name, want)
		}
	}
	if doc.Context["cpu"] != "Cortex-A9" || doc.Context["goos"] != "linux" {
		t.Errorf("context not captured: %v", doc.Context)
	}
	// Lines must mirror Results one-to-one for benchstat replay.
	if len(doc.Lines) != len(doc.Results) {
		t.Errorf("lines/results mismatch: %d vs %d", len(doc.Lines), len(doc.Results))
	}
}

func TestRunOverlongLineFails(t *testing.T) {
	// A line beyond the 1 MiB scanner buffer is a scanner error, not
	// a silent truncation.
	in := "BenchmarkHuge 1 " + strings.Repeat("x", 2<<20) + " ns/op\n"
	var out strings.Builder
	if err := run(strings.NewReader(in), &out); err == nil {
		t.Fatal("over-long line did not error")
	}
}

func TestRunLastContextWins(t *testing.T) {
	in := `pkg: montblanc/a
pkg: montblanc/b
BenchmarkX 1 1 ns/op
`
	var out strings.Builder
	if err := run(strings.NewReader(in), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var doc document
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Context["pkg"] != "montblanc/b" {
		t.Errorf("pkg context = %q, want last occurrence to win", doc.Context["pkg"])
	}
}
