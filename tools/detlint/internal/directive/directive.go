// Package directive parses //detlint:allow suppression comments.
//
// Syntax:
//
//	//detlint:allow <analyzer>[,<analyzer>...] -- <reason>
//
// The reason is mandatory: a suppression without a recorded
// justification is itself a diagnostic. A directive written on its own
// line covers the next source line; a trailing directive covers its
// own line. The checker additionally reports directives that suppress
// nothing (stale) so annotations cannot outlive the code they excuse.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the comment marker, with no space after // — the same
// convention as //go:build and //nolint.
const Prefix = "//detlint:allow"

// Directive is one parsed, well-formed //detlint:allow comment.
type Directive struct {
	Pos       token.Pos
	File      string
	Line      int      // line the comment itself is on
	OwnLine   bool     // comment stands alone, so it covers Line+1
	Analyzers []string // analyzer names it suppresses
	Reason    string

	// Used tracks, per analyzer name, whether the directive
	// suppressed at least one live diagnostic. The checker fills it
	// in and reports stale entries.
	Used map[string]bool
}

// Covers reports whether the directive applies to a diagnostic from
// the named analyzer at the given line.
func (d *Directive) Covers(analyzer string, line int) bool {
	if line != d.Line && !(d.OwnLine && line == d.Line+1) {
		return false
	}
	for _, a := range d.Analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// Problem is a malformed directive: syntactically //detlint:allow but
// missing its analyzer list or reason. These are hard diagnostics —
// a typo in a suppression must not silently suppress nothing.
type Problem struct {
	Pos     token.Pos
	Message string
}

// ParseFile extracts every detlint directive from a parsed file. src
// is the file's source bytes, used to decide whether a comment stands
// alone on its line (and therefore covers the following line).
func ParseFile(fset *token.FileSet, f *ast.File, src []byte) ([]*Directive, []Problem) {
	var ds []*Directive
	var ps []Problem
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, Prefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, Prefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				// e.g. //detlint:allowmaprange — not ours.
				continue
			}
			pos := fset.Position(c.Pos())
			d, msg := parse(rest)
			if msg != "" {
				ps = append(ps, Problem{Pos: c.Pos(), Message: msg})
				continue
			}
			d.Pos = c.Pos()
			d.File = pos.Filename
			d.Line = pos.Line
			d.OwnLine = ownLine(fset, c, src)
			ds = append(ds, d)
		}
	}
	return ds, ps
}

// parse splits " maprange,floatorder -- reason text" into its parts.
func parse(rest string) (*Directive, string) {
	names, reason, ok := strings.Cut(rest, "--")
	if !ok {
		return nil, "detlint:allow directive is missing a '-- reason' justification"
	}
	reason = strings.TrimSpace(reason)
	if reason == "" {
		return nil, "detlint:allow directive has an empty reason after '--'"
	}
	var as []string
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			as = append(as, n)
		}
	}
	if len(as) == 0 {
		return nil, "detlint:allow directive names no analyzers"
	}
	used := make(map[string]bool, len(as))
	for _, a := range as {
		used[a] = false
	}
	return &Directive{Analyzers: as, Reason: reason, Used: used}, ""
}

// ownLine reports whether only whitespace precedes the comment on its
// line.
func ownLine(fset *token.FileSet, c *ast.Comment, src []byte) bool {
	if src == nil {
		return false
	}
	tf := fset.File(c.Pos())
	if tf == nil {
		return false
	}
	start := tf.Offset(tf.LineStart(fset.Position(c.Pos()).Line))
	end := tf.Offset(c.Pos())
	if start < 0 || end > len(src) || start > end {
		return false
	}
	return strings.TrimSpace(string(src[start:end])) == ""
}
