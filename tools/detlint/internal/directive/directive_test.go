package directive

import (
	"go/parser"
	"go/token"
	"testing"
)

func parseSrc(t *testing.T, src string) ([]*Directive, []Problem) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return ParseFile(fset, f, []byte(src))
}

func TestTrailingDirective(t *testing.T) {
	ds, ps := parseSrc(t, `package p

func f() {
	_ = 1 //detlint:allow wallclock -- timing telemetry only
}
`)
	if len(ps) != 0 {
		t.Fatalf("problems: %v", ps)
	}
	if len(ds) != 1 {
		t.Fatalf("got %d directives, want 1", len(ds))
	}
	d := ds[0]
	if d.Line != 4 || d.OwnLine {
		t.Errorf("got line %d ownLine %v, want trailing on line 4", d.Line, d.OwnLine)
	}
	if d.Reason != "timing telemetry only" {
		t.Errorf("reason = %q", d.Reason)
	}
	if !d.Covers("wallclock", 4) || d.Covers("wallclock", 5) || d.Covers("maprange", 4) {
		t.Errorf("coverage wrong: %+v", d)
	}
}

func TestOwnLineCoversNextLine(t *testing.T) {
	ds, _ := parseSrc(t, `package p

func f() {
	//detlint:allow maprange,floatorder -- grouped reduction proven order-free
	_ = 1
}
`)
	if len(ds) != 1 {
		t.Fatalf("got %d directives, want 1", len(ds))
	}
	d := ds[0]
	if !d.OwnLine {
		t.Fatalf("directive not detected as own-line")
	}
	if !d.Covers("maprange", 5) || !d.Covers("floatorder", 4) || d.Covers("maprange", 6) {
		t.Errorf("coverage wrong: %+v", d)
	}
}

func TestMalformedDirectives(t *testing.T) {
	cases := []struct{ name, comment string }{
		{"missing reason separator", "//detlint:allow maprange"},
		{"empty reason", "//detlint:allow maprange -- "},
		{"no analyzers", "//detlint:allow -- because"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ds, ps := parseSrc(t, "package p\n\n"+c.comment+"\nfunc f() {}\n")
			if len(ds) != 0 || len(ps) != 1 {
				t.Fatalf("got %d directives, %d problems; want 0 and 1", len(ds), len(ps))
			}
		})
	}
}

func TestUnrelatedCommentsIgnored(t *testing.T) {
	ds, ps := parseSrc(t, `package p

// detlint:allow maprange -- space after // means not a directive
//detlint:allowmaprange -- no separator either
func f() {}
`)
	if len(ds) != 0 || len(ps) != 0 {
		t.Fatalf("got %d directives, %d problems; want none", len(ds), len(ps))
	}
}
