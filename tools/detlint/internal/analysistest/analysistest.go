// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest with the stdlib only.
//
// Fixtures live under <testdata>/src/<pkg>/. A line that should be
// flagged carries a trailing comment:
//
//	for k := range m { // want `range over map`
//
// where the backquoted text is a regexp matched against the
// diagnostic message. Multiple expectations may follow one want.
// Every diagnostic must match a want on its line and every want must
// be matched by a diagnostic, so fixtures pin both the positives and
// the negatives.
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"montblanc/tools/detlint/internal/analysis"
	"montblanc/tools/detlint/internal/load"
)

// wantRe matches backquoted or double-quoted expectations after
// "want".
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run analyzes <testdata>/src/<pkg> with a and reports mismatches on
// t. testdata is usually "testdata" relative to the test.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatalf("analysistest: no fixtures in %s", dir)
	}

	fset := token.NewFileSet()
	files, srcs, err := load.ParseFiles(fset, dir, names)
	if err != nil {
		t.Fatalf("analysistest: parsing fixtures: %v", err)
	}

	// Resolve fixture imports (stdlib and in-module) through export
	// data built on demand by the go command.
	importSet := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				importSet[p] = true
			}
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		paths := make([]string, 0, len(importSet))
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := load.List(".", paths...)
		if err != nil {
			t.Fatalf("analysistest: resolving fixture imports: %v", err)
		}
		exports = load.Exports(listed)
	}
	imp := load.NewImporter(fset, exports, nil)
	target := load.Check(pkg, dir, fset, files, srcs, imp)
	if target.TypeError != nil {
		t.Fatalf("analysistest: type-checking %s: %v", pkg, target.TypeError)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       target.Pkg,
		TypesInfo: target.Info,
		Report: func(d analysis.Diagnostic) {
			d.Category = a.Name
			got = append(got, d)
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: analyzer %s: %v", a.Name, err)
	}

	wants := parseWants(t, fset, dir, names, srcs)
	for _, d := range got {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants scans fixture sources for `// want ...` comments.
func parseWants(t *testing.T, fset *token.FileSet, dir string, names []string, srcs [][]byte) []*expectation {
	t.Helper()
	var wants []*expectation
	srcIdx := 0
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		src := srcs[srcIdx]
		srcIdx++
		file := filepath.Join(dir, name)
		for i, line := range strings.Split(string(src), "\n") {
			_, comment, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			ms := wantRe.FindAllStringSubmatch(comment, -1)
			if len(ms) == 0 {
				t.Fatalf("%s:%d: malformed want comment %q", file, i+1, comment)
			}
			for _, m := range ms {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", file, i+1, pat, err)
				}
				wants = append(wants, &expectation{file: file, line: i + 1, re: re})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("analysistest: no want comments in %s — fixtures must pin expected findings", dir)
	}
	return wants
}
