// Package policy decides which analyzers apply to which packages.
//
// The policy lives in detlint.json at the module root. Every package
// is covered by every analyzer by default — new packages opt in simply
// by existing — and the file lists per-analyzer exemptions for the
// layers whose job is the thing the analyzer forbids (the timing
// layers may read the wall clock; nothing may range over a map into
// output). Patterns are import paths, with a trailing "/..." matching
// the subtree.
package policy

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Policy is the decoded detlint.json.
type Policy struct {
	// Exempt maps analyzer name -> package patterns it does not
	// apply to. A pattern is an import path, or a prefix ending in
	// "/..." covering the whole subtree.
	Exempt map[string][]string `json:"exempt"`
}

// Default is the policy used when no detlint.json exists: everything
// applies everywhere.
func Default() *Policy { return &Policy{} }

// Load reads a policy file.
func Load(path string) (*Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Policy
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("policy: parsing %s: %w", path, err)
	}
	return &p, nil
}

// Find walks up from dir looking for detlint.json next to go.mod (the
// module root). It returns Default() if neither is found before the
// filesystem root.
func Find(dir string) (*Policy, string, error) {
	for {
		cand := filepath.Join(dir, "detlint.json")
		if _, err := os.Stat(cand); err == nil {
			p, err := Load(cand)
			return p, cand, err
		}
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return Default(), "", nil // module root without a policy
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return Default(), "", nil
		}
		dir = parent
	}
}

// Applies reports whether the named analyzer should run on the
// package with the given import path.
func (p *Policy) Applies(analyzer, pkgPath string) bool {
	for _, pat := range p.Exempt[analyzer] {
		if match(pat, pkgPath) {
			return false
		}
	}
	return true
}

// match implements exact and "/..." prefix patterns. The bare pattern
// "..." matches everything.
func match(pat, path string) bool {
	if pat == "..." {
		return true
	}
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
	return pat == path
}
