package policy

import (
	"os"
	"path/filepath"
	"testing"
)

func TestApplies(t *testing.T) {
	p := &Policy{Exempt: map[string][]string{
		"wallclock": {
			"montblanc/internal/runner",
			"montblanc/cmd/...",
		},
	}}
	cases := []struct {
		analyzer, pkg string
		want          bool
	}{
		{"wallclock", "montblanc/internal/runner", false},
		{"wallclock", "montblanc/internal/runnerx", true}, // not a prefix match
		{"wallclock", "montblanc/cmd/montblanc", false},
		{"wallclock", "montblanc/cmd", false}, // "/..." includes the root
		{"wallclock", "montblanc/internal/simmpi", true},
		{"maprange", "montblanc/internal/runner", true}, // exemption is per-analyzer
	}
	for _, c := range cases {
		if got := p.Applies(c.analyzer, c.pkg); got != c.want {
			t.Errorf("Applies(%s, %s) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}

func TestFindWalksToModuleRoot(t *testing.T) {
	root := t.TempDir()
	sub := filepath.Join(root, "a", "b")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "detlint.json"),
		[]byte(`{"exempt":{"wallclock":["m/x"]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, path, err := Find(sub)
	if err != nil {
		t.Fatal(err)
	}
	if path == "" || p.Applies("wallclock", "m/x") {
		t.Errorf("policy not found or not applied: path=%q", path)
	}
}

func TestFindDefaultsWithoutPolicy(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module m\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	p, path, err := Find(root)
	if err != nil || path != "" {
		t.Fatalf("err=%v path=%q", err, path)
	}
	if !p.Applies("wallclock", "m/anything") {
		t.Error("default policy must apply everywhere")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "detlint.json")
	if err := os.WriteFile(path, []byte(`{"exmept":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("typo'd policy field was accepted silently")
	}
}
