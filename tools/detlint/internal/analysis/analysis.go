// Package analysis is a minimal, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass,
// Diagnostic), shaped so detlint's analyzers would port to the real
// framework unchanged if x/tools ever becomes a dependency. The repo
// intentionally has zero external modules, so the framework lives
// in-tree.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one determinism rule: a name (used in
// //detlint:allow directives and policy exemptions), documentation,
// and a Run function executed once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (interface{}, error)
}

// Pass carries one analyzer's view of a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report is installed by the driver; analyzers call Reportf.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a position. Category is the analyzer
// name (the driver fills it in), so directive matching and output
// formatting never depend on analyzer internals.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// WithStack walks root in depth-first order, calling fn with the node
// and the stack of ancestors (stack[len(stack)-1] == n). Returning
// false prunes the subtree. It mirrors x/tools' inspector.WithStack
// closely enough for detlint's needs.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			// ast.Inspect will not send the pop for a pruned
			// subtree, so unwind here.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// ObjectOf resolves the object for an identifier through either Uses
// or Defs.
func ObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// BaseIdent peels selectors, indexing, stars and parens off an
// expression and returns the root identifier, if any: out, out[i],
// s.field, (*p).x all resolve to their leftmost name.
func BaseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// DeclaredOutside reports whether the identifier's object is declared
// outside the [lo, hi] node span — i.e. the value outlives (or
// pre-dates) the construct being analyzed. Identifiers that do not
// resolve (package names, field selectors) count as outside.
func DeclaredOutside(info *types.Info, id *ast.Ident, lo, hi token.Pos) bool {
	obj := ObjectOf(info, id)
	if obj == nil {
		return true
	}
	return obj.Pos() < lo || obj.Pos() > hi
}

// IsCallTo reports whether call invokes the package-level function
// pkgPath.name, resolved through the type checker (so aliased imports
// and shadowed names are handled correctly).
func IsCallTo(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// CalleeFunc returns the *types.Func a call resolves to, or nil for
// calls through function values, type conversions and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := ObjectOf(info, id).(*types.Func)
	return fn
}
