// Package seededrand forbids math/rand, math/rand/v2 and crypto/rand
// in simulation code.
//
// The paper's methodology randomizes aggressively but replays
// exactly; the repo encodes that as internal/xrand (xoshiro256**
// seeded via splitmix64) with the seed threaded from configuration.
// math/rand's global source is process-seeded, rand/v2 has no stable
// seeding contract for the package-level functions, and crypto/rand
// is nondeterministic by design — none may appear where byte-identity
// is promised.
package seededrand

import (
	"strconv"

	"montblanc/tools/detlint/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "flag imports of math/rand, math/rand/v2 and crypto/rand in " +
		"simulation packages; use montblanc/internal/xrand with an explicit seed",
	Run: run,
}

var forbidden = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !forbidden[path] {
				continue
			}
			pass.Reportf(imp.Pos(),
				"import of %s is nondeterministic (or unseedable from config); "+
					"use montblanc/internal/xrand with an explicit seed, "+
					"or add //detlint:allow seededrand -- <reason>",
				path)
		}
	}
	return nil, nil
}
