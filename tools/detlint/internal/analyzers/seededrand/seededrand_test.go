package seededrand_test

import (
	"testing"

	"montblanc/tools/detlint/internal/analysistest"
	"montblanc/tools/detlint/internal/analyzers/seededrand"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, "testdata", seededrand.Analyzer, "seededrand")
}
