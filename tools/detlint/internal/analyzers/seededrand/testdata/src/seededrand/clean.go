package seededrand

import "hash/fnv"

// Deterministic hashing is not randomness: nothing here is flagged.
func mix(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
