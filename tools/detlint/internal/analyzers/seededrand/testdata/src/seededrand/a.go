// Fixtures for the seededrand analyzer.
package seededrand

import (
	crand "crypto/rand" // want `crypto/rand`
	"math/rand"         // want `math/rand`
)

func use() int {
	b := make([]byte, 8)
	_, _ = crand.Read(b)
	return rand.Int()
}
