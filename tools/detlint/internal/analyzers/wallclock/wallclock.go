// Package wallclock forbids ambient-state reads — wall-clock time,
// process identity, environment — in deterministic packages.
//
// A simulation result must be a pure function of its configuration:
// the service's content-addressed cache stores results under the
// SHA-256 of the request, and the golden suites compare bytes across
// runs. One time.Now in a result path silently poisons both. Timing
// layers (runner, service, cmd) are exempted by detlint.json; a
// deterministic package that must measure wall time for telemetry
// annotates the site with //detlint:allow wallclock -- <reason>.
package wallclock

import (
	"go/ast"

	"montblanc/tools/detlint/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "flag wall-clock and ambient-state reads (time.Now, os.Getenv, ...) " +
		"in deterministic packages",
	Run: run,
}

// forbidden maps package path -> function names whose results depend
// on ambient process state rather than the call's arguments.
var forbidden = map[string]map[string]bool{
	"time": {
		"Now": true, "Since": true, "Until": true,
		"Tick": true, "After": true, "AfterFunc": true,
		"NewTicker": true, "NewTimer": true,
	},
	"os": {
		"Getpid": true, "Getppid": true,
		"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true,
		"Hostname": true, "Getwd": true,
		"Getuid": true, "Geteuid": true, "Getgid": true,
	},
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if names, ok := forbidden[fn.Pkg().Path()]; ok && names[fn.Name()] {
				pass.Reportf(call.Pos(),
					"call to %s.%s reads ambient state in a deterministic package; "+
						"take it from configuration or the simulation clock, "+
						"exempt the package in detlint.json, "+
						"or add //detlint:allow wallclock -- <reason>",
					fn.Pkg().Name(), fn.Name())
			}
			return true
		})
	}
	return nil, nil
}
