package wallclock_test

import (
	"testing"

	"montblanc/tools/detlint/internal/analysistest"
	"montblanc/tools/detlint/internal/analyzers/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", wallclock.Analyzer, "wallclock")
}
