// Fixtures for the wallclock analyzer.
package wallclock

import (
	"os"
	"time"
)

var processStart = time.Now() // want `time.Now`

func ambient() {
	t := time.Now()             // want `time.Now`
	_ = time.Since(t)           // want `time.Since`
	_ = time.After(time.Second) // want `time.After`
	tick := time.NewTicker(1)   // want `time.NewTicker`
	tick.Stop()
	_ = os.Getenv("HOME") // want `os.Getenv`
	_, _ = os.Hostname()  // want `os.Hostname`
	_ = os.Getpid()       // want `os.Getpid`
}

func deterministic() time.Time {
	// Explicit instants and duration arithmetic carry no ambient
	// state; only the listed ambient reads are flagged.
	epoch := time.Unix(0, 0)
	d := 5 * time.Second
	_ = epoch.Add(d).Sub(epoch)
	_ = os.WriteFile // referencing the package is fine
	return epoch
}
