// Package maprange flags `for … range` over maps whose iteration
// order can leak into output.
//
// Go randomizes map iteration order per run, so any map range whose
// body appends to an escaping slice, writes to an output sink, sends
// on a channel, or accumulates floating-point values produces
// run-dependent bytes — exactly what the repo's byte-identity contract
// forbids. The one sanctioned idiom is collect-then-sort: a loop that
// only appends keys or values to a slice which is sorted before use
// is deterministic, and the analyzer recognizes it.
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"

	"montblanc/tools/detlint/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flag map iteration whose order reaches output " +
		"(escaping appends, writes, channel sends, float accumulation) " +
		"unless the collected keys are sorted before use",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.TypesInfo.TypeOf(rs.X); t == nil {
				return true
			} else if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rs, stack)
			return true
		})
	}
	return nil, nil
}

// effect is one order-dependent action found in a loop body.
type effect struct {
	pos  token.Pos
	what string
	// appendTo is the target object for pure-append effects; such
	// effects are forgiven when the slice is sorted after the loop.
	appendTo types.Object
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) {
	info := pass.TypesInfo
	var effects []effect

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			effects = append(effects, assignEffects(info, rs, s)...)
		case *ast.SendStmt:
			effects = append(effects, effect{
				pos: s.Arrow, what: "sends on a channel in map order",
			})
		case *ast.CallExpr:
			if name, sink := outputCall(info, rs, s); sink {
				effects = append(effects, effect{
					pos: s.Pos(), what: "writes output via " + name + " in map order",
				})
			}
		}
		return true
	})

	// Forgive appends whose target slice is sorted after the loop —
	// the canonical collect-then-sort idiom.
	kept := effects[:0]
	for _, e := range effects {
		if e.appendTo != nil && sortedAfter(info, rs, stack, e.appendTo) {
			continue
		}
		kept = append(kept, e)
	}
	if len(kept) == 0 {
		return
	}
	pass.Reportf(rs.For,
		"range over map %s is nondeterministic: body %s; sort the keys first or add //detlint:allow maprange -- <reason>",
		types.ExprString(rs.X), kept[0].what)
}

// assignEffects classifies one assignment inside the loop body.
func assignEffects(info *types.Info, rs *ast.RangeStmt, s *ast.AssignStmt) []effect {
	var out []effect
	for i, lhs := range s.Lhs {
		base := analysis.BaseIdent(lhs)
		if base == nil || !analysis.DeclaredOutside(info, base, rs.Pos(), rs.End()) {
			continue
		}
		if i < len(s.Rhs) {
			if call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
				out = append(out, effect{
					pos:      s.Pos(),
					what:     "appends to " + base.Name + ", which escapes the loop",
					appendTo: analysis.ObjectOf(info, base),
				})
				continue
			}
		}
		if floatAccum(info, s, i, lhs) {
			out = append(out, effect{
				pos:  s.Pos(),
				what: "accumulates floating-point " + base.Name + " in map order (FP addition is not associative)",
			})
		}
	}
	return out
}

// floatAccum reports whether lhs (the i'th target of s) is a
// floating-point accumulation: `x += e`, `x -= e`, `x *= e`, `x /= e`
// or `x = x + e` with x of float or complex type.
func floatAccum(info *types.Info, s *ast.AssignStmt, i int, lhs ast.Expr) bool {
	t := info.TypeOf(lhs)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&(types.IsFloat|types.IsComplex) == 0 {
		return false
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	case token.ASSIGN:
		if i >= len(s.Rhs) {
			return false
		}
		return selfReferential(lhs, s.Rhs[i])
	}
	return false
}

// selfReferential reports whether rhs is a binary expression chain
// mentioning lhs textually (x = x + e, x = e + x, x = x*e + f, ...).
func selfReferential(lhs, rhs ast.Expr) bool {
	want := types.ExprString(lhs)
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && types.ExprString(e) == want {
			found = true
			return false
		}
		return true
	})
	if _, ok := ast.Unparen(rhs).(*ast.BinaryExpr); !ok {
		return false
	}
	return found
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := analysis.ObjectOf(info, id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// outputCall reports whether the call writes to an output sink whose
// state outlives the loop: fmt Print/Fprint functions, or methods
// named Write*/Print*/Fprint* on a receiver declared outside the
// loop. Sprint-style pure formatters are not sinks.
func outputCall(info *types.Info, rs *ast.RangeStmt, call *ast.CallExpr) (string, bool) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if hasAnyPrefix(name, "Print", "Fprint") {
			return "fmt." + name, true
		}
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() == nil {
		return "", false
	}
	if !hasAnyPrefix(name, "Write", "Print", "Fprint") {
		return "", false
	}
	// Methods on a receiver created inside the loop body reset every
	// iteration; only outer receivers accumulate order-dependence.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if base := analysis.BaseIdent(sel.X); base != nil &&
			!analysis.DeclaredOutside(info, base, rs.Pos(), rs.End()) {
			return "", false
		}
	}
	return name, true
}

func hasAnyPrefix(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if len(s) >= len(p) && s[:len(p)] == p {
			return true
		}
	}
	return false
}

// sortedAfter reports whether obj (a slice the loop appends to) is
// passed to a sort call in a statement after the range statement in
// its enclosing block: sort.Strings(keys), sort.Slice(keys, less),
// slices.Sort(keys), sort.Sort(byName(keys)), and friends.
func sortedAfter(info *types.Info, rs *ast.RangeStmt, stack []ast.Node, obj types.Object) bool {
	// Find the block directly containing the range statement.
	var block *ast.BlockStmt
	for i := len(stack) - 2; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			block = b
			break
		}
		// Only transparent wrappers (labels) may sit between the
		// loop and its block; anything else means the loop is an
		// arm of some construct and we give up on the idiom.
		if _, ok := stack[i].(*ast.LabeledStmt); !ok {
			return false
		}
	}
	if block == nil {
		return false
	}
	after := false
	for _, st := range block.List {
		if !after {
			if containsNode(st, rs) {
				after = true
			}
			continue
		}
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSortCall(info, call) {
				return true
			}
			// The slice may appear directly or wrapped in a
			// conversion (sort.Sort(byName(keys))).
			for _, arg := range call.Args {
				if argMentions(info, arg, obj) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func containsNode(root ast.Node, target ast.Node) bool {
	return root.Pos() <= target.Pos() && target.End() <= root.End()
}

func argMentions(info *types.Info, arg ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(arg, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && analysis.ObjectOf(info, id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		return hasAnyPrefix(fn.Name(), "Sort")
	}
	return false
}
