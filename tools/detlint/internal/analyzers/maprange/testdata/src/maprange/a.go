// Fixtures for the maprange analyzer: flagged loops carry want
// comments; the sorted-idiom and order-free loops must stay silent.
package maprange

import (
	"fmt"
	"sort"
	"strings"
)

func escapingAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to keys`
		keys = append(keys, k)
	}
	return keys // never sorted: iteration order escapes
}

func printsInMapOrder(m map[string]int) {
	for k, v := range m { // want `writes output via fmt.Println`
		fmt.Println(k, v)
	}
}

func writesBuilder(m map[string]int, w *strings.Builder) {
	for k := range m { // want `writes output via WriteString`
		w.WriteString(k)
	}
}

func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `accumulates floating-point sum`
		sum += v
	}
	return sum
}

func channelSend(m map[string]int) chan string {
	ch := make(chan string, len(m))
	for k := range m { // want `sends on a channel`
		ch <- k
	}
	return ch
}

func sortedKeysIdiom(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collect-then-sort: sanctioned
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortSliceIdiom(m map[string]int) []int {
	vals := make([]int, 0, len(m))
	for _, v := range m { // sorted via sort.Slice below: sanctioned
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func orderFree(m map[string]int) (int, map[string]int) {
	n := 0
	out := map[string]int{}
	for k, v := range m { // int accumulation and map writes: order-free
		n += v
		out[k] = 2 * v
	}
	return n, out
}

func freshBufferPerIteration(m map[string]int) map[string]string {
	out := map[string]string{}
	for k := range m {
		var b strings.Builder // created inside the loop: resets each pass
		b.WriteString(k)
		out[k] = b.String()
	}
	return out
}
