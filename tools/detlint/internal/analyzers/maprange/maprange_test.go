package maprange_test

import (
	"testing"

	"montblanc/tools/detlint/internal/analysistest"
	"montblanc/tools/detlint/internal/analyzers/maprange"
)

func TestMapRange(t *testing.T) {
	analysistest.Run(t, "testdata", maprange.Analyzer, "maprange")
}
