// Fixtures for the floatorder analyzer.
package floatorder

func mapOrderSums(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `iteration order`
	}
	total := 0.0
	for k := range m {
		total = total + m[k] // want `iteration order`
	}
	return sum + total
}

func nestedClosureStillMapOrder(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		func() {
			sum += v // want `iteration order`
		}()
	}
	return sum
}

func sharedGoroutineSum(xs []float64) float64 {
	var sum float64
	done := make(chan struct{})
	go func() {
		for _, x := range xs {
			sum += x // want `goroutine`
		}
		close(done)
	}()
	<-done
	return sum
}

func deterministicSums(m map[string]float64, xs []float64) float64 {
	var sum float64
	for _, x := range xs { // slice order is fixed: fine
		sum += x
	}
	n := 0
	for range m { // integer counting is exact and commutative: fine
		n++
	}
	var perKey float64
	for k, v := range m {
		local := v * 2 // fresh float per iteration: fine
		_ = local
		_ = k
	}
	go func() {
		local := 0.0 // goroutine-local accumulator: fine
		local += 1
		_ = local
	}()
	return sum + perKey + float64(n)
}
