// Package floatorder flags floating-point accumulation whose
// iteration order is nondeterministic.
//
// IEEE-754 addition is not associative: (a+b)+c != a+(b+c) in the
// last ulp, so a float sum folded in map-iteration order or raced
// across goroutines can differ between byte-identical runs even when
// every addend is identical. SIMMPI.md's equivalence argument — the
// parallel scheduler groups operations exactly as the sequential path
// does — only holds if no reduction reorders. Two shapes are flagged:
// float compound assignment to an outer variable inside a map range,
// and the same inside a `go func(){…}()` capturing a shared sum.
package floatorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"montblanc/tools/detlint/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floatorder",
	Doc: "flag float accumulation in nondeterministic order " +
		"(inside map ranges, or shared across goroutines)",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			s, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range s.Lhs {
				if !isFloatAccum(info, s, i, lhs) {
					continue
				}
				base := analysis.BaseIdent(lhs)
				if base == nil {
					continue
				}
				if mr := enclosingMapRange(info, stack, base); mr != nil {
					pass.Reportf(s.Pos(),
						"floating-point accumulation into %s inside range over map %s: "+
							"FP addition is not associative, so the sum depends on iteration order; "+
							"accumulate over sorted keys or add //detlint:allow floatorder -- <reason>",
						base.Name, types.ExprString(mr.X))
					continue
				}
				if enclosingGoroutineShared(info, stack, base) {
					pass.Reportf(s.Pos(),
						"floating-point accumulation into shared %s inside a goroutine: "+
							"completion order reorders the sum; reduce per-worker partials "+
							"deterministically or add //detlint:allow floatorder -- <reason>",
						base.Name)
				}
			}
			return true
		})
	}
	return nil, nil
}

// isFloatAccum reports whether the i'th assignment target is a float
// or complex accumulation (x op= e, or x = x + e).
func isFloatAccum(info *types.Info, s *ast.AssignStmt, i int, lhs ast.Expr) bool {
	t := info.TypeOf(lhs)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&(types.IsFloat|types.IsComplex) == 0 {
		return false
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	case token.ASSIGN:
		if i >= len(s.Rhs) {
			return false
		}
		rhs := ast.Unparen(s.Rhs[i])
		if _, isBin := rhs.(*ast.BinaryExpr); !isBin {
			return false
		}
		want := types.ExprString(lhs)
		found := false
		ast.Inspect(rhs, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok && types.ExprString(e) == want {
				found = true
				return false
			}
			return true
		})
		return found
	}
	return false
}

// enclosingMapRange returns the innermost map-range statement whose
// body contains the accumulation, provided the target is declared
// outside that loop (a sum crossing iterations). Walking outward
// stops at function-literal boundaries only for the goroutine check,
// not here: a closure inside a map range still runs in map order.
func enclosingMapRange(info *types.Info, stack []ast.Node, base *ast.Ident) *ast.RangeStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		rs, ok := stack[i].(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			continue
		}
		if analysis.DeclaredOutside(info, base, rs.Pos(), rs.End()) {
			return rs
		}
	}
	return nil
}

// enclosingGoroutineShared reports whether the accumulation sits
// inside a func literal launched by a go statement (directly, or as
// an argument to the launched call) while the target is declared
// outside that literal — the classic raced shared sum.
func enclosingGoroutineShared(info *types.Info, stack []ast.Node, base *ast.Ident) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		fl, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		if !analysis.DeclaredOutside(info, base, fl.Pos(), fl.End()) {
			return false // sum local to the goroutine: fine
		}
		for j := i - 1; j >= 0; j-- {
			switch stack[j].(type) {
			case *ast.GoStmt:
				return true
			case *ast.CallExpr:
				continue // e.g. go wg.Go-style wrappers: keep looking up
			default:
				j = -1
			}
		}
		return false
	}
	return false
}
