package floatorder_test

import (
	"testing"

	"montblanc/tools/detlint/internal/analysistest"
	"montblanc/tools/detlint/internal/analyzers/floatorder"
)

func TestFloatOrder(t *testing.T) {
	analysistest.Run(t, "testdata", floatorder.Analyzer, "floatorder")
}
