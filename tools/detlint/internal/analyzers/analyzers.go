// Package analyzers enumerates every determinism rule detlint ships.
package analyzers

import (
	"montblanc/tools/detlint/internal/analysis"
	"montblanc/tools/detlint/internal/analyzers/floatorder"
	"montblanc/tools/detlint/internal/analyzers/maprange"
	"montblanc/tools/detlint/internal/analyzers/seededrand"
	"montblanc/tools/detlint/internal/analyzers/wallclock"
)

// All returns the full analyzer set in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		floatorder.Analyzer,
		maprange.Analyzer,
		seededrand.Analyzer,
		wallclock.Analyzer,
	}
}

// Known reports whether name is a shipped analyzer — used to reject
// //detlint:allow directives naming analyzers that do not exist.
func Known(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}
