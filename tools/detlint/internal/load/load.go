// Package load type-checks packages without golang.org/x/tools.
//
// The trick that keeps detlint dependency-free: `go list -export`
// makes the go command compile export data for any package set into
// the build cache and report the file paths, and the standard
// library's gc importer (go/importer.ForCompiler with a lookup
// function) reads those files. Only the packages under analysis are
// parsed from source; every import — stdlib or in-module — resolves
// through export data, so loading the whole repository is one
// subprocess plus one parse+typecheck per target package.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// ListedPackage is the subset of `go list -json` detlint needs.
type ListedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Package is a parsed, type-checked target package ready for
// analysis. Srcs holds each file's source bytes (parallel to Files)
// for directive own-line detection.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Srcs       [][]byte
	Pkg        *types.Package
	Info       *types.Info
	TypeError  error // non-nil if type checking failed
}

// List runs `go list -export -deps -json` for patterns in dir and
// returns every listed package.
func List(dir string, patterns ...string) ([]*ListedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Standard,DepOnly,Export,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Exports collects the import-path -> export-data-file map from a
// listing.
func Exports(pkgs []*ListedPackage) map[string]string {
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m
}

// NewImporter returns a types.Importer that resolves through export
// data files. importMap translates source-level import strings
// (vendor, test variants) to canonical package paths before the
// export lookup; it may be nil.
func NewImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// ParseFiles parses the named files (absolute or relative to dir),
// keeping comments and source bytes. Files named *_test.go are
// skipped: the determinism contract governs shipped code, and tests
// legitimately read the wall clock for timeouts.
func ParseFiles(fset *token.FileSet, dir string, names []string) (files []*ast.File, srcs [][]byte, err error) {
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, path)
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		srcs = append(srcs, src)
	}
	return files, srcs, nil
}

// Check type-checks parsed files into a Package. A type error is
// recorded, not fatal: the caller decides whether to analyze anyway.
func Check(importPath, dir string, fset *token.FileSet, files []*ast.File, srcs [][]byte, imp types.Importer) *Package {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect only the first, via Check's return
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Srcs:       srcs,
		Pkg:        pkg,
		Info:       info,
		TypeError:  err,
	}
}

// Targets loads every non-dependency package matched by patterns in
// dir, type-checked and ready for analysis.
func Targets(dir string, patterns ...string) ([]*Package, error) {
	listed, err := List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := Exports(listed)
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil && len(lp.GoFiles) == 0 {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		fset := token.NewFileSet()
		files, srcs, err := ParseFiles(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", lp.ImportPath, err)
		}
		imp := NewImporter(fset, exports, lp.ImportMap)
		out = append(out, Check(lp.ImportPath, lp.Dir, fset, files, srcs, imp))
	}
	return out, nil
}
