package checker

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"montblanc/tools/detlint/internal/analyzers"
	"montblanc/tools/detlint/internal/load"
	"montblanc/tools/detlint/internal/policy"
)

// run type-checks one import-free source file and returns the
// formatted diagnostics from the full analyzer set under pol.
func run(t *testing.T, importPath, src string, pol *policy.Policy) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := load.Check(importPath, "", fset, []*ast.File{f}, [][]byte{[]byte(src)}, nil)
	if pkg.TypeError != nil {
		t.Fatalf("typecheck: %v", pkg.TypeError)
	}
	diags, err := Check(pkg, analyzers.All(), pol, analyzers.Known)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = Format(fset, d)
	}
	return out
}

func anyContains(ss []string, sub string) bool {
	for _, s := range ss {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

func TestSuppressionStaleAndUnknown(t *testing.T) {
	src := `package p

func f(m map[string]int) []string {
	var keys []string
	//detlint:allow maprange -- keys feed an order-insensitive membership set
	for k := range m {
		keys = append(keys, k)
	}
	var leaked []string
	for k := range m {
		leaked = append(leaked, k)
	}
	_ = leaked
	return keys
}

//detlint:allow wallclock -- nothing here reads the clock anymore
func g() {}

func h() {} //detlint:allow bogus -- no such analyzer
`
	diags := run(t, "p", src, policy.Default())

	expect := []string{
		"maprange: range over map m",             // the unsuppressed loop
		"stale detlint:allow: no live wallclock", // directive outlived its finding
		`unknown analyzer "bogus"`,               // typo'd analyzer name
	}
	for _, want := range expect {
		if !anyContains(diags, want) {
			t.Errorf("missing diagnostic containing %q in:\n%s", want, strings.Join(diags, "\n"))
		}
	}
	if got := len(diags); got != len(expect) {
		t.Errorf("got %d diagnostics, want %d:\n%s", got, len(expect), strings.Join(diags, "\n"))
	}
}

func TestMissingReasonIsDiagnosed(t *testing.T) {
	src := `package p

func f(m map[string]int) []string {
	var keys []string
	//detlint:allow maprange
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
`
	diags := run(t, "p", src, policy.Default())
	// The malformed directive is reported AND does not suppress.
	if !anyContains(diags, "missing a '-- reason'") {
		t.Errorf("malformed directive not reported:\n%s", strings.Join(diags, "\n"))
	}
	if !anyContains(diags, "maprange: range over map") {
		t.Errorf("reason-less directive still suppressed the finding:\n%s", strings.Join(diags, "\n"))
	}
}

func TestPolicyExemptsAnalyzerPerPackage(t *testing.T) {
	src := `package p

func f(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
`
	pol := &policy.Policy{Exempt: map[string][]string{"maprange": {"m/exempted"}}}
	if diags := run(t, "m/exempted", src, pol); len(diags) != 0 {
		t.Errorf("exempted package still flagged: %v", diags)
	}
	if diags := run(t, "m/covered", src, pol); len(diags) != 1 {
		t.Errorf("covered package not flagged exactly once: %v", diags)
	}
}

func TestMultiAnalyzerDirective(t *testing.T) {
	src := `package p

func f(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { //detlint:allow maprange,floatorder -- commutative within test tolerance
		sum += v
	}
	return sum
}
`
	// maprange reports at the for line; floatorder at the += line.
	// The trailing directive covers its own line only, so floatorder
	// must survive (and the directive's floatorder entry goes stale)
	// — proving per-line, per-analyzer precision.
	diags := run(t, "p", src, policy.Default())
	if !anyContains(diags, "floatorder: floating-point accumulation") {
		t.Errorf("floatorder on the next line was wrongly suppressed:\n%s", strings.Join(diags, "\n"))
	}
	if !anyContains(diags, "stale detlint:allow: no live floatorder") {
		t.Errorf("unused floatorder entry not reported stale:\n%s", strings.Join(diags, "\n"))
	}
	if anyContains(diags, "maprange: range over map") {
		t.Errorf("maprange on the directive line was not suppressed:\n%s", strings.Join(diags, "\n"))
	}
}
