// Package checker runs the analyzer set over type-checked packages,
// applies the package policy and //detlint:allow directives, and
// turns the result into final diagnostics — including diagnostics
// about the directives themselves (missing reasons, stale
// suppressions), so the annotation layer cannot rot.
package checker

import (
	"fmt"
	"go/token"
	"sort"

	"montblanc/tools/detlint/internal/analysis"
	"montblanc/tools/detlint/internal/directive"
	"montblanc/tools/detlint/internal/load"
	"montblanc/tools/detlint/internal/policy"
)

// Check runs analyzers over one package under the given policy and
// returns the surviving diagnostics sorted by position. Analyzers the
// policy exempts for this package are skipped entirely. Directives
// are consumed: suppressed findings are dropped, and malformed,
// unknown-analyzer or stale directives become diagnostics with
// category "directive".
func Check(pkg *load.Package, as []*analysis.Analyzer, pol *policy.Policy, known func(string) bool) ([]analysis.Diagnostic, error) {
	var raw []analysis.Diagnostic
	for _, a := range as {
		if !pol.Applies(a.Name, pkg.ImportPath) {
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			d.Category = a.Name
			raw = append(raw, d)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.ImportPath, a.Name, err)
		}
	}

	// Collect directives across the package's files.
	var ds []*directive.Directive
	var out []analysis.Diagnostic
	for i, f := range pkg.Files {
		var src []byte
		if i < len(pkg.Srcs) {
			src = pkg.Srcs[i]
		}
		fds, probs := directive.ParseFile(pkg.Fset, f, src)
		for _, p := range probs {
			out = append(out, analysis.Diagnostic{
				Pos: p.Pos, Category: "directive", Message: p.Message,
			})
		}
		for _, d := range fds {
			for _, name := range d.Analyzers {
				if known != nil && !known(name) {
					out = append(out, analysis.Diagnostic{
						Pos:      d.Pos,
						Category: "directive",
						Message:  fmt.Sprintf("detlint:allow names unknown analyzer %q", name),
					})
					d.Used[name] = true // don't also report it as stale
				}
			}
			ds = append(ds, d)
		}
	}

	// Apply suppressions.
	for _, diag := range raw {
		pos := pkg.Fset.Position(diag.Pos)
		suppressed := false
		for _, d := range ds {
			if d.File == pos.Filename && d.Covers(diag.Category, pos.Line) {
				d.Used[diag.Category] = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}

	// A directive (or one analyzer named by it) that suppressed
	// nothing is stale: the code it excused is gone, so the
	// annotation must go too.
	for _, d := range ds {
		for _, name := range d.Analyzers {
			if !d.Used[name] {
				out = append(out, analysis.Diagnostic{
					Pos:      d.Pos,
					Category: "directive",
					Message: fmt.Sprintf(
						"stale detlint:allow: no live %s finding on this or the next line; delete the directive",
						name),
				})
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Category < out[j].Category
	})
	return out, nil
}

// Format renders one diagnostic in the conventional
// file:line:col: analyzer: message shape.
func Format(fset *token.FileSet, d analysis.Diagnostic) string {
	return fmt.Sprintf("%s: %s: %s", fset.Position(d.Pos), d.Category, d.Message)
}
