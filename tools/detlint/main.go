// Command detlint is the repository's determinism linter: a
// multichecker enforcing the byte-identity contract at compile time
// (see DETLINT.md). It runs four analyzers — maprange, wallclock,
// seededrand, floatorder — over the tree, honoring the detlint.json
// package policy and //detlint:allow source directives.
//
// Two drivers share the analyzer set:
//
//	detlint ./...                     # standalone, like staticcheck
//	go vet -vettool=$(which detlint)  # the cmd/go vet protocol
//
// The vet protocol (three handshakes: -V=full for the tool's cache
// ID, -flags for its flag schema, then one invocation per package
// with a vet.cfg JSON file) lets `go vet` drive detlint with its
// build-cache-aware incremental scheduling — CI lints only what
// changed.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"montblanc/tools/detlint/internal/analyzers"
	"montblanc/tools/detlint/internal/checker"
	"montblanc/tools/detlint/internal/load"
	"montblanc/tools/detlint/internal/policy"
)

func main() {
	args := os.Args[1:]

	// cmd/go handshake 1: tool identity for the vet result cache.
	// The required shape is `<name> version devel buildID=<id>`; we
	// hash our own binary so a rebuilt detlint invalidates cached
	// vet results.
	for _, a := range args {
		if a == "-V=full" {
			fmt.Printf("detlint version devel buildID=%s\n", selfID())
			return
		}
	}
	// cmd/go handshake 2: the analyzer flag schema (we expose none).
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	// cmd/go handshake 3: one package's vet.cfg.
	if len(args) >= 1 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		os.Exit(unitcheck(args[len(args)-1]))
	}

	os.Exit(standalone(args))
}

// standalone loads packages by pattern (default ./...) and checks
// them all in one process. Exit codes follow the x/tools convention:
// 0 clean, 1 operational error, 2 diagnostics reported.
func standalone(args []string) int {
	fs := flag.NewFlagSet("detlint", flag.ExitOnError)
	configPath := fs.String("config", "", "path to detlint.json (default: found at module root)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: detlint [-config detlint.json] [package patterns]\n\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var pol *policy.Policy
	var err error
	if *configPath != "" {
		pol, err = policy.Load(*configPath)
	} else {
		wd, werr := os.Getwd()
		if werr != nil {
			fmt.Fprintln(os.Stderr, "detlint:", werr)
			return 1
		}
		pol, _, err = policy.Find(wd)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}

	pkgs, err := load.Targets(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		if pkg.TypeError != nil {
			fmt.Fprintf(os.Stderr, "detlint: %s: %v\n", pkg.ImportPath, pkg.TypeError)
			exit = 1
			continue
		}
		diags, err := checker.Check(pkg, analyzers.All(), pol, analyzers.Known)
		if err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, checker.Format(pkg.Fset, d))
			if exit == 0 {
				exit = 2
			}
		}
	}
	return exit
}

// selfID hashes the running binary for the vet tool ID.
func selfID() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("%x", h.Sum(nil)[:16])
			}
		}
	}
	return "unknown"
}
