package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"strings"

	"montblanc/tools/detlint/internal/analyzers"
	"montblanc/tools/detlint/internal/checker"
	"montblanc/tools/detlint/internal/load"
	"montblanc/tools/detlint/internal/policy"
)

// vetConfig mirrors the JSON cmd/go writes to vet.cfg (see
// cmd/go/internal/work.vetConfig). Fields detlint does not consume
// are listed anyway so the schema is documented in one place.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by a cmd/go
// vet.cfg and returns the process exit code (0 clean, 2 findings).
//
// detlint computes no cross-package facts, so dependency-only
// invocations (VetxOnly) are a no-op: we deliberately skip writing
// VetxOutput — cmd/go treats a missing vetx file as "no export data"
// and carries on.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "detlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}

	// Test variants arrive as the base files plus *_test.go; the
	// contract covers shipped code only, and ParseFiles drops test
	// files. An external test package (pkg_test) has nothing left.
	hasCode := false
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			hasCode = true
			break
		}
	}
	if !hasCode {
		return 0
	}

	fset := token.NewFileSet()
	files, srcs, err := load.ParseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}
	imp := load.NewImporter(fset, cfg.PackageFile, cfg.ImportMap)
	// The analyzed import path may be a test variant like
	// "pkg [pkg.test]"; policy matching wants the real path.
	importPath := cfg.ImportPath
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		importPath = importPath[:i]
	}
	pkg := load.Check(importPath, cfg.Dir, fset, files, srcs, imp)
	if pkg.TypeError != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "detlint: %s: %v\n", importPath, pkg.TypeError)
		return 1
	}

	pol, _, err := policy.Find(cfg.Dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}
	diags, err := checker.Check(pkg, analyzers.All(), pol, analyzers.Known)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, checker.Format(fset, d))
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
