// Benchmarks regenerating every table and figure of the paper, plus the
// ablations called out in DESIGN.md §5. Custom metrics carry the
// reproduced quantities (ratios, efficiencies, sweet spots) so
// `go test -bench=. -benchmem` doubles as the reproduction harness.
package montblanc

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"montblanc/internal/apps/bigdft"
	"montblanc/internal/apps/chess"
	"montblanc/internal/apps/coremark"
	"montblanc/internal/apps/linpack"
	"montblanc/internal/apps/specfem"
	"montblanc/internal/autotune"
	"montblanc/internal/cluster"
	"montblanc/internal/core"
	"montblanc/internal/cpu"
	"montblanc/internal/experiments"
	"montblanc/internal/fault"
	"montblanc/internal/magicfilter"
	"montblanc/internal/mem"
	"montblanc/internal/membench"
	"montblanc/internal/network"
	"montblanc/internal/osmodel"
	"montblanc/internal/platform"
	"montblanc/internal/simmpi"
	"montblanc/internal/stats"
	"montblanc/internal/top500"
	"montblanc/internal/units"
	"montblanc/internal/xrand"
)

// --- Figure 1 ----------------------------------------------------------

func BenchmarkFig1Top500Fit(b *testing.B) {
	var year float64
	for i := 0; i < b.N; i++ {
		y, err := top500.ProjectedExaflopYear()
		if err != nil {
			b.Fatal(err)
		}
		year = y
	}
	b.ReportMetric(year, "exaflop-year")
}

// --- Table II: the real kernels -----------------------------------------

func BenchmarkTable2LinpackSolve(b *testing.B) {
	const n = 128
	a := linpack.RandomMatrix(n, 1)
	rhs := make([]float64, n)
	rng := xrand.New(2)
	for i := range rhs {
		rhs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(linpack.Flops(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "host-MFLOPS")
	b.ReportMetric(linpack.Mflops(platform.Snowball()), "model-snowball-MFLOPS")
	b.ReportMetric(linpack.Mflops(platform.XeonX5550()), "model-xeon-MFLOPS")
}

func BenchmarkTable2CoreMark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := coremark.Run(1, 42); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(coremark.Score(platform.Snowball()), "model-snowball-ops/s")
	b.ReportMetric(coremark.Score(platform.XeonX5550()), "model-xeon-ops/s")
}

func BenchmarkTable2StockFishSearch(b *testing.B) {
	board := chess.StartPos()
	var nodes uint64
	for i := 0; i < b.N; i++ {
		res := chess.Search(board, 4)
		nodes += res.Nodes
	}
	b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "host-nodes/s")
	b.ReportMetric(chess.NodesPerSecond(platform.Snowball()), "model-snowball-nodes/s")
	b.ReportMetric(chess.NodesPerSecond(platform.XeonX5550()), "model-xeon-nodes/s")
}

func BenchmarkTable2SpecfemStep(b *testing.B) {
	s, err := specfem.NewSolver(256, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	s.SetGaussian(0.5, 0.05)
	dt := s.StableDt()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(dt)
	}
	b.ReportMetric(specfem.SmallInstanceTime(platform.Snowball()), "model-snowball-s")
	b.ReportMetric(specfem.SmallInstanceTime(platform.XeonX5550()), "model-xeon-s")
}

func BenchmarkTable2BigDFTSmooth(b *testing.B) {
	g, err := bigdft.NewGrid(24, 24, 24)
	if err != nil {
		b.Fatal(err)
	}
	g.Randomize(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Smooth(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bigdft.SmallInstanceTime(platform.Snowball()), "model-snowball-s")
	b.ReportMetric(bigdft.SmallInstanceTime(platform.XeonX5550()), "model-xeon-s")
}

func BenchmarkTable2FullComparison(b *testing.B) {
	var rows []core.Comparison
	for i := 0; i < b.N; i++ {
		r, err := core.TableII()
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[0].Ratio, "linpack-ratio")
	b.ReportMetric(rows[4].Ratio, "bigdft-ratio")
}

// --- Figure 3: strong scaling -------------------------------------------

func BenchmarkFig3aLinpackScaling(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		c, err := cluster.Tibidabo(48)
		if err != nil {
			b.Fatal(err)
		}
		pts, err := linpack.StrongScaling(c, []int{4, 16, 48},
			linpack.ScalingConfig{N: 6144, NB: 64})
		if err != nil {
			b.Fatal(err)
		}
		eff = pts[len(pts)-1].Efficiency
	}
	b.ReportMetric(eff, "efficiency@48")
}

func BenchmarkFig3bSpecfemScaling(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		c, err := cluster.Tibidabo(64)
		if err != nil {
			b.Fatal(err)
		}
		pts, err := specfem.StrongScaling(c, []int{4, 32, 128},
			specfem.ScalingConfig{Steps: 10})
		if err != nil {
			b.Fatal(err)
		}
		eff = pts[len(pts)-1].Efficiency
	}
	b.ReportMetric(eff, "efficiency@128")
}

func BenchmarkFig3cBigDFTScaling(b *testing.B) {
	var eff float64
	var drops float64
	for i := 0; i < b.N; i++ {
		c, err := cluster.Tibidabo(32)
		if err != nil {
			b.Fatal(err)
		}
		pts, err := bigdft.StrongScaling(c, []int{1, 8, 36},
			bigdft.ScalingConfig{Iters: 5})
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		eff, drops = last.Efficiency, float64(last.Drops)
	}
	b.ReportMetric(eff, "efficiency@36")
	b.ReportMetric(drops, "drops@36")
}

// --- Figure 4 ------------------------------------------------------------

func BenchmarkFig4CongestionAnalysis(b *testing.B) {
	var delayedFrac float64
	for i := 0; i < b.N; i++ {
		_, cr, err := experiments.Fig4Data(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		delayedFrac = float64(cr.Delayed) / float64(cr.Instances)
	}
	b.ReportMetric(delayedFrac, "delayed-fraction")
}

// --- Figure 5 -------------------------------------------------------------

func BenchmarkFig5RTSweep(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		// The full 42x50 sweep: the quick one is too short for the
		// degraded scheduler window to strike.
		res, err := experiments.Fig5Data(experiments.Options{Seed: 13})
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.Modes.Ratio
	}
	b.ReportMetric(ratio, "mode-ratio")
}

// --- Figure 6 --------------------------------------------------------------

func BenchmarkFig6OptimizationGrid(b *testing.B) {
	var armBest, xeonBest float64
	for i := 0; i < b.N; i++ {
		xeon, snow, err := experiments.Fig6Data()
		if err != nil {
			b.Fatal(err)
		}
		if g, ok := membench.Find(snow, cpu.W64, 8); ok {
			armBest = g.Bandwidth / 1e9
		}
		if g, ok := membench.Find(xeon, cpu.W128, 8); ok {
			xeonBest = g.Bandwidth / 1e9
		}
	}
	b.ReportMetric(armBest, "arm-best-GB/s")
	b.ReportMetric(xeonBest, "xeon-best-GB/s")
}

// --- Figure 7 ---------------------------------------------------------------

func BenchmarkFig7MagicfilterSweep(b *testing.B) {
	var nehHi, tegHi float64
	for i := 0; i < b.N; i++ {
		neh, teg, err := experiments.Fig7Data(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		_, nh := magicfilter.SweetSpot(neh, 0.15)
		_, th := magicfilter.SweetSpot(teg, 0.15)
		nehHi, tegHi = float64(nh), float64(th)
	}
	b.ReportMetric(nehHi, "nehalem-sweet-hi")
	b.ReportMetric(tegHi, "tegra2-sweet-hi")
}

func BenchmarkFig7MagicfilterKernel(b *testing.B) {
	src := make([]float64, 4096)
	dst := make([]float64, 4096)
	rng := xrand.New(3)
	for i := range src {
		src[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := magicfilter.Apply1DUnrolled(dst, src, 1+i%12); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(src) * 8))
}

// --- Ablations (DESIGN.md §5) -----------------------------------------------

// Ablation 1: physically-indexed caches + page allocator. Random pages
// must cost bandwidth on the two-colour Snowball L1.
func BenchmarkAblationPageColoring(b *testing.B) {
	p := platform.Snowball()
	cfg := membench.Config{ArrayBytes: 32 * units.KiB}
	var contig, random float64
	for i := 0; i < b.N; i++ {
		var sum float64
		for seed := uint64(1); seed <= 4; seed++ {
			r, err := membench.Run(p, osmodel.RandomPages.NewMapper(seed), cfg)
			if err != nil {
				b.Fatal(err)
			}
			sum += r.Bandwidth
		}
		random = sum / 4
		r, err := membench.Run(p, mem.NewContiguousMapper(0), cfg)
		if err != nil {
			b.Fatal(err)
		}
		contig = r.Bandwidth
	}
	b.ReportMetric(contig/1e9, "contiguous-GB/s")
	b.ReportMetric(random/1e9, "random-GB/s")
}

// Ablation 2: finite switch buffers. Infinite buffers erase the BigDFT
// collapse.
func BenchmarkAblationSwitchBuffers(b *testing.B) {
	var finite, infinite float64
	for i := 0; i < b.N; i++ {
		c1, err := cluster.Tibidabo(32)
		if err != nil {
			b.Fatal(err)
		}
		r1, err := bigdft.TimeDistributed(c1, 36, bigdft.ScalingConfig{Iters: 3})
		if err != nil {
			b.Fatal(err)
		}
		c2, err := cluster.Tibidabo(32)
		if err != nil {
			b.Fatal(err)
		}
		c2.Net.InfiniteBuffers()
		r2, err := bigdft.TimeDistributed(c2, 36, bigdft.ScalingConfig{Iters: 3})
		if err != nil {
			b.Fatal(err)
		}
		finite, infinite = r1.Seconds, r2.Seconds
	}
	b.ReportMetric(finite/infinite, "slowdown-from-buffers")
}

// Ablation 3: the register-pressure spill model. Without it (spill-free
// register file) ARM unrolling of 128-bit loads would look beneficial.
func BenchmarkAblationSpillModel(b *testing.B) {
	var withSpill, without float64
	for i := 0; i < b.N; i++ {
		p := platform.Snowball()
		cfg := membench.Config{ArrayBytes: 50 * units.KiB, Width: cpu.W128, Unroll: 8}
		r, err := membench.Run(p, nil, cfg)
		if err != nil {
			b.Fatal(err)
		}
		withSpill = r.Bandwidth
		nospill := platform.Snowball()
		nospill.CPU.Regs = [3]int{64, 64, 64}
		r2, err := membench.Run(nospill, nil, cfg)
		if err != nil {
			b.Fatal(err)
		}
		without = r2.Bandwidth
	}
	b.ReportMetric(withSpill/1e9, "spill-model-GB/s")
	b.ReportMetric(without/1e9, "no-spill-GB/s")
}

// Ablation 4: alltoallv schedule. The pairwise exchange sidesteps the
// incast that ruins the linear schedule.
func BenchmarkAblationAlltoallvSchedule(b *testing.B) {
	run := func(algo simmpi.AlltoallvAlgorithm) float64 {
		c, err := cluster.Tibidabo(32)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := c.Run(cluster.JobConfig{Ranks: 36, CoreFlopsPerSec: 1e9},
			func(p *simmpi.Proc) error {
				counts := make([]int, p.Size())
				for j := range counts {
					counts[j] = 48 << 10
				}
				for it := 0; it < 3; it++ {
					if err := p.Alltoallv(counts, algo); err != nil {
						return err
					}
				}
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		return rep.Seconds
	}
	var linear, pairwise float64
	for i := 0; i < b.N; i++ {
		linear = run(simmpi.AlltoallvLinear)
		pairwise = run(simmpi.AlltoallvPairwise)
	}
	b.ReportMetric(linear/pairwise, "linear-vs-pairwise")
}

// --- simmpi discrete-event core -----------------------------------------------

// simPingPongRounds is the number of round trips one
// BenchmarkSimMPIPingPong iteration runs; each round commits 4
// Send/Recv operations (2 ranks x send + recv).
const simPingPongRounds = 1000

// BenchmarkSimMPIPingPong measures the scheduler's point-to-point hot
// path: two ranks exchanging eager messages. Run with -benchmem; the
// allocs/op figure divided by ops/iter is the per-operation allocation
// cost the internal/simmpi AllocsPerRun guard pins.
func BenchmarkSimMPIPingPong(b *testing.B) {
	net := network.Star(2)
	for i := 0; i < b.N; i++ {
		net.Reset()
		_, err := simmpi.Run(simmpi.Config{Ranks: 2, Net: net}, func(p *simmpi.Proc) error {
			for r := 0; r < simPingPongRounds; r++ {
				if p.Rank() == 0 {
					if err := p.Send(1, 1, 1024); err != nil {
						return err
					}
					if err := p.Recv(1, 2); err != nil {
						return err
					}
				} else {
					if err := p.Recv(0, 1); err != nil {
						return err
					}
					if err := p.Send(0, 2, 1024); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	ops := float64(4 * simPingPongRounds)
	b.ReportMetric(ops*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkSimMPIAlltoallv measures the collective-heavy path at a
// realistic Tibidabo scale: 64 ranks of all-to-all exchange. The
// pairwise schedule keeps one or two mailbox queues live per rank; the
// linear schedule is the Figure 4 incast — every rank floods each
// destination in turn, opening O(ranks) concurrent mailbox queues, the
// case the mailbox key index exists for.
func BenchmarkSimMPIAlltoallv(b *testing.B) {
	const ranks, per = 64, 2
	for _, algo := range []struct {
		name string
		a    simmpi.AlltoallvAlgorithm
	}{
		{"pairwise", simmpi.AlltoallvPairwise},
		{"linear-incast", simmpi.AlltoallvLinear},
	} {
		b.Run(algo.name, func(b *testing.B) {
			net := network.Tree(ranks/per, 32)
			for i := 0; i < b.N; i++ {
				net.Reset()
				_, err := simmpi.Run(simmpi.Config{Ranks: ranks, Net: net, RanksPerNode: per},
					func(p *simmpi.Proc) error {
						counts := make([]int, p.Size())
						for j := range counts {
							counts[j] = 4 << 10
						}
						return p.Alltoallv(counts, algo.a)
					})
				if err != nil {
					b.Fatal(err)
				}
			}
			ops := float64(2 * ranks * (ranks - 1))
			b.ReportMetric(ops*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// simRingIters drives the rank-scaling benchmark body: per iteration a
// neighbour ring shift plus an allreduce, i.e. O(ranks * log ranks)
// events per sweep — the regime where the seed scheduler's O(ranks)
// commit scan turns superlinear and the event heap stays O(log ranks).
func simRingIters(p *simmpi.Proc, iters, bytes int) error {
	next := (p.Rank() + 1) % p.Size()
	prev := (p.Rank() - 1 + p.Size()) % p.Size()
	for it := 0; it < iters; it++ {
		if err := p.Send(next, 1+it%16, bytes); err != nil {
			return err
		}
		if err := p.Recv(prev, 1+it%16); err != nil {
			return err
		}
		if err := p.Allreduce(1024); err != nil {
			return err
		}
	}
	return nil
}

// simRankScalingCase runs one (ranks, workers) point of the rank-scaling
// benchmark and reports committed-events/s from the scheduler's own
// counter.
func simRankScalingCase(b *testing.B, ranks, per, iters, workers int) {
	nodes := (ranks + per - 1) / per
	var net *network.Network
	if nodes <= 32 {
		net = network.Star(nodes)
	} else {
		net = network.Tree(nodes, 32)
	}
	var events uint64
	for i := 0; i < b.N; i++ {
		net.Reset()
		rep, err := simmpi.Run(simmpi.Config{Ranks: ranks, Net: net, RanksPerNode: per, Workers: workers},
			func(p *simmpi.Proc) error {
				return simRingIters(p, iters, 2048)
			})
		if err != nil {
			b.Fatal(err)
		}
		events += rep.Sched.Events
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSimMPIRankScaling pins the scheduler's scaling behaviour from
// 32 to 512 ranks (the Mont-Blanc follow-on regimes: arXiv:1508.05075,
// arXiv:2007.04868 evaluate at hundreds-to-thousands of cores). The
// committed-events/s metric should be roughly flat across rank counts
// for an O(log R) scheduler and collapse for an O(R) one. The sub-
// benchmark names are stable (benchstat history); the sequential path
// (Workers 0) keeps them.
func BenchmarkSimMPIRankScaling(b *testing.B) {
	const per = 2
	const iters = 20
	for _, ranks := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			simRankScalingCase(b, ranks, per, iters, 0)
		})
	}
}

// BenchmarkSimMPIRankScalingParallel extends the curve to the O(10k)
// regime and compares the conservative-parallel scheduler against the
// sequential reference at each size: events/s at workers=4 over
// workers=1 is the speedup the sharded event heaps buy (compare with
// benchstat, or divide the reported metrics directly). On a single-core
// host the parallel points measure scheduling overhead instead —
// speedup needs GOMAXPROCS >= workers.
func BenchmarkSimMPIRankScalingParallel(b *testing.B) {
	const per = 2
	cases := []struct {
		ranks, iters int
	}{
		{512, 20},
		{4096, 5},
		{10240, 2},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("ranks=%d/workers=%d", c.ranks, workers), func(b *testing.B) {
				simRankScalingCase(b, c.ranks, per, c.iters, workers)
			})
		}
	}
}

// --- membench batched cache engine --------------------------------------------

// membenchLargeCfg is the hundreds-of-MB regime of the Mont-Blanc
// follow-up studies (arXiv:1508.05075, arXiv:2007.04868): a 256 MiB
// stride-1 sweep, far beyond every cache level in the registry.
var membenchLargeCfg = membench.Config{ArrayBytes: 256 * units.MiB, Width: cpu.W64}

// membenchLargePlatform builds the large-array runner: ThunderX2 (the
// deepest hierarchy in the registry) behind a contiguous page mapping,
// so the TLB model is live and translation really runs per page.
func membenchLargePlatform() (*membench.Runner, error) {
	return membench.NewRunner(platform.MustLookup("ThunderX2"), mem.NewContiguousMapper(0))
}

// membenchScalarBaseline measures the element-at-a-time reference path
// once per process on the large-array configuration (same rationale as
// sequentialBaseline: the baseline must not be re-paid per b.N
// escalation).
var membenchScalarBaseline = sync.OnceValues(func() (time.Duration, error) {
	r, err := membenchLargePlatform()
	if err != nil {
		return 0, err
	}
	start := time.Now()
	_, err = r.RunScalar(membenchLargeCfg)
	return time.Since(start), err
})

// BenchmarkMembenchLargeArray pins the batched engine's headline win: a
// DRAM-resident 256 MiB sweep measured against the scalar reference
// path (target >= 5x; measured ~10x). The allocs/run metric is the
// constant per-Run overhead of a warm Runner (essentially the
// papi.Counters snapshot) — memoization replays most passes, so the
// honest per-executed-pass <= 1 contract is enforced by the
// internal/membench AllocsPerRun guards on a below-the-gate config,
// not derived from this figure.
func BenchmarkMembenchLargeArray(b *testing.B) {
	scalar, err := membenchScalarBaseline()
	if err != nil {
		b.Fatal(err)
	}
	r, err := membenchLargePlatform()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.Run(membenchLargeCfg); err != nil { // prime runner scratch
		b.Fatal(err)
	}
	allocsPerRun := testing.AllocsPerRun(2, func() {
		if _, err := r.Run(membenchLargeCfg); err != nil {
			b.Error(err)
		}
	})
	var res membench.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = r.Run(membenchLargeCfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	perOp := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(scalar.Seconds()/perOp.Seconds(), "speedup-vs-scalar")
	b.ReportMetric(allocsPerRun, "allocs/run")
	b.ReportMetric(res.Bandwidth/1e9, "model-GB/s")
}

// BenchmarkMembenchFig3 regenerates the §V.A locality profile (the
// size x stride sweep behind the figure-scale membench results) on the
// Snowball at quick-suite sizes: the fixed cost every locality-style
// experiment pays per platform.
func BenchmarkMembenchFig3(b *testing.B) {
	p := platform.MustLookup("Snowball")
	sizes := []int{16 * units.KiB, 256 * units.KiB, 2 * units.MiB}
	strides := []int{1, 2, 4, 8, 16}
	var profile []membench.LocalityPoint
	for i := 0; i < b.N; i++ {
		var err error
		profile, err = membench.LocalityProfile(p, sizes, strides)
		if err != nil {
			b.Fatal(err)
		}
	}
	if pt, ok := membench.At(profile, 2*units.MiB, 1); ok {
		b.ReportMetric(pt.Bandwidth/1e9, "dram-stride1-GB/s")
	}
	b.ReportMetric(float64(len(sizes)*len(strides))*float64(b.N)/b.Elapsed().Seconds(), "cells/s")
}

// BenchmarkMembenchStridedSweep walks one 64 MiB array across the
// stride spectrum — line-resident through page-skipping — on one warm
// runner, the engine's three regimes (bulk hits, per-line machinery,
// per-access machinery) in a single metric.
func BenchmarkMembenchStridedSweep(b *testing.B) {
	r, err := membench.NewRunner(platform.MustLookup("XeonX5550"), mem.NewContiguousMapper(0))
	if err != nil {
		b.Fatal(err)
	}
	strides := []int{1, 2, 4, 8, 16, 32, 64}
	var accesses uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accesses = 0
		for _, s := range strides {
			res, err := r.Run(membench.Config{
				ArrayBytes:  64 * units.MiB,
				Width:       cpu.W64,
				StrideElems: s,
			})
			if err != nil {
				b.Fatal(err)
			}
			accesses += res.Accesses
		}
	}
	b.ReportMetric(float64(accesses)*float64(b.N)/b.Elapsed().Seconds(), "measured-accesses/s")
}

// --- Experiment runner --------------------------------------------------------

// BenchmarkRunAllSequential regenerates the full quick suite on one
// worker: the historical baseline.
func BenchmarkRunAllSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAllParallel(io.Discard, experiments.Options{Quick: true}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// sequentialBaseline measures one sequential quick-suite run, once per
// process: the benchmark framework re-invokes the function at every
// b.N escalation and the baseline must not be re-paid (or re-randomized)
// each time.
var sequentialBaseline = sync.OnceValues(func() (time.Duration, error) {
	start := time.Now()
	err := experiments.RunAllParallel(io.Discard, experiments.Options{Quick: true}, 1)
	return time.Since(start), err
})

// BenchmarkRunAllParallel regenerates the quick suite on a full worker
// pool and reports the wall-clock speedup over the measured sequential
// baseline; the byte-identical-output property is asserted by the
// tests in internal/experiments.
func BenchmarkRunAllParallel(b *testing.B) {
	sequential, err := sequentialBaseline()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAllParallel(io.Discard, experiments.Options{Quick: true}, runtime.GOMAXPROCS(0)); err != nil {
			b.Fatal(err)
		}
	}
	perOp := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(sequential.Seconds()/perOp.Seconds(), "speedup-vs-sequential")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// lookupAllPlatforms resolves every registered platform for the sweep
// benchmarks.
func lookupAllPlatforms() ([]*platform.Platform, error) {
	names := platform.Names()
	ps := make([]*platform.Platform, 0, len(names))
	for _, n := range names {
		p, err := platform.Lookup(n)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// sweepSequentialBaseline measures one single-worker cross-platform
// sweep, once per process (same rationale as sequentialBaseline).
var sweepSequentialBaseline = sync.OnceValues(func() (time.Duration, error) {
	ps, err := lookupAllPlatforms()
	if err != nil {
		return 0, err
	}
	start := time.Now()
	_, err = core.RunSweep(ps, core.TableIIWorkloads(), 1)
	return time.Since(start), err
})

// BenchmarkSweepParallel dispatches the N platforms x M workloads
// matrix on a full worker pool and reports cell throughput plus the
// wall-clock speedup over the measured single-worker baseline.
func BenchmarkSweepParallel(b *testing.B) {
	sequential, err := sweepSequentialBaseline()
	if err != nil {
		b.Fatal(err)
	}
	ps, err := lookupAllPlatforms()
	if err != nil {
		b.Fatal(err)
	}
	ws := core.TableIIWorkloads()
	b.ResetTimer()
	var s *core.Sweep
	for i := 0; i < b.N; i++ {
		s, err = core.RunSweep(ps, ws, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
	}
	perOp := b.Elapsed() / time.Duration(b.N)
	cells := len(ps) * len(ws)
	b.ReportMetric(float64(cells)/perOp.Seconds(), "cells/s")
	b.ReportMetric(sequential.Seconds()/perOp.Seconds(), "speedup-vs-sequential")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	snow, err := s.RefIndex("Snowball")
	if err != nil {
		b.Fatal(err)
	}
	xeon, err := s.RefIndex("XeonX5550")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(s.Ratio(0, snow, xeon), "linpack-snowball-ratio")
}

// --- Auto-tuning harness ------------------------------------------------------

func BenchmarkAutotuneExhaustive(b *testing.B) {
	p := platform.Tegra2Node()
	space := autotune.Space{Params: []autotune.Param{
		{Name: "unroll", Values: []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}},
	}}
	obj := func(cfg autotune.Config) (float64, error) {
		r, err := magicfilter.MeasureVariant(p, 1024, cfg["unroll"])
		if err != nil {
			return 0, err
		}
		return r.CyclesPerPoint, nil
	}
	var best float64
	for i := 0; i < b.N; i++ {
		res, err := autotune.Exhaustive(space, obj)
		if err != nil {
			b.Fatal(err)
		}
		best = float64(res.Best["unroll"])
	}
	b.ReportMetric(best, "best-unroll")
}

// --- Statistics used by Figure 5 ----------------------------------------------

func BenchmarkStatsTwoModes(b *testing.B) {
	rng := xrand.New(1)
	xs := make([]float64, 2100)
	for i := range xs {
		if i%5 == 0 {
			xs[i] = 200 + rng.NormFloat64()*5
		} else {
			xs[i] = 1000 + rng.NormFloat64()*20
		}
	}
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = stats.TwoModes(xs).Ratio
	}
	b.ReportMetric(ratio, "mode-ratio")
}

// --- Resilience (fault injection + checkpoint/restart) ------------------------

// BenchmarkResilienceSweep measures the fault-injected checkpointing
// mini-app across every registered platform: node crashes, restart
// reads and checkpoint I/O all inside the deterministic simulator.
// Custom metrics carry the aggregate interrupting crashes and frozen
// rank-time, so regressions in fault handling show up next to the
// timing.
func BenchmarkResilienceSweep(b *testing.B) {
	ps, err := lookupAllPlatforms()
	if err != nil {
		b.Fatal(err)
	}
	spec := &fault.Spec{Seed: 11, MTBFSeconds: 40, HorizonSeconds: 500, DowntimeSeconds: 2}
	resolved, err := spec.Resolve(4, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.ResilienceConfig{
		Nodes:           4,
		WorkFlops:       4e9,
		CheckpointBytes: 32 << 20,
		IntervalSeconds: 1,
		Faults:          resolved,
	}
	b.ResetTimer()
	var crashes uint64
	var down float64
	for i := 0; i < b.N; i++ {
		rs, err := core.RunResilienceSweep(ps, cfg, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		crashes, down = 0, 0
		for _, r := range rs {
			crashes += r.Crashes
			down += r.DownSeconds
		}
	}
	b.ReportMetric(float64(crashes), "crashes")
	b.ReportMetric(down, "down-seconds")
}
