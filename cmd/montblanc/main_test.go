package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"montblanc/internal/experiments"
	"montblanc/internal/platform"
	"montblanc/internal/runner"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestListOutput(t *testing.T) {
	code, out, _ := runCLI(t, "list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != len(experiments.All()) {
		t.Fatalf("%d lines, want %d", len(lines), len(experiments.All()))
	}
	for i, e := range experiments.All() {
		if !strings.HasPrefix(lines[i], e.ID) || !strings.Contains(lines[i], e.Title) {
			t.Errorf("line %d = %q, want %s + title", i, lines[i], e.ID)
		}
	}
}

func TestUnknownExperimentExitCode(t *testing.T) {
	code, out, errOut := runCLI(t, "doesnotexist")
	if code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if out != "" {
		t.Errorf("unexpected stdout %q", out)
	}
	if !strings.Contains(errOut, "doesnotexist") || !strings.Contains(errOut, "montblanc list") {
		t.Errorf("stderr %q lacks the unknown-experiment hint", errOut)
	}
}

func TestNoArgsUsageExitCode(t *testing.T) {
	code, _, errOut := runCLI(t)
	if code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "usage: montblanc") {
		t.Errorf("stderr %q lacks usage", errOut)
	}
}

func TestSingleExperimentRawOutput(t *testing.T) {
	code, out, _ := runCLI(t, "-quick", "table1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out, "====") {
		t.Error("single-experiment output grew a section header")
	}
	if !strings.Contains(out, "Mont-Blanc selected HPC applications") {
		t.Errorf("output %q missing table title", out)
	}
}

func TestGlobSelectsHeadedSections(t *testing.T) {
	code, out, _ := runCLI(t, "-quick", "fig3*")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"fig3a", "fig3b", "fig3c"} {
		if !strings.Contains(out, "==== "+id+":") {
			t.Errorf("missing section for %s", id)
		}
	}
	if strings.Contains(out, "==== fig4") {
		t.Error("glob fig3* leaked fig4")
	}
}

func TestMultipleIDsRunOnce(t *testing.T) {
	code, out, _ := runCLI(t, "-quick", "table1", "table*")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if n := strings.Count(out, "==== table1:"); n != 1 {
		t.Errorf("table1 section appears %d times, want 1 (dedup)", n)
	}
	if !strings.Contains(out, "==== table2:") {
		t.Error("missing table2 section")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	code, out, _ := runCLI(t, "-quick", "-json", "table1", "fig2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var results []runner.Result
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	if results[0].ID != "fig2" || results[1].ID != "table1" {
		t.Errorf("IDs %s,%s — want ID order fig2,table1", results[0].ID, results[1].ID)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.ID, r.Err)
		}
		if r.Output == "" {
			t.Errorf("%s: empty output in JSON", r.ID)
		}
	}
	// The rendered text must survive the round-trip byte-for-byte.
	_, raw, _ := runCLI(t, "-quick", "table1")
	if results[1].Output != raw {
		t.Error("JSON output field differs from the raw rendering")
	}
	// And re-encoding parses to the same values.
	again, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	var results2 []runner.Result
	if err := json.Unmarshal(again, &results2); err != nil {
		t.Fatal(err)
	}
	if results2[1].Output != results[1].Output || results2[0].ID != results[0].ID {
		t.Error("second round-trip mangled results")
	}
}

func TestParallelFlagOutputIdentical(t *testing.T) {
	_, seq, _ := runCLI(t, "-quick", "-parallel", "1", "all")
	for _, n := range []string{"2", "5", "8"} {
		code, par, _ := runCLI(t, "-quick", "-parallel", n, "all")
		if code != 0 {
			t.Fatalf("-parallel %s exit %d", n, code)
		}
		if par != seq {
			t.Errorf("-parallel %s stdout differs from -parallel 1 (%d vs %d bytes)",
				n, len(par), len(seq))
		}
	}
}

func TestTimingSummaryOnStderr(t *testing.T) {
	code, out, errOut := runCLI(t, "-quick", "-time", "table1", "fig2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut, "timing summary") {
		t.Errorf("stderr %q lacks timing summary", errOut)
	}
	for _, id := range []string{"table1", "fig2", "total (cpu)"} {
		if !strings.Contains(errOut, id) {
			t.Errorf("timing summary missing %q", id)
		}
	}
	if strings.Contains(out, "timing summary") {
		t.Error("timing summary leaked onto stdout")
	}
}

func TestBadFlagExitCode(t *testing.T) {
	code, _, _ := runCLI(t, "-definitely-not-a-flag", "all")
	if code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
}

func TestJSONList(t *testing.T) {
	code, out, _ := runCLI(t, "-json", "list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var entries []struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	if err := json.Unmarshal([]byte(out), &entries); err != nil {
		t.Fatalf("-json list output is not valid JSON: %v", err)
	}
	if len(entries) != len(experiments.All()) {
		t.Fatalf("%d entries, want %d", len(entries), len(experiments.All()))
	}
	for i, e := range experiments.All() {
		if entries[i].ID != e.ID || entries[i].Title != e.Title {
			t.Errorf("entry %d = %+v, want %s/%s", i, entries[i], e.ID, e.Title)
		}
	}
}

func TestListCombinedWithArgsRejected(t *testing.T) {
	code, _, errOut := runCLI(t, "list", "fig1")
	if code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "cannot be combined") {
		t.Errorf("stderr %q lacks the combination diagnostic", errOut)
	}
	if code, _, errOut = runCLI(t, "fig1", "list"); code != 2 || !strings.Contains(errOut, "cannot be combined") {
		t.Errorf("list in later position: exit %d, stderr %q", code, errOut)
	}
}

func TestPlatformsMode(t *testing.T) {
	code, out, _ := runCLI(t, "platforms")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 6 {
		t.Fatalf("%d platforms listed, want >= 6:\n%s", len(lines), out)
	}
	for _, want := range []string{"Snowball", "XeonX5550", "Tegra2", "Exynos5Dual", "MontBlancNode", "ThunderX2"} {
		if !strings.Contains(out, want) {
			t.Errorf("platforms output missing %q", want)
		}
	}
	// -platform restricts and orders the listing.
	code, out, _ = runCLI(t, "-platform", "XeonX5550,Snowball", "platforms")
	if code != 0 {
		t.Fatalf("restricted exit %d", code)
	}
	lines = strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "XeonX5550") || !strings.HasPrefix(lines[1], "Snowball") {
		t.Errorf("restricted platforms = %q, want XeonX5550 then Snowball", out)
	}
}

func TestPlatformsModeJSON(t *testing.T) {
	code, out, _ := runCLI(t, "-json", "platforms")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var specs []platform.Spec
	if err := json.Unmarshal([]byte(out), &specs); err != nil {
		t.Fatalf("-json platforms output invalid: %v", err)
	}
	if len(specs) < 6 {
		t.Fatalf("%d specs, want >= 6", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("emitted spec %s invalid: %v", s.Name, err)
		}
	}
}

func TestPlatformsCombinedWithArgsRejected(t *testing.T) {
	code, _, errOut := runCLI(t, "platforms", "fig1")
	if code != 2 || !strings.Contains(errOut, "cannot be combined") {
		t.Errorf("exit %d, stderr %q", code, errOut)
	}
}

func TestUnknownPlatformFlag(t *testing.T) {
	code, _, errOut := runCLI(t, "-platform", "PDP-11", "sweep-matrix")
	if code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "PDP-11") || !strings.Contains(errOut, "montblanc platforms") {
		t.Errorf("stderr %q lacks the unknown-platform hint", errOut)
	}
}

func TestPlatformFlagRestrictsSweep(t *testing.T) {
	code, out, _ := runCLI(t, "-quick", "-platform", "Snowball,XeonX5550", "sweep-matrix")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "across 2 platforms") {
		t.Errorf("sweep not restricted to 2 platforms:\n%s", out)
	}
	if strings.Contains(out, "ThunderX2") {
		t.Error("excluded platform leaked into the sweep")
	}
}

// cliBoardCounter keeps file-registered test machines unique across
// repeated in-process runs (`go test -count=N`): the registry is
// global and permanent.
var cliBoardCounter atomic.Int64

func TestPlatformFileRegistersAndSweeps(t *testing.T) {
	spec, ok := platform.LookupSpec("Snowball")
	if !ok {
		t.Fatal("Snowball spec missing")
	}
	spec.Name = fmt.Sprintf("CLIBoard%d", cliBoardCounter.Add(1))
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "board.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t, "-quick", "-platform-file", path,
		"-platform", spec.Name+",XeonX5550", "sweep-energy")
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errOut)
	}
	if !strings.Contains(errOut, "registered "+spec.Name) {
		t.Errorf("stderr %q lacks registration note", errOut)
	}
	if !strings.Contains(out, spec.Name) {
		t.Errorf("sweep output missing the file-defined machine:\n%s", out)
	}
}

func TestPlatformFileErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCLI(t, "-platform-file", path, "sweep-matrix")
	if code != 2 || !strings.Contains(errOut, "parsing") {
		t.Errorf("exit %d, stderr %q", code, errOut)
	}
	if code, _, _ = runCLI(t, "-platform-file", filepath.Join(t.TempDir(), "absent.json"), "all"); code != 2 {
		t.Errorf("missing spec file: exit %d, want 2", code)
	}
}

func TestHelpExitsZero(t *testing.T) {
	code, _, errOut := runCLI(t, "-help")
	if code != 0 {
		t.Errorf("-help exit %d, want 0", code)
	}
	if !strings.Contains(errOut, "usage: montblanc") {
		t.Errorf("-help stderr %q lacks usage", errOut)
	}
}

func TestProfileFlagsWriteProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")
	code, out, errOut := runCLI(t, "-cpuprofile", cpu, "-memprofile", mem, "-quick", "fig6")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "Figure 6") {
		t.Errorf("experiment output missing: %q", out)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

func TestProfileFlagBadPathExitCode(t *testing.T) {
	code, _, errOut := runCLI(t, "-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "x"), "-quick", "fig6")
	if code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "montblanc:") {
		t.Errorf("stderr %q lacks error", errOut)
	}
}

// --- serve verb ----------------------------------------------------

func TestServeUsageErrors(t *testing.T) {
	// Unknown serve flag.
	if code, _, errOut := runCLI(t, "serve", "-definitely-not-a-flag"); code != 2 {
		t.Errorf("bad serve flag: exit %d (stderr %q), want 2", code, errOut)
	}
	// Stray positional argument after the verb's flags.
	if code, _, errOut := runCLI(t, "serve", "fig1"); code != 2 || !strings.Contains(errOut, "unexpected argument") {
		t.Errorf("stray serve arg: exit %d stderr %q, want 2 + message", code, errOut)
	}
	// -h prints the serve usage and exits 0.
	code, _, errOut := runCLI(t, "serve", "-h")
	if code != 0 || !strings.Contains(errOut, "usage: montblanc serve") {
		t.Errorf("serve -h: exit %d stderr %q", code, errOut)
	}
	// An unusable listen address is a serve failure, not a usage error.
	if code, _, errOut := runCLI(t, "serve", "-addr", "256.256.256.256:99999"); code != 1 || !strings.Contains(errOut, "montblanc serve:") {
		t.Errorf("bad addr: exit %d stderr %q, want 1 + message", code, errOut)
	}
}

func TestTopLevelUsageMentionsServe(t *testing.T) {
	_, _, errOut := runCLI(t, "-help")
	if !strings.Contains(errOut, "montblanc serve") {
		t.Errorf("usage text does not mention the serve mode: %q", errOut)
	}
}

// --- writeTimings error propagation --------------------------------

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("stream closed") }

func TestWriteTimingsReportsWriteError(t *testing.T) {
	results := []runner.Result{{ID: "x", Title: "t"}}
	if err := writeTimings(failingWriter{}, results); err == nil {
		t.Fatal("writeTimings swallowed the write error")
	}
	var buf bytes.Buffer
	if err := writeTimings(&buf, results); err != nil {
		t.Fatalf("healthy writer: %v", err)
	}
	if !strings.Contains(buf.String(), "timing summary") {
		t.Errorf("summary missing: %q", buf.String())
	}
}

// --- worker-count flag validation -----------------------------------

// -parallel and -sim-workers share one validation policy: negatives are
// usage errors, zero means "default", absurd values clamp to the
// documented bound with a note on stderr.
func TestWorkerFlagValidation(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string // substring of stderr; "" means don't care
	}{
		{"parallel-negative", []string{"-parallel", "-1", "-quick", "fig2"}, 2, "-parallel must be >= 0"},
		{"parallel-zero-defaults", []string{"-parallel", "0", "-quick", "fig2"}, 0, ""},
		{"parallel-clamped", []string{"-parallel", "100000", "-quick", "fig2"}, 0, "-parallel 100000 clamped to 256"},
		{"sim-workers-negative", []string{"-sim-workers", "-3", "-quick", "fig2"}, 2, "-sim-workers must be >= 0"},
		{"sim-workers-zero-sequential", []string{"-sim-workers", "0", "-quick", "fig2"}, 0, ""},
		{"sim-workers-clamped", []string{"-sim-workers", "100000", "-quick", "fig2"}, 0, "-sim-workers 100000 clamped to 64"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errOut := runCLI(t, tc.args...)
			if code != tc.wantCode {
				t.Fatalf("exit %d, want %d (stderr %q)", code, tc.wantCode, errOut)
			}
			if tc.wantErr != "" && !strings.Contains(errOut, tc.wantErr) {
				t.Errorf("stderr %q lacks %q", errOut, tc.wantErr)
			}
		})
	}
}

// The parallel DES scheduler must not move a byte of any experiment's
// output: the quick suite at -sim-workers 1, 4 and 8 is compared
// byte-for-byte against the sequential default.
func TestSimWorkersOutputIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-suite sweep in -short mode")
	}
	code, ref, _ := runCLI(t, "-quick", "all")
	if code != 0 {
		t.Fatalf("reference run exit %d", code)
	}
	for _, n := range []string{"1", "4", "8"} {
		code, out, _ := runCLI(t, "-quick", "-sim-workers", n, "all")
		if code != 0 {
			t.Fatalf("-sim-workers %s exit %d", n, code)
		}
		if out != ref {
			t.Errorf("-sim-workers %s stdout differs from sequential (%d vs %d bytes)",
				n, len(out), len(ref))
		}
	}
}

// -time also reports the process-wide DES engine aggregate once any
// simulation ran.
func TestTimingIncludesEngineStats(t *testing.T) {
	code, out, errOut := runCLI(t, "-quick", "-time", "fig3b")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut, "sim engine:") {
		t.Errorf("stderr %q lacks the sim engine summary", errOut)
	}
	for _, field := range []string{"events/s", "windows", "mean lookahead", "cross-send ratio"} {
		if !strings.Contains(errOut, field) {
			t.Errorf("engine summary missing %q in %q", field, errOut)
		}
	}
	if strings.Contains(out, "sim engine:") {
		t.Error("engine summary leaked onto stdout")
	}
}

// --- fault flag validation ------------------------------------------

// The -fault-* flags and -checkpoint-interval assemble a fault.Spec
// and validate it before anything runs: hostile numbers (NaN, negative
// rates, non-positive intervals) are usage errors naming the field.
func TestFaultFlagValidation(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{"checkpoint-interval-zero",
			[]string{"-checkpoint-interval", "0", "-quick", "resilience-sweep"},
			2, "-checkpoint-interval must be > 0"},
		{"checkpoint-interval-negative",
			[]string{"-checkpoint-interval", "-4", "-quick", "resilience-sweep"},
			2, "-checkpoint-interval must be > 0"},
		{"checkpoint-interval-nan",
			[]string{"-checkpoint-interval", "NaN", "-quick", "resilience-sweep"},
			2, "-checkpoint-interval must be > 0"},
		{"mtbf-negative",
			[]string{"-fault-mtbf", "-10", "-quick", "resilience-sweep"},
			2, "mtbf_seconds"},
		{"mtbf-nan",
			[]string{"-fault-mtbf", "NaN", "-quick", "resilience-sweep"},
			2, "mtbf_seconds"},
		{"downtime-negative",
			[]string{"-fault-downtime", "-1", "-quick", "resilience-sweep"},
			2, "downtime_seconds"},
		{"horizon-infinite",
			[]string{"-fault-horizon", "Inf", "-quick", "resilience-sweep"},
			2, "horizon_seconds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errOut := runCLI(t, tc.args...)
			if code != tc.wantCode {
				t.Fatalf("exit %d, want %d (stderr %q)", code, tc.wantCode, errOut)
			}
			if out != "" {
				t.Errorf("rejected flags still produced output: %q", out)
			}
			if !strings.Contains(errOut, tc.wantErr) {
				t.Errorf("stderr %q lacks %q", errOut, tc.wantErr)
			}
		})
	}
}

// A schedule assembled from flags replaces the sweep's built-in fault
// grid: the matrix rows carry the user schedule at the pinned
// checkpoint interval, and the default grid's rows are gone.
func TestFaultFlagsReachResilience(t *testing.T) {
	code, out, errOut := runCLI(t, "-quick", "-fault-mtbf", "40", "-fault-downtime", "2",
		"-fault-seed", "9", "-checkpoint-interval", "1.5", "resilience-sweep")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "user schedule tau=1.5s") {
		t.Errorf("output lacks the user schedule row:\n%s", out)
	}
	if strings.Contains(out, "failure-free") {
		t.Error("user schedule did not replace the built-in grid")
	}
}

// -fault-file loads a JSON schedule; its name labels the sweep rows,
// and broken or missing files are usage errors.
func TestFaultFileLoadsSchedule(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sched.json")
	sched := `{"name":"maintenance","events":[{"node":0,"time":1,"downtime":0.5}],"checkpoint_interval_seconds":2}`
	if err := os.WriteFile(path, []byte(sched), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t, "-quick", "-fault-file", path, "resilience-sweep")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "maintenance tau=2s") {
		t.Errorf("sweep rows do not carry the file schedule's name:\n%s", out)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errOut := runCLI(t, "-fault-file", bad, "resilience-sweep"); code != 2 ||
		!strings.Contains(errOut, "fault") {
		t.Errorf("broken schedule file: exit %d stderr %q, want 2 + fault error", code, errOut)
	}
	if code, _, _ := runCLI(t, "-fault-file", filepath.Join(dir, "absent.json"), "resilience-sweep"); code != 2 {
		t.Errorf("missing schedule file: exit %d, want 2", code)
	}
}
