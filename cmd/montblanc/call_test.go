package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"montblanc/internal/runner"
)

// --- serve flag validation ------------------------------------------

func TestServeCacheEntriesValidation(t *testing.T) {
	// Negative and explicit zero are usage errors: a typo must not
	// silently become the 1024-entry default.
	for _, v := range []string{"-3", "0"} {
		code, _, errOut := runCLI(t, "serve", "-cache-entries", v)
		if code != 2 || !strings.Contains(errOut, "-cache-entries must be > 0") {
			t.Errorf("-cache-entries %s: exit %d stderr %q, want 2 + message", v, code, errOut)
		}
	}
	// A valid value passes flag validation; the run then fails at the
	// unusable listen address (exit 1), proving the flag was accepted.
	if code, _, errOut := runCLI(t, "serve", "-cache-entries", "5",
		"-addr", "256.256.256.256:99999"); code != 1 {
		t.Errorf("valid -cache-entries rejected: exit %d stderr %q", code, errOut)
	}
	// Unset keeps the default: same probe, no flag.
	if code, _, errOut := runCLI(t, "serve", "-addr", "256.256.256.256:99999"); code != 1 {
		t.Errorf("unset -cache-entries: exit %d stderr %q, want 1 (listen failure)", code, errOut)
	}
	if code, _, errOut := runCLI(t, "serve", "-cache-persist-max-bytes", "-1"); code != 2 ||
		!strings.Contains(errOut, "-cache-persist-max-bytes") {
		t.Errorf("negative persist bound: exit %d stderr %q, want 2 + message", code, errOut)
	}
}

func TestServeUnusableCacheDir(t *testing.T) {
	// A regular file where the store directory should go: service.New
	// fails to open the store — a startup failure (1), not usage (2).
	f := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCLI(t, "serve", "-cache-dir", f, "-addr", "127.0.0.1:0")
	if code != 1 || !strings.Contains(errOut, "result store") {
		t.Errorf("unusable -cache-dir: exit %d stderr %q, want 1 + store error", code, errOut)
	}
}

// --- call mode ------------------------------------------------------

func TestCallUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t, "call"); code != 2 {
		t.Errorf("call without experiments: exit %d, want 2", code)
	}
	if code, _, errOut := runCLI(t, "call", "-attempts", "0", "fig1"); code != 2 ||
		!strings.Contains(errOut, "-attempts") {
		t.Errorf("call -attempts 0: exit %d stderr %q, want 2 + message", code, errOut)
	}
	if code, _, _ := runCLI(t, "call", "-definitely-not-a-flag"); code != 2 {
		t.Error("unknown call flag accepted")
	}
	code, _, errOut := runCLI(t, "call", "-h")
	if code != 0 || !strings.Contains(errOut, "usage: montblanc call") {
		t.Errorf("call -h: exit %d stderr %q", code, errOut)
	}
}

// TestCallRoundTrip drives `montblanc call` against a stub server:
// the response body lands on stdout verbatim and the request carries
// the flags as wire options.
func TestCallRoundTrip(t *testing.T) {
	var gotBody atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b := make([]byte, r.ContentLength)
		r.Body.Read(b)
		gotBody.Store(string(b))
		w.Write([]byte(`[{"id":"fig1","title":"t","seconds":0.1,"output":"o"}]`))
	}))
	defer ts.Close()
	code, out, errOut := runCLI(t, "call", "-url", ts.URL, "-quick", "-seed", "5", "fig1")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if out != `[{"id":"fig1","title":"t","seconds":0.1,"output":"o"}]` {
		t.Errorf("stdout = %q, want the server body verbatim", out)
	}
	var req struct {
		Experiments []string `json:"experiments"`
		Options     struct {
			Quick bool   `json:"quick"`
			Seed  uint64 `json:"seed"`
		} `json:"options"`
	}
	if err := json.Unmarshal([]byte(gotBody.Load().(string)), &req); err != nil {
		t.Fatalf("request body: %v", err)
	}
	if len(req.Experiments) != 1 || req.Experiments[0] != "fig1" ||
		!req.Options.Quick || req.Options.Seed != 5 {
		t.Errorf("request = %+v, flags did not reach the wire", req)
	}
	// The response bytes must round-trip as results too.
	var results []runner.Result
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Errorf("stdout is not a result array: %v", err)
	}
}

// TestCallRetriesSaturated: a 503 with Retry-After is retried (with a
// note on stderr) and the retry's success lands on stdout. Tiny
// backoff flags keep the test fast; -retry-seed pins the jitter.
func TestCallRetriesSaturated(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":{"code":"saturated","message":"busy"}}`))
			return
		}
		w.Write([]byte(`[]`))
	}))
	defer ts.Close()
	code, out, errOut := runCLI(t, "call", "-url", ts.URL,
		"-backoff", "1ms", "-backoff-cap", "2ms", "-retry-seed", "7", "fig1")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if out != `[]` || calls.Load() != 2 {
		t.Errorf("out %q after %d calls, want [] after 2", out, calls.Load())
	}
	if !strings.Contains(errOut, "retrying in") || !strings.Contains(errOut, "saturated") {
		t.Errorf("stderr %q lacks the retry note", errOut)
	}
}

// TestCallPermanentErrorExitCode: a 4xx is surfaced once, no retries,
// exit 1.
func TestCallPermanentErrorExitCode(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":{"code":"unknown_experiment","message":"no such id"}}`))
	}))
	defer ts.Close()
	code, _, errOut := runCLI(t, "call", "-url", ts.URL, "nope")
	if code != 1 || calls.Load() != 1 {
		t.Errorf("exit %d after %d calls, want 1 after exactly 1", code, calls.Load())
	}
	if !strings.Contains(errOut, "unknown_experiment") {
		t.Errorf("stderr %q lacks the structured error", errOut)
	}
}
