package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"montblanc/internal/service/client"
)

// runCall implements `montblanc call`: POST the named experiments to a
// running `montblanc serve` and write the response body — the wire-form
// result array — to stdout. Transient failures (transport errors, 503
// saturated, 504 timeout) are retried with capped exponential backoff
// plus full jitter, honoring the server's Retry-After ask; content
// addressing on the server makes blind retries safe, and a retry that
// lands after the original attempt's simulation finished is a cache
// hit, not a second run. Exit codes: 0 ok, 1 call failed, 2 usage.
func runCall(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("montblanc call", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "http://127.0.0.1:8080", "base URL of the montblanc serve instance")
	quick := fs.Bool("quick", false, "request reduced-size instances")
	seed := fs.Uint64("seed", 0, "override the deterministic seed (0 = server default)")
	platNames := fs.String("platform", "", "comma-separated platforms for the sweep* experiments (default: all)")
	simWorkers := fs.Int("sim-workers", 0, "DES scheduler shards per simulation on the server")
	attempts := fs.Int("attempts", 5, "total attempts including the first")
	attemptTimeout := fs.Duration("attempt-timeout", 65*time.Second, "timeout for one HTTP attempt")
	retryBudget := fs.Duration("retry-budget", 5*time.Minute, "bound on the whole call including backoff waits (0 = unbounded)")
	backoff := fs.Duration("backoff", 200*time.Millisecond, "base backoff; the wait before retry n is jittered under min(cap, base<<n)")
	backoffCap := fs.Duration("backoff-cap", 10*time.Second, "ceiling on one backoff wait (Retry-After is added on top)")
	retrySeed := fs.Uint64("retry-seed", 0, "seed for the jitter draws (a fixed seed replays the retry schedule)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, `usage: montblanc call [flags] <experiment|pattern>... | all

Calls a running 'montblanc serve' over HTTP (POST /v1/run) and writes
the JSON result array to stdout — the same bytes 'montblanc -json'
emits. Retries transport errors and 5xx responses with capped
exponential backoff + full jitter, honoring Retry-After on 503; the
server's content-addressed cache makes retries idempotent.

Flags:`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return 2
	}
	if *attempts < 1 {
		fmt.Fprintf(stderr, "montblanc call: -attempts must be >= 1, got %d\n", *attempts)
		return 2
	}

	// The request mirrors the service wire schema (SERVICE.md): the
	// server resolves globs and "all" with the same grammar as the CLI.
	type wireOpts struct {
		Quick      bool     `json:"quick"`
		Seed       uint64   `json:"seed"`
		Platforms  []string `json:"platforms,omitempty"`
		SimWorkers int      `json:"sim_workers,omitempty"`
	}
	req := struct {
		Experiments []string `json:"experiments"`
		Options     wireOpts `json:"options"`
	}{
		Experiments: fs.Args(),
		Options:     wireOpts{Quick: *quick, Seed: *seed, SimWorkers: *simWorkers},
	}
	if *platNames != "" {
		for _, name := range strings.Split(*platNames, ",") {
			if name = strings.TrimSpace(name); name != "" {
				req.Options.Platforms = append(req.Options.Platforms, name)
			}
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintln(stderr, "montblanc call:", err)
		return 1
	}

	c, err := client.New(client.Config{
		BaseURL:        *url,
		AttemptTimeout: *attemptTimeout,
		MaxAttempts:    *attempts,
		BaseBackoff:    *backoff,
		MaxBackoff:     *backoffCap,
		Seed:           *retrySeed,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "montblanc call:", err)
		return 2
	}

	ctx := context.Background()
	if *retryBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *retryBudget)
		defer cancel()
	}
	out, err := c.Run(ctx, body)
	if err != nil {
		fmt.Fprintln(stderr, "montblanc call:", err)
		return 1
	}
	if _, err := stdout.Write(out); err != nil {
		fmt.Fprintln(stderr, "montblanc call:", err)
		return 1
	}
	return 0
}
