// Command montblanc regenerates the tables and figures of "Performance
// Analysis of HPC Applications on Low-Power Embedded Platforms" (DATE
// 2013) from the simulation models in this repository.
//
// Usage:
//
//	montblanc list             # show available experiments
//	montblanc table2           # reproduce one table/figure
//	montblanc all              # reproduce everything
//	montblanc -quick all       # smaller instances, seconds instead of minutes
//	montblanc -seed 7 fig5     # override the deterministic seed
package main

import (
	"flag"
	"fmt"
	"os"

	"montblanc/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size instances")
	seed := flag.Uint64("seed", 0, "override the default deterministic seed (0 = default)")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed}
	arg := flag.Arg(0)
	switch arg {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
	case "all":
		if err := experiments.RunAll(os.Stdout, opts); err != nil {
			fatal(err)
		}
	default:
		e, ok := experiments.Find(arg)
		if !ok {
			fmt.Fprintf(os.Stderr, "montblanc: unknown experiment %q (try 'montblanc list')\n", arg)
			os.Exit(2)
		}
		if err := e.Run(os.Stdout, opts); err != nil {
			fatal(err)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: montblanc [-quick] [-seed N] <experiment|list|all>

Reproduces the tables and figures of Stanisic et al., "Performance
Analysis of HPC Applications on Low-Power Embedded Platforms" (DATE'13).

`)
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "montblanc:", err)
	os.Exit(1)
}
