// Command montblanc regenerates the tables and figures of "Performance
// Analysis of HPC Applications on Low-Power Embedded Platforms" (DATE
// 2013) from the simulation models in this repository.
//
// Usage:
//
//	montblanc list               # show available experiments
//	montblanc platforms          # show registered machine models
//	montblanc table2             # reproduce one table/figure
//	montblanc all                # reproduce everything
//	montblanc fig1 table2        # several at once (headed sections)
//	montblanc 'fig3*'            # glob over experiment IDs
//	montblanc 'sweep*'           # cross-platform sweeps over every machine
//	montblanc -quick all         # smaller instances, seconds instead of minutes
//	montblanc -seed 7 fig5       # override the deterministic seed
//	montblanc -parallel 4 all    # worker-pool execution, same bytes out
//	montblanc -sim-workers 4 all # sharded DES scheduler, same bytes out
//	montblanc -json 'fig*'       # structured results for downstream tooling
//	montblanc -time all          # per-experiment timing summary on stderr
//
//	montblanc -platform Snowball,ThunderX2 'sweep*'   # restrict sweep set
//	montblanc -platform-file mymachine.json 'sweep*'  # add machines from JSON specs
//	montblanc -quick energy-phases                    # joules by execution state
//	montblanc -quick scale-membench                   # batched engine at 100s-of-MB scale
//
//	montblanc -quick 'resilience*'                    # failures x checkpoint intervals
//	montblanc -fault-mtbf 300 -quick resilience-sweep # custom failure rate
//	montblanc -fault-file sched.json resilience-daly  # explicit schedule (FAULT.md)
//
//	montblanc -cpuprofile cpu.pb.gz locality          # pprof CPU profile of any experiment
//	montblanc -memprofile mem.pb.gz -quick all        # pprof allocation profile
//
//	montblanc serve -addr :8080                       # simulation-as-a-service (see SERVICE.md)
//	montblanc -platform-file m.json serve             # serve extra machines too
//	montblanc serve -cache-dir /var/cache/montblanc   # results survive restarts (even kill -9)
//	montblanc call -url http://host:8080 'fig3*'      # resilient client: retries, backoff, Retry-After
//
// The serve mode exposes the experiments over HTTP/JSON (POST /v1/run,
// GET /v1/experiments, /v1/platforms, /metrics, /healthz) with a
// content-addressed result cache in front of the runner pool: repeated
// requests for the same (experiment, options, platform specs) hash are
// O(1) cache hits, byte-identical to the cold run, and concurrent
// identical requests cost one simulation. SIGINT/SIGTERM drain
// in-flight work before exit.
//
// The -cpuprofile and -memprofile flags wrap the whole run in the
// standard runtime/pprof collectors, so perf work on any experiment
// needs no ad-hoc harness: run the experiment under a profile flag and
// inspect the file with `go tool pprof`. The allocation profile is
// written when the run finishes (after a final GC, so live-object
// numbers are settled).
//
// Platform specs may carry a state-resolved "power" section (idle /
// compute / memory / communication watts; see PLATFORMS.md). The
// energy-phases experiment integrates those profiles over phased runs;
// machines without a power section keep the paper's constant envelope.
//
// Experiments run concurrently on -parallel workers (default
// GOMAXPROCS), each into a private buffer; output is emitted in ID
// order, so stdout is byte-identical for any worker count.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"
	"time"

	"montblanc/internal/experiments"
	"montblanc/internal/fault"
	"montblanc/internal/platform"
	"montblanc/internal/report"
	"montblanc/internal/runner"
	"montblanc/internal/service"
	"montblanc/internal/simmpi"
)

// maxParallel bounds -parallel: beyond it extra experiment workers only
// contend (there are ~20 experiments), so absurd values clamp here
// instead of spawning thousands of goroutine pools.
const maxParallel = 256

// clampWorkers validates a worker-count flag: negatives are a usage
// error, zero means "use the default", values above max clamp with a
// note on stderr. It returns the effective value and ok=false on a
// usage error.
func clampWorkers(stderr io.Writer, name string, v, def, max int) (int, bool) {
	switch {
	case v < 0:
		fmt.Fprintf(stderr, "montblanc: %s must be >= 0, got %d\n", name, v)
		return 0, false
	case v == 0:
		return def, true
	case v > max:
		fmt.Fprintf(stderr, "montblanc: %s %d clamped to %d\n", name, v, max)
		return max, true
	}
	return v, true
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process-global bits, so tests can drive the
// CLI in-process. It returns the exit code: 0 ok, 1 experiment failure
// (or a failed profile write at exit), 2 usage or unknown experiment.
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("montblanc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "run reduced-size instances")
	seed := fs.Uint64("seed", 0, "override the default deterministic seed (0 = default)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "number of concurrent experiment workers")
	simWorkers := fs.Int("sim-workers", 0, "DES scheduler shards per simulation (<=1 sequential reference, >1 conservative-parallel; output identical either way)")
	jsonOut := fs.Bool("json", false, "emit results as a JSON array instead of rendered text")
	timing := fs.Bool("time", false, "print a per-experiment timing summary to stderr")
	platNames := fs.String("platform", "", "comma-separated registered platforms the sweep* experiments cover (default: all)")
	platFile := fs.String("platform-file", "", "JSON platform spec file to register before running (one spec or an array)")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof allocation profile of the run to this file")
	faultFile := fs.String("fault-file", "", "JSON fault schedule for the resilience* experiments (see FAULT.md)")
	faultMTBF := fs.Float64("fault-mtbf", 0, "per-node mean time between failures in seconds for generated crashes (resilience* experiments)")
	faultDowntime := fs.Float64("fault-downtime", 0, "crash-to-restart downtime in seconds (0 = schedule default)")
	faultHorizon := fs.Float64("fault-horizon", 0, "bound on generated crash times in seconds (0 = the experiment's own estimate)")
	faultSeed := fs.Uint64("fault-seed", 0, "seed for the generated crash draws")
	checkpointInterval := fs.Float64("checkpoint-interval", 0, "pin the resilience checkpoint interval in seconds (must be > 0 when set)")
	fs.Usage = func() { usage(stderr, fs) }
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if fs.NArg() < 1 {
		fs.Usage()
		return 2
	}

	var ok bool
	if *parallel, ok = clampWorkers(stderr, "-parallel", *parallel, runtime.GOMAXPROCS(0), maxParallel); !ok {
		return 2
	}
	if *simWorkers, ok = clampWorkers(stderr, "-sim-workers", *simWorkers, 0, simmpi.MaxWorkers); !ok {
		return 2
	}

	// Profiles wrap the whole run — experiment selection, simulation and
	// rendering — so any experiment can be profiled without an ad-hoc
	// harness: `montblanc -cpuprofile cpu.pb.gz -quick locality`. Files
	// are created eagerly so path errors fail the run up front; the
	// deferred writers run on every exit path below. The memprofile
	// defer is registered first so that (LIFO) StopCPUProfile runs
	// before the heap settles and serializes — the allocation-profile
	// GC must not be sampled into the CPU profile.
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(stderr, "montblanc:", err)
			return 2
		}
		defer func() {
			runtime.GC() // settle the heap so live objects are accurate
			err := pprof.Lookup("allocs").WriteTo(f, 0)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(stderr, "montblanc:", err)
				if code == 0 {
					code = 1 // a truncated profile must not look like success
				}
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "montblanc:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "montblanc:", err)
			f.Close()
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "montblanc:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	if *platFile != "" {
		names, err := platform.LoadSpecFile(*platFile)
		if err != nil {
			fmt.Fprintln(stderr, "montblanc:", err)
			return 2
		}
		fmt.Fprintf(stderr, "montblanc: registered %s from %s\n",
			strings.Join(names, ", "), *platFile)
	}

	// The serve mode owns everything after the verb ("montblanc serve
	// -addr :8080"); the top-level flag parse stopped at the first
	// non-flag argument, so serve's flags arrive here unparsed.
	// -platform-file has already run: machines registered from files
	// are served like builtins.
	if fs.Arg(0) == "serve" {
		return runServe(fs.Args()[1:], stderr)
	}
	// The call mode likewise owns everything after its verb: it is the
	// resilient HTTP client for a running serve instance (see call.go).
	if fs.Arg(0) == "call" {
		return runCall(fs.Args()[1:], stdout, stderr)
	}

	opts := experiments.Options{Quick: *quick, Seed: *seed, SimWorkers: *simWorkers}
	// Fault flags assemble one schedule for the resilience experiments:
	// -fault-file loads a JSON spec, the scalar flags fill or override
	// its fields, and fault.Spec.Validate is the single authority that
	// refuses hostile numbers (NaN rates, negative MTBFs, non-positive
	// checkpoint intervals) before anything runs.
	faultSet := map[string]bool{}
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "fault-file", "fault-mtbf", "fault-downtime", "fault-horizon", "fault-seed", "checkpoint-interval":
			faultSet[f.Name] = true
		}
	})
	if len(faultSet) > 0 {
		spec := &fault.Spec{}
		if faultSet["fault-file"] {
			loaded, err := fault.LoadSpecFile(*faultFile)
			if err != nil {
				fmt.Fprintln(stderr, "montblanc:", err)
				return 2
			}
			spec = loaded
		}
		if faultSet["fault-mtbf"] {
			spec.MTBFSeconds = *faultMTBF
		}
		if faultSet["fault-downtime"] {
			spec.DowntimeSeconds = *faultDowntime
		}
		if faultSet["fault-horizon"] {
			spec.HorizonSeconds = *faultHorizon
		}
		if faultSet["fault-seed"] {
			spec.Seed = *faultSeed
		}
		if faultSet["checkpoint-interval"] {
			// Zero elsewhere means "unset"; an explicit zero here is a
			// request for a nonsensical policy and must fail, not
			// silently fall back to the default grid.
			if !(*checkpointInterval > 0) {
				fmt.Fprintf(stderr, "montblanc: -checkpoint-interval must be > 0 seconds, got %v\n", *checkpointInterval)
				return 2
			}
			spec.CheckpointIntervalSeconds = *checkpointInterval
		}
		if err := spec.Validate(); err != nil {
			fmt.Fprintln(stderr, "montblanc:", err)
			return 2
		}
		opts.Fault = spec
	}
	if *platNames != "" {
		for _, name := range strings.Split(*platNames, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, err := platform.Lookup(name); err != nil {
				fmt.Fprintf(stderr, "montblanc: %v (try 'montblanc platforms')\n", err)
				return 2
			}
			opts.Platforms = append(opts.Platforms, name)
		}
	}

	for _, arg := range fs.Args() {
		if arg != "platforms" {
			continue
		}
		if fs.NArg() > 1 {
			fmt.Fprintln(stderr, "montblanc: 'platforms' cannot be combined with experiment arguments")
			return 2
		}
		return listPlatforms(stdout, stderr, opts.Platforms, *jsonOut)
	}

	for _, arg := range fs.Args() {
		if arg != "list" {
			continue
		}
		if fs.NArg() > 1 {
			fmt.Fprintln(stderr, "montblanc: 'list' cannot be combined with experiment arguments")
			return 2
		}
		if *jsonOut {
			type entry struct {
				ID    string `json:"id"`
				Title string `json:"title"`
			}
			entries := make([]entry, 0, len(experiments.All()))
			for _, e := range experiments.All() {
				entries = append(entries, entry{ID: e.ID, Title: e.Title})
			}
			if err := report.EncodeJSON(stdout, entries); err != nil {
				fmt.Fprintln(stderr, "montblanc:", err)
				return 1
			}
			return 0
		}
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", e.ID, e.Title)
		}
		return 0
	}

	selected, err := experiments.Match(fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "montblanc: %v (try 'montblanc list')\n", err)
		return 2
	}

	var results []runner.Result
	if *timing {
		defer func() {
			if err := writeTimings(stderr, results); err != nil {
				fmt.Fprintln(stderr, "montblanc:", err)
				if code == 0 {
					code = 1 // a lost -time summary must not look like success
				}
			}
			if err := writeEngineStats(stderr); err != nil {
				fmt.Fprintln(stderr, "montblanc:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	if *jsonOut {
		// A JSON array is inherently buffered: collect, then encode.
		results = experiments.Results(selected, opts, *parallel)
		if err := report.EncodeJSON(stdout, results); err != nil {
			fmt.Fprintln(stderr, "montblanc:", err)
			return 1
		}
		for _, r := range results {
			if r.Err != nil {
				return 1
			}
		}
		return 0
	}

	// A single experiment named exactly keeps the historical raw output
	// (no section header), written straight to stdout as it renders.
	if len(selected) == 1 && fs.NArg() == 1 && fs.Arg(0) == selected[0].ID {
		e := selected[0]
		start := time.Now()
		err := e.Run(stdout, opts)
		results = []runner.Result{{ID: e.ID, Title: e.Title, Duration: time.Since(start), Err: err}}
		if err != nil {
			fmt.Fprintln(stderr, "montblanc:", err)
			return 1
		}
		return 0
	}

	// Anything wider streams headed sections in ID order as they
	// complete, while later experiments still compute.
	streamed, err := experiments.Stream(stdout, selected, opts, *parallel)
	results = streamed
	if err != nil {
		fmt.Fprintln(stderr, "montblanc:", err)
		return 1
	}
	return 0
}

// runServe runs the simulation service until SIGINT/SIGTERM, then
// drains gracefully. It returns the exit code: 0 clean shutdown, 1
// serve failure, 2 usage.
func runServe(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("montblanc serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	cacheEntries := fs.Int("cache-entries", 0, "maximum in-memory cached results (content-addressed LRU; unset = 1024)")
	cacheDir := fs.String("cache-dir", "", "directory for the durable result store (persists across restarts; empty = memory only)")
	cachePersistMax := fs.Int64("cache-persist-max-bytes", 0, "bound on durable-store payload bytes, oldest pruned first (0 = unlimited)")
	maxConcurrent := fs.Int("max-concurrent", runtime.GOMAXPROCS(0), "maximum simulations executing at once")
	requestTimeout := fs.Duration("request-timeout", 60*time.Second, "per-request timeout (the simulation continues and lands in the cache)")
	shutdownGrace := fs.Duration("shutdown-grace", 30*time.Second, "bound on draining in-flight work at shutdown")
	fs.Usage = func() {
		fmt.Fprintln(stderr, `usage: montblanc serve [flags]

Serves experiments over HTTP/JSON with a content-addressed result
cache (see SERVICE.md): POST /v1/run, GET /v1/experiments,
/v1/platforms, /metrics, /healthz. Repeated requests for the same
(experiment, options, platform specs) content hash are answered from
the cache; concurrent identical requests cost one simulation.

With -cache-dir the cache gains a durable tier: results are written to
disk (atomic rename, checksummed) and survive restarts — even kill -9 —
so an identical request after restart is a disk hit, not a re-run.
Corrupt entries are detected on read, quarantined as *.corrupt and
recomputed; see the persistence section of SERVICE.md.

Flags:`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "montblanc serve: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	// -cache-entries left unset means "service default" (1024); set, it
	// must be a real capacity. An explicit 0 or negative used to be
	// silently coerced to the default — now it is a usage error, so a
	// typo cannot masquerade as a 1024-entry cache.
	entriesSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "cache-entries" {
			entriesSet = true
		}
	})
	if entriesSet && *cacheEntries <= 0 {
		fmt.Fprintf(stderr, "montblanc serve: -cache-entries must be > 0, got %d (omit the flag for the default 1024)\n", *cacheEntries)
		return 2
	}
	if *cachePersistMax < 0 {
		fmt.Fprintf(stderr, "montblanc serve: -cache-persist-max-bytes must be >= 0, got %d\n", *cachePersistMax)
		return 2
	}

	srv, err := service.New(service.Config{
		MaxConcurrent:        *maxConcurrent,
		CacheSize:            *cacheEntries,
		CacheDir:             *cacheDir,
		CachePersistMaxBytes: *cachePersistMax,
		RequestTimeout:       *requestTimeout,
		ShutdownGrace:        *shutdownGrace,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "montblanc serve:", err)
		return 1
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "montblanc serve:", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Serve(ctx, ln); err != nil {
		fmt.Fprintln(stderr, "montblanc serve:", err)
		return 1
	}
	return 0
}

// listPlatforms renders the `platforms` mode: the registered machine
// models (optionally restricted by -platform), one per line as text, or
// the full serializable specs under -json.
func listPlatforms(stdout, stderr io.Writer, selected []string, jsonOut bool) int {
	names := selected
	if len(names) == 0 {
		names = platform.Names()
	}
	if jsonOut {
		specs := make([]platform.Spec, 0, len(names))
		for _, n := range names {
			s, ok := platform.LookupSpec(n)
			if !ok {
				fmt.Fprintf(stderr, "montblanc: unknown platform %q\n", n)
				return 2
			}
			specs = append(specs, s)
		}
		if err := report.EncodeJSON(stdout, specs); err != nil {
			fmt.Fprintln(stderr, "montblanc:", err)
			return 1
		}
		return 0
	}
	for _, n := range names {
		p, err := platform.Lookup(n)
		if err != nil {
			fmt.Fprintln(stderr, "montblanc:", err)
			return 2
		}
		fmt.Fprintf(stdout, "%-14s %s\n", p.Name, p.String())
	}
	return 0
}

// writeTimings renders a per-experiment wall-clock summary, slowest
// first, to w. The write error is returned — a -time summary lost to
// a closed stderr must surface like every other failed write path.
func writeTimings(w io.Writer, results []runner.Result) error {
	sorted := append([]runner.Result(nil), results...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Duration > sorted[j].Duration
	})
	tab := &report.Table{
		Title:   "timing summary (per-experiment wall clock)",
		Headers: []string{"experiment", "seconds", "status"},
	}
	var total float64
	for _, r := range sorted {
		status := "ok"
		if r.Err != nil {
			status = "error"
		}
		tab.AddRow(r.ID, r.Duration.Seconds(), status)
		total += r.Duration.Seconds()
	}
	tab.AddRow("total (cpu)", total, "")
	if _, err := io.WriteString(w, tab.String()); err != nil {
		return fmt.Errorf("writing timing summary: %w", err)
	}
	return nil
}

// writeEngineStats renders the process-wide DES scheduler aggregate
// under -time: committed-events throughput, window count, mean
// lookahead and the cross-shard-send ratio. Runs that never entered the
// simulator (list/platforms paths are excluded earlier; fig1/2 are
// analytic) leave the counters at zero, in which case nothing prints.
func writeEngineStats(w io.Writer) error {
	st := simmpi.Engine()
	if st.Runs == 0 {
		return nil
	}
	_, err := fmt.Fprintf(w,
		"sim engine: %d runs, %d events (%.3g events/s), %d windows, mean lookahead %.3gs, cross-send ratio %.2f\n",
		st.Runs, st.Events, st.EventsPerSec, st.Windows, st.MeanLookahead, st.CrossRatio)
	if err != nil {
		return fmt.Errorf("writing sim engine summary: %w", err)
	}
	return nil
}

func usage(w io.Writer, fs *flag.FlagSet) {
	fmt.Fprintf(w, `usage: montblanc [flags] <experiment|pattern>... | list | platforms | all
       montblanc serve [serve flags]   (run 'montblanc serve -h')
       montblanc call [call flags] <experiment|pattern>...   (run 'montblanc call -h')

Reproduces the tables and figures of Stanisic et al., "Performance
Analysis of HPC Applications on Low-Power Embedded Platforms" (DATE'13).

Arguments name experiments ('montblanc list'), glob over their IDs
('fig*', 'table?', 'sweep*'), or the keyword 'all'. Several may be
given; each runs once, concurrently on -parallel workers, and output is
emitted in ID order regardless of completion order.

'montblanc platforms' lists the registered machine models the sweep*
experiments compare; -platform restricts that set and -platform-file
registers additional machines from a JSON spec file. Specs may include
a state-resolved "power" section (idle/compute/memory/comm watts, see
PLATFORMS.md) used by the energy-phases experiment; without one a
machine is charged its constant envelope, the paper's §III.C model.

-cpuprofile and -memprofile write runtime/pprof profiles of the whole
run (selection, simulation, rendering) for use with 'go tool pprof'.

-sim-workers > 1 runs each cluster simulation on the conservative-
parallel DES scheduler with that many shards; output stays
byte-identical to the sequential reference at any value.

The -fault-* flags and -checkpoint-interval inject a deterministic
fault schedule (node crashes, link degradations; see FAULT.md) into the
resilience* experiments: -fault-file loads a JSON schedule, the scalar
flags fill or override its fields. Fault-injected runs too are
byte-identical at any -sim-workers value.

'montblanc serve' runs the experiments as a long-lived HTTP/JSON
service with a content-addressed result cache (SERVICE.md documents
the API); machines registered via -platform-file are served too. With
-cache-dir the cache persists across restarts. 'montblanc call' is the
matching resilient client: capped exponential backoff with full
jitter, Retry-After honored on 503, per-attempt timeouts and a total
retry budget — blind retries are safe because requests are
content-addressed.

`)
	fs.PrintDefaults()
}
