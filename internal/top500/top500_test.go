package top500

import (
	"testing"
)

func TestEntriesMonotoneYears(t *testing.T) {
	es := Entries()
	if len(es) != 20 {
		t.Fatalf("entries = %d, want 20 (1993-2012)", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].Year != es[i-1].Year+1 {
			t.Errorf("year gap at %d", es[i].Year)
		}
		if es[i].SumGF < es[i-1].SumGF {
			t.Errorf("aggregate performance shrank in %d", es[i].Year)
		}
	}
	for _, e := range es {
		if e.TopGF < e.LowGF {
			t.Errorf("%d: #1 below #500", e.Year)
		}
		if e.SumGF < e.TopGF {
			t.Errorf("%d: sum below #1", e.Year)
		}
	}
}

func TestFitTopGrowthRate(t *testing.T) {
	trend, err := FitTop()
	if err != nil {
		t.Fatal(err)
	}
	// TOP500 #1 grew ~1.8-2x per year over 1993-2012.
	if g := trend.GrowthPerYear(); g < 1.6 || g > 2.2 {
		t.Errorf("growth factor = %.2f, want 1.6-2.2", g)
	}
	if trend.Fit.R2 < 0.95 {
		t.Errorf("fit R2 = %.3f; the growth is famously exponential", trend.Fit.R2)
	}
}

func TestPredictInterpolates(t *testing.T) {
	trend, err := FitTop()
	if err != nil {
		t.Fatal(err)
	}
	// The 2008 prediction should be within an order of magnitude of the
	// Roadrunner measurement (the fit smooths list-to-list jumps).
	p := trend.Predict(2008)
	if p < 1026000/5 || p > 1026000*5 {
		t.Errorf("2008 prediction = %.0f GF, want within 5x of 1.03e6", p)
	}
}

// The paper's framing: "In order to break the exaflops barrier by the
// projected year of 2018".
func TestProjectedExaflopYear(t *testing.T) {
	year, err := ProjectedExaflopYear()
	if err != nil {
		t.Fatal(err)
	}
	if year < 2016.5 || year > 2020.5 {
		t.Errorf("projected exaflop year = %.1f, want ~2018", year)
	}
}

func TestYearReachingValidation(t *testing.T) {
	trend, _ := FitTop()
	if _, err := trend.YearReaching(0); err == nil {
		t.Error("non-positive target accepted")
	}
}

func TestFitSum(t *testing.T) {
	trend, err := FitSum()
	if err != nil {
		t.Fatal(err)
	}
	if g := trend.GrowthPerYear(); g < 1.6 || g > 2.2 {
		t.Errorf("sum growth = %.2f", g)
	}
	// Aggregate exaflop arrives earlier than #1 exaflop.
	sumYear, err := trend.YearReaching(ExaflopGF)
	if err != nil {
		t.Fatal(err)
	}
	topYear, _ := ProjectedExaflopYear()
	if sumYear >= topYear {
		t.Errorf("sum exaflop (%.1f) should precede #1 exaflop (%.1f)", sumYear, topYear)
	}
}
