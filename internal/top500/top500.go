// Package top500 models Figure 1 — "Exponential growth of
// supercomputing power as recorded by the TOP500" — from the embedded
// historical list data (June lists, 1993-2012, approximate public Rmax
// figures). It fits the exponential trend and reproduces the paper's
// framing: an exaflop machine around 2018 and the factor-25 efficiency
// gap against the 20 MW power barrier.
package top500

import (
	"errors"

	"montblanc/internal/stats"
)

// Entry is one TOP500 list snapshot in GFLOPS.
type Entry struct {
	Year  int
	TopGF float64 // #1 system Rmax
	SumGF float64 // sum of all 500 systems
	LowGF float64 // #500 system Rmax
}

// Entries returns the embedded June-list history, 1993-2012.
func Entries() []Entry {
	return []Entry{
		{1993, 59.7, 1170, 0.4},
		{1994, 143.4, 2200, 0.8},
		{1995, 170, 3900, 1.4},
		{1996, 368.2, 6700, 2.1},
		{1997, 1068, 10900, 3.2},
		{1998, 1338, 17100, 4.7},
		{1999, 2379, 28900, 9.7},
		{2000, 4938, 54800, 15.6},
		{2001, 7226, 89400, 28.2},
		{2002, 35860, 193000, 47.8},
		{2003, 35860, 375000, 99.9},
		{2004, 35860, 624000, 242},
		{2005, 136800, 1690000, 532},
		{2006, 280600, 2790000, 1170},
		{2007, 280600, 4920000, 2740},
		{2008, 1026000, 11700000, 4500},
		{2009, 1105000, 22600000, 9600},
		{2010, 1759000, 32400000, 20000},
		{2011, 8162000, 58700000, 39100},
		{2012, 16320000, 123000000, 60800},
	}
}

// Trend is a fitted exponential growth model of one TOP500 series.
type Trend struct {
	Fit      stats.ExpFit
	BaseYear int
}

// series extracts a column.
func series(pick func(Entry) float64) (xs, ys []float64, base int) {
	entries := Entries()
	base = entries[0].Year
	for _, e := range entries {
		xs = append(xs, float64(e.Year-base))
		ys = append(ys, pick(e))
	}
	return xs, ys, base
}

// FitTop fits the #1-system performance trend.
func FitTop() (Trend, error) {
	xs, ys, base := series(func(e Entry) float64 { return e.TopGF })
	fit, err := stats.FitExponential(xs, ys)
	if err != nil {
		return Trend{}, err
	}
	return Trend{Fit: fit, BaseYear: base}, nil
}

// FitSum fits the aggregate-performance trend.
func FitSum() (Trend, error) {
	xs, ys, base := series(func(e Entry) float64 { return e.SumGF })
	fit, err := stats.FitExponential(xs, ys)
	if err != nil {
		return Trend{}, err
	}
	return Trend{Fit: fit, BaseYear: base}, nil
}

// GrowthPerYear returns the fitted multiplicative growth factor.
func (t Trend) GrowthPerYear() float64 { return t.Fit.G }

// Predict returns the trend value (GFLOPS) for a calendar year.
func (t Trend) Predict(year int) float64 {
	return t.Fit.Predict(float64(year - t.BaseYear))
}

// YearReaching returns the (fractional) calendar year at which the trend
// reaches the given performance in GFLOPS.
func (t Trend) YearReaching(gflops float64) (float64, error) {
	if gflops <= 0 {
		return 0, errors.New("top500: non-positive target")
	}
	return float64(t.BaseYear) + t.Fit.SolveFor(gflops), nil
}

// ExaflopGF is one exaflop in GFLOPS.
const ExaflopGF = 1e9

// ProjectedExaflopYear returns the year the #1 trend crosses one
// exaflop — the paper projects 2018.
func ProjectedExaflopYear() (float64, error) {
	trend, err := FitTop()
	if err != nil {
		return 0, err
	}
	return trend.YearReaching(ExaflopGF)
}
