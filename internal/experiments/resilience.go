package experiments

import (
	"fmt"
	"io"

	"montblanc/internal/core"
	"montblanc/internal/fault"
	"montblanc/internal/platform"
	"montblanc/internal/report"
	"montblanc/internal/runner"
)

// The resilience* experiment family prices failures: the paper's
// machines trade node power for node count, and more nodes means more
// failures — resilience overhead (checkpoint I/O, lost work, restarts,
// idle downtime) is part of any honest energy-to-solution comparison.
// The checkpointing mini-app (core.RunResilienceProbe) runs the same
// work on every registered platform under deterministic fault schedules
// (internal/fault) and state-resolved power profiles, so both matrices
// — time and joules — come out of one simulated trace.
func init() {
	register(Experiment{
		ID:    "resilience-sweep",
		Title: "Resilience sweep: time- and energy-to-solution vs failure rate x checkpoint interval",
		Cost:  6,
		Run:   runResilienceSweep,
	})
	register(Experiment{
		ID:    "resilience-daly",
		Title: "Resilience: time-to-solution around the Daly-optimal checkpoint interval",
		Cost:  5,
		Run:   runResilienceDaly,
	})
}

// resilienceSeed mixes the option seed into the fault schedules so
// -seed varies the crash draws (and, being part of the cache key via
// Options.Seed, never aliases another run's cache entry).
const resilienceSeed = 0x7265736964 // "resid"

// resilienceConfig sizes the probe explicitly — every knob the
// experiments reason about (horizons, checkpoint costs) is spelled out
// rather than left to core defaults.
func resilienceConfig(o Options) core.ResilienceConfig {
	if o.Quick {
		return core.ResilienceConfig{
			Nodes: 4, WorkFlops: 4e9, CheckpointBytes: 32 << 20,
			HaloBytes: 64 << 10, Efficiency: 0.5, SimWorkers: o.SimWorkers,
		}
	}
	return core.ResilienceConfig{
		Nodes: 8, WorkFlops: 4e10, CheckpointBytes: 512 << 20,
		HaloBytes: 256 << 10, Efficiency: 0.5, SimWorkers: o.SimWorkers,
	}
}

// resilienceHorizon bounds generated crash times: the slowest
// platform's failure-free work time with generous rework headroom.
func resilienceHorizon(ps []*platform.Platform, cfg core.ResilienceConfig) float64 {
	maxWork := 0.0
	for _, p := range ps {
		if w := cfg.WorkFlops / p.SustainedFlops(true, cfg.Efficiency); w > maxWork {
			maxWork = w
		}
	}
	return 16 * maxWork
}

// faultCase is one row group of the sweep: a named schedule plus the
// checkpoint intervals to run it against.
type faultCase struct {
	label     string
	resolved  *fault.Resolved // nil means failure-free
	intervals []float64
}

// resolveGrid builds the default failure-rate grid, or — when the user
// supplied a schedule via Options.Fault — that single schedule.
func resolveGrid(o Options, ps []*platform.Platform, cfg core.ResilienceConfig) ([]faultCase, error) {
	horizon := resilienceHorizon(ps, cfg)
	intervals := []float64{5, 20, 80}
	mtbfs := []float64{120, 480}
	downtime := 30.0
	if o.Quick {
		intervals = []float64{0.5, 2, 8}
		mtbfs = []float64{10, 40}
		downtime = 2
	}
	if o.Fault != nil {
		r, err := o.Fault.Resolve(cfg.Nodes, horizon)
		if err != nil {
			return nil, err
		}
		iv := intervals
		if o.Fault.CheckpointIntervalSeconds > 0 {
			iv = []float64{o.Fault.CheckpointIntervalSeconds}
		}
		label := o.Fault.Name
		if label == "" {
			label = "user schedule"
		}
		return []faultCase{{label: label, resolved: r, intervals: iv}}, nil
	}
	cases := []faultCase{{label: "failure-free", intervals: intervals}}
	for _, m := range mtbfs {
		spec := &fault.Spec{
			Name:            fmt.Sprintf("mtbf=%gs", m),
			Seed:            o.Seed ^ resilienceSeed,
			MTBFSeconds:     m,
			HorizonSeconds:  horizon,
			DowntimeSeconds: downtime,
		}
		r, err := spec.Resolve(cfg.Nodes, 0)
		if err != nil {
			return nil, err
		}
		cases = append(cases, faultCase{label: spec.Name, resolved: r, intervals: intervals})
	}
	return cases, nil
}

func runResilienceSweep(w io.Writer, o Options) error {
	ps, err := sweepPlatforms(o)
	if err != nil {
		return err
	}
	cfg := resilienceConfig(o)
	cases, err := resolveGrid(o, ps, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Checkpointing mini-app on %d platforms, %d nodes each (one rank per node)\n",
		len(ps), cfg.Nodes)
	fmt.Fprintln(w, "Per-node MTBF draws crashes from seeded exponential interarrivals; downtime is")
	fmt.Fprintln(w, "frozen (idle watts), checkpoint and restart I/O run at memory watts.")

	cols := platformCols(ps)
	tts := &report.Matrix{
		Title:  "time to solution (s)",
		Corner: "schedule x tau \\ platform",
		Cols:   cols,
	}
	ets := &report.Matrix{
		Title:  "energy to solution (J, state-resolved profiles)",
		Corner: "schedule x tau \\ platform",
		Cols:   cols,
	}
	crashes := &report.Matrix{
		Title:  "interrupting crashes over the run",
		Corner: "schedule x tau \\ platform",
		Cols:   cols,
	}
	for _, fc := range cases {
		for _, interval := range fc.intervals {
			c := cfg
			c.IntervalSeconds = interval
			c.Faults = fc.resolved
			rrs, err := core.RunResilienceSweep(ps, c, 0)
			if err != nil {
				return err
			}
			label := fmt.Sprintf("%s tau=%gs", fc.label, interval)
			tRow := make([]interface{}, len(rrs))
			eRow := make([]interface{}, len(rrs))
			cRow := make([]interface{}, len(rrs))
			for i, rr := range rrs {
				tRow[i] = rr.Seconds
				eRow[i] = rr.Breakdown.Total
				cRow[i] = rr.Crashes
			}
			tts.AddRow(label, tRow...)
			ets.AddRow(label, eRow...)
			crashes.AddRow(label, cRow...)
		}
	}
	fmt.Fprint(w, tts.String())
	fmt.Fprint(w, ets.String())
	fmt.Fprint(w, crashes.String())
	fmt.Fprintln(w, "Short intervals buy little rework at a steep I/O cost; long intervals pay a")
	fmt.Fprintln(w, "full interval of lost work per crash. Slow nodes sit in the failure window")
	fmt.Fprintln(w, "longer, so the same per-node MTBF costs them disproportionally more — the")
	fmt.Fprintln(w, "low-power cluster's many-node bet has a resilience bill attached.")
	return nil
}

func runResilienceDaly(w io.Writer, o Options) error {
	ps, err := sweepPlatforms(o)
	if err != nil {
		return err
	}
	cfg := resilienceConfig(o)
	mtbf, downtime := 480.0, 30.0
	if o.Quick {
		mtbf, downtime = 20.0, 2.0
	}
	horizon := resilienceHorizon(ps, cfg)
	spec := &fault.Spec{
		Seed:            o.Seed ^ resilienceSeed,
		MTBFSeconds:     mtbf,
		HorizonSeconds:  horizon,
		DowntimeSeconds: downtime,
	}
	if o.Fault != nil {
		// A user schedule replaces the default one; its MTBF (when set)
		// also re-anchors the Daly optimum the scan brackets.
		spec = o.Fault
		if spec.MTBFSeconds > 0 {
			mtbf = spec.MTBFSeconds
		}
	}
	resolved, err := spec.Resolve(cfg.Nodes, horizon)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Per-node MTBF %gs on %d nodes -> system MTBF %gs; each platform checkpoints\n",
		mtbf, cfg.Nodes, mtbf/float64(cfg.Nodes))
	fmt.Fprintln(w, "around its own Daly-optimal interval (checkpoint cost = image / memory bandwidth).")

	multipliers := []float64{0.25, 0.5, 1, 2, 4}
	sysMTBF := mtbf / float64(cfg.Nodes)
	taus := make([]float64, len(ps))
	for i, p := range ps {
		tau, err := fault.DalyInterval(cfg.CheckpointSeconds(p), sysMTBF)
		if err != nil {
			return err
		}
		taus[i] = tau
	}

	// One weighted task per platform covers its whole multiplier column;
	// results land in indexed slots, identical at any worker count.
	results := make([][]core.ResilienceResult, len(ps))
	tasks := make([]runner.Task, len(ps))
	for i, p := range ps {
		i, p := i, p
		tasks[i] = runner.Task{
			ID:    "resilience-daly/" + p.Name,
			Title: fmt.Sprintf("Daly scan on %s", p.Name),
			Run: func(io.Writer) error {
				col := make([]core.ResilienceResult, len(multipliers))
				for j, mult := range multipliers {
					c := cfg
					c.IntervalSeconds = mult * taus[i]
					c.Faults = resolved
					rr, err := core.RunResilienceProbe(p, c)
					if err != nil {
						return err
					}
					col[j] = rr
				}
				results[i] = col
				return nil
			},
		}
	}
	pool := runner.Pool{}
	for _, r := range pool.Run(tasks) {
		if r.Err != nil {
			return r.Err
		}
	}

	m := &report.Matrix{
		Title:  "time to solution (s) at multiples of the platform's Daly-optimal tau",
		Corner: "interval \\ platform",
		Cols:   platformCols(ps),
	}
	tauRow := make([]interface{}, len(ps))
	ckptRow := make([]interface{}, len(ps))
	for i := range ps {
		tauRow[i] = taus[i]
		ckptRow[i] = cfg.CheckpointSeconds(ps[i])
	}
	m.AddRow("checkpoint cost C (s)", ckptRow...)
	m.AddRow("tau_opt (s)", tauRow...)
	for j, mult := range multipliers {
		row := make([]interface{}, len(ps))
		for i := range ps {
			row[i] = results[i][j].Seconds
		}
		m.AddRow(fmt.Sprintf("%g x tau_opt", mult), row...)
	}
	fmt.Fprint(w, m.String())
	fmt.Fprintln(w, "Time to solution is flat-bottomed around tau_opt: over-checkpointing (0.25x)")
	fmt.Fprintln(w, "and under-checkpointing (4x) both lose, exactly as Daly's model predicts.")
	return nil
}
