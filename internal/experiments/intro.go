package experiments

import (
	"fmt"
	"io"
	"math"

	"montblanc/internal/core"
	"montblanc/internal/platform"
	"montblanc/internal/power"
	"montblanc/internal/report"
	"montblanc/internal/top500"
	"montblanc/internal/units"
)

func init() {
	register(Experiment{ID: "fig1", Title: "TOP500 exponential growth and the exaflop projection", Cost: 1, Run: runFig1})
	register(Experiment{ID: "table1", Title: "Mont-Blanc selected HPC applications", Cost: 1, Run: runTable1})
	register(Experiment{ID: "fig2", Title: "Memory topologies of the Xeon X5550 and the A9500", Cost: 1, Run: runFig2})
	register(Experiment{ID: "table2", Title: "Snowball vs Xeon X5550 single-node comparison", Cost: 1, Run: runTable2})
}

// Fig1Result bundles the Figure 1 analysis for tests and rendering.
type Fig1Result struct {
	Top         top500.Trend
	Sum         top500.Trend
	ExaflopYear float64
	Budget      power.ExaflopBudget
	GrowthPerYr float64
}

// Fig1Data computes the Figure 1 trend analysis.
func Fig1Data() (Fig1Result, error) {
	topTrend, err := top500.FitTop()
	if err != nil {
		return Fig1Result{}, err
	}
	sumTrend, err := top500.FitSum()
	if err != nil {
		return Fig1Result{}, err
	}
	year, err := topTrend.YearReaching(top500.ExaflopGF)
	if err != nil {
		return Fig1Result{}, err
	}
	return Fig1Result{
		Top:         topTrend,
		Sum:         sumTrend,
		ExaflopYear: year,
		// 2012 state of the art: ~2 GFLOPS/W (the paper's intro).
		Budget:      power.NewExaflopBudget(1e18, 20e6, 2.0),
		GrowthPerYr: topTrend.GrowthPerYear(),
	}, nil
}

func runFig1(w io.Writer, _ Options) error {
	res, err := Fig1Data()
	if err != nil {
		return err
	}
	entries := top500.Entries()
	chart := &report.Chart{
		Title:  "Figure 1: TOP500 performance (log10 GFLOPS) vs year",
		XLabel: "year", YLabel: "log10(GFLOPS)", Width: 64, Height: 16,
	}
	var years, topLog, sumLog, lowLog []float64
	for _, e := range entries {
		years = append(years, float64(e.Year))
		topLog = append(topLog, log10(e.TopGF))
		sumLog = append(sumLog, log10(e.SumGF))
		lowLog = append(lowLog, log10(e.LowGF))
	}
	chart.Add("sum", 'S', years, sumLog)
	chart.Add("#1", 'o', years, topLog)
	chart.Add("#500", '.', years, lowLog)
	fmt.Fprint(w, chart.String())

	tab := &report.Table{Headers: []string{"quantity", "value"}}
	tab.AddRow("#1 growth factor per year", res.GrowthPerYr)
	tab.AddRow("fit R^2", res.Top.Fit.R2)
	tab.AddRow("projected #1 exaflop year", res.ExaflopYear)
	tab.AddRow("required GFLOPS/W at 20MW", res.Budget.RequiredGFperW)
	tab.AddRow("2012 state of the art GFLOPS/W", res.Budget.CurrentGFperW)
	tab.AddRow("efficiency gap (the paper's ~25x)", res.Budget.ImprovementGap)
	fmt.Fprint(w, tab.String())
	return nil
}

func log10(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Log10(v)
}

func runTable1(w io.Writer, _ Options) error {
	tab := &report.Table{
		Title:   "Table I: Mont-Blanc selected HPC applications",
		Headers: []string{"Code", "Scientific Domain", "Institution"},
	}
	for _, a := range core.MontBlancApplications() {
		tab.AddRow(a.Code, a.Domain, a.Institution)
	}
	fmt.Fprint(w, tab.String())
	return nil
}

func runFig2(w io.Writer, _ Options) error {
	for _, p := range []*platform.Platform{platform.MustLookup("XeonX5550"), platform.MustLookup("Snowball")} {
		fmt.Fprintf(w, "%s topology (%s):\n", p.Name, p.String())
		fmt.Fprint(w, p.Topology().Render())
		fmt.Fprintf(w, "L1 page colours: %d\n\n", p.PageColors())
	}
	return nil
}

func runTable2(w io.Writer, _ Options) error {
	rows, err := core.TableII()
	if err != nil {
		return err
	}
	tab := &report.Table{
		Title:   "Table II: Comparison between an Intel Xeon 5550 and ST-Ericsson A9500",
		Headers: []string{"Benchmark", "Snowball", "Xeon", "Ratio", "Energy Ratio"},
	}
	for _, r := range rows {
		name := r.Workload
		switch r.Metric {
		case core.Rate:
			name += " (" + r.Unit + ")"
		case core.Time:
			name += " (" + r.Unit + ")"
		}
		tab.AddRow(name, r.Candidate, r.Reference, r.Ratio, r.EnergyRatio)
	}
	fmt.Fprint(w, tab.String())
	fmt.Fprintf(w, "power model: Snowball %.1fW (full USB budget) vs Xeon %.0fW (TDP)\n",
		platform.MustLookup("Snowball").Power.Compute, platform.MustLookup("XeonX5550").Power.Compute)
	fmt.Fprintf(w, "Snowball RAM %s, Xeon RAM %s\n",
		units.Bytes(platform.MustLookup("Snowball").RAMBytes), units.Bytes(platform.MustLookup("XeonX5550").RAMBytes))
	return nil
}
