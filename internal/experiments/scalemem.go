package experiments

import (
	"fmt"
	"io"
	"strconv"

	"montblanc/internal/cpu"
	"montblanc/internal/mem"
	"montblanc/internal/membench"
	"montblanc/internal/platform"
	"montblanc/internal/report"
	"montblanc/internal/units"
)

func init() {
	register(Experiment{
		ID:    "scale-membench",
		Title: "§V.A at scale: strided sweeps over related-work working sets",
		Cost:  80, // hundreds-of-MB arrays: second only to the locality sweep
		Run:   runScaleMembench,
	})
}

// scaleMembenchSizes spans the working sets of the Mont-Blanc follow-up
// (arXiv:1508.05075) and ThunderX2 (arXiv:2007.04868) measurement
// regimes — far beyond any cache in the registry — which the
// element-at-a-time simulator could not afford. The batched engine
// (translation per page, set machinery per line, steady passes
// replayed; see internal/cache/CACHE.md) makes them routine.
func scaleMembenchSizes(quick bool) []int {
	if quick {
		return []int{4 * units.MiB, 16 * units.MiB}
	}
	return []int{64 * units.MiB, 256 * units.MiB}
}

// scaleMembenchStrides probes line-resident, line-exact and
// page-skipping access patterns (in 64-bit elements).
var scaleMembenchStrides = []int{1, 8, 64}

func runScaleMembench(w io.Writer, o Options) error {
	sizes := scaleMembenchSizes(o.Quick)
	for _, name := range []string{"Snowball", "ThunderX2"} {
		p := platform.MustLookup(name)
		// A contiguous mapping through the real TLB model: the batched
		// path still pays translation once per page and the miss
		// penalty whenever the page walk exceeds the TLB reach.
		runner, err := membench.NewRunner(p, mem.NewContiguousMapper(0))
		if err != nil {
			return err
		}
		headers := []string{"size \\ stride"}
		for _, stride := range scaleMembenchStrides {
			headers = append(headers, strconv.Itoa(stride))
		}
		tab := &report.Table{
			Title:   fmt.Sprintf("%s: effective bandwidth (GB/s) by array size x stride (64-bit elements)", p.Name),
			Headers: headers,
		}
		for _, size := range sizes {
			row := []interface{}{units.Bytes(int64(size))}
			for _, stride := range scaleMembenchStrides {
				res, err := runner.Run(membench.Config{
					ArrayBytes:  size,
					StrideElems: stride,
					Width:       cpu.W64,
				})
				if err != nil {
					return err
				}
				row = append(row, res.Bandwidth/1e9)
			}
			tab.AddRow(row...)
		}
		fmt.Fprint(w, tab.String())
	}
	fmt.Fprintln(w, "At related-work scale bandwidth is flat across sizes — the working")
	fmt.Fprintln(w, "set has settled into its backing level — and collapses with stride as")
	fmt.Fprintln(w, "line utilization drops; past the line size the TLB reach is the last")
	fmt.Fprintln(w, "locality lever.")
	return nil
}
