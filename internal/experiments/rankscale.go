package experiments

import (
	"fmt"
	"io"

	"montblanc/internal/apps/specfem"
	"montblanc/internal/cluster"
)

// scale-ranks pushes the strong-scaling study past the paper's 128-core
// ceiling into the regimes of the Mont-Blanc follow-on work: the
// Mont-Blanc prototype evaluation (arXiv:1508.05075) and the ThunderX2
// cluster study (arXiv:2007.04868) both measure at hundreds-to-
// thousands of cores. The event-heap scheduler makes these rank counts
// affordable to simulate — commit cost is O(log R) per event — and the
// conservative-parallel scheduler (Options.SimWorkers > 1) shards the
// event heaps so the O(10k)-rank points also use multiple host cores,
// byte-identically.

func init() {
	// The Title is part of the pinned quick_all golden; the full
	// (non-quick) curve now reaches 10240 ranks.
	register(Experiment{
		ID:    "scale-ranks",
		Title: "Strong scaling of SPECFEM3D to 512 ranks (follow-on regimes)",
		Cost:  25,
		Run:   runScaleRanks,
	})
}

// scaleRanksShape picks the cluster size, core counts and workload for
// the mode: quick mode is pinned byte-for-byte by the golden suite and
// keeps the original 256-node/512-rank shape; the full curve runs a
// 5120-node slice out to 10240 ranks with a shortened time loop (the
// halo/compute ratio per step is size-independent, so fewer steps keep
// the curve's shape while bounding the wall clock at O(10k) ranks).
func scaleRanksShape(o Options) (nodes int, cores []int, cfg specfem.ScalingConfig) {
	cfg = specfem.ScalingConfig{SimWorkers: o.SimWorkers}
	if o.Quick {
		cfg.Steps = 5
		return 256, []int{32, 128, 512}, cfg
	}
	cfg.Steps = 20
	return 5120, []int{32, 64, 128, 256, 512, 1024, 2048, 4096, 10240}, cfg
}

// ScaleRanksData runs the SPECFEM3D halo-exchange workload on a
// Tibidabo-style slice (two-level switch hierarchy) out to 10240 ranks
// — 80x the paper's largest Figure 3 configuration.
func ScaleRanksData(o Options) ([]cluster.SpeedupPoint, error) {
	nodes, cores, cfg := scaleRanksShape(o)
	c, err := cluster.Tibidabo(nodes)
	if err != nil {
		return nil, err
	}
	return specfem.StrongScaling(c, cores, cfg)
}

func runScaleRanks(w io.Writer, o Options) error {
	nodes, _, _ := scaleRanksShape(o)
	points, err := ScaleRanksData(o)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Rank scaling: SPECFEM3D on a %d-node Tibidabo slice (32-rank baseline)", nodes)
	renderScaling(w, title, points)
	last := points[len(points)-1]
	fmt.Fprintf(w, "efficiency at %d cores vs 32-core run: %.0f%%\n", last.Cores, last.Efficiency*100)
	fmt.Fprintln(w, "regime: the Mont-Blanc prototype (arXiv:1508.05075) and ThunderX2")
	fmt.Fprintln(w, "cluster (arXiv:2007.04868) studies evaluate at hundreds of cores;")
	fmt.Fprintln(w, "the O(log R) event-heap scheduler makes this affordable to simulate.")
	return nil
}
