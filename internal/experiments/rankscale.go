package experiments

import (
	"fmt"
	"io"

	"montblanc/internal/apps/specfem"
	"montblanc/internal/cluster"
)

// scale-ranks pushes the strong-scaling study past the paper's 128-core
// ceiling into the regimes of the Mont-Blanc follow-on work: the
// Mont-Blanc prototype evaluation (arXiv:1508.05075) and the ThunderX2
// cluster study (arXiv:2007.04868) both measure at hundreds-to-
// thousands of cores. The event-heap scheduler makes these rank counts
// affordable to simulate: commit cost is O(log R) per event, so a
// 512-rank run costs barely more per event than a 32-rank one.

func init() {
	register(Experiment{
		ID:    "scale-ranks",
		Title: "Strong scaling of SPECFEM3D to 512 ranks (follow-on regimes)",
		Cost:  25,
		Run:   runScaleRanks,
	})
}

// ScaleRanksData runs the SPECFEM3D halo-exchange workload on a
// 256-node Tibidabo-style slice (two-level switch hierarchy) out to 512
// ranks — 4x the paper's largest Figure 3 configuration.
func ScaleRanksData(o Options) ([]cluster.SpeedupPoint, error) {
	c, err := cluster.Tibidabo(256)
	if err != nil {
		return nil, err
	}
	cfg := specfem.ScalingConfig{}
	cores := []int{32, 64, 128, 256, 512}
	if o.Quick {
		cfg.Steps = 5
		cores = []int{32, 128, 512}
	}
	return specfem.StrongScaling(c, cores, cfg)
}

func runScaleRanks(w io.Writer, o Options) error {
	points, err := ScaleRanksData(o)
	if err != nil {
		return err
	}
	renderScaling(w, "Rank scaling: SPECFEM3D on a 256-node Tibidabo slice (32-rank baseline)", points)
	last := points[len(points)-1]
	fmt.Fprintf(w, "efficiency at %d cores vs 32-core run: %.0f%%\n", last.Cores, last.Efficiency*100)
	fmt.Fprintln(w, "regime: the Mont-Blanc prototype (arXiv:1508.05075) and ThunderX2")
	fmt.Fprintln(w, "cluster (arXiv:2007.04868) studies evaluate at hundreds of cores;")
	fmt.Fprintln(w, "the O(log R) event-heap scheduler makes this affordable to simulate.")
	return nil
}
