package experiments

import (
	"fmt"
	"io"

	"montblanc/internal/core"
	"montblanc/internal/platform"
	"montblanc/internal/power"
	"montblanc/internal/report"
	"montblanc/internal/units"
)

// The sweep* experiment family generalizes Table II from one
// candidate-vs-reference pair to every registered platform: the same
// workload matrix the paper runs on the Snowball and the Xeon, evaluated
// across machine generations (Tibidabo Tegra2 through Mont-Blanc
// Exynos prototypes to a ThunderX2-class server node, plus any machine
// registered from a user spec file via `montblanc -platform-file`).
// The N platforms x M workloads cells are dispatched as weighted tasks
// on the parallel runner; output is identical for any worker count.
func init() {
	register(Experiment{
		ID:    "sweep-matrix",
		Title: "Cross-platform sweep: Table II workloads on every registered platform",
		Cost:  4,
		Run:   runSweepMatrix,
	})
	register(Experiment{
		ID:    "sweep-energy",
		Title: "Cross-platform sweep: energy to solution and pairwise wins",
		Cost:  4,
		Run:   runSweepEnergy,
	})
	register(Experiment{
		ID:    "sweep-specs",
		Title: "Cross-platform sweep: registered machine envelopes and peaks",
		Cost:  1,
		Run:   runSweepSpecs,
	})
}

// sweepReference anchors the ratio columns: the paper's reference
// server when it is part of the sweep, the first platform otherwise.
const sweepReference = "XeonX5550"

// sweepRef resolves the ratio anchor. core.RefIndex errors when the
// reference is absent (it used to guess index 0 silently); a -platform
// restriction may legitimately exclude the Xeon, so the experiments
// fall back to the first swept platform and say so in the output — the
// anchor of every ratio column is never implicit.
func sweepRef(w io.Writer, s *core.Sweep) int {
	ref, err := s.RefIndex(sweepReference)
	if err != nil {
		fmt.Fprintf(w, "note: reference %s not in this sweep; ratios anchored on %s instead\n",
			sweepReference, s.Platforms[0].Name)
		return 0
	}
	return ref
}

// sweepPlatforms resolves the sweep set from the options: the named
// platforms in the given order, or every resolvable platform. Lookups
// go through the options' resolver, so request-scoped inline specs
// (Options.Specs) join the sweep without touching the global registry.
func sweepPlatforms(o Options) ([]*platform.Platform, error) {
	r, err := o.Resolver()
	if err != nil {
		return nil, err
	}
	names := o.Platforms
	if len(names) == 0 {
		names = r.Names()
	}
	ps := make([]*platform.Platform, 0, len(names))
	for _, n := range names {
		p, err := r.Lookup(n)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// sweepData runs the workload matrix for the option-selected platforms
// on a full worker pool.
func sweepData(o Options) (*core.Sweep, error) {
	ps, err := sweepPlatforms(o)
	if err != nil {
		return nil, err
	}
	return core.RunSweep(ps, core.TableIIWorkloads(), 0)
}

// workloadLabel names a matrix row, e.g. "LINPACK (MFLOPS)".
func workloadLabel(w core.Workload) string {
	return fmt.Sprintf("%s (%s)", w.Name, w.Unit)
}

func platformCols(ps []*platform.Platform) []string {
	cols := make([]string, len(ps))
	for i, p := range ps {
		cols[i] = p.Name
	}
	return cols
}

func runSweepMatrix(w io.Writer, o Options) error {
	s, err := sweepData(o)
	if err != nil {
		return err
	}
	ref := sweepRef(w, s)
	fmt.Fprintf(w, "Table II workload matrix across %d platforms (%d cells via the parallel runner)\n",
		len(s.Platforms), len(s.Platforms)*len(s.Workloads))

	values := &report.Matrix{
		Title:  "measured values (rates: bigger is better; times: smaller is better)",
		Corner: "workload \\ platform",
		Cols:   platformCols(s.Platforms),
	}
	for wi, wl := range s.Workloads {
		row := make([]interface{}, len(s.Platforms))
		for pi := range s.Platforms {
			row[pi] = s.Values[wi][pi]
		}
		values.AddRow(workloadLabel(wl), row...)
	}
	fmt.Fprint(w, values.String())

	ratios := &report.Matrix{
		Title:  fmt.Sprintf("ratio vs %s (>= 1: reference faster, the Table II convention)", s.Platforms[ref].Name),
		Corner: "workload \\ platform",
		Cols:   platformCols(s.Platforms),
	}
	for wi, wl := range s.Workloads {
		row := make([]interface{}, len(s.Platforms))
		for pi := range s.Platforms {
			row[pi] = s.Ratio(wi, pi, ref)
		}
		ratios.AddRow(workloadLabel(wl), row...)
	}
	fmt.Fprint(w, ratios.String())
	// The generational narrative only holds when the sweep actually
	// contains a 64-bit Arm server; a -platform restriction may not.
	if sweepHasISA(s.Platforms, platform.ARM64) {
		fmt.Fprintln(w, "Successive Arm generations close the raw-speed gap the paper measured")
		fmt.Fprintln(w, "on the Snowball; the server-class aarch64 node finally overturns it.")
	}
	return nil
}

// sweepHasISA reports whether any swept platform runs the given ISA.
func sweepHasISA(ps []*platform.Platform, isa platform.ISA) bool {
	for _, p := range ps {
		if p.ISA == isa {
			return true
		}
	}
	return false
}

func runSweepEnergy(w io.Writer, o Options) error {
	s, err := sweepData(o)
	if err != nil {
		return err
	}
	ref := sweepRef(w, s)
	fmt.Fprintf(w, "Energy to solution across %d platforms (constant-envelope model, §III.C)\n",
		len(s.Platforms))

	energy := &report.Matrix{
		Title:  fmt.Sprintf("energy ratio vs %s (< 1: candidate needs less energy)", s.Platforms[ref].Name),
		Corner: "workload \\ platform",
		Cols:   platformCols(s.Platforms),
	}
	for wi, wl := range s.Workloads {
		row := make([]interface{}, len(s.Platforms))
		for pi := range s.Platforms {
			row[pi] = s.EnergyRatio(wi, pi, ref)
		}
		energy.AddRow(workloadLabel(wl), row...)
	}
	fmt.Fprint(w, energy.String())

	wins := s.PairWins()
	pair := &report.Matrix{
		Title:  fmt.Sprintf("pairwise energy wins (row beats column on k of %d workloads)", len(s.Workloads)),
		Corner: "winner \\ loser",
		Cols:   platformCols(s.Platforms),
	}
	for i, p := range s.Platforms {
		row := make([]interface{}, len(s.Platforms))
		for j := range s.Platforms {
			if i == j {
				row[j] = "-"
			} else {
				row[j] = wins[i][j]
			}
		}
		pair.AddRow(p.Name, row...)
	}
	fmt.Fprint(w, pair.String())
	// The low-power framing only applies when the sweep pits a smaller
	// envelope against the reference.
	for _, p := range s.Platforms {
		if p.Power.Compute < s.Platforms[ref].Power.Compute {
			fmt.Fprintln(w, "The paper's bet restated N ways: low-power nodes lose on speed yet win")
			fmt.Fprintln(w, "on energy for the workloads whose slowdown stays under the power ratio.")
			break
		}
	}
	return nil
}

func runSweepSpecs(w io.Writer, o Options) error {
	ps, err := sweepPlatforms(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Registered machine envelopes (calibration sources in PLATFORMS.md)")
	tab := &report.Table{
		Headers: []string{"platform", "cores x CPU", "ISA", "RAM", "W",
			"peak SP GF", "peak DP GF", "GB/s", "SP GF/W"},
	}
	for _, p := range ps {
		sp := p.PeakFlopsWithAccel(false)
		tab.AddRow(
			p.Name,
			fmt.Sprintf("%d x %s @ %.2fGHz", p.Cores, p.CPU.Name, p.CPU.ClockHz/1e9),
			p.ISA.String(),
			units.Bytes(p.RAMBytes),
			p.Power.Compute,
			sp/1e9,
			p.PeakFlopsWithAccel(true)/1e9,
			p.MemBandwidth/1e9,
			power.GFLOPSPerWatt(sp, p.Power.Compute),
		)
	}
	fmt.Fprint(w, tab.String())
	fmt.Fprintln(w, "Machines are data: add your own with `montblanc -platform-file mymachine.json`.")
	return nil
}
