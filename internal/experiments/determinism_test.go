package experiments

import (
	"bytes"
	"fmt"
	"testing"
)

// Every registered experiment is a pure function of its Options: two
// runs with the same Options must yield byte-identical output.
func TestExperimentsDeterministic(t *testing.T) {
	for _, opts := range []Options{
		{Quick: true},
		{Quick: true, Seed: 7},
	} {
		opts := opts
		for _, e := range All() {
			e := e
			t.Run(fmt.Sprintf("%s/seed%d", e.ID, opts.Seed), func(t *testing.T) {
				t.Parallel()
				var first, second bytes.Buffer
				if err := e.Run(&first, opts); err != nil {
					t.Fatal(err)
				}
				if err := e.Run(&second, opts); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(first.Bytes(), second.Bytes()) {
					t.Errorf("two runs differ (%d vs %d bytes)", first.Len(), second.Len())
				}
			})
		}
	}
}

// Parallel RunAll must be byte-identical to the sequential run at any
// worker count: each experiment renders into a private buffer and
// sections are emitted in ID order.
func TestRunAllParallelByteIdentical(t *testing.T) {
	opts := Options{Quick: true}
	var sequential bytes.Buffer
	if err := RunAll(&sequential, opts); err != nil {
		t.Fatal(err)
	}
	if sequential.Len() == 0 {
		t.Fatal("sequential RunAll produced no output")
	}
	for workers := 1; workers <= 8; workers++ {
		workers := workers
		t.Run(fmt.Sprintf("parallel%d", workers), func(t *testing.T) {
			t.Parallel()
			var got bytes.Buffer
			if err := RunAllParallel(&got, opts, workers); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), sequential.Bytes()) {
				t.Errorf("parallel=%d output differs from sequential (%d vs %d bytes)",
					workers, got.Len(), sequential.Len())
			}
		})
	}
}

// Structured results carry the same bytes the writer-based API emits.
func TestResultsMatchRunAll(t *testing.T) {
	opts := Options{Quick: true}
	results := Results(All(), opts, 4)
	var fromResults bytes.Buffer
	if err := Write(&fromResults, results); err != nil {
		t.Fatal(err)
	}
	var fromRunAll bytes.Buffer
	if err := RunAll(&fromRunAll, opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromResults.Bytes(), fromRunAll.Bytes()) {
		t.Error("Write(Results(...)) differs from RunAll")
	}
	for i, e := range All() {
		if results[i].ID != e.ID || results[i].Title != e.Title {
			t.Errorf("result %d = %s/%s, want %s/%s",
				i, results[i].ID, results[i].Title, e.ID, e.Title)
		}
		if results[i].Err != nil {
			t.Errorf("%s failed: %v", e.ID, results[i].Err)
		}
		if results[i].Output == "" {
			t.Errorf("%s produced no output", e.ID)
		}
	}
}

// The direct-write single-worker path and the buffered pool path must
// render the same bytes.
func TestStreamSequentialMatchesPooled(t *testing.T) {
	opts := Options{Quick: true}
	es, err := Match("table*", "fig1", "fig2")
	if err != nil {
		t.Fatal(err)
	}
	var direct, pooled bytes.Buffer
	seqResults, err := Stream(&direct, es, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	poolResults, err := Stream(&pooled, es, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), pooled.Bytes()) {
		t.Error("single-worker direct writes differ from pooled buffered writes")
	}
	if len(seqResults) != len(es) || len(poolResults) != len(es) {
		t.Fatalf("results %d/%d, want %d", len(seqResults), len(poolResults), len(es))
	}
	for i := range seqResults {
		if seqResults[i].ID != poolResults[i].ID {
			t.Errorf("result %d: %s vs %s", i, seqResults[i].ID, poolResults[i].ID)
		}
	}
}

func TestMatch(t *testing.T) {
	ids := func(es []Experiment) []string {
		out := make([]string, len(es))
		for i, e := range es {
			out[i] = e.ID
		}
		return out
	}

	got, err := Match("fig3*")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"fig3a", "fig3b", "fig3c"}; !equalStrings(ids(got), want) {
		t.Errorf("fig3* = %v, want %v", ids(got), want)
	}

	// Overlapping args dedup; output stays in ID order.
	got, err = Match("table2", "table*", "fig1")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"fig1", "table1", "table2"}; !equalStrings(ids(got), want) {
		t.Errorf("overlap = %v, want %v", ids(got), want)
	}

	got, err = Match("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(All()) {
		t.Errorf("all matched %d, want %d", len(got), len(All()))
	}

	if _, err := Match("nope"); err == nil {
		t.Error("unknown ID did not error")
	}
	if _, err := Match("fig1", "zzz*"); err == nil {
		t.Error("pattern matching nothing did not error")
	}
	if _, err := Match("[bad"); err == nil {
		t.Error("malformed pattern did not error")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
