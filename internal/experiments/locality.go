package experiments

import (
	"fmt"
	"io"

	"montblanc/internal/membench"
	"montblanc/internal/platform"
	"montblanc/internal/report"
	"montblanc/internal/units"
)

func init() {
	register(Experiment{
		ID:    "locality",
		Title: "§V.A: temporal/spatial locality profile of the stride kernel",
		Cost:  100, // the largest working-set sweep: dominates the suite's wall-clock
		Run:   runLocality,
	})
}

// localitySizes spans L1-resident through DRAM-resident working sets.
func localitySizes(quick bool) []int {
	if quick {
		return []int{16 * units.KiB, 256 * units.KiB, 2 * units.MiB}
	}
	return []int{
		8 * units.KiB, 16 * units.KiB, 32 * units.KiB, 64 * units.KiB,
		256 * units.KiB, 1 * units.MiB, 4 * units.MiB,
	}
}

var localityStrides = []int{1, 2, 4, 8, 16}

func runLocality(w io.Writer, o Options) error {
	for _, p := range []*platform.Platform{platform.MustLookup("Snowball"), platform.MustLookup("XeonX5550")} {
		profile, err := membench.LocalityProfile(p, localitySizes(o.Quick), localityStrides)
		if err != nil {
			return err
		}
		tab := &report.Table{
			Title:   fmt.Sprintf("%s: effective bandwidth (GB/s) by array size x stride", p.Name),
			Headers: []string{"size \\ stride", "1", "2", "4", "8", "16"},
		}
		for _, size := range localitySizes(o.Quick) {
			row := []interface{}{units.Bytes(int64(size))}
			for _, stride := range localityStrides {
				pt, ok := membench.At(profile, size, stride)
				if !ok {
					return fmt.Errorf("experiments: missing locality cell %d/%d", size, stride)
				}
				row = append(row, pt.Bandwidth/1e9)
			}
			tab.AddRow(row...)
		}
		fmt.Fprint(w, tab.String())
		cliffs := membench.CapacityCliffs(profile, 1)
		fmt.Fprintf(w, "stride-1 capacity cliffs between consecutive sizes: %s\n\n",
			formatCliffs(cliffs))
	}
	fmt.Fprintln(w, "The kernel's two knobs expose the memory hierarchy: array size probes")
	fmt.Fprintln(w, "temporal locality (cache capacities), stride probes spatial locality")
	fmt.Fprintln(w, "(line utilization) — §V.A's 'crude estimation' of both.")
	return nil
}

func formatCliffs(cliffs []float64) string {
	s := ""
	for i, c := range cliffs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.2fx", c)
	}
	return s
}
