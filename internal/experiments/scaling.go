package experiments

import (
	"fmt"
	"io"

	"montblanc/internal/apps/bigdft"
	"montblanc/internal/apps/linpack"
	"montblanc/internal/apps/specfem"
	"montblanc/internal/cluster"
	"montblanc/internal/report"
	"montblanc/internal/trace"
)

func init() {
	register(Experiment{ID: "fig3a", Title: "Strong scaling of LINPACK on Tibidabo", Cost: 40, Run: runFig3a})
	register(Experiment{ID: "fig3b", Title: "Strong scaling of SPECFEM3D on Tibidabo", Cost: 10, Run: runFig3b})
	register(Experiment{ID: "fig3c", Title: "Strong scaling of BigDFT on Tibidabo", Cost: 20, Run: runFig3c})
	register(Experiment{ID: "fig4", Title: "Profiling of BigDFT on Tibidabo using 36 cores", Cost: 35, Run: runFig4})
}

func renderScaling(w io.Writer, title string, points []cluster.SpeedupPoint) {
	tab := &report.Table{
		Title:   title,
		Headers: []string{"Cores", "Time (s)", "Speedup", "Efficiency", "Drops"},
	}
	var xs, ys []float64
	for _, p := range points {
		tab.AddRow(p.Cores, p.Seconds, p.Speedup, p.Efficiency, int(p.Drops))
		xs = append(xs, float64(p.Cores))
		ys = append(ys, p.Speedup)
	}
	fmt.Fprint(w, tab.String())
	chart := &report.Chart{XLabel: "Number of Cores", YLabel: "Speedup", Width: 56, Height: 14}
	chart.Add("Ideal", '.', xs, xs)
	chart.Add("measured", 'o', xs, ys)
	fmt.Fprint(w, chart.String())
}

// Fig3aData runs the LINPACK scaling study.
func Fig3aData(o Options) ([]cluster.SpeedupPoint, error) {
	c, err := cluster.Tibidabo(128)
	if err != nil {
		return nil, err
	}
	cfg := linpack.ScalingConfig{SimWorkers: o.SimWorkers}
	cores := []int{8, 16, 32, 48, 64, 80, 96}
	if o.Quick {
		cfg = linpack.ScalingConfig{N: 4096, NB: 64, SimWorkers: o.SimWorkers}
		cores = []int{2, 8, 32}
	}
	return linpack.StrongScaling(c, cores, cfg)
}

func runFig3a(w io.Writer, o Options) error {
	points, err := Fig3aData(o)
	if err != nil {
		return err
	}
	renderScaling(w, "Figure 3a: LINPACK on Tibidabo (block LU, pipelined panel bcast)", points)
	last := points[len(points)-1]
	fmt.Fprintf(w, "efficiency at %d cores: %.0f%% (paper: close to 80%%)\n",
		last.Cores, last.Efficiency*100)
	return nil
}

// Fig3bData runs the SPECFEM3D scaling study (4-core baseline: the
// instance does not fit a single node).
func Fig3bData(o Options) ([]cluster.SpeedupPoint, error) {
	c, err := cluster.Tibidabo(96)
	if err != nil {
		return nil, err
	}
	cfg := specfem.ScalingConfig{SimWorkers: o.SimWorkers}
	cores := []int{4, 8, 16, 32, 64, 128, 192}
	if o.Quick {
		cfg.Steps = 5
		cores = []int{4, 16, 64}
	}
	return specfem.StrongScaling(c, cores, cfg)
}

func runFig3b(w io.Writer, o Options) error {
	points, err := Fig3bData(o)
	if err != nil {
		return err
	}
	renderScaling(w, "Figure 3b: SPECFEM3D on Tibidabo (halo exchange, 4-core baseline)", points)
	last := points[len(points)-1]
	fmt.Fprintf(w, "efficiency at %d cores vs 4-core run: %.0f%% (paper: ~90%%)\n",
		last.Cores, last.Efficiency*100)
	return nil
}

// Fig3cData runs the BigDFT scaling study.
func Fig3cData(o Options) ([]cluster.SpeedupPoint, error) {
	c, err := cluster.Tibidabo(32)
	if err != nil {
		return nil, err
	}
	cfg := bigdft.ScalingConfig{Seed: o.Seed, SimWorkers: o.SimWorkers}
	cores := []int{1, 2, 4, 8, 12, 16, 24, 32, 36}
	if o.Quick {
		cfg.Iters = 3
		cores = []int{1, 8, 36}
	}
	return bigdft.StrongScaling(c, cores, cfg)
}

func runFig3c(w io.Writer, o Options) error {
	points, err := Fig3cData(o)
	if err != nil {
		return err
	}
	renderScaling(w, "Figure 3c: BigDFT on Tibidabo (alltoallv transposes)", points)
	last := points[len(points)-1]
	fmt.Fprintf(w, "efficiency at %d cores: %.0f%% — drops rapidly (paper: 'more troubling')\n",
		last.Cores, last.Efficiency*100)
	return nil
}

// Fig4Data runs the 36-core BigDFT trace and its congestion analysis.
func Fig4Data(o Options) (*trace.Trace, trace.CongestionReport, error) {
	c, err := cluster.Tibidabo(32)
	if err != nil {
		return nil, trace.CongestionReport{}, err
	}
	cfg := bigdft.ScalingConfig{Seed: o.Seed, SimWorkers: o.SimWorkers}
	if o.Quick {
		cfg.Iters = 3
	}
	rep, err := bigdft.TraceDistributed(c, 36, cfg)
	if err != nil {
		return nil, trace.CongestionReport{}, err
	}
	return rep.Trace, trace.AnalyzeCongestion(rep.Trace, "alltoallv"), nil
}

func runFig4(w io.Writer, o Options) error {
	tr, cr, err := Fig4Data(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 4: BigDFT on 36 cores — alltoallv congestion analysis")
	tab := &report.Table{Headers: []string{"quantity", "value"}}
	tab.AddRow("alltoallv instances", cr.Instances)
	tab.AddRow("delayed (contain retransmissions)", cr.Delayed)
	tab.AddRow("fully delayed (all nodes)", cr.FullyDelayed)
	tab.AddRow("partially delayed (only part)", cr.PartiallyDelayed)
	tab.AddRow("total retransmissions", cr.TotalDrops)
	if cr.MeanCleanDuration > 0 {
		tab.AddRow("mean clean duration (ms)", cr.MeanCleanDuration*1e3)
	}
	tab.AddRow("mean delayed duration (ms)", cr.MeanDelayedDuration*1e3)
	fmt.Fprint(w, tab.String())
	fmt.Fprintln(w, "\nParaver-style timeline ('A' = alltoallv, '=' = compute):")
	fmt.Fprint(w, tr.Gantt(96))
	fmt.Fprintln(w, "diagnosis: the Ethernet switch port buffers overflow under the")
	fmt.Fprintln(w, "linear alltoallv incast; retransmission timeouts delay the collectives.")
	return nil
}
