package experiments

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"energy-phases", "fig1", "fig2", "fig3a", "fig3b", "fig3c", "fig4",
		"fig5", "fig6", "fig7", "locality", "pagealloc",
		"perspectives", "resilience-daly", "resilience-sweep",
		"scale-membench", "scale-ranks", "sweep-energy",
		"sweep-matrix", "sweep-specs", "table1", "table2",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("experiments = %d, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := Find("fig4"); !ok {
		t.Error("Find(fig4) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) succeeded")
	}
}

// Every experiment runs to completion in quick mode and produces output.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf, Options{Quick: true}); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Error("no output")
			}
		})
	}
}

func TestFig1Findings(t *testing.T) {
	res, err := Fig1Data()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExaflopYear < 2016.5 || res.ExaflopYear > 2020.5 {
		t.Errorf("exaflop year = %.1f, want ~2018", res.ExaflopYear)
	}
	if res.Budget.ImprovementGap < 20 || res.Budget.ImprovementGap > 30 {
		t.Errorf("efficiency gap = %.1f, want ~25", res.Budget.ImprovementGap)
	}
}

func TestFig3QuickShapes(t *testing.T) {
	o := Options{Quick: true}
	a, err := Fig3aData(o)
	if err != nil {
		t.Fatal(err)
	}
	if last := a[len(a)-1]; last.Efficiency < 0.5 {
		t.Errorf("quick LINPACK efficiency %.2f too low", last.Efficiency)
	}
	b, err := Fig3bData(o)
	if err != nil {
		t.Fatal(err)
	}
	if last := b[len(b)-1]; last.Efficiency < 0.85 {
		t.Errorf("quick SPECFEM efficiency %.2f, want ~0.9+", last.Efficiency)
	}
	c, err := Fig3cData(o)
	if err != nil {
		t.Fatal(err)
	}
	if last := c[len(c)-1]; last.Efficiency > 0.6 {
		t.Errorf("quick BigDFT efficiency %.2f did not collapse", last.Efficiency)
	}
	// The ordering claim of Figure 3: at its largest scale BigDFT is far
	// less efficient than SPECFEM3D at *its* largest (which is bigger).
	if c[len(c)-1].Efficiency >= b[len(b)-1].Efficiency {
		t.Error("BigDFT should scale worse than SPECFEM3D")
	}
}

func TestFig4Findings(t *testing.T) {
	_, cr, err := Fig4Data(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Instances == 0 || cr.Delayed == 0 {
		t.Errorf("no delayed collectives found: %+v", cr)
	}
	if cr.Delayed < cr.Instances/2 {
		t.Errorf("delayed = %d of %d, want most", cr.Delayed, cr.Instances)
	}
}

// The full Figure 5 run reproduces the paper's two-mode picture with the
// default seed.
func TestFig5Findings(t *testing.T) {
	res, err := Fig5Data(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Modes.Bimodal {
		t.Fatal("default Figure 5 run not bimodal")
	}
	if res.Modes.Ratio < 4 || res.Modes.Ratio > 6 {
		t.Errorf("mode ratio = %.2f, want ~5", res.Modes.Ratio)
	}
	if res.Streaks.Count != 1 {
		t.Errorf("degraded episodes = %d, want 1 (all consecutive)", res.Streaks.Count)
	}
	if res.Streaks.Longest != res.Streaks.Total {
		t.Error("degraded measurements not fully consecutive")
	}
	if len(res.Measurements) != 42*50 {
		t.Errorf("measurements = %d, want 2100", len(res.Measurements))
	}
}

func TestPageAllocFindings(t *testing.T) {
	res, err := PageAllocData(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.RandomCV <= res.ContiguousCV {
		t.Errorf("random CV %.4f not above contiguous CV %.4f",
			res.RandomCV, res.ContiguousCV)
	}
}

func TestRunAllQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"fig1", "table2", "fig7"} {
		if !strings.Contains(out, "==== "+id) {
			t.Errorf("RunAll output missing %s", id)
		}
	}
}

// brokenPipeWriter accepts `limit` bytes, then fails every write — the
// `montblanc all | head` scenario.
type brokenPipeWriter struct {
	limit   int
	written int
}

var errPipe = errors.New("broken pipe")

func (w *brokenPipeWriter) Write(p []byte) (int, error) {
	if w.written >= w.limit {
		return 0, errPipe
	}
	n := len(p)
	if w.written+n > w.limit {
		n = w.limit - w.written
	}
	w.written += n
	if n < len(p) {
		return n, errPipe
	}
	return n, nil
}

// A dead downstream writer must stop the suite instead of silently
// computing every remaining experiment — on both the sequential and the
// pooled path.
func TestWriterErrorStopsSuite(t *testing.T) {
	for _, workers := range []int{1, 4} {
		w := &brokenPipeWriter{limit: 64}
		results, err := Stream(w, All(), Options{Quick: true}, workers)
		if !errors.Is(err, errPipe) {
			t.Errorf("workers=%d: err = %v, want the pipe error", workers, err)
		}
		if len(results) >= len(All()) {
			t.Errorf("workers=%d: all %d experiments emitted despite a dead writer",
				workers, len(results))
		}
	}
}

// The sweep family honors Options.Platforms, errors on unknown names,
// and its inner parallel dispatch is worker-count independent.
func TestSweepPlatformSelection(t *testing.T) {
	sweep, _ := Find("sweep-matrix")
	var restricted bytes.Buffer
	err := sweep.Run(&restricted, Options{Platforms: []string{"Snowball", "XeonX5550"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(restricted.String(), "across 2 platforms") {
		t.Error("sweep ignored Options.Platforms")
	}
	if strings.Contains(restricted.String(), "Tegra2") {
		t.Error("excluded platform leaked into the sweep")
	}
	if err := sweep.Run(&bytes.Buffer{}, Options{Platforms: []string{"VAX"}}); err == nil {
		t.Error("unknown platform accepted")
	}
	for _, id := range []string{"sweep-matrix", "sweep-energy", "sweep-specs"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("%s not registered", id)
		}
		var full bytes.Buffer
		if err := e.Run(&full, Options{}); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"Snowball", "XeonX5550", "MontBlancNode", "ThunderX2"} {
			if !strings.Contains(full.String(), name) {
				t.Errorf("%s output missing %s", id, name)
			}
		}
	}
}
