package experiments

import (
	"bytes"
	"testing"

	"montblanc/internal/platform"
)

// inlineSpec returns a valid request-scoped spec derived from a
// builtin.
func inlineSpec(t *testing.T, name string, watts float64) platform.Spec {
	t.Helper()
	s, ok := platform.LookupSpec("Snowball")
	if !ok {
		t.Fatal("builtin Snowball missing")
	}
	s.Name = name
	s.PowerName = ""
	s.Power = nil
	s.Watts = watts
	return s
}

func mustKey(t *testing.T, id string, o Options) string {
	t.Helper()
	k, err := CacheKey(id, o)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestCanonicalJSONDeterministic(t *testing.T) {
	o := Options{Quick: true, Seed: 7, Platforms: []string{"Snowball", "XeonX5550"}}
	a, err := CanonicalJSON("fig1", o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalJSON("fig1", o)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("canonical form not stable:\n%s\n%s", a, b)
	}
}

// An empty platform list and the explicit every-name-sorted list are
// the same request (sweepPlatforms applies exactly this expansion), so
// they must share a cache key.
func TestCacheKeyEmptyPlatformsEqualsExplicitAll(t *testing.T) {
	implicit := mustKey(t, "sweep-matrix", Options{Quick: true})
	explicit := mustKey(t, "sweep-matrix", Options{Quick: true, Platforms: platform.Names()})
	if implicit != explicit {
		t.Error("implicit all-platforms request keyed differently from the explicit one")
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	base := Options{Quick: true, Platforms: []string{"Snowball", "XeonX5550"}}
	k := mustKey(t, "sweep-matrix", base)

	if mustKey(t, "sweep-energy", base) == k {
		t.Error("different experiment, same key")
	}
	if mustKey(t, "sweep-matrix", Options{Quick: false, Platforms: base.Platforms}) == k {
		t.Error("different quick flag, same key")
	}
	if mustKey(t, "sweep-matrix", Options{Quick: true, Seed: 9, Platforms: base.Platforms}) == k {
		t.Error("different seed, same key")
	}
	// Platform order changes sweep column order, hence output.
	reordered := Options{Quick: true, Platforms: []string{"XeonX5550", "Snowball"}}
	if mustKey(t, "sweep-matrix", reordered) == k {
		t.Error("different platform order, same key")
	}
}

// An inline spec shadowing a registered name is a different machine:
// the resolved Spec JSON in the canonical form must change the key
// even though the name list is identical.
func TestCacheKeyResolvesInlineShadow(t *testing.T) {
	names := Options{Quick: true, Platforms: []string{"Snowball"}}
	k := mustKey(t, "sweep-matrix", names)

	shadow := names
	shadow.Specs = []platform.Spec{inlineSpec(t, "Snowball", 123)}
	if mustKey(t, "sweep-matrix", shadow) == k {
		t.Error("shadowed Snowball keyed identically to the builtin")
	}

	// Two structurally identical inline specs key identically.
	again := names
	again.Specs = []platform.Spec{inlineSpec(t, "Snowball", 123)}
	if mustKey(t, "sweep-matrix", shadow) != mustKey(t, "sweep-matrix", again) {
		t.Error("identical inline specs keyed differently")
	}
}

func TestCacheKeyUnknownPlatform(t *testing.T) {
	if _, err := CacheKey("fig1", Options{Platforms: []string{"NoSuchMachine"}}); err == nil {
		t.Error("unknown platform accepted")
	}
}

// Inline specs must be visible to the sweep experiments without
// touching the global registry.
func TestSweepUsesInlineSpecs(t *testing.T) {
	o := Options{
		Quick:     true,
		Platforms: []string{"Snowball", "RequestScoped"},
		Specs:     []platform.Spec{inlineSpec(t, "RequestScoped", 4)},
	}
	ps, err := sweepPlatforms(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[1].Name != "RequestScoped" {
		t.Fatalf("sweep platforms = %v", ps)
	}
	if _, ok := platform.LookupSpec("RequestScoped"); ok {
		t.Error("inline spec leaked into the registry")
	}
}
