package experiments

import (
	"fmt"
	"io"

	"montblanc/internal/platform"
	"montblanc/internal/power"
	"montblanc/internal/report"
)

func init() {
	register(Experiment{
		ID:    "perspectives",
		Title: "§VI: hybrid Mont-Blanc node efficiency vs the exaflop barrier",
		Cost:  1,
		Run:   runPerspectives,
	})
}

// PerspectivesResult quantifies the §VI.A outlook: node-level
// GFLOPS/W of the Tibidabo Tegra2, the envisioned Exynos 5 prototype
// node (CPU+Mali), and the distance to the 50 GFLOPS/W exaflop target.
type PerspectivesResult struct {
	Tegra2GFperW      float64 // DP, node level
	Exynos5PeakGFperW float64 // SP hybrid peak at SoC power
	Exynos5NodeGFperW float64 // with network/cooling/storage overheads
	ExaflopGFperW     float64
	StateOfArtGFperW  float64
}

// exynosNodeOverheadWatts models the per-node share of "the network
// ... as well as the cooling and storage" the paper says must be
// accounted beyond the 5 W SoC.
const exynosNodeOverheadWatts = 10

// PerspectivesData computes the §VI.A efficiency ladder.
func PerspectivesData() PerspectivesResult {
	tegra := platform.MustLookup("Tegra2")
	exynos := platform.MustLookup("Exynos5Dual")
	return PerspectivesResult{
		Tegra2GFperW: power.GFLOPSPerWatt(tegra.PeakFlops(true), tegra.Power.Compute),
		Exynos5PeakGFperW: power.GFLOPSPerWatt(
			exynos.PeakFlopsWithAccel(false), exynos.Power.Compute),
		Exynos5NodeGFperW: power.GFLOPSPerWatt(
			exynos.PeakFlopsWithAccel(false), exynos.Power.Compute+exynosNodeOverheadWatts),
		ExaflopGFperW:    power.NewExaflopBudget(1e18, 20e6, 2).RequiredGFperW,
		StateOfArtGFperW: 2,
	}
}

func runPerspectives(w io.Writer, _ Options) error {
	res := PerspectivesData()
	exynos := platform.MustLookup("Exynos5Dual")
	fmt.Fprintln(w, "§VI perspectives: toward hybrid embedded platforms")
	tab := &report.Table{Headers: []string{"system", "GFLOPS/W", "note"}}
	tab.AddRow("Tibidabo Tegra2 node (DP)", res.Tegra2GFperW, "today: CPU only, no NEON")
	tab.AddRow("2012 Green500 leader", res.StateOfArtGFperW, "the paper's reference point")
	tab.AddRow("Exynos5+Mali SoC peak (SP)", res.Exynos5PeakGFperW,
		fmt.Sprintf("~%.0f GFLOPS at %.0fW", exynos.PeakFlopsWithAccel(false)/1e9, exynos.Power.Compute))
	tab.AddRow("Exynos5 node w/ overheads", res.Exynos5NodeGFperW,
		"network+cooling+storage accounted")
	tab.AddRow("exaflop at 20MW", res.ExaflopGFperW, "the barrier")
	fmt.Fprint(w, tab.String())
	fmt.Fprintln(w, "\"even an efficiency of 5 or 7 GFLOPS per Watt would be an")
	fmt.Fprintln(w, "accomplishment\" — the hybrid node clears that bar on paper;")
	fmt.Fprintln(w, "double precision and the network remain the open questions.")
	return nil
}
