package experiments

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"montblanc/internal/core"
	"montblanc/internal/fault"
	"montblanc/internal/platform"
)

// The resilience quick outputs are pinned like the figures: fault
// schedules are seeded data, so the same request must render the same
// matrices forever.
func TestResilienceQuickOutputGolden(t *testing.T) {
	for _, id := range []string{"resilience-sweep", "resilience-daly"} {
		t.Run(id, func(t *testing.T) {
			e, ok := Find(id)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			var buf bytes.Buffer
			if err := e.Run(&buf, Options{Quick: true}); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, filepath.Join("testdata", id+"_quick.golden"), buf.Bytes())
		})
	}
}

// Fault-injected experiments under the conservative-parallel scheduler
// pin the same bytes: crashes and degradations are ordinary events.
func TestResilienceQuickOutputGoldenParallelScheduler(t *testing.T) {
	for _, id := range []string{"resilience-sweep", "resilience-daly"} {
		t.Run(id, func(t *testing.T) {
			e, ok := Find(id)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			var buf bytes.Buffer
			if err := e.Run(&buf, Options{Quick: true, SimWorkers: 4}); err != nil {
				t.Fatal(err)
			}
			compareGolden(t, filepath.Join("testdata", id+"_quick.golden"), buf.Bytes())
		})
	}
}

// A user-supplied schedule replaces the built-in failure grid, and its
// pinned checkpoint interval replaces the interval grid.
func TestResilienceSweepHonorsUserFault(t *testing.T) {
	e, _ := Find("resilience-sweep")
	var buf bytes.Buffer
	o := Options{
		Quick:     true,
		Platforms: []string{"Tegra2"},
		Fault: &fault.Spec{
			Name: "maintenance window", DowntimeSeconds: 1,
			Events:                    []fault.Event{{Node: 1, Time: 3}},
			CheckpointIntervalSeconds: 1.5,
		},
	}
	if err := e.Run(&buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "maintenance window tau=1.5s") {
		t.Errorf("user schedule row missing:\n%s", out)
	}
	if strings.Contains(out, "mtbf=") || strings.Contains(out, "failure-free") {
		t.Errorf("default grid still present alongside user schedule:\n%s", out)
	}
}

func TestResilienceExperimentsRejectBadFault(t *testing.T) {
	for _, id := range []string{"resilience-sweep", "resilience-daly"} {
		e, _ := Find(id)
		var buf bytes.Buffer
		o := Options{Quick: true, Fault: &fault.Spec{MTBFSeconds: math.NaN()}}
		if err := e.Run(&buf, o); err == nil {
			t.Errorf("%s accepted NaN MTBF", id)
		}
	}
}

// The fault schedule is cache-key material: a fault-injected request
// must never replay a failure-free run's cached bytes.
func TestCacheKeyDiscriminatesFault(t *testing.T) {
	base := Options{Quick: true, Platforms: []string{"Tegra2"}}
	k := mustKey(t, "resilience-sweep", base)

	injected := base
	injected.Fault = &fault.Spec{MTBFSeconds: 100, HorizonSeconds: 1000}
	ki := mustKey(t, "resilience-sweep", injected)
	if ki == k {
		t.Error("fault-injected request keyed like the failure-free one")
	}

	tweaked := base
	tweaked.Fault = &fault.Spec{MTBFSeconds: 200, HorizonSeconds: 1000}
	if mustKey(t, "resilience-sweep", tweaked) == ki {
		t.Error("different fault schedules, same key")
	}
}

func TestCacheKeyRejectsInvalidFault(t *testing.T) {
	o := Options{Quick: true, Fault: &fault.Spec{MTBFSeconds: -1}}
	if _, err := CacheKey("resilience-sweep", o); err == nil {
		t.Error("invalid fault spec keyed successfully")
	}
}

// The acceptance shape: on a robust full-size configuration the
// measured time to solution bottoms out near the Daly-optimal
// interval — far from it in either direction costs real time.
func TestDalyOptimumShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size Daly scan in -short mode")
	}
	p := platform.MustLookup("Tegra2")
	cfg := core.ResilienceConfig{
		Nodes: 4, WorkFlops: 4e10, CheckpointBytes: 512 << 20,
		HaloBytes: 256 << 10, Efficiency: 0.5,
	}
	mtbf := 240.0 // per node; system MTBF 60s over ~115s of work
	tau, err := fault.DalyInterval(cfg.CheckpointSeconds(p), mtbf/float64(cfg.Nodes))
	if err != nil {
		t.Fatal(err)
	}
	spec := &fault.Spec{Seed: 5, MTBFSeconds: mtbf, HorizonSeconds: 4000, DowntimeSeconds: 10}
	resolved, err := spec.Resolve(cfg.Nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	multipliers := []float64{0.0625, 0.25, 0.5, 1, 2, 4, 16}
	tts := make([]float64, len(multipliers))
	for i, mult := range multipliers {
		c := cfg
		c.IntervalSeconds = mult * tau
		c.Faults = resolved
		rr, err := core.RunResilienceProbe(p, c)
		if err != nil {
			t.Fatal(err)
		}
		tts[i] = rr.Seconds
	}
	best := 0
	for i := range tts {
		if tts[i] < tts[best] {
			best = i
		}
	}
	if m := multipliers[best]; m < 0.25 || m > 4 {
		t.Errorf("TTS minimized at %g x tau_opt (%v), want within [0.25, 4]; curve %v",
			m, tts[best], tts)
	}
	// The extremes must pay: far over- and under-checkpointing are both
	// strictly worse than the Daly interval itself.
	if tts[0] <= tts[3] {
		t.Errorf("0.0625 x tau_opt (%v) not worse than tau_opt (%v)", tts[0], tts[3])
	}
	if tts[len(tts)-1] <= tts[3] {
		t.Errorf("16 x tau_opt (%v) not worse than tau_opt (%v)", tts[len(tts)-1], tts[3])
	}
}
