//go:build race

package experiments

// raceEnabled reports whether the race detector is active; the
// quick-suite golden test skips under -race (the determinism suite
// already covers the same code paths there).
const raceEnabled = true
