package experiments

import (
	"fmt"
	"io"

	"montblanc/internal/core"
	"montblanc/internal/report"
)

// energy-phases is the phase-resolved counterpart of sweep-energy: the
// paper's §III.C accounting charges one constant envelope for a whole
// run, but the follow-on measurement work (arXiv:1410.3440, and the
// ThunderX2 study's >3x idle-vs-load divergence, arXiv:2007.04868)
// integrates power over application phases. Every registered platform
// runs the same phased mini-app — compute round, DRAM sweep, ring halo
// exchange on a shared GbE fabric — and its power profile is integrated
// over the resulting trace, splitting joules by execution state.
func init() {
	register(Experiment{
		ID:    "energy-phases",
		Title: "Phase-resolved energy: joules by execution state on every registered platform",
		Cost:  3,
		Run:   runEnergyPhases,
	})
}

// phaseProbeConfig sizes the probe: the full run is a few seconds of
// virtual time per platform, the quick run shrinks every dimension.
// Rank 0 carries 30% extra compute so the trace shows the straggler
// waits and idle tails real phased applications have.
func phaseProbeConfig(o Options) core.PhaseProbeConfig {
	if o.Quick {
		return core.PhaseProbeConfig{
			Nodes: 4, Iters: 4, FlopsPerIter: 5e8, SweepBytes: 16 << 20,
			Imbalance: 0.3, SimWorkers: o.SimWorkers,
		}
	}
	return core.PhaseProbeConfig{Imbalance: 0.3, SimWorkers: o.SimWorkers}
}

func runEnergyPhases(w io.Writer, o Options) error {
	ps, err := sweepPlatforms(o)
	if err != nil {
		return err
	}
	cfg := phaseProbeConfig(o)
	pes, err := core.RunPhaseSweep(ps, cfg, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Phase-resolved energy accounting across %d platforms (power profiles, PLATFORMS.md)\n",
		len(pes))
	fmt.Fprintln(w, "Same work per node on every machine; the per-phase time and watts differ.")

	cols := platformCols(ps)
	joules := &report.Matrix{
		Title:  "energy by execution state (joules, all nodes over the job makespan)",
		Corner: "quantity \\ platform",
		Cols:   cols,
	}
	for _, st := range core.PhaseStates() {
		row := make([]interface{}, len(pes))
		for i, pe := range pes {
			row[i] = pe.Breakdown.Joules(st)
		}
		joules.AddRow(st.String()+" (J)", row...)
	}
	totals := make([]interface{}, len(pes))
	envelopes := make([]interface{}, len(pes))
	savings := make([]interface{}, len(pes))
	for i, pe := range pes {
		totals[i] = pe.Breakdown.Total
		envelopes[i] = pe.EnvelopeJoules
		saving := 0.0
		if pe.EnvelopeJoules > 0 {
			saving = (1 - pe.Breakdown.Total/pe.EnvelopeJoules) * 100
		}
		savings[i] = saving
	}
	joules.AddRow("total (J)", totals...)
	joules.AddRow("constant envelope (J)", envelopes...)
	joules.AddRow("profile vs envelope (%)", savings...)
	fmt.Fprint(w, joules.String())

	shares := &report.Matrix{
		Title:  "where the time goes (% of node-seconds per state)",
		Corner: "state \\ platform",
		Cols:   cols,
	}
	for _, st := range core.PhaseStates() {
		row := make([]interface{}, len(pes))
		for i, pe := range pes {
			nodeSeconds := pe.Seconds * float64(len(pe.Breakdown.ByRank))
			share := 0.0
			if nodeSeconds > 0 {
				share = pe.Breakdown.SecondsByState[st] / nodeSeconds * 100
			}
			row[i] = share
		}
		shares.AddRow(st.String()+" (%)", row...)
	}
	fmt.Fprint(w, shares.String())

	fmt.Fprintln(w, "A uniform profile reduces the total exactly to the constant envelope —")
	fmt.Fprintln(w, "the paper's §III.C bound is the degenerate case of this integration.")
	fmt.Fprintln(w, "Fast nodes shift joules from compute into communication and idle; slow")
	fmt.Fprintln(w, "nodes burn their envelope in compute — the phase mix, not the envelope,")
	fmt.Fprintln(w, "decides the energy bill.")
	return nil
}
