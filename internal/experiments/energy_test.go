package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// energy-phases must emit identical bytes for any worker count, both
// for the experiment-level pool (-parallel 1..8) and for the internal
// per-platform phase sweep it dispatches on a full pool.
func TestEnergyPhasesDeterministicAcrossWorkers(t *testing.T) {
	es, err := Match("energy-phases")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Quick: true}
	var base bytes.Buffer
	if _, err := Stream(&base, es, opts, 1); err != nil {
		t.Fatal(err)
	}
	if base.Len() == 0 {
		t.Fatal("energy-phases produced no output")
	}
	for workers := 2; workers <= 8; workers++ {
		workers := workers
		t.Run(fmt.Sprintf("parallel%d", workers), func(t *testing.T) {
			t.Parallel()
			var got bytes.Buffer
			if _, err := Stream(&got, es, opts, workers); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), base.Bytes()) {
				t.Errorf("workers=%d output differs (%d vs %d bytes)",
					workers, got.Len(), base.Len())
			}
		})
	}
}

// The energy-phases output must carry the per-state matrix and the
// envelope comparison for every platform in the restricted set.
func TestEnergyPhasesOutputShape(t *testing.T) {
	var buf bytes.Buffer
	opts := Options{Quick: true, Platforms: []string{"Snowball", "ThunderX2"}}
	if err := runEnergyPhases(&buf, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"compute (J)", "memory (J)", "communication (J)", "idle (J)",
		"total (J)", "constant envelope (J)", "Snowball", "ThunderX2",
		"where the time goes",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q", frag)
		}
	}
}

// A sweep restricted away from the paper's reference must say which
// platform anchors the ratios instead of silently using index 0.
func TestSweepRefFallbackIsAnnounced(t *testing.T) {
	var buf bytes.Buffer
	opts := Options{Quick: true, Platforms: []string{"Snowball", "Tegra2"}}
	if err := runSweepMatrix(&buf, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "note: reference XeonX5550 not in this sweep") ||
		!strings.Contains(out, "anchored on Snowball") {
		t.Errorf("fallback not announced:\n%s", out)
	}

	// With the reference present there is no note — the historical
	// output is untouched.
	buf.Reset()
	if err := runSweepMatrix(&buf, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "note: reference") {
		t.Error("fallback note printed although the reference is in the sweep")
	}
}
