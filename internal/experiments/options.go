package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"montblanc/internal/fault"
	"montblanc/internal/platform"
)

// canonicalRequest is the exact document hashed into a cache key. The
// field set and order are part of the service's cache contract
// (SERVICE.md): every knob that can change an experiment's output is
// present — always, with zero values explicit, so "unset" and
// "explicitly default" canonicalize identically — and the platform set
// is resolved down to full Spec JSON, so two requests naming the same
// platform but meaning different machines (an inline shadow, a
// different registry) never share a key.
type canonicalRequest struct {
	Experiment string          `json:"experiment"`
	Quick      bool            `json:"quick"`
	Seed       uint64          `json:"seed"`
	Platforms  []platform.Spec `json:"platforms"`
	// Fault is the user fault schedule, or null for the defaults. It is
	// deliberately key material — fault-injected results must never
	// replay from a failure-free run's cache entry (contrast
	// Options.SimWorkers, which cannot change output and is absent).
	Fault *fault.Spec `json:"fault"`
}

// CanonicalJSON renders the request (id, o) in canonical wire form:
// fixed field order, defaults explicit, and the platform set expanded
// to resolved specs in request order (an empty Platforms list means
// every resolvable name, sorted — the same expansion sweepPlatforms
// applies). The determinism suite guarantees an experiment's output is
// a pure function of exactly these bytes, which is what makes the
// service's content-addressed cache sound: equal canonical bytes imply
// equal output. (The converse need not hold — two different platform
// sets may render identically for an experiment that ignores them;
// that costs a duplicate cache entry, never a wrong answer.)
func CanonicalJSON(id string, o Options) ([]byte, error) {
	if o.Fault != nil {
		if err := o.Fault.Validate(); err != nil {
			return nil, err
		}
	}
	r, err := o.Resolver()
	if err != nil {
		return nil, err
	}
	names := o.Platforms
	if len(names) == 0 {
		names = r.Names()
	}
	specs := make([]platform.Spec, 0, len(names))
	for _, n := range names {
		s, ok := r.LookupSpec(n)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown platform %q in options", n)
		}
		specs = append(specs, s)
	}
	return json.Marshal(canonicalRequest{
		Experiment: id,
		Quick:      o.Quick,
		Seed:       o.Seed,
		Platforms:  specs,
		Fault:      o.Fault,
	})
}

// CacheKey returns the content address of one experiment execution:
// the hex SHA-256 of CanonicalJSON(id, o). Results stored under this
// key may be replayed for any request that canonicalizes to the same
// bytes.
func CacheKey(id string, o Options) (string, error) {
	doc, err := CanonicalJSON(id, o)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:]), nil
}
