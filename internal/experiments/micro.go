package experiments

import (
	"fmt"
	"io"

	"montblanc/internal/cpu"
	"montblanc/internal/magicfilter"
	"montblanc/internal/membench"
	"montblanc/internal/osmodel"
	"montblanc/internal/platform"
	"montblanc/internal/report"
	"montblanc/internal/stats"
	"montblanc/internal/units"
)

func init() {
	register(Experiment{ID: "fig5", Title: "Impact of real-time priority on Snowball bandwidth", Cost: 15, Run: runFig5})
	register(Experiment{ID: "fig6", Title: "Influence of element width and unrolling on bandwidth", Cost: 6, Run: runFig6})
	register(Experiment{ID: "fig7", Title: "Magicfilter auto-tuning: cycles and cache accesses vs unroll", Cost: 8, Run: runFig7})
	register(Experiment{ID: "pagealloc", Title: "Physical page allocation and run-to-run reproducibility", Cost: 12, Run: runPageAlloc})
}

// Fig5Result is the RT-scheduler study outcome.
type Fig5Result struct {
	Measurements []membench.Measurement
	Modes        stats.Modes
	Streaks      stats.Streaks
}

// fig5Seed is the default seed; chosen so the RT degraded window
// intersects the sweep in one long consecutive episode, as in the
// paper's unlucky run ("all degraded measures occurred consecutively").
const fig5Seed = 13

// Fig5Data runs the randomized RT-priority sweep on the Snowball.
func Fig5Data(o Options) (Fig5Result, error) {
	seed := o.Seed
	if seed == 0 {
		seed = fig5Seed
	}
	p := platform.MustLookup("Snowball")
	reps := 42
	step := units.KiB
	if o.Quick {
		reps = 10
		step = 4 * units.KiB
	}
	var sizes []int
	for s := step; s <= 50*units.KiB; s += step {
		sizes = append(sizes, s)
	}
	env := osmodel.ARMRealTimeEnvironment(seed)
	ms, err := membench.Sweep(p, env, sizes, reps)
	if err != nil {
		return Fig5Result{}, err
	}
	bws := make([]float64, len(ms))
	marks := make([]bool, len(ms))
	for i, m := range ms {
		bws[i] = m.Bandwidth
		marks[i] = m.Degraded
	}
	return Fig5Result{
		Measurements: ms,
		Modes:        stats.TwoModes(bws),
		Streaks:      stats.FindStreaks(marks),
	}, nil
}

func runFig5(w io.Writer, o Options) error {
	res, err := Fig5Data(o)
	if err != nil {
		return err
	}
	sizeChart := &report.Chart{
		Title:  "Figure 5a: bandwidth vs array size (RT priority, randomized reps)",
		XLabel: "array KiB", YLabel: "GB/s", Width: 60, Height: 14,
	}
	var xs, ys, seqX, seqY []float64
	for _, m := range res.Measurements {
		xs = append(xs, float64(m.SizeBytes)/units.KiB)
		ys = append(ys, m.Bandwidth/1e9)
		seqX = append(seqX, float64(m.Seq))
		seqY = append(seqY, m.Bandwidth/1e9)
	}
	sizeChart.Add("measurement", 'o', xs, ys)
	fmt.Fprint(w, sizeChart.String())

	seqChart := &report.Chart{
		Title:  "Figure 5b: same data in sequence (wall-clock) order",
		XLabel: "sequence #", YLabel: "GB/s", Width: 60, Height: 14,
	}
	seqChart.Add("measurement", 'o', seqX, seqY)
	fmt.Fprint(w, seqChart.String())

	tab := &report.Table{Headers: []string{"analysis", "value"}}
	tab.AddRow("bimodal", res.Modes.Bimodal)
	tab.AddRow("mode centers (GB/s)", fmt.Sprintf("%.2f / %.2f", res.Modes.Low/1e9, res.Modes.High/1e9))
	tab.AddRow("mode ratio (paper: ~5x)", res.Modes.Ratio)
	tab.AddRow("degraded measurements", res.Streaks.Total)
	tab.AddRow("degraded episodes (consecutive runs)", res.Streaks.Count)
	tab.AddRow("longest episode", res.Streaks.Longest)
	fmt.Fprint(w, tab.String())
	return nil
}

// Fig6Data measures the optimization grid on both platforms.
func Fig6Data() (xeon, snowball []membench.GridPoint, err error) {
	xeon, err = membench.OptimizationGrid(platform.MustLookup("XeonX5550"), 50*units.KiB, []int{1, 8})
	if err != nil {
		return nil, nil, err
	}
	snowball, err = membench.OptimizationGrid(platform.MustLookup("Snowball"), 50*units.KiB, []int{1, 8})
	if err != nil {
		return nil, nil, err
	}
	return xeon, snowball, nil
}

func runFig6(w io.Writer, _ Options) error {
	xeon, snow, err := Fig6Data()
	if err != nil {
		return err
	}
	render := func(name string, grid []membench.GridPoint) {
		tab := &report.Table{
			Title:   fmt.Sprintf("Figure 6: %s effective bandwidth (GB/s), 50KB array, stride 1", name),
			Headers: []string{"element", "no unroll", "unroll x8"},
		}
		for _, width := range cpu.Widths() {
			u1, _ := membench.Find(grid, width, 1)
			u8, _ := membench.Find(grid, width, 8)
			tab.AddRow(width.String(), u1.Bandwidth/1e9, u8.Bandwidth/1e9)
		}
		fmt.Fprint(w, tab.String())
	}
	render("Xeon 5500/Nehalem", xeon)
	render("Snowball/ARM A9500", snow)
	fmt.Fprintln(w, "Nehalem: unrolling and vectorizing both constantly improve performance.")
	fmt.Fprintln(w, "A9500: 128-bit acts like 32-bit, and unrolling 128-bit is detrimental;")
	fmt.Fprintln(w, "the best ARM configuration is 64-bit elements with unrolling.")
	return nil
}

// Fig7Data sweeps magicfilter unroll variants on both architectures.
func Fig7Data(o Options) (nehalem, tegra []magicfilter.VariantResult, err error) {
	n := 4096
	if o.Quick {
		n = 2048
	}
	nehalem, err = magicfilter.SweepUnroll(platform.MustLookup("XeonX5550"), n, 12)
	if err != nil {
		return nil, nil, err
	}
	tegra, err = magicfilter.SweepUnroll(platform.MustLookup("Tegra2"), n, 12)
	if err != nil {
		return nil, nil, err
	}
	return nehalem, tegra, nil
}

func runFig7(w io.Writer, o Options) error {
	neh, teg, err := Fig7Data(o)
	if err != nil {
		return err
	}
	tab := &report.Table{
		Title:   "Figure 7: magicfilter variants (cycles and cache accesses per point)",
		Headers: []string{"unroll", "Nehalem cyc/pt", "Nehalem acc/pt", "Tegra2 cyc/pt", "Tegra2 acc/pt"},
	}
	for i := range neh {
		tab.AddRow(neh[i].Unroll, neh[i].CyclesPerPoint, neh[i].AccessesPerPt,
			teg[i].CyclesPerPoint, teg[i].AccessesPerPt)
	}
	fmt.Fprint(w, tab.String())
	nLo, nHi := magicfilter.SweetSpot(neh, 0.15)
	tLo, tHi := magicfilter.SweetSpot(teg, 0.15)
	fmt.Fprintf(w, "sweet spots (cycles within 15%% of best): Nehalem [%d:%d], Tegra2 [%d:%d]\n",
		nLo, nHi, tLo, tHi)
	fmt.Fprintf(w, "best unroll: Nehalem %d, Tegra2 %d (paper: [4:12] vs [4:7])\n",
		magicfilter.BestUnroll(neh), magicfilter.BestUnroll(teg))
	return nil
}

// PageAllocResult is the §V.A.1 reproducibility study outcome.
type PageAllocResult struct {
	ContiguousCV float64
	RandomCV     float64
	ContiguousBW []float64
	RandomBW     []float64
}

// PageAllocData measures run-to-run variance of a 32KB-array bandwidth
// under both page-allocation policies on the Snowball.
func PageAllocData(o Options) (PageAllocResult, error) {
	p := platform.MustLookup("Snowball")
	runs := 16
	if o.Quick {
		runs = 6
	}
	measure := func(policy osmodel.PagePolicy) ([]float64, error) {
		var bws []float64
		for seed := uint64(1); seed <= uint64(runs); seed++ {
			res, err := membench.Run(p, policy.NewMapper(seed),
				membench.Config{ArrayBytes: 32 * units.KiB})
			if err != nil {
				return nil, err
			}
			bws = append(bws, res.Bandwidth)
		}
		return bws, nil
	}
	contig, err := measure(osmodel.ContiguousPages)
	if err != nil {
		return PageAllocResult{}, err
	}
	random, err := measure(osmodel.RandomPages)
	if err != nil {
		return PageAllocResult{}, err
	}
	return PageAllocResult{
		ContiguousCV: stats.CoeffVar(contig),
		RandomCV:     stats.CoeffVar(random),
		ContiguousBW: contig,
		RandomBW:     random,
	}, nil
}

func runPageAlloc(w io.Writer, o Options) error {
	res, err := PageAllocData(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "§V.A.1: run-to-run bandwidth of a 32KB array on the Snowball")
	fmt.Fprintln(w, "(the L1 is 32KB 4-way physically indexed: two page colours)")
	tab := &report.Table{Headers: []string{"run", "contiguous pages GB/s", "random pages GB/s"}}
	for i := range res.ContiguousBW {
		tab.AddRow(i+1, res.ContiguousBW[i]/1e9, res.RandomBW[i]/1e9)
	}
	fmt.Fprint(w, tab.String())
	sum := &report.Table{Headers: []string{"policy", "coefficient of variation"}}
	sum.AddRow("contiguous", res.ContiguousCV)
	sum.AddRow("random", res.RandomCV)
	fmt.Fprint(w, sum.String())
	fmt.Fprintln(w, "random physical pages oversubscribe a page colour in some runs,")
	fmt.Fprintln(w, "causing conflict misses: run-to-run behaviour differs wildly while")
	fmt.Fprintln(w, "within-run noise stays low (the OS reuses the same pages).")
	return nil
}
