// Package experiments contains one driver per table and figure of the
// paper. Each driver runs the underlying models/simulations and renders
// the same rows or series the paper reports, so `montblanc <id>`
// regenerates any result. EXPERIMENTS.md records paper-vs-measured for
// every driver.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks instance sizes and repetition counts so the full
	// suite runs in seconds (used by tests and `montblanc -quick all`).
	Quick bool
	// Seed overrides the default deterministic seed (0 keeps defaults).
	Seed uint64
}

// Experiment is a runnable reproduction of one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, o Options) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// RunAll executes every experiment in ID order.
func RunAll(w io.Writer, o Options) error {
	for _, e := range All() {
		fmt.Fprintf(w, "==== %s: %s ====\n", e.ID, e.Title)
		if err := e.Run(w, o); err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
