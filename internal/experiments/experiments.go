// Package experiments contains one driver per table and figure of the
// paper. Each driver runs the underlying models/simulations and renders
// the same rows or series the paper reports, so `montblanc <id>`
// regenerates any result. EXPERIMENTS.md records paper-vs-measured for
// every driver.
package experiments

import (
	"fmt"
	"io"
	"path"
	"runtime"
	"sort"
	"time"

	"montblanc/internal/fault"
	"montblanc/internal/platform"
	"montblanc/internal/runner"
)

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks instance sizes and repetition counts so the full
	// suite runs in seconds (used by tests and `montblanc -quick all`).
	Quick bool
	// Seed overrides the default deterministic seed (0 keeps defaults).
	Seed uint64
	// Platforms restricts the cross-platform sweep experiments to the
	// named platforms, in the given order. Empty means every resolvable
	// platform. Experiments reproducing a specific paper artifact
	// ignore it: fig5 is a Snowball study whatever the sweep set says.
	Platforms []string
	// Specs are request-scoped inline machine specs, resolved alongside
	// the global registry without registering anything (see
	// platform.Resolver); an inline spec may shadow a registered name.
	// The service uses this to honor per-request machines while
	// concurrent requests never fight over the process-wide registry.
	Specs []platform.Spec
	// SimWorkers runs the cluster simulations inside experiments on the
	// conservative-parallel scheduler with this many shards (<= 1 keeps
	// the sequential reference). Output is byte-identical at any value,
	// which is why it is deliberately NOT part of the cache key
	// (CanonicalJSON): the same canonical request may execute on either
	// scheduler and replay the same bytes.
	SimWorkers int
	// Fault replaces the resilience experiments' built-in fault grid
	// with one user-supplied schedule (see internal/fault.Spec); nil
	// keeps the defaults. Unlike SimWorkers it changes experiment
	// output, so it IS part of the cache key (CanonicalJSON).
	Fault *fault.Spec
}

// Resolver returns the platform resolver for these options: the global
// registry overlaid with the inline Specs. With no inline specs it is
// a pure registry view, so option-driven lookups and the historical
// package-level lookups see identical machines.
func (o Options) Resolver() (*platform.Resolver, error) {
	return platform.NewResolver(o.Specs)
}

// Experiment is a runnable reproduction of one paper artifact.
type Experiment struct {
	ID    string
	Title string
	// Cost is a relative wall-clock weight used by the parallel runner
	// to dispatch expensive experiments first (zero means 1). It has
	// no effect on output order or content.
	Cost int
	Run  func(w io.Writer, o Options) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Match returns the experiments whose IDs match any of the given
// arguments, in ID order without duplicates. An argument is an exact
// ID, the keyword "all", or a path.Match glob pattern ("fig*"). It
// returns an error naming the first argument that selects nothing.
func Match(args ...string) ([]Experiment, error) {
	picked := map[string]bool{}
	for _, arg := range args {
		switch {
		case arg == "all":
			for id := range registry {
				picked[id] = true
			}
		case registry[arg].Run != nil:
			picked[arg] = true
		default:
			matched := false
			for id := range registry {
				ok, err := path.Match(arg, id)
				if err != nil {
					return nil, fmt.Errorf("experiments: bad pattern %q: %w", arg, err)
				}
				if ok {
					picked[id] = true
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("experiments: unknown experiment %q", arg)
			}
		}
	}
	out := make([]Experiment, 0, len(picked))
	for id := range picked {
		out = append(out, registry[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// task adapts an experiment to the runner.
func (e Experiment) task(o Options) runner.Task {
	return runner.Task{
		ID:     e.ID,
		Title:  e.Title,
		Weight: e.Cost,
		Run:    func(w io.Writer) error { return e.Run(w, o) },
	}
}

// Results executes the given experiments on a pool of `workers`
// concurrent workers (<= 0 means GOMAXPROCS) and returns structured
// results in input order. Errors are carried per result; every
// experiment runs regardless of other failures.
func Results(es []Experiment, o Options, workers int) []runner.Result {
	tasks := make([]runner.Task, len(es))
	for i, e := range es {
		tasks[i] = e.task(o)
	}
	p := runner.Pool{Workers: workers}
	return p.Run(tasks)
}

// sectionHeader is the historical RunAll section banner; every path
// that renders headed sections must use it so output stays
// byte-identical across the buffered and direct-write paths.
const sectionHeader = "==== %s: %s ====\n"

// emitSection writes one headed result section (banner, the rendered
// output, a trailing blank line). A failed result keeps its partial
// output and banner but no trailing blank line, exactly as the old
// sequential loop left the stream; the returned error carries the
// same wrapping. Writer errors are propagated so a broken pipe
// (`montblanc all | head`) stops the suite instead of computing every
// remaining experiment against a dead stream.
func emitSection(w io.Writer, r runner.Result) error {
	if _, err := fmt.Fprintf(w, sectionHeader, r.ID, r.Title); err != nil {
		return fmt.Errorf("experiments: writing %s section: %w", r.ID, err)
	}
	if _, err := io.WriteString(w, r.Output); err != nil {
		return fmt.Errorf("experiments: writing %s section: %w", r.ID, err)
	}
	if r.Err != nil {
		return fmt.Errorf("experiments: %s: %w", r.ID, r.Err)
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return fmt.Errorf("experiments: writing %s section: %w", r.ID, err)
	}
	return nil
}

// Write renders headed result sections to w, stopping at the first
// failed result.
func Write(w io.Writer, results []runner.Result) error {
	for _, r := range results {
		if err := emitSection(w, r); err != nil {
			return err
		}
	}
	return nil
}

// Stream executes the given experiments on `workers` concurrent
// workers (<= 0 means GOMAXPROCS), writing each headed section to w in
// ID order as soon as it and all its predecessors finish — long suites
// start printing while the tail still computes. It returns the results
// emitted so far (on the single-worker path the Output field is empty:
// bytes went straight to w). On failure it stops at the first (in ID
// order) failed experiment, matching sequential semantics: experiments
// already started run to completion, not-yet-started ones are skipped.
func Stream(w io.Writer, es []Experiment, o Options, workers int) ([]runner.Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return streamSequential(w, es, o)
	}
	tasks := make([]runner.Task, len(es))
	for i, e := range es {
		tasks[i] = e.task(o)
	}
	p := runner.Pool{Workers: workers}
	results := make([]runner.Result, 0, len(tasks))
	var failed error
	p.Stream(tasks, func(r runner.Result) bool {
		results = append(results, r)
		failed = emitSection(w, r)
		return failed == nil
	})
	return results, failed
}

// streamSequential is the one-worker path: experiments write to w
// directly as they render (no per-task buffer), so output appears
// progressively *within* an experiment, like the historical loop.
// Same bytes as the pooled path, just sooner.
func streamSequential(w io.Writer, es []Experiment, o Options) ([]runner.Result, error) {
	results := make([]runner.Result, 0, len(es))
	for _, e := range es {
		if _, err := fmt.Fprintf(w, sectionHeader, e.ID, e.Title); err != nil {
			return results, fmt.Errorf("experiments: writing %s section: %w", e.ID, err)
		}
		//detlint:allow wallclock -- wall-clock telemetry: Duration feeds -time/-json reporting, never the experiment bytes
		start := time.Now()
		err := e.Run(w, o)
		results = append(results, runner.Result{
			//detlint:allow wallclock -- wall-clock telemetry: Duration feeds -time/-json reporting, never the experiment bytes
			ID: e.ID, Title: e.Title, Duration: time.Since(start), Err: err,
		})
		if err != nil {
			return results, fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return results, fmt.Errorf("experiments: writing %s section: %w", e.ID, err)
		}
	}
	return results, nil
}

// RunAll executes every experiment and writes headed sections in ID
// order. Output is byte-identical to the historical sequential loop.
func RunAll(w io.Writer, o Options) error {
	return RunAllParallel(w, o, 1)
}

// RunAllParallel is RunAll on `workers` concurrent workers (<= 0 means
// GOMAXPROCS). Each experiment renders into its own buffer and
// sections stream out in ID order, so output does not depend on the
// worker count.
func RunAllParallel(w io.Writer, o Options, workers int) error {
	_, err := Stream(w, All(), o, workers)
	return err
}
