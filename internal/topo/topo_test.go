package topo

import (
	"strings"
	"testing"

	"montblanc/internal/units"
)

// buildXeon builds the Figure 2a topology: Xeon 5550, 12GB, one socket,
// shared 8MB L3, four cores each with 256KB L2 and 32KB L1.
func buildXeon() *Object {
	m := NewMachine(12 * units.GiB)
	s := NewSocket(0)
	l3 := NewCache(3, 8*units.MiB)
	for i := 0; i < 4; i++ {
		l2 := NewCache(2, 256*units.KiB)
		l1 := NewCache(1, 32*units.KiB)
		core := NewCore(i).Add(NewPU(i))
		l1.Add(core)
		l2.Add(l1)
		l3.Add(l2)
	}
	s.Add(l3)
	m.Add(s)
	return m
}

// buildA9500 builds the Figure 2b topology: A9500, 796MB, one socket,
// shared 512KB L2, two cores each with 32KB L1.
func buildA9500() *Object {
	m := NewMachine(796 * units.MiB)
	s := NewSocket(0)
	l2 := NewCache(2, 512*units.KiB)
	for i := 0; i < 2; i++ {
		l1 := NewCache(1, 32*units.KiB)
		l1.Add(NewCore(i).Add(NewPU(i)))
		l2.Add(l1)
	}
	s.Add(l2)
	m.Add(s)
	return m
}

func TestXeonTopologyShape(t *testing.T) {
	m := buildXeon()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Count(Core); got != 4 {
		t.Errorf("Xeon cores = %d, want 4", got)
	}
	if got := m.Count(PU); got != 4 {
		t.Errorf("Xeon PUs = %d, want 4 (hyperthreading disabled)", got)
	}
	if got := len(m.FindCaches(3)); got != 1 {
		t.Errorf("Xeon L3 count = %d, want 1", got)
	}
	if got := len(m.FindCaches(2)); got != 4 {
		t.Errorf("Xeon L2 count = %d, want 4 (private)", got)
	}
	if got := len(m.FindCaches(1)); got != 4 {
		t.Errorf("Xeon L1 count = %d, want 4", got)
	}
}

func TestA9500TopologyShape(t *testing.T) {
	m := buildA9500()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Count(Core); got != 2 {
		t.Errorf("A9500 cores = %d, want 2", got)
	}
	if got := len(m.FindCaches(3)); got != 0 {
		t.Errorf("A9500 L3 count = %d, want 0", got)
	}
	if got := len(m.FindCaches(2)); got != 1 {
		t.Errorf("A9500 L2 count = %d, want 1 (shared)", got)
	}
	l2 := m.FindCaches(2)[0]
	if l2.Size != 512*units.KiB {
		t.Errorf("A9500 L2 size = %d, want 512KiB", l2.Size)
	}
}

func TestRenderContainsLabels(t *testing.T) {
	out := buildXeon().Render()
	for _, want := range []string{
		"Machine (12GiB)", "Socket P#0", "L3 (8MiB)", "L2 (256KiB)",
		"L1 (32KiB)", "Core P#3", "PU P#0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderIndentationReflectsDepth(t *testing.T) {
	out := buildA9500().Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "+--") {
		t.Errorf("root not at depth 0: %q", lines[0])
	}
	// PU lines must be the deepest.
	maxIndent, puIndent := 0, 0
	for _, l := range lines {
		ind := len(l) - len(strings.TrimLeft(l, " "))
		if ind > maxIndent {
			maxIndent = ind
		}
		if strings.Contains(l, "PU P#") {
			puIndent = ind
		}
	}
	if puIndent != maxIndent {
		t.Errorf("PU depth %d != max depth %d", puIndent, maxIndent)
	}
}

func TestValidateRejectsBadTrees(t *testing.T) {
	bad1 := NewSocket(0)
	if _, ok := interface{}(bad1).(*Object); !ok {
		t.Fatal("construction failed")
	}
	if err := bad1.Validate(); err == nil {
		t.Error("non-machine root accepted")
	}

	dupPU := NewMachine(units.GiB)
	dupPU.Add(NewCore(0).Add(NewPU(0)), NewCore(1).Add(NewPU(0)))
	if err := dupPU.Validate(); err == nil {
		t.Error("duplicate PU indices accepted")
	}

	nested := NewMachine(units.GiB)
	inner := NewCache(1, 32*units.KiB)
	inner.Add(NewCache(2, 256*units.KiB).Add(NewPU(0)))
	nested.Add(inner)
	if err := nested.Validate(); err == nil {
		t.Error("L2 nested under L1 accepted")
	}

	puKids := NewMachine(units.GiB)
	p := NewPU(0)
	p.Add(NewCore(1))
	puKids.Add(p)
	if err := puKids.Validate(); err == nil {
		t.Error("PU with children accepted")
	}

	zeroCache := NewMachine(units.GiB)
	zeroCache.Add(NewCache(1, 0).Add(NewPU(0)))
	if err := zeroCache.Validate(); err == nil {
		t.Error("zero-size cache accepted")
	}
}

func TestWalkDepths(t *testing.T) {
	m := buildA9500()
	depths := map[Kind]int{}
	m.Walk(func(o *Object, d int) { depths[o.Kind] = d })
	if depths[Machine] != 0 || depths[Socket] != 1 || depths[PU] <= depths[Core] {
		t.Errorf("unexpected depths: %v", depths)
	}
}

func TestPUsOrder(t *testing.T) {
	m := buildXeon()
	pus := m.PUs()
	if len(pus) != 4 {
		t.Fatalf("PUs = %d, want 4", len(pus))
	}
	for i, pu := range pus {
		if pu.Index != i {
			t.Errorf("PU order: got P#%d at position %d", pu.Index, i)
		}
	}
}
