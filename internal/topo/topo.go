// Package topo models hardware topologies — machines, sockets, caches,
// cores and processing units — in the style of hwloc, and renders them
// as the lstopo-like diagrams shown in Figure 2 of the paper.
package topo

import (
	"fmt"
	"math"
	"strings"

	"montblanc/internal/units"
)

// Kind identifies the type of a topology object.
type Kind int

// Topology object kinds, outermost first.
const (
	Machine Kind = iota
	Socket
	Cache
	Core
	PU // processing unit (hardware thread)

	// Interconnect-level kinds: a Cluster roots a tree of Switches
	// whose leaves are the Machines of a fabric, mirroring how hwloc
	// models the network side of a system. Network builders construct
	// this tree so latency-derived quantities (e.g. the conservative
	// scheduler's lookahead) are reported by the topology instead of
	// hard-coded per builder.
	Cluster
	Switch
)

// String returns the hwloc-style name of the kind.
func (k Kind) String() string {
	switch k {
	case Machine:
		return "Machine"
	case Socket:
		return "Socket"
	case Cache:
		return "Cache"
	case Core:
		return "Core"
	case PU:
		return "PU"
	case Cluster:
		return "Cluster"
	case Switch:
		return "Switch"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Object is a node in the topology tree.
type Object struct {
	Kind     Kind
	Index    int   // physical index (P#n)
	Size     int64 // bytes: RAM for Machine, capacity for Cache
	Level    int   // cache level (1..3) when Kind == Cache
	Children []*Object

	// LinkLatency is the one-way latency in seconds of the uplink
	// connecting this object to its parent in an interconnect tree
	// (a Machine's NIC link, a Switch's uplink). Zero for the root and
	// for all intra-machine kinds.
	LinkLatency float64
}

// Label returns the human-readable box label used in renderings.
func (o *Object) Label() string {
	switch o.Kind {
	case Machine:
		return fmt.Sprintf("Machine (%s)", units.Bytes(o.Size))
	case Socket:
		return fmt.Sprintf("Socket P#%d", o.Index)
	case Cache:
		return fmt.Sprintf("L%d (%s)", o.Level, units.Bytes(o.Size))
	case Core:
		return fmt.Sprintf("Core P#%d", o.Index)
	case PU:
		return fmt.Sprintf("PU P#%d", o.Index)
	case Cluster:
		return "Cluster"
	case Switch:
		return fmt.Sprintf("Switch P#%d", o.Index)
	default:
		return o.Kind.String()
	}
}

// Add appends child objects and returns o for chaining.
func (o *Object) Add(children ...*Object) *Object {
	o.Children = append(o.Children, children...)
	return o
}

// Walk visits o and all descendants depth-first, calling fn with the
// depth of each object (0 for o itself).
func (o *Object) Walk(fn func(obj *Object, depth int)) {
	var rec func(obj *Object, depth int)
	rec = func(obj *Object, depth int) {
		fn(obj, depth)
		for _, c := range obj.Children {
			rec(c, depth+1)
		}
	}
	rec(o, 0)
}

// Count returns the number of objects of the given kind in the subtree.
func (o *Object) Count(kind Kind) int {
	n := 0
	o.Walk(func(obj *Object, _ int) {
		if obj.Kind == kind {
			n++
		}
	})
	return n
}

// FindCaches returns all cache objects at the given level.
func (o *Object) FindCaches(level int) []*Object {
	var out []*Object
	o.Walk(func(obj *Object, _ int) {
		if obj.Kind == Cache && obj.Level == level {
			out = append(out, obj)
		}
	})
	return out
}

// PUs returns all processing units in physical index order of discovery.
func (o *Object) PUs() []*Object {
	var out []*Object
	o.Walk(func(obj *Object, _ int) {
		if obj.Kind == PU {
			out = append(out, obj)
		}
	})
	return out
}

// Render draws the topology as an indented tree of labelled boxes,
// approximating the lstopo output reproduced in Figure 2.
func (o *Object) Render() string {
	var b strings.Builder
	o.Walk(func(obj *Object, depth int) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&b, "%s+-- %s\n", indent, obj.Label())
	})
	return b.String()
}

// Validate checks structural invariants of the topology tree:
// machines at the root only, PUs as leaves only, cache levels
// descending toward the leaves, and unique PU physical indices.
// A Cluster root is validated as an interconnect tree instead:
// Switches and Machines only, non-negative link latencies, at least
// one Machine.
func (o *Object) Validate() error {
	if o.Kind == Cluster {
		return o.validateInterconnect()
	}
	if o.Kind != Machine {
		return fmt.Errorf("topo: root must be a Machine or Cluster, got %v", o.Kind)
	}
	seenPU := map[int]bool{}
	var err error
	var rec func(obj *Object, minLevel int)
	rec = func(obj *Object, cacheCeil int) {
		if err != nil {
			return
		}
		switch obj.Kind {
		case Machine:
			if obj != o {
				err = fmt.Errorf("topo: nested Machine object")
				return
			}
		case PU:
			if len(obj.Children) != 0 {
				err = fmt.Errorf("topo: PU P#%d has children", obj.Index)
				return
			}
			if seenPU[obj.Index] {
				err = fmt.Errorf("topo: duplicate PU index P#%d", obj.Index)
				return
			}
			seenPU[obj.Index] = true
		case Cache:
			if obj.Level < 1 || obj.Level > 4 {
				err = fmt.Errorf("topo: cache level %d out of range", obj.Level)
				return
			}
			if cacheCeil > 0 && obj.Level >= cacheCeil {
				err = fmt.Errorf("topo: L%d nested under L%d", obj.Level, cacheCeil)
				return
			}
			if obj.Size <= 0 {
				err = fmt.Errorf("topo: L%d cache with non-positive size", obj.Level)
				return
			}
			cacheCeil = obj.Level
		}
		for _, c := range obj.Children {
			rec(c, cacheCeil)
		}
	}
	rec(o, 0)
	return err
}

// validateInterconnect checks a Cluster-rooted interconnect tree:
// internal objects are Switches, leaves are Machines, every uplink
// latency is non-negative and at least one Machine is present.
func (o *Object) validateInterconnect() error {
	machines := 0
	var err error
	var rec func(obj *Object, depth int)
	rec = func(obj *Object, depth int) {
		if err != nil {
			return
		}
		if obj.LinkLatency < 0 {
			err = fmt.Errorf("topo: %s has negative link latency", obj.Label())
			return
		}
		switch obj.Kind {
		case Cluster:
			if depth != 0 {
				err = fmt.Errorf("topo: nested Cluster object")
				return
			}
		case Switch:
			// interior only; a port-empty switch is legal
		case Machine:
			machines++
			if len(obj.Children) != 0 {
				err = fmt.Errorf("topo: interconnect Machine P#%d has children", obj.Index)
				return
			}
		default:
			err = fmt.Errorf("topo: %v object inside an interconnect tree", obj.Kind)
			return
		}
		for _, c := range obj.Children {
			rec(c, depth+1)
		}
	}
	rec(o, 0)
	if err == nil && machines == 0 {
		err = fmt.Errorf("topo: interconnect tree has no Machines")
	}
	return err
}

// MinCrossLatency returns the minimum one-way latency between two
// distinct Machines of an interconnect tree: the cheapest uplink path
// from one machine to the pair's lowest common ancestor plus the
// downlink path to the other. This is the lookahead bound a
// conservative parallel scheduler may use — no message between
// distinct machines can arrive sooner. It returns +Inf when the tree
// holds fewer than two Machines (nothing ever crosses).
func (o *Object) MinCrossLatency() float64 {
	inf := math.Inf(1)
	best := inf
	// minUp(v) = cheapest latency from any Machine in v's subtree up to
	// v. At each interior node, the two cheapest child costs (from
	// distinct children) form a candidate crossing pair.
	var minUp func(obj *Object) float64
	minUp = func(obj *Object) float64 {
		if obj.Kind == Machine {
			return 0
		}
		s1, s2 := inf, inf // two smallest child costs
		for _, c := range obj.Children {
			cost := minUp(c) + c.LinkLatency
			switch {
			case cost < s1:
				s1, s2 = cost, s1
			case cost < s2:
				s2 = cost
			}
		}
		if s1+s2 < best {
			best = s1 + s2
		}
		return s1
	}
	minUp(o)
	return best
}

// NewMachine returns a Machine root with the given RAM size in bytes.
func NewMachine(ram int64) *Object { return &Object{Kind: Machine, Size: ram} }

// NewSocket returns a Socket with physical index idx.
func NewSocket(idx int) *Object { return &Object{Kind: Socket, Index: idx} }

// NewCache returns a cache object of the given level and capacity.
func NewCache(level int, size int64) *Object {
	return &Object{Kind: Cache, Level: level, Size: size}
}

// NewCore returns a Core with physical index idx.
func NewCore(idx int) *Object { return &Object{Kind: Core, Index: idx} }

// NewPU returns a processing unit with physical index idx.
func NewPU(idx int) *Object { return &Object{Kind: PU, Index: idx} }

// NewCluster returns an interconnect tree root.
func NewCluster() *Object { return &Object{Kind: Cluster} }

// NewSwitch returns a Switch with physical index idx whose uplink to
// its parent has the given one-way latency in seconds (zero when it
// hangs directly off the Cluster root).
func NewSwitch(idx int, uplinkLatency float64) *Object {
	return &Object{Kind: Switch, Index: idx, LinkLatency: uplinkLatency}
}

// NewFabricMachine returns a Machine leaf of an interconnect tree: node
// idx attached to its switch by a link of the given one-way latency.
func NewFabricMachine(idx int, linkLatency float64) *Object {
	return &Object{Kind: Machine, Index: idx, LinkLatency: linkLatency}
}
