package trace

import (
	"math"
	"sort"
	"strings"
	"testing"

	"montblanc/internal/power"
	"montblanc/internal/xrand"
)

var phased = power.Profile{Name: "node", Idle: 1, Compute: 10, Memory: 8, Comm: 4}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// Hand-computed integral: two ranks, known phase layout.
//
//	rank 0: compute [0,2) @10W, send [2,3) @4W, idle gap [3,4) @1W
//	rank 1: memory  [0,1) @8W, collective [1,4) @4W
//
// makespan 4s. Energy: r0 = 20 + 4 + 1 = 25 J; r1 = 8 + 12 = 20 J.
func TestEnergyByStateHandComputed(t *testing.T) {
	tr := New(2)
	tr.AddInterval(Interval{Rank: 0, Kind: StateCompute, Start: 0, End: 2})
	tr.AddInterval(Interval{Rank: 0, Kind: StateSend, Start: 2, End: 3})
	tr.AddInterval(Interval{Rank: 1, Kind: StateMemory, Start: 0, End: 1})
	tr.AddInterval(Interval{Rank: 1, Kind: StateCollective, Name: "a2a#0", Start: 1, End: 4})

	b := tr.EnergyByState(phased)
	if b.Seconds != 4 {
		t.Fatalf("Seconds = %v, want 4", b.Seconds)
	}
	if !almost(b.ByState[power.StateCompute], 20) {
		t.Errorf("compute J = %v, want 20", b.ByState[power.StateCompute])
	}
	if !almost(b.ByState[power.StateMemory], 8) {
		t.Errorf("memory J = %v, want 8", b.ByState[power.StateMemory])
	}
	// comm: send 1s + collective 3s at 4 W.
	if !almost(b.ByState[power.StateComm], 16) {
		t.Errorf("comm J = %v, want 16", b.ByState[power.StateComm])
	}
	// idle: rank 0's uncovered [3,4) at 1 W.
	if !almost(b.ByState[power.StateIdle], 1) {
		t.Errorf("idle J = %v, want 1", b.ByState[power.StateIdle])
	}
	if !almost(b.ByRank[0], 25) || !almost(b.ByRank[1], 20) {
		t.Errorf("ByRank = %v, want [25 20]", b.ByRank)
	}
	if !almost(b.Total, 45) {
		t.Errorf("Total = %v, want 45", b.Total)
	}
	if !almost(b.SecondsByState[power.StateComm], 4) {
		t.Errorf("comm rank-seconds = %v, want 4", b.SecondsByState[power.StateComm])
	}
	if !almost(b.Share(power.StateCompute), 20.0/45) {
		t.Errorf("compute share = %v", b.Share(power.StateCompute))
	}
}

// A uniform profile must reduce the breakdown exactly to the paper's
// constant model: ranks x makespan x envelope, whatever the phase mix.
func TestEnergyByStateUniformReducesToConstantModel(t *testing.T) {
	tr := New(3)
	tr.AddInterval(Interval{Rank: 0, Kind: StateCompute, Start: 0, End: 1.5})
	tr.AddInterval(Interval{Rank: 1, Kind: StateRecv, Start: 0.25, End: 2})
	tr.AddInterval(Interval{Rank: 2, Kind: StateCollective, Start: 1, End: 1.75})

	u := power.Uniform("board", 2.5)
	b := tr.EnergyByState(u)
	want := u.Energy(tr.Duration()) * 3
	if !almost(b.Total, want) {
		t.Errorf("uniform Total = %v, want ranks x envelope x makespan = %v", b.Total, want)
	}
	for r, j := range b.ByRank {
		if !almost(j, u.Energy(tr.Duration())) {
			t.Errorf("rank %d = %v J, want %v", r, j, u.Energy(tr.Duration()))
		}
	}
}

// Collectives paint over inner send/recv intervals (the simmpi shape:
// a collective interval wraps the point-to-points it is built from), so
// the whole span draws communication power once, not twice.
func TestEnergyByStateCollectivePaintsOver(t *testing.T) {
	tr := New(1)
	tr.AddInterval(Interval{Rank: 0, Kind: StateCollective, Name: "a2a#0", Start: 0, End: 2})
	tr.AddInterval(Interval{Rank: 0, Kind: StateSend, Start: 0.5, End: 1})
	tr.AddInterval(Interval{Rank: 0, Kind: StateRecv, Start: 1, End: 1.5})

	b := tr.EnergyByState(phased)
	if !almost(b.ByState[power.StateComm], 8) {
		t.Errorf("comm J = %v, want 2s x 4W = 8", b.ByState[power.StateComm])
	}
	if !almost(b.Total, 8) {
		t.Errorf("Total = %v, want 8 (no double counting)", b.Total)
	}
}

// Malformed intervals are clamped to the horizon, inverted ones and
// out-of-range ranks dropped.
func TestEnergyByStateMalformedIntervals(t *testing.T) {
	tr := New(1)
	tr.AddInterval(Interval{Rank: 0, Kind: StateCompute, Start: -5, End: 1})
	tr.AddInterval(Interval{Rank: 0, Kind: StateSend, Start: 2, End: 1})    // inverted
	tr.AddInterval(Interval{Rank: 7, Kind: StateCompute, Start: 0, End: 1}) // no such rank
	b := tr.EnergyByState(phased)
	// Horizon is 1s: compute [0,1) at 10 W.
	if !almost(b.Total, 10) {
		t.Errorf("Total = %v, want 10", b.Total)
	}
}

func TestEnergyByStateEmptyTrace(t *testing.T) {
	b := New(4).EnergyByState(phased)
	if b.Total != 0 || b.Seconds != 0 {
		t.Errorf("empty trace breakdown = %+v", b)
	}
	if b.Share(power.StateCompute) != 0 {
		t.Error("Share on empty breakdown should be 0")
	}
}

func TestKindPowerState(t *testing.T) {
	want := map[Kind]power.State{
		StateCompute:    power.StateCompute,
		StateMemory:     power.StateMemory,
		StateSend:       power.StateComm,
		StateRecv:       power.StateComm,
		StateCollective: power.StateComm,
		StateIdle:       power.StateIdle,
		Kind(42):        power.StateIdle,
	}
	for k, s := range want {
		if got := k.PowerState(); got != s {
			t.Errorf("%s.PowerState() = %s, want %s", k, got, s)
		}
	}
	if StateMemory.String() != "memory" {
		t.Errorf("StateMemory.String() = %q", StateMemory)
	}
}

// Regression: an interval with a negative Start used to compute a
// negative bucket index and panic; intervals beyond the makespan could
// do the same on the high side after a bad Merge. Both ends clamp now.
func TestGanttClampsMalformedIntervals(t *testing.T) {
	tr := New(2)
	tr.AddInterval(Interval{Rank: 0, Kind: StateSend, Start: -0.5, End: 0.25})
	tr.AddInterval(Interval{Rank: 0, Kind: StateCompute, Start: 0, End: 1})
	tr.AddInterval(Interval{Rank: 1, Kind: StateRecv, Start: -3, End: -1})
	tr.AddInterval(Interval{Rank: 1, Kind: StateCollective, Start: 0.5, End: 2})
	tr.AddInterval(Interval{Rank: 1, Kind: StateCompute, Start: 5, End: 1}) // inverted
	g := tr.Gantt(10)
	if g == "" {
		t.Fatal("no Gantt output")
	}
	if lines := strings.Count(g, "\n"); lines != 3 {
		t.Errorf("Gantt rendered %d lines, want 3", lines)
	}
	// The wholly-negative recv carries no drawable time: it must not
	// paint (EnergyByState drops it too, so picture and accounting
	// agree); the partially-negative send clamps into the first bucket.
	if strings.Contains(g, "<") {
		t.Errorf("out-of-horizon interval painted:\n%s", g)
	}
	if !strings.Contains(g, "|>") {
		t.Errorf("clamped interval missing from first bucket:\n%s", g)
	}
}

// The sweep-line integration must agree with a brute-force
// covering-scan over elementary segments on arbitrary overlapping
// traces — same states, same joules.
func TestEnergyByStateMatchesBruteForce(t *testing.T) {
	kinds := []Kind{StateCompute, StateSend, StateRecv, StateCollective, StateIdle, StateMemory}
	for seed := uint64(1); seed <= 25; seed++ {
		rng := xrand.New(seed)
		tr := New(3)
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			start := rng.Float64() * 10
			tr.AddInterval(Interval{
				Rank:  rng.Intn(3),
				Kind:  kinds[rng.Intn(len(kinds))],
				Start: start,
				End:   start + rng.Float64()*3,
			})
		}
		got := tr.EnergyByState(phased)
		want := bruteForceEnergy(tr, phased)
		for _, st := range power.States() {
			if !almost(got.ByState[st], want[st]) {
				t.Fatalf("seed %d: %s = %v, want brute-force %v", seed, st, got.ByState[st], want[st])
			}
		}
	}
}

// bruteForceEnergy is the O(N^2) reference: for every elementary
// segment of every rank, scan all intervals for the covering winner
// (collective beats all, then first recorded).
func bruteForceEnergy(t *Trace, prof power.Profile) map[power.State]float64 {
	total := t.Duration()
	out := map[power.State]float64{}
	for rank := 0; rank < t.Ranks; rank++ {
		var ivs []Interval
		for _, iv := range t.Intervals {
			if iv.Rank != rank || iv.End < iv.Start {
				continue
			}
			if iv.Start < 0 {
				iv.Start = 0
			}
			if iv.End > total {
				iv.End = total
			}
			if iv.End > iv.Start {
				ivs = append(ivs, iv)
			}
		}
		// Idle-drawing kinds are transparent, as in the Gantt rendering.
		kept := ivs[:0]
		for _, iv := range ivs {
			if iv.Kind.PowerState() != power.StateIdle {
				kept = append(kept, iv)
			}
		}
		ivs = kept
		cuts := []float64{0, total}
		for _, iv := range ivs {
			cuts = append(cuts, iv.Start, iv.End)
		}
		sort.Float64s(cuts)
		for i := 0; i+1 < len(cuts); i++ {
			a, z := cuts[i], cuts[i+1]
			if z <= a {
				continue
			}
			state := power.StateIdle
			chosen := false
			for _, iv := range ivs {
				if iv.Start > a || iv.End < z {
					continue
				}
				if iv.Kind == StateCollective {
					state = power.StateComm
					chosen = true
					break
				}
				if !chosen {
					state = iv.Kind.PowerState()
					chosen = true
				}
			}
			out[state] += prof.Watts(state) * (z - a)
		}
	}
	return out
}

// An explicitly recorded idle interval is transparent, exactly like
// its blank Gantt glyph: a compute interval recorded later still shows
// through in the chart AND gets the joules — picture and accounting
// agree.
func TestEnergyByStateIdleIntervalsTransparent(t *testing.T) {
	tr := New(1)
	tr.AddInterval(Interval{Rank: 0, Kind: StateIdle, Start: 0, End: 10})
	tr.AddInterval(Interval{Rank: 0, Kind: StateCompute, Start: 0, End: 10})
	b := tr.EnergyByState(phased)
	if !almost(b.ByState[power.StateCompute], 100) || b.ByState[power.StateIdle] != 0 {
		t.Errorf("ByState = %v, want 100 J compute, 0 J idle", b.ByState)
	}
	if g := tr.Gantt(10); !strings.Contains(g, "==========") {
		t.Errorf("Gantt disagrees with accounting:\n%s", g)
	}
}
