package trace

import (
	"container/heap"
	"sort"

	"montblanc/internal/power"
)

// PowerState maps an interval kind onto the power-accounting state it
// draws: compute and memory phases map one-to-one, every communication
// flavour (send, recv, collective) draws communication power, and
// anything else is idle.
func (k Kind) PowerState() power.State {
	switch k {
	case StateCompute:
		return power.StateCompute
	case StateMemory:
		return power.StateMemory
	case StateSend, StateRecv, StateCollective:
		return power.StateComm
	default:
		return power.StateIdle
	}
}

// EnergyBreakdown is the result of integrating a power profile over a
// trace: the Extrae-style state timeline turned into a power trace.
type EnergyBreakdown struct {
	// Seconds is the integration horizon per rank — the trace makespan.
	Seconds float64
	// SecondsByState accumulates rank-seconds spent in each accounting
	// state across all ranks (gaps between intervals count as idle).
	SecondsByState map[power.State]float64
	// ByState is the energy in joules drawn in each accounting state,
	// summed over all ranks.
	ByState map[power.State]float64
	// ByRank is the energy in joules drawn by each rank over the whole
	// horizon.
	ByRank []float64
	// Total is the whole-trace energy in joules: the sum of ByState.
	Total float64
}

// Joules returns the energy drawn in the given state.
func (b EnergyBreakdown) Joules(s power.State) float64 { return b.ByState[s] }

// Share returns the fraction of the total energy drawn in the given
// state, or 0 for an empty breakdown.
func (b EnergyBreakdown) Share(s power.State) float64 {
	if b.Total == 0 {
		return 0
	}
	return b.ByState[s] / b.Total
}

// EnergyByState integrates prof over the trace's per-rank state
// intervals, producing joules per rank and per accounting state. Every
// rank is charged from time 0 to the trace makespan: instants covered
// by an interval draw that state's watts, gaps draw idle watts.
// Overlapping intervals resolve exactly like the Gantt rendering —
// collectives paint over everything, explicitly idle intervals are
// transparent (they paint the blank glyph, so anything else shows
// through), otherwise the first-recorded interval wins — so the energy
// accounting and the timeline picture always agree. Malformed
// intervals are clamped to [0, makespan] and inverted ones ignored.
// prof is per rank: integrating a node-level profile over a
// multi-rank-per-node trace wants prof.Scale(1/cores).
func (t *Trace) EnergyByState(prof power.Profile) EnergyBreakdown {
	b := EnergyBreakdown{
		Seconds:        t.Duration(),
		SecondsByState: map[power.State]float64{},
		ByState:        map[power.State]float64{},
		ByRank:         make([]float64, t.Ranks),
	}
	if b.Seconds <= 0 || t.Ranks <= 0 {
		return b
	}
	// Per-rank interval lists, recorded order preserved for the
	// first-writer rule.
	perRank := make([][]Interval, t.Ranks)
	for _, iv := range t.Intervals {
		if iv.Rank < 0 || iv.Rank >= t.Ranks || iv.End < iv.Start {
			continue
		}
		// Idle-drawing kinds are transparent, exactly as in Gantt: they
		// paint the blank glyph, so they neither hide other intervals
		// nor change what a gap would be charged anyway.
		if iv.Kind.PowerState() == power.StateIdle {
			continue
		}
		if iv.Start < 0 {
			iv.Start = 0
		}
		if iv.End > b.Seconds {
			iv.End = b.Seconds
		}
		if iv.End <= iv.Start {
			continue
		}
		perRank[iv.Rank] = append(perRank[iv.Rank], iv)
	}
	for rank := 0; rank < t.Ranks; rank++ {
		integrateRank(&b, perRank[rank], rank, prof)
	}
	return b
}

// event is one interval boundary of a rank's sweep line.
type event struct {
	t    float64
	idx  int // index into the rank's interval slice
	open bool
}

// integrateRank charges one rank from 0 to the horizon with a single
// sweep over its interval boundaries — O(N log N) in the rank's
// interval count, not a rescan of every interval per segment. An
// active-set min-heap of recorded indices implements the first-writer
// rule; a counter implements collectives-paint-over-everything.
func integrateRank(b *EnergyBreakdown, ivs []Interval, rank int, prof power.Profile) {
	events := make([]event, 0, 2*len(ivs))
	for i, iv := range ivs {
		events = append(events, event{iv.Start, i, true}, event{iv.End, i, false})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].t < events[j].t })
	var active indexHeap // open non-collective intervals, lazily pruned
	closed := make([]bool, len(ivs))
	collectives := 0
	cursor := 0.0
	charge := func(to float64) {
		if to <= cursor {
			return
		}
		state := power.StateIdle
		if collectives > 0 {
			state = StateCollective.PowerState()
		} else {
			for active.Len() > 0 && closed[active[0]] {
				heap.Pop(&active)
			}
			if active.Len() > 0 {
				state = ivs[active[0]].Kind.PowerState()
			}
		}
		dt := to - cursor
		joules := prof.Watts(state) * dt
		b.SecondsByState[state] += dt
		b.ByState[state] += joules
		b.ByRank[rank] += joules
		b.Total += joules
		cursor = to
	}
	for ei := 0; ei < len(events); {
		now := events[ei].t
		charge(now)
		for ; ei < len(events) && events[ei].t == now; ei++ {
			ev := events[ei]
			switch {
			case ivs[ev.idx].Kind == StateCollective:
				if ev.open {
					collectives++
				} else {
					collectives--
				}
			case ev.open:
				heap.Push(&active, ev.idx)
			default:
				closed[ev.idx] = true
			}
		}
	}
	charge(b.Seconds) // trailing idle after the rank's last interval
}

// indexHeap is a min-heap of interval indices: the top is the
// first-recorded open interval.
type indexHeap []int

func (h indexHeap) Len() int            { return len(h) }
func (h indexHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h indexHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *indexHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *indexHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
