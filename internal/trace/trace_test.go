package trace

import (
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	if StateCompute.String() != "compute" || StateCollective.String() != "collective" {
		t.Error("kind names wrong")
	}
}

func TestDuration(t *testing.T) {
	tr := New(2)
	if tr.Duration() != 0 {
		t.Error("empty trace duration != 0")
	}
	tr.AddInterval(Interval{Rank: 0, Kind: StateCompute, Start: 0, End: 2})
	tr.AddInterval(Interval{Rank: 1, Kind: StateCompute, Start: 1, End: 3})
	tr.AddComm(Comm{Src: 0, Dst: 1, Sent: 2, Arrived: 4.5})
	if d := tr.Duration(); d != 4.5 {
		t.Errorf("duration = %v, want 4.5", d)
	}
}

func TestMergeAndSort(t *testing.T) {
	a := New(2)
	a.AddInterval(Interval{Rank: 1, Start: 5, End: 6})
	b := New(2)
	b.AddInterval(Interval{Rank: 0, Start: 1, End: 2})
	b.AddComm(Comm{Sent: 3, Arrived: 4})
	a.Merge(b)
	a.Sort()
	if len(a.Intervals) != 2 || a.Intervals[0].Start != 1 {
		t.Errorf("merge/sort wrong: %+v", a.Intervals)
	}
	if len(a.Comms) != 1 {
		t.Error("comms not merged")
	}
}

func buildCollectiveTrace() *Trace {
	tr := New(4)
	// Three alltoallv instances; instance #1 is delayed on all ranks,
	// instance #2 on one rank only.
	for inst := 0; inst < 3; inst++ {
		base := float64(inst) * 10
		for rank := 0; rank < 4; rank++ {
			d := 1.0
			if inst == 1 {
				d = 6.0 // all ranks delayed
			}
			if inst == 2 && rank == 3 {
				d = 8.0 // one rank delayed
			}
			tr.AddInterval(Interval{
				Rank: rank, Kind: StateCollective,
				Name:  "alltoallv#" + string(rune('0'+inst)),
				Start: base, End: base + d,
			})
		}
	}
	// Unrelated collectives and computes must not pollute the analysis.
	tr.AddInterval(Interval{Rank: 0, Kind: StateCollective, Name: "barrier#0", Start: 40, End: 49})
	tr.AddInterval(Interval{Rank: 0, Kind: StateCompute, Name: "work", Start: 50, End: 59})
	return tr
}

func TestCollectivesGrouping(t *testing.T) {
	tr := buildCollectiveTrace()
	insts := tr.Collectives("alltoallv")
	if len(insts) != 3 {
		t.Fatalf("instances = %d, want 3", len(insts))
	}
	for i, in := range insts {
		if in.Ranks != 4 {
			t.Errorf("instance %d ranks = %d", i, in.Ranks)
		}
	}
	if insts[1].MaxDuration() != 6 {
		t.Errorf("instance 1 max duration = %v", insts[1].MaxDuration())
	}
	// Ordered by start.
	if insts[0].Start > insts[1].Start || insts[1].Start > insts[2].Start {
		t.Error("instances not ordered by start")
	}
}

func TestAnalyzeCollectivesFigure4(t *testing.T) {
	tr := buildCollectiveTrace()
	rep := AnalyzeCollectives(tr, "alltoallv", 3)
	if rep.Instances != 3 {
		t.Errorf("instances = %d", rep.Instances)
	}
	// Baseline is the median duration: mostly 1.0.
	if rep.Baseline != 1 {
		t.Errorf("baseline = %v, want 1", rep.Baseline)
	}
	if rep.Delayed != 2 {
		t.Errorf("delayed = %d, want 2", rep.Delayed)
	}
	if rep.FullyDelayed != 1 {
		t.Errorf("fully delayed = %d, want 1 (all nodes)", rep.FullyDelayed)
	}
	if rep.PartiallyDelayed != 1 {
		t.Errorf("partially delayed = %d, want 1 (only part)", rep.PartiallyDelayed)
	}
	if rep.WorstRatio != 8 {
		t.Errorf("worst ratio = %v, want 8", rep.WorstRatio)
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	rep := AnalyzeCollectives(New(2), "alltoallv", 3)
	if rep.Instances != 0 || rep.Delayed != 0 || rep.Baseline != 0 {
		t.Errorf("empty analysis = %+v", rep)
	}
}

func TestDroppedComms(t *testing.T) {
	tr := New(2)
	tr.AddComm(Comm{Dropped: true})
	tr.AddComm(Comm{})
	tr.AddComm(Comm{Dropped: true})
	if d := tr.DroppedComms(); d != 2 {
		t.Errorf("dropped = %d, want 2", d)
	}
}

func TestGanttRendering(t *testing.T) {
	tr := New(2)
	tr.AddInterval(Interval{Rank: 0, Kind: StateCompute, Start: 0, End: 5})
	tr.AddInterval(Interval{Rank: 0, Kind: StateCollective, Name: "alltoallv#0", Start: 5, End: 10})
	tr.AddInterval(Interval{Rank: 1, Kind: StateRecv, Start: 0, End: 10})
	out := tr.Gantt(40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lines = %d, want 3 (header + 2 ranks):\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "=") || !strings.Contains(lines[1], "A") {
		t.Errorf("rank 0 row missing states: %q", lines[1])
	}
	if !strings.Contains(lines[2], "<") {
		t.Errorf("rank 1 row missing recv: %q", lines[2])
	}
	if strings.Contains(lines[2], "=") {
		t.Errorf("rank 1 row has spurious compute: %q", lines[2])
	}
}

func TestGanttEmpty(t *testing.T) {
	if out := New(2).Gantt(40); out != "" {
		t.Errorf("empty trace rendered %q", out)
	}
}

func TestGanttDefaultWidth(t *testing.T) {
	tr := New(1)
	tr.AddInterval(Interval{Rank: 0, Kind: StateCompute, Start: 0, End: 1})
	out := tr.Gantt(0)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines[1]) < 80 {
		t.Errorf("default width row too short: %d", len(lines[1]))
	}
}

func TestGanttIgnoresOutOfRangeRanks(t *testing.T) {
	tr := New(1)
	tr.AddInterval(Interval{Rank: 5, Kind: StateCompute, Start: 0, End: 1})
	tr.AddInterval(Interval{Rank: 0, Kind: StateCompute, Start: 0, End: 1})
	out := tr.Gantt(10)
	if !strings.Contains(out, "rank   0") {
		t.Errorf("gantt = %q", out)
	}
}

func TestReserveGrowsWithoutChangingContents(t *testing.T) {
	tr := New(2)
	tr.AddInterval(Interval{Rank: 0, Kind: StateCompute, Start: 0, End: 1})
	tr.AddComm(Comm{Src: 0, Dst: 1, Bytes: 10, Sent: 0, Arrived: 1})
	tr.Reserve(100, 200)
	if cap(tr.Intervals) < 100 || cap(tr.Comms) < 200 {
		t.Errorf("Reserve did not grow: caps %d/%d", cap(tr.Intervals), cap(tr.Comms))
	}
	if len(tr.Intervals) != 1 || len(tr.Comms) != 1 {
		t.Fatalf("Reserve changed lengths: %d/%d", len(tr.Intervals), len(tr.Comms))
	}
	if tr.Intervals[0].End != 1 || tr.Comms[0].Bytes != 10 {
		t.Error("Reserve changed contents")
	}
	// Reserving less than current capacity must not shrink.
	before := cap(tr.Intervals)
	tr.Reserve(1, 1)
	if cap(tr.Intervals) != before {
		t.Error("Reserve shrank a buffer")
	}
}
