// Package trace records and analyzes execution traces of simulated MPI
// runs, standing in for the Extrae/Paraver toolchain the paper uses
// ([12], [13]). It stores per-rank state intervals and point-to-point
// communication records, renders ASCII Gantt charts reminiscent of
// Paraver timelines, and implements the Figure 4 analysis: finding
// all_to_all_v instances whose duration is abnormally long ("delayed")
// and classifying whether all ranks or only part of them were hit.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"montblanc/internal/stats"
)

// Kind classifies a state interval.
type Kind int

// Interval kinds. StateMemory extends the historical set for runs that
// distinguish memory-bound phases from compute; it is appended after
// the original kinds so their values stay put. The external contract is
// the kind *names*: ExportCSV encodes kinds by String(), so new kinds
// need fresh names, not fresh numbers.
const (
	StateCompute Kind = iota
	StateSend
	StateRecv
	StateCollective
	StateIdle
	StateMemory
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case StateCompute:
		return "compute"
	case StateSend:
		return "send"
	case StateRecv:
		return "recv"
	case StateCollective:
		return "collective"
	case StateIdle:
		return "idle"
	case StateMemory:
		return "memory"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// rune used in Gantt rendering.
func (k Kind) glyph() rune {
	switch k {
	case StateCompute:
		return '='
	case StateSend:
		return '>'
	case StateRecv:
		return '<'
	case StateCollective:
		return 'A'
	case StateMemory:
		return 'm'
	default:
		return ' '
	}
}

// Interval is one state of one rank over [Start, End).
type Interval struct {
	Rank  int
	Kind  Kind
	Name  string // e.g. "alltoallv#3"
	Start float64
	End   float64
	// Dropped counts messages received inside this interval that
	// suffered a buffer overrun (collective intervals only).
	Dropped int
}

// Duration returns End - Start.
func (iv Interval) Duration() float64 { return iv.End - iv.Start }

// Comm is one point-to-point message.
type Comm struct {
	Src, Dst, Tag, Bytes int
	Sent, Arrived        float64
	Dropped              bool // suffered a buffer overrun somewhere
}

// Trace is a complete recording of one run.
type Trace struct {
	Ranks     int
	Intervals []Interval
	Comms     []Comm
}

// New returns an empty trace over the given number of ranks.
func New(ranks int) *Trace { return &Trace{Ranks: ranks} }

// AddInterval appends a state interval.
func (t *Trace) AddInterval(iv Interval) { t.Intervals = append(t.Intervals, iv) }

// Reserve grows the interval and comm buffers to at least the given
// total capacities, so recorders that know their event counts up front
// (simmpi sizes them from its config) avoid append regrowth. It never
// shrinks and never changes contents.
func (t *Trace) Reserve(intervals, comms int) {
	if n := len(t.Intervals); intervals > cap(t.Intervals) {
		grown := make([]Interval, n, intervals)
		copy(grown, t.Intervals)
		t.Intervals = grown
	}
	if n := len(t.Comms); comms > cap(t.Comms) {
		grown := make([]Comm, n, comms)
		copy(grown, t.Comms)
		t.Comms = grown
	}
}

// AddComm appends a communication record.
func (t *Trace) AddComm(c Comm) { t.Comms = append(t.Comms, c) }

// Duration returns the end time of the last interval or comm.
func (t *Trace) Duration() float64 {
	end := 0.0
	for _, iv := range t.Intervals {
		if iv.End > end {
			end = iv.End
		}
	}
	for _, c := range t.Comms {
		if c.Arrived > end {
			end = c.Arrived
		}
	}
	return end
}

// Merge appends the contents of other into t (used to combine per-rank
// buffers after a run).
func (t *Trace) Merge(other *Trace) {
	t.Intervals = append(t.Intervals, other.Intervals...)
	t.Comms = append(t.Comms, other.Comms...)
}

// Sort orders intervals by (start, rank) and comms by send time, making
// traces deterministic regardless of collection order.
func (t *Trace) Sort() {
	sort.SliceStable(t.Intervals, func(i, j int) bool {
		a, b := t.Intervals[i], t.Intervals[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Rank < b.Rank
	})
	sort.SliceStable(t.Comms, func(i, j int) bool { return t.Comms[i].Sent < t.Comms[j].Sent })
}

// Instance aggregates one collective instance across ranks.
type Instance struct {
	Name      string
	Start     float64 // earliest rank entry
	End       float64 // latest rank exit
	Durations []float64
	Ranks     int
	// DroppedRanks counts member ranks whose intervals saw at least one
	// retransmitted message; DroppedComms totals those messages.
	DroppedRanks int
	DroppedComms int
}

// MaxDuration returns the slowest rank's time in the collective.
func (in Instance) MaxDuration() float64 { return stats.Max(in.Durations) }

// Collectives groups collective intervals whose name starts with prefix
// by instance name, ordered by start time.
func (t *Trace) Collectives(prefix string) []Instance {
	byName := map[string]*Instance{}
	for _, iv := range t.Intervals {
		if iv.Kind != StateCollective || !strings.HasPrefix(iv.Name, prefix) {
			continue
		}
		in, ok := byName[iv.Name]
		if !ok {
			in = &Instance{Name: iv.Name, Start: iv.Start, End: iv.End}
			byName[iv.Name] = in
		}
		if iv.Start < in.Start {
			in.Start = iv.Start
		}
		if iv.End > in.End {
			in.End = iv.End
		}
		in.Durations = append(in.Durations, iv.Duration())
		in.Ranks++
		if iv.Dropped > 0 {
			in.DroppedRanks++
			in.DroppedComms += iv.Dropped
		}
	}
	out := make([]Instance, 0, len(byName))
	for _, in := range byName {
		out = append(out, *in)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// DelayReport summarizes the Figure 4 analysis of one collective type.
type DelayReport struct {
	Collective string
	Instances  int
	// Delayed counts instances where at least one rank exceeded
	// Factor x Baseline.
	Delayed int
	// FullyDelayed counts instances where >= 80% of ranks exceeded it
	// ("in some cases all the nodes are delayed").
	FullyDelayed int
	// PartiallyDelayed counts delayed instances that are not fully
	// delayed ("in other, only part of them suffers").
	PartiallyDelayed int
	Baseline         float64 // median rank-duration across all instances
	Factor           float64
	WorstRatio       float64 // worst duration / baseline
}

// AnalyzeCollectives computes a DelayReport for collectives with the
// given name prefix, flagging durations above factor x the median
// rank-duration as delayed.
func AnalyzeCollectives(t *Trace, prefix string, factor float64) DelayReport {
	rep := DelayReport{Collective: prefix, Factor: factor}
	instances := t.Collectives(prefix)
	rep.Instances = len(instances)
	var all []float64
	for _, in := range instances {
		all = append(all, in.Durations...)
	}
	if len(all) == 0 {
		return rep
	}
	rep.Baseline = stats.Median(all)
	if rep.Baseline <= 0 {
		return rep
	}
	for _, in := range instances {
		delayed := 0
		for _, d := range in.Durations {
			if ratio := d / rep.Baseline; ratio > rep.WorstRatio {
				rep.WorstRatio = ratio
			}
			if d > factor*rep.Baseline {
				delayed++
			}
		}
		if delayed == 0 {
			continue
		}
		rep.Delayed++
		if float64(delayed) >= 0.8*float64(in.Ranks) {
			rep.FullyDelayed++
		} else {
			rep.PartiallyDelayed++
		}
	}
	return rep
}

// CongestionReport is the retransmission-based Figure 4 analysis: which
// collective instances contain switch-dropped messages, and whether all
// ranks or only part of them were hit.
type CongestionReport struct {
	Collective       string
	Instances        int
	Delayed          int // instances containing >= 1 retransmission
	FullyDelayed     int // >= 80% of ranks hit
	PartiallyDelayed int
	TotalDrops       int
	// MeanCleanDuration / MeanDelayedDuration compare the per-rank time
	// spent in clean vs congested instances.
	MeanCleanDuration   float64
	MeanDelayedDuration float64
}

// AnalyzeCongestion classifies collective instances by the
// retransmissions they contain — the ground truth behind the "delayed
// communications" circled in Figure 4.
func AnalyzeCongestion(t *Trace, prefix string) CongestionReport {
	rep := CongestionReport{Collective: prefix}
	var cleanSum, delayedSum float64
	var cleanN, delayedN int
	for _, in := range t.Collectives(prefix) {
		rep.Instances++
		if in.DroppedRanks == 0 {
			for _, d := range in.Durations {
				cleanSum += d
				cleanN++
			}
			continue
		}
		rep.Delayed++
		rep.TotalDrops += in.DroppedComms
		if float64(in.DroppedRanks) >= 0.8*float64(in.Ranks) {
			rep.FullyDelayed++
		} else {
			rep.PartiallyDelayed++
		}
		for _, d := range in.Durations {
			delayedSum += d
			delayedN++
		}
	}
	if cleanN > 0 {
		rep.MeanCleanDuration = cleanSum / float64(cleanN)
	}
	if delayedN > 0 {
		rep.MeanDelayedDuration = delayedSum / float64(delayedN)
	}
	return rep
}

// DroppedComms returns the number of communications that overran a
// buffer somewhere on their path.
func (t *Trace) DroppedComms() int {
	n := 0
	for _, c := range t.Comms {
		if c.Dropped {
			n++
		}
	}
	return n
}

// ExportCSV writes the trace in a flat CSV form (one line per interval,
// then one per communication) loadable by external analysis tools — the
// role Paraver's trace files play in the paper's workflow ([13]).
func (t *Trace) ExportCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "record,rank,kind,name,start,end,dropped"); err != nil {
		return err
	}
	for _, iv := range t.Intervals {
		if _, err := fmt.Fprintf(w, "state,%d,%s,%s,%.9f,%.9f,%d\n",
			iv.Rank, iv.Kind, csvEscape(iv.Name), iv.Start, iv.End, iv.Dropped); err != nil {
			return err
		}
	}
	for _, c := range t.Comms {
		dropped := 0
		if c.Dropped {
			dropped = 1
		}
		if _, err := fmt.Fprintf(w, "comm,%d,send,%d:%d:%d,%.9f,%.9f,%d\n",
			c.Src, c.Dst, c.Tag, c.Bytes, c.Sent, c.Arrived, dropped); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	return strings.NewReplacer(",", ";", "\n", " ").Replace(s)
}

// Gantt renders the trace as an ASCII timeline, one row per rank,
// sampling the dominant state of each of width time buckets:
//
//	'=' compute   '>' send   '<' recv   'A' collective   'm' memory   ' ' idle
func (t *Trace) Gantt(width int) string {
	if width <= 0 {
		width = 80
	}
	total := t.Duration()
	if total <= 0 {
		return ""
	}
	rows := make([][]rune, t.Ranks)
	for r := range rows {
		rows[r] = []rune(strings.Repeat(" ", width))
	}
	for _, iv := range t.Intervals {
		if iv.Rank < 0 || iv.Rank >= t.Ranks {
			continue
		}
		// An inverted interval, or one lying wholly outside [0, makespan],
		// carries no drawable time — skip it, exactly as EnergyByState
		// drops it from the accounting.
		if iv.End < iv.Start || iv.End <= 0 || iv.Start >= total {
			continue
		}
		// Clamp both bucket indexes to [0, width-1]: a partially
		// out-of-range interval (negative Start, or an End beyond the
		// makespan after a bad Merge) must not index outside the row.
		lo := int(iv.Start / total * float64(width))
		hi := int(iv.End / total * float64(width))
		if lo < 0 {
			lo = 0
		}
		if hi >= width {
			hi = width - 1
		}
		for c := lo; c <= hi; c++ {
			// Collectives paint over everything; otherwise first writer
			// wins within a bucket.
			if iv.Kind == StateCollective || rows[iv.Rank][c] == ' ' {
				rows[iv.Rank][c] = iv.Kind.glyph()
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time: 0 .. %.4fs\n", total)
	for r, row := range rows {
		fmt.Fprintf(&b, "rank %3d |%s|\n", r, string(row))
	}
	return b.String()
}
