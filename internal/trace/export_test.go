package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestExportCSV(t *testing.T) {
	tr := New(2)
	tr.AddInterval(Interval{Rank: 0, Kind: StateCompute, Name: "work,1", Start: 0, End: 1})
	tr.AddInterval(Interval{Rank: 1, Kind: StateCollective, Name: "alltoallv#0", Start: 1, End: 2, Dropped: 3})
	tr.AddComm(Comm{Src: 0, Dst: 1, Tag: 5, Bytes: 100, Sent: 0.5, Arrived: 0.75, Dropped: true})

	var buf bytes.Buffer
	if err := tr.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 2 states + 1 comm
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	if lines[0] != "record,rank,kind,name,start,end,dropped" {
		t.Errorf("header = %q", lines[0])
	}
	// Commas in names are escaped so the CSV stays rectangular.
	if strings.Contains(lines[1], "work,1") {
		t.Errorf("unescaped comma in %q", lines[1])
	}
	if !strings.Contains(lines[2], "alltoallv#0") || !strings.HasSuffix(lines[2], ",3") {
		t.Errorf("collective row wrong: %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "comm,0,send,1:5:100") || !strings.HasSuffix(lines[3], ",1") {
		t.Errorf("comm row wrong: %q", lines[3])
	}
	// Every row has the same number of fields.
	for _, l := range lines {
		if got := strings.Count(l, ","); got != 6 {
			t.Errorf("row %q has %d commas, want 6", l, got)
		}
	}
}

func TestExportCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New(0).ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 1 {
		t.Errorf("empty trace exported %d lines, want header only", lines)
	}
}
