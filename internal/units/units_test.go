package units

import "testing"

func TestBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{1024, "1KiB"},
		{32 * KiB, "32KiB"},
		{50 * KiB, "50KiB"},
		{8 * MiB, "8MiB"},
		{12 * GiB, "12GiB"},
		{1536, "1.5KiB"},
	}
	for _, c := range cases {
		if got := Bytes(c.in); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFlops(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{620e6, "620MFLOPS"},
		{24e9, "24GFLOPS"},
		{1e18, "1EFLOPS"},
		{0.7e15, "700TFLOPS"},
		{950, "950FLOPS"},
		{1500, "1.5KFLOPS"},
	}
	for _, c := range cases {
		if got := Flops(c.in); got != c.want {
			t.Errorf("Flops(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRate(t *testing.T) {
	if got := Rate(5877, "ops/s"); got != "5.88Kops/s" {
		t.Errorf("Rate = %q", got)
	}
	if got := Rate(42, "ops/s"); got != "42ops/s" {
		t.Errorf("Rate = %q", got)
	}
	if got := Rate(4.52e6, "nps"); got != "4.52Mnps" {
		t.Errorf("Rate = %q", got)
	}
}

func TestSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{186.8, "186.8s"},
		{0.0235, "23.5ms"},
		{1e-5, "10us"},
		{3e-9, "3ns"},
	}
	for _, c := range cases {
		if got := Seconds(c.in); got != c.want {
			t.Errorf("Seconds(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}
