package units

import (
	"math"
	"testing"
)

func TestBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{1024, "1KiB"},
		{32 * KiB, "32KiB"},
		{50 * KiB, "50KiB"},
		{8 * MiB, "8MiB"},
		{12 * GiB, "12GiB"},
		{1536, "1.5KiB"},
	}
	for _, c := range cases {
		if got := Bytes(c.in); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFlops(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{620e6, "620MFLOPS"},
		{24e9, "24GFLOPS"},
		{1e18, "1EFLOPS"},
		{0.7e15, "700TFLOPS"},
		{950, "950FLOPS"},
		{1500, "1.5KFLOPS"},
	}
	for _, c := range cases {
		if got := Flops(c.in); got != c.want {
			t.Errorf("Flops(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRate(t *testing.T) {
	if got := Rate(5877, "ops/s"); got != "5.88Kops/s" {
		t.Errorf("Rate = %q", got)
	}
	if got := Rate(42, "ops/s"); got != "42ops/s" {
		t.Errorf("Rate = %q", got)
	}
	if got := Rate(4.52e6, "nps"); got != "4.52Mnps" {
		t.Errorf("Rate = %q", got)
	}
}

func TestSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{186.8, "186.8s"},
		{0.0235, "23.5ms"},
		{1e-5, "10us"},
		{3e-9, "3ns"},
	}
	for _, c := range cases {
		if got := Seconds(c.in); got != c.want {
			t.Errorf("Seconds(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Edge cases shared by every formatter: negative values must pick
// their unit by magnitude (a -2ms stall is not "-2000000ns") and
// non-finite values must render explicitly rather than as a plausible
// quantity in the smallest unit.
func TestSecondsEdgeCases(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{-0.002, "-2ms"},
		{-186.8, "-186.8s"},
		{-1e-5, "-10us"},
		{-3e-9, "-3ns"},
		{0, "0ns"},
		{math.NaN(), "NaNs"},
		{math.Inf(1), "+Infs"},
		{math.Inf(-1), "-Infs"},
	}
	for _, c := range cases {
		if got := Seconds(c.in); got != c.want {
			t.Errorf("Seconds(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFlopsEdgeCases(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{-620e6, "-620MFLOPS"},
		{-1500, "-1.5KFLOPS"},
		{-950, "-950FLOPS"},
		{0, "0FLOPS"},
		{math.NaN(), "NaNFLOPS"},
		{math.Inf(1), "+InfFLOPS"},
		{math.Inf(-1), "-InfFLOPS"},
	}
	for _, c := range cases {
		if got := Flops(c.in); got != c.want {
			t.Errorf("Flops(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRateEdgeCases(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{-5877, "-5.88Kops/s"},
		{-42, "-42ops/s"},
		{-4.52e6, "-4.52Mops/s"},
		{math.NaN(), "NaNops/s"},
		{math.Inf(1), "+Infops/s"},
		{math.Inf(-1), "-Infops/s"},
	}
	for _, c := range cases {
		if got := Rate(c.in, "ops/s"); got != c.want {
			t.Errorf("Rate(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBytesEdgeCases(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{-512, "-512B"},
		{-1024, "-1KiB"},
		{-2048, "-2KiB"},
		{-8 * MiB, "-8MiB"},
		{-12 * GiB, "-12GiB"},
		{math.MinInt64, "-8589934592GiB"},
		{math.MaxInt64, "8589934592GiB"},
	}
	for _, c := range cases {
		if got := Bytes(c.in); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
