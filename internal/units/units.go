// Package units provides size, rate and operation-count helpers shared by
// the simulators and reports. All quantities are SI unless the name says
// otherwise (KiB/MiB are binary).
package units

import "fmt"

// Binary sizes in bytes.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
)

// Decimal rates (per second, per watt, ...).
const (
	Kilo = 1e3
	Mega = 1e6
	Giga = 1e9
	Tera = 1e12
	Peta = 1e15
	Exa  = 1e18
)

// Bytes formats a byte count with a binary suffix (B, KiB, MiB, GiB).
func Bytes(n int64) string {
	switch {
	case n >= GiB:
		return trim(float64(n)/GiB, "GiB")
	case n >= MiB:
		return trim(float64(n)/MiB, "MiB")
	case n >= KiB:
		return trim(float64(n)/KiB, "KiB")
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Flops formats a floating-point-operations-per-second rate with a
// decimal suffix (FLOPS, MFLOPS, GFLOPS, TFLOPS, PFLOPS, EFLOPS).
func Flops(v float64) string {
	switch {
	case v >= Exa:
		return trim(v/Exa, "EFLOPS")
	case v >= Peta:
		return trim(v/Peta, "PFLOPS")
	case v >= Tera:
		return trim(v/Tera, "TFLOPS")
	case v >= Giga:
		return trim(v/Giga, "GFLOPS")
	case v >= Mega:
		return trim(v/Mega, "MFLOPS")
	case v >= Kilo:
		return trim(v/Kilo, "KFLOPS")
	default:
		return trim(v, "FLOPS")
	}
}

// Rate formats a generic per-second rate with decimal suffixes.
func Rate(v float64, unit string) string {
	switch {
	case v >= Giga:
		return trim(v/Giga, "G"+unit)
	case v >= Mega:
		return trim(v/Mega, "M"+unit)
	case v >= Kilo:
		return trim(v/Kilo, "K"+unit)
	default:
		return trim(v, unit)
	}
}

// Seconds formats a duration given in seconds using an adaptive unit.
func Seconds(s float64) string {
	switch {
	case s >= 1:
		return trim(s, "s")
	case s >= 1e-3:
		return trim(s*1e3, "ms")
	case s >= 1e-6:
		return trim(s*1e6, "us")
	default:
		return trim(s*1e9, "ns")
	}
}

func trim(v float64, suffix string) string {
	s := fmt.Sprintf("%.2f", v)
	// Drop trailing zeros and a dangling decimal point for compactness.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s + suffix
}
