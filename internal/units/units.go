// Package units provides size, rate and operation-count helpers shared by
// the simulators and reports. All quantities are SI unless the name says
// otherwise (KiB/MiB are binary).
package units

import (
	"fmt"
	"math"
)

// Binary sizes in bytes.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
)

// Decimal rates (per second, per watt, ...).
const (
	Kilo = 1e3
	Mega = 1e6
	Giga = 1e9
	Tera = 1e12
	Peta = 1e15
	Exa  = 1e18
)

// Bytes formats a byte count with a binary suffix (B, KiB, MiB, GiB).
func Bytes(n int64) string {
	// Factor the sign out first so a negative count picks its unit by
	// magnitude (-2048 → "-2KiB") instead of falling through every
	// threshold into the bytes branch. int64 negation overflows on
	// MinInt64 only; route that one magnitude through float64.
	if n < 0 {
		if n == math.MinInt64 {
			return "-" + trim(-float64(n)/GiB, "GiB")
		}
		return "-" + Bytes(-n)
	}
	switch {
	case n >= GiB:
		return trim(float64(n)/GiB, "GiB")
	case n >= MiB:
		return trim(float64(n)/MiB, "MiB")
	case n >= KiB:
		return trim(float64(n)/KiB, "KiB")
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// nonFinite renders NaN and ±Inf explicitly ("NaNFLOPS", "+Infs") so a
// poisoned value is visible in a report instead of masquerading as a
// plausible quantity in the smallest unit ("NaNns").
func nonFinite(v float64, unit string) string {
	return fmt.Sprintf("%g%s", v, unit)
}

// signSplit factors a finite value into its sign prefix and magnitude,
// so every formatter selects its unit by magnitude and negative values
// render in the same unit as their positive mirror.
func signSplit(v float64) (sign string, mag float64) {
	if math.Signbit(v) && v != 0 {
		return "-", -v
	}
	return "", v
}

// Flops formats a floating-point-operations-per-second rate with a
// decimal suffix (FLOPS, MFLOPS, GFLOPS, TFLOPS, PFLOPS, EFLOPS).
func Flops(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nonFinite(v, "FLOPS")
	}
	sign, v := signSplit(v)
	switch {
	case v >= Exa:
		return sign + trim(v/Exa, "EFLOPS")
	case v >= Peta:
		return sign + trim(v/Peta, "PFLOPS")
	case v >= Tera:
		return sign + trim(v/Tera, "TFLOPS")
	case v >= Giga:
		return sign + trim(v/Giga, "GFLOPS")
	case v >= Mega:
		return sign + trim(v/Mega, "MFLOPS")
	case v >= Kilo:
		return sign + trim(v/Kilo, "KFLOPS")
	default:
		return sign + trim(v, "FLOPS")
	}
}

// Rate formats a generic per-second rate with decimal suffixes.
func Rate(v float64, unit string) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nonFinite(v, unit)
	}
	sign, v := signSplit(v)
	switch {
	case v >= Giga:
		return sign + trim(v/Giga, "G"+unit)
	case v >= Mega:
		return sign + trim(v/Mega, "M"+unit)
	case v >= Kilo:
		return sign + trim(v/Kilo, "K"+unit)
	default:
		return sign + trim(v, unit)
	}
}

// Seconds formats a duration given in seconds using an adaptive unit.
func Seconds(s float64) string {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return nonFinite(s, "s")
	}
	sign, s := signSplit(s)
	switch {
	case s >= 1:
		return sign + trim(s, "s")
	case s >= 1e-3:
		return sign + trim(s*1e3, "ms")
	case s >= 1e-6:
		return sign + trim(s*1e6, "us")
	default:
		return sign + trim(s*1e9, "ns")
	}
}

func trim(v float64, suffix string) string {
	s := fmt.Sprintf("%.2f", v)
	// Drop trailing zeros and a dangling decimal point for compactness.
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s + suffix
}
