package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sleepyTask writes its ID after a delay, so completion order differs
// wildly from input order.
func sleepyTask(id string, d time.Duration) Task {
	return Task{
		ID:    id,
		Title: "task " + id,
		Run: func(w io.Writer) error {
			time.Sleep(d)
			fmt.Fprintf(w, "output of %s\n", id)
			return nil
		},
	}
}

func TestRunEmitsInInputOrder(t *testing.T) {
	// Later tasks finish first: input order must still win.
	tasks := []Task{
		sleepyTask("a", 30*time.Millisecond),
		sleepyTask("b", 20*time.Millisecond),
		sleepyTask("c", 10*time.Millisecond),
		sleepyTask("d", 0),
	}
	for _, workers := range []int{1, 2, 4, 8, 0} {
		p := Pool{Workers: workers}
		results := p.Run(tasks)
		if len(results) != len(tasks) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(results), len(tasks))
		}
		for i, r := range results {
			if r.ID != tasks[i].ID {
				t.Errorf("workers=%d: result %d = %s, want %s", workers, i, r.ID, tasks[i].ID)
			}
			if want := "output of " + tasks[i].ID + "\n"; r.Output != want {
				t.Errorf("workers=%d: output %q, want %q", workers, r.Output, want)
			}
			if r.Title != "task "+tasks[i].ID {
				t.Errorf("workers=%d: title %q", workers, r.Title)
			}
			if r.Duration < 0 {
				t.Errorf("workers=%d: negative duration", workers)
			}
		}
	}
}

func TestStreamOrderedEmission(t *testing.T) {
	tasks := []Task{
		sleepyTask("z-last-alphabetically-first-input", 25*time.Millisecond),
		sleepyTask("a", 0),
		sleepyTask("m", 5*time.Millisecond),
	}
	var got []string
	p := Pool{Workers: 3}
	p.Stream(tasks, func(r Result) bool {
		got = append(got, r.ID)
		return true
	})
	want := []string{"z-last-alphabetically-first-input", "a", "m"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("emission order %v, want %v", got, want)
	}
}

func TestStreamEarlyStop(t *testing.T) {
	var ran atomic.Int32
	mk := func(id string, err error) Task {
		return Task{ID: id, Run: func(w io.Writer) error {
			ran.Add(1)
			fmt.Fprintf(w, "partial %s", id)
			return err
		}}
	}
	boom := errors.New("boom")
	tasks := []Task{mk("ok1", nil), mk("bad", boom), mk("ok2", nil)}
	var emitted []string
	p := Pool{Workers: 2}
	p.Stream(tasks, func(r Result) bool {
		emitted = append(emitted, r.ID)
		return r.Err == nil
	})
	if want := "ok1,bad"; strings.Join(emitted, ",") != want {
		t.Errorf("emitted %v, want %s", emitted, want)
	}
	// The first two tasks ran; ok2 is skipped if the stop flag beat its
	// dispatch, and runs to completion (result dropped) if not.
	if n := ran.Load(); n < 2 || n > 3 {
		t.Errorf("tasks ran %d times, want 2 or 3", n)
	}
}

// A stopped pool skips tasks still in the queue: both workers are
// parked on gates while the emitter rejects the first result, so by
// the time either worker reaches the queued task the stop flag is
// long since set and the task must never start.
func TestStreamStopSkipsQueuedTasks(t *testing.T) {
	gate := make(chan struct{})
	var skippedRan atomic.Bool
	hold := func(w io.Writer) error { <-gate; return nil }
	tasks := []Task{
		{ID: "bad", Run: func(w io.Writer) error { return errors.New("boom") }},
		{ID: "held1", Run: hold},
		{ID: "held2", Run: hold},
		{ID: "queued", Run: func(w io.Writer) error { skippedRan.Store(true); return nil }},
	}
	p := Pool{Workers: 2}
	p.Stream(tasks, func(r Result) bool {
		if r.Err != nil {
			// Release the parked workers well after Stream has set the
			// stop flag (it does so immediately after emit returns).
			go func() {
				time.Sleep(50 * time.Millisecond)
				close(gate)
			}()
			return false
		}
		return true
	})
	if skippedRan.Load() {
		t.Error("queued task ran after the pool was stopped")
	}
}

func TestResultCarriesErrorAndPartialOutput(t *testing.T) {
	boom := errors.New("kernel exploded")
	p := Pool{Workers: 1}
	results := p.Run([]Task{{ID: "x", Run: func(w io.Writer) error {
		io.WriteString(w, "half a table")
		return boom
	}}})
	r := results[0]
	if !errors.Is(r.Err, boom) {
		t.Errorf("err = %v, want %v", r.Err, boom)
	}
	if r.Output != "half a table" {
		t.Errorf("partial output %q lost", r.Output)
	}
}

func TestDispatchOrderHeaviestFirst(t *testing.T) {
	tasks := []Task{
		{ID: "light"}, // zero weight counts as 1
		{ID: "heavy", Weight: 100},
		{ID: "mid", Weight: 10},
		{ID: "light2", Weight: 1},
	}
	order := dispatchOrder(tasks)
	got := make([]string, len(order))
	for i, idx := range order {
		got[i] = tasks[idx].ID
	}
	want := "heavy,mid,light,light2" // ties keep input order
	if strings.Join(got, ",") != want {
		t.Errorf("dispatch order %v, want %s", got, want)
	}
}

// A single worker must execute in input order — LPT reordering would
// only delay the in-order emitter behind heavy tasks, buffering their
// output instead of streaming it.
func TestSingleWorkerRunsInInputOrder(t *testing.T) {
	var mu sync.Mutex
	var ranOrder []string
	mk := func(id string, weight int) Task {
		return Task{ID: id, Weight: weight, Run: func(w io.Writer) error {
			mu.Lock()
			ranOrder = append(ranOrder, id)
			mu.Unlock()
			return nil
		}}
	}
	tasks := []Task{mk("light", 1), mk("heavy", 100), mk("mid", 10)}
	p := Pool{Workers: 1}
	p.Run(tasks)
	if want := "light,heavy,mid"; strings.Join(ranOrder, ",") != want {
		t.Errorf("single worker ran %v, want input order %s", ranOrder, want)
	}
}

func TestWeightsDoNotAffectResultOrder(t *testing.T) {
	tasks := []Task{
		{ID: "first", Weight: 1, Run: func(w io.Writer) error { return nil }},
		{ID: "second", Weight: 999, Run: func(w io.Writer) error { return nil }},
	}
	p := Pool{Workers: 2}
	results := p.Run(tasks)
	if results[0].ID != "first" || results[1].ID != "second" {
		t.Errorf("result order %s,%s — weights leaked into output order",
			results[0].ID, results[1].ID)
	}
}

func TestRunNoTasks(t *testing.T) {
	p := Pool{Workers: 4}
	if results := p.Run(nil); len(results) != 0 {
		t.Errorf("got %d results from no tasks", len(results))
	}
}

func TestWorkersClamped(t *testing.T) {
	p := Pool{Workers: -3}
	if w := p.workers(5); w < 1 {
		t.Errorf("workers(5) with negative setting = %d", w)
	}
	p = Pool{Workers: 100}
	if w := p.workers(2); w != 2 {
		t.Errorf("workers(2) = %d, want clamp to task count", w)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	in := []Result{
		{ID: "fig1", Title: "a figure", Output: "cells & <charts>\n", Duration: 1500 * time.Millisecond},
		{ID: "fig2", Title: "broken", Output: "partial", Duration: time.Millisecond, Err: errors.New("no converge")},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []Result
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("round-trip lost results: %d", len(out))
	}
	if out[0].ID != "fig1" || out[0].Output != in[0].Output || out[0].Err != nil {
		t.Errorf("result 0 mangled: %+v", out[0])
	}
	if out[0].Duration != in[0].Duration {
		t.Errorf("duration %v, want %v", out[0].Duration, in[0].Duration)
	}
	if out[1].Err == nil || out[1].Err.Error() != "no converge" {
		t.Errorf("error not preserved: %v", out[1].Err)
	}
}
