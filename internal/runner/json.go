package runner

import (
	"encoding/json"
	"math"
	"time"
)

// jsonResult is the wire form of a Result: the error flattened to a
// string and the duration to seconds, so downstream tooling needs no
// Go-specific decoding.
type jsonResult struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
	Output  string  `json:"output"`
	Error   string  `json:"error,omitempty"`
}

// MarshalJSON renders the result in its wire form.
func (r Result) MarshalJSON() ([]byte, error) {
	jr := jsonResult{
		ID:      r.ID,
		Title:   r.Title,
		Seconds: r.Duration.Seconds(),
		Output:  r.Output,
	}
	if r.Err != nil {
		jr.Error = r.Err.Error()
	}
	return json.Marshal(jr)
}

// UnmarshalJSON parses the wire form back into a Result (the error
// becomes a plain errors.New of the recorded message).
func (r *Result) UnmarshalJSON(data []byte) error {
	var jr jsonResult
	if err := json.Unmarshal(data, &jr); err != nil {
		return err
	}
	*r = Result{
		ID:       jr.ID,
		Title:    jr.Title,
		Output:   jr.Output,
		Duration: secondsToDuration(jr.Seconds),
	}
	if jr.Error != "" {
		r.Err = &recordedError{jr.Error}
	}
	return nil
}

func secondsToDuration(s float64) time.Duration {
	// Round, don't truncate: most durations are not exactly
	// representable as float seconds (0.3s*1e9 = 299999999.999…ns) and
	// truncation would lose a nanosecond on every round-trip.
	return time.Duration(math.Round(s * float64(time.Second)))
}

type recordedError struct{ msg string }

func (e *recordedError) Error() string { return e.msg }
