package runner

import (
	"encoding/json"
	"fmt"
	"math"
	"time"
)

// jsonResult is the wire form of a Result: the error flattened to a
// string and the duration to seconds, so downstream tooling needs no
// Go-specific decoding.
type jsonResult struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
	Output  string  `json:"output"`
	Error   string  `json:"error,omitempty"`
}

// MarshalJSON renders the result in its wire form.
func (r Result) MarshalJSON() ([]byte, error) {
	jr := jsonResult{
		ID:      r.ID,
		Title:   r.Title,
		Seconds: r.Duration.Seconds(),
		Output:  r.Output,
	}
	if r.Err != nil {
		jr.Error = r.Err.Error()
	}
	return json.Marshal(jr)
}

// UnmarshalJSON parses the wire form back into a Result (the error
// becomes a plain errors.New of the recorded message).
func (r *Result) UnmarshalJSON(data []byte) error {
	var jr jsonResult
	if err := json.Unmarshal(data, &jr); err != nil {
		return err
	}
	d, err := secondsToDuration(jr.Seconds)
	if err != nil {
		return fmt.Errorf("runner: result %q: %w", jr.ID, err)
	}
	*r = Result{
		ID:       jr.ID,
		Title:    jr.Title,
		Output:   jr.Output,
		Duration: d,
	}
	if jr.Error != "" {
		r.Err = &recordedError{jr.Error}
	}
	return nil
}

// maxDurationSeconds is the largest float64 seconds value that still
// rounds to a representable time.Duration. math.MaxInt64 is not exactly
// representable as a float64 (the nearest float is 2^63, one past the
// max), so the comparison is done in float space against the
// next-lower representable value.
var maxDurationSeconds = math.Nextafter(float64(math.MaxInt64), 0) / float64(time.Second)

// secondsToDuration converts wire seconds to a Duration, rejecting
// values no real task duration can produce. This wire form is the
// service's public contract, so hostile input (NaN, ±Inf, 1e30) must
// fail loudly instead of round-tripping into an
// implementation-dependent garbage Duration: float→int64 conversion of
// an out-of-range value is unspecified in Go.
func secondsToDuration(s float64) (time.Duration, error) {
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return 0, fmt.Errorf("non-finite seconds %g", s)
	}
	// Clamp rather than reject the edges: a negative duration cannot
	// come from a wall clock (only from a hand-edited file) and an
	// over-range one would overflow int64 nanoseconds.
	if s < 0 {
		return 0, nil
	}
	if s > maxDurationSeconds {
		return math.MaxInt64, nil
	}
	// Round, don't truncate: most durations are not exactly
	// representable as float seconds (0.3s*1e9 = 299999999.999…ns) and
	// truncation would lose a nanosecond on every round-trip.
	return time.Duration(math.Round(s * float64(time.Second))), nil
}

type recordedError struct{ msg string }

func (e *recordedError) Error() string { return e.msg }
