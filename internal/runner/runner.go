// Package runner executes independent tasks on a worker pool while
// keeping output deterministic: every task renders into its own buffer
// and results are emitted in input order regardless of completion
// order. Heavier tasks (by their Weight hint) are dispatched first so
// the pool drains with minimal trailing stragglers (LPT scheduling).
package runner

import (
	"bytes"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Task is one independent unit of work. Run receives a private writer;
// nothing a task writes interleaves with any other task.
type Task struct {
	ID    string
	Title string
	// Weight is a relative cost hint used to order dispatch (heaviest
	// first). Zero means 1. It never affects output order.
	Weight int
	Run    func(w io.Writer) error
}

// Result is the structured outcome of one task.
type Result struct {
	ID       string
	Title    string
	Output   string        // everything the task wrote (possibly partial on error)
	Duration time.Duration // wall-clock of the task's Run
	Err      error
}

// Pool executes tasks concurrently.
type Pool struct {
	// Workers is the number of concurrent tasks. Values <= 0 mean
	// runtime.GOMAXPROCS(0).
	Workers int
}

func (p *Pool) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// dispatchOrder returns task indices sorted by descending Weight,
// ties broken by input order, so long-running tasks start first.
func dispatchOrder(tasks []Task) []int {
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := tasks[order[a]].Weight, tasks[order[b]].Weight
		if wa == 0 {
			wa = 1
		}
		if wb == 0 {
			wb = 1
		}
		return wa > wb
	})
	return order
}

// Run executes all tasks and returns their results in input order.
func (p *Pool) Run(tasks []Task) []Result {
	results := make([]Result, 0, len(tasks))
	p.Stream(tasks, func(r Result) bool {
		results = append(results, r)
		return true
	})
	return results
}

// Stream executes all tasks, calling emit for each result in input
// order as soon as it and every predecessor have completed. emit runs
// on the calling goroutine; returning false stops the pool early:
// in-flight tasks still finish (their results are dropped) and tasks
// not yet started are skipped.
func (p *Pool) Stream(tasks []Task, emit func(Result) bool) {
	n := len(tasks)
	if n == 0 {
		return
	}

	// Each task owns a 1-buffered slot so workers never block on the
	// emitter and an early emitter exit leaks no goroutines.
	slots := make([]chan Result, n)
	for i := range slots {
		slots[i] = make(chan Result, 1)
	}

	workers := p.workers(n)

	// With one worker LPT reordering cannot improve the makespan — it
	// only delays the emitter (blocked on slot 0) behind heavy tasks,
	// buffering their output. Input order keeps a single worker
	// computing and emitting each task progressively, like a plain
	// sequential loop.
	order := dispatchOrder(tasks)
	if workers == 1 {
		for i := range order {
			order[i] = i
		}
	}

	queue := make(chan int, n)
	for _, i := range order {
		queue <- i
	}
	close(queue)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				if stop.Load() {
					continue
				}
				slots[i] <- runTask(tasks[i])
			}
		}()
	}

	for i := 0; i < n; i++ {
		if !emit(<-slots[i]) {
			stop.Store(true)
			break
		}
	}
	wg.Wait()
}

func runTask(t Task) Result {
	var buf bytes.Buffer
	start := time.Now()
	err := t.Run(&buf)
	return Result{
		ID:       t.ID,
		Title:    t.Title,
		Output:   buf.String(),
		Duration: time.Since(start),
		Err:      err,
	}
}
