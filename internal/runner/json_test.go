package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

// TestUnmarshalHostileSeconds drives the wire decoder with the seconds
// values an untrusted client can send. Non-finite input is rejected;
// out-of-range finite input clamps to [0, math.MaxInt64] nanoseconds
// instead of converting to an implementation-dependent Duration.
func TestUnmarshalHostileSeconds(t *testing.T) {
	cases := []struct {
		name    string
		wire    string
		want    time.Duration
		wantErr bool
	}{
		{name: "zero", wire: `0`, want: 0},
		{name: "exact", wire: `1.5`, want: 1500 * time.Millisecond},
		{name: "negative clamps to zero", wire: `-0.25`, want: 0},
		{name: "negative huge clamps to zero", wire: `-1e300`, want: 0},
		{name: "beyond int64 ns clamps to max", wire: `1e30`, want: math.MaxInt64},
		{name: "just past max clamps to max", wire: `9.3e9`, want: math.MaxInt64},
		{name: "max float clamps to max", wire: `1.7976931348623157e308`, want: math.MaxInt64},
		{name: "nan rejected", wire: `"NaN"`, wantErr: true},
		{name: "plus inf rejected", wire: `1e999`, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r Result
			err := json.Unmarshal([]byte(`{"id":"x","title":"t","seconds":`+tc.wire+`,"output":""}`), &r)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("seconds %s: accepted, Duration=%d; want error", tc.wire, r.Duration)
				}
				return
			}
			if err != nil {
				t.Fatalf("seconds %s: %v", tc.wire, err)
			}
			if r.Duration != tc.want {
				t.Errorf("seconds %s → %d, want %d", tc.wire, r.Duration, tc.want)
			}
		})
	}
}

// JSON has no NaN/Inf literals, so a number token can't be non-finite —
// but Go clients hand-building maps can't produce one either, and the
// decoder path must still reject the values if they arrive through a
// non-JSON route into secondsToDuration.
func TestSecondsToDurationNonFinite(t *testing.T) {
	for _, s := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if d, err := secondsToDuration(s); err == nil {
			t.Errorf("secondsToDuration(%g) = %d, want error", s, d)
		}
	}
}

// TestMarshalStableAtExtremes pins the fixed point of the clamp: a
// Result already at a boundary Duration survives marshal→unmarshal
// byte-stably, so stored wire forms never drift on re-serialization.
func TestMarshalStableAtExtremes(t *testing.T) {
	for _, d := range []time.Duration{0, 1, time.Second, math.MaxInt64} {
		in := Result{ID: "x", Title: "t", Duration: d}
		first, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		var out Result
		if err := json.Unmarshal(first, &out); err != nil {
			t.Fatalf("duration %d: %v", d, err)
		}
		second, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("duration %d: marshal not stable:\n  first  %s\n  second %s", d, first, second)
		}
	}
}

// FuzzResultJSONRoundTrip checks the two wire-contract properties for
// arbitrary field content and hostile seconds values: decoding never
// yields an out-of-range Duration, and whatever decodes re-marshals
// byte-stably (marshal∘unmarshal is a projection).
func FuzzResultJSONRoundTrip(f *testing.F) {
	f.Add("fig1", "a figure", 1.5, "output\n", "")
	f.Add("fig2", "broken", 0.000001, "partial", "no converge")
	f.Add("", "", -1e300, "", "")
	f.Add("x", "t", 1e30, "o", "e")
	f.Add("y", "u", 9.3e9, "", "")
	f.Add("z", "v", math.MaxFloat64, "", "")
	f.Fuzz(func(t *testing.T, id, title string, seconds float64, output, errMsg string) {
		doc := map[string]interface{}{
			"id": id, "title": title, "output": output,
		}
		if errMsg != "" {
			doc["error"] = errMsg
		}
		// json.Marshal rejects non-finite floats, so splice the seconds
		// token in as raw text to reach the decoder with any value the
		// wire can express.
		base, err := json.Marshal(doc)
		if err != nil {
			t.Skip() // unencodable strings
		}
		wire := strings.TrimSuffix(string(base), "}") +
			fmt.Sprintf(`,"seconds":%g}`, seconds)
		if math.IsNaN(seconds) || math.IsInf(seconds, 0) {
			wire = strings.TrimSuffix(string(base), "}") + `,"seconds":1}`
		}

		var r Result
		if err := json.Unmarshal([]byte(wire), &r); err != nil {
			// Rejection is a valid outcome (e.g. %g rendered a value the
			// JSON number grammar reads as out of float64 range).
			return
		}
		if r.Duration < 0 {
			t.Fatalf("decoded negative Duration %d from seconds %g", r.Duration, seconds)
		}

		first, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		var r2 Result
		if err := json.Unmarshal(first, &r2); err != nil {
			t.Fatalf("decoding own marshal output: %v\n%s", err, first)
		}
		second, err := json.Marshal(r2)
		if err != nil {
			t.Fatalf("second marshal: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("marshal not byte-stable:\n  first  %s\n  second %s", first, second)
		}
		if r2.Duration != r.Duration {
			t.Fatalf("Duration drifted on round-trip: %d → %d", r.Duration, r2.Duration)
		}
	})
}
