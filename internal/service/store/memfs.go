package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"montblanc/internal/xrand"
)

// errNotExist is MemFS's "no such file". OS maps the real thing.
var errNotExist = errors.New("file does not exist")

// MemFS is an in-memory FS that models the durability semantics the
// store's crash-safety argument depends on:
//
//   - bytes written to a file are volatile until File.Sync returns;
//     Crash truncates every file to its synced prefix plus an
//     arbitrary (seeded) amount of the unsynced tail — a torn write;
//   - a Rename is volatile until SyncDir returns; Crash rolls each
//     unsynced rename back or forward by a seeded coin flip, the two
//     outcomes POSIX allows after losing the directory update.
//
// It exists for the chaos property suite, but is exported (with
// ChaosFS) so future sharding/replication work can reuse the model.
type MemFS struct {
	mu    sync.Mutex
	clock int64 // logical mtime counter: deterministic ordering
	dirs  map[string]bool
	files map[string]*memFile
	// pending are renames not yet made durable by SyncDir, oldest
	// first. Each remembers what the destination held so a rollback
	// can restore it.
	pending []pendingRename
}

type memFile struct {
	data      []byte
	syncedLen int // prefix that survives a crash
	mod       int64
}

type pendingRename struct {
	dir      string
	oldPath  string
	newPath  string
	src      *memFile // the file that moved
	prevDst  *memFile // what newPath held before, nil if nothing
	hadPrev  bool
	srcWasAt string // oldPath, for rollback
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{dirs: map[string]bool{".": true, "/": true}, files: map[string]*memFile{}}
}

func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := filepath.Clean(dir)
	for d != "." && d != "/" {
		m.dirs[d] = true
		d = filepath.Dir(d)
	}
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]EntryInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := filepath.Clean(dir)
	if !m.dirs[d] {
		return nil, fmt.Errorf("readdir %s: %w", dir, errNotExist)
	}
	var out []EntryInfo
	for p, f := range m.files {
		if filepath.Dir(p) == d {
			out = append(out, EntryInfo{Name: filepath.Base(p), Size: int64(len(f.data)), ModUnixNano: f.mod})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (m *MemFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[filepath.Clean(path)]
	if !ok {
		return nil, fmt.Errorf("read %s: %w", path, errNotExist)
	}
	return append([]byte(nil), f.data...), nil
}

func (m *MemFS) Create(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := filepath.Clean(path)
	if !m.dirs[filepath.Dir(p)] {
		return nil, fmt.Errorf("create %s: parent %w", path, errNotExist)
	}
	m.clock++
	f := &memFile{mod: m.clock}
	m.files[p] = f
	return &memHandle{fs: m, f: f}, nil
}

func (m *MemFS) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	op, np := filepath.Clean(oldPath), filepath.Clean(newPath)
	src, ok := m.files[op]
	if !ok {
		return fmt.Errorf("rename %s: %w", oldPath, errNotExist)
	}
	prev, hadPrev := m.files[np]
	m.pending = append(m.pending, pendingRename{
		dir: filepath.Dir(np), oldPath: op, newPath: np,
		src: src, prevDst: prev, hadPrev: hadPrev, srcWasAt: op,
	})
	delete(m.files, op)
	m.clock++
	src.mod = m.clock
	m.files[np] = src
	return nil
}

func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := filepath.Clean(path)
	if _, ok := m.files[p]; !ok {
		return fmt.Errorf("remove %s: %w", path, errNotExist)
	}
	delete(m.files, p)
	return nil
}

func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := filepath.Clean(dir)
	kept := m.pending[:0]
	for _, pr := range m.pending {
		if pr.dir != d {
			kept = append(kept, pr)
		}
	}
	m.pending = kept
	return nil
}

func (m *MemFS) IsNotExist(err error) bool { return errors.Is(err, errNotExist) }

// Crash simulates losing power: every file truncates to its synced
// prefix plus a seeded share of the unsynced tail, and every rename
// not pinned by SyncDir rolls back or forward by a seeded coin —
// newest first, so cascades (A→B then B→C) unwind consistently. The
// MemFS remains usable afterwards, as a disk does after reboot.
func (m *MemFS) Crash(r *xrand.Rand) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := len(m.pending) - 1; i >= 0; i-- {
		pr := m.pending[i]
		if r.Intn(2) == 0 {
			continue // the rename made it to disk after all
		}
		// Roll back: the directory update was lost.
		if cur, ok := m.files[pr.newPath]; ok && cur == pr.src {
			delete(m.files, pr.newPath)
			if pr.hadPrev {
				m.files[pr.newPath] = pr.prevDst
			}
			m.files[pr.srcWasAt] = pr.src
		}
	}
	m.pending = nil
	for _, f := range m.files {
		unsynced := len(f.data) - f.syncedLen
		if unsynced > 0 {
			f.data = f.data[:f.syncedLen+r.Intn(unsynced+1)]
		}
		f.syncedLen = len(f.data) // whatever survived is now on disk
	}
}

// memHandle is an open MemFS file.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	closed bool
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, errors.New("write to closed file")
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return errors.New("sync of closed file")
	}
	h.f.syncedLen = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
