package store

import (
	"bytes"
	"fmt"
	"testing"

	"montblanc/internal/xrand"
)

// The chaos property: whatever single fault is injected at whatever
// operation index — torn write, failed rename/fsync/open, silent read
// corruption — and wherever the process then crashes, a reopened store
// serves every key either byte-identical to some successfully-Put
// version or not at all. Corrupt bytes are never returned, and the
// store always recovers to a writable state.

// chaosWorld tracks ground truth for one schedule.
type chaosWorld struct {
	keys      []string
	committed map[string][][]byte // successful Puts, oldest first
	latest    map[string][]byte   // last successful Put
}

func newChaosWorld() *chaosWorld {
	w := &chaosWorld{committed: map[string][][]byte{}, latest: map[string][]byte{}}
	for i := 0; i < 6; i++ {
		w.keys = append(w.keys, fmt.Sprintf("k%d", i))
	}
	return w
}

// payload builds a distinguishable binary payload: version-tagged,
// random length, random bytes (so torn prefixes of one version never
// equal another version).
func (w *chaosWorld) payload(r *xrand.Rand, key string, ver int) []byte {
	n := 16 + r.Intn(200)
	b := make([]byte, 0, n+32)
	b = append(b, []byte(fmt.Sprintf("%s v%d |", key, ver))...)
	for len(b) < n {
		v := r.Uint64()
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return b
}

// recordPut runs one Put and records it as committed iff it succeeded.
func (w *chaosWorld) recordPut(st *Store, key string, p []byte) {
	if err := st.Put(key, p); err == nil {
		w.committed[key] = append(w.committed[key], p)
		w.latest[key] = p
	}
}

// checkGet asserts the core property for one lookup: a hit must be
// byte-identical to some committed version of the key.
func (w *chaosWorld) checkGet(t *testing.T, st *Store, key, when string) {
	t.Helper()
	got, ok := st.Get(key)
	if !ok {
		return
	}
	for _, want := range w.committed[key] {
		if bytes.Equal(got, want) {
			return
		}
	}
	t.Fatalf("%s: Get(%s) returned %d bytes matching no committed version (%d committed): %q",
		when, key, len(got), len(w.committed[key]), got)
}

// runChaosSchedule executes one seeded fault schedule end to end.
func runChaosSchedule(t *testing.T, seed uint64, faultAt int, kind Fault, crashAfter bool) {
	t.Helper()
	r := xrand.New(seed)
	mem := NewMemFS()
	const dir = "cache"
	w := newChaosWorld()
	ver := 0

	// Phase A: a healthy store commits baseline entries.
	st, err := Open(mem, dir, 0)
	if err != nil {
		t.Fatalf("seed %d: clean Open: %v", seed, err)
	}
	for _, k := range w.keys[:3] {
		ver++
		w.recordPut(st, k, w.payload(r, k, ver))
	}

	// Phase B: the same directory under a chaos filesystem.
	chaos := NewChaos(mem, r, faultAt, kind, crashAfter)
	if st2, err := Open(chaos, dir, 0); err == nil {
		for i := 0; i < 16 && !chaos.Crashed(); i++ {
			k := w.keys[r.Intn(len(w.keys))]
			if r.Intn(2) == 0 {
				ver++
				w.recordPut(st2, k, w.payload(r, k, ver))
			} else {
				w.checkGet(t, st2, k, fmt.Sprintf("seed %d mid-workload", seed))
			}
		}
	}

	// The power goes out: unsynced bytes tear, unsynced renames
	// resolve either way.
	mem.Crash(r)

	// Phase C: restart. The store must open, serve only committed
	// bytes, and accept new writes.
	st3, err := Open(mem, dir, 0)
	if err != nil {
		t.Fatalf("seed %d: post-crash Open: %v", seed, err)
	}
	for _, k := range w.keys {
		w.checkGet(t, st3, k, fmt.Sprintf("seed %d post-crash", seed))
	}
	// A schedule whose fault never fired had every Put fully synced;
	// restart must then recover the latest version of every key
	// exactly — the durability direction of the contract.
	if !chaos.Fired() {
		for k, want := range w.latest {
			got, ok := st3.Get(k)
			if !ok {
				t.Fatalf("seed %d: fault never fired but %s missing after restart", seed, k)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d: fault never fired but %s differs after restart", seed, k)
			}
		}
	}
	// Recovery: every key is writable and readable again.
	for _, k := range w.keys {
		ver++
		p := w.payload(r, k, ver)
		if err := st3.Put(k, p); err != nil {
			t.Fatalf("seed %d: post-crash Put(%s): %v", seed, k, err)
		}
		got, ok := st3.Get(k)
		if !ok || !bytes.Equal(got, p) {
			t.Fatalf("seed %d: post-crash rewrite of %s not readable back", seed, k)
		}
	}
	// Bookkeeping stays coherent: gauges non-negative, quarantine
	// count matches the *.corrupt files actually on disk.
	stats := st3.Stats()
	if stats.BytesOnDisk < 0 || stats.EntriesOnDisk < 0 {
		t.Fatalf("seed %d: negative gauges: %+v", seed, stats)
	}
}

// TestChaosSeededSchedules runs ≥ 1000 randomized fault schedules:
// seeded kind, operation index and crash behavior per schedule.
func TestChaosSeededSchedules(t *testing.T) {
	n := 1200
	if testing.Short() {
		n = 150
	}
	for seed := 0; seed < n; seed++ {
		plan := xrand.New(uint64(seed) ^ 0x9e3779b97f4a7c15)
		faultAt := plan.Intn(70)
		kind := Fault(plan.Intn(int(numFaults)))
		crashAfter := plan.Intn(2) == 1
		runChaosSchedule(t, uint64(seed), faultAt, kind, crashAfter)
	}
}

// TestChaosEveryOpIndex is the exhaustive sweep of the claim "at every
// operation index": each fault kind, crashing and not, at every index
// a fixed-shape workload can reach.
func TestChaosEveryOpIndex(t *testing.T) {
	for kind := Fault(0); kind < numFaults; kind++ {
		for _, crashAfter := range []bool{false, true} {
			for faultAt := 0; faultAt < 48; faultAt++ {
				runChaosSchedule(t, 7, faultAt, kind, crashAfter)
			}
		}
	}
}

// TestChaosCorruptReadNeverServed pins the bit-rot case specifically:
// a store whose every read is clean except one flipped bit must
// quarantine, not serve, and the entry must be recomputable.
func TestChaosCorruptReadNeverServed(t *testing.T) {
	r := xrand.New(11)
	mem := NewMemFS()
	st, err := Open(mem, "cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("payload that must never be served corrupted")
	if err := st.Put("deadbeef", want); err != nil {
		t.Fatal(err)
	}
	// Reopen through chaos with the corrupt-read fault aimed at the
	// Get's ReadFile: Open costs op 0 (MkdirAll) and op 1 (ReadDir),
	// so the read is op 2.
	chaos := NewChaos(mem, r, 2, FaultCorruptRead, false)
	st2, err := Open(chaos, "cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := st2.Get("deadbeef"); ok {
		t.Fatalf("corrupt read served: %q", got)
	}
	if !chaos.Fired() {
		t.Fatal("corrupt-read fault never fired; test aims at the wrong op index")
	}
	s := st2.Stats()
	if s.QuarantinedTotal != 1 {
		t.Fatalf("quarantined_total = %d, want 1", s.QuarantinedTotal)
	}
	// The quarantined key is free for recomputation.
	if err := st2.Put("deadbeef", want); err != nil {
		t.Fatal(err)
	}
	got, ok := st2.Get("deadbeef")
	if !ok || !bytes.Equal(got, want) {
		t.Fatal("recomputed entry not served after quarantine")
	}
}
