package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"montblanc/internal/xrand"
)

func TestPutGetRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		fs   FS
		dir  string
	}{
		{"mem", NewMemFS(), "cache"},
		{"os", OS{}, filepath.Join(t.TempDir(), "cache")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, err := Open(tc.fs, tc.dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := []byte("hello\x00binary\npayload")
			if err := st.Put("abc123", want); err != nil {
				t.Fatal(err)
			}
			got, ok := st.Get("abc123")
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("Get = %q, %v; want %q, true", got, ok, want)
			}
			if _, ok := st.Get("missing0"); ok {
				t.Fatal("Get of absent key reported a hit")
			}
			s := st.Stats()
			if s.DiskHits != 1 || s.DiskMisses != 1 || s.EntriesOnDisk != 1 {
				t.Fatalf("stats = %+v", s)
			}
			if s.BytesOnDisk <= int64(len(want)) {
				t.Fatalf("bytes_on_disk %d should exceed the raw payload (header rides along)", s.BytesOnDisk)
			}
		})
	}
}

// TestWarmRestart is the headline behavior: a new Store over the same
// directory serves the previous process's entries byte-identical.
func TestWarmRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	st1, err := Open(OS{}, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("survives the process")
	if err := st1.Put("deadbeef", want); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(OS{}, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := st2.Get("deadbeef")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("after restart Get = %q, %v; want %q, true", got, ok, want)
	}
	s := st2.Stats()
	if s.EntriesOnDisk != 1 || s.DiskHits != 1 {
		t.Fatalf("stats after restart = %+v", s)
	}
}

// TestCorruptEntryQuarantined flips one byte on disk and asserts the
// entry is detected, quarantined as *.corrupt, and recomputable.
func TestCorruptEntryQuarantined(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	st, err := Open(OS{}, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("precious result bytes")
	if err := st.Put("cafe01", want); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "cafe01"+resSuffix)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-3] ^= 0x40 // rot a payload byte
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Get("cafe01"); ok {
		t.Fatalf("corrupt entry served: %q", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "cafe01"+corruptSufix)); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	s := st.Stats()
	if s.QuarantinedTotal != 1 || s.EntriesOnDisk != 0 {
		t.Fatalf("stats after quarantine = %+v", s)
	}
	// Recompute path: the key is free again.
	if err := st.Put("cafe01", want); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Get("cafe01"); !ok || !bytes.Equal(got, want) {
		t.Fatal("recomputed entry not served")
	}
	// A restarted store counts the pre-existing quarantine file.
	st2, err := Open(OS{}, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s := st2.Stats(); s.QuarantinedTotal != 1 {
		t.Fatalf("restart quarantined_total = %d, want 1", s.QuarantinedTotal)
	}
}

// TestTruncatedEntryQuarantined covers the torn-write shape a crash
// leaves behind when the rename happened but the data didn't all make
// it (only possible without the fsync barrier — the store must still
// detect it).
func TestTruncatedEntryQuarantined(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	st, err := Open(OS{}, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("feed42", []byte("a payload long enough to truncate meaningfully")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "feed42"+resSuffix)
	blob, _ := os.ReadFile(path)
	if err := os.WriteFile(path, blob[:len(blob)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("feed42"); ok {
		t.Fatal("truncated entry served")
	}
	if st.Stats().QuarantinedTotal != 1 {
		t.Fatal("truncated entry not quarantined")
	}
}

func TestOpenSweepsTempFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "abc.17"+tmpSuffix)
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(OS{}, dir, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover temp file not swept: %v", err)
	}
}

func TestDecodeEntryRejections(t *testing.T) {
	good := encodeEntry([]byte("payload"))
	cases := map[string][]byte{
		"empty":            nil,
		"bad magic":        []byte("montblanc-store v9\nsha256 00\nbytes 2\n\nhi"),
		"no header end":    []byte(headerMagic + "\nsha256 00"),
		"short blob":       good[:len(good)-2],
		"extra bytes":      append(append([]byte{}, good...), 'x'),
		"flipped payload":  flip(good, len(good)-1),
		"flipped checksum": flip(good, len(headerMagic)+10),
		"garbage":          []byte("not an entry at all"),
	}
	for name, blob := range cases {
		if _, err := decodeEntry(blob); err == nil {
			t.Errorf("%s: decodeEntry accepted", name)
		}
	}
	if p, err := decodeEntry(good); err != nil || string(p) != "payload" {
		t.Fatalf("good entry rejected: %v", err)
	}
	if p, err := decodeEntry(encodeEntry(nil)); err != nil || len(p) != 0 {
		t.Fatalf("empty payload should round-trip: %v", err)
	}
}

func flip(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 1
	return c
}

func TestValidKey(t *testing.T) {
	for _, bad := range []string{"", ".", "..", "a/b", "../x", "a b", "k\x00", "a.res", string(make([]byte, maxKeyLen+1))} {
		if err := validKey(bad); err == nil {
			t.Errorf("validKey(%q) accepted", bad)
		}
	}
	for _, good := range []string{"a", "deadbeef", "ABC_-123"} {
		if err := validKey(good); err != nil {
			t.Errorf("validKey(%q) rejected: %v", good, err)
		}
	}
}

// TestPruneOldestFirst bounds the disk tier: pushing past maxBytes
// evicts oldest entries first and never the one just written.
func TestPruneOldestFirst(t *testing.T) {
	mem := NewMemFS()
	one := bytes.Repeat([]byte("x"), 100)
	entrySize := int64(len(encodeEntry(one)))
	st, err := Open(mem, "cache", 2*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"old0", "mid1", "new2"} {
		if err := st.Put(k, one); err != nil {
			t.Fatal(err)
		}
	}
	s := st.Stats()
	if s.EntriesOnDisk != 2 || s.BytesOnDisk != 2*entrySize {
		t.Fatalf("after prune stats = %+v, want 2 entries / %d bytes", s, 2*entrySize)
	}
	if _, ok := st.Get("old0"); ok {
		t.Fatal("oldest entry survived pruning")
	}
	if _, ok := st.Get("new2"); !ok {
		t.Fatal("just-written entry was pruned")
	}
}

// TestOverwriteAccounting re-puts a key with a different size and
// checks the byte gauge does not double-count.
func TestOverwriteAccounting(t *testing.T) {
	mem := NewMemFS()
	st, err := Open(mem, "cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("k", []byte("short")); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("y"), 300)
	if err := st.Put("k", big); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.EntriesOnDisk != 1 || s.BytesOnDisk != int64(len(encodeEntry(big))) {
		t.Fatalf("overwrite stats = %+v", s)
	}
	got, ok := st.Get("k")
	if !ok || !bytes.Equal(got, big) {
		t.Fatal("overwrite did not replace the payload")
	}
}

// TestConcurrentPutGet hammers the store from many goroutines under
// -race: the mutex discipline, not throughput, is the subject.
func TestConcurrentPutGet(t *testing.T) {
	mem := NewMemFS()
	st, err := Open(mem, "cache", 0)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := xrand.New(uint64(g))
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("key%d", r.Intn(16))
				if r.Intn(2) == 0 {
					p := []byte(fmt.Sprintf("%s payload", k))
					if err := st.Put(k, p); err != nil {
						t.Errorf("Put(%s): %v", k, err)
						return
					}
				} else if got, ok := st.Get(k); ok {
					if want := fmt.Sprintf("%s payload", k); string(got) != want {
						t.Errorf("Get(%s) = %q, want %q", k, got, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if s := st.Stats(); s.EntriesOnDisk > 16 || s.BytesOnDisk < 0 {
		t.Fatalf("stats after storm = %+v", s)
	}
}
