package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// On-disk layout (documented in SERVICE.md, stable for the sharding
// work to build against):
//
//	<dir>/<key>.res       one complete entry (header + payload)
//	<dir>/<key>.<n>.tmp   an in-progress write; swept at Open
//	<dir>/<key>.corrupt   a quarantined entry, kept for inspection
//
// An entry file is a four-line text header followed by the raw
// payload:
//
//	montblanc-store v1\n
//	sha256 <64 hex digits of the payload's SHA-256>\n
//	bytes <decimal payload length>\n
//	\n
//	<payload>
//
// The header is versioned so the format can evolve; anything that is
// not byte-for-byte a well-formed v1 entry whose length and checksum
// both match is quarantined on read, never returned.
const (
	headerMagic  = "montblanc-store v1"
	resSuffix    = ".res"
	tmpSuffix    = ".tmp"
	corruptSufix = ".corrupt"
	// maxKeyLen bounds key length; cache keys are 64 hex chars, so
	// this is generous without letting a caller build silly paths.
	maxKeyLen = 128
)

// Stats is the store's observability surface, rendered into the
// service's /metrics "store" section. Counters are monotonic over the
// process lifetime; the two *_on_disk fields are gauges.
// QuarantinedTotal starts at the number of *.corrupt files found at
// Open, so operators see rot that predates this process.
type Stats struct {
	DiskHits         uint64 `json:"disk_hits"`
	DiskMisses       uint64 `json:"disk_misses"`
	DiskErrors       uint64 `json:"disk_errors"`
	QuarantinedTotal uint64 `json:"quarantined_total"`
	BytesOnDisk      int64  `json:"bytes_on_disk"`
	EntriesOnDisk    int64  `json:"entries_on_disk"`
}

// Store is a disk-backed content-addressed blob store: one file per
// key, written with temp-file + fsync + atomic rename, verified by
// checksum on every read. It assumes one process owns the directory
// (the service holds it for the process lifetime); the sharding
// follow-on will revisit that.
type Store struct {
	fs  FS
	dir string
	// maxBytes bounds payload+header bytes on disk (<= 0 unlimited);
	// oldest entries are pruned after a Put pushes past it.
	maxBytes int64

	mu    sync.Mutex
	sizes map[string]int64 // key -> size of its .res file
	bytes int64
	seq   uint64 // temp-name uniquifier

	hits, misses, errs, quarantined uint64
}

// Open readies dir as a store: creates it, sweeps temp files left by
// a crashed writer, and indexes the surviving entries. Corrupt entries
// are NOT verified here — verification happens on read, where the
// checksum is needed anyway and a torn entry can still be recomputed.
func Open(fsys FS, dir string, maxBytes int64) (*Store, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", dir, err)
	}
	s := &Store{fs: fsys, dir: dir, maxBytes: maxBytes, sizes: make(map[string]int64)}
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name, tmpSuffix):
			// A writer died mid-Put. The entry it was replacing (if
			// any) is intact under its final name; the leftover is
			// noise.
			if err := fsys.Remove(filepath.Join(dir, e.Name)); err != nil {
				s.errs++
			}
		case strings.HasSuffix(e.Name, corruptSufix):
			s.quarantined++
		case strings.HasSuffix(e.Name, resSuffix):
			key := strings.TrimSuffix(e.Name, resSuffix)
			s.sizes[key] = e.Size
			s.bytes += e.Size
		}
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// validKey rejects keys that could escape the directory or collide
// with the store's own suffixes. Cache keys are lowercase hex, but the
// store accepts anything filename-shaped.
func validKey(key string) error {
	if key == "" || len(key) > maxKeyLen {
		return fmt.Errorf("store: invalid key length %d", len(key))
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return fmt.Errorf("store: invalid key byte %q at %d", c, i)
		}
	}
	return nil
}

// Get returns the payload stored under key, verifying the header and
// checksum. A torn, truncated or bit-rotted entry is quarantined —
// renamed *.corrupt for inspection — and reported as a miss; corrupt
// bytes are never returned.
func (s *Store) Get(key string) ([]byte, bool) {
	if validKey(key) != nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.dir, key+resSuffix)
	blob, err := s.fs.ReadFile(path)
	if err != nil {
		s.misses++
		if !s.fs.IsNotExist(err) {
			s.errs++
		}
		return nil, false
	}
	payload, err := decodeEntry(blob)
	if err != nil {
		s.quarantineLocked(key, int64(len(blob)))
		s.misses++
		return nil, false
	}
	s.hits++
	return payload, true
}

// quarantineLocked moves key's entry aside as *.corrupt (falling back
// to removal if even the rename fails) and drops it from the index.
// Callers hold s.mu.
func (s *Store) quarantineLocked(key string, size int64) {
	path := filepath.Join(s.dir, key+resSuffix)
	if err := s.fs.Rename(path, filepath.Join(s.dir, key+corruptSufix)); err != nil {
		if rerr := s.fs.Remove(path); rerr != nil {
			// The entry is still there; the next read will detect it
			// again. Count the failure and move on.
			s.errs++
			return
		}
	}
	s.quarantined++
	if old, ok := s.sizes[key]; ok {
		s.bytes -= old
		delete(s.sizes, key)
	} else {
		_ = size // entry was on disk but not indexed (another writer); nothing to adjust
	}
	// Best-effort: make the quarantine durable so the corrupt entry
	// cannot resurrect under its serving name after a crash.
	if err := s.fs.SyncDir(s.dir); err != nil {
		s.errs++
	}
}

// Put stores payload under key with the crash-safe protocol: write a
// temp file, fsync it, atomically rename it over the final name, then
// fsync the directory. A failure before the rename leaves any previous
// entry untouched; a crash between rename and directory fsync can at
// worst forget the new entry, which reads as a miss.
func (s *Store) Put(key string, payload []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	tmp := filepath.Join(s.dir, key+"."+strconv.FormatUint(s.seq, 10)+tmpSuffix)
	blob := encodeEntry(payload)

	f, err := s.fs.Create(tmp)
	if err != nil {
		s.errs++
		return fmt.Errorf("store: creating %s: %w", tmp, err)
	}
	_, werr := f.Write(blob)
	if werr == nil {
		werr = f.Sync() // the entry must be durable before it becomes visible
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = s.fs.Rename(tmp, filepath.Join(s.dir, key+resSuffix))
	}
	if werr != nil {
		_ = s.fs.Remove(tmp) // best-effort; Open sweeps stragglers
		s.errs++
		return fmt.Errorf("store: writing %s: %w", key, werr)
	}
	if old, ok := s.sizes[key]; ok {
		s.bytes -= old
	}
	s.sizes[key] = int64(len(blob))
	s.bytes += int64(len(blob))
	// A lost directory update only forgets the entry (a future miss),
	// so a SyncDir failure degrades durability, not integrity.
	if err := s.fs.SyncDir(s.dir); err != nil {
		s.errs++
	}
	s.pruneLocked(key)
	return nil
}

// pruneLocked evicts oldest-first while over the byte budget, never
// evicting the entry just written. Callers hold s.mu.
func (s *Store) pruneLocked(justWritten string) {
	if s.maxBytes <= 0 || s.bytes <= s.maxBytes {
		return
	}
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		s.errs++
		return
	}
	type victim struct {
		key  string
		size int64
		mod  int64
	}
	var vs []victim
	for _, e := range entries {
		if !strings.HasSuffix(e.Name, resSuffix) {
			continue
		}
		key := strings.TrimSuffix(e.Name, resSuffix)
		if key == justWritten {
			continue
		}
		vs = append(vs, victim{key: key, size: e.Size, mod: e.ModUnixNano})
	}
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].mod != vs[j].mod {
			return vs[i].mod < vs[j].mod
		}
		return vs[i].key < vs[j].key
	})
	for _, v := range vs {
		if s.bytes <= s.maxBytes {
			return
		}
		if err := s.fs.Remove(filepath.Join(s.dir, v.key+resSuffix)); err != nil {
			s.errs++
			return // avoid spinning on an undeletable file
		}
		if old, ok := s.sizes[v.key]; ok {
			s.bytes -= old
			delete(s.sizes, v.key)
		}
	}
}

// Stats returns a snapshot of the store's counters and gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		DiskHits:         s.hits,
		DiskMisses:       s.misses,
		DiskErrors:       s.errs,
		QuarantinedTotal: s.quarantined,
		BytesOnDisk:      s.bytes,
		EntriesOnDisk:    int64(len(s.sizes)),
	}
}

// encodeEntry frames payload with the v1 header.
func encodeEntry(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	var b bytes.Buffer
	b.Grow(len(headerMagic) + 96 + len(payload))
	fmt.Fprintf(&b, "%s\nsha256 %s\nbytes %d\n\n", headerMagic, hex.EncodeToString(sum[:]), len(payload))
	b.Write(payload)
	return b.Bytes()
}

// decodeEntry validates a v1 entry and returns its payload. Any
// deviation — bad magic, malformed header, length mismatch, checksum
// mismatch — is an error; the caller quarantines.
func decodeEntry(blob []byte) ([]byte, error) {
	magic := headerMagic + "\n"
	if len(blob) < len(magic) || string(blob[:len(magic)]) != magic {
		return nil, fmt.Errorf("store: bad magic")
	}
	body := blob[len(magic):]
	end := bytes.Index(body, []byte("\n\n"))
	if end < 0 {
		return nil, fmt.Errorf("store: truncated header")
	}
	lines := strings.Split(string(body[:end]), "\n")
	if len(lines) != 2 {
		return nil, fmt.Errorf("store: header has %d fields, want 2", len(lines))
	}
	sumHex, ok := strings.CutPrefix(lines[0], "sha256 ")
	if !ok {
		return nil, fmt.Errorf("store: missing sha256 field")
	}
	wantSum, err := hex.DecodeString(sumHex)
	if err != nil || len(wantSum) != sha256.Size {
		return nil, fmt.Errorf("store: malformed sha256 field")
	}
	nStr, ok := strings.CutPrefix(lines[1], "bytes ")
	if !ok {
		return nil, fmt.Errorf("store: missing bytes field")
	}
	n, err := strconv.ParseInt(nStr, 10, 64)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("store: malformed bytes field")
	}
	payload := body[end+2:]
	if int64(len(payload)) != n {
		return nil, fmt.Errorf("store: payload is %d bytes, header says %d", len(payload), n)
	}
	got := sha256.Sum256(payload)
	if !bytes.Equal(got[:], wantSum) {
		return nil, fmt.Errorf("store: checksum mismatch")
	}
	return payload, nil
}
