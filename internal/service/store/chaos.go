package store

import (
	"errors"
	"sync"

	"montblanc/internal/xrand"
)

// Fault is the kind of misbehavior a ChaosFS injects at its scheduled
// operation index.
type Fault int

const (
	// FaultErr makes the scheduled operation fail outright without
	// touching the inner FS: a failed open, rename, remove, fsync.
	FaultErr Fault = iota
	// FaultShortWrite makes the scheduled Write persist only a seeded
	// prefix of its buffer before failing: a torn write.
	FaultShortWrite
	// FaultCorruptRead makes the scheduled ReadFile return the real
	// bytes with one seeded bit flipped, and *no error*: silent bit
	// rot, the case checksums exist for.
	FaultCorruptRead
	numFaults
)

// ErrCrashed is returned by every operation after a ChaosFS whose
// schedule says "crash" has fired: the process is dead, nothing more
// reaches the disk. The workload driving the store is expected to stop
// on it, Crash() the underlying MemFS, and reopen.
var ErrCrashed = errors.New("chaos: crashed")

// errInjected is the error carried by non-crash faults.
var errInjected = errors.New("chaos: injected fault")

// ChaosFS wraps an FS and injects exactly one scheduled fault: at
// operation index FaultAt (counting every FS and File call), fault
// Kind fires; if CrashAfter is set every later operation returns
// ErrCrashed. All randomness (short-write lengths, flipped bits) comes
// from the seeded generator, so a failing schedule replays exactly.
type ChaosFS struct {
	inner FS

	mu         sync.Mutex
	r          *xrand.Rand
	faultAt    int
	kind       Fault
	crashAfter bool
	n          int
	fired      bool
	crashed    bool
}

// NewChaos schedules one fault of the given kind at operation index
// faultAt over inner. If faultAt is beyond the workload's operation
// count the fault simply never fires — a valid (fault-free) schedule.
func NewChaos(inner FS, r *xrand.Rand, faultAt int, kind Fault, crashAfter bool) *ChaosFS {
	return &ChaosFS{inner: inner, r: r, faultAt: faultAt, kind: kind, crashAfter: crashAfter}
}

// Fired reports whether the scheduled fault has triggered.
func (c *ChaosFS) Fired() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired
}

// Crashed reports whether the simulated process is dead: the fault
// fired with CrashAfter set, so every operation now fails.
func (c *ChaosFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// op advances the operation counter. It returns ErrCrashed after a
// crash, errInjected on the scheduled index, nil otherwise.
func (c *ChaosFS) op() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	idx := c.n
	c.n++
	if c.fired || idx != c.faultAt {
		return nil
	}
	c.fired = true
	if c.crashAfter {
		c.crashed = true
	}
	return errInjected
}

func (c *ChaosFS) MkdirAll(dir string) error {
	if err := c.op(); err != nil {
		return err
	}
	return c.inner.MkdirAll(dir)
}

func (c *ChaosFS) ReadDir(dir string) ([]EntryInfo, error) {
	if err := c.op(); err != nil {
		return nil, err
	}
	return c.inner.ReadDir(dir)
}

func (c *ChaosFS) ReadFile(path string) ([]byte, error) {
	err := c.op()
	if errors.Is(err, errInjected) && c.kind == FaultCorruptRead {
		data, rerr := c.inner.ReadFile(path)
		if rerr != nil {
			return nil, rerr
		}
		if len(data) > 0 {
			c.mu.Lock()
			i := c.r.Intn(len(data))
			bit := byte(1) << uint(c.r.Intn(8))
			c.mu.Unlock()
			data[i] ^= bit
		}
		return data, nil // bit rot is silent: no error, wrong bytes
	}
	if err != nil {
		return nil, err
	}
	return c.inner.ReadFile(path)
}

func (c *ChaosFS) Create(path string) (File, error) {
	if err := c.op(); err != nil {
		return nil, err
	}
	f, err := c.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &chaosFile{c: c, f: f}, nil
}

func (c *ChaosFS) Rename(oldPath, newPath string) error {
	if err := c.op(); err != nil {
		return err
	}
	return c.inner.Rename(oldPath, newPath)
}

func (c *ChaosFS) Remove(path string) error {
	if err := c.op(); err != nil {
		return err
	}
	return c.inner.Remove(path)
}

func (c *ChaosFS) SyncDir(dir string) error {
	if err := c.op(); err != nil {
		return err
	}
	return c.inner.SyncDir(dir)
}

func (c *ChaosFS) IsNotExist(err error) bool { return c.inner.IsNotExist(err) }

// chaosFile threads File operations through the shared op counter.
type chaosFile struct {
	c *ChaosFS
	f File
}

func (cf *chaosFile) Write(p []byte) (int, error) {
	err := cf.c.op()
	if errors.Is(err, errInjected) && cf.c.kind == FaultShortWrite {
		cf.c.mu.Lock()
		k := cf.c.r.Intn(len(p) + 1)
		cf.c.mu.Unlock()
		n, werr := cf.f.Write(p[:k])
		if werr != nil {
			return n, werr
		}
		return n, errInjected // torn: a prefix reached the file
	}
	if err != nil {
		return 0, err
	}
	return cf.f.Write(p)
}

func (cf *chaosFile) Sync() error {
	if err := cf.c.op(); err != nil {
		return err
	}
	return cf.f.Sync()
}

func (cf *chaosFile) Close() error {
	if err := cf.c.op(); err != nil {
		// The descriptor is gone either way; make sure the inner file
		// is not left open in the MemFS accounting.
		_ = cf.f.Close()
		return err
	}
	return cf.f.Close()
}
