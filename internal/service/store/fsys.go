// Package store implements the disk tier of the service's
// content-addressed result cache: one file per cache key, written with
// the temp-file + rename protocol so a crash at any instruction leaves
// either the old entry, the new entry, or a detectably-incomplete file
// — never silently corrupt data served to a client.
//
// Every byte of I/O goes through the FS seam below. The production
// implementation (OS) is a thin veneer over package os; the test
// implementations (MemFS, ChaosFS) model crashes and inject
// deterministic faults at every operation index, which is how the
// crash-safety claim is proved rather than asserted (see
// chaos_test.go and the persistence section of SERVICE.md).
package store

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the writable half of the seam: sequential writes, an
// explicit durability barrier, and close. Reads go through FS.ReadFile
// — entries are small and read whole, so streaming reads would only
// widen the fault surface.
type File interface {
	io.Writer
	// Sync is the durability barrier: bytes written before a
	// successful Sync survive a crash; bytes after it may be lost or
	// torn arbitrarily.
	Sync() error
	Close() error
}

// EntryInfo describes one directory entry. ModUnixNano orders entries
// for pruning; the in-memory FS assigns a logical counter so tests
// stay deterministic, the OS implementation uses real mtimes.
type EntryInfo struct {
	Name        string
	Size        int64
	ModUnixNano int64
}

// FS is the filesystem seam the store does all I/O through.
type FS interface {
	MkdirAll(dir string) error
	// ReadDir lists dir in ascending Name order.
	ReadDir(dir string) ([]EntryInfo, error)
	ReadFile(path string) ([]byte, error)
	Create(path string) (File, error)
	// Rename atomically replaces newPath with oldPath's file. The
	// atomicity of this call is what the whole crash-safety argument
	// rests on (POSIX rename(2)).
	Rename(oldPath, newPath string) error
	Remove(path string) error
	// SyncDir makes preceding renames and removes in dir durable. A
	// failure here is survivable: the worst a lost directory update
	// can do is forget an entry, which reads as a cache miss.
	SyncDir(dir string) error
	// IsNotExist reports whether err means the file was absent.
	IsNotExist(err error) bool
}

// OS is the production FS: the real filesystem via package os.
type OS struct{}

func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OS) ReadDir(dir string) ([]EntryInfo, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make([]EntryInfo, 0, len(des))
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		info, err := de.Info()
		if err != nil {
			if os.IsNotExist(err) {
				continue // raced with a concurrent remove; it is gone
			}
			return nil, err
		}
		out = append(out, EntryInfo{
			Name:        de.Name(),
			Size:        info.Size(),
			ModUnixNano: info.ModTime().UnixNano(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (OS) Remove(path string) error { return os.Remove(path) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (OS) IsNotExist(err error) bool { return os.IsNotExist(err) }
