package service

import (
	"encoding/json"

	"montblanc/internal/runner"
)

// The durable tier stores each result as its wire-form JSON (the same
// shape `montblanc -json` emits and /v1/run serves), so an entry read
// back after a restart re-encodes byte-identical to the cold run. The
// store itself guarantees integrity (checksummed header, quarantine on
// mismatch); this layer only translates runner.Result <-> bytes.

// diskGet consults the durable tier. A checksum-valid blob that fails
// to decode was written by an incompatible version: it is treated as a
// miss and the recomputed result overwrites it.
func (s *Server) diskGet(key string) (runner.Result, bool) {
	if s.store == nil {
		return runner.Result{}, false
	}
	blob, ok := s.store.Get(key)
	if !ok {
		return runner.Result{}, false
	}
	var res runner.Result
	if err := json.Unmarshal(blob, &res); err != nil {
		s.logf("montblanc serve: stale store entry %s: %v (will recompute)", key, err)
		return runner.Result{}, false
	}
	return res, true
}

// diskPut persists one computed result. Persistence failures are
// logged and counted (store disk_errors), never surfaced to the
// request: the response was already computed and cached in memory —
// a full or failing disk degrades durability, not availability.
func (s *Server) diskPut(key string, res runner.Result) {
	if s.store == nil {
		return
	}
	blob, err := json.Marshal(res)
	if err != nil {
		s.logf("montblanc serve: encoding result %s for the store: %v", key, err)
		return
	}
	if err := s.store.Put(key, blob); err != nil {
		s.logf("montblanc serve: persisting result %s: %v", key, err)
	}
}
