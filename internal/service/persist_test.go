package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"montblanc/internal/experiments"
)

// persistMetrics is the slice of /metrics this file asserts on.
type persistMetrics struct {
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	RunsTotal   uint64  `json:"runs_total"`
	Uptime      float64 `json:"uptime_seconds"`
	Store       *struct {
		DiskHits         uint64 `json:"disk_hits"`
		DiskMisses       uint64 `json:"disk_misses"`
		QuarantinedTotal uint64 `json:"quarantined_total"`
		EntriesOnDisk    int64  `json:"entries_on_disk"`
		BytesOnDisk      int64  `json:"bytes_on_disk"`
	} `json:"store"`
}

// TestWarmRestartServesFromDisk is the tentpole contract end to end in
// process: a second Server over the same -cache-dir (a restart, as far
// as the store is concerned — even a SIGKILLed process leaves exactly
// these files, since every Put is fsynced and renamed before it is
// acknowledged) answers the identical request byte-equal from disk,
// with zero new simulations and cache_hits climbing from request one.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	exp := experiments.Experiment{
		ID:    "toy",
		Title: "a deterministic toy",
		Run: func(w io.Writer, o experiments.Options) error {
			runs.Add(1)
			fmt.Fprintf(w, "quick=%v seed=%d\n", o.Quick, o.Seed)
			return nil
		},
	}
	body := `{"experiments":["toy"],"options":{"quick":true,"seed":9}}`

	s1 := mustNew(t, Config{Match: fakeMatch(exp), CacheDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	resp1, cold := postRun(t, ts1, body)
	ts1.Close()
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold run: status %d: %s", resp1.StatusCode, cold)
	}
	if runs.Load() != 1 {
		t.Fatalf("cold run executed %d simulations, want 1", runs.Load())
	}

	s2 := mustNew(t, Config{Match: fakeMatch(exp), CacheDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp2, warm := postRun(t, ts2, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm run: status %d: %s", resp2.StatusCode, warm)
	}
	if warm != cold {
		t.Errorf("restart response differs from cold run:\ncold: %q\nwarm: %q", cold, warm)
	}
	if runs.Load() != 1 {
		t.Errorf("restart re-ran the simulation (%d total runs)", runs.Load())
	}
	if got := resp2.Header.Get("X-Montblanc-Cache"); got != "hits=1 misses=0" {
		t.Errorf("restart cache header %q, want hits=1 misses=0", got)
	}

	var m persistMetrics
	getJSON(t, ts2, "/metrics", &m)
	if m.RunsTotal != 0 {
		t.Errorf("runs_total = %d after restart, want 0", m.RunsTotal)
	}
	if m.CacheHits != 1 || m.CacheMisses != 0 {
		t.Errorf("cache_hits/misses = %d/%d, want 1/0", m.CacheHits, m.CacheMisses)
	}
	if m.Store == nil {
		t.Fatal("/metrics has no store section despite -cache-dir")
	}
	if m.Store.DiskHits != 1 {
		t.Errorf("store.disk_hits = %d, want 1", m.Store.DiskHits)
	}
	if m.Store.EntriesOnDisk != 1 || m.Store.BytesOnDisk <= 0 {
		t.Errorf("store gauges = %d entries / %d bytes, want 1 / > 0",
			m.Store.EntriesOnDisk, m.Store.BytesOnDisk)
	}

	// The disk hit was promoted into the LRU: a third identical request
	// is a memory hit, so disk_hits must not climb again.
	if resp3, again := postRun(t, ts2, body); resp3.StatusCode != http.StatusOK || again != cold {
		t.Fatalf("third request: status %d, byte-equal %v", resp3.StatusCode, again == cold)
	}
	getJSON(t, ts2, "/metrics", &m)
	if m.Store.DiskHits != 1 {
		t.Errorf("store.disk_hits = %d after promoted hit, want still 1", m.Store.DiskHits)
	}
	if m.CacheHits != 2 {
		t.Errorf("cache_hits = %d, want 2", m.CacheHits)
	}
}

// TestCorruptStoreEntryRecomputed: a bit-rotted on-disk entry is
// quarantined and recomputed, never served. (A recompute is a fresh
// execution, so its measured "seconds" differs — byte identity is the
// replay contract, not the recompute contract; the simulation output
// itself is deterministic.)
func TestCorruptStoreEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	exp := experiments.Experiment{
		ID:    "toy",
		Title: "a deterministic toy",
		Run: func(w io.Writer, o experiments.Options) error {
			runs.Add(1)
			fmt.Fprintln(w, "stable output")
			return nil
		},
	}
	body := `{"experiments":["toy"],"options":{"quick":true,"seed":1}}`

	s1 := mustNew(t, Config{Match: fakeMatch(exp), CacheDir: dir})
	ts1 := httptest.NewServer(s1.Handler())
	postRun(t, ts1, body)
	ts1.Close()

	// Rot one payload byte of the single stored entry.
	matches, err := filepath.Glob(filepath.Join(dir, "*.res"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("stored entries = %v (err %v), want exactly one", matches, err)
	}
	blob, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0x40
	if err := os.WriteFile(matches[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustNew(t, Config{Match: fakeMatch(exp), CacheDir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, warm := postRun(t, ts2, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, warm)
	}
	if !strings.Contains(warm, `"output": "stable output\n"`) {
		t.Errorf("recomputed response lacks the deterministic output: %q", warm)
	}
	if runs.Load() != 2 {
		t.Errorf("runs = %d, want 2 (corrupt entry must be recomputed, not served)", runs.Load())
	}
	var m persistMetrics
	getJSON(t, ts2, "/metrics", &m)
	if m.Store == nil || m.Store.QuarantinedTotal != 1 {
		t.Fatalf("store section %+v, want quarantined_total = 1", m.Store)
	}
	if corrupt, _ := filepath.Glob(filepath.Join(dir, "*.corrupt")); len(corrupt) != 1 {
		t.Errorf("quarantine files on disk = %v, want exactly one *.corrupt", corrupt)
	}
}

// TestMetricsShape: uptime_seconds is always present; the store
// section appears only with persistence enabled.
func TestMetricsShape(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var m persistMetrics
	getJSON(t, ts, "/metrics", &m)
	if m.Store != nil {
		t.Error("store section present without -cache-dir")
	}
	if m.Uptime < 0 {
		t.Errorf("uptime_seconds = %v, want >= 0", m.Uptime)
	}
	// Raw-body check: the field really is on the wire even at zero.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), `"uptime_seconds"`) {
		t.Errorf("/metrics body lacks uptime_seconds: %s", raw)
	}
}

// TestNewRejectsBadConfig: a negative cache capacity is a loud
// configuration error, not a silent 1024.
func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{CacheSize: -1}); err == nil {
		t.Error("CacheSize -1 accepted")
	}
	if _, err := New(Config{CacheDir: string([]byte{0})}); err == nil {
		t.Error("unusable CacheDir accepted")
	}
}
