package service

import (
	"fmt"
	"sync"
	"testing"

	"montblanc/internal/runner"
	"montblanc/internal/xrand"
)

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.add("a", runner.Result{ID: "a"})
	c.add("b", runner.Result{ID: "b"})
	// Touch "a" so "b" is the eviction candidate.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.add("c", runner.Result{ID: "c"})
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction despite being least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite being recently used")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing right after add")
	}
	entries, evictions := c.stats()
	if entries != 2 || evictions != 1 {
		t.Errorf("stats = (%d entries, %d evictions), want (2, 1)", entries, evictions)
	}
}

// A content address has one value: re-adding a key must keep the first
// stored result, not overwrite it.
func TestResultCacheFirstValueWins(t *testing.T) {
	c := newResultCache(4)
	c.add("k", runner.Result{ID: "k", Output: "first"})
	c.add("k", runner.Result{ID: "k", Output: "second"})
	res, ok := c.get("k")
	if !ok || res.Output != "first" {
		t.Errorf("got %q, want the first stored value", res.Output)
	}
	if entries, _ := c.stats(); entries != 1 {
		t.Errorf("duplicate add grew the cache to %d entries", entries)
	}
}

func TestResultCacheBoundHolds(t *testing.T) {
	c := newResultCache(8)
	for i := 0; i < 100; i++ {
		c.add(fmt.Sprintf("k%d", i), runner.Result{})
	}
	entries, evictions := c.stats()
	if entries != 8 {
		t.Errorf("cache holds %d entries, bound is 8", entries)
	}
	if evictions != 92 {
		t.Errorf("evictions = %d, want 92", evictions)
	}
}

// The capacity-1 degenerate case of first-value-wins: a re-add of the
// sole resident key must refresh recency without evicting it or
// replacing its value — the regression would be treating a duplicate
// add as insert-then-evict, which at capacity 1 evicts the key itself.
func TestResultCacheFirstValueWinsAtCapacityOne(t *testing.T) {
	c := newResultCache(1)
	c.add("k", runner.Result{ID: "k", Output: "first"})
	c.add("k", runner.Result{ID: "k", Output: "second"})
	res, ok := c.get("k")
	if !ok {
		t.Fatal("re-add at capacity 1 evicted the key itself")
	}
	if res.Output != "first" {
		t.Errorf("got %q, want the first stored value", res.Output)
	}
	entries, evictions := c.stats()
	if entries != 1 || evictions != 0 {
		t.Errorf("stats = (%d entries, %d evictions), want (1, 0)", entries, evictions)
	}
	// A genuinely new key does evict at capacity 1.
	c.add("j", runner.Result{ID: "j"})
	if _, ok := c.get("k"); ok {
		t.Error("k survived insertion of j at capacity 1")
	}
	if entries, evictions = c.stats(); entries != 1 || evictions != 1 {
		t.Errorf("stats after eviction = (%d, %d), want (1, 1)", entries, evictions)
	}
}

// modelLRU is an obviously-correct reference: an ordered slice, front =
// most recently used, same semantics as resultCache (get refreshes, add
// of an existing key refreshes but keeps the first value).
type modelLRU struct {
	max       int
	order     []string // front first
	values    map[string]string
	evictions uint64
}

func (m *modelLRU) touch(key string) {
	for i, k := range m.order {
		if k == key {
			m.order = append([]string{key}, append(m.order[:i:i], m.order[i+1:]...)...)
			return
		}
	}
}

func (m *modelLRU) get(key string) (string, bool) {
	v, ok := m.values[key]
	if ok {
		m.touch(key)
	}
	return v, ok
}

func (m *modelLRU) add(key, val string) {
	if _, ok := m.values[key]; ok {
		m.touch(key)
		return
	}
	m.order = append([]string{key}, m.order...)
	m.values[key] = val
	for len(m.order) > m.max {
		last := m.order[len(m.order)-1]
		m.order = m.order[:len(m.order)-1]
		delete(m.values, last)
		m.evictions++
	}
}

// TestResultCacheMatchesModel drives a long seeded op sequence against
// the cache and the reference in lockstep: every hit/miss, the final
// entry count and the exact eviction count must agree.
func TestResultCacheMatchesModel(t *testing.T) {
	r := xrand.New(99)
	c := newResultCache(7)
	m := &modelLRU{max: 7, values: map[string]string{}}
	for op := 0; op < 10_000; op++ {
		key := fmt.Sprintf("k%d", r.Intn(32))
		if r.Intn(2) == 0 {
			val := fmt.Sprintf("v%d", op)
			c.add(key, runner.Result{ID: key, Output: val})
			m.add(key, val)
			continue
		}
		res, ok := c.get(key)
		wantVal, wantOK := m.get(key)
		if ok != wantOK {
			t.Fatalf("op %d: get(%s) = %v, model says %v", op, key, ok, wantOK)
		}
		if ok && res.Output != wantVal {
			t.Fatalf("op %d: get(%s) = %q, model says %q", op, key, res.Output, wantVal)
		}
	}
	entries, evictions := c.stats()
	if entries != len(m.values) {
		t.Errorf("entries = %d, model has %d", entries, len(m.values))
	}
	if evictions != m.evictions {
		t.Errorf("evictions = %d, model counted %d", evictions, m.evictions)
	}
}

// TestResultCacheConcurrentStorm hammers the cache from many
// goroutines under -race: the LRU bound must hold at every observation
// point, and afterwards the books must balance — every key ever
// inserted is either resident or was evicted exactly once.
func TestResultCacheConcurrentStorm(t *testing.T) {
	const (
		workers  = 8
		opsEach  = 4000
		keySpace = 64
		capacity = 8
	)
	c := newResultCache(capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := xrand.New(seed)
			for op := 0; op < opsEach; op++ {
				key := fmt.Sprintf("k%d", r.Intn(keySpace))
				switch r.Intn(3) {
				case 0:
					c.add(key, runner.Result{ID: key})
				case 1:
					c.get(key)
				default:
					if entries, _ := c.stats(); entries > capacity {
						t.Errorf("bound exceeded mid-storm: %d > %d", entries, capacity)
						return
					}
				}
			}
		}(uint64(w) + 1)
	}
	wg.Wait()
	entries, _ := c.stats()
	if entries > capacity {
		t.Errorf("bound exceeded after storm: %d > %d", entries, capacity)
	}
	// Deterministic epilogue: from the storm's end state, inserting
	// keySpace fresh keys must leave exactly `capacity` resident and
	// grow the eviction counter by exactly the overflow — the counter
	// tracks real evictions, not a drifted shadow.
	residentBefore, before := c.stats()
	for i := 0; i < keySpace; i++ {
		c.add(fmt.Sprintf("fresh%d", i), runner.Result{})
	}
	entries, after := c.stats()
	if entries != capacity {
		t.Errorf("entries = %d after refill, want %d", entries, capacity)
	}
	wantNew := uint64(residentBefore + keySpace - capacity)
	if after-before != wantNew {
		t.Errorf("refill evicted %d entries, want %d (resident %d + %d fresh - capacity %d)",
			after-before, wantNew, residentBefore, keySpace, capacity)
	}
}
