package service

import (
	"fmt"
	"testing"

	"montblanc/internal/runner"
)

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.add("a", runner.Result{ID: "a"})
	c.add("b", runner.Result{ID: "b"})
	// Touch "a" so "b" is the eviction candidate.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.add("c", runner.Result{ID: "c"})
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction despite being least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite being recently used")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing right after add")
	}
	entries, evictions := c.stats()
	if entries != 2 || evictions != 1 {
		t.Errorf("stats = (%d entries, %d evictions), want (2, 1)", entries, evictions)
	}
}

// A content address has one value: re-adding a key must keep the first
// stored result, not overwrite it.
func TestResultCacheFirstValueWins(t *testing.T) {
	c := newResultCache(4)
	c.add("k", runner.Result{ID: "k", Output: "first"})
	c.add("k", runner.Result{ID: "k", Output: "second"})
	res, ok := c.get("k")
	if !ok || res.Output != "first" {
		t.Errorf("got %q, want the first stored value", res.Output)
	}
	if entries, _ := c.stats(); entries != 1 {
		t.Errorf("duplicate add grew the cache to %d entries", entries)
	}
}

func TestResultCacheBoundHolds(t *testing.T) {
	c := newResultCache(8)
	for i := 0; i < 100; i++ {
		c.add(fmt.Sprintf("k%d", i), runner.Result{})
	}
	entries, evictions := c.stats()
	if entries != 8 {
		t.Errorf("cache holds %d entries, bound is 8", entries)
	}
	if evictions != 92 {
		t.Errorf("evictions = %d, want 92", evictions)
	}
}
