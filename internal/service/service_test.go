package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"montblanc/internal/experiments"
	"montblanc/internal/simmpi"
)

// fakeMatch builds a Match function over a fixed experiment set (exact
// IDs only — the tests don't need globs).
func fakeMatch(es ...experiments.Experiment) func(args ...string) ([]experiments.Experiment, error) {
	return func(args ...string) ([]experiments.Experiment, error) {
		var out []experiments.Experiment
		for _, a := range args {
			found := false
			for _, e := range es {
				if e.ID == a {
					out = append(out, e)
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("unknown experiment %q", a)
			}
		}
		return out, nil
	}
}

func postRun(t *testing.T, ts *httptest.Server, body string) (*http.Response, string) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v interface{}) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}

// mustNew builds a Server or fails the test: every config in this file
// is valid by construction.
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCacheHitByteIdentical is the core contract: the second identical
// request is answered from the cache with exactly the bytes of the
// cold run, and /metrics shows one underlying simulation.
func TestCacheHitByteIdentical(t *testing.T) {
	var runs atomic.Int64
	exp := experiments.Experiment{
		ID:    "toy",
		Title: "a deterministic toy",
		Run: func(w io.Writer, o experiments.Options) error {
			runs.Add(1)
			fmt.Fprintf(w, "quick=%v seed=%d\n", o.Quick, o.Seed)
			return nil
		},
	}
	s := mustNew(t, Config{Match: fakeMatch(exp)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"experiments":["toy"],"options":{"quick":true,"seed":3}}`
	resp1, cold := postRun(t, ts, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold run: status %d: %s", resp1.StatusCode, cold)
	}
	if got := resp1.Header.Get("X-Montblanc-Cache"); got != "hits=0 misses=1" {
		t.Errorf("cold run cache header %q", got)
	}
	resp2, warm := postRun(t, ts, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm run: status %d", resp2.StatusCode)
	}
	if cold != warm {
		t.Errorf("cache hit not byte-identical:\ncold: %s\nwarm: %s", cold, warm)
	}
	if got := resp2.Header.Get("X-Montblanc-Cache"); got != "hits=1 misses=0" {
		t.Errorf("warm run cache header %q", got)
	}
	if n := runs.Load(); n != 1 {
		t.Errorf("simulation ran %d times, want 1", n)
	}

	var m wireMetrics
	getJSON(t, ts, "/metrics", &m)
	if m.RunsTotal != 1 || m.CacheHits != 1 || m.CacheMisses != 1 || m.RequestsTotal != 2 {
		t.Errorf("metrics = %+v, want 1 run / 1 hit / 1 miss / 2 requests", m)
	}
	st, ok := m.Experiments["toy"]
	if !ok || st.Runs != 1 {
		t.Errorf("per-experiment stats missing or wrong: %+v", m.Experiments)
	}

	// Different options are a different content address.
	resp3, _ := postRun(t, ts, `{"experiments":["toy"],"options":{"quick":true,"seed":4}}`)
	if got := resp3.Header.Get("X-Montblanc-Cache"); got != "hits=0 misses=1" {
		t.Errorf("different-seed request cache header %q", got)
	}
	if n := runs.Load(); n != 2 {
		t.Errorf("simulation ran %d times after a different-seed request, want 2", n)
	}
}

// TestConcurrentIdenticalRequestsRunOnce is the singleflight contract
// under -race: N concurrent identical requests cost exactly one
// simulation and all see the same bytes.
func TestConcurrentIdenticalRequestsRunOnce(t *testing.T) {
	const n = 32
	var runs atomic.Int64
	gate := make(chan struct{})
	exp := experiments.Experiment{
		ID:    "slow",
		Title: "gated",
		Run: func(w io.Writer, o experiments.Options) error {
			runs.Add(1)
			<-gate
			fmt.Fprintln(w, "done")
			return nil
		},
	}
	s := mustNew(t, Config{Match: fakeMatch(exp), MaxConcurrent: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bodies := make([]string, n)
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json",
				strings.NewReader(`{"experiments":["slow"],"options":{}}`))
			if err != nil {
				statuses[i] = -1
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			bodies[i], statuses[i] = string(b), resp.StatusCode
		}(i)
	}
	// Release the gate once the leader is inside Run; the remaining 31
	// requests must all be waiting on its flight, not running.
	for runs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, statuses[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("simulation ran %d times for %d concurrent requests, want 1", got, n)
	}
}

// TestRequestTimeout: a too-slow experiment yields a structured 504
// and the simulation still completes and lands in the cache for the
// retry.
func TestRequestTimeout(t *testing.T) {
	release := make(chan struct{})
	exp := experiments.Experiment{
		ID: "glacial",
		Run: func(w io.Writer, o experiments.Options) error {
			<-release
			fmt.Fprintln(w, "eventually")
			return nil
		},
	}
	s := mustNew(t, Config{Match: fakeMatch(exp), RequestTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postRun(t, ts, `{"experiments":["glacial"],"options":{}}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body: %s", resp.StatusCode, body)
	}
	var we wireError
	if err := json.Unmarshal([]byte(body), &we); err != nil || we.Error.Code != "timeout" {
		t.Fatalf("structured error missing: %s", body)
	}

	// The detached leader finishes once released, and the retry is a
	// cache hit — no second simulation.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := postRun(t, ts, `{"experiments":["glacial"],"options":{}}`)
		if resp.StatusCode == http.StatusOK {
			if got := resp.Header.Get("X-Montblanc-Cache"); got != "hits=1 misses=0" {
				t.Errorf("retry cache header %q, want a pure hit", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retry never hit the cache after the leader was released")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulShutdown: cancelling Serve's context drains the in-flight
// request to a complete 200 response before the server exits.
func TestGracefulShutdown(t *testing.T) {
	started := make(chan struct{})
	gate := make(chan struct{})
	exp := experiments.Experiment{
		ID: "draining",
		Run: func(w io.Writer, o experiments.Options) error {
			close(started)
			<-gate
			fmt.Fprintln(w, "drained fine")
			return nil
		},
	}
	s := mustNew(t, Config{Match: fakeMatch(exp), ShutdownGrace: 10 * time.Second})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, ln) }()

	type reply struct {
		status int
		body   string
	}
	replies := make(chan reply, 1)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/run", "application/json",
			strings.NewReader(`{"experiments":["draining"],"options":{}}`))
		if err != nil {
			replies <- reply{status: -1, body: err.Error()}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		replies <- reply{status: resp.StatusCode, body: string(b)}
	}()

	<-started // the request is in flight, mid-simulation
	cancel()  // begin graceful shutdown while it runs
	// Give Shutdown a moment to stop the listener, then let the
	// simulation finish.
	time.Sleep(50 * time.Millisecond)
	close(gate)

	r := <-replies
	if r.status != http.StatusOK || !strings.Contains(r.body, "drained fine") {
		t.Errorf("in-flight request got status %d body %q, want a complete 200", r.status, r.body)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Errorf("Serve returned %v, want a clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

func TestStructuredErrors(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"malformed json", `{`, http.StatusBadRequest, "bad_request"},
		{"unknown field", `{"experimints":["x"]}`, http.StatusBadRequest, "bad_request"},
		{"empty selection", `{"experiments":[],"options":{}}`, http.StatusBadRequest, "bad_request"},
		{"unknown experiment", `{"experiments":["nope"],"options":{}}`, http.StatusBadRequest, "unknown_experiment"},
		{"unknown platform", `{"experiments":["table1"],"options":{"quick":true,"platforms":["NoSuchMachine"]}}`, http.StatusBadRequest, "bad_options"},
		{"invalid inline spec", `{"experiments":["table1"],"options":{"quick":true},"specs":[{"name":"Bad","isa":"armv7","watts":-1}]}`, http.StatusBadRequest, "bad_spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postRun(t, ts, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d; body: %s", resp.StatusCode, tc.status, body)
			}
			var we wireError
			if err := json.Unmarshal([]byte(body), &we); err != nil {
				t.Fatalf("unstructured error body: %s", body)
			}
			if we.Error.Code != tc.code {
				t.Errorf("code %q, want %q (message: %s)", we.Error.Code, tc.code, we.Error.Message)
			}
		})
	}

	// Method and path mismatches are still JSON-free stdlib responses;
	// just pin the status codes.
	resp, err := ts.Client().Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: status %d, want 405", resp.StatusCode)
	}
}

// TestRealExperimentEndToEnd drives the default Match/registry path:
// a real quick experiment served twice, byte-identical, with inline
// request-scoped specs resolvable in the same request.
func TestRealExperimentEndToEnd(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"experiments":["table1"],"options":{"quick":true}}`
	resp1, cold := postRun(t, ts, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold: status %d: %s", resp1.StatusCode, cold)
	}
	_, warm := postRun(t, ts, body)
	if cold != warm {
		t.Error("real experiment cache hit not byte-identical")
	}

	// The response carries the established wire form.
	var results []struct {
		ID      string  `json:"id"`
		Title   string  `json:"title"`
		Seconds float64 `json:"seconds"`
		Output  string  `json:"output"`
	}
	if err := json.Unmarshal([]byte(cold), &results); err != nil {
		t.Fatalf("response not the runner wire form: %v", err)
	}
	if len(results) != 1 || results[0].ID != "table1" || results[0].Output == "" {
		t.Errorf("unexpected results: %+v", results)
	}
}

// TestInlineSpecRequestScoped: a request carrying its own machine can
// sweep it, and the machine is gone (from the registry and from
// /v1/platforms) afterwards.
func TestInlineSpecRequestScoped(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var specs []json.RawMessage
	getJSON(t, ts, "/v1/platforms", &specs)
	before := len(specs)

	// Borrow a real spec, rename it, and inline it.
	var reg []map[string]interface{}
	getJSON(t, ts, "/v1/platforms", &reg)
	var snowball map[string]interface{}
	for _, sp := range reg {
		if sp["name"] == "Snowball" {
			snowball = sp
		}
	}
	if snowball == nil {
		t.Fatal("Snowball not in /v1/platforms")
	}
	snowball["name"] = "Ephemeral"
	delete(snowball, "power")
	delete(snowball, "power_name")
	inline, _ := json.Marshal(snowball)

	body := fmt.Sprintf(
		`{"experiments":["sweep-specs"],"options":{"quick":true,"platforms":["Snowball","Ephemeral"]},"specs":[%s]}`,
		inline)
	resp, out := postRun(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if !strings.Contains(out, "Ephemeral") {
		t.Error("inline machine missing from sweep output")
	}

	getJSON(t, ts, "/v1/platforms", &specs)
	if len(specs) != before {
		t.Errorf("inline spec leaked: %d platforms, was %d", len(specs), before)
	}
}

func TestListEndpointsAndHealth(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var entries []struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	getJSON(t, ts, "/v1/experiments", &entries)
	if len(entries) == 0 {
		t.Error("/v1/experiments empty")
	}
	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, ts, "/healthz", &health)
	if health.Status != "ok" {
		t.Errorf("healthz = %+v", health)
	}
}

// --- sim_workers option ---------------------------------------------

// sim_workers validates like the CLI flag (negative is a 400, absurd
// values clamp to simmpi.MaxWorkers) and is deliberately NOT part of
// the cache key: results are byte-identical at any worker count, so a
// request differing only in sim_workers is a cache hit.
func TestSimWorkersOption(t *testing.T) {
	var last atomic.Int64
	exp := experiments.Experiment{
		ID:    "toy",
		Title: "records the sim worker option",
		Run: func(w io.Writer, o experiments.Options) error {
			last.Store(int64(o.SimWorkers))
			fmt.Fprintln(w, "done")
			return nil
		},
	}
	s := mustNew(t, Config{Match: fakeMatch(exp)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	t.Run("negative-rejected", func(t *testing.T) {
		resp, body := postRun(t, ts, `{"experiments":["toy"],"options":{"sim_workers":-2}}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
		}
		if !strings.Contains(body, "sim_workers") {
			t.Errorf("error body %q does not name sim_workers", body)
		}
	})
	t.Run("clamped", func(t *testing.T) {
		resp, body := postRun(t, ts, `{"experiments":["toy"],"options":{"seed":1,"sim_workers":100000}}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if got := last.Load(); got != simmpi.MaxWorkers {
			t.Errorf("experiment saw SimWorkers=%d, want clamp to %d", got, simmpi.MaxWorkers)
		}
	})
	t.Run("excluded-from-cache-key", func(t *testing.T) {
		resp, cold := postRun(t, ts, `{"experiments":["toy"],"options":{"seed":2,"sim_workers":2}}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cold status %d", resp.StatusCode)
		}
		resp2, warm := postRun(t, ts, `{"experiments":["toy"],"options":{"seed":2,"sim_workers":8}}`)
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("warm status %d", resp2.StatusCode)
		}
		if got := resp2.Header.Get("X-Montblanc-Cache"); got != "hits=1 misses=0" {
			t.Errorf("cache header %q: sim_workers leaked into the cache key", got)
		}
		if cold != warm {
			t.Errorf("cache hit not byte-identical across worker counts")
		}
	})
}

// /metrics carries the DES scheduler aggregate under the "sim" key —
// an additive extension of the stable field contract.
func TestMetricsSimSection(t *testing.T) {
	s := mustNew(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var m map[string]json.RawMessage
	getJSON(t, ts, "/metrics", &m)
	raw, ok := m["sim"]
	if !ok {
		t.Fatalf("/metrics has no sim section: %v", m)
	}
	var sim simmpi.EngineStats
	if err := json.Unmarshal(raw, &sim); err != nil {
		t.Fatalf("sim section does not decode as EngineStats: %v", err)
	}
}

// --- saturation vs timeout ------------------------------------------

// TestSaturationVsTimeout pins the overload contract: a deadline that
// expires while the simulation is RUNNING is a 504 "timeout"; one that
// expires while the simulation is still QUEUED behind a full
// -max-concurrent semaphore is a 503 "saturated" with a Retry-After
// header, counted once in rejected_total. Either way the leader keeps
// its queue position and the work lands in the cache for the retry.
func TestSaturationVsTimeout(t *testing.T) {
	release := make(chan struct{})
	hog := experiments.Experiment{
		ID: "hog",
		Run: func(w io.Writer, o experiments.Options) error {
			<-release
			fmt.Fprintln(w, "hogged")
			return nil
		},
	}
	starved := experiments.Experiment{
		ID: "starved",
		Run: func(w io.Writer, o experiments.Options) error {
			fmt.Fprintln(w, "fast")
			return nil
		},
	}
	s := mustNew(t, Config{Match: fakeMatch(hog, starved), MaxConcurrent: 1,
		RequestTimeout: 100 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Order matters: the hog request occupies the single slot first, so
	// the starved one spends its whole deadline queued.
	cases := []struct {
		name           string
		body           string
		wantStatus     int
		wantCode       string
		wantRetryAfter string
	}{
		{"running past the deadline is a timeout",
			`{"experiments":["hog"],"options":{}}`,
			http.StatusGatewayTimeout, "timeout", ""},
		{"queued past the deadline is saturation",
			`{"experiments":["starved"],"options":{}}`,
			http.StatusServiceUnavailable, "saturated", "1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postRun(t, ts, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d; body: %s", resp.StatusCode, tc.wantStatus, body)
			}
			var we wireError
			if err := json.Unmarshal([]byte(body), &we); err != nil || we.Error.Code != tc.wantCode {
				t.Fatalf("error code %q (decode err %v), want %q; body: %s",
					we.Error.Code, err, tc.wantCode, body)
			}
			if got := resp.Header.Get("Retry-After"); got != tc.wantRetryAfter {
				t.Errorf("Retry-After %q, want %q", got, tc.wantRetryAfter)
			}
		})
	}

	var m wireMetrics
	getJSON(t, ts, "/metrics", &m)
	if m.RejectedTotal != 1 {
		t.Errorf("rejected_total = %d, want 1 (a timeout is not a rejection)", m.RejectedTotal)
	}

	// Both leaders kept their queue positions: release the hog and both
	// results land in the cache, so the retries are pure hits with no
	// second simulation.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for _, body := range []string{cases[0].body, cases[1].body} {
		for {
			resp, _ := postRun(t, ts, body)
			if resp.StatusCode == http.StatusOK &&
				resp.Header.Get("X-Montblanc-Cache") == "hits=1 misses=0" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("retry of %s never became a cache hit", body)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	getJSON(t, ts, "/metrics", &m)
	if m.RunsTotal != 2 {
		t.Errorf("runs_total = %d, want 2 (retries replay, never rerun)", m.RunsTotal)
	}
}

// --- fault schedules on the wire ------------------------------------

// Hostile fault schedules are a structured 400 naming the field before
// any simulation runs. JSON cannot carry NaN — the decoder rejects it
// at the syntax level — so the representable hostile inputs are
// negative rates, inverted windows and speedup factors; a literal NaN
// is covered as a decode error.
func TestBadFaultRejected(t *testing.T) {
	exp := experiments.Experiment{
		ID: "toy",
		Run: func(w io.Writer, o experiments.Options) error {
			fmt.Fprintln(w, "ok")
			return nil
		},
	}
	s := mustNew(t, Config{Match: fakeMatch(exp)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name     string
		fault    string
		wantCode string
		wantMsg  string
	}{
		{"negative mtbf", `{"mtbf_seconds":-1}`, "bad_fault", "mtbf_seconds"},
		{"negative downtime", `{"downtime_seconds":-3}`, "bad_fault", "downtime_seconds"},
		{"negative checkpoint interval", `{"checkpoint_interval_seconds":-5}`,
			"bad_fault", "checkpoint_interval_seconds"},
		{"negative event node", `{"events":[{"node":-1,"time":5}]}`, "bad_fault", "negative node"},
		{"negative event time", `{"events":[{"node":0,"time":-2}]}`, "bad_fault", "events[0]"},
		{"empty link name", `{"links":[{"link":"","start":1,"end":5}]}`, "bad_fault", "empty link name"},
		{"inverted link window", `{"links":[{"link":"node0->sw","start":5,"end":1,"bandwidth_factor":2}]}`,
			"bad_fault", "links[0]"},
		{"speedup link", `{"links":[{"link":"node0->sw","start":1,"end":5,"bandwidth_factor":0.5}]}`,
			"bad_fault", "links[0]"},
		{"literal NaN is a decode error", `{"mtbf_seconds":NaN}`, "bad_request", "decoding"},
		{"unknown fault field", `{"mtbf_secnods":120}`, "bad_request", "unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := `{"experiments":["toy"],"options":{"fault":` + tc.fault + `}}`
			resp, out := postRun(t, ts, body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400; body: %s", resp.StatusCode, out)
			}
			var we wireError
			if err := json.Unmarshal([]byte(out), &we); err != nil {
				t.Fatalf("unstructured error body: %s", out)
			}
			if we.Error.Code != tc.wantCode {
				t.Errorf("code %q, want %q (message %q)", we.Error.Code, tc.wantCode, we.Error.Message)
			}
			if !strings.Contains(we.Error.Message, tc.wantMsg) {
				t.Errorf("message %q does not name the problem %q", we.Error.Message, tc.wantMsg)
			}
		})
	}

	var m wireMetrics
	getJSON(t, ts, "/metrics", &m)
	if m.RunsTotal != 0 {
		t.Errorf("hostile schedules reached the simulator: runs_total = %d", m.RunsTotal)
	}
}

// TestFaultIsCacheKeyMaterial: a fault schedule changes experiment
// output, so unlike sim_workers it must be part of the content
// address — a fault-injected request never replays a failure-free
// entry, and repeating the same schedule is a pure hit.
func TestFaultIsCacheKeyMaterial(t *testing.T) {
	var runs atomic.Int64
	exp := experiments.Experiment{
		ID: "toy",
		Run: func(w io.Writer, o experiments.Options) error {
			runs.Add(1)
			if o.Fault != nil {
				fmt.Fprintf(w, "mtbf=%g\n", o.Fault.MTBFSeconds)
			} else {
				fmt.Fprintln(w, "failure-free")
			}
			return nil
		},
	}
	s := mustNew(t, Config{Match: fakeMatch(exp)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	clean := `{"experiments":["toy"],"options":{}}`
	faulted := `{"experiments":["toy"],"options":{"fault":{"seed":7,"mtbf_seconds":120,"horizon_seconds":600}}}`

	if resp, _ := postRun(t, ts, clean); resp.Header.Get("X-Montblanc-Cache") != "hits=0 misses=1" {
		t.Fatal("clean run was not a cold miss")
	}
	respF, coldF := postRun(t, ts, faulted)
	if respF.Header.Get("X-Montblanc-Cache") != "hits=0 misses=1" {
		t.Error("faulted request replayed the failure-free entry")
	}
	if !strings.Contains(coldF, "mtbf=120") {
		t.Errorf("fault did not reach the experiment: %s", coldF)
	}
	respF2, warmF := postRun(t, ts, faulted)
	if respF2.Header.Get("X-Montblanc-Cache") != "hits=1 misses=0" {
		t.Error("repeated schedule was not a pure hit")
	}
	if coldF != warmF {
		t.Error("faulted cache hit not byte-identical")
	}
	if n := runs.Load(); n != 2 {
		t.Errorf("simulation ran %d times, want 2 (clean + faulted)", n)
	}
}
