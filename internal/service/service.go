// Package service implements `montblanc serve`: a long-running
// HTTP/JSON API that answers experiment requests from a
// content-addressed result cache.
//
// The determinism suite (see internal/experiments) proves every
// experiment is a pure function of its Options plus the resolved
// platform specs, so one execution's Result can be replayed verbatim
// for every later request with the same content hash
// (experiments.CacheKey). The server keeps a bounded LRU of stored
// Results in front of the existing internal/runner pool, with
// singleflight-style deduplication so N concurrent identical requests
// cost one simulation.
//
// Endpoints, schemas and the cache-key recipe are documented in
// SERVICE.md at the repository root.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"montblanc/internal/experiments"
	"montblanc/internal/fault"
	"montblanc/internal/platform"
	"montblanc/internal/report"
	"montblanc/internal/runner"
	"montblanc/internal/service/store"
	"montblanc/internal/simmpi"
)

// Config tunes a Server. The zero value serves with sensible defaults.
type Config struct {
	// MaxConcurrent bounds simulations executing at once across all
	// requests (<= 0 means GOMAXPROCS). Requests needing more work
	// queue on the limit rather than being rejected; the per-request
	// timeout bounds how long they wait.
	MaxConcurrent int
	// CacheSize bounds the in-memory result cache in entries (0 means
	// 1024; negative is a configuration error New rejects).
	CacheSize int
	// CacheDir enables the durable result tier: a disk-backed,
	// content-addressed store under the in-memory LRU, so a restarted
	// (even SIGKILLed) server serves prior results from request one.
	// "" disables persistence.
	CacheDir string
	// CachePersistMaxBytes bounds the durable tier's payload bytes on
	// disk; oldest entries are pruned first. <= 0 means unlimited.
	CachePersistMaxBytes int64
	// RequestTimeout bounds one /v1/run request (0 means 60s). A
	// timed-out request gets a structured 504; the underlying
	// simulation keeps running and lands in the cache for the retry.
	RequestTimeout time.Duration
	// ShutdownGrace bounds draining on shutdown (0 means 30s).
	ShutdownGrace time.Duration
	// Match resolves request experiment arguments (IDs, globs, "all");
	// nil means experiments.Match. Injection point for tests.
	Match func(args ...string) ([]experiments.Experiment, error)
	// List enumerates the experiments /v1/experiments advertises; nil
	// means experiments.All.
	List func() []experiments.Experiment
	// Logf receives service lifecycle lines; nil means silent.
	Logf func(format string, args ...interface{})
}

// Server is the simulation service. Create with New, expose with
// Handler (tests and embedding) or Serve (listener plus graceful
// shutdown).
type Server struct {
	cfg    Config
	match  func(args ...string) ([]experiments.Experiment, error)
	list   func() []experiments.Experiment
	cache  *resultCache
	store  *store.Store // durable tier under the LRU; nil without CacheDir
	flight *flightGroup
	sem    chan struct{} // counting semaphore: one token per running simulation
	met    *metrics
	mux    *http.ServeMux

	// baseCtx is the lifetime of detached simulation leaders; Serve
	// cancels it after the HTTP side has drained, aborting queued
	// leaders nobody is waiting for. wg tracks those leaders so
	// shutdown can wait for the ones already simulating.
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
}

// errShuttingDown marks work refused because the server is draining.
var errShuttingDown = errors.New("shutting down")

// errSaturated marks a request that timed out while its simulation was
// still queued behind -max-concurrent busy slots: the service is
// overloaded (503 + Retry-After), not slow (504). The leader keeps its
// queue position either way — the work still lands in the cache.
var errSaturated = errors.New("all simulation slots busy")

// New builds a Server from the config. It fails on an invalid config
// (negative CacheSize) or when the durable tier's directory cannot be
// prepared.
func New(cfg Config) (*Server, error) {
	if cfg.CacheSize < 0 {
		return nil, fmt.Errorf("service: CacheSize must be >= 0, got %d", cfg.CacheSize)
	}
	mc := cfg.MaxConcurrent
	if mc <= 0 {
		mc = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:    cfg,
		match:  cfg.Match,
		list:   cfg.List,
		cache:  newResultCache(cfg.CacheSize),
		flight: newFlightGroup(),
		sem:    make(chan struct{}, mc),
		met:    newMetrics(),
		mux:    http.NewServeMux(),
	}
	if cfg.CacheDir != "" {
		st, err := store.Open(store.OS{}, cfg.CacheDir, cfg.CachePersistMaxBytes)
		if err != nil {
			return nil, fmt.Errorf("service: opening result store: %w", err)
		}
		s.store = st
	}
	if s.match == nil {
		s.match = experiments.Match
	}
	if s.list == nil {
		s.list = experiments.All
	}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/platforms", s.handlePlatforms)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) requestTimeout() time.Duration {
	if s.cfg.RequestTimeout > 0 {
		return s.cfg.RequestTimeout
	}
	return 60 * time.Second
}

func (s *Server) shutdownGrace() time.Duration {
	if s.cfg.ShutdownGrace > 0 {
		return s.cfg.ShutdownGrace
	}
	return 30 * time.Second
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve runs the service on ln until ctx is cancelled, then drains
// gracefully: the listener stops accepting, in-flight HTTP requests
// complete (their simulations run to the end), detached leaders that
// have not started simulating are aborted, and ones mid-simulation are
// awaited — all bounded by ShutdownGrace. Returns nil on a clean
// drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	s.logf("montblanc serve: listening on http://%s", ln.Addr())

	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}

	s.logf("montblanc serve: shutting down, draining in-flight work")
	drainCtx, cancel := context.WithTimeout(context.Background(), s.shutdownGrace())
	defer cancel()
	// Order matters: drain the HTTP side first so every request that
	// made it in completes (handlers block on their simulations), THEN
	// abort the detached leaders nobody is waiting for.
	err := srv.Shutdown(drainCtx)
	s.stop()
	drained := make(chan struct{})
	go func() { s.wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-drainCtx.Done():
		err = errors.Join(err, fmt.Errorf(
			"service: %d simulations still running at grace deadline", s.flight.inflight()))
	}
	<-errc // always http.ErrServerClosed once Shutdown has run
	return err
}

// --- wire types ---------------------------------------------------

// runRequest is the /v1/run request body.
type runRequest struct {
	// Experiments selects what to run: exact IDs, path.Match globs
	// ("fig3*") or the keyword "all" — the same grammar as the CLI.
	Experiments []string `json:"experiments"`
	// Options mirrors experiments.Options.
	Options wireOptions `json:"options"`
	// Specs are request-scoped inline machine specs: resolvable (and
	// able to shadow registered names) for this request only, never
	// registered globally.
	Specs []platform.Spec `json:"specs,omitempty"`
}

type wireOptions struct {
	Quick     bool     `json:"quick"`
	Seed      uint64   `json:"seed"`
	Platforms []string `json:"platforms,omitempty"`
	// SimWorkers selects the DES scheduler for this request's
	// simulations (<= 1 sequential reference, > 1 conservative-
	// parallel shards; clamped to simmpi.MaxWorkers). Output is
	// byte-identical at any value, so it is deliberately excluded from
	// the cache key: a cached result serves requests at any worker
	// count.
	SimWorkers int `json:"sim_workers,omitempty"`
	// Fault is an optional fault schedule for the resilience
	// experiments (see FAULT.md). Unlike sim_workers it changes
	// experiment output, so it IS cache-key material: a fault-injected
	// request never replays a failure-free entry.
	Fault *fault.Spec `json:"fault,omitempty"`
}

// wireError is the structured error envelope every non-2xx response
// carries.
type wireError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	s.met.requestErrors.Add(1)
	var we wireError
	we.Error.Code = code
	we.Error.Message = fmt.Sprintf(format, args...)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = report.EncodeJSON(w, we) // response-writer errors have no recovery path
}

// --- handlers -----------------------------------------------------

// maxRequestBytes bounds a /v1/run body; inline platform specs are the
// only bulky field and a few MiB covers hundreds of machines.
const maxRequestBytes = 4 << 20

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.met.requests.Add(1)
	s.met.inflightReqs.Add(1)
	defer s.met.inflightReqs.Add(-1)

	var req runRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "decoding request: %v", err)
		return
	}
	if len(req.Experiments) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request",
			`"experiments" must name at least one experiment ID, glob or "all"`)
		return
	}

	if req.Options.SimWorkers < 0 {
		s.writeError(w, http.StatusBadRequest, "bad_options",
			"options.sim_workers must be >= 0, got %d", req.Options.SimWorkers)
		return
	}
	if req.Options.SimWorkers > simmpi.MaxWorkers {
		req.Options.SimWorkers = simmpi.MaxWorkers
	}
	// Validate the fault schedule up front: hostile numbers (NaN rates,
	// negative MTBFs, non-positive checkpoint intervals) are a 400
	// naming the field, not a per-experiment failure buried in results.
	if req.Options.Fault != nil {
		if err := req.Options.Fault.Validate(); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad_fault", "%v", err)
			return
		}
	}
	opts := experiments.Options{
		Quick:      req.Options.Quick,
		Seed:       req.Options.Seed,
		Platforms:  req.Options.Platforms,
		Specs:      req.Specs,
		SimWorkers: req.Options.SimWorkers,
		Fault:      req.Options.Fault,
	}
	// Validate inline specs up front so a bad machine is a 400 naming
	// the spec, not a per-experiment failure buried in results.
	if _, err := opts.Resolver(); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_spec", "%v", err)
		return
	}
	es, err := s.match(req.Experiments...)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "unknown_experiment", "%v", err)
		return
	}
	keys := make([]string, len(es))
	for i, e := range es {
		if keys[i], err = experiments.CacheKey(e.ID, opts); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad_options", "%v", err)
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout())
	defer cancel()

	// Dispatch the experiments as weighted tasks on the runner pool —
	// heaviest first (LPT), one slot per experiment — with each task
	// resolving through cache → flight group → semaphore. The pool
	// tops out at the simulation concurrency limit; the cross-request
	// bound is the semaphore.
	out := make([]runner.Result, len(es))
	hit := make([]bool, len(es))
	tasks := make([]runner.Task, len(es))
	for i := range es {
		i := i
		tasks[i] = runner.Task{
			ID:     es[i].ID,
			Title:  es[i].Title,
			Weight: es[i].Cost,
			Run: func(io.Writer) error {
				res, fromCache, err := s.resolve(ctx, es[i], opts, keys[i])
				if err != nil {
					return err
				}
				out[i], hit[i] = res, fromCache
				return nil
			},
		}
	}
	pool := runner.Pool{Workers: cap(s.sem)}
	for _, tr := range pool.Run(tasks) {
		if tr.Err == nil {
			continue
		}
		switch {
		case errors.Is(tr.Err, errSaturated):
			secs := int(s.requestTimeout() / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			s.writeError(w, http.StatusServiceUnavailable, "saturated",
				"experiment %s waited %s for a simulation slot (all %d busy); it stays queued and lands in the cache — retry later",
				tr.ID, s.requestTimeout(), cap(s.sem))
		case errors.Is(tr.Err, context.DeadlineExceeded):
			s.writeError(w, http.StatusGatewayTimeout, "timeout",
				"experiment %s did not finish within %s (it keeps running; retry to hit the cache)",
				tr.ID, s.requestTimeout())
		case errors.Is(tr.Err, context.Canceled), errors.Is(tr.Err, errShuttingDown):
			s.writeError(w, http.StatusServiceUnavailable, "unavailable", "experiment %s: %v", tr.ID, tr.Err)
		default:
			s.writeError(w, http.StatusInternalServerError, "internal", "experiment %s: %v", tr.ID, tr.Err)
		}
		return
	}

	// The body is the established wire form — the same bytes
	// `montblanc -json` emits — so a cache hit is byte-identical to
	// the cold run. Cache observability rides in a header, never the
	// body.
	hits := 0
	for _, h := range hit {
		if h {
			hits++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Montblanc-Cache", fmt.Sprintf("hits=%d misses=%d", hits, len(es)-hits))
	_ = report.EncodeJSON(w, out)
}

// resolve produces the result for one (experiment, options) pair:
// straight from the cache, by joining an in-flight identical
// computation, or by becoming the leader that runs it. Only the wait
// is bound to the request context — the computation itself is
// detached, so a timed-out requester never cancels work other waiters
// (or the cache) still want.
func (s *Server) resolve(ctx context.Context, e experiments.Experiment, o experiments.Options, key string) (res runner.Result, fromCache bool, err error) {
	if res, ok := s.cache.get(key); ok {
		s.met.cacheHits.Add(1)
		return res, true, nil
	}
	// Second tier: the durable store. A disk hit is still a cache hit
	// (the simulation is not re-run — the point of persistence); it is
	// promoted into the LRU so subsequent lookups stay in memory.
	if res, ok := s.diskGet(key); ok {
		s.met.cacheHits.Add(1)
		s.cache.add(key, res)
		return res, true, nil
	}
	s.met.cacheMisses.Add(1)
	c, leader := s.flight.claim(key)
	if leader {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.flight.complete(key, c, s.execute(e, o, key, c))
		}()
	}
	select {
	case <-c.done:
		if c.res.Err != nil && errors.Is(c.res.Err, errShuttingDown) {
			return runner.Result{}, false, errShuttingDown
		}
		return c.res, false, nil
	case <-ctx.Done():
		// A deadline that expired while the leader was still queued for
		// a simulation slot is saturation, not slowness: the semaphore
		// was full past the whole request timeout. The leader keeps its
		// queue position — the work still lands in the cache.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) && !c.started.Load() {
			s.met.rejected.Add(1)
			return runner.Result{}, false, errSaturated
		}
		return runner.Result{}, false, ctx.Err()
	}
}

// execute runs one simulation under the concurrency limit and stores
// the result. It is the only place experiment code runs in the
// service.
func (s *Server) execute(e experiments.Experiment, o experiments.Options, key string, c *flightCall) runner.Result {
	// Double-check the cache: this leader may have claimed the key in
	// the window after a previous leader stored the result but before
	// its flight retired — rerunning would be wasted work (never a
	// wrong answer; the one-simulation guarantee is the product).
	if res, ok := s.cache.get(key); ok {
		c.started.Store(true) // replayed, never queued: hits are not saturation
		return res
	}
	select {
	case s.sem <- struct{}{}:
		c.started.Store(true)
	case <-s.baseCtx.Done():
		// Not cached: the refusal is transient, the value under this
		// key is not.
		return runner.Result{ID: e.ID, Title: e.Title, Err: errShuttingDown}
	}
	defer func() { <-s.sem }()
	var buf bytes.Buffer
	start := time.Now()
	err := e.Run(&buf, o)
	res := runner.Result{
		ID:       e.ID,
		Title:    e.Title,
		Output:   buf.String(),
		Duration: time.Since(start),
		Err:      err,
	}
	s.met.recordRun(res)
	s.cache.add(key, res)
	s.diskPut(key, res)
	return res
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	es := s.list()
	entries := make([]entry, 0, len(es))
	for _, e := range es {
		entries = append(entries, entry{ID: e.ID, Title: e.Title})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = report.EncodeJSON(w, entries)
}

func (s *Server) handlePlatforms(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = report.EncodeJSON(w, platform.Specs())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	entries, evictions := s.cache.stats()
	var ss *store.Stats
	if s.store != nil {
		v := s.store.Stats()
		ss = &v
	}
	w.Header().Set("Content-Type", "application/json")
	_ = report.EncodeJSON(w, s.met.snapshot(entries, evictions, s.flight.inflight(), ss))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}
