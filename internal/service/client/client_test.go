package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSleeper records requested waits without actually waiting.
type fakeSleeper struct {
	delays []time.Duration
	fail   error // returned instead of sleeping when set
}

func (f *fakeSleeper) sleep(ctx context.Context, d time.Duration) error {
	f.delays = append(f.delays, d)
	if f.fail != nil {
		return f.fail
	}
	return ctx.Err()
}

func newTestClient(t *testing.T, ts *httptest.Server, cfg Config, fs *fakeSleeper) *Client {
	t.Helper()
	cfg.BaseURL = ts.URL
	if fs != nil {
		cfg.Sleep = fs.sleep
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSuccessFirstAttempt(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		fmt.Fprint(w, `[{"id":"toy"}]`)
	}))
	defer ts.Close()
	fs := &fakeSleeper{}
	c := newTestClient(t, ts, Config{}, fs)
	out, err := c.Run(context.Background(), []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `[{"id":"toy"}]` || calls.Load() != 1 || len(fs.delays) != 0 {
		t.Fatalf("out=%q calls=%d sleeps=%d", out, calls.Load(), len(fs.delays))
	}
}

// TestSaturatedHonorsRetryAfter: a 503 saturated with Retry-After must
// floor the next wait at the server's ask, then succeed.
func TestSaturatedHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":{"code":"saturated","message":"all slots busy"}}`)
			return
		}
		fmt.Fprint(w, `[ok]`)
	}))
	defer ts.Close()
	fs := &fakeSleeper{}
	c := newTestClient(t, ts, Config{Seed: 7}, fs)
	out, err := c.Run(context.Background(), []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `[ok]` || calls.Load() != 3 {
		t.Fatalf("out=%q calls=%d", out, calls.Load())
	}
	if len(fs.delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(fs.delays))
	}
	for i, d := range fs.delays {
		if d < 3*time.Second {
			t.Errorf("delay %d = %v, must be >= the 3s Retry-After ask", i, d)
		}
		if d >= 3*time.Second+10*time.Second {
			t.Errorf("delay %d = %v, jitter exceeded MaxBackoff on top of the ask", i, d)
		}
	}
}

// TestBadRequestNotRetried: 4xx is permanent — one attempt, the
// envelope surfaced.
func TestBadRequestNotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":{"code":"unknown_experiment","message":"no such id"}}`)
	}))
	defer ts.Close()
	c := newTestClient(t, ts, Config{}, &fakeSleeper{})
	_, err := c.Run(context.Background(), []byte(`{}`))
	var he *HTTPError
	if !errors.As(err, &he) || he.Code != "unknown_experiment" || he.Status != 400 {
		t.Fatalf("err = %v, want 400 unknown_experiment envelope", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("4xx retried: %d calls", calls.Load())
	}
}

// TestGiveUpAfterMaxAttempts: persistent 500s exhaust the attempt
// budget with MaxAttempts-1 waits between.
func TestGiveUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"error":{"code":"internal","message":"boom"}}`)
	}))
	defer ts.Close()
	fs := &fakeSleeper{}
	c := newTestClient(t, ts, Config{MaxAttempts: 3}, fs)
	_, err := c.Run(context.Background(), []byte(`{}`))
	if err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 3 || len(fs.delays) != 2 {
		t.Fatalf("calls=%d sleeps=%d, want 3/2", calls.Load(), len(fs.delays))
	}
}

// TestTransportErrorRetried: a dead listener is retryable; a server
// that comes back rescues the call. (Simulated by pointing at a
// closed server first via a flaky reverse proxy handler.)
func TestTransportErrorRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Hijack and slam the connection: a transport-level error,
			// not an HTTP status.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close()
			return
		}
		fmt.Fprint(w, `[ok]`)
	}))
	defer ts.Close()
	fs := &fakeSleeper{}
	c := newTestClient(t, ts, Config{}, fs)
	out, err := c.Run(context.Background(), []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `[ok]` || calls.Load() != 2 {
		t.Fatalf("out=%q calls=%d", out, calls.Load())
	}
}

// TestBudgetCancelsDuringBackoff: a cancelled context surfaces as
// budget exhaustion, not a hang.
func TestBudgetCancelsDuringBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":{"code":"saturated","message":"busy"}}`)
	}))
	defer ts.Close()
	fs := &fakeSleeper{fail: context.Canceled}
	c := newTestClient(t, ts, Config{}, fs)
	_, err := c.Run(context.Background(), []byte(`{}`))
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if !strings.Contains(err.Error(), "saturated") {
		t.Fatalf("err = %v, should carry the last server error", err)
	}
}

// TestAttemptTimeoutRetries: an attempt that outlives AttemptTimeout
// fails that attempt only; the next one succeeds.
func TestAttemptTimeoutRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			time.Sleep(300 * time.Millisecond)
		}
		fmt.Fprint(w, `[ok]`)
	}))
	defer ts.Close()
	fs := &fakeSleeper{}
	c := newTestClient(t, ts, Config{AttemptTimeout: 50 * time.Millisecond}, fs)
	out, err := c.Run(context.Background(), []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `[ok]` || calls.Load() != 2 {
		t.Fatalf("out=%q calls=%d", out, calls.Load())
	}
}

// TestDeterministicJitter: same seed, same failure pattern, same
// delays — the retry schedule is replayable.
func TestDeterministicJitter(t *testing.T) {
	run := func() []time.Duration {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if calls.Add(1) <= 3 {
				w.WriteHeader(http.StatusInternalServerError)
				return
			}
			fmt.Fprint(w, `[ok]`)
		}))
		defer ts.Close()
		fs := &fakeSleeper{}
		c := newTestClient(t, ts, Config{Seed: 42, MaxAttempts: 5}, fs)
		if _, err := c.Run(context.Background(), []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
		return fs.delays
	}
	a, b := run(), run()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("delays %v / %v, want 3 each", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded jitter not deterministic: %v vs %v", a, b)
		}
	}
	// The exponential ceiling grows: later draws come from strictly
	// larger ranges; assert bounds rather than exact growth (jitter is
	// uniform, not monotone).
	base := 200 * time.Millisecond
	for i, d := range a {
		if limit := base << uint(i); d >= limit {
			t.Errorf("delay %d = %v, want < ceiling %v", i, d, limit)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing BaseURL accepted")
	}
	if _, err := New(Config{BaseURL: "http://x", MaxAttempts: -1}); err == nil {
		t.Error("negative MaxAttempts accepted")
	}
	if _, err := New(Config{BaseURL: "http://x", BaseBackoff: -time.Second}); err == nil {
		t.Error("negative backoff accepted")
	}
}
