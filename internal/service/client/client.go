// Package client is the resilient counterpart to `montblanc serve`:
// an HTTP client for the /v1/run API with per-attempt timeouts, a
// bounded number of attempts, and capped exponential backoff with
// full jitter between them.
//
// Blind retries are safe by construction: the service is
// content-addressed, so re-sending a request either replays the
// cached result byte-identically or joins the in-flight computation —
// it can never run a simulation twice or observe a half-applied
// write. That is what lets this client treat every transport error,
// 503 and 504 as "try again" without idempotency bookkeeping.
//
// The backoff schedule is seeded (internal/xrand), so a client's
// retry timing replays exactly under the same seed while distinct
// seeds decorrelate a retry storm — the same determinism discipline
// as everywhere else in the repository (this package is covered by
// detlint; only the physical wait below carries an allow directive).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"montblanc/internal/xrand"
)

// Config tunes a Client. The zero value of every field has a usable
// default except BaseURL, which is required.
type Config struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// AttemptTimeout bounds one HTTP attempt (0 means 65s — a hair
	// over the service's default request timeout, so a server-side
	// 504 arrives as a structured error rather than a cut connection).
	AttemptTimeout time.Duration
	// MaxAttempts bounds total tries including the first (0 means 5).
	MaxAttempts int
	// BaseBackoff seeds the exponential ceiling: the wait before
	// retry n is uniform in [0, min(MaxBackoff, BaseBackoff<<n))
	// ("full jitter"), plus any server-provided Retry-After. 0 means
	// 200ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the ceiling (0 means 10s).
	MaxBackoff time.Duration
	// Seed drives the jitter draws; a fixed seed replays the exact
	// retry schedule.
	Seed uint64
	// HTTP overrides the transport; nil means a plain http.Client.
	// Per-attempt deadlines come from context, not Client.Timeout.
	HTTP *http.Client
	// Logf receives one line per retry decision; nil means silent.
	Logf func(format string, args ...interface{})
	// Sleep overrides the physical wait, for tests; nil means a real
	// timer honoring ctx cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Client calls the service with retries. Use New.
type Client struct {
	cfg   Config
	hc    *http.Client
	rng   *xrand.Rand
	sleep func(ctx context.Context, d time.Duration) error
}

// HTTPError is a non-2xx response, carrying the service's structured
// error envelope when one was decodable.
type HTTPError struct {
	Status  int
	Code    string // envelope code ("saturated", "timeout", ...) or ""
	Message string

	// retryAfter is the server's Retry-After ask, used as a floor for
	// the next backoff wait.
	retryAfter time.Duration
}

func (e *HTTPError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("server status %d (%s): %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("server status %d: %s", e.Status, e.Message)
}

// Retryable reports whether the response may succeed on a retry: every
// 5xx qualifies (503 saturated clears, 504 timeout retries into the
// result cache, 500s may be transient), no 4xx does.
func (e *HTTPError) Retryable() bool { return e.Status >= 500 }

// New validates the config and builds a Client.
func New(cfg Config) (*Client, error) {
	if strings.TrimSpace(cfg.BaseURL) == "" {
		return nil, errors.New("client: BaseURL is required")
	}
	if cfg.AttemptTimeout < 0 || cfg.BaseBackoff < 0 || cfg.MaxBackoff < 0 {
		return nil, fmt.Errorf("client: negative timeout/backoff (attempt %v, base %v, cap %v)",
			cfg.AttemptTimeout, cfg.BaseBackoff, cfg.MaxBackoff)
	}
	if cfg.MaxAttempts < 0 {
		return nil, fmt.Errorf("client: MaxAttempts must be >= 0, got %d", cfg.MaxAttempts)
	}
	if cfg.AttemptTimeout == 0 {
		cfg.AttemptTimeout = 65 * time.Second
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = 200 * time.Millisecond
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 10 * time.Second
	}
	c := &Client{
		cfg:   cfg,
		hc:    cfg.HTTP,
		rng:   xrand.New(cfg.Seed),
		sleep: cfg.Sleep,
	}
	if c.hc == nil {
		c.hc = &http.Client{}
	}
	if c.sleep == nil {
		c.sleep = sleepCtx
	}
	return c, nil
}

func (c *Client) logf(format string, args ...interface{}) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Run POSTs body to /v1/run and returns the response bytes — the
// service's wire-form result array, byte-identical however many
// retries it took. ctx bounds the whole call including backoff waits
// (the total retry budget); each attempt additionally gets
// AttemptTimeout.
func (c *Client) Run(ctx context.Context, body []byte) ([]byte, error) {
	url := strings.TrimSuffix(c.cfg.BaseURL, "/") + "/v1/run"
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			d := c.backoff(attempt-1, retryAfter(lastErr))
			c.logf("montblanc call: attempt %d/%d failed (%v); retrying in %v",
				attempt, c.cfg.MaxAttempts, lastErr, d.Round(time.Millisecond))
			if err := c.sleep(ctx, d); err != nil {
				return nil, fmt.Errorf("client: retry budget exhausted after %d attempts: %w (last error: %v)",
					attempt, err, lastErr)
			}
		}
		out, err := c.attempt(ctx, url, body)
		if err == nil {
			return out, nil
		}
		lastErr = err
		var he *HTTPError
		if errors.As(err, &he) && !he.Retryable() {
			return nil, err // 4xx: the request itself is wrong; retrying cannot help
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("client: retry budget exhausted after %d attempts: %w (last error: %v)",
				attempt+1, ctx.Err(), err)
		}
	}
	return nil, fmt.Errorf("client: giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// attempt performs one POST under the per-attempt deadline.
func (c *Client) attempt(ctx context.Context, url string, body []byte) ([]byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.AttemptTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		he := &HTTPError{Status: resp.StatusCode, Message: strings.TrimSpace(string(data))}
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
			he.Code, he.Message = env.Error.Code, env.Error.Message
		}
		if ra := parseRetryAfter(resp.Header.Get("Retry-After")); ra > 0 {
			he.retryAfter = ra
		}
		return nil, he
	}
	return data, nil
}

// retryAfterSetter: keep the hint on the error so the backoff
// calculation sees it on the *next* loop iteration.
func retryAfter(err error) time.Duration {
	var he *HTTPError
	if errors.As(err, &he) {
		return he.retryAfter
	}
	return 0
}

// parseRetryAfter handles the delta-seconds form the service emits
// (HTTP-date forms are ignored — the service never sends them).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// backoff computes the wait after failed attempt n (0-based): a full-
// jitter draw under an exponentially growing, capped ceiling, plus the
// server's Retry-After ask as a floor offset — the server knows its
// saturation horizon better than any client-side guess.
func (c *Client) backoff(n int, serverAsk time.Duration) time.Duration {
	ceil := c.cfg.MaxBackoff
	if n < 62 {
		if b := c.cfg.BaseBackoff << uint(n); b > 0 && b < ceil {
			ceil = b
		}
	}
	return serverAsk + time.Duration(c.rng.Jitter(int64(ceil)))
}

// sleepCtx is the production sleep: a real timer, cancelled by ctx.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d) //detlint:allow wallclock -- retry backoff is physical wait time by design; the schedule itself is seeded and deterministic
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
