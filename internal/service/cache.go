package service

import (
	"container/list"
	"sync"

	"montblanc/internal/runner"
)

// resultCache is a bounded LRU of stored runner.Results keyed by
// content hash (experiments.CacheKey). Results are immutable once
// stored — the determinism suite guarantees a key's output never
// changes — so the cache hands out stored values directly; there is
// nothing a reader could corrupt. Eviction is strict LRU on Get/Add
// recency.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	evictions uint64
}

type cacheEntry struct {
	key string
	res runner.Result
}

func newResultCache(max int) *resultCache {
	if max <= 0 {
		max = 1024
	}
	return &resultCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the stored result for key, marking it most recently
// used.
func (c *resultCache) get(key string) (runner.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return runner.Result{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// add stores a result under key, evicting the least recently used
// entry when full. Re-adding an existing key refreshes its recency but
// keeps the first stored result: a content address has one value.
func (c *resultCache) add(key string, res runner.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// stats returns the current entry count and lifetime eviction count.
func (c *resultCache) stats() (entries int, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.evictions
}
