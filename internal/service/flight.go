package service

import (
	"sync"
	"sync/atomic"

	"montblanc/internal/runner"
)

// flightCall is one in-flight simulation shared by every request that
// asked for its key while it ran. res is written once, before done is
// closed; waiters read it only after <-done. started flips once the
// leader has acquired a simulation slot: a waiter that times out while
// started is still false was queued behind a saturated semaphore, not
// behind a slow simulation — the distinction between 503 and 504.
type flightCall struct {
	done    chan struct{}
	started atomic.Bool
	res     runner.Result
}

// flightGroup deduplicates concurrent work by content hash: however
// many requests ask for a key at once, exactly one executes the
// simulation and the rest wait on its call. Unlike
// golang.org/x/sync/singleflight (not vendored here), completion and
// waiting are decoupled: the leader runs detached from any request
// context, so a waiter timing out never cancels or orphans work other
// waiters — or the cache — still want.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// claim returns the call for key, creating it when absent. The second
// return is true for the creator — the leader, who must eventually
// complete the call — and false for joiners, who only wait.
func (g *flightGroup) claim(key string) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	return c, true
}

// complete publishes the leader's result and retires the key. The
// ordering contract with the cache: the caller stores the result in
// the cache BEFORE complete, so a request arriving after the key is
// forgotten finds it in the cache — there is no window where a key is
// neither cached nor in flight yet was already computed.
func (g *flightGroup) complete(key string, c *flightCall, res runner.Result) {
	c.res = res
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
}

// inflight returns the number of keys currently being computed.
func (g *flightGroup) inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}
