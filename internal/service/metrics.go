package service

import (
	"sync"
	"sync/atomic"
	"time"

	"montblanc/internal/runner"
	"montblanc/internal/service/store"
	"montblanc/internal/simmpi"
)

// metrics is the service's observability surface, rendered by
// /metrics as one JSON document. Counters are monotonic over the
// process lifetime; gauges are instantaneous. The field names are a
// stable contract (SERVICE.md) — CI and later sharding work key off
// them.
type metrics struct {
	requests      atomic.Uint64 // /v1/run requests accepted for processing
	requestErrors atomic.Uint64 // /v1/run requests answered with an error status
	cacheHits     atomic.Uint64 // experiment executions served from the LRU
	cacheMisses   atomic.Uint64 // executions that had to consult the flight group
	runs          atomic.Uint64 // underlying simulations actually executed
	rejected      atomic.Uint64 // waits rejected 503: queued past the timeout on a full semaphore
	inflightReqs  atomic.Int64  // /v1/run handlers currently running

	// start anchors uptime_seconds. Wall clock is fine here: uptime is
	// operator observability, not simulation state.
	start time.Time

	mu     sync.Mutex
	perExp map[string]*expStats
}

// expStats aggregates per-experiment simulation latency. Only real
// executions are recorded: cache hits cost no simulation time and
// would drown the signal.
type expStats struct {
	Runs         uint64  `json:"runs"`
	Errors       uint64  `json:"errors"`
	TotalSeconds float64 `json:"total_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
	LastSeconds  float64 `json:"last_seconds"`
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), perExp: make(map[string]*expStats)}
}

// recordRun accounts one executed simulation.
func (m *metrics) recordRun(res runner.Result) {
	m.runs.Add(1)
	secs := res.Duration.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.perExp[res.ID]
	if st == nil {
		st = &expStats{}
		m.perExp[res.ID] = st
	}
	st.Runs++
	if res.Err != nil {
		st.Errors++
	}
	st.TotalSeconds += secs
	if secs > st.MaxSeconds {
		st.MaxSeconds = secs
	}
	st.LastSeconds = secs
}

// wireMetrics is the /metrics JSON document.
type wireMetrics struct {
	RequestsTotal  uint64 `json:"requests_total"`
	RequestErrors  uint64 `json:"request_errors"`
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEntries   int    `json:"cache_entries"`
	CacheEvictions uint64 `json:"cache_evictions"`
	RunsTotal      uint64 `json:"runs_total"`
	// RejectedTotal counts saturation rejections: request deadlines
	// that expired while the simulation was still queued for a slot
	// (503 "saturated" + Retry-After). A new field on the stable
	// /metrics contract — existing names never change.
	RejectedTotal    uint64              `json:"rejected_total"`
	InflightRequests int64               `json:"inflight_requests"`
	InflightRuns     int                 `json:"inflight_runs"`
	Experiments      map[string]expStats `json:"experiments"`
	// Sim is the process-wide DES scheduler aggregate (committed-event
	// throughput, window count, mean lookahead, cross-shard-send
	// ratio). A new field on the stable /metrics contract — existing
	// names never change.
	Sim simmpi.EngineStats `json:"sim"`
	// UptimeSeconds is wall-clock seconds since the server was built —
	// together with the store section it distinguishes a warm restart
	// (low uptime, high disk_hits) from a long-lived hot cache.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Store is the durable-tier section, present only when the server
	// runs with -cache-dir. Its field names are part of the stable
	// contract too (SERVICE.md).
	Store *store.Stats `json:"store,omitempty"`
}

// snapshot renders the current state. The per-experiment map is
// deep-copied under the lock so encoding races nothing. storeStats is
// nil when the durable tier is disabled.
func (m *metrics) snapshot(cacheEntries int, cacheEvictions uint64, inflightRuns int, storeStats *store.Stats) wireMetrics {
	m.mu.Lock()
	exps := make(map[string]expStats, len(m.perExp))
	for id, st := range m.perExp {
		exps[id] = *st
	}
	m.mu.Unlock()
	return wireMetrics{
		RequestsTotal:    m.requests.Load(),
		RequestErrors:    m.requestErrors.Load(),
		CacheHits:        m.cacheHits.Load(),
		CacheMisses:      m.cacheMisses.Load(),
		CacheEntries:     cacheEntries,
		CacheEvictions:   cacheEvictions,
		RunsTotal:        m.runs.Load(),
		RejectedTotal:    m.rejected.Load(),
		InflightRequests: m.inflightReqs.Load(),
		InflightRuns:     inflightRuns,
		Experiments:      exps,
		Sim:              simmpi.Engine(),
		UptimeSeconds:    time.Since(m.start).Seconds(),
		Store:            storeStats,
	}
}
