package genkernel

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"montblanc/internal/magicfilter"
	"montblanc/internal/xrand"
)

func TestValidate(t *testing.T) {
	if _, err := Generate(Options{Unroll: 0}); err == nil {
		t.Error("unroll 0 accepted")
	}
	if _, err := Generate(Options{Unroll: 65}); err == nil {
		t.Error("unroll 65 accepted")
	}
}

func TestGeneratedSourceParses(t *testing.T) {
	for _, u := range []int{1, 4, 12} {
		src, err := Generate(Options{Unroll: u})
		if err != nil {
			t.Fatal(err)
		}
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
			t.Errorf("unroll=%d: generated source does not parse: %v\n%s", u, err, src)
		}
		if !strings.Contains(src, fmt.Sprintf("func MagicfilterU%d(", u)) {
			t.Errorf("unroll=%d: function name missing", u)
		}
		// One accumulator per unrolled output.
		if got := strings.Count(src, "var acc"); got != u+1 { // +1 remainder loop
			t.Errorf("unroll=%d: %d accumulators, want %d", u, got, u+1)
		}
	}
}

func TestSuiteParses(t *testing.T) {
	src, err := GenerateSuite("kernels", 12)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "suite.go", src, 0); err != nil {
		t.Fatalf("suite does not parse: %v", err)
	}
	for u := 1; u <= 12; u++ {
		if !strings.Contains(src, fmt.Sprintf("func MagicfilterU%d(", u)) {
			t.Errorf("suite missing variant %d", u)
		}
	}
	if _, err := GenerateSuite("k", 0); err == nil {
		t.Error("maxUnroll 0 accepted")
	}
}

// The paper's end-to-end loop: generate the variants, build them with
// the real toolchain, and verify every variant computes exactly what the
// reference kernel computes.
func TestGeneratedVariantsMatchReference(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping toolchain invocation in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not available")
	}
	dir := t.TempDir()

	suite, err := GenerateSuite("main", 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "kernels.go"), []byte(suite), 0o644); err != nil {
		t.Fatal(err)
	}

	// Harness: applies every variant to a fixed pseudo-random input and
	// prints one checksum per variant.
	rng := xrand.New(99)
	n := 97
	input := make([]float64, n)
	for i := range input {
		input[i] = rng.Float64()*2 - 1
	}
	var initLit strings.Builder
	for i, v := range input {
		if i > 0 {
			initLit.WriteString(", ")
		}
		fmt.Fprintf(&initLit, "%.17g", v)
	}
	harness := fmt.Sprintf(`package main

import "fmt"

var input = []float64{%s}

func main() {
	fns := []func(dst, src []float64){
		MagicfilterU1, MagicfilterU2, MagicfilterU3, MagicfilterU4,
		MagicfilterU5, MagicfilterU6, MagicfilterU7, MagicfilterU8,
		MagicfilterU9, MagicfilterU10, MagicfilterU11, MagicfilterU12,
	}
	dst := make([]float64, len(input))
	for _, fn := range fns {
		fn(dst, input)
		sum := 0.0
		for i, v := range dst {
			sum += v * float64(i+1)
		}
		fmt.Printf("%%.12e\n", sum)
	}
}
`, initLit.String())
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(harness), 0o644); err != nil {
		t.Fatal(err)
	}
	gomod := "module gentest\n\ngo 1.22\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run failed: %v\n%s", err, out)
	}
	lines := strings.Fields(strings.TrimSpace(string(out)))
	if len(lines) != 12 {
		t.Fatalf("variant outputs = %d, want 12:\n%s", len(lines), out)
	}

	// Reference checksum from the in-tree kernel.
	ref := make([]float64, n)
	if err := magicfilter.Apply1D(ref, input); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, v := range ref {
		sum += v * float64(i+1)
	}
	want := fmt.Sprintf("%.12e", sum)
	for u, got := range lines {
		if got != want {
			t.Errorf("unroll=%d checksum %s != reference %s", u+1, got, want)
		}
	}
}
