package cache

import (
	"slices"
	"testing"

	"montblanc/internal/mem"
	"montblanc/internal/xrand"
)

// hierCfg describes one randomized hierarchy shape for the equivalence
// property suite.
type hierCfg struct {
	levels     []Config
	memLatency int
	tlbEntries int
	tlbPenalty int
	mapper     int // 0 = none, 1 = contiguous, 2 = random pool, 3 = tiny pool
	seed       uint64
}

// build constructs one hierarchy from the shape. Each call builds a
// fresh, independent instance (including an independent mapper seeded
// identically), so a scalar and a batched twin see the same world.
func (hc hierCfg) build(t *testing.T) *Hierarchy {
	t.Helper()
	var mapper mem.Mapper
	switch hc.mapper {
	case 1:
		mapper = mem.NewContiguousMapper(1 << 20)
	case 2:
		mapper = mem.NewRandomMapper(hc.seed, 1<<12)
	case 3:
		// A tiny pool oversubscribes page colours aggressively: the
		// §V.A.1 conflict regime.
		mapper = mem.NewRandomMapper(hc.seed, 8)
	}
	var tlb *mem.TLB
	if mapper != nil {
		tlb = mem.NewTLB(hc.tlbEntries, hc.tlbPenalty, mapper)
	}
	h, err := NewHierarchy(hc.levels, hc.memLatency, tlb)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func randomHierCfg(rng *xrand.Rand) hierCfg {
	lineSizes := []int{16, 32, 64}
	l1Line := lineSizes[rng.Uint64()%uint64(len(lineSizes))]
	assocs := []int{1, 2, 4, 8}
	hc := hierCfg{
		levels: []Config{{
			Name: "L1", Level: 1,
			Size:          4096 << (rng.Uint64() % 3),
			LineSize:      l1Line,
			Associativity: assocs[rng.Uint64()%uint64(len(assocs))],
			HitLatency:    1 + int(rng.Uint64()%4),
		}},
		memLatency: 50 + int(rng.Uint64()%200),
		tlbEntries: []int{0, 2, 8, 32}[rng.Uint64()%4],
		tlbPenalty: 10 + int(rng.Uint64()%40),
		mapper:     int(rng.Uint64() % 4),
		seed:       rng.Uint64(),
	}
	if rng.Uint64()%2 == 0 {
		hc.levels = append(hc.levels, Config{
			Name: "L2", Level: 2,
			Size:          64 * 1024,
			LineSize:      l1Line << (rng.Uint64() % 2),
			Associativity: 8,
			HitLatency:    8 + int(rng.Uint64()%20),
		})
	}
	return hc
}

// segment is one randomized AccessRun request.
type segment struct {
	va     uint64
	stride int
	count  int
	write  bool
}

func randomSegment(rng *xrand.Rand) segment {
	strides := []int{0, 1, 3, 4, 7, 8, 16, 31, 32, 64, 100, 256, 1024, 4096, 5000, 8192, -8, -64, -1}
	return segment{
		va:     rng.Uint64() % (1 << 18),
		stride: strides[rng.Uint64()%uint64(len(strides))],
		count:  1 + int(rng.Uint64()%700),
		write:  rng.Uint64()%2 == 0,
	}
}

// scalarRun replays a segment through the scalar reference path,
// aggregating the way AccessRun does.
func scalarRun(h *Hierarchy, s segment) RunResult {
	var rr RunResult
	l1Hit := h.L1HitLatency()
	va := s.va
	for i := 0; i < s.count; i++ {
		lat := h.Access(va, s.write)
		rr.Accesses++
		rr.Latency += uint64(lat)
		if lat > l1Hit {
			rr.Extra += uint64(lat - l1Hit)
		}
		if s.stride >= 0 {
			va += uint64(s.stride)
		} else {
			va -= uint64(-s.stride)
		}
	}
	return rr
}

func compareHierarchies(t *testing.T, scalar, batched *Hierarchy, ctx string) {
	t.Helper()
	for i := 0; i < scalar.Depth(); i++ {
		if a, b := scalar.Level(i).Stats(), batched.Level(i).Stats(); a != b {
			t.Fatalf("%s: level %d stats diverge: scalar %+v batched %+v", ctx, i, a, b)
		}
	}
	if a, b := scalar.Memory().Stats(), batched.Memory().Stats(); a != b {
		t.Fatalf("%s: memory stats diverge: scalar %+v batched %+v", ctx, a, b)
	}
	sh, sm, sp := scalar.TLBStats()
	bh, bm, bp := batched.TLBStats()
	if sh != bh || sm != bm || sp != bp {
		t.Fatalf("%s: TLB stats diverge: scalar %d/%d/%v batched %d/%d/%v",
			ctx, sh, sm, sp, bh, bm, bp)
	}
	sa := scalar.AppendState(nil)
	ba := batched.AppendState(nil)
	if len(sa) != len(ba) {
		t.Fatalf("%s: state encoding lengths diverge: %d vs %d", ctx, len(sa), len(ba))
	}
	for i := range sa {
		if sa[i] != ba[i] {
			t.Fatalf("%s: canonical state diverges at word %d", ctx, i)
		}
	}
}

// The core batched-engine contract: AccessRun is exactly equivalent to
// the scalar Access loop — same aggregate latency, same per-level
// Stats, same TLB counters, same replacement state — over randomized
// hierarchies, mappers (including the tiny-pool page-colour conflict
// regime), strides (zero, negative, sub-line, super-page) and write
// mixes.
func TestAccessRunMatchesScalar(t *testing.T) {
	rng := xrand.New(42)
	for trial := 0; trial < 40; trial++ {
		hc := randomHierCfg(rng)
		scalar := hc.build(t)
		batched := hc.build(t)
		for seg := 0; seg < 12; seg++ {
			s := randomSegment(rng)
			want := scalarRun(scalar, s)
			got := batched.AccessRun(s.va, s.stride, s.count, s.write)
			if want != got {
				t.Fatalf("trial %d seg %d (%+v): aggregates diverge: scalar %+v batched %+v",
					trial, seg, s, want, got)
			}
			compareHierarchies(t, scalar, batched, "mid-run")
		}
		// The state equivalence must carry forward: a scalar probe
		// sequence behaves identically on both hierarchies afterwards.
		for probe := 0; probe < 200; probe++ {
			va := rng.Uint64() % (1 << 18)
			w := rng.Uint64()%2 == 0
			if a, b := scalar.Access(va, w), batched.Access(va, w); a != b {
				t.Fatalf("trial %d probe %d: post-run latency diverges: %d vs %d", trial, probe, a, b)
			}
		}
		compareHierarchies(t, scalar, batched, "post-probe")
	}
}

// Zero and one-count runs, and a count that exactly fills lines and
// pages, hit the segmentation boundaries.
func TestAccessRunBoundaries(t *testing.T) {
	hc := hierCfg{
		levels:     []Config{{Name: "L1", Level: 1, Size: 8192, LineSize: 32, Associativity: 4, HitLatency: 2}},
		memLatency: 100,
		tlbEntries: 4, tlbPenalty: 20, mapper: 2, seed: 9,
	}
	scalar := hc.build(t)
	batched := hc.build(t)
	if got := batched.AccessRun(123, 8, 0, false); got != (RunResult{}) {
		t.Fatalf("zero-count run returned %+v", got)
	}
	for _, s := range []segment{
		{va: 0, stride: 8, count: 1},
		{va: 31, stride: 1, count: 2},                   // crosses a line boundary mid-pair
		{va: 0, stride: 32, count: 256},                 // line-exact strides across 2 pages
		{va: mem.PageSize - 4, stride: 4, count: 3},     // crosses a page boundary
		{va: 5, stride: 0, count: 1000},                 // one address, many touches
		{va: 3 * mem.PageSize, stride: 4096, count: 16}, // page-exact stride
		{va: 1 << 20, stride: 13, count: 997, write: true},
	} {
		want := scalarRun(scalar, s)
		got := batched.AccessRun(s.va, s.stride, s.count, s.write)
		if want != got {
			t.Fatalf("segment %+v: %+v vs %+v", s, want, got)
		}
		compareHierarchies(t, scalar, batched, "boundary")
	}
}

// ResetStats must cover every counter the batched path bulk-updates:
// cache levels, the DRAM backstop and the TLB. After reset-then-run,
// the absolute counters equal the counter *movement* of the same run on
// a warm twin that was never reset.
func TestResetStatsThenRunSeesOnlyTheRun(t *testing.T) {
	hc := hierCfg{
		levels: []Config{
			{Name: "L1", Level: 1, Size: 8192, LineSize: 32, Associativity: 4, HitLatency: 2},
			{Name: "L2", Level: 2, Size: 65536, LineSize: 32, Associativity: 8, HitLatency: 12},
		},
		memLatency: 100,
		tlbEntries: 8, tlbPenalty: 25, mapper: 2, seed: 11,
	}
	reset := hc.build(t)
	warm := hc.build(t)
	warmTraffic := func(h *Hierarchy) {
		h.AccessRun(0, 8, 4096, false)
		h.AccessRun(1<<16, 64, 512, true)
	}
	warmTraffic(reset)
	warmTraffic(warm)

	reset.ResetStats()
	for i := 0; i < reset.Depth(); i++ {
		if st := reset.Level(i).Stats(); st != (Stats{}) {
			t.Fatalf("level %d stats not zeroed: %+v", i, st)
		}
	}
	if st := reset.Memory().Stats(); st != (Stats{}) {
		t.Fatalf("memory stats not zeroed: %+v", st)
	}
	if h, m, ok := reset.TLBStats(); !ok || h != 0 || m != 0 {
		t.Fatalf("TLB stats not zeroed: %d/%d (present %v)", h, m, ok)
	}

	var before, after, delta HierarchyStats
	warm.ReadStats(&before)
	measured := func(h *Hierarchy) {
		h.AccessRun(0, 8, 4096, false)
		h.AccessRun(1<<18, 4, 2048, true)
	}
	measured(warm)
	measured(reset)
	warm.ReadStats(&after)
	delta.Delta(&after, &before)
	for i := 0; i < reset.Depth(); i++ {
		if st := reset.Level(i).Stats(); st != delta.Levels[i] {
			t.Fatalf("level %d: reset-then-run %+v != warm delta %+v", i, st, delta.Levels[i])
		}
	}
	if st := reset.Memory().Stats(); st != delta.Memory {
		t.Fatalf("memory: reset-then-run %+v != warm delta %+v", st, delta.Memory)
	}
	h2, m2, _ := reset.TLBStats()
	if h2 != delta.TLBHits || m2 != delta.TLBMisses {
		t.Fatalf("TLB: reset-then-run %d/%d != warm delta %d/%d",
			h2, m2, delta.TLBHits, delta.TLBMisses)
	}
}

// A fixed strided pass over a fixed mapping reaches a canonical-state
// fixed point after warm-up, and AddStats replay of further passes is
// exactly what re-simulating them would have produced — counters and
// subsequent behaviour both.
func TestFixedPointReplayIsExact(t *testing.T) {
	hc := hierCfg{
		levels: []Config{
			{Name: "L1", Level: 1, Size: 8192, LineSize: 32, Associativity: 4, HitLatency: 2},
			{Name: "L2", Level: 2, Size: 32768, LineSize: 32, Associativity: 8, HitLatency: 12},
		},
		memLatency: 120,
		tlbEntries: 8, tlbPenalty: 25, mapper: 2, seed: 5,
	}
	replayed := hc.build(t)
	simulated := hc.build(t)
	pass := func(h *Hierarchy) RunResult { return h.AccessRun(0, 8, 8192, false) }

	// Warm both to the fixed point.
	var prev, cur []uint64
	for p := 0; p < 8; p++ {
		pass(replayed)
		pass(simulated)
		prev, cur = cur, prev
		cur = replayed.AppendState(cur[:0])
		if p > 0 && statesEq(prev, cur) {
			break
		}
		if p == 7 {
			t.Fatal("pass never reached a fixed point")
		}
	}

	// Capture one steady pass's delta on the replay twin.
	var before, after, delta HierarchyStats
	replayed.ReadStats(&before)
	rrA := pass(replayed)
	replayed.ReadStats(&after)
	delta.Delta(&after, &before)
	post := replayed.AppendState(nil)
	if !statesEq(post, cur) {
		t.Fatal("capture pass moved the canonical state")
	}
	rrB := pass(simulated)
	if rrA != rrB {
		t.Fatalf("steady passes disagree: %+v vs %+v", rrA, rrB)
	}

	// Replay 5 passes on one twin, simulate them on the other.
	const extra = 5
	replayed.AddStats(&delta, extra)
	for i := 0; i < extra; i++ {
		if rr := pass(simulated); rr != rrA {
			t.Fatalf("simulated pass %d diverged from steady aggregate", i)
		}
	}
	compareHierarchies(t, simulated, replayed, "post-replay")

	// And both twins keep behaving identically on fresh traffic.
	for probe := 0; probe < 300; probe++ {
		va := uint64(probe*52 + 17)
		if a, b := simulated.Access(va, probe%3 == 0), replayed.Access(va, probe%3 == 0); a != b {
			t.Fatalf("probe %d: %d vs %d", probe, a, b)
		}
	}
}

func statesEq(a, b []uint64) bool { return slices.Equal(a, b) }

// StateWords matches the AppendState encoding length and the encoding
// excludes counters: resetting stats must not move the state.
func TestStateEncodingShape(t *testing.T) {
	hc := hierCfg{
		levels: []Config{
			{Name: "L1", Level: 1, Size: 4096, LineSize: 32, Associativity: 2, HitLatency: 1},
			{Name: "L2", Level: 2, Size: 16384, LineSize: 64, Associativity: 4, HitLatency: 9},
		},
		memLatency: 80,
		tlbEntries: 4, tlbPenalty: 30, mapper: 1,
	}
	h := hc.build(t)
	if got, want := len(h.AppendState(nil)), h.StateWords(); got != want {
		t.Fatalf("encoded %d words, StateWords says %d", got, want)
	}
	h.AccessRun(0, 16, 3000, true)
	before := h.AppendState(nil)
	h.ResetStats()
	after := h.AppendState(nil)
	if !statesEq(before, after) {
		t.Fatal("ResetStats moved the canonical state")
	}
}
