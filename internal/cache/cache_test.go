package cache

import (
	"testing"
	"testing/quick"

	"montblanc/internal/mem"
)

func mustHierarchy(t *testing.T, cfgs []Config, memLat int, tlb *mem.TLB) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(cfgs, memLat, tlb)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func tinyL1() Config {
	return Config{Name: "L1", Level: 1, Size: 1024, LineSize: 64, Associativity: 2, HitLatency: 1}
}

func TestConfigValidate(t *testing.T) {
	good := tinyL1()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "sz", Size: 1000, LineSize: 64, Associativity: 2},
		{Name: "ln", Size: 1024, LineSize: 60, Associativity: 2},
		{Name: "as", Size: 1024, LineSize: 64, Associativity: 0},
		{Name: "div", Size: 1024, LineSize: 64, Associativity: 5},
		{Name: "lat", Size: 1024, LineSize: 64, Associativity: 2, HitLatency: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted", c.Name)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := mustHierarchy(t, []Config{tinyL1()}, 100, nil)
	if cyc := h.Access(0, false); cyc != 101 {
		t.Errorf("cold access = %d cycles, want 101", cyc)
	}
	if cyc := h.Access(32, false); cyc != 1 {
		t.Errorf("same-line access = %d cycles, want 1", cyc)
	}
	st := h.Level(0).Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 2-way, 8 sets of 64B lines. Lines 0, 512, 1024 all map to set 0.
	h := mustHierarchy(t, []Config{tinyL1()}, 100, nil)
	h.Access(0, false)    // load A
	h.Access(512, false)  // load B
	h.Access(0, false)    // touch A (B becomes LRU)
	h.Access(1024, false) // load C, evicts B
	if cyc := h.Access(0, false); cyc != 1 {
		t.Error("A evicted despite being MRU")
	}
	if cyc := h.Access(512, false); cyc == 1 {
		t.Error("B survived despite being LRU")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	h := mustHierarchy(t, []Config{tinyL1()}, 100, nil)
	// Touch all 16 lines twice; second pass must be all hits.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 1024; a += 64 {
			h.Access(a, false)
		}
	}
	st := h.Level(0).Stats()
	if st.Misses != 16 {
		t.Errorf("misses = %d, want 16 cold misses only", st.Misses)
	}
}

func TestCapacityThrashing(t *testing.T) {
	h := mustHierarchy(t, []Config{tinyL1()}, 100, nil)
	// Working set 2x the cache, sequential: every access in every pass
	// misses (LRU worst case).
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < 2048; a += 64 {
			h.Access(a, false)
		}
	}
	st := h.Level(0).Stats()
	if st.Hits != 0 {
		t.Errorf("hits = %d, want 0 under LRU thrashing", st.Hits)
	}
}

func TestTwoLevelLatencies(t *testing.T) {
	l1 := Config{Name: "L1", Level: 1, Size: 1024, LineSize: 64, Associativity: 2, HitLatency: 1}
	l2 := Config{Name: "L2", Level: 2, Size: 4096, LineSize: 64, Associativity: 4, HitLatency: 8}
	h := mustHierarchy(t, []Config{l1, l2}, 100, nil)
	// Cold: L1 miss + L2 miss + DRAM = 1+8+100.
	if cyc := h.Access(0, false); cyc != 109 {
		t.Errorf("cold = %d, want 109", cyc)
	}
	// Evict from L1 by touching 2KB more at same set... simpler: touch
	// addresses 0,512,1024 (set 0) to evict line 0 from L1; it remains
	// in L2, so re-access costs 1+8.
	h.Access(512, false)
	h.Access(1024, false)
	if cyc := h.Access(0, false); cyc != 9 {
		t.Errorf("L2 hit = %d, want 9", cyc)
	}
}

func TestWritebackCounted(t *testing.T) {
	h := mustHierarchy(t, []Config{tinyL1()}, 100, nil)
	h.Access(0, true)     // dirty line A in set 0
	h.Access(512, false)  // fill way 2 of set 0
	h.Access(1024, false) // evict A (dirty) -> writeback
	if wb := h.Level(0).Stats().Writebacks; wb != 1 {
		t.Errorf("writebacks = %d, want 1", wb)
	}
}

func TestFlushForcesMisses(t *testing.T) {
	h := mustHierarchy(t, []Config{tinyL1()}, 100, nil)
	h.Access(0, true)
	h.Flush()
	if cyc := h.Access(0, false); cyc != 101 {
		t.Errorf("post-flush access = %d, want 101", cyc)
	}
	if wb := h.Level(0).Stats().Writebacks; wb != 1 {
		t.Errorf("flush writebacks = %d, want 1", wb)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	h := mustHierarchy(t, []Config{tinyL1()}, 100, nil)
	h.Access(0, false)
	h.ResetStats()
	if cyc := h.Access(0, false); cyc != 1 {
		t.Error("ResetStats cleared cache contents")
	}
	st := h.Level(0).Stats()
	if st.Accesses != 1 || st.Hits != 1 {
		t.Errorf("stats after reset = %+v", st)
	}
}

// The §V.A.1 scenario: a 32KB 4-way physically-indexed L1 has 2 page
// colours. A 32KB array with contiguous physical pages fills the cache
// exactly; with random pages some colour is oversubscribed and the array
// conflicts with itself.
func TestPageColoringConflictMisses(t *testing.T) {
	l1 := Config{Name: "L1", Level: 1, Size: 32 << 10, LineSize: 32, Associativity: 4, HitLatency: 1}
	const arraySize = 32 << 10

	missRatioWith := func(mapper mem.Mapper) float64 {
		tlb := mem.NewTLB(0, 0, mapper) // pass-through, no TLB cost
		h, err := NewHierarchy([]Config{l1}, 60, tlb)
		if err != nil {
			t.Fatal(err)
		}
		// Warm.
		for a := uint64(0); a < arraySize; a += 4 {
			h.Access(a, false)
		}
		h.ResetStats()
		for pass := 0; pass < 4; pass++ {
			for a := uint64(0); a < arraySize; a += 4 {
				h.Access(a, false)
			}
		}
		return h.Level(0).Stats().MissRatio()
	}

	contig := missRatioWith(mem.NewContiguousMapper(0))
	if contig != 0 {
		t.Errorf("contiguous pages: steady-state miss ratio %f, want 0", contig)
	}

	// Find a seed with a skewed colour layout (most seeds qualify).
	worst := 0.0
	for seed := uint64(0); seed < 8; seed++ {
		if r := missRatioWith(mem.NewRandomMapper(seed, 1<<16)); r > worst {
			worst = r
		}
	}
	if worst <= 0.01 {
		t.Errorf("random pages never caused conflict misses (worst=%f)", worst)
	}
}

func TestHierarchyErrors(t *testing.T) {
	if _, err := NewHierarchy(nil, 100, nil); err == nil {
		t.Error("empty hierarchy accepted")
	}
	if _, err := NewHierarchy([]Config{{Name: "bad", Size: 3}}, 100, nil); err == nil {
		t.Error("invalid level accepted")
	}
	if _, err := New(tinyL1(), nil); err == nil {
		t.Error("nil next level accepted")
	}
}

// Property: hits + misses == accesses at every level, for random traces.
func TestStatsConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		l1 := Config{Name: "L1", Level: 1, Size: 2048, LineSize: 64, Associativity: 2, HitLatency: 1}
		l2 := Config{Name: "L2", Level: 2, Size: 8192, LineSize: 64, Associativity: 4, HitLatency: 8}
		h, err := NewHierarchy([]Config{l1, l2}, 80, nil)
		if err != nil {
			return false
		}
		x := seed
		for i := 0; i < 500; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			h.Access(x%(1<<16), x&1 == 0)
		}
		for i := 0; i < h.Depth(); i++ {
			st := h.Level(i).Stats()
			if st.Hits+st.Misses != st.Accesses {
				return false
			}
		}
		// L2 accesses == L1 misses (no prefetching in the model).
		return h.Level(1).Stats().Accesses == h.Level(0).Stats().Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: simulation is deterministic for identical traces.
func TestDeterminismProperty(t *testing.T) {
	f := func(seed uint64) bool {
		run := func() (uint64, int) {
			h, _ := NewHierarchy([]Config{tinyL1()}, 100, nil)
			x := seed
			total := 0
			for i := 0; i < 300; i++ {
				x = x*2862933555777941757 + 3037000493
				total += h.Access(x%(1<<14), false)
			}
			return h.Level(0).Stats().Misses, total
		}
		m1, t1 := run()
		m2, t2 := run()
		return m1 == m2 && t1 == t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMissRatio(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 {
		t.Error("idle miss ratio != 0")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if s.MissRatio() != 0.3 {
		t.Errorf("miss ratio = %f", s.MissRatio())
	}
}

// Levels may have different line sizes (Snowball: 32B lines; a
// hypothetical 64B L2): the hierarchy must still track containment.
func TestMixedLineSizes(t *testing.T) {
	l1 := Config{Name: "L1", Level: 1, Size: 1024, LineSize: 32, Associativity: 2, HitLatency: 1}
	l2 := Config{Name: "L2", Level: 2, Size: 8192, LineSize: 64, Associativity: 4, HitLatency: 8}
	h := mustHierarchy(t, []Config{l1, l2}, 100, nil)
	// Two adjacent 32B L1 lines share one 64B L2 line.
	h.Access(0, false)  // L1 miss, L2 miss
	h.Access(32, false) // L1 miss, L2 hit (same 64B line)
	l2stats := h.Level(1).Stats()
	if l2stats.Hits != 1 || l2stats.Misses != 1 {
		t.Errorf("L2 stats = %+v, want 1 hit 1 miss", l2stats)
	}
}

// A store-heavy workload generates writebacks bounded by the number of
// dirty lines that can exist.
func TestWritebackConservation(t *testing.T) {
	h := mustHierarchy(t, []Config{tinyL1()}, 100, nil)
	const span = 8192 // 8x the cache
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < span; a += 64 {
			h.Access(a, true)
		}
	}
	st := h.Level(0).Stats()
	// Every line evicted dirty must previously have been written: the
	// writeback count cannot exceed the store count.
	if st.Writebacks > st.Accesses {
		t.Errorf("writebacks %d exceed accesses %d", st.Writebacks, st.Accesses)
	}
	if st.Writebacks == 0 {
		t.Error("store-thrashing produced no writebacks")
	}
}
