// Package cache implements a set-associative, multi-level, write-back
// cache simulator. Caches are physically indexed and physically tagged,
// which is what makes the paper's §V.A.1 observation reproducible: with
// a 32 KB 4-way L1 (two page colours, as on the Cortex-A9), an array
// whose physical pages are unluckily coloured conflicts with itself even
// though it fits the cache.
package cache

import (
	"fmt"

	"montblanc/internal/mem"
	"montblanc/internal/units"
)

// Config describes one cache level. The JSON tags define the wire form
// used by platform spec files (see internal/platform.Spec).
type Config struct {
	Name          string `json:"name"`          // e.g. "L1d"
	Level         int    `json:"level"`         // 1-based
	Size          int    `json:"size"`          // bytes, power of two
	LineSize      int    `json:"line_size"`     // bytes, power of two
	Associativity int    `json:"associativity"` // ways; Size/LineSize must be divisible by it
	HitLatency    int    `json:"hit_latency"`   // cycles for a hit at this level
	Shared        bool   `json:"shared"`        // informational: shared between cores
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Size <= 0 || c.Size&(c.Size-1) != 0:
		return fmt.Errorf("cache %s: size %d not a positive power of two", c.Name, c.Size)
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("cache %s: line size %d not a positive power of two", c.Name, c.LineSize)
	case c.Associativity <= 0:
		return fmt.Errorf("cache %s: associativity %d", c.Name, c.Associativity)
	case (c.Size/c.LineSize)%c.Associativity != 0:
		return fmt.Errorf("cache %s: %d lines not divisible by %d ways",
			c.Name, c.Size/c.LineSize, c.Associativity)
	case c.HitLatency < 0:
		return fmt.Errorf("cache %s: negative hit latency", c.Name)
	}
	return nil
}

// Stats counts events at one level.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// MissRatio returns misses/accesses, or 0 when idle.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// level is the next-lower member of the hierarchy.
type level interface {
	access(lineAddr uint64, write bool) int
}

// Memory is the DRAM backstop of a hierarchy.
type Memory struct {
	Latency int // cycles per line fill
	stats   Stats
}

func (m *Memory) access(_ uint64, _ bool) int {
	m.stats.Accesses++
	m.stats.Misses++ // every DRAM access is a "miss" at this level
	return m.Latency
}

// Stats returns the DRAM access counts.
func (m *Memory) Stats() Stats { return m.stats }

// Cache is one simulated level.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	setBits   uint
	tags      []uint64
	valid     []bool
	dirty     []bool
	used      []uint64
	clock     uint64
	stats     Stats
	next      level
}

// New creates a cache level above next (another *Cache or *Memory).
func New(cfg Config, next level) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if next == nil {
		return nil, fmt.Errorf("cache %s: nil next level", cfg.Name)
	}
	nLines := cfg.Size / cfg.LineSize
	nSets := nLines / cfg.Associativity
	c := &Cache{
		cfg:   cfg,
		tags:  make([]uint64, nLines),
		valid: make([]bool, nLines),
		dirty: make([]bool, nLines),
		used:  make([]uint64, nLines),
		next:  next,
	}
	for 1<<c.lineShift < cfg.LineSize {
		c.lineShift++
	}
	for 1<<c.setBits < nSets {
		c.setBits++
	}
	c.setMask = uint64(nSets - 1)
	return c, nil
}

// Config returns the level configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the level's event counts.
func (c *Cache) Stats() Stats { return c.stats }

// access looks up the line containing pa, filling from below on a miss.
// It returns the total latency in cycles including lower levels.
func (c *Cache) access(pa uint64, write bool) int {
	c.stats.Accesses++
	c.clock++
	set := (pa >> c.lineShift) & c.setMask
	tag := pa >> (c.lineShift + c.setBits)
	base := int(set) * c.cfg.Associativity
	victim, victimUsed := base, ^uint64(0)
	for w := 0; w < c.cfg.Associativity; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.stats.Hits++
			c.used[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			return c.cfg.HitLatency
		}
		if !c.valid[i] {
			victim, victimUsed = i, 0
		} else if c.used[i] < victimUsed {
			victim, victimUsed = i, c.used[i]
		}
	}
	c.stats.Misses++
	cost := c.cfg.HitLatency + c.next.access(pa, false)
	if c.valid[victim] && c.dirty[victim] {
		// Write-back of the evicted dirty line. The latency is absorbed
		// by write buffers; we only count the event.
		c.stats.Writebacks++
	}
	c.tags[victim] = tag
	c.valid[victim] = true
	c.dirty[victim] = write
	c.used[victim] = c.clock
	return cost
}

// Flush invalidates all lines, counting dirty evictions as writebacks.
func (c *Cache) Flush() {
	for i := range c.valid {
		if c.valid[i] && c.dirty[i] {
			c.stats.Writebacks++
		}
		c.valid[i] = false
		c.dirty[i] = false
	}
}

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// String describes the level.
func (c *Cache) String() string {
	return fmt.Sprintf("%s(%s %d-way %dB lines, %d-cycle hit)",
		c.cfg.Name, units.Bytes(int64(c.cfg.Size)), c.cfg.Associativity,
		c.cfg.LineSize, c.cfg.HitLatency)
}

// Hierarchy bundles a TLB, a stack of cache levels (L1 first) and DRAM.
// All addresses entering Access are virtual; translation happens through
// the TLB/mapper before indexing, which is what exposes page-colouring.
type Hierarchy struct {
	tlb    *mem.TLB
	levels []*Cache
	mem    *Memory
}

// NewHierarchy builds a hierarchy from level configs (ordered L1 first),
// DRAM latency, and an optional TLB (nil means identity translation).
func NewHierarchy(cfgs []Config, memLatency int, tlb *mem.TLB) (*Hierarchy, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cache: hierarchy needs at least one level")
	}
	h := &Hierarchy{mem: &Memory{Latency: memLatency}, tlb: tlb}
	var below level = h.mem
	levels := make([]*Cache, len(cfgs))
	for i := len(cfgs) - 1; i >= 0; i-- {
		c, err := New(cfgs[i], below)
		if err != nil {
			return nil, err
		}
		levels[i] = c
		below = c
	}
	h.levels = levels
	return h, nil
}

// Access performs a load (write=false) or store (write=true) at virtual
// address va and returns the total latency in cycles, including any TLB
// miss penalty.
func (h *Hierarchy) Access(va uint64, write bool) int {
	pa := va
	cost := 0
	if h.tlb != nil {
		var tcyc int
		pa, tcyc = h.tlb.Translate(va)
		cost += tcyc
	}
	return cost + h.levels[0].access(pa, write)
}

// Level returns cache level i (0 = L1). It panics on out-of-range i.
func (h *Hierarchy) Level(i int) *Cache { return h.levels[i] }

// Depth returns the number of cache levels.
func (h *Hierarchy) Depth() int { return len(h.levels) }

// Memory returns the DRAM backstop.
func (h *Hierarchy) Memory() *Memory { return h.mem }

// L1HitLatency returns the hit latency of the first level, the baseline
// cost subtracted when converting access latency into stall cycles.
func (h *Hierarchy) L1HitLatency() int { return h.levels[0].cfg.HitLatency }

// Flush invalidates every level and flushes the TLB.
func (h *Hierarchy) Flush() {
	for _, l := range h.levels {
		l.Flush()
	}
	if h.tlb != nil {
		h.tlb.Flush()
	}
}

// ResetStats zeroes all counters (cache levels and DRAM) while keeping
// cache contents warm.
func (h *Hierarchy) ResetStats() {
	for _, l := range h.levels {
		l.ResetStats()
	}
	h.mem.stats = Stats{}
}
