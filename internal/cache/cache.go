// Package cache implements a set-associative, multi-level, write-back
// cache simulator. Caches are physically indexed and physically tagged,
// which is what makes the paper's §V.A.1 observation reproducible: with
// a 32 KB 4-way L1 (two page colours, as on the Cortex-A9), an array
// whose physical pages are unluckily coloured conflicts with itself even
// though it fits the cache.
package cache

import (
	"fmt"

	"montblanc/internal/mem"
	"montblanc/internal/units"
)

// Config describes one cache level. The JSON tags define the wire form
// used by platform spec files (see internal/platform.Spec).
type Config struct {
	Name          string `json:"name"`          // e.g. "L1d"
	Level         int    `json:"level"`         // 1-based
	Size          int    `json:"size"`          // bytes, power of two
	LineSize      int    `json:"line_size"`     // bytes, power of two
	Associativity int    `json:"associativity"` // ways; Size/LineSize must be divisible by it
	HitLatency    int    `json:"hit_latency"`   // cycles for a hit at this level
	Shared        bool   `json:"shared"`        // informational: shared between cores
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Size <= 0 || c.Size&(c.Size-1) != 0:
		return fmt.Errorf("cache %s: size %d not a positive power of two", c.Name, c.Size)
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("cache %s: line size %d not a positive power of two", c.Name, c.LineSize)
	case c.Associativity <= 0:
		return fmt.Errorf("cache %s: associativity %d", c.Name, c.Associativity)
	case (c.Size/c.LineSize)%c.Associativity != 0:
		return fmt.Errorf("cache %s: %d lines not divisible by %d ways",
			c.Name, c.Size/c.LineSize, c.Associativity)
	case c.HitLatency < 0:
		return fmt.Errorf("cache %s: negative hit latency", c.Name)
	}
	return nil
}

// Stats counts events at one level.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
}

// MissRatio returns misses/accesses, or 0 when idle.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// level is the next-lower member of the hierarchy.
type level interface {
	access(lineAddr uint64, write bool) int
}

// Memory is the DRAM backstop of a hierarchy.
type Memory struct {
	Latency int // cycles per line fill
	stats   Stats
}

func (m *Memory) access(_ uint64, _ bool) int {
	m.stats.Accesses++
	m.stats.Misses++ // every DRAM access is a "miss" at this level
	return m.Latency
}

// Stats returns the DRAM access counts.
func (m *Memory) Stats() Stats { return m.stats }

// Cache is one simulated level.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	setBits   uint
	tags      []uint64
	valid     []bool
	dirty     []bool
	used      []uint64
	clock     uint64
	stats     Stats
	next      level
}

// New creates a cache level above next (another *Cache or *Memory).
func New(cfg Config, next level) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if next == nil {
		return nil, fmt.Errorf("cache %s: nil next level", cfg.Name)
	}
	nLines := cfg.Size / cfg.LineSize
	nSets := nLines / cfg.Associativity
	c := &Cache{
		cfg:   cfg,
		tags:  make([]uint64, nLines),
		valid: make([]bool, nLines),
		dirty: make([]bool, nLines),
		used:  make([]uint64, nLines),
		next:  next,
	}
	for 1<<c.lineShift < cfg.LineSize {
		c.lineShift++
	}
	for 1<<c.setBits < nSets {
		c.setBits++
	}
	c.setMask = uint64(nSets - 1)
	return c, nil
}

// Config returns the level configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the level's event counts.
func (c *Cache) Stats() Stats { return c.stats }

// access looks up the line containing pa, filling from below on a miss.
// It returns the total latency in cycles including lower levels.
func (c *Cache) access(pa uint64, write bool) int {
	lat, _ := c.accessIdx(pa, write)
	return lat
}

// accessIdx is access returning also the line-array index now holding
// the touched line, so the batched path can bulk-account follow-up hits
// on the same line without re-scanning the set.
func (c *Cache) accessIdx(pa uint64, write bool) (latency, line int) {
	c.stats.Accesses++
	c.clock++
	set := (pa >> c.lineShift) & c.setMask
	tag := pa >> (c.lineShift + c.setBits)
	base := int(set) * c.cfg.Associativity
	victim, victimUsed := base, ^uint64(0)
	for w := 0; w < c.cfg.Associativity; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.stats.Hits++
			c.used[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			return c.cfg.HitLatency, i
		}
		if !c.valid[i] {
			victim, victimUsed = i, 0
		} else if c.used[i] < victimUsed {
			victim, victimUsed = i, c.used[i]
		}
	}
	c.stats.Misses++
	cost := c.cfg.HitLatency + c.next.access(pa, false)
	if c.valid[victim] && c.dirty[victim] {
		// Write-back of the evicted dirty line. The latency is absorbed
		// by write buffers; we only count the event.
		c.stats.Writebacks++
	}
	c.tags[victim] = tag
	c.valid[victim] = true
	c.dirty[victim] = write
	c.used[victim] = c.clock
	return cost, victim
}

// hitRun bulk-accounts n guaranteed hits on the resident line at index
// idx. It is exactly equivalent to n consecutive access calls on
// addresses within that line immediately after the call that touched
// it: each would hit (the line is most recently used and nothing
// intervenes), bump the clock, and refresh the LRU stamp.
func (c *Cache) hitRun(idx, n int, write bool) {
	c.stats.Accesses += uint64(n)
	c.stats.Hits += uint64(n)
	c.clock += uint64(n)
	c.used[idx] = c.clock
	if write {
		c.dirty[idx] = true
	}
}

// Flush invalidates all lines, counting dirty evictions as writebacks.
func (c *Cache) Flush() {
	for i := range c.valid {
		if c.valid[i] && c.dirty[i] {
			c.stats.Writebacks++
		}
		c.valid[i] = false
		c.dirty[i] = false
	}
}

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// String describes the level.
func (c *Cache) String() string {
	return fmt.Sprintf("%s(%s %d-way %dB lines, %d-cycle hit)",
		c.cfg.Name, units.Bytes(int64(c.cfg.Size)), c.cfg.Associativity,
		c.cfg.LineSize, c.cfg.HitLatency)
}

// Hierarchy bundles a TLB, a stack of cache levels (L1 first) and DRAM.
// All addresses entering Access are virtual; translation happens through
// the TLB/mapper before indexing, which is what exposes page-colouring.
type Hierarchy struct {
	tlb    *mem.TLB
	levels []*Cache
	mem    *Memory
}

// NewHierarchy builds a hierarchy from level configs (ordered L1 first),
// DRAM latency, and an optional TLB (nil means identity translation).
func NewHierarchy(cfgs []Config, memLatency int, tlb *mem.TLB) (*Hierarchy, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cache: hierarchy needs at least one level")
	}
	h := &Hierarchy{mem: &Memory{Latency: memLatency}, tlb: tlb}
	var below level = h.mem
	levels := make([]*Cache, len(cfgs))
	for i := len(cfgs) - 1; i >= 0; i-- {
		c, err := New(cfgs[i], below)
		if err != nil {
			return nil, err
		}
		levels[i] = c
		below = c
	}
	h.levels = levels
	return h, nil
}

// Access performs a load (write=false) or store (write=true) at virtual
// address va and returns the total latency in cycles, including any TLB
// miss penalty.
func (h *Hierarchy) Access(va uint64, write bool) int {
	pa := va
	cost := 0
	if h.tlb != nil {
		var tcyc int
		pa, tcyc = h.tlb.Translate(va)
		cost += tcyc
	}
	return cost + h.levels[0].access(pa, write)
}

// RunResult aggregates the outcome of a batched access run.
type RunResult struct {
	Accesses uint64 // accesses performed (== the requested count)
	Latency  uint64 // sum of per-access latencies in cycles
	Extra    uint64 // sum of per-access latency beyond the L1 hit cost
}

// Add accumulates other into r.
func (r *RunResult) Add(other RunResult) {
	r.Accesses += other.Accesses
	r.Latency += other.Latency
	r.Extra += other.Extra
}

// accessInto performs one scalar Access and folds it into rr.
func (h *Hierarchy) accessInto(rr *RunResult, va uint64, write bool) {
	lat := h.Access(va, write)
	rr.Accesses++
	rr.Latency += uint64(lat)
	if extra := lat - h.levels[0].cfg.HitLatency; extra > 0 {
		rr.Extra += uint64(extra)
	}
}

// AccessRun performs count accesses at va, va+strideBytes,
// va+2*strideBytes, ... and returns the aggregate latency. It is
// exactly equivalent — same per-level Stats, same TLB counters, same
// replacement state, same total latency — to the scalar loop
//
//	for i := 0; i < count; i++ {
//		h.Access(va+uint64(i*strideBytes), write)
//	}
//
// but exploits the structure of ascending strided runs at two levels:
// the VA→PA translation (and TLB lookup) runs once per page with the
// page's remaining accesses bulk-accounted as guaranteed TLB hits, and
// when the stride is smaller than the L1 line size the set machinery
// runs once per line with the remaining same-line accesses
// bulk-accounted as guaranteed L1 hits. Zero and negative strides are
// supported (a zero stride is count touches of one address; negative
// strides fall back to the scalar loop).
func (h *Hierarchy) AccessRun(va uint64, strideBytes, count int, write bool) RunResult {
	var rr RunResult
	if count <= 0 {
		return rr
	}
	if strideBytes < 0 {
		// Descending runs are not line/page-segmentable front-to-back;
		// keep them on the reference path.
		for i := 0; i < count; i++ {
			h.accessInto(&rr, va, write)
			va -= uint64(-strideBytes)
		}
		return rr
	}
	l1 := h.levels[0]
	l1Hit := uint64(l1.cfg.HitLatency)
	lineSize := uint64(l1.cfg.LineSize)
	stride := uint64(strideBytes)
	for j := 0; j < count; {
		vaj := va + uint64(j)*stride
		// Page segment: the accesses from j onward that share vaj's page.
		inPage := count - j
		var (
			pa   uint64
			tcyc int
		)
		if h.tlb != nil {
			if stride > 0 {
				left := mem.PageSize - vaj%mem.PageSize // bytes to page end
				if n := int((left-1)/stride) + 1; n < inPage {
					inPage = n
				}
			}
			pa, tcyc = h.tlb.TranslateRun(vaj, inPage)
		} else {
			pa = vaj
		}
		// Line segments within the page. The first access of each line
		// pays the full set lookup (and, for the first line, the page's
		// translation cost); follow-up same-line accesses are guaranteed
		// L1 hits and are accounted in bulk.
		for done := 0; done < inPage; {
			paCur := pa + uint64(done)*stride
			k := inPage - done
			if stride == 0 {
				// All remaining accesses touch this very address.
			} else if stride < lineSize {
				left := lineSize - paCur%lineSize // bytes to line end
				if n := int((left-1)/stride) + 1; n < k {
					k = n
				}
			} else {
				k = 1
			}
			lat, line := l1.accessIdx(paCur, write)
			if done == 0 {
				lat += tcyc
			}
			rr.Accesses++
			rr.Latency += uint64(lat)
			if uint64(lat) > l1Hit {
				rr.Extra += uint64(lat) - l1Hit
			}
			if k > 1 {
				l1.hitRun(line, k-1, write)
				rr.Accesses += uint64(k - 1)
				rr.Latency += uint64(k-1) * l1Hit
			}
			done += k
		}
		j += inPage
	}
	return rr
}

// Level returns cache level i (0 = L1). It panics on out-of-range i.
func (h *Hierarchy) Level(i int) *Cache { return h.levels[i] }

// Depth returns the number of cache levels.
func (h *Hierarchy) Depth() int { return len(h.levels) }

// Memory returns the DRAM backstop.
func (h *Hierarchy) Memory() *Memory { return h.mem }

// L1HitLatency returns the hit latency of the first level, the baseline
// cost subtracted when converting access latency into stall cycles.
func (h *Hierarchy) L1HitLatency() int { return h.levels[0].cfg.HitLatency }

// Flush invalidates every level and flushes the TLB.
func (h *Hierarchy) Flush() {
	for _, l := range h.levels {
		l.Flush()
	}
	if h.tlb != nil {
		h.tlb.Flush()
	}
}

// ResetStats zeroes all counters — cache levels, DRAM and the TLB —
// while keeping cache contents and translations warm. Every counter the
// batched path bulk-updates is covered, so a reset-then-run observes
// only the run.
func (h *Hierarchy) ResetStats() {
	for _, l := range h.levels {
		l.ResetStats()
	}
	h.mem.stats = Stats{}
	if h.tlb != nil {
		h.tlb.ResetStats()
	}
}

// TLBStats returns the TLB hit/miss counters, with present=false when
// the hierarchy translates identically (no TLB attached).
func (h *Hierarchy) TLBStats() (hits, misses uint64, present bool) {
	if h.tlb == nil {
		return 0, 0, false
	}
	hits, misses = h.tlb.Stats()
	return hits, misses, true
}

// HierarchyStats is a combined snapshot of every counter in a
// hierarchy: per-level cache Stats (L1 first), the DRAM backstop, and
// the TLB. It is the unit of periodic-pass memoization: the counter
// movement of one verified-steady pass, replayed multiplicatively.
type HierarchyStats struct {
	Levels    []Stats
	Memory    Stats
	TLBHits   uint64
	TLBMisses uint64
}

// ReadStats fills s with the hierarchy's current counters, reusing
// s.Levels when already sized.
func (h *Hierarchy) ReadStats(s *HierarchyStats) {
	if cap(s.Levels) < len(h.levels) {
		s.Levels = make([]Stats, len(h.levels))
	}
	s.Levels = s.Levels[:len(h.levels)]
	for i, l := range h.levels {
		s.Levels[i] = l.stats
	}
	s.Memory = h.mem.stats
	s.TLBHits, s.TLBMisses = 0, 0
	if h.tlb != nil {
		s.TLBHits, s.TLBMisses = h.tlb.Stats()
	}
}

// sub sets s = a - b per counter (a must be a later snapshot of the
// same hierarchy than b).
func (s *HierarchyStats) sub(a, b *HierarchyStats) {
	if cap(s.Levels) < len(a.Levels) {
		s.Levels = make([]Stats, len(a.Levels))
	}
	s.Levels = s.Levels[:len(a.Levels)]
	for i := range a.Levels {
		s.Levels[i] = subStats(a.Levels[i], b.Levels[i])
	}
	s.Memory = subStats(a.Memory, b.Memory)
	s.TLBHits = a.TLBHits - b.TLBHits
	s.TLBMisses = a.TLBMisses - b.TLBMisses
}

// Delta sets s to the counter movement between snapshots before and
// after a region: s = after - before.
func (s *HierarchyStats) Delta(after, before *HierarchyStats) { s.sub(after, before) }

func subStats(a, b Stats) Stats {
	return Stats{
		Accesses:   a.Accesses - b.Accesses,
		Hits:       a.Hits - b.Hits,
		Misses:     a.Misses - b.Misses,
		Writebacks: a.Writebacks - b.Writebacks,
	}
}

// AddStats bulk-advances every counter by d, times-fold. It exists for
// verified periodic-pass replay (see CACHE.md): once a pass is proven
// to leave the hierarchy's canonical state (AppendState) at a fixed
// point, further identical passes move only the counters, by exactly d
// each — replaying them is legal and exact. Replacement clocks are not
// advanced: they are strictly increasing and only their relative order
// is observable, so subsequent accesses behave identically either way.
func (h *Hierarchy) AddStats(d *HierarchyStats, times uint64) {
	for i, l := range h.levels {
		if i >= len(d.Levels) {
			break
		}
		dl := d.Levels[i]
		l.stats.Accesses += dl.Accesses * times
		l.stats.Hits += dl.Hits * times
		l.stats.Misses += dl.Misses * times
		l.stats.Writebacks += dl.Writebacks * times
	}
	h.mem.stats.Accesses += d.Memory.Accesses * times
	h.mem.stats.Hits += d.Memory.Hits * times
	h.mem.stats.Misses += d.Memory.Misses * times
	h.mem.stats.Writebacks += d.Memory.Writebacks * times
	if h.tlb != nil {
		h.tlb.AddStats(d.TLBHits*times, d.TLBMisses*times)
	}
}

// AppendState appends a canonical encoding of the hierarchy's
// replacement state (every cache level, then the TLB) to dst and
// returns the extended slice. Two hierarchies with equal encodings —
// and equal configuration and backing mapper state — behave
// identically for any subsequent access sequence: the encoding captures
// line contents, validity, dirtiness and relative LRU ranks, which is
// all the replacement machinery's decisions depend on. Absolute clock
// values are excluded, so a periodic pass over a fixed working set
// reaches a detectable fixed point. Counters are excluded too: state
// equality is about future behaviour, not history.
func (h *Hierarchy) AppendState(dst []uint64) []uint64 {
	for _, l := range h.levels {
		dst = l.appendState(dst)
	}
	if h.tlb != nil {
		dst = h.tlb.AppendState(dst)
	}
	return dst
}

// StateWords returns the length of the AppendState encoding, the unit
// callers weigh a pass against when deciding whether fixed-point
// detection is worth its snapshot cost.
func (h *Hierarchy) StateWords() int {
	n := 0
	for _, l := range h.levels {
		n += 2 * len(l.tags)
	}
	if h.tlb != nil {
		n += h.tlb.StateWords()
	}
	return n
}

// appendState encodes one level: per line (in way order) the tag and a
// packed word of the line's LRU rank within its set, validity and
// dirtiness. Way order is part of the encoding — conservative, since
// victim selection scans ways in order — so equal encodings guarantee
// identical future behaviour.
func (c *Cache) appendState(dst []uint64) []uint64 {
	assoc := c.cfg.Associativity
	for base := 0; base < len(c.tags); base += assoc {
		for w := 0; w < assoc; w++ {
			i := base + w
			rank := uint64(0)
			for v := 0; v < assoc; v++ {
				if c.used[base+v] < c.used[i] {
					rank++
				}
			}
			flags := rank << 2
			if c.valid[i] {
				flags |= 2
			}
			if c.dirty[i] {
				flags |= 1
			}
			dst = append(dst, c.tags[i], flags)
		}
	}
	return dst
}
