// Package autotune implements the systematic tuning methodology the
// paper argues for (§V.B, §VI.B): "optimization variations ... are then
// benchmarked and the most suitable for the platform selected", and
// because ARM sweet spots are narrow and counter-intuitive, "such tuning
// process will have to be fully automated".
//
// A Space declares the tunable parameters (e.g. unroll degree 1..12), an
// Objective measures one configuration (e.g. simulated cycles per
// point), and four search strategies of increasing sophistication pick
// the best configuration: exhaustive, random, hill climbing, and a
// genetic algorithm in the spirit of Tikir et al. (the paper's [14]).
package autotune

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"montblanc/internal/xrand"
)

// Param is one tunable dimension with its candidate values.
type Param struct {
	Name   string
	Values []int
}

// Space is the cartesian product of its parameters.
type Space struct {
	Params []Param
}

// Validate reports an invalid space.
func (s Space) Validate() error {
	if len(s.Params) == 0 {
		return errors.New("autotune: empty space")
	}
	seen := map[string]bool{}
	for _, p := range s.Params {
		if p.Name == "" {
			return errors.New("autotune: unnamed parameter")
		}
		if seen[p.Name] {
			return fmt.Errorf("autotune: duplicate parameter %q", p.Name)
		}
		seen[p.Name] = true
		if len(p.Values) == 0 {
			return fmt.Errorf("autotune: parameter %q has no values", p.Name)
		}
	}
	return nil
}

// Size returns the number of configurations in the space.
func (s Space) Size() int {
	n := 1
	for _, p := range s.Params {
		n *= len(p.Values)
	}
	return n
}

// Config is a concrete assignment of parameter values by name.
type Config map[string]int

// at materializes the configuration for value indices idx.
func (s Space) at(idx []int) Config {
	cfg := make(Config, len(s.Params))
	for i, p := range s.Params {
		cfg[p.Name] = p.Values[idx[i]]
	}
	return cfg
}

// Objective scores a configuration; lower is better (e.g. cycles).
type Objective func(Config) (float64, error)

// Eval records one objective evaluation.
type Eval struct {
	Config Config
	Score  float64
}

// Result is the outcome of a search.
type Result struct {
	Best        Config
	BestScore   float64
	Evaluations int
	Trace       []Eval // in evaluation order
}

// searchState accumulates evaluations and tracks the incumbent.
type searchState struct {
	obj  Objective
	res  Result
	memo map[string]float64
}

func newSearchState(obj Objective) *searchState {
	return &searchState{obj: obj, res: Result{BestScore: math.Inf(1)}, memo: map[string]float64{}}
}

func key(cfg Config) string {
	names := make([]string, 0, len(cfg))
	for n := range cfg {
		names = append(names, n)
	}
	sort.Strings(names)
	k := ""
	for _, n := range names {
		k += fmt.Sprintf("%s=%d;", n, cfg[n])
	}
	return k
}

// eval scores cfg, memoizing duplicates (duplicates still consume
// budget slots in searches that count attempts, but are not re-run).
func (st *searchState) eval(cfg Config) (float64, error) {
	k := key(cfg)
	if v, ok := st.memo[k]; ok {
		return v, nil
	}
	v, err := st.obj(cfg)
	if err != nil {
		return 0, err
	}
	st.memo[k] = v
	st.res.Evaluations++
	st.res.Trace = append(st.res.Trace, Eval{Config: cfg, Score: v})
	if v < st.res.BestScore {
		st.res.BestScore = v
		st.res.Best = cfg
	}
	return v, nil
}

// Exhaustive evaluates every configuration — the paper's baseline: "may
// have to explore more systematically parameter space, rather than being
// guided by developers' intuition".
func Exhaustive(s Space, obj Objective) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	st := newSearchState(obj)
	idx := make([]int, len(s.Params))
	for {
		if _, err := st.eval(s.at(idx)); err != nil {
			return Result{}, err
		}
		// Odometer increment.
		d := 0
		for d < len(idx) {
			idx[d]++
			if idx[d] < len(s.Params[d].Values) {
				break
			}
			idx[d] = 0
			d++
		}
		if d == len(idx) {
			return st.res, nil
		}
	}
}

// RandomSearch samples budget random configurations.
func RandomSearch(s Space, obj Objective, budget int, seed uint64) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if budget <= 0 {
		return Result{}, errors.New("autotune: non-positive budget")
	}
	rng := xrand.New(seed)
	st := newSearchState(obj)
	idx := make([]int, len(s.Params))
	for i := 0; i < budget; i++ {
		for d := range idx {
			idx[d] = rng.Intn(len(s.Params[d].Values))
		}
		if _, err := st.eval(s.at(idx)); err != nil {
			return Result{}, err
		}
	}
	return st.res, nil
}

// HillClimb performs steepest-descent over single-parameter moves with
// random restarts until the budget is exhausted.
func HillClimb(s Space, obj Objective, budget int, seed uint64) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if budget <= 0 {
		return Result{}, errors.New("autotune: non-positive budget")
	}
	rng := xrand.New(seed)
	st := newSearchState(obj)
	spent := 0
	for spent < budget {
		cur := make([]int, len(s.Params))
		for d := range cur {
			cur[d] = rng.Intn(len(s.Params[d].Values))
		}
		curScore, err := st.eval(s.at(cur))
		if err != nil {
			return Result{}, err
		}
		spent++
		improved := true
		for improved && spent < budget {
			improved = false
			bestD, bestV, bestScore := -1, 0, curScore
			for d := 0; d < len(cur) && spent < budget; d++ {
				for _, dv := range []int{-1, 1} {
					v := cur[d] + dv
					if v < 0 || v >= len(s.Params[d].Values) {
						continue
					}
					cand := append([]int(nil), cur...)
					cand[d] = v
					score, err := st.eval(s.at(cand))
					if err != nil {
						return Result{}, err
					}
					spent++
					if score < bestScore {
						bestD, bestV, bestScore = d, v, score
					}
					if spent >= budget {
						break
					}
				}
			}
			if bestD >= 0 {
				cur[bestD] = bestV
				curScore = bestScore
				improved = true
			}
		}
	}
	return st.res, nil
}

// GeneticOptions configures the genetic search.
type GeneticOptions struct {
	Population  int // default 16
	Generations int // default 12
	MutationP   float64
	Seed        uint64
}

func (o GeneticOptions) withDefaults() GeneticOptions {
	if o.Population <= 1 {
		o.Population = 16
	}
	if o.Generations <= 0 {
		o.Generations = 12
	}
	if o.MutationP <= 0 || o.MutationP > 1 {
		o.MutationP = 0.15
	}
	return o
}

// Genetic runs a generational GA with tournament selection, uniform
// crossover and per-gene mutation — the approach of the paper's [14]
// (Tikir et al., "A genetic algorithms approach to modeling the
// performance of memory-bound computations").
func Genetic(s Space, obj Objective, opts GeneticOptions) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	opts = opts.withDefaults()
	rng := xrand.New(opts.Seed)
	st := newSearchState(obj)

	type indiv struct {
		genes []int
		score float64
	}
	pop := make([]indiv, opts.Population)
	for i := range pop {
		g := make([]int, len(s.Params))
		for d := range g {
			g[d] = rng.Intn(len(s.Params[d].Values))
		}
		score, err := st.eval(s.at(g))
		if err != nil {
			return Result{}, err
		}
		pop[i] = indiv{genes: g, score: score}
	}

	tournament := func() indiv {
		a, b := pop[rng.Intn(len(pop))], pop[rng.Intn(len(pop))]
		if a.score <= b.score {
			return a
		}
		return b
	}

	for gen := 0; gen < opts.Generations; gen++ {
		next := make([]indiv, 0, len(pop))
		// Elitism: carry the incumbent.
		bestIdx := 0
		for i := range pop {
			if pop[i].score < pop[bestIdx].score {
				bestIdx = i
			}
		}
		next = append(next, pop[bestIdx])
		for len(next) < len(pop) {
			p1, p2 := tournament(), tournament()
			child := make([]int, len(s.Params))
			for d := range child {
				if rng.Float64() < 0.5 {
					child[d] = p1.genes[d]
				} else {
					child[d] = p2.genes[d]
				}
				if rng.Float64() < opts.MutationP {
					child[d] = rng.Intn(len(s.Params[d].Values))
				}
			}
			score, err := st.eval(s.at(child))
			if err != nil {
				return Result{}, err
			}
			next = append(next, indiv{genes: child, score: score})
		}
		pop = next
	}
	return st.res, nil
}
