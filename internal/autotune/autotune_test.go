package autotune

import (
	"errors"
	"math"
	"testing"

	"montblanc/internal/magicfilter"
	"montblanc/internal/platform"
)

func unrollSpace() Space {
	vals := make([]int, 12)
	for i := range vals {
		vals[i] = i + 1
	}
	return Space{Params: []Param{{Name: "unroll", Values: vals}}}
}

func twoDSpace() Space {
	return Space{Params: []Param{
		{Name: "x", Values: []int{0, 1, 2, 3, 4, 5, 6, 7}},
		{Name: "y", Values: []int{0, 1, 2, 3, 4, 5, 6, 7}},
	}}
}

// Convex bowl with minimum at (5, 2).
func bowl(cfg Config) (float64, error) {
	dx := float64(cfg["x"] - 5)
	dy := float64(cfg["y"] - 2)
	return dx*dx + dy*dy, nil
}

func TestSpaceValidate(t *testing.T) {
	if err := (Space{}).Validate(); err == nil {
		t.Error("empty space accepted")
	}
	if err := (Space{Params: []Param{{Name: "", Values: []int{1}}}}).Validate(); err == nil {
		t.Error("unnamed parameter accepted")
	}
	if err := (Space{Params: []Param{{Name: "a", Values: nil}}}).Validate(); err == nil {
		t.Error("valueless parameter accepted")
	}
	dup := Space{Params: []Param{
		{Name: "a", Values: []int{1}},
		{Name: "a", Values: []int{2}},
	}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate parameter accepted")
	}
	if err := twoDSpace().Validate(); err != nil {
		t.Error(err)
	}
}

func TestSpaceSize(t *testing.T) {
	if s := twoDSpace().Size(); s != 64 {
		t.Errorf("Size = %d, want 64", s)
	}
	if s := unrollSpace().Size(); s != 12 {
		t.Errorf("Size = %d, want 12", s)
	}
}

func TestExhaustiveFindsGlobalMinimum(t *testing.T) {
	res, err := Exhaustive(twoDSpace(), bowl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best["x"] != 5 || res.Best["y"] != 2 {
		t.Errorf("best = %v", res.Best)
	}
	if res.BestScore != 0 {
		t.Errorf("best score = %v", res.BestScore)
	}
	if res.Evaluations != 64 {
		t.Errorf("evaluations = %d, want 64", res.Evaluations)
	}
}

func TestExhaustiveCoversEveryConfigOnce(t *testing.T) {
	seen := map[int]int{}
	obj := func(cfg Config) (float64, error) {
		seen[cfg["x"]*8+cfg["y"]]++
		return 0, nil
	}
	if _, err := Exhaustive(twoDSpace(), obj); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 64 {
		t.Fatalf("covered %d configs, want 64", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("config %d evaluated %d times", k, n)
		}
	}
}

func TestExhaustivePropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := Exhaustive(unrollSpace(), func(Config) (float64, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestRandomSearchRespectsBudgetAndSeed(t *testing.T) {
	res1, err := RandomSearch(twoDSpace(), bowl, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Evaluations > 20 {
		t.Errorf("evaluations = %d > budget", res1.Evaluations)
	}
	res2, err := RandomSearch(twoDSpace(), bowl, 20, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res1.BestScore != res2.BestScore || key(res1.Best) != key(res2.Best) {
		t.Error("same seed produced different results")
	}
	if _, err := RandomSearch(twoDSpace(), bowl, 0, 1); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestHillClimbFindsBowlMinimum(t *testing.T) {
	res, err := HillClimb(twoDSpace(), bowl, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore != 0 {
		t.Errorf("hill climb missed the convex minimum: %v (score %v)",
			res.Best, res.BestScore)
	}
}

func TestHillClimbBudget(t *testing.T) {
	evals := 0
	obj := func(cfg Config) (float64, error) {
		evals++
		return bowl(cfg)
	}
	if _, err := HillClimb(twoDSpace(), obj, 30, 3); err != nil {
		t.Fatal(err)
	}
	if evals > 30 {
		t.Errorf("objective called %d times, budget 30", evals)
	}
	if _, err := HillClimb(twoDSpace(), bowl, -1, 3); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestGeneticConvergesOnBowl(t *testing.T) {
	res, err := Genetic(twoDSpace(), bowl, GeneticOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestScore > 1 {
		t.Errorf("GA best score = %v, want <= 1", res.BestScore)
	}
}

func TestGeneticDeterministicBySeed(t *testing.T) {
	a, err := Genetic(twoDSpace(), bowl, GeneticOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Genetic(twoDSpace(), bowl, GeneticOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.BestScore != b.BestScore || key(a.Best) != key(b.Best) {
		t.Error("same seed produced different GA results")
	}
}

func TestGeneticDefaultsApplied(t *testing.T) {
	opts := GeneticOptions{}.withDefaults()
	if opts.Population != 16 || opts.Generations != 12 || opts.MutationP != 0.15 {
		t.Errorf("defaults = %+v", opts)
	}
}

func TestTraceRecordsBestEver(t *testing.T) {
	res, err := RandomSearch(twoDSpace(), bowl, 30, 9)
	if err != nil {
		t.Fatal(err)
	}
	min := math.Inf(1)
	for _, e := range res.Trace {
		if e.Score < min {
			min = e.Score
		}
	}
	if res.BestScore != min {
		t.Errorf("BestScore %v != min of trace %v", res.BestScore, min)
	}
}

// End-to-end §V.B scenario: tune the magicfilter unroll degree on both
// platforms. All strategies must find the platform-specific optimum —
// and the optima must differ between architectures, the paper's reason
// auto-tuning is a must.
func TestMagicfilterTuning(t *testing.T) {
	const n = 2048
	objFor := func(p *platform.Platform) Objective {
		return func(cfg Config) (float64, error) {
			r, err := magicfilter.MeasureVariant(p, n, cfg["unroll"])
			if err != nil {
				return 0, err
			}
			return r.CyclesPerPoint, nil
		}
	}
	space := unrollSpace()

	nehEx, err := Exhaustive(space, objFor(platform.XeonX5550()))
	if err != nil {
		t.Fatal(err)
	}
	tegEx, err := Exhaustive(space, objFor(platform.Tegra2Node()))
	if err != nil {
		t.Fatal(err)
	}
	if nehEx.Best["unroll"] == tegEx.Best["unroll"] {
		t.Errorf("both platforms tuned to unroll=%d; paper expects different optima",
			nehEx.Best["unroll"])
	}
	if u := tegEx.Best["unroll"]; u < 3 || u > 7 {
		t.Errorf("Tegra2 optimum unroll = %d, want in the narrow [3,7] band", u)
	}
	if u := nehEx.Best["unroll"]; u < 8 {
		t.Errorf("Nehalem optimum unroll = %d, want deep unrolling (>=8)", u)
	}

	// Hill climbing on the convex cycle curve matches exhaustive search
	// at a fraction of the cost.
	tegHC, err := HillClimb(space, objFor(platform.Tegra2Node()), 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tegHC.BestScore > tegEx.BestScore*1.05 {
		t.Errorf("hill climb score %.1f far from optimum %.1f",
			tegHC.BestScore, tegEx.BestScore)
	}

	// GA converges too (the [14] approach).
	tegGA, err := Genetic(space, objFor(platform.Tegra2Node()), GeneticOptions{
		Population: 8, Generations: 6, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tegGA.BestScore > tegEx.BestScore*1.1 {
		t.Errorf("GA score %.1f far from optimum %.1f", tegGA.BestScore, tegEx.BestScore)
	}
}
