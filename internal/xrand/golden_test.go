package xrand

import "testing"

// Golden known-answer vectors for the PRNG every simulator depends
// on. Any change to the generator — seeding, state transition, output
// scrambler, or the derived Intn/Float64/Perm/Split recipes — shifts
// event schedules, placements and shuffles everywhere, which shows up
// as golden-file diffs far from the cause. These tests pin the stream
// itself so drift fails here, with the culprit named.

// TestSplitmix64SeedExpansion checks New's seed expansion against the
// published splitmix64 reference sequence (Vigna,
// https://prng.di.unimi.it/splitmix64.c): for seed 0 the first four
// outputs are fixed constants reproduced by every conforming
// implementation. This is the one vector verifiable against an
// external source rather than against ourselves.
func TestSplitmix64SeedExpansion(t *testing.T) {
	want := [4]uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
	}
	r := New(0)
	if r.s != want {
		t.Errorf("New(0) state = %#016x, want splitmix64 reference %#016x", r.s, want)
	}
}

// kat pins the first outputs of each public stream for fixed seeds.
// Values were generated from this implementation and frozen; they are
// the contract now.
var kat = []struct {
	seed    uint64
	uint64s []uint64
	floats  []float64
	intn100 []int
	perm8   []int
	// splitFirst is Split()'s first output; parentNext proves Split
	// advanced the parent by exactly one step.
	splitFirst, parentNext uint64
}{
	{
		seed: 0,
		uint64s: []uint64{
			0x99ec5f36cb75f2b4, 0xbf6e1f784956452a, 0x1a5f849d4933e6e0, 0x6aa594f1262d2d2c,
			0xbba5ad4a1f842e59, 0xffef8375d9ebcaca, 0x6c160deed2f54c98, 0x8920ad648fc30a3f,
		},
		floats:     []float64{0.6012629994179048, 0.7477740925472398, 0.10301998939503632, 0.4165890778296456},
		intn100:    []int{20, 82, 68, 32, 37, 98, 44, 3},
		perm8:      []int{3, 0, 6, 1, 2, 7, 5, 4},
		splitFirst: 0x4c94e4a98a1709eb, parentNext: 0xbf6e1f784956452a,
	},
	{
		seed: 1,
		uint64s: []uint64{
			0xb3f2af6d0fc710c5, 0x853b559647364cea, 0x92f89756082a4514, 0x642e1c7bc266a3a7,
			0xb27a48e29a233673, 0x24c123126ffda722, 0x123004ef8df510e6, 0x61954dcc47b1e89d,
		},
		floats:     []float64{0.7029218331588505, 0.5204366199388569, 0.5741057000197225, 0.39132860204190445},
		intn100:    []int{57, 22, 0, 83, 71, 62, 86, 29},
		perm8:      []int{7, 0, 1, 4, 3, 2, 6, 5},
		splitFirst: 0x2c83f301eb3f9c90, parentNext: 0x853b559647364cea,
	},
	{
		seed: 42,
		uint64s: []uint64{
			0x15780b2e0c2ec716, 0x6104d9866d113a7e, 0xae17533239e499a1, 0xecb8ad4703b360a1,
			0xfde6dc7fe2ec5e64, 0xc50da53101795238, 0xb82154855a65ddb2, 0xd99a2743ebe60087,
		},
		floats:     []float64{0.08386297105988216, 0.3789802506626686, 0.6800434110281394, 0.9246929453253876},
		intn100:    []int{42, 2, 9, 93, 76, 84, 54, 7},
		perm8:      []int{7, 2, 4, 0, 3, 5, 1, 6},
		splitFirst: 0x8ee445d14631c453, parentNext: 0x6104d9866d113a7e,
	},
	{
		seed: 0x9e3779b97f4a7c15, // the splitmix64 golden-ratio increment itself
		uint64s: []uint64{
			0x422ea740d0977210, 0xe062b061b42e2928, 0x5a071fc5930841b6, 0x01334ef8ed3cc2bd,
			0xe45cbd6a2d9e96db, 0x3bc1fe841a5f292f, 0x60001d95ebbbd8e6, 0xa0aee00b5b303762,
		},
		floats:     []float64{0.2585243733634266, 0.8765058744940509, 0.35167120526878737, 0.004689155362245678},
		intn100:    []int{52, 12, 62, 33, 27, 87, 82, 46},
		perm8:      []int{2, 7, 1, 6, 3, 4, 5, 0},
		splitFirst: 0x0ab0a74280d4005c, parentNext: 0xe062b061b42e2928,
	},
	{
		seed: 0xdeadbeefcafef00d,
		uint64s: []uint64{
			0x9e32cfb5bb93eebb, 0x16006bd9d4ac0014, 0x8ada5d6d34b6538e, 0x7c327ca32346a238,
			0xc43a6d6a3492ced2, 0xdb639ecb036a9c04, 0xc5a4b301c52fcfa4, 0xbcc5e0efaa8ded95,
		},
		floats:     []float64{0.617962819927541, 0.08594392841466458, 0.5423944846740707, 0.4851453684125553},
		intn100:    []int{95, 60, 82, 44, 98, 28, 76, 85},
		perm8:      []int{1, 6, 5, 2, 4, 0, 7, 3},
		splitFirst: 0xeca2c753961c3280, parentNext: 0x16006bd9d4ac0014,
	},
}

func TestGoldenUint64(t *testing.T) {
	for _, k := range kat {
		r := New(k.seed)
		for i, want := range k.uint64s {
			if got := r.Uint64(); got != want {
				t.Errorf("seed %#x: Uint64 #%d = %#016x, want %#016x", k.seed, i, got, want)
			}
		}
	}
}

func TestGoldenFloat64(t *testing.T) {
	for _, k := range kat {
		r := New(k.seed)
		for i, want := range k.floats {
			if got := r.Float64(); got != want {
				t.Errorf("seed %#x: Float64 #%d = %v, want %v", k.seed, i, got, want)
			}
		}
	}
}

func TestGoldenIntn(t *testing.T) {
	for _, k := range kat {
		r := New(k.seed)
		for i, want := range k.intn100 {
			if got := r.Intn(100); got != want {
				t.Errorf("seed %#x: Intn(100) #%d = %d, want %d", k.seed, i, got, want)
			}
		}
	}
}

func TestGoldenPerm(t *testing.T) {
	for _, k := range kat {
		got := New(k.seed).Perm(8)
		for i := range got {
			if got[i] != k.perm8[i] {
				t.Errorf("seed %#x: Perm(8) = %v, want %v", k.seed, got, k.perm8)
				break
			}
		}
	}
}

func TestGoldenSplit(t *testing.T) {
	for _, k := range kat {
		r := New(k.seed)
		s := r.Split()
		if got := s.Uint64(); got != k.splitFirst {
			t.Errorf("seed %#x: Split().Uint64() = %#016x, want %#016x", k.seed, got, k.splitFirst)
		}
		if got := r.Uint64(); got != k.parentNext {
			t.Errorf("seed %#x: parent after Split advanced wrong: %#016x, want %#016x", k.seed, got, k.parentNext)
		}
	}
}

// TestGoldenJitter pins the backoff-jitter stream: one Uint64 per
// draw, reduced modulo the bound like Intn. The resilient HTTP client
// (internal/service/client) derives its retry schedule from this, so
// drift here would silently change every client's timing behavior.
func TestGoldenJitter(t *testing.T) {
	want := []struct {
		seed   uint64
		values []int64
	}{
		{0, []int64{253066420, 169335082, 846508768, 626143532}},
		{42, []int64{402558742, 964543102, 248559009, 182124193}},
	}
	for _, k := range want {
		seed, ws := k.seed, k.values
		r := New(seed)
		for i, w := range ws {
			if got := r.Jitter(1_000_000_000); got != w {
				t.Errorf("seed %d: Jitter #%d = %d, want %d", seed, i, got, w)
			}
		}
	}
	r := New(0)
	if got := r.Jitter(0); got != 0 {
		t.Errorf("Jitter(0) = %d, want 0", got)
	}
	if got := r.Jitter(-5); got != 0 {
		t.Errorf("Jitter(-5) = %d, want 0", got)
	}
	if got := r.Jitter(1); got != 0 {
		t.Errorf("Jitter(1) = %d, want 0", got)
	}
}
