// Package xrand provides a small, fast, deterministic pseudo-random
// number generator used by every simulator in this repository.
//
// The paper (§V.A.1) stresses that benchmarking on ARM platforms must be
// "thoroughly randomized to avoid experimental bias"; at the same time a
// reproduction must be replayable. xrand reconciles the two: randomized
// orders and placements everywhere, but always under an explicit seed.
//
// The generator is xoshiro256**, seeded through splitmix64 so that even
// small or correlated seeds produce well-mixed state.
package xrand

import "math"

// Rand is a deterministic PRNG. The zero value is not valid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r. The derived stream is a
// deterministic function of r's current state; r advances by one step.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *Rand) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Jitter returns a uniform duration in [0, d) for randomized backoff
// ("full jitter"): retry storms decorrelate because no two clients
// draw the same schedule, yet a seeded client replays its delays
// exactly. It consumes one Uint64; d <= 0 returns 0. The reduction is
// the same modulo recipe as Intn, so the stream is pinned by the
// golden vectors.
func (r *Rand) Jitter(d int64) int64 {
	if d <= 0 {
		return 0
	}
	return int64(r.Uint64() % uint64(d))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap
// (Fisher-Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
