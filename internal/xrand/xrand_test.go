package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) out of range: %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniform samples = %f, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %f, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %f, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(64)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(17)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams overlapped %d times", same)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: %v", xs)
	}
}
