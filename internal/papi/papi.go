// Package papi mirrors the slice of the PAPI hardware-counter interface
// the paper uses for the magicfilter auto-tuning study (§V.B, Figure 7):
// total cycles and cache accesses, plus the supporting events the
// simulators can observe. Counters are backed by the cache hierarchy and
// core models rather than silicon.
package papi

import (
	"fmt"
	"sort"
	"strings"

	"montblanc/internal/cache"
)

// Event is a PAPI-style preset event.
type Event int

// Supported preset events (names follow PAPI conventions).
const (
	TOT_CYC Event = iota // total cycles
	TOT_INS              // total instructions
	L1_DCA               // L1 data cache accesses
	L1_DCM               // L1 data cache misses
	L2_DCA               // L2 data cache accesses
	L2_DCM               // L2 data cache misses
	L3_DCA               // L3 data cache accesses
	L3_DCM               // L3 data cache misses
	TLB_DM               // data TLB misses
	FP_OPS               // floating point operations
)

// String returns the PAPI_* event name.
func (e Event) String() string {
	switch e {
	case TOT_CYC:
		return "PAPI_TOT_CYC"
	case TOT_INS:
		return "PAPI_TOT_INS"
	case L1_DCA:
		return "PAPI_L1_DCA"
	case L1_DCM:
		return "PAPI_L1_DCM"
	case L2_DCA:
		return "PAPI_L2_DCA"
	case L2_DCM:
		return "PAPI_L2_DCM"
	case L3_DCA:
		return "PAPI_L3_DCA"
	case L3_DCM:
		return "PAPI_L3_DCM"
	case TLB_DM:
		return "PAPI_TLB_DM"
	case FP_OPS:
		return "PAPI_FP_OPS"
	default:
		return fmt.Sprintf("PAPI_EVENT_%d", int(e))
	}
}

// Counters is an immutable snapshot of event counts.
type Counters map[Event]uint64

// Get returns the count for e (0 if absent).
func (c Counters) Get(e Event) uint64 { return c[e] }

// Add returns a copy of c with delta added to e.
func (c Counters) Add(e Event, delta uint64) Counters {
	out := make(Counters, len(c)+1)
	for k, v := range c {
		out[k] = v
	}
	out[e] += delta
	return out
}

// Sub returns c - other, clamping at zero per event. Use it to obtain
// the counts of a region between two snapshots.
func (c Counters) Sub(other Counters) Counters {
	out := make(Counters, len(c))
	for k, v := range c {
		o := other[k]
		if v >= o {
			out[k] = v - o
		}
	}
	return out
}

// String renders the counters in a stable order.
func (c Counters) String() string {
	events := make([]Event, 0, len(c))
	for e := range c {
		events = append(events, e)
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
	parts := make([]string, len(events))
	for i, e := range events {
		parts[i] = fmt.Sprintf("%s=%d", e, c[e])
	}
	return strings.Join(parts, " ")
}

// FromHierarchy snapshots cache and TLB counters from a simulated
// hierarchy. Cycle and instruction counts come from the core model and
// are supplied by the caller via Add.
func FromHierarchy(h *cache.Hierarchy) Counters {
	c := Counters{}
	levelEvents := [][2]Event{
		{L1_DCA, L1_DCM},
		{L2_DCA, L2_DCM},
		{L3_DCA, L3_DCM},
	}
	for i := 0; i < h.Depth() && i < len(levelEvents); i++ {
		st := h.Level(i).Stats()
		c[levelEvents[i][0]] = st.Accesses
		c[levelEvents[i][1]] = st.Misses
	}
	if _, misses, ok := h.TLBStats(); ok {
		c[TLB_DM] = misses
	}
	return c
}

// CacheAccesses returns the total data-cache access count across levels,
// the metric plotted in Figure 7's right-hand panels.
func (c Counters) CacheAccesses() uint64 {
	return c[L1_DCA] + c[L2_DCA] + c[L3_DCA]
}

// MissRatio returns L1 misses over L1 accesses.
func (c Counters) MissRatio() float64 {
	if c[L1_DCA] == 0 {
		return 0
	}
	return float64(c[L1_DCM]) / float64(c[L1_DCA])
}
