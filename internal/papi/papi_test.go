package papi

import (
	"strings"
	"testing"

	"montblanc/internal/cache"
)

func TestEventNames(t *testing.T) {
	cases := map[Event]string{
		TOT_CYC: "PAPI_TOT_CYC",
		L1_DCA:  "PAPI_L1_DCA",
		L1_DCM:  "PAPI_L1_DCM",
		TLB_DM:  "PAPI_TLB_DM",
		FP_OPS:  "PAPI_FP_OPS",
	}
	for e, want := range cases {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(e), e.String(), want)
		}
	}
}

func TestAddGetSub(t *testing.T) {
	c := Counters{}.Add(TOT_CYC, 100).Add(L1_DCA, 40)
	if c.Get(TOT_CYC) != 100 || c.Get(L1_DCA) != 40 {
		t.Errorf("counters = %v", c)
	}
	if c.Get(L2_DCA) != 0 {
		t.Error("absent event should read 0")
	}
	c2 := c.Add(TOT_CYC, 50)
	if c.Get(TOT_CYC) != 100 {
		t.Error("Add mutated the receiver")
	}
	d := c2.Sub(c)
	if d.Get(TOT_CYC) != 50 || d.Get(L1_DCA) != 0 {
		t.Errorf("diff = %v", d)
	}
	// Clamping.
	under := c.Sub(c2)
	if under.Get(TOT_CYC) != 0 {
		t.Error("Sub did not clamp at zero")
	}
}

func TestFromHierarchy(t *testing.T) {
	l1 := cache.Config{Name: "L1", Level: 1, Size: 1024, LineSize: 64, Associativity: 2, HitLatency: 1}
	l2 := cache.Config{Name: "L2", Level: 2, Size: 4096, LineSize: 64, Associativity: 4, HitLatency: 8}
	h, err := cache.NewHierarchy([]cache.Config{l1, l2}, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, false)  // L1 miss, L2 miss
	h.Access(0, false)  // L1 hit
	h.Access(64, false) // L1 miss, L2 miss
	c := FromHierarchy(h)
	if c.Get(L1_DCA) != 3 || c.Get(L1_DCM) != 2 {
		t.Errorf("L1 counters = %v", c)
	}
	if c.Get(L2_DCA) != 2 || c.Get(L2_DCM) != 2 {
		t.Errorf("L2 counters = %v", c)
	}
	if c.CacheAccesses() != 5 {
		t.Errorf("CacheAccesses = %d, want 5", c.CacheAccesses())
	}
	if got := c.MissRatio(); got < 0.66 || got > 0.67 {
		t.Errorf("MissRatio = %f", got)
	}
}

func TestMissRatioIdle(t *testing.T) {
	if (Counters{}).MissRatio() != 0 {
		t.Error("idle miss ratio != 0")
	}
}

func TestStringStableOrder(t *testing.T) {
	c := Counters{L1_DCM: 1, TOT_CYC: 2, L1_DCA: 3}
	s := c.String()
	if !strings.Contains(s, "PAPI_TOT_CYC=2") {
		t.Errorf("String = %q", s)
	}
	// TOT_CYC (0) must come before L1_DCA (2) and L1_DCM (3).
	if strings.Index(s, "PAPI_TOT_CYC") > strings.Index(s, "PAPI_L1_DCA") {
		t.Errorf("order not stable: %q", s)
	}
	if c.String() != s {
		t.Error("String not deterministic")
	}
}
