package core

import (
	"math"
	"testing"

	"montblanc/internal/platform"
)

func TestMontBlancApplications(t *testing.T) {
	apps := MontBlancApplications()
	if len(apps) != 11 {
		t.Fatalf("applications = %d, want 11 (Table I)", len(apps))
	}
	byCode := map[string]Application{}
	for _, a := range apps {
		if a.Code == "" || a.Domain == "" || a.Institution == "" {
			t.Errorf("incomplete entry: %+v", a)
		}
		byCode[a.Code] = a
	}
	if byCode["BigDFT"].Institution != "CEA" {
		t.Error("BigDFT institution wrong")
	}
	if byCode["SPECFEM3D"].Domain != "Wave Propagation" {
		t.Error("SPECFEM3D domain wrong")
	}
	// Two protein-folding codes from JSC, as in the paper.
	folding := 0
	for _, a := range apps {
		if a.Domain == "Protein Folding" {
			folding++
		}
	}
	if folding != 2 {
		t.Errorf("protein folding codes = %d, want 2", folding)
	}
}

// The headline result: the full Table II, with every paper value
// reproduced within tolerance.
func TestTableIIReproduction(t *testing.T) {
	rows, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	want := []struct {
		name        string
		snowball    float64
		xeon        float64
		ratio       float64
		energyRatio float64
		relTol      float64 // on values and ratio
		eTol        float64 // absolute on energy ratio
	}{
		{"LINPACK", 620, 24000, 38.7, 1.0, 0.10, 0.15},
		{"CoreMark", 5877, 41950, 7.1, 0.2, 0.06, 0.05},
		{"StockFish", 224113, 4521733, 20.2, 0.5, 0.06, 0.08},
		{"SPECFEM3D", 186.8, 23.5, 7.9, 0.2, 0.12, 0.07},
		{"BigDFT", 420.4, 18.1, 23.2, 0.6, 0.10, 0.12},
	}
	for i, w := range want {
		r := rows[i]
		if r.Workload != w.name {
			t.Fatalf("row %d = %s, want %s", i, r.Workload, w.name)
		}
		if math.Abs(r.Candidate-w.snowball)/w.snowball > w.relTol {
			t.Errorf("%s Snowball = %.1f, want ~%.1f", w.name, r.Candidate, w.snowball)
		}
		if math.Abs(r.Reference-w.xeon)/w.xeon > w.relTol {
			t.Errorf("%s Xeon = %.1f, want ~%.1f", w.name, r.Reference, w.xeon)
		}
		if math.Abs(r.Ratio-w.ratio)/w.ratio > 0.15 {
			t.Errorf("%s ratio = %.1f, want ~%.1f", w.name, r.Ratio, w.ratio)
		}
		if math.Abs(r.EnergyRatio-w.energyRatio) > w.eTol {
			t.Errorf("%s energy ratio = %.2f, want ~%.1f", w.name, r.EnergyRatio, w.energyRatio)
		}
	}
}

// The qualitative conclusions of §III.C.
func TestTableIIConclusions(t *testing.T) {
	rows, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Comparison{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	// "running the LINPACK benchmarks costs the same energy on the Xeon
	// as on the Snowball"
	if e := byName["LINPACK"].EnergyRatio; e < 0.85 || e > 1.15 {
		t.Errorf("LINPACK energy parity broken: %.2f", e)
	}
	// "for CoreMark and SPECFEM3D the energy required is 5 times lower"
	for _, name := range []string{"CoreMark", "SPECFEM3D"} {
		if e := byName[name].EnergyRatio; e > 0.3 {
			t.Errorf("%s energy ratio %.2f, want ~0.2", name, e)
		}
	}
	// "For StockFish and BigDFT only half the energy is consumed"
	for _, name := range []string{"StockFish", "BigDFT"} {
		if e := byName[name].EnergyRatio; e < 0.35 || e > 0.75 {
			t.Errorf("%s energy ratio %.2f, want ~0.5", name, e)
		}
	}
	// BigDFT (DP-only) is the worst time ratio among the applications.
	if byName["BigDFT"].Ratio <= byName["SPECFEM3D"].Ratio {
		t.Error("BigDFT should fare worse than SPECFEM3D on ARM (DP on VFP)")
	}
}

func TestCompareRejectsBadWorkload(t *testing.T) {
	bad := Workload{
		Name: "broken", Metric: Rate, Unit: "x",
		Measure: func(*platform.Platform) (float64, error) { return 0, nil },
	}
	if _, err := Compare(bad, platform.Snowball(), platform.XeonX5550()); err == nil {
		t.Error("non-positive measurement accepted")
	}
}

func TestCompareTimeMetricOrientation(t *testing.T) {
	w := Workload{
		Name: "t", Metric: Time, Unit: "s",
		Measure: func(p *platform.Platform) (float64, error) {
			if p.ISA == platform.ARM32 {
				return 100, nil
			}
			return 10, nil
		},
	}
	c, err := Compare(w, platform.Snowball(), platform.XeonX5550())
	if err != nil {
		t.Fatal(err)
	}
	if c.Ratio != 10 {
		t.Errorf("time ratio = %v, want 10 (candidate slower)", c.Ratio)
	}
}
