package core

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"montblanc/internal/platform"
	"montblanc/internal/power"
)

func TestRefIndexErrorsOnAbsentReference(t *testing.T) {
	s := &Sweep{Platforms: []*platform.Platform{
		platform.MustLookup("Snowball"), platform.MustLookup("Tegra2"),
	}}
	i, err := s.RefIndex("Snowball")
	if err != nil || i != 0 {
		t.Errorf("RefIndex(Snowball) = %d, %v", i, err)
	}
	i, err = s.RefIndex("Tegra2")
	if err != nil || i != 1 {
		t.Errorf("RefIndex(Tegra2) = %d, %v", i, err)
	}
	// The historical bug: a typo'd name silently anchored ratios on
	// index 0. It must error now, naming the swept set.
	_, err = s.RefIndex("XeonX5500") // typo of XeonX5550
	if !errors.Is(err, ErrNoReference) {
		t.Fatalf("typo'd reference: err = %v, want ErrNoReference", err)
	}
	for _, frag := range []string{"XeonX5500", "Snowball", "Tegra2"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not mention %q", err, frag)
		}
	}
}

func quickProbe() PhaseProbeConfig {
	return PhaseProbeConfig{Nodes: 4, Iters: 3, FlopsPerIter: 5e8, SweepBytes: 8 << 20}
}

func TestPhaseProbeAccountsEveryState(t *testing.T) {
	pe, err := RunPhaseProbe(platform.MustLookup("ThunderX2"), quickProbe())
	if err != nil {
		t.Fatal(err)
	}
	if pe.Seconds <= 0 {
		t.Fatal("probe ran for no time")
	}
	b := pe.Breakdown
	for _, st := range []power.State{power.StateCompute, power.StateMemory, power.StateComm} {
		if b.Joules(st) <= 0 {
			t.Errorf("%s joules = %v, want > 0", st, b.Joules(st))
		}
	}
	// The profiled total can never exceed the §III.C envelope charge:
	// compute is the most expensive state.
	if b.Total > pe.EnvelopeJoules+1e-9 {
		t.Errorf("profiled total %v exceeds envelope charge %v", b.Total, pe.EnvelopeJoules)
	}
	// Rank-seconds must cover the whole horizon for every rank.
	var covered float64
	for _, s := range b.SecondsByState {
		covered += s
	}
	if want := pe.Seconds * 4; math.Abs(covered-want) > 1e-9*want {
		t.Errorf("state seconds cover %v, want %v", covered, want)
	}
}

// A platform stripped to a uniform profile must reproduce the constant
// model exactly: total joules == nodes x envelope x makespan.
func TestPhaseProbeUniformReducesToEnvelope(t *testing.T) {
	p := platform.MustLookup("Snowball")
	p.Power = power.Uniform(p.Power.Name, p.Power.Compute)
	pe, err := RunPhaseProbe(p, quickProbe())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pe.Breakdown.Total-pe.EnvelopeJoules) > 1e-9*pe.EnvelopeJoules {
		t.Errorf("uniform profile: total %v != envelope charge %v",
			pe.Breakdown.Total, pe.EnvelopeJoules)
	}
}

func TestPhaseProbeRejectsTinyJobs(t *testing.T) {
	if _, err := RunPhaseProbe(platform.MustLookup("Snowball"),
		PhaseProbeConfig{Nodes: 1}); err == nil {
		t.Error("single-node probe did not error")
	}
}

// The phase sweep must produce identical results for any worker count:
// the per-platform jobs land in indexed slots and the simulator is
// deterministic.
func TestPhaseSweepDeterministicAcrossWorkers(t *testing.T) {
	ps := make([]*platform.Platform, 0, len(platform.Names()))
	for _, n := range platform.Names() {
		ps = append(ps, platform.MustLookup(n))
	}
	cfg := quickProbe()
	base, err := RunPhaseSweep(ps, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for workers := 2; workers <= 8; workers++ {
		got, err := RunPhaseSweep(ps, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if got[i].Seconds != base[i].Seconds ||
				!reflect.DeepEqual(got[i].Breakdown, base[i].Breakdown) {
				t.Fatalf("workers=%d: platform %s differs from sequential",
					workers, ps[i].Name)
			}
		}
	}
}

func TestPhaseSweepNeedsPlatforms(t *testing.T) {
	if _, err := RunPhaseSweep(nil, PhaseProbeConfig{}, 1); err == nil {
		t.Error("empty phase sweep did not error")
	}
}

// Imbalance zero means balanced — withDefaults must not quietly skew
// the job. A balanced ring is perfectly symmetric: every rank draws the
// same joules, and adding imbalance stretches the makespan.
func TestPhaseProbeImbalanceZeroHonored(t *testing.T) {
	p := platform.MustLookup("Snowball")
	balanced, err := RunPhaseProbe(p, quickProbe()) // Imbalance: 0
	if err != nil {
		t.Fatal(err)
	}
	for r, j := range balanced.Breakdown.ByRank[1:] {
		if math.Abs(j-balanced.Breakdown.ByRank[0]) > 1e-9 {
			t.Errorf("balanced probe rank %d = %v J, rank 0 = %v J",
				r+1, j, balanced.Breakdown.ByRank[0])
		}
	}
	skewed := quickProbe()
	skewed.Imbalance = 0.3
	straggled, err := RunPhaseProbe(p, skewed)
	if err != nil {
		t.Fatal(err)
	}
	if straggled.Seconds <= balanced.Seconds {
		t.Errorf("imbalance did not stretch the makespan: %v vs %v",
			straggled.Seconds, balanced.Seconds)
	}
}
