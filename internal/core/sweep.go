package core

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"montblanc/internal/platform"
	"montblanc/internal/power"
	"montblanc/internal/runner"
)

// Sweep is the cross-platform measurement matrix: every workload
// evaluated on every platform. It generalizes Table II (one candidate
// against one reference) to the N-machine comparisons of the follow-on
// Arm generation studies.
type Sweep struct {
	Platforms []*platform.Platform
	Workloads []Workload
	// Values[wi][pi] is workload wi measured on platform pi, in the
	// workload's unit.
	Values [][]float64
}

// RunSweep measures every workload on every platform, dispatching the
// N x M cells as weighted tasks on the parallel runner (heavier
// workloads first, LPT). Each cell writes to its own matrix slot, so
// results are identical for any worker count (<= 0 means GOMAXPROCS).
func RunSweep(ps []*platform.Platform, ws []Workload, workers int) (*Sweep, error) {
	if len(ps) == 0 {
		return nil, errors.New("core: sweep needs at least one platform")
	}
	if len(ws) == 0 {
		return nil, errors.New("core: sweep needs at least one workload")
	}
	values := make([][]float64, len(ws))
	for i := range values {
		values[i] = make([]float64, len(ps))
	}
	tasks := make([]runner.Task, 0, len(ws)*len(ps))
	for wi := range ws {
		for pi := range ps {
			wi, pi := wi, pi
			w, p := ws[wi], ps[pi]
			tasks = append(tasks, runner.Task{
				ID:     w.Name + "/" + p.Name,
				Title:  fmt.Sprintf("%s on %s", w.Name, p.Name),
				Weight: w.Cost,
				Run: func(io.Writer) error {
					v, err := w.Measure(p)
					if err != nil {
						return err
					}
					if v <= 0 {
						return fmt.Errorf("non-positive measurement %g", v)
					}
					values[wi][pi] = v
					return nil
				},
			})
		}
	}
	pool := runner.Pool{Workers: workers}
	for _, r := range pool.Run(tasks) {
		if r.Err != nil {
			return nil, fmt.Errorf("core: sweep %s: %w", r.ID, r.Err)
		}
	}
	return &Sweep{Platforms: ps, Workloads: ws, Values: values}, nil
}

// ErrNoReference is returned by RefIndex when the named platform is not
// part of the sweep.
var ErrNoReference = errors.New("core: reference platform not in sweep")

// RefIndex returns the index of the named reference platform — the
// anchor of every ratio column, the Table II convention generalized:
// ratios read "how far ahead is the reference". A name absent from the
// sweep is an error wrapping ErrNoReference: the historical fallback to
// index 0 made a typo'd platform set produce plausible-looking but
// wrong ratios against an arbitrary machine.
func (s *Sweep) RefIndex(name string) (int, error) {
	for i, p := range s.Platforms {
		if p.Name == name {
			return i, nil
		}
	}
	names := make([]string, len(s.Platforms))
	for i, p := range s.Platforms {
		names[i] = p.Name
	}
	return 0, fmt.Errorf("%w: %q (swept platforms: %s)",
		ErrNoReference, name, strings.Join(names, ", "))
}

// Ratio returns the reference platform's advantage on workload wi over
// platform pi: reference/candidate for rates, candidate/reference for
// times — >= 1 when the reference is faster, matching Table II.
func (s *Sweep) Ratio(wi, pi, ref int) float64 {
	c, r := s.Values[wi][pi], s.Values[wi][ref]
	if s.Workloads[wi].Metric == Rate {
		return r / c
	}
	return c / r
}

// EnergyRatio returns candidate energy over reference energy for the
// same work on workload wi — below 1 means platform pi needs less
// energy than the reference, the paper's "Energy Ratio" column.
func (s *Sweep) EnergyRatio(wi, pi, ref int) float64 {
	cand, refP := s.Platforms[pi], s.Platforms[ref]
	cv, rv := s.Values[wi][pi], s.Values[wi][ref]
	if s.Workloads[wi].Metric == Rate {
		return power.EnergyRatioByRate(cand.Power, cv, refP.Power, rv)
	}
	return power.EnergyRatioByTime(cand.Power, cv, refP.Power, rv)
}

// Energy returns the energy-to-solution figure of cell (wi, pi):
// joules per unit of work for rate workloads, joules for the whole
// instance for time workloads.
func (s *Sweep) Energy(wi, pi int) float64 {
	p := s.Platforms[pi]
	v := s.Values[wi][pi]
	if s.Workloads[wi].Metric == Rate {
		return p.Power.EnergyPerOp(v)
	}
	return p.Power.Energy(v)
}

// PairWins counts, for every ordered platform pair, the workloads on
// which the row platform needs strictly less energy to solution than
// the column platform. wins[i][i] is 0 by construction.
func (s *Sweep) PairWins() [][]int {
	n := len(s.Platforms)
	wins := make([][]int, n)
	for i := range wins {
		wins[i] = make([]int, n)
		for j := range wins[i] {
			if i == j {
				continue
			}
			for wi := range s.Workloads {
				if s.Energy(wi, i) < s.Energy(wi, j) {
					wins[i][j]++
				}
			}
		}
	}
	return wins
}
