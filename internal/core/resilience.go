package core

import (
	"errors"
	"fmt"
	"io"
	"math"

	"montblanc/internal/fault"
	"montblanc/internal/network"
	"montblanc/internal/platform"
	"montblanc/internal/runner"
	"montblanc/internal/simmpi"
	"montblanc/internal/trace"
)

// ResilienceConfig parameterizes the checkpointing mini-app behind the
// resilience experiments: every node performs a fixed amount of useful
// work split into checkpoint intervals, writes a checkpoint image
// through DRAM after each interval, and exchanges a ring halo so the
// ranks stay coupled. A fault schedule (resolved per cluster shape by
// internal/fault) injects node crashes: work since the last checkpoint
// is lost and redone after a restart read, and downtime itself is
// frozen time — unrecorded in the trace, so phase-resolved energy
// accounting charges it at idle watts automatically.
type ResilienceConfig struct {
	// Nodes is the job size, one rank per node (>= 2; default 8).
	Nodes int
	// WorkFlops is the useful double-precision work per node (default
	// 4e10). Time-to-solution is the makespan of completing all of it.
	WorkFlops float64
	// CheckpointBytes is the per-node checkpoint image streamed through
	// DRAM after each interval (default 512 MiB). Writing it — and
	// reading it back after a crash — is charged to the memory power
	// state at the platform's memory bandwidth.
	CheckpointBytes float64
	// IntervalSeconds is the checkpoint interval tau: useful work
	// between checkpoints (default 10).
	IntervalSeconds float64
	// HaloBytes is the per-neighbor ring message after each checkpoint
	// (default 256 KiB).
	HaloBytes int
	// Efficiency is the fraction of node peak the work sustains, in
	// (0, 1] (default 0.5).
	Efficiency float64
	// SimWorkers selects the simulator scheduler (see
	// simmpi.Config.Workers); results are byte-identical at any value.
	SimWorkers int
	// Faults is the resolved fault schedule; nil runs failure-free. It
	// must have been resolved against exactly Nodes nodes.
	Faults *fault.Resolved
}

func (c ResilienceConfig) withDefaults() ResilienceConfig {
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.WorkFlops <= 0 {
		c.WorkFlops = 4e10
	}
	if c.CheckpointBytes <= 0 {
		c.CheckpointBytes = 512 << 20
	}
	if c.IntervalSeconds <= 0 {
		c.IntervalSeconds = 10
	}
	if c.HaloBytes <= 0 {
		c.HaloBytes = 256 << 10
	}
	if c.Efficiency <= 0 || c.Efficiency > 1 {
		c.Efficiency = 0.5
	}
	return c
}

// validate refuses hostile numbers that the <= 0 defaulting above lets
// through (NaN compares false against everything, so it would
// otherwise sail into the simulator).
func (c ResilienceConfig) validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"work flops", c.WorkFlops},
		{"checkpoint bytes", c.CheckpointBytes},
		{"checkpoint interval", c.IntervalSeconds},
		{"efficiency", c.Efficiency},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v <= 0 {
			return fmt.Errorf("core: resilience %s must be a positive finite number, got %v", f.name, f.v)
		}
	}
	return nil
}

// CheckpointSeconds returns the cost of one checkpoint on the given
// platform: the image streamed at the platform's memory bandwidth.
// Restarts read the image back, so they cost the same.
func (c ResilienceConfig) CheckpointSeconds(p *platform.Platform) float64 {
	return c.withDefaults().CheckpointBytes / p.MemBandwidth
}

// ResilienceResult is one platform's time- and energy-to-solution under
// the configured fault schedule and checkpoint policy.
type ResilienceResult struct {
	Platform *platform.Platform
	Seconds  float64 // time-to-solution (makespan, downtime included)
	// Breakdown is the state-resolved energy: checkpoint and restart
	// I/O at memory watts, lost and useful work at compute watts,
	// downtime at idle watts (it is simply absent from the trace).
	Breakdown trace.EnergyBreakdown
	// Checkpoints is the number of checkpoints each rank wrote.
	Checkpoints int
	// Interval and CheckpointSeconds echo the policy actually used, in
	// this platform's terms.
	Interval          float64
	CheckpointSeconds float64
	// Crashes is the number of outage windows that actually interrupted
	// ranks; DownSeconds is the total frozen rank-time.
	Crashes     uint64
	DownSeconds float64
}

// RunResilienceProbe runs the checkpointing mini-app on a cluster of
// the given platform's nodes under the configured fault schedule.
//
// Recovery protocol (documented in FAULT.md): each rank retries the
// current interval's work until it completes without a crash. A crash
// mid-interval costs the work done since the interval began (recorded
// as lost compute), a restart read (memory state), and the downtime
// (frozen, charged at idle watts). A crash during a checkpoint, a
// restart or a halo exchange merely suspends it — a deliberate
// simplification that keeps every phase a pure function of the rank's
// program and the schedule, which is what keeps fault-injected runs
// byte-identical at any scheduler worker count.
func RunResilienceProbe(p *platform.Platform, cfg ResilienceConfig) (ResilienceResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return ResilienceResult{}, err
	}
	if cfg.Nodes < 2 {
		return ResilienceResult{}, errors.New("core: resilience probe needs at least 2 nodes")
	}
	if cfg.Faults != nil && cfg.Faults.Nodes != cfg.Nodes {
		return ResilienceResult{}, fmt.Errorf("core: fault schedule resolved for %d nodes, probe has %d",
			cfg.Faults.Nodes, cfg.Nodes)
	}
	n := cfg.Nodes
	rate := p.SustainedFlops(true, cfg.Efficiency)
	workSeconds := cfg.WorkFlops / rate
	nSeg := int(math.Ceil(workSeconds / cfg.IntervalSeconds))
	if nSeg < 1 {
		nSeg = 1
	}
	ckpt := cfg.CheckpointBytes / p.MemBandwidth
	restart := ckpt // the restart reads the image back through DRAM

	net := network.Star(n)
	sim := simmpi.Config{
		Ranks:           n,
		Net:             net,
		RanksPerNode:    1,
		CoreFlopsPerSec: rate,
		CollectTrace:    true,
		Workers:         cfg.SimWorkers,
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Apply(net); err != nil {
			return ResilienceResult{}, err
		}
		sim.Outages = cfg.Faults.Outages
	}
	rep, err := simmpi.Run(sim, func(pr *simmpi.Proc) error {
		right := (pr.Rank() + 1) % n
		left := (pr.Rank() + n - 1) % n
		// One rank per node, so this rank's crash times are its node's
		// outage starts, consumed in order as the clock passes them.
		var crashes []simmpi.Outage
		if cfg.Faults != nil {
			crashes = cfg.Faults.NodeOutages(pr.Rank())
		}
		ci := 0
		for seg := 0; seg < nSeg; seg++ {
			segLen := cfg.IntervalSeconds
			if seg == nSeg-1 {
				segLen = workSeconds - cfg.IntervalSeconds*float64(nSeg-1)
			}
			for {
				t0 := pr.Now()
				// Crashes already behind the clock interrupted an earlier
				// phase (checkpoint, restart, halo): those were suspended,
				// not redone, so the work state survives them.
				for ci < len(crashes) && crashes[ci].Start <= t0 {
					ci++
				}
				if ci < len(crashes) && crashes[ci].Start < t0+segLen {
					// The interval dies mid-work: everything since the last
					// checkpoint is lost, then the node freezes through the
					// outage and pays a restart read before retrying.
					pr.Compute(crashes[ci].Start-t0, "resilience-lost")
					pr.Stall(restart, "resilience-restart")
					ci++
					continue
				}
				pr.Compute(segLen, "resilience-work")
				break
			}
			if seg < nSeg-1 {
				pr.Stall(ckpt, "resilience-checkpoint")
			}
			if err := pr.Send(right, seg, cfg.HaloBytes); err != nil {
				return err
			}
			if err := pr.Recv(left, seg); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return ResilienceResult{}, fmt.Errorf("core: resilience probe on %s: %w", p.Name, err)
	}
	return ResilienceResult{
		Platform:          p,
		Seconds:           rep.Seconds,
		Breakdown:         rep.Trace.EnergyByState(p.Power),
		Checkpoints:       nSeg - 1,
		Interval:          cfg.IntervalSeconds,
		CheckpointSeconds: ckpt,
		Crashes:           rep.Faults.Interrupts,
		DownSeconds:       rep.Faults.DownSeconds,
	}, nil
}

// RunResilienceSweep runs the resilience probe on every platform,
// dispatching the per-platform jobs as weighted tasks on the parallel
// runner. Each result lands in its own slot, so output is identical
// for any worker count (<= 0 means GOMAXPROCS).
func RunResilienceSweep(ps []*platform.Platform, cfg ResilienceConfig, workers int) ([]ResilienceResult, error) {
	if len(ps) == 0 {
		return nil, errors.New("core: resilience sweep needs at least one platform")
	}
	out := make([]ResilienceResult, len(ps))
	tasks := make([]runner.Task, len(ps))
	for i, p := range ps {
		i, p := i, p
		tasks[i] = runner.Task{
			ID:    "resilience/" + p.Name,
			Title: fmt.Sprintf("resilience probe on %s", p.Name),
			Run: func(io.Writer) error {
				rr, err := RunResilienceProbe(p, cfg)
				if err != nil {
					return err
				}
				out[i] = rr
				return nil
			},
		}
	}
	pool := runner.Pool{Workers: workers}
	for _, r := range pool.Run(tasks) {
		if r.Err != nil {
			return nil, fmt.Errorf("core: %s: %w", r.ID, r.Err)
		}
	}
	return out, nil
}
