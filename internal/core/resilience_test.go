package core

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"montblanc/internal/fault"
	"montblanc/internal/platform"
	"montblanc/internal/power"
)

func quickResilience() ResilienceConfig {
	return ResilienceConfig{
		Nodes:           4,
		WorkFlops:       4e9,
		CheckpointBytes: 32 << 20,
		IntervalSeconds: 1,
		HaloBytes:       64 << 10,
	}
}

func resolveFor(t *testing.T, s *fault.Spec, nodes int, hint float64) *fault.Resolved {
	t.Helper()
	r, err := s.Resolve(nodes, hint)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestResilienceProbeFailureFree(t *testing.T) {
	rr, err := RunResilienceProbe(platform.MustLookup("Tegra2"), quickResilience())
	if err != nil {
		t.Fatal(err)
	}
	if rr.Seconds <= 0 {
		t.Fatal("probe ran for no time")
	}
	if rr.Crashes != 0 || rr.DownSeconds != 0 {
		t.Fatalf("failure-free run reported faults: %d crashes, %v down", rr.Crashes, rr.DownSeconds)
	}
	if rr.Checkpoints <= 0 {
		t.Fatalf("want some checkpoints, got %d", rr.Checkpoints)
	}
	if rr.Breakdown.Joules(power.StateMemory) <= 0 {
		t.Fatal("checkpoint I/O drew no memory-state energy")
	}
	if rr.Breakdown.Joules(power.StateCompute) <= 0 {
		t.Fatal("work drew no compute-state energy")
	}
}

func TestResilienceProbeCrashStretchesRun(t *testing.T) {
	p := platform.MustLookup("Tegra2")
	cfg := quickResilience()
	clean, err := RunResilienceProbe(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One crash in the middle of the run on node 1.
	spec := &fault.Spec{
		DowntimeSeconds: 5,
		Events:          []fault.Event{{Node: 1, Time: clean.Seconds / 2}},
	}
	cfg.Faults = resolveFor(t, spec, cfg.Nodes, 0)
	faulty, err := RunResilienceProbe(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", faulty.Crashes)
	}
	if faulty.DownSeconds <= 0 {
		t.Fatal("crash froze no time")
	}
	// The crash costs at least the downtime: lost work and restart I/O
	// come on top, and the ring drags every rank along.
	if faulty.Seconds < clean.Seconds+5 {
		t.Fatalf("crashed run %v not slower than clean %v + 5s downtime",
			faulty.Seconds, clean.Seconds)
	}
	if faulty.Breakdown.Total <= clean.Breakdown.Total {
		t.Fatalf("crashed run drew %v J, clean %v J — resilience came free",
			faulty.Breakdown.Total, clean.Breakdown.Total)
	}
}

func TestResilienceProbeDeterministicAcrossWorkers(t *testing.T) {
	p := platform.MustLookup("Snowball")
	cfg := quickResilience()
	spec := &fault.Spec{Seed: 3, MTBFSeconds: 20, HorizonSeconds: 200, DowntimeSeconds: 2}
	cfg.Faults = resolveFor(t, spec, cfg.Nodes, 0)
	cfg.SimWorkers = 1
	base, err := RunResilienceProbe(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for workers := 2; workers <= 8; workers++ {
		cfg.SimWorkers = workers
		got, err := RunResilienceProbe(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Seconds != base.Seconds || !reflect.DeepEqual(got.Breakdown, base.Breakdown) ||
			got.Crashes != base.Crashes || got.DownSeconds != base.DownSeconds {
			t.Fatalf("workers=%d: fault-injected probe differs from sequential", workers)
		}
	}
}

func TestResilienceProbeHostileInputs(t *testing.T) {
	p := platform.MustLookup("Tegra2")
	cases := []struct {
		name string
		mut  func(*ResilienceConfig)
	}{
		{"nan interval", func(c *ResilienceConfig) { c.IntervalSeconds = math.NaN() }},
		{"inf interval", func(c *ResilienceConfig) { c.IntervalSeconds = math.Inf(1) }},
		{"nan work", func(c *ResilienceConfig) { c.WorkFlops = math.NaN() }},
		{"nan checkpoint bytes", func(c *ResilienceConfig) { c.CheckpointBytes = math.NaN() }},
		{"nan efficiency", func(c *ResilienceConfig) { c.Efficiency = math.NaN() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := quickResilience()
			tc.mut(&cfg)
			if _, err := RunResilienceProbe(p, cfg); err == nil {
				t.Fatal("hostile config accepted")
			}
		})
	}
}

func TestResilienceProbeRejectsMismatchedSchedule(t *testing.T) {
	cfg := quickResilience()
	cfg.Faults = resolveFor(t, &fault.Spec{}, 16, 0) // resolved for 16 nodes, probe has 4
	_, err := RunResilienceProbe(platform.MustLookup("Tegra2"), cfg)
	if err == nil || !strings.Contains(err.Error(), "resolved for 16 nodes") {
		t.Fatalf("want shape-mismatch error, got %v", err)
	}
}

func TestResilienceProbeRejectsTinyJobs(t *testing.T) {
	cfg := quickResilience()
	cfg.Nodes = 1
	if _, err := RunResilienceProbe(platform.MustLookup("Tegra2"), cfg); err == nil {
		t.Fatal("single-node probe did not error")
	}
}

func TestResilienceSweepDeterministicAcrossWorkers(t *testing.T) {
	ps := make([]*platform.Platform, 0, len(platform.Names()))
	for _, n := range platform.Names() {
		ps = append(ps, platform.MustLookup(n))
	}
	cfg := quickResilience()
	cfg.Faults = resolveFor(t, &fault.Spec{Seed: 9, MTBFSeconds: 30, HorizonSeconds: 300}, cfg.Nodes, 0)
	base, err := RunResilienceSweep(ps, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for workers := 2; workers <= 4; workers++ {
		got, err := RunResilienceSweep(ps, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if got[i].Seconds != base[i].Seconds || !reflect.DeepEqual(got[i].Breakdown, base[i].Breakdown) {
				t.Fatalf("workers=%d: platform %s differs from sequential", workers, ps[i].Name)
			}
		}
	}
}

func TestResilienceSweepNeedsPlatforms(t *testing.T) {
	if _, err := RunResilienceSweep(nil, ResilienceConfig{}, 1); err == nil {
		t.Fatal("empty resilience sweep did not error")
	}
}

// Shorter checkpoint intervals mean more checkpoint I/O; under a fixed
// crash load, longer intervals mean more lost work per crash. Both
// extremes must cost more than a middle interval on a schedule dense
// enough to matter — the shape the Daly optimum formalizes.
func TestResilienceIntervalTradeoff(t *testing.T) {
	p := platform.MustLookup("Tegra2")
	base := quickResilience()
	// Enough work per rank that a node rarely survives the whole job
	// without a crash: without checkpoints, rework dominates.
	base.WorkFlops = 6e10
	base.CheckpointBytes = 128 << 20

	tts := func(interval float64) float64 {
		cfg := base
		cfg.IntervalSeconds = interval
		// A fixed, dense crash schedule over a generous horizon.
		cfg.Faults = resolveFor(t, &fault.Spec{
			Seed: 11, MTBFSeconds: 60, HorizonSeconds: 20000, DowntimeSeconds: 5,
		}, cfg.Nodes, 0)
		rr, err := RunResilienceProbe(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rr.Seconds
	}
	// The checkpoint cost on Tegra2 sets the scale for "too short".
	c := base.CheckpointSeconds(p)
	tiny := tts(c / 16) // checkpointing dominates
	huge := tts(1e6)    // one interval: every crash loses everything
	mid := tts(8 * c)   // in between
	if mid >= tiny {
		t.Errorf("interval %vs (%v) not faster than checkpoint-dominated %vs (%v)",
			8*c, mid, c/16, tiny)
	}
	if mid >= huge {
		t.Errorf("interval %vs (%v) not faster than rework-dominated (%v)", 8*c, mid, huge)
	}
}
