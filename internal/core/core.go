// Package core is the characterization framework that ties the
// reproduction together: the Mont-Blanc application catalog (Table I),
// the workload abstraction, and the platform comparison engine that
// produces Table II — performance ratios and the paper's conservative
// energy ratios (full 2.5 W for the Snowball against the Xeon's full
// 95 W TDP).
package core

import (
	"errors"
	"fmt"

	"montblanc/internal/apps/bigdft"
	"montblanc/internal/apps/chess"
	"montblanc/internal/apps/coremark"
	"montblanc/internal/apps/linpack"
	"montblanc/internal/apps/specfem"
	"montblanc/internal/platform"
	"montblanc/internal/power"
)

// Application is one entry of the Mont-Blanc portfolio (Table I).
type Application struct {
	Code        string
	Domain      string
	Institution string
}

// MontBlancApplications returns the eleven applications selected by the
// Mont-Blanc project, exactly as listed in Table I.
func MontBlancApplications() []Application {
	return []Application{
		{"YALES2", "Combustion", "CNRS/CORIA"},
		{"EUTERPE", "Fusion", "BSC"},
		{"SPECFEM3D", "Wave Propagation", "CNRS"},
		{"MP2C", "Multi-particle Collision", "JSC"},
		{"BigDFT", "Electronic Structure", "CEA"},
		{"Quantum Expresso", "Electronic Structure", "CINECA"},
		{"PEPC", "Coulomb & Gravitational Forces", "JSC"},
		{"SMMP", "Protein Folding", "JSC"},
		{"PorFASI", "Protein Folding", "JSC"},
		{"COSMO", "Weather Forecast", "CINECA"},
		{"BQCD", "Particle Physics", "LRZ"},
	}
}

// Metric distinguishes throughput workloads (bigger is better) from
// time-to-solution workloads (smaller is better).
type Metric int

// Workload metrics.
const (
	Rate Metric = iota // e.g. MFLOPS, ops/s
	Time               // seconds
)

// Workload is one benchmark of the single-node study.
type Workload struct {
	Name   string
	Metric Metric
	Unit   string
	// Cost is a relative wall-clock weight hint used when workloads are
	// dispatched as parallel sweep tasks (zero means 1); it never
	// affects values or output order.
	Cost    int
	Measure func(p *platform.Platform) (float64, error)
}

// TableIIWorkloads returns the five benchmarks of Table II in paper
// order, wired to the application models.
func TableIIWorkloads() []Workload {
	return []Workload{
		{
			Name: "LINPACK", Metric: Rate, Unit: "MFLOPS", Cost: 2,
			Measure: func(p *platform.Platform) (float64, error) {
				return linpack.Mflops(p), nil
			},
		},
		{
			Name: "CoreMark", Metric: Rate, Unit: "ops/s", Cost: 1,
			Measure: func(p *platform.Platform) (float64, error) {
				return coremark.Score(p), nil
			},
		},
		{
			Name: "StockFish", Metric: Rate, Unit: "ops/s", Cost: 1,
			Measure: func(p *platform.Platform) (float64, error) {
				return chess.NodesPerSecond(p), nil
			},
		},
		{
			Name: "SPECFEM3D", Metric: Time, Unit: "s", Cost: 2,
			Measure: func(p *platform.Platform) (float64, error) {
				return specfem.SmallInstanceTime(p), nil
			},
		},
		{
			Name: "BigDFT", Metric: Time, Unit: "s", Cost: 2,
			Measure: func(p *platform.Platform) (float64, error) {
				return bigdft.SmallInstanceTime(p), nil
			},
		},
	}
}

// Comparison is one row of Table II: a candidate platform (the Snowball)
// against a reference (the Xeon).
type Comparison struct {
	Workload  string
	Unit      string
	Metric    Metric
	Candidate float64 // Snowball column
	Reference float64 // Xeon column
	// Ratio is the reference's advantage: reference/candidate for
	// rates, candidate/reference for times — always >= 1 when the
	// reference is faster, matching the paper's "Ratio" column.
	Ratio float64
	// EnergyRatio is candidate energy / reference energy for the same
	// work; < 1 means the candidate needs less energy.
	EnergyRatio float64
}

// Compare evaluates one workload on both platforms.
func Compare(w Workload, candidate, reference *platform.Platform) (Comparison, error) {
	cv, err := w.Measure(candidate)
	if err != nil {
		return Comparison{}, fmt.Errorf("core: %s on %s: %w", w.Name, candidate.Name, err)
	}
	rv, err := w.Measure(reference)
	if err != nil {
		return Comparison{}, fmt.Errorf("core: %s on %s: %w", w.Name, reference.Name, err)
	}
	if cv <= 0 || rv <= 0 {
		return Comparison{}, errors.New("core: non-positive measurement")
	}
	c := Comparison{
		Workload: w.Name, Unit: w.Unit, Metric: w.Metric,
		Candidate: cv, Reference: rv,
	}
	switch w.Metric {
	case Rate:
		c.Ratio = rv / cv
		c.EnergyRatio = power.EnergyRatioByRate(candidate.Power, cv, reference.Power, rv)
	case Time:
		c.Ratio = cv / rv
		c.EnergyRatio = power.EnergyRatioByTime(candidate.Power, cv, reference.Power, rv)
	}
	return c, nil
}

// CompareAll evaluates every workload, producing the full Table II.
func CompareAll(ws []Workload, candidate, reference *platform.Platform) ([]Comparison, error) {
	out := make([]Comparison, 0, len(ws))
	for _, w := range ws {
		c, err := Compare(w, candidate, reference)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// TableII produces the paper's Table II: Snowball vs Xeon X5550 on the
// five workloads.
func TableII() ([]Comparison, error) {
	return CompareAll(TableIIWorkloads(),
		platform.MustLookup("Snowball"), platform.MustLookup("XeonX5550"))
}
