package core

import (
	"errors"
	"fmt"
	"io"

	"montblanc/internal/network"
	"montblanc/internal/platform"
	"montblanc/internal/power"
	"montblanc/internal/runner"
	"montblanc/internal/simmpi"
	"montblanc/internal/trace"
)

// PhaseProbeConfig parameterizes the canonical phased mini-app behind
// the energy-phases experiment: every node alternates a fixed amount of
// compute, a fixed memory sweep and a ring halo exchange on a shared
// GbE fabric. The work per iteration is platform-independent; the
// *time* each platform spends per phase is not, which is exactly what
// phase-resolved energy accounting is after.
type PhaseProbeConfig struct {
	// Nodes is the job size, one rank per node (>= 2; default 8).
	Nodes int
	// Iters is the number of compute/memory/exchange rounds (default 10).
	Iters int
	// FlopsPerIter is the double-precision work each node performs per
	// round (default 2e9).
	FlopsPerIter float64
	// SweepBytes is the DRAM traffic of the memory phase per round
	// (default 64 MiB).
	SweepBytes float64
	// HaloBytes is the per-neighbor message size of the ring exchange
	// (default 256 KiB — above the eager threshold, so transfers are
	// flow-controlled and drop-free).
	HaloBytes int
	// Efficiency is the fraction of node peak the compute phase
	// sustains, in (0, 1] (default 0.5).
	Efficiency float64
	// Imbalance skews rank 0's compute phase by this fraction: the
	// straggler makes the other ranks block and, at the end of the job,
	// finish at different times — the idle tails real phase traces
	// show. Zero means a perfectly balanced job (no default is applied:
	// balance is a legitimate request); negative values are treated as
	// zero.
	Imbalance float64
	// SimWorkers selects the simulator scheduler (see
	// simmpi.Config.Workers); results are byte-identical at any value.
	SimWorkers int
}

func (c PhaseProbeConfig) withDefaults() PhaseProbeConfig {
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.Iters <= 0 {
		c.Iters = 10
	}
	if c.FlopsPerIter <= 0 {
		c.FlopsPerIter = 2e9
	}
	if c.SweepBytes <= 0 {
		c.SweepBytes = 64 << 20
	}
	if c.HaloBytes <= 0 {
		c.HaloBytes = 256 << 10
	}
	if c.Efficiency <= 0 || c.Efficiency > 1 {
		c.Efficiency = 0.5
	}
	if c.Imbalance < 0 {
		c.Imbalance = 0
	}
	return c
}

// PhaseEnergy is one platform's phase-resolved accounting of the probe:
// where the time went and where the joules went.
type PhaseEnergy struct {
	Platform  *platform.Platform
	Seconds   float64 // job makespan
	Breakdown trace.EnergyBreakdown
	// EnvelopeJoules is what the paper's constant model (§III.C) would
	// charge for the same run: nodes x envelope x makespan. For a
	// uniform profile Breakdown.Total equals it exactly.
	EnvelopeJoules float64
}

// RunPhaseProbe runs the phased mini-app on a cluster of the given
// platform's nodes (one rank per node, so each rank is charged the full
// node profile) and integrates the platform's power profile over the
// resulting trace.
func RunPhaseProbe(p *platform.Platform, cfg PhaseProbeConfig) (PhaseEnergy, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 2 {
		return PhaseEnergy{}, errors.New("core: phase probe needs at least 2 nodes")
	}
	n := cfg.Nodes
	sweepSeconds := cfg.SweepBytes / p.MemBandwidth
	sim := simmpi.Config{
		Ranks:           n,
		Net:             network.Star(n),
		RanksPerNode:    1,
		CoreFlopsPerSec: p.SustainedFlops(true, cfg.Efficiency),
		CollectTrace:    true,
		Workers:         cfg.SimWorkers,
	}
	rep, err := simmpi.Run(sim, func(pr *simmpi.Proc) error {
		right := (pr.Rank() + 1) % n
		left := (pr.Rank() + n - 1) % n
		flops := cfg.FlopsPerIter
		if pr.Rank() == 0 {
			flops *= 1 + cfg.Imbalance
		}
		for it := 0; it < cfg.Iters; it++ {
			pr.ComputeFlops(flops, "phase-compute")
			pr.Stall(sweepSeconds, "phase-memory")
			if err := pr.Send(right, it, cfg.HaloBytes); err != nil {
				return err
			}
			if err := pr.Recv(left, it); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return PhaseEnergy{}, fmt.Errorf("core: phase probe on %s: %w", p.Name, err)
	}
	b := rep.Trace.EnergyByState(p.Power)
	return PhaseEnergy{
		Platform:       p,
		Seconds:        rep.Seconds,
		Breakdown:      b,
		EnvelopeJoules: float64(n) * p.Power.Energy(rep.Seconds),
	}, nil
}

// RunPhaseSweep runs the phase probe on every platform, dispatching the
// per-platform jobs as weighted tasks on the parallel runner. Each
// result lands in its own slot, so output is identical for any worker
// count (<= 0 means GOMAXPROCS).
func RunPhaseSweep(ps []*platform.Platform, cfg PhaseProbeConfig, workers int) ([]PhaseEnergy, error) {
	if len(ps) == 0 {
		return nil, errors.New("core: phase sweep needs at least one platform")
	}
	out := make([]PhaseEnergy, len(ps))
	tasks := make([]runner.Task, len(ps))
	for i, p := range ps {
		i, p := i, p
		tasks[i] = runner.Task{
			ID:    "energy-phases/" + p.Name,
			Title: fmt.Sprintf("phase probe on %s", p.Name),
			Run: func(io.Writer) error {
				pe, err := RunPhaseProbe(p, cfg)
				if err != nil {
					return err
				}
				out[i] = pe
				return nil
			},
		}
	}
	pool := runner.Pool{Workers: workers}
	for _, r := range pool.Run(tasks) {
		if r.Err != nil {
			return nil, fmt.Errorf("core: %s: %w", r.ID, r.Err)
		}
	}
	return out, nil
}

// PhaseStates lists the accounting states in the order the energy-phase
// reports render them: the active states first, idle last.
func PhaseStates() []power.State {
	return []power.State{power.StateCompute, power.StateMemory, power.StateComm, power.StateIdle}
}
