// Package cluster assembles the Tibidabo experimental HPC cluster
// ([10]): NVIDIA Tegra2 nodes (dual Cortex-A9 @ 1 GHz, 1 GB RAM) with
// PCIe 1 GbE NICs, interconnected hierarchically through 48-port GbE
// switches. It binds a node platform model to a network topology and
// runs simulated MPI jobs on it.
package cluster

import (
	"fmt"

	"montblanc/internal/fault"
	"montblanc/internal/network"
	"montblanc/internal/platform"
	"montblanc/internal/simmpi"
)

// Cluster is a homogeneous machine: Nodes identical nodes on one fabric.
type Cluster struct {
	Name  string
	Node  *platform.Platform
	Nodes int
	Net   *network.Network
}

// Tibidabo builds a Tibidabo slice with the given number of nodes. Up to
// 32 nodes hang off a single leaf switch; larger slices use the
// hierarchical two-level topology with 1:32 oversubscribed uplinks.
func Tibidabo(nodes int) (*Cluster, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", nodes)
	}
	var net *network.Network
	if nodes <= 32 {
		net = network.Star(nodes)
	} else {
		net = network.Tree(nodes, 32)
	}
	node, err := platform.Lookup("Tegra2")
	if err != nil {
		return nil, err
	}
	return &Cluster{
		Name:  fmt.Sprintf("tibidabo-%d", nodes),
		Node:  node,
		Nodes: nodes,
		Net:   net,
	}, nil
}

// Cores returns the total core count.
func (c *Cluster) Cores() int { return c.Nodes * c.Node.Cores }

// TotalRAM returns the aggregate memory in bytes.
func (c *Cluster) TotalRAM() int64 { return int64(c.Nodes) * c.Node.RAMBytes }

// CoreFlops returns the sustained per-core floating-point rate at the
// given precision and kernel efficiency.
func (c *Cluster) CoreFlops(doublePrecision bool, efficiency float64) float64 {
	return c.Node.SustainedFlops(doublePrecision, efficiency) / float64(c.Node.Cores)
}

// JobConfig parameterizes one MPI job.
type JobConfig struct {
	Ranks           int
	CoreFlopsPerSec float64 // per-rank compute rate (precision-specific)
	CollectTrace    bool
	// TraceHint is the expected number of trace intervals one rank
	// records, forwarded to the simulator as a buffer capacity hint
	// (see simmpi.Config.TraceHint). Zero is fine; it never changes
	// results.
	TraceHint int
	// MemoryBytes is the job's total footprint; the job must fit the
	// nodes it spans (the paper's SPECFEM3D instance needs >= 2 nodes).
	MemoryBytes int64
	// SimWorkers selects the simulator's scheduler: <= 1 runs the
	// sequential reference, > 1 the conservative-parallel windowed
	// scheduler with that many shards (see simmpi.Config.Workers).
	// Either way the results are byte-identical.
	SimWorkers int
	// Faults is an optional resolved fault schedule: its node outages
	// feed the simulator and its link faults are applied to the fabric
	// after the pre-run reset. Nil means a failure-free run.
	Faults *fault.Resolved
}

// Validate checks the job against the cluster.
func (c *Cluster) Validate(job JobConfig) error {
	if job.Ranks <= 0 {
		return fmt.Errorf("cluster: job needs ranks, got %d", job.Ranks)
	}
	nodes := (job.Ranks + c.Node.Cores - 1) / c.Node.Cores
	if nodes > c.Nodes {
		return fmt.Errorf("cluster: %d ranks need %d nodes, %s has %d",
			job.Ranks, nodes, c.Name, c.Nodes)
	}
	if job.MemoryBytes > 0 {
		avail := int64(nodes) * c.Node.RAMBytes
		if job.MemoryBytes > avail {
			return fmt.Errorf("cluster: job needs %d bytes, %d nodes provide %d (use more nodes)",
				job.MemoryBytes, nodes, avail)
		}
	}
	return nil
}

// MinNodesFor returns the smallest node count whose aggregate RAM fits
// the footprint.
func (c *Cluster) MinNodesFor(memoryBytes int64) int {
	if memoryBytes <= 0 {
		return 1
	}
	n := int((memoryBytes + c.Node.RAMBytes - 1) / c.Node.RAMBytes)
	if n < 1 {
		n = 1
	}
	return n
}

// Run executes body as an MPI job on a freshly reset fabric.
func (c *Cluster) Run(job JobConfig, body func(*simmpi.Proc) error) (*simmpi.Report, error) {
	if err := c.Validate(job); err != nil {
		return nil, err
	}
	c.Net.Reset()
	cfg := simmpi.Config{
		Ranks:           job.Ranks,
		Net:             c.Net,
		RanksPerNode:    c.Node.Cores,
		CoreFlopsPerSec: job.CoreFlopsPerSec,
		CollectTrace:    job.CollectTrace,
		TraceHint:       job.TraceHint,
		Workers:         job.SimWorkers,
	}
	if job.Faults != nil {
		if err := job.Faults.Apply(c.Net); err != nil {
			return nil, err
		}
		cfg.Outages = job.Faults.Outages
	}
	return simmpi.Run(cfg, body)
}

// NodesFor returns how many nodes a job with the given rank count spans.
func (c *Cluster) NodesFor(ranks int) int {
	return (ranks + c.Node.Cores - 1) / c.Node.Cores
}

// JobEnergy returns the energy in joules consumed by a completed job:
// the spanned nodes at full node power for the job's duration. The
// paper's §IV caution lives here — "the node power efficiency is likely
// to be counterbalanced by the network inefficiency": congestion
// stretches the makespan, and the nodes burn power throughout.
func (c *Cluster) JobEnergy(rep *simmpi.Report, ranks int) float64 {
	return float64(c.NodesFor(ranks)) * c.Node.Power.Compute * rep.Seconds
}

// SpeedupPoint is one point of a strong-scaling curve (Figure 3).
type SpeedupPoint struct {
	Cores      int
	Seconds    float64
	Speedup    float64 // versus the baseline point, scaled to its cores
	Efficiency float64 // Speedup / Cores
	Drops      uint64
}

// StrongScaling runs the job at each core count and derives speedups
// against the first (baseline) point, exactly like Figure 3 does —
// SPECFEM3D's baseline is a 4-core run because the instance cannot fit
// fewer than two nodes.
func StrongScaling(c *Cluster, coreCounts []int, job JobConfig,
	body func(*simmpi.Proc) error) ([]SpeedupPoint, error) {
	if len(coreCounts) == 0 {
		return nil, fmt.Errorf("cluster: no core counts")
	}
	points := make([]SpeedupPoint, 0, len(coreCounts))
	for _, cores := range coreCounts {
		j := job
		j.Ranks = cores
		rep, err := c.Run(j, body)
		if err != nil {
			return nil, fmt.Errorf("cluster: %d cores: %w", cores, err)
		}
		points = append(points, SpeedupPoint{
			Cores:   cores,
			Seconds: rep.Seconds,
			Drops:   rep.Drops,
		})
	}
	base := points[0]
	for i := range points {
		if points[i].Seconds > 0 {
			points[i].Speedup = base.Seconds / points[i].Seconds * float64(base.Cores)
			points[i].Efficiency = points[i].Speedup / float64(points[i].Cores)
		}
	}
	return points, nil
}
