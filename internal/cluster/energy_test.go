package cluster

import (
	"testing"

	"montblanc/internal/simmpi"
)

func TestNodesFor(t *testing.T) {
	c, _ := Tibidabo(8)
	cases := map[int]int{1: 1, 2: 1, 3: 2, 8: 4, 16: 8}
	for ranks, want := range cases {
		if got := c.NodesFor(ranks); got != want {
			t.Errorf("NodesFor(%d) = %d, want %d", ranks, got, want)
		}
	}
}

func TestJobEnergy(t *testing.T) {
	c, _ := Tibidabo(4)
	rep := &simmpi.Report{Seconds: 10}
	// 4 ranks -> 2 nodes x 8.5W x 10s = 170 J.
	if e := c.JobEnergy(rep, 4); e != 170 {
		t.Errorf("JobEnergy = %v, want 170", e)
	}
}

// The §IV caution, quantified: switch congestion stretches an
// alltoallv-bound job's makespan, and with it the cluster's
// energy-to-solution — the network inefficiency eats the node
// efficiency.
func TestCongestionEnergyOverhead(t *testing.T) {
	body := func(p *simmpi.Proc) error {
		counts := make([]int, p.Size())
		for i := range counts {
			counts[i] = 40 << 10
		}
		for it := 0; it < 3; it++ {
			p.ComputeFlops(1e7, "work")
			if err := p.Alltoallv(counts, simmpi.AlltoallvLinear); err != nil {
				return err
			}
		}
		return nil
	}
	job := JobConfig{Ranks: 36, CoreFlopsPerSec: 1e9}

	congested, err := Tibidabo(32)
	if err != nil {
		t.Fatal(err)
	}
	repC, err := congested.Run(job, body)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Tibidabo(32)
	if err != nil {
		t.Fatal(err)
	}
	clean.Net.InfiniteBuffers()
	repI, err := clean.Run(job, body)
	if err != nil {
		t.Fatal(err)
	}

	eCongested := congested.JobEnergy(repC, 36)
	eClean := clean.JobEnergy(repI, 36)
	if overhead := eCongested / eClean; overhead < 1.3 {
		t.Errorf("congestion energy overhead = %.2fx, want visible (>1.3x)", overhead)
	}
}
