package cluster

import (
	"strings"
	"testing"

	"montblanc/internal/simmpi"
	"montblanc/internal/units"
)

func TestTibidaboConstruction(t *testing.T) {
	c, err := Tibidabo(16)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cores() != 32 {
		t.Errorf("cores = %d, want 32", c.Cores())
	}
	if c.TotalRAM() != 16*units.GiB {
		t.Errorf("RAM = %d", c.TotalRAM())
	}
	if _, err := Tibidabo(0); err == nil {
		t.Error("zero nodes accepted")
	}
	// Large slices get the hierarchical topology (cross-leaf = 4 hops).
	big, err := Tibidabo(64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := big.Net.Send(0, 0, 63, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hops != 4 {
		t.Errorf("cross-leaf hops = %d, want 4", res.Hops)
	}
}

func TestValidateJob(t *testing.T) {
	c, _ := Tibidabo(4)
	if err := c.Validate(JobConfig{Ranks: 8}); err != nil {
		t.Errorf("8 ranks on 4 dual-core nodes rejected: %v", err)
	}
	if err := c.Validate(JobConfig{Ranks: 9}); err == nil {
		t.Error("9 ranks on 8 cores accepted")
	}
	if err := c.Validate(JobConfig{Ranks: 0}); err == nil {
		t.Error("0 ranks accepted")
	}
}

// The paper's SPECFEM3D memory constraint: "one node does not have
// enough memory to load this instance, which hence requires at least two
// nodes".
func TestMemoryConstraintForcesTwoNodes(t *testing.T) {
	c, _ := Tibidabo(8)
	instance := int64(1400 * units.MiB) // > 1 node's 1GB
	err := c.Validate(JobConfig{Ranks: 2, MemoryBytes: instance})
	if err == nil || !strings.Contains(err.Error(), "more nodes") {
		t.Errorf("2 ranks (1 node) should fail the memory check: %v", err)
	}
	if err := c.Validate(JobConfig{Ranks: 4, MemoryBytes: instance}); err != nil {
		t.Errorf("4 ranks (2 nodes) should fit: %v", err)
	}
	if n := c.MinNodesFor(instance); n != 2 {
		t.Errorf("MinNodesFor = %d, want 2", n)
	}
	if n := c.MinNodesFor(0); n != 1 {
		t.Errorf("MinNodesFor(0) = %d, want 1", n)
	}
}

func TestRunResetsFabric(t *testing.T) {
	c, _ := Tibidabo(8)
	job := JobConfig{Ranks: 16, CoreFlopsPerSec: 1e9}
	body := func(p *simmpi.Proc) error {
		counts := make([]int, p.Size())
		for i := range counts {
			counts[i] = 32 << 10
		}
		return p.Alltoallv(counts, simmpi.AlltoallvLinear)
	}
	a, err := c.Run(job, body)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Run(job, body)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds || a.Drops != b.Drops {
		t.Error("fabric state leaked between runs")
	}
}

func TestStrongScalingPerfectlyParallelJob(t *testing.T) {
	c, _ := Tibidabo(16)
	const totalFlops = 32e9
	job := JobConfig{CoreFlopsPerSec: 1e9}
	points, err := StrongScaling(c, []int{1, 2, 4, 8, 16, 32}, job,
		func(p *simmpi.Proc) error {
			p.ComputeFlops(totalFlops/float64(p.Size()), "work")
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	for _, pt := range points {
		if pt.Efficiency < 0.999 || pt.Efficiency > 1.001 {
			t.Errorf("%d cores: efficiency %.3f, want 1.0 (no communication)",
				pt.Cores, pt.Efficiency)
		}
	}
	if points[0].Speedup != 1 {
		t.Errorf("baseline speedup = %v", points[0].Speedup)
	}
}

func TestStrongScalingBaselineOffset(t *testing.T) {
	// With a 4-core baseline, speedup at 4 cores is 4 by definition.
	c, _ := Tibidabo(16)
	points, err := StrongScaling(c, []int{4, 8}, JobConfig{CoreFlopsPerSec: 1e9},
		func(p *simmpi.Proc) error {
			p.ComputeFlops(8e9/float64(p.Size()), "work")
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Speedup != 4 {
		t.Errorf("baseline speedup = %v, want 4", points[0].Speedup)
	}
	if points[1].Speedup < 7.9 || points[1].Speedup > 8.1 {
		t.Errorf("8-core speedup = %v, want ~8", points[1].Speedup)
	}
}

func TestStrongScalingErrors(t *testing.T) {
	c, _ := Tibidabo(2)
	if _, err := StrongScaling(c, nil, JobConfig{}, nil); err == nil {
		t.Error("empty core counts accepted")
	}
	_, err := StrongScaling(c, []int{64}, JobConfig{CoreFlopsPerSec: 1e9},
		func(p *simmpi.Proc) error { return nil })
	if err == nil {
		t.Error("oversubscription accepted")
	}
}

func TestCoreFlops(t *testing.T) {
	c, _ := Tibidabo(1)
	sp := c.CoreFlops(false, 1)
	dp := c.CoreFlops(true, 1)
	if sp <= dp {
		t.Error("SP per-core rate should exceed DP")
	}
	if dp != c.Node.CPU.ClockHz*c.Node.CPU.FlopsPerCycleDP {
		t.Errorf("per-core DP rate = %v", dp)
	}
}
