package cluster

import (
	"testing"

	"montblanc/internal/fault"
	"montblanc/internal/simmpi"
)

// ringJob is a minimal coupled job: compute then circulate a token.
func ringJob(p *simmpi.Proc) error {
	right := (p.Rank() + 1) % p.Size()
	left := (p.Rank() + p.Size() - 1) % p.Size()
	for it := 0; it < 4; it++ {
		p.Compute(1.0, "work")
		if err := p.Send(right, it, 64<<10); err != nil {
			return err
		}
		if err := p.Recv(left, it); err != nil {
			return err
		}
	}
	return nil
}

func TestRunAppliesFaultSchedule(t *testing.T) {
	c, err := Tibidabo(4)
	if err != nil {
		t.Fatal(err)
	}
	job := JobConfig{Ranks: 8, CoreFlopsPerSec: 1e9, CollectTrace: true}
	clean, err := c.Run(job, ringJob)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Faults.Interrupts != 0 {
		t.Fatalf("failure-free run saw %d interrupts", clean.Faults.Interrupts)
	}

	spec := &fault.Spec{
		DowntimeSeconds: 3,
		Events:          []fault.Event{{Node: 1, Time: 1.5}},
		Links: []fault.LinkFault{
			{Link: "node0->sw", Start: 0, End: 100, BandwidthFactor: 10},
		},
	}
	r, err := spec.Resolve(c.Nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	job.Faults = r
	faulty, err := c.Run(job, ringJob)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 hosts ranks 2 and 3 (two cores per node): both freeze.
	if faulty.Faults.Interrupts != 2 {
		t.Fatalf("interrupts = %d, want 2 (both ranks on node 1)", faulty.Faults.Interrupts)
	}
	if faulty.Faults.DownSeconds <= 0 {
		t.Fatal("no frozen time recorded")
	}
	if faulty.Seconds <= clean.Seconds {
		t.Fatalf("faulty run %v not slower than clean %v", faulty.Seconds, clean.Seconds)
	}
	if got := c.Net.DegradedTransfers(); got == 0 {
		t.Fatal("link fault never hit a transfer")
	}

	// A later failure-free run on the same cluster must match the first
	// clean run: Reset clears the degradations along with everything
	// else.
	job.Faults = nil
	again, err := c.Run(job, ringJob)
	if err != nil {
		t.Fatal(err)
	}
	if again.Seconds != clean.Seconds {
		t.Fatalf("post-fault clean run %v != original %v (fault state leaked)",
			again.Seconds, clean.Seconds)
	}
}

func TestRunRejectsUnknownFaultLink(t *testing.T) {
	c, err := Tibidabo(2)
	if err != nil {
		t.Fatal(err)
	}
	spec := &fault.Spec{Links: []fault.LinkFault{{Link: "bogus", Start: 0, End: 1}}}
	r, err := spec.Resolve(c.Nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	job := JobConfig{Ranks: 2, CoreFlopsPerSec: 1e9, Faults: r}
	if _, err := c.Run(job, ringJob); err == nil {
		t.Fatal("unknown link name accepted")
	}
}
