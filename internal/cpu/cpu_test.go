package cpu

import (
	"testing"
	"testing/quick"
)

func TestModelsValidate(t *testing.T) {
	for _, m := range []*Model{Nehalem(), A9500(), Tegra2()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := Nehalem()
	bad.ClockHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero clock accepted")
	}
	bad2 := Nehalem()
	bad2.MissOverlap = 1.5
	if err := bad2.Validate(); err == nil {
		t.Error("MissOverlap > 1 accepted")
	}
	bad3 := Nehalem()
	bad3.LoadIssue[1] = 0
	if err := bad3.Validate(); err == nil {
		t.Error("zero load issue accepted")
	}
	bad4 := Nehalem()
	bad4.FlopsPerCycleDP = 0
	if err := bad4.Validate(); err == nil {
		t.Error("zero DP throughput accepted")
	}
}

func TestWidthString(t *testing.T) {
	if W32.String() != "32b" || W64.String() != "64b" || W128.String() != "128b" {
		t.Error("width names wrong")
	}
	if W128.Bytes() != 16 {
		t.Error("W128 bytes wrong")
	}
	if len(Widths()) != 3 {
		t.Error("Widths() length")
	}
}

// Figure 6 premise: on Nehalem, wider elements reduce the issue cost per
// byte, so effective bandwidth grows monotonically with width.
func TestNehalemWiderIsCheaperPerByte(t *testing.T) {
	m := Nehalem()
	prev := 1e18
	for _, w := range Widths() {
		perByte := m.LoadCost(w) / float64(w.Bytes())
		if perByte >= prev {
			t.Errorf("Nehalem %v: %.3f cycles/byte not cheaper than previous width", w, perByte)
		}
		prev = perByte
	}
}

// Figure 6 premise: on the A9, 128-bit loads are no cheaper per byte
// than 32-bit loads ("vectorizing with 128 is similar to using 32 bit
// elements"), while 64-bit is the sweet spot.
func TestA9VectorizationPathology(t *testing.T) {
	m := A9500()
	perByte := func(w Width) float64 { return m.LoadCost(w) / float64(w.Bytes()) }
	if perByte(W128) < perByte(W32)*0.9 {
		t.Errorf("A9 128b (%f c/B) should not beat 32b (%f c/B)", perByte(W128), perByte(W32))
	}
	if perByte(W64) >= perByte(W32) {
		t.Errorf("A9 64b should beat 32b per byte")
	}
}

// Unrolling 8x on Nehalem must reduce the per-access cost for every
// width (Figure 6a: "unrolling loops and vectorizing both constantly
// improve performance").
func TestNehalemUnrollingAlwaysHelps(t *testing.T) {
	m := Nehalem()
	for _, w := range Widths() {
		c1 := m.IterationCost(w, 1) / 1
		c8 := m.IterationCost(w, 8) / 8
		if c8 >= c1 {
			t.Errorf("Nehalem %v: unroll8 %.3f >= unroll1 %.3f cycles/access", w, c8, c1)
		}
	}
}

// On the A9 with 128-bit elements, 8x unrolling overflows the usable
// q-register file and the spill penalty makes it *worse* (Figure 6b:
// "loop unrolling may even dramatically degrade performance").
func TestA9UnrollingDegrades128b(t *testing.T) {
	m := A9500()
	c1 := m.IterationCost(W128, 1) / 1
	c8 := m.IterationCost(W128, 8) / 8
	if c8 <= c1 {
		t.Errorf("A9 128b: unroll8 %.3f should exceed unroll1 %.3f cycles/access", c8, c1)
	}
	// ...while 64-bit unrolling still helps (the paper's best config).
	d1 := m.IterationCost(W64, 1) / 1
	d8 := m.IterationCost(W64, 8) / 8
	if d8 >= d1 {
		t.Errorf("A9 64b: unroll8 %.3f should beat unroll1 %.3f cycles/access", d8, d1)
	}
}

func TestSpillPenaltyMonotoneInUnroll(t *testing.T) {
	m := A9500()
	prev := -1.0
	for u := 1; u <= 16; u++ {
		p := m.SpillPenalty(W64, u)
		if p < prev {
			t.Errorf("spill penalty decreased at unroll %d", u)
		}
		prev = p
	}
	if m.SpillPenalty(W64, 1) != 0 {
		t.Error("no-unroll loop should not spill")
	}
}

func TestSpillAccesses(t *testing.T) {
	m := A9500()
	if n := m.SpillAccesses(5); n != 0 {
		t.Errorf("5 live values should fit, got %d accesses", n)
	}
	if n := m.SpillAccesses(12); n != 4 {
		t.Errorf("12 live with 10 regs => 2 spills => 4 accesses, got %d", n)
	}
}

func TestStallCycles(t *testing.T) {
	m := Nehalem() // 85% overlap
	if s := m.StallCycles(4, 4); s != 0 {
		t.Errorf("hit latency must not stall, got %f", s)
	}
	if s := m.StallCycles(104, 4); s < 14.99 || s > 15.01 {
		t.Errorf("stall = %f, want ~15 (100 extra * 0.15)", s)
	}
	a9 := A9500() // 45% overlap
	if s := a9.StallCycles(104, 4); s < 54.99 || s > 55.01 {
		t.Errorf("A9 stall = %f, want ~55", s)
	}
}

// The DP/SP gap drives Table II's BigDFT row: the A9 must be far worse
// at DP relative to SP than Nehalem is.
func TestA9DoublePrecisionPenalty(t *testing.T) {
	a9, xeon := A9500(), Nehalem()
	a9Gap := a9.FlopsPerCycleSP / a9.FlopsPerCycleDP
	xeonGap := xeon.FlopsPerCycleSP / xeon.FlopsPerCycleDP
	if a9Gap <= xeonGap {
		t.Errorf("A9 SP/DP gap %.2f should exceed Nehalem's %.2f", a9Gap, xeonGap)
	}
}

func TestFlopsTime(t *testing.T) {
	m := Nehalem()
	tSP := m.FlopsTime(1e9, false, 1)
	tDP := m.FlopsTime(1e9, true, 1)
	if tDP <= tSP {
		t.Error("DP must be slower than SP")
	}
	// Efficiency halves the rate -> doubles the time.
	tHalf := m.FlopsTime(1e9, false, 0.5)
	if tHalf <= tSP*1.9 || tHalf >= tSP*2.1 {
		t.Errorf("efficiency scaling wrong: %v vs %v", tHalf, tSP)
	}
	// Bad efficiency values fall back to 1.
	if m.FlopsTime(1e9, false, 0) != tSP {
		t.Error("efficiency 0 should fall back to 1")
	}
}

func TestIntOpsTime(t *testing.T) {
	m := A9500()
	want := 1e9 / (1e9 * m.IntIPC)
	if got := m.IntOpsTime(1e9); got != want {
		t.Errorf("IntOpsTime = %v, want %v", got, want)
	}
}

func TestTegra2WeakerSPThanA9500(t *testing.T) {
	if Tegra2().FlopsPerCycleSP >= A9500().FlopsPerCycleSP {
		t.Error("Tegra2 (no NEON) should have lower SP throughput than A9500")
	}
}

// Property: IterationCost is monotone nondecreasing in unroll (the total
// per iteration grows; only the per-access share shrinks).
func TestIterationCostMonotoneProperty(t *testing.T) {
	f := func(widthSel uint8, u1, u2 uint8) bool {
		m := A9500()
		w := Widths()[int(widthSel)%3]
		a, b := int(u1%16)+1, int(u2%16)+1
		if a > b {
			a, b = b, a
		}
		return m.IterationCost(w, a) <= m.IterationCost(w, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIterationCostClampsUnroll(t *testing.T) {
	m := Nehalem()
	if m.IterationCost(W32, 0) != m.IterationCost(W32, 1) {
		t.Error("unroll < 1 should clamp to 1")
	}
}

func TestSecondsPerCycle(t *testing.T) {
	if Nehalem().SecondsPerCycle() != 1/2.66e9 {
		t.Error("SecondsPerCycle wrong")
	}
}
