// Package cpu provides first-order core timing models for the three
// micro-architectures in the paper: Intel Nehalem (Xeon X5550),
// ST-Ericsson A9500 (Snowball) and NVIDIA Tegra2 — the last two both
// dual Cortex-A9 but with different memory subsystems and, crucially for
// BigDFT, a NEON unit that only supports single precision.
//
// The model is deliberately coarse — issue costs, loop overhead,
// register-pressure spills and miss-overlap factors — because those are
// exactly the effects the paper's Figures 6 and 7 turn on: wider
// elements and deeper unrolling always pay off on Nehalem, while on the
// Cortex-A9 128-bit accesses behave like 32-bit ones and unrolling can
// be dramatically detrimental.
package cpu

import "fmt"

// Width is a memory element width used by the stride kernel.
type Width int

// Element widths of Figure 6.
const (
	W32  Width = 4  // 32-bit scalar
	W64  Width = 8  // 64-bit scalar (or paired load)
	W128 Width = 16 // 128-bit vector (SSE / NEON q-register)
)

// Bytes returns the width in bytes.
func (w Width) Bytes() int { return int(w) }

// String names the width as in the paper's figures.
func (w Width) String() string {
	switch w {
	case W32:
		return "32b"
	case W64:
		return "64b"
	case W128:
		return "128b"
	default:
		return fmt.Sprintf("Width(%d)", int(w))
	}
}

// Widths lists all element widths in figure order.
func Widths() []Width { return []Width{W32, W64, W128} }

func widthIndex(w Width) int {
	switch w {
	case W32:
		return 0
	case W64:
		return 1
	case W128:
		return 2
	default:
		return -1
	}
}

// Model is a first-order core timing model. The JSON tags define the
// wire form used by platform spec files (see internal/platform.Spec).
type Model struct {
	Name    string  `json:"name"`
	ClockHz float64 `json:"clock_hz"`

	// LoadIssue[i] is the sustained issue cost in cycles of one load of
	// Widths()[i]. On Nehalem one 128-bit load issues per cycle; on the
	// A9 a 128-bit NEON load cracks into multiple slots and suffers
	// alignment penalties, making it no better than 32-bit scalar code.
	LoadIssue [3]float64 `json:"load_issue"`

	// LoopOverhead is the per-iteration cost (compare, branch, index
	// update) paid once per source-level loop iteration. Unrolling
	// amortizes it.
	LoopOverhead float64 `json:"loop_overhead"`

	// Regs[i] is the number of architectural registers usable to hold
	// in-flight loaded values of Widths()[i] before the compiler starts
	// spilling. Out-of-order renaming makes the effective Nehalem file
	// larger than its 16 architectural registers.
	Regs [3]int `json:"regs"`

	// SpillCost is the cycle cost per spilled value per iteration (one
	// store + one reload hitting the store buffer / L1).
	SpillCost float64 `json:"spill_cost"`

	// MissOverlap is the fraction of beyond-L1 latency hidden by the
	// memory pipeline (miss-under-miss, prefetch). Out-of-order Nehalem
	// hides most of it; the in-order dual-issue A9 hides little.
	MissOverlap float64 `json:"miss_overlap"`

	// Floating-point throughput per core in flops/cycle. The A9500's
	// NEON is single-precision only, so DP work falls back to the
	// non-pipelined VFP giving a dramatically lower DP figure —
	// the paper's explanation for BigDFT's 23.2x slowdown.
	FlopsPerCycleSP float64 `json:"flops_per_cycle_sp"`
	FlopsPerCycleDP float64 `json:"flops_per_cycle_dp"`

	// IntIPC is the sustained instructions-per-cycle on branchy integer
	// code (CoreMark, chess search).
	IntIPC float64 `json:"int_ipc"`

	// SpillPipelineFactor scales how violently spills hurt. On the
	// in-order A9 a spill stalls the pipeline; on Nehalem the store
	// buffer absorbs it.
	SpillPipelineFactor float64 `json:"spill_pipeline_factor"`

	// OutOfOrder marks cores with register renaming and a reorder
	// window. In-order cores expose floating-point dependency latency
	// directly, which is why unrolling (more independent accumulator
	// chains) matters so much more on the Cortex-A9 (Figure 7).
	OutOfOrder bool `json:"out_of_order"`
}

// Validate reports model configuration errors.
func (m *Model) Validate() error {
	if m.ClockHz <= 0 {
		return fmt.Errorf("cpu %s: non-positive clock", m.Name)
	}
	for i, c := range m.LoadIssue {
		if c <= 0 {
			return fmt.Errorf("cpu %s: LoadIssue[%d] = %f", m.Name, i, c)
		}
	}
	if m.MissOverlap < 0 || m.MissOverlap > 1 {
		return fmt.Errorf("cpu %s: MissOverlap %f out of [0,1]", m.Name, m.MissOverlap)
	}
	if m.FlopsPerCycleSP <= 0 || m.FlopsPerCycleDP <= 0 || m.IntIPC <= 0 {
		return fmt.Errorf("cpu %s: non-positive throughput", m.Name)
	}
	return nil
}

// LoadCost returns the issue cost in cycles for one load of width w.
func (m *Model) LoadCost(w Width) float64 { return m.LoadIssue[widthIndex(w)] }

// RegsFor returns the usable register count for width w.
func (m *Model) RegsFor(w Width) int { return m.Regs[widthIndex(w)] }

// IterationCost returns the issue cycles consumed by one *unrolled*
// iteration of a load loop: `unroll` loads of width w plus loop
// overhead plus any register-spill penalty. Divide by unroll for the
// per-element-access cost.
func (m *Model) IterationCost(w Width, unroll int) float64 {
	if unroll < 1 {
		unroll = 1
	}
	cost := float64(unroll)*m.LoadCost(w) + m.LoopOverhead
	cost += m.SpillPenalty(w, unroll)
	return cost
}

// SpillPenalty returns the extra cycles per iteration caused by
// register pressure: unrolled loop bodies keep `unroll` values live
// (plus index/bound bookkeeping); values beyond the usable file spill.
// The cost scales with the element width — spilling a q-register moves
// four times the bytes of a word spill.
func (m *Model) SpillPenalty(w Width, unroll int) float64 {
	live := unroll + 2 // loaded values + index + bound
	excess := live - m.RegsFor(w)
	if excess <= 0 {
		return 0
	}
	widthScale := float64(w.Bytes()) / 4
	return float64(excess) * m.SpillCost * widthScale * m.SpillPipelineFactor
}

// SpillAccesses returns the number of extra L1 accesses per iteration
// due to spilling (a store and a reload per spilled value). This feeds
// the PAPI cache-access counter in the magicfilter study (Figure 7).
func (m *Model) SpillAccesses(live int) int {
	// live counts values the loop body must keep simultaneously.
	excess := live - m.Regs[0]
	if excess <= 0 {
		return 0
	}
	return 2 * excess
}

// StallCycles converts a cache access latency into pipeline stall
// cycles, crediting the hierarchy's L1 hit latency as fully pipelined
// and hiding MissOverlap of the remainder.
func (m *Model) StallCycles(accessLatency, l1Hit int) float64 {
	extra := float64(accessLatency - l1Hit)
	if extra <= 0 {
		return 0
	}
	return extra * (1 - m.MissOverlap)
}

// StallCyclesTotal is the aggregate counterpart of StallCycles for the
// batched cache path: extraCycles is a pre-clamped sum of per-access
// latency beyond the L1 hit cost (cache.RunResult.Extra), converted to
// stall cycles in one step.
func (m *Model) StallCyclesTotal(extraCycles uint64) float64 {
	return float64(extraCycles) * (1 - m.MissOverlap)
}

// SecondsPerCycle returns the wall-clock duration of one cycle.
func (m *Model) SecondsPerCycle() float64 { return 1 / m.ClockHz }

// FlopsTime returns the time to execute `flops` floating-point
// operations on one core at the given precision and efficiency
// (efficiency in (0,1] accounts for non-peak kernels).
func (m *Model) FlopsTime(flops float64, doublePrecision bool, efficiency float64) float64 {
	if efficiency <= 0 || efficiency > 1 {
		efficiency = 1
	}
	rate := m.FlopsPerCycleSP
	if doublePrecision {
		rate = m.FlopsPerCycleDP
	}
	return flops / (m.ClockHz * rate * efficiency)
}

// IntOpsTime returns the time to execute `ops` machine operations of
// branchy integer code on one core.
func (m *Model) IntOpsTime(ops float64) float64 {
	return ops / (m.ClockHz * m.IntIPC)
}

// Nehalem returns the Intel Xeon X5550 core model (2.66 GHz Nehalem-EP;
// the paper rounds to "2.6GHz"). SSE2: 128-bit loads at 1/cycle, 2 DP
// flops/cycle sustained in dense kernels, deep out-of-order window.
func Nehalem() *Model {
	return &Model{
		Name:                "Nehalem",
		ClockHz:             2.66e9,
		LoadIssue:           [3]float64{1.0, 1.0, 1.0},
		LoopOverhead:        2.0,
		Regs:                [3]int{18, 18, 16}, // renamed effective file
		SpillCost:           1.0,
		SpillPipelineFactor: 0.5, // store buffer absorbs spills
		MissOverlap:         0.85,
		FlopsPerCycleSP:     4.0, // 128-bit SSE SP
		FlopsPerCycleDP:     2.3, // measured HPL-class DP throughput
		IntIPC:              1.55,
		OutOfOrder:          true,
	}
}

// CortexA9 returns the core model shared by the A9500 (Snowball) and
// Tegra2 SoCs: dual-issue in-order 1 GHz Cortex-A9 with NEON (SP only)
// and a non-pipelined VFP for double precision.
func CortexA9(name string) *Model {
	return &Model{
		Name:    name,
		ClockHz: 1.0e9,
		// 32-bit scalar load: ~1.3 cycles sustained; 64-bit LDRD moves
		// two words per issue slot; a 128-bit NEON VLD1 cracks into
		// several slots and stalls on alignment, leaving it no better
		// per byte than scalar code — the Figure 6b pathology.
		LoadIssue:           [3]float64{1.3, 1.4, 12.0},
		LoopOverhead:        3.0,
		Regs:                [3]int{10, 10, 4}, // small usable file; q-regs scarce
		SpillCost:           2.5,
		SpillPipelineFactor: 2.0,  // in-order pipeline stalls on spills
		MissOverlap:         0.45, // PL310 sequential prefetch hides part of L2 latency
		FlopsPerCycleSP:     1.0,  // NEON MAC, SP only
		FlopsPerCycleDP:     0.35, // VFP, non-pipelined
		IntIPC:              0.95,
	}
}

// A9500 returns the Snowball's ST-Ericsson A9500 core model.
func A9500() *Model { return CortexA9("A9500") }

// CortexA15 returns the out-of-order Cortex-A15 core model used by the
// Exynos 5 Dual platforms (§VI and the deployed Mont-Blanc prototype):
// 1.7 GHz, VFPv4 NEON with FMA (4 SP flops/cycle) and NEONv2 double
// precision, a deeper pipeline that overlaps more of the miss latency
// than the A9.
func CortexA15() *Model {
	m := CortexA9("CortexA15")
	m.ClockHz = 1.7e9
	m.OutOfOrder = true
	m.MissOverlap = 0.6
	m.IntIPC = 1.4
	m.FlopsPerCycleSP = 4.0 // VFPv4 NEON with FMA
	m.FlopsPerCycleDP = 1.0 // NEONv2 handles doubles
	m.Regs = [3]int{14, 14, 8}
	return m
}

// ThunderX2 returns the Marvell ThunderX2 CN99xx core model of the
// Dibona cluster study (arXiv:2007.04868): 2.0 GHz Vulcan core, 4-wide
// out-of-order, two 128-bit NEON units (8 SP / 4 DP flops/cycle with
// FMA) and the large AArch64 register files that make unrolling safe.
func ThunderX2() *Model {
	return &Model{
		Name:                "ThunderX2",
		ClockHz:             2.0e9,
		LoadIssue:           [3]float64{1.0, 1.0, 1.0}, // two load/store pipes
		LoopOverhead:        2.0,
		Regs:                [3]int{26, 26, 28}, // 31 GP / 32 NEON architectural
		SpillCost:           1.0,
		SpillPipelineFactor: 0.5,
		MissOverlap:         0.8,
		FlopsPerCycleSP:     8.0, // 2 x 128-bit NEON FMA
		FlopsPerCycleDP:     4.0,
		IntIPC:              1.3,
		OutOfOrder:          true,
	}
}

// Tegra2 returns the Tibidabo node's NVIDIA Tegra2 core model. Same
// Cortex-A9 pipeline as the A9500 but without NEON: the Tegra2 omits the
// media engine, so even SP throughput is VFP-bound, and 128-bit element
// accesses gain nothing.
func Tegra2() *Model {
	m := CortexA9("Tegra2")
	m.FlopsPerCycleSP = 0.5 // VFPv3 without NEON
	m.LoadIssue = [3]float64{1.3, 1.4, 12.5}
	return m
}
