// Package simmpi is a deterministic, discrete-event MPI simulator: rank
// programs written in Go run as goroutines against a simulated network
// and advance a virtual clock instead of wall time. It provides the
// substrate for the paper's scalability studies (Figures 3 and 4):
// point-to-point messaging with eager and rendezvous protocols, and the
// collectives the applications need, built from point-to-point exactly
// like a real MPI implementation would.
//
// Determinism: a central scheduler executes communication events in
// global (virtual time, rank) order; it only commits an event when every
// live rank has declared its next operation, so link reservations happen
// in causal order regardless of goroutine scheduling. Running the same
// program twice produces bit-identical timings and traces.
//
// The scheduler commits from an indexed min-heap of executable
// operations in O(log Ranks) per event with an allocation-free
// steady-state hot path; SIMMPI.md documents the design, the
// determinism invariants, and the performance envelope.
package simmpi

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"

	"montblanc/internal/network"
	"montblanc/internal/trace"
)

// EagerThreshold is the message size above which transfers switch from
// the eager protocol (fire-and-forget, can overflow switch buffers) to
// receiver-paced rendezvous (immune to drops, extra handshake). 64 KiB
// follows common MPI defaults of the era.
const EagerThreshold = 64 << 10

// MaxWorkers bounds Config.Workers: shards beyond it cost barrier
// synchronization without buying parallelism on any plausible host.
// Absurd requests are clamped here rather than rejected.
const MaxWorkers = 64

// Outage marks a node unavailable over [Start, End) of virtual time: a
// crash at Start followed by a restart at End. While the node is down
// its ranks are frozen — local work in progress resumes after the
// restart, and communication completions landing inside the window are
// deferred to it (in-flight messages progress through the fabric
// store-and-forward, but a rank cannot observe them while its node is
// down). Down windows are left unrecorded in the trace, so
// phase-resolved energy accounting prices them at idle watts for free.
//
// Determinism: an outage changes only how a rank's local clock
// advances — a pure function of (the rank's node, the rank's program)
// — so the sequential and conservative-parallel schedulers commit
// byte-identical runs with no new synchronization. Warps only ever
// move clocks forward, which keeps the lookahead bound conservative.
type Outage struct {
	Node       int
	Start, End float64
}

// Config describes one simulated job.
type Config struct {
	Ranks        int
	Net          *network.Network
	RanksPerNode int // default 1

	// Outages injects node failures into the run (see Outage). Windows
	// on the same node may overlap; they are merged. Empty means a
	// failure-free run, byte-identical to a Config without the field.
	Outages []Outage

	// CoreFlopsPerSec is the per-rank sustained floating-point rate used
	// by ComputeFlops. Default 1e9.
	CoreFlopsPerSec float64

	// SendOverhead is the CPU cost of posting a send (default 2us), on
	// top of the memcpy at CopyBandwidth (default 600 MB/s).
	SendOverhead  float64
	CopyBandwidth float64

	// CollectTrace enables interval/communication recording.
	CollectTrace bool

	// TraceHint is an optional capacity hint: the expected number of
	// trace intervals one rank records. When CollectTrace is set it
	// presizes the per-rank interval buffers and the shared
	// communication log, eliminating append regrowth on long runs. It
	// never affects results, only allocation behaviour; zero (or
	// tracing off) means no preallocation.
	TraceHint int

	// Workers selects the scheduler. At <= 1 (the default) events
	// commit on the sequential reference scheduler in global
	// (ready, rank) order. Above 1 the conservative parallel scheduler
	// shards nodes across up to Workers goroutines committing in
	// lookahead-bounded windows (see parallel.go and SIMMPI.md);
	// values above MaxWorkers are clamped, and the engine falls back
	// to the sequential path when the network reports no lookahead or
	// the job is too small to shard. Output is byte-identical at every
	// value — Workers trades wall-clock only.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.RanksPerNode <= 0 {
		c.RanksPerNode = 1
	}
	if c.CoreFlopsPerSec <= 0 {
		c.CoreFlopsPerSec = 1e9
	}
	if c.SendOverhead <= 0 {
		c.SendOverhead = 2e-6
	}
	if c.CopyBandwidth <= 0 {
		c.CopyBandwidth = 600e6
	}
	if c.Workers > MaxWorkers {
		c.Workers = MaxWorkers
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Ranks <= 0 {
		return errors.New("simmpi: need at least one rank")
	}
	if c.Net == nil {
		return errors.New("simmpi: nil network")
	}
	if need := (c.Ranks + c.RanksPerNode - 1) / c.RanksPerNode; need > c.Net.NumNodes {
		return fmt.Errorf("simmpi: %d ranks at %d per node need %d nodes, network has %d",
			c.Ranks, c.RanksPerNode, need, c.Net.NumNodes)
	}
	if c.Workers < 0 {
		return fmt.Errorf("simmpi: negative worker count %d", c.Workers)
	}
	for i, o := range c.Outages {
		switch {
		case math.IsNaN(o.Start) || math.IsNaN(o.End) ||
			math.IsInf(o.Start, 0) || math.IsInf(o.End, 0):
			return fmt.Errorf("simmpi: outage %d: non-finite window [%v, %v)", i, o.Start, o.End)
		case o.Start < 0:
			return fmt.Errorf("simmpi: outage %d: negative start %v", i, o.Start)
		case o.End <= o.Start:
			return fmt.Errorf("simmpi: outage %d: empty window [%v, %v)", i, o.Start, o.End)
		case o.Node < 0 || o.Node >= c.Net.NumNodes:
			return fmt.Errorf("simmpi: outage %d: node %d outside [0, %d)", i, o.Node, c.Net.NumNodes)
		}
	}
	return nil
}

// Report is the outcome of a run.
type Report struct {
	Seconds     float64 // makespan: latest rank finish time
	RankSeconds []float64
	Trace       *trace.Trace // nil unless CollectTrace
	Drops       uint64       // network buffer overruns
	Sched       SchedStats   // how the scheduler executed the run
	Faults      FaultStats   // injected-outage impact (zero when failure-free)
}

// FaultStats summarizes what the injected node outages did to a run.
// Like the rest of the report it is byte-identical at any worker
// count: freezes are a pure function of each rank's program and its
// node's outage windows.
type FaultStats struct {
	DownSeconds float64 // total rank-seconds frozen inside outage windows
	Interrupts  uint64  // rank-freeze events (one per outage a rank hit)
}

// SchedStats describes one run from the scheduler's point of view:
// the observability the speedup curve is explained with. Every field
// except Workers, Windows and Wall is invariant in the worker count —
// cross-node sends go through the window barrier at any shard layout,
// so the cross-send ratio measured sequentially predicts the parallel
// barrier traffic.
type SchedStats struct {
	Workers    int     // scheduler shards used (1 = sequential reference)
	Lookahead  float64 // seconds: the network's min cross-node latency (0 = unknown)
	Windows    uint64  // commit windows barriered (0 on the sequential path)
	Events     uint64  // operations committed
	LocalSends uint64  // intra-node sends, committed shard-locally
	CrossSends uint64  // cross-node sends, exchanged at window barriers
	Wall       float64 // host seconds spent inside the run
}

type opKind int

const (
	opSend opKind = iota
	opRecv
	opExit
)

func (k opKind) String() string {
	switch k {
	case opSend:
		return "send"
	case opRecv:
		return "recv"
	case opExit:
		return "exit"
	default:
		return fmt.Sprintf("opKind(%d)", int(k))
	}
}

// op is one rank's declared next operation. Each Proc owns exactly one
// op struct for its whole lifetime (postBuf): because a rank blocks
// until the scheduler resumes it, and the scheduler never touches an op
// after sending the resume, the struct can be reused for every post —
// the hot path allocates nothing per operation.
type op struct {
	kind          opKind
	rank          int
	time          float64 // rank-local post time
	src, dst, tag int
	bytes         int
	ready         float64 // completion time once executable
	matched       bool    // recv only
	matchedMsg    msg
	err           error // exit only
	heapIdx       int   // position in the scheduler heap, -1 if outside
}

type msg struct {
	arrival float64
	dropped bool
	bytes   int
}

type resumeMsg struct {
	time    float64
	dropped bool // recv only: the message was retransmitted en route
}

// hooks are test-only scheduler observation points; the zero value is
// the production configuration.
type hooks struct {
	// linearScan replaces the heap pick with the seed scheduler's
	// O(Ranks) scan over pending ops — the reference implementation the
	// equivalence property suite compares commit orders against.
	linearScan bool
	// onCommit, when set, observes every committed operation in commit
	// order.
	onCommit func(kind opKind, rank int, ready float64)
}

type world struct {
	cfg      Config
	opCh     chan *op
	resume   []chan resumeMsg
	mail     []mailbox // indexed by destination rank
	pending  []*op     // indexed by rank; nil when the rank has not declared
	nPending int
	heap     opHeap
	comms    []trace.Comm
	hooks    hooks

	// outages holds each node's merged, start-sorted outage windows;
	// nil for failure-free runs (the hot paths then skip all fault
	// bookkeeping).
	outages [][]Outage

	// Interned trace labels, indexed by peer rank (built only when
	// CollectTrace is set): one "send->N" / "recv<-N" string per rank
	// for the whole run instead of one fmt.Sprintf per message.
	sendLabels []string
	recvLabels []string
}

func (w *world) node(rank int) int { return rank / w.cfg.RanksPerNode }

// Proc is the handle a rank program uses: its identity, virtual clock
// and communication primitives.
type Proc struct {
	rank, size   int
	now          float64
	w            *world
	opCh         chan *op // where this rank declares operations (per-shard when parallel)
	tr           *trace.Trace
	collSeq      map[string]int
	droppedRecvs int // running count of retransmitted messages received
	postBuf      op  // the rank's reusable operation struct

	// down is this rank's node's outage schedule (nil when failure-
	// free); downIdx advances monotonically with the clock, so fault
	// checks are O(1) amortized and free once the last outage is past.
	down        []Outage
	downIdx     int
	downSeconds float64
	interrupts  uint64
}

// Rank returns this process's rank in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of ranks.
func (p *Proc) Size() int { return p.size }

// Now returns the rank's virtual clock in seconds.
func (p *Proc) Now() float64 { return p.now }

// Compute advances the virtual clock by seconds of local work.
func (p *Proc) Compute(seconds float64, label string) {
	p.advance(seconds, trace.StateCompute, label)
}

// ComputeFlops advances the clock by flops at the configured core rate.
func (p *Proc) ComputeFlops(flops float64, label string) {
	p.Compute(flops/p.w.cfg.CoreFlopsPerSec, label)
}

// Stall advances the virtual clock by seconds of memory-bound work
// (cores waiting on DRAM), recorded as a memory interval so
// phase-resolved power accounting can charge it at memory watts.
func (p *Proc) Stall(seconds float64, label string) {
	p.advance(seconds, trace.StateMemory, label)
}

// advance moves the clock forward by seconds of local work of the
// given kind, freezing whenever the rank's node is down: work that
// overlaps an outage is suspended and resumes after the restart,
// recorded as separate intervals around the (unrecorded) down window.
func (p *Proc) advance(seconds float64, kind trace.Kind, label string) {
	if seconds < 0 {
		seconds = 0
	}
	if p.downIdx >= len(p.down) {
		// The only path failure-free runs take: byte-identical to the
		// historical Compute/Stall, including zero-length intervals.
		start := p.now
		p.now += seconds
		p.record(kind, label, start, p.now)
		return
	}
	remaining := seconds
	for {
		p.skipDown()
		limit := math.Inf(1)
		if p.downIdx < len(p.down) {
			limit = p.down[p.downIdx].Start
		}
		if p.now+remaining <= limit {
			start := p.now
			p.now += remaining
			p.record(kind, label, start, p.now)
			return
		}
		// Work until the crash, then loop: skipDown freezes across the
		// outage opening at limit and the tail resumes after it.
		if done := limit - p.now; done > 0 {
			p.record(kind, label, p.now, limit)
			p.now = limit
			remaining -= done
		} else {
			p.now = limit
		}
	}
}

// skipDown freezes the rank across any outage containing its current
// clock, charging the frozen time to the fault stats. Clocks are
// monotonic, so the window index only ever moves forward.
func (p *Proc) skipDown() {
	for p.downIdx < len(p.down) {
		o := p.down[p.downIdx]
		if o.End <= p.now {
			p.downIdx++
			continue
		}
		if o.Start > p.now {
			return
		}
		p.downSeconds += o.End - p.now
		p.interrupts++
		p.now = o.End
		p.downIdx++
	}
}

func (p *Proc) record(kind trace.Kind, name string, start, end float64) {
	if p.tr == nil {
		return
	}
	p.tr.AddInterval(trace.Interval{
		Rank: p.rank, Kind: kind, Name: name, Start: start, End: end,
	})
}

// post submits an operation through the rank's reusable op struct and
// blocks until the scheduler completes it. The scheduler owns the
// struct from the channel send until it resumes the rank; it never
// touches the op afterwards, so the next post may safely overwrite it.
func (p *Proc) post(kind opKind, src, dst, tag, bytes int) resumeMsg {
	o := &p.postBuf
	o.kind = kind
	o.rank = p.rank
	o.time = p.now
	o.src, o.dst, o.tag = src, dst, tag
	o.bytes = bytes
	o.matched = false
	o.matchedMsg = msg{}
	o.err = nil
	p.opCh <- o
	return <-p.w.resume[p.rank]
}

// Send transmits bytes to rank dst with the given tag. It returns once
// the local side is free again (eager) — delivery happens in the
// background at network speed.
func (p *Proc) Send(dst, tag, bytes int) error {
	if dst < 0 || dst >= p.size {
		return fmt.Errorf("simmpi: send to invalid rank %d", dst)
	}
	if bytes < 0 {
		return fmt.Errorf("simmpi: negative send size %d", bytes)
	}
	start := p.now
	p.now = p.post(opSend, 0, dst, tag, bytes).time
	if p.tr != nil {
		p.record(trace.StateSend, p.w.sendLabels[dst], start, p.now)
	}
	// A completion landing inside an outage is observed at the restart;
	// the gap between the recorded interval and the warped clock shows
	// up as idle time.
	p.skipDown()
	return nil
}

// Recv blocks until a message from src with the given tag arrives.
func (p *Proc) Recv(src, tag int) error {
	if src < 0 || src >= p.size {
		return fmt.Errorf("simmpi: recv from invalid rank %d", src)
	}
	start := p.now
	r := p.post(opRecv, src, 0, tag, 0)
	p.now = r.time
	if r.dropped {
		p.droppedRecvs++
	}
	if p.tr != nil {
		p.record(trace.StateRecv, p.w.recvLabels[src], start, p.now)
	}
	p.skipDown() // deferred completion, as in Send
	return nil
}

// Collective wraps body in a named collective interval; the instance
// name carries a per-rank sequence number so the same call site groups
// across ranks ("alltoallv#3"). The interval records how many of the
// rank's receives inside the collective were retransmitted — the
// Figure 4 congestion evidence.
func (p *Proc) Collective(name string, body func() error) error {
	seq := p.collSeq[name]
	p.collSeq[name] = seq + 1
	start := p.now
	dropsBefore := p.droppedRecvs
	err := body()
	if p.tr != nil {
		p.tr.AddInterval(trace.Interval{
			Rank: p.rank, Kind: trace.StateCollective,
			Name: name + "#" + strconv.Itoa(seq), Start: start, End: p.now,
			Dropped: p.droppedRecvs - dropsBefore,
		})
	}
	return err
}

// Run executes body on every rank of a fresh world and returns the
// report. Any rank error aborts with that error (lowest rank wins).
func Run(cfg Config, body func(*Proc) error) (*Report, error) {
	return run(cfg, body, hooks{})
}

// newWorld builds the state both schedulers share: mailboxes, resume
// channels, the pending table and the interned trace labels.
func newWorld(cfg Config, h hooks) *world {
	w := &world{
		cfg:     cfg,
		resume:  make([]chan resumeMsg, cfg.Ranks),
		mail:    make([]mailbox, cfg.Ranks),
		pending: make([]*op, cfg.Ranks),
		hooks:   h,
	}
	if len(cfg.Outages) > 0 {
		w.outages = buildNodeOutages(cfg)
	}
	if cfg.CollectTrace {
		w.sendLabels = make([]string, cfg.Ranks)
		w.recvLabels = make([]string, cfg.Ranks)
		for i := range w.sendLabels {
			n := strconv.Itoa(i)
			w.sendLabels[i] = "send->" + n
			w.recvLabels[i] = "recv<-" + n
		}
		if cfg.TraceHint > 0 {
			// Roughly half a rank's intervals are sends, each one comm.
			w.comms = make([]trace.Comm, 0, cfg.Ranks*cfg.TraceHint/2)
		}
	}
	return w
}

// spawnProcs starts one goroutine per rank running body; each rank
// declares operations on chFor(rank) — the shared channel sequentially,
// its shard's channel in parallel.
func (w *world) spawnProcs(body func(*Proc) error, chFor func(rank int) chan *op) []*Proc {
	cfg := w.cfg
	procs := make([]*Proc, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		w.resume[r] = make(chan resumeMsg, 1)
		p := &Proc{rank: r, size: cfg.Ranks, w: w, opCh: chFor(r), collSeq: map[string]int{}}
		if w.outages != nil {
			p.down = w.outages[w.node(r)]
			p.skipDown() // a node down at t=0 boots its ranks at the restart
		}
		if cfg.CollectTrace {
			p.tr = trace.New(cfg.Ranks)
			if cfg.TraceHint > 0 {
				p.tr.Reserve(cfg.TraceHint, 0)
			}
		}
		procs[r] = p
		go func(p *Proc) {
			var err error
			func() {
				defer func() {
					if r := recover(); r != nil {
						err = fmt.Errorf("rank body panicked: %v", r)
					}
				}()
				err = body(p)
			}()
			// The body has returned: its final post (if any) is fully
			// committed, so the reusable op struct is free for the exit.
			o := &p.postBuf
			*o = op{kind: opExit, rank: p.rank, time: p.now, err: err}
			p.opCh <- o
		}(p)
	}
	return procs
}

// buildNodeOutages groups, sorts and merges the configured outages by
// node. Overlapping or adjacent windows on one node collapse into one,
// so skipDown always sees disjoint windows in start order.
func buildNodeOutages(cfg Config) [][]Outage {
	per := make([][]Outage, cfg.Net.NumNodes)
	for _, o := range cfg.Outages {
		per[o.Node] = append(per[o.Node], o)
	}
	for n, list := range per {
		if len(list) < 2 {
			continue
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].Start != list[j].Start {
				return list[i].Start < list[j].Start
			}
			return list[i].End < list[j].End
		})
		merged := list[:1]
		for _, o := range list[1:] {
			last := &merged[len(merged)-1]
			if o.Start <= last.End {
				if o.End > last.End {
					last.End = o.End
				}
				continue
			}
			merged = append(merged, o)
		}
		per[n] = merged
	}
	return per
}

// faultTotals sums the per-rank freeze accounting after a run. Safe to
// read without further synchronization: a rank writes its counters
// before posting opExit, and the scheduler observed that exit before
// the run returned.
func faultTotals(procs []*Proc) FaultStats {
	var fs FaultStats
	for _, p := range procs {
		fs.DownSeconds += p.downSeconds
		fs.Interrupts += p.interrupts
	}
	return fs
}

// mergeTrace assembles the final trace: per-rank intervals in rank
// order plus the global communication log, then the canonical sort.
func mergeTrace(cfg Config, procs []*Proc, comms []trace.Comm) *trace.Trace {
	tr := trace.New(cfg.Ranks)
	nIntervals := 0
	for _, p := range procs {
		nIntervals += len(p.tr.Intervals)
	}
	tr.Reserve(nIntervals, len(comms))
	for _, p := range procs {
		tr.Merge(p.tr)
	}
	tr.Comms = append(tr.Comms, comms...)
	tr.Sort()
	return tr
}

// shardCount returns how many scheduler shards a run will use: Workers
// bounded by the node count, collapsing to the sequential path when
// parallelism cannot help (one worker, one node) or cannot be proven
// exact (no lookahead from the network, scheduler observation hooks).
func shardCount(cfg Config, h hooks) int {
	if cfg.Workers <= 1 || h.linearScan || h.onCommit != nil {
		return 1
	}
	if !(cfg.Net.Lookahead() > 0) {
		return 1
	}
	nodes := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	workers := cfg.Workers
	if workers > nodes {
		workers = nodes
	}
	return workers
}

// run is Run with scheduler hooks (production callers pass the zero
// value via Run; tests use the hooks to compare pickers and observe
// commit order).
func run(cfg Config, body func(*Proc) error, h hooks) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if workers := shardCount(cfg, h); workers > 1 {
		return runParallel(cfg, body, workers)
	}
	start := nowMonotonic()
	w := newWorld(cfg, h)
	w.opCh = make(chan *op)
	w.heap.a = make([]*op, 0, cfg.Ranks)
	procs := w.spawnProcs(body, func(int) chan *op { return w.opCh })

	endTimes := make([]float64, cfg.Ranks)
	rankErrs := make([]error, cfg.Ranks)
	live := cfg.Ranks
	netErr := error(nil)
	stats := SchedStats{Workers: 1, Lookahead: cfg.Net.Lookahead()}

	for live > 0 && netErr == nil {
		// Collect until every live rank has declared its next operation
		// — the barrier that makes commit order independent of goroutine
		// scheduling.
		for w.nPending < live {
			o := <-w.opCh
			w.pending[o.rank] = o
			w.nPending++
			switch o.kind {
			case opSend, opExit:
				o.ready = o.time
				w.enqueue(o)
			case opRecv:
				o.ready = math.Inf(1)
				w.tryMatch(o)
			}
		}
		// Commit the executable op with the smallest (ready, rank).
		best := w.pick()
		if best == nil {
			return nil, w.deadlockError()
		}
		w.pending[best.rank] = nil
		w.nPending--
		stats.Events++
		if h.onCommit != nil {
			h.onCommit(best.kind, best.rank, best.ready)
		}
		switch best.kind {
		case opSend:
			if w.node(best.rank) == w.node(best.dst) {
				stats.LocalSends++
			} else {
				stats.CrossSends++
			}
			res, err := w.deliver(best)
			if err != nil {
				netErr = err
				break
			}
			m := msg{arrival: res.Arrival, dropped: res.Dropped, bytes: best.bytes}
			w.mail[best.dst].push(best.rank, best.tag, m)
			if cfg.CollectTrace {
				w.comms = append(w.comms, trace.Comm{
					Src: best.rank, Dst: best.dst, Tag: best.tag, Bytes: best.bytes,
					Sent: best.time, Arrived: res.Arrival, Dropped: res.Dropped,
				})
			}
			// A parked recv may now be satisfiable.
			if ro := w.pending[best.dst]; ro != nil && ro.kind == opRecv && !ro.matched {
				w.tryMatch(ro)
			}
			overhead := cfg.SendOverhead + float64(best.bytes)/cfg.CopyBandwidth
			w.resume[best.rank] <- resumeMsg{time: best.time + overhead}
		case opRecv:
			copyCost := float64(best.matchedMsg.bytes) / cfg.CopyBandwidth
			w.resume[best.rank] <- resumeMsg{
				time:    best.ready + copyCost,
				dropped: best.matchedMsg.dropped,
			}
		case opExit:
			live--
			endTimes[best.rank] = best.time
			rankErrs[best.rank] = best.err
		}
	}
	if netErr != nil {
		return nil, netErr
	}
	for r, err := range rankErrs {
		if err != nil {
			return nil, fmt.Errorf("simmpi: rank %d: %w", r, err)
		}
	}

	stats.Wall = nowMonotonic() - start
	rep := &Report{RankSeconds: endTimes, Drops: cfg.Net.Drops(), Sched: stats,
		Faults: faultTotals(procs)}
	for _, t := range endTimes {
		if t > rep.Seconds {
			rep.Seconds = t
		}
	}
	if cfg.CollectTrace {
		rep.Trace = mergeTrace(cfg, procs, w.comms)
	}
	recordEngineRun(stats)
	return rep, nil
}

// enqueue makes an executable op eligible for commit.
func (w *world) enqueue(o *op) {
	if w.hooks.linearScan {
		return // the reference picker scans pending directly
	}
	w.heap.push(o)
}

// pick returns the executable pending op with the smallest
// (ready, rank), or nil if none is executable.
func (w *world) pick() *op {
	if w.hooks.linearScan {
		// Seed scheduler reference: O(Ranks) scan, lowest rank wins ties
		// because later equal-ready ops do not displace the incumbent.
		var best *op
		for _, o := range w.pending {
			if o == nil || math.IsInf(o.ready, 1) {
				continue
			}
			if best == nil || o.ready < best.ready {
				best = o
			}
		}
		return best
	}
	return w.heap.pop()
}

// deliver pushes a send through the network, choosing eager or
// rendezvous by size.
func (w *world) deliver(o *op) (network.Result, error) {
	opts := network.SendOptions{FlowControlled: o.bytes > EagerThreshold}
	return w.cfg.Net.SendOpts(o.time, w.node(o.rank), w.node(o.dst), o.bytes, opts)
}

// tryMatch completes a pending recv against the mailbox if possible,
// making it executable.
func (w *world) tryMatch(o *op) {
	m, ok := w.mail[o.rank].match(o.src, o.tag)
	if !ok {
		return
	}
	o.matched = true
	o.matchedMsg = m
	o.ready = math.Max(o.time, m.arrival)
	w.enqueue(o)
}

// describe renders the op for diagnostics.
func (o *op) describe() string {
	switch o.kind {
	case opSend:
		return fmt.Sprintf("send to %d tag %d (%d bytes)", o.dst, o.tag, o.bytes)
	case opRecv:
		return fmt.Sprintf("recv from %d tag %d", o.src, o.tag)
	case opExit:
		return "exit"
	default:
		return o.kind.String()
	}
}

// deadlockError reports a state where every live rank has declared an
// operation but none is executable. It names the lowest blocked rank's
// actual pending operation — whatever its kind — and tallies the rest
// by kind, so a stall is never misreported as a recv when something
// else is stuck.
func (w *world) deadlockError() error {
	lowest := -1
	kinds := [3]int{}
	for r, o := range w.pending {
		if o == nil {
			continue
		}
		if lowest == -1 {
			lowest = r
		}
		if int(o.kind) < len(kinds) {
			kinds[o.kind]++
		}
	}
	if lowest == -1 {
		return errors.New("simmpi: deadlock with no pending operations")
	}
	o := w.pending[lowest]
	return fmt.Errorf("simmpi: deadlock: rank %d waiting on %s (%d more ranks blocked; pending ops: %d send, %d recv, %d exit)",
		lowest, o.describe(), w.nPending-1, kinds[opSend], kinds[opRecv], kinds[opExit])
}
