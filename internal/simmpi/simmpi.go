// Package simmpi is a deterministic, discrete-event MPI simulator: rank
// programs written in Go run as goroutines against a simulated network
// and advance a virtual clock instead of wall time. It provides the
// substrate for the paper's scalability studies (Figures 3 and 4):
// point-to-point messaging with eager and rendezvous protocols, and the
// collectives the applications need, built from point-to-point exactly
// like a real MPI implementation would.
//
// Determinism: a central scheduler executes communication events in
// global (virtual time, rank) order; it only commits an event when every
// live rank has declared its next operation, so link reservations happen
// in causal order regardless of goroutine scheduling. Running the same
// program twice produces bit-identical timings and traces.
package simmpi

import (
	"errors"
	"fmt"
	"math"

	"montblanc/internal/network"
	"montblanc/internal/trace"
)

// EagerThreshold is the message size above which transfers switch from
// the eager protocol (fire-and-forget, can overflow switch buffers) to
// receiver-paced rendezvous (immune to drops, extra handshake). 64 KiB
// follows common MPI defaults of the era.
const EagerThreshold = 64 << 10

// Config describes one simulated job.
type Config struct {
	Ranks        int
	Net          *network.Network
	RanksPerNode int // default 1

	// CoreFlopsPerSec is the per-rank sustained floating-point rate used
	// by ComputeFlops. Default 1e9.
	CoreFlopsPerSec float64

	// SendOverhead is the CPU cost of posting a send (default 2us), on
	// top of the memcpy at CopyBandwidth (default 600 MB/s).
	SendOverhead  float64
	CopyBandwidth float64

	// CollectTrace enables interval/communication recording.
	CollectTrace bool
}

func (c Config) withDefaults() Config {
	if c.RanksPerNode <= 0 {
		c.RanksPerNode = 1
	}
	if c.CoreFlopsPerSec <= 0 {
		c.CoreFlopsPerSec = 1e9
	}
	if c.SendOverhead <= 0 {
		c.SendOverhead = 2e-6
	}
	if c.CopyBandwidth <= 0 {
		c.CopyBandwidth = 600e6
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Ranks <= 0 {
		return errors.New("simmpi: need at least one rank")
	}
	if c.Net == nil {
		return errors.New("simmpi: nil network")
	}
	if need := (c.Ranks + c.RanksPerNode - 1) / c.RanksPerNode; need > c.Net.NumNodes {
		return fmt.Errorf("simmpi: %d ranks at %d per node need %d nodes, network has %d",
			c.Ranks, c.RanksPerNode, need, c.Net.NumNodes)
	}
	return nil
}

// Report is the outcome of a run.
type Report struct {
	Seconds     float64 // makespan: latest rank finish time
	RankSeconds []float64
	Trace       *trace.Trace // nil unless CollectTrace
	Drops       uint64       // network buffer overruns
}

type opKind int

const (
	opSend opKind = iota
	opRecv
	opExit
)

type op struct {
	kind          opKind
	rank          int
	time          float64 // rank-local post time
	src, dst, tag int
	bytes         int
	ready         float64 // completion time once executable
	matched       bool    // recv only
	matchedMsg    msg
	err           error // exit only
}

type msg struct {
	arrival float64
	dropped bool
	bytes   int
}

type mkey struct{ src, dst, tag int }

type resumeMsg struct {
	time    float64
	dropped bool // recv only: the message was retransmitted en route
}

type world struct {
	cfg    Config
	opCh   chan *op
	resume []chan resumeMsg
	mail   map[mkey][]msg
	comms  []trace.Comm
}

func (w *world) node(rank int) int { return rank / w.cfg.RanksPerNode }

// Proc is the handle a rank program uses: its identity, virtual clock
// and communication primitives.
type Proc struct {
	rank, size   int
	now          float64
	w            *world
	tr           *trace.Trace
	collSeq      map[string]int
	droppedRecvs int // running count of retransmitted messages received
}

// Rank returns this process's rank in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of ranks.
func (p *Proc) Size() int { return p.size }

// Now returns the rank's virtual clock in seconds.
func (p *Proc) Now() float64 { return p.now }

// Compute advances the virtual clock by seconds of local work.
func (p *Proc) Compute(seconds float64, label string) {
	if seconds < 0 {
		seconds = 0
	}
	start := p.now
	p.now += seconds
	p.record(trace.StateCompute, label, start)
}

// ComputeFlops advances the clock by flops at the configured core rate.
func (p *Proc) ComputeFlops(flops float64, label string) {
	p.Compute(flops/p.w.cfg.CoreFlopsPerSec, label)
}

// Stall advances the virtual clock by seconds of memory-bound work
// (cores waiting on DRAM), recorded as a memory interval so
// phase-resolved power accounting can charge it at memory watts.
func (p *Proc) Stall(seconds float64, label string) {
	if seconds < 0 {
		seconds = 0
	}
	start := p.now
	p.now += seconds
	p.record(trace.StateMemory, label, start)
}

func (p *Proc) record(kind trace.Kind, name string, start float64) {
	if p.tr == nil {
		return
	}
	p.tr.AddInterval(trace.Interval{
		Rank: p.rank, Kind: kind, Name: name, Start: start, End: p.now,
	})
}

// post submits an operation and blocks until the scheduler completes it,
// returning the rank's new clock and the recv-drop flag.
func (p *Proc) post(o *op) resumeMsg {
	o.rank = p.rank
	o.time = p.now
	p.w.opCh <- o
	return <-p.w.resume[p.rank]
}

// Send transmits bytes to rank dst with the given tag. It returns once
// the local side is free again (eager) — delivery happens in the
// background at network speed.
func (p *Proc) Send(dst, tag, bytes int) error {
	if dst < 0 || dst >= p.size {
		return fmt.Errorf("simmpi: send to invalid rank %d", dst)
	}
	if bytes < 0 {
		return fmt.Errorf("simmpi: negative send size %d", bytes)
	}
	start := p.now
	p.now = p.post(&op{kind: opSend, dst: dst, tag: tag, bytes: bytes}).time
	p.record(trace.StateSend, fmt.Sprintf("send->%d", dst), start)
	return nil
}

// Recv blocks until a message from src with the given tag arrives.
func (p *Proc) Recv(src, tag int) error {
	if src < 0 || src >= p.size {
		return fmt.Errorf("simmpi: recv from invalid rank %d", src)
	}
	start := p.now
	r := p.post(&op{kind: opRecv, src: src, tag: tag, ready: math.Inf(1)})
	p.now = r.time
	if r.dropped {
		p.droppedRecvs++
	}
	p.record(trace.StateRecv, fmt.Sprintf("recv<-%d", src), start)
	return nil
}

// Collective wraps body in a named collective interval; the instance
// name carries a per-rank sequence number so the same call site groups
// across ranks ("alltoallv#3"). The interval records how many of the
// rank's receives inside the collective were retransmitted — the
// Figure 4 congestion evidence.
func (p *Proc) Collective(name string, body func() error) error {
	seq := p.collSeq[name]
	p.collSeq[name] = seq + 1
	start := p.now
	dropsBefore := p.droppedRecvs
	err := body()
	if p.tr != nil {
		p.tr.AddInterval(trace.Interval{
			Rank: p.rank, Kind: trace.StateCollective,
			Name: fmt.Sprintf("%s#%d", name, seq), Start: start, End: p.now,
			Dropped: p.droppedRecvs - dropsBefore,
		})
	}
	return err
}

// Run executes body on every rank of a fresh world and returns the
// report. Any rank error aborts with that error (lowest rank wins).
func Run(cfg Config, body func(*Proc) error) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	w := &world{
		cfg:    cfg,
		opCh:   make(chan *op),
		resume: make([]chan resumeMsg, cfg.Ranks),
		mail:   map[mkey][]msg{},
	}
	procs := make([]*Proc, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		w.resume[r] = make(chan resumeMsg, 1)
		p := &Proc{rank: r, size: cfg.Ranks, w: w, collSeq: map[string]int{}}
		if cfg.CollectTrace {
			p.tr = trace.New(cfg.Ranks)
		}
		procs[r] = p
		go func(p *Proc) {
			var err error
			func() {
				defer func() {
					if r := recover(); r != nil {
						err = fmt.Errorf("rank body panicked: %v", r)
					}
				}()
				err = body(p)
			}()
			p.w.opCh <- &op{kind: opExit, rank: p.rank, time: p.now, err: err}
		}(p)
	}

	pending := map[int]*op{}
	endTimes := make([]float64, cfg.Ranks)
	rankErrs := make([]error, cfg.Ranks)
	live := cfg.Ranks
	netErr := error(nil)

	for live > 0 && netErr == nil {
		for len(pending) < live {
			o := <-w.opCh
			switch o.kind {
			case opSend, opExit:
				o.ready = o.time
			case opRecv:
				w.tryMatch(o)
			}
			pending[o.rank] = o
		}
		// Pick the executable op with the smallest (ready, rank).
		var best *op
		for r := 0; r < cfg.Ranks; r++ {
			o, ok := pending[r]
			if !ok || math.IsInf(o.ready, 1) {
				continue
			}
			if best == nil || o.ready < best.ready {
				best = o
			}
		}
		if best == nil {
			return nil, deadlockError(pending)
		}
		delete(pending, best.rank)
		switch best.kind {
		case opSend:
			res, err := w.deliver(best)
			if err != nil {
				netErr = err
				break
			}
			key := mkey{best.rank, best.dst, best.tag}
			m := msg{arrival: res.Arrival, dropped: res.Dropped, bytes: best.bytes}
			w.mail[key] = append(w.mail[key], m)
			if cfg.CollectTrace {
				w.comms = append(w.comms, trace.Comm{
					Src: best.rank, Dst: best.dst, Tag: best.tag, Bytes: best.bytes,
					Sent: best.time, Arrived: res.Arrival, Dropped: res.Dropped,
				})
			}
			// A parked recv may now be satisfiable.
			if ro, ok := pending[best.dst]; ok && ro.kind == opRecv && !ro.matched {
				w.tryMatch(ro)
			}
			overhead := cfg.SendOverhead + float64(best.bytes)/cfg.CopyBandwidth
			w.resume[best.rank] <- resumeMsg{time: best.time + overhead}
		case opRecv:
			copyCost := float64(best.matchedMsg.bytes) / cfg.CopyBandwidth
			w.resume[best.rank] <- resumeMsg{
				time:    best.ready + copyCost,
				dropped: best.matchedMsg.dropped,
			}
		case opExit:
			live--
			endTimes[best.rank] = best.time
			rankErrs[best.rank] = best.err
		}
	}
	if netErr != nil {
		return nil, netErr
	}
	for r, err := range rankErrs {
		if err != nil {
			return nil, fmt.Errorf("simmpi: rank %d: %w", r, err)
		}
	}

	rep := &Report{RankSeconds: endTimes, Drops: cfg.Net.Drops()}
	for _, t := range endTimes {
		if t > rep.Seconds {
			rep.Seconds = t
		}
	}
	if cfg.CollectTrace {
		tr := trace.New(cfg.Ranks)
		for _, p := range procs {
			tr.Merge(p.tr)
		}
		tr.Comms = append(tr.Comms, w.comms...)
		tr.Sort()
		rep.Trace = tr
	}
	return rep, nil
}

// deliver pushes a send through the network, choosing eager or
// rendezvous by size.
func (w *world) deliver(o *op) (network.Result, error) {
	opts := network.SendOptions{FlowControlled: o.bytes > EagerThreshold}
	return w.cfg.Net.SendOpts(o.time, w.node(o.rank), w.node(o.dst), o.bytes, opts)
}

// tryMatch completes a pending recv against the mailbox if possible.
func (w *world) tryMatch(o *op) {
	key := mkey{o.src, o.rank, o.tag}
	q := w.mail[key]
	if len(q) == 0 {
		return
	}
	m := q[0]
	if len(q) == 1 {
		delete(w.mail, key)
	} else {
		w.mail[key] = q[1:]
	}
	o.matched = true
	o.matchedMsg = m
	o.ready = math.Max(o.time, m.arrival)
}

func deadlockError(pending map[int]*op) error {
	lowest := -1
	for r := range pending {
		if lowest == -1 || r < lowest {
			lowest = r
		}
	}
	if lowest == -1 {
		return errors.New("simmpi: deadlock with no pending operations")
	}
	o := pending[lowest]
	return fmt.Errorf("simmpi: deadlock: rank %d waiting on recv from %d tag %d (and %d more ranks blocked)",
		o.rank, o.src, o.tag, len(pending)-1)
}
