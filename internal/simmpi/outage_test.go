package simmpi

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"montblanc/internal/network"
	"montblanc/internal/trace"
)

// --- hostile outage configs -----------------------------------------

func TestOutageValidation(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name    string
		outage  Outage
		wantErr string
	}{
		{"nan start", Outage{Node: 0, Start: nan, End: 1}, "non-finite"},
		{"nan end", Outage{Node: 0, Start: 0, End: nan}, "non-finite"},
		{"infinite end", Outage{Node: 0, Start: 0, End: inf}, "non-finite"},
		{"negative start", Outage{Node: 0, Start: -1, End: 1}, "negative start"},
		{"empty window", Outage{Node: 0, Start: 2, End: 2}, "empty window"},
		{"inverted window", Outage{Node: 0, Start: 3, End: 1}, "empty window"},
		{"negative node", Outage{Node: -1, Start: 0, End: 1}, "outside"},
		{"node beyond cluster", Outage{Node: 4, Start: 0, End: 1}, "outside"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := starConfig(4, 1)
			cfg.Outages = []Outage{tc.outage}
			_, err := Run(cfg, func(p *Proc) error { return nil })
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want %q", err, tc.wantErr)
			}
		})
	}
}

// --- window merging --------------------------------------------------

// buildNodeOutages must hand skipDown disjoint windows in start order,
// whatever the configured overlap: the freeze loop indexes forward and
// never revisits a window.
func TestOutageMerging(t *testing.T) {
	cfg := starConfig(4, 1)
	cfg.Outages = []Outage{
		{Node: 0, Start: 2, End: 5},
		{Node: 0, Start: 1, End: 3},  // overlaps the first (and is out of order)
		{Node: 0, Start: 5, End: 6},  // adjacent: merges too
		{Node: 0, Start: 8, End: 9},  // disjoint: survives
		{Node: 1, Start: 4, End: 10}, // other node: never merged across
	}
	per := buildNodeOutages(cfg)
	want0 := []Outage{{Node: 0, Start: 1, End: 6}, {Node: 0, Start: 8, End: 9}}
	if !reflect.DeepEqual(per[0], want0) {
		t.Errorf("node 0 windows = %v, want %v", per[0], want0)
	}
	if len(per[1]) != 1 || per[1][0].Start != 4 || per[1][0].End != 10 {
		t.Errorf("node 1 windows = %v, want the single [4, 10)", per[1])
	}
	if len(per[2]) != 0 || len(per[3]) != 0 {
		t.Errorf("untouched nodes grew windows: %v %v", per[2], per[3])
	}
}

// --- freeze semantics ------------------------------------------------

// A compute that overlaps an outage is suspended and resumes after the
// restart: the rank's clock warps across the window, the lost time is
// charged to the fault stats, and the trace records the two live
// pieces around the (unrecorded) down window.
func TestOutageFreezesCompute(t *testing.T) {
	cfg := starConfig(2, 1)
	cfg.CollectTrace = true
	cfg.Outages = []Outage{{Node: 1, Start: 0.5, End: 2}}
	rep, err := Run(cfg, func(p *Proc) error {
		p.Compute(1, "w")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 is untouched; rank 1 computes 0.5s, freezes 1.5s, then
	// finishes the remaining 0.5s. All values are exact binary
	// fractions, so == comparisons are safe.
	if want := []float64{1, 2.5}; !reflect.DeepEqual(rep.RankSeconds, want) {
		t.Errorf("rank end times = %v, want %v", rep.RankSeconds, want)
	}
	if rep.Faults.DownSeconds != 1.5 || rep.Faults.Interrupts != 1 {
		t.Errorf("fault stats (%v down, %d interrupts), want (1.5, 1)", rep.Faults.DownSeconds, rep.Faults.Interrupts)
	}
	var got []trace.Interval
	for _, iv := range rep.Trace.Intervals {
		if iv.Rank == 1 && iv.Name == "w" {
			got = append(got, iv)
		}
	}
	if len(got) != 2 || got[0].Start != 0 || got[0].End != 0.5 || got[1].Start != 2 || got[1].End != 2.5 {
		t.Errorf("rank 1 compute intervals = %v, want [0,0.5) and [2,2.5)", got)
	}
	// The down window itself is unrecorded — that absence is what lets
	// trace.EnergyByState price it at idle watts.
	for _, iv := range rep.Trace.Intervals {
		if iv.Rank == 1 && iv.Start < 2 && iv.End > 0.5 {
			t.Errorf("interval %v overlaps the down window", iv)
		}
	}
}

// A node down at t=0 boots its ranks at the restart, counting one
// interrupt for the lost boot window.
func TestOutageDownAtBoot(t *testing.T) {
	cfg := starConfig(2, 1)
	cfg.Outages = []Outage{{Node: 0, Start: 0, End: 1}}
	rep, err := Run(cfg, func(p *Proc) error {
		p.Compute(0.5, "w")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{1.5, 0.5}; !reflect.DeepEqual(rep.RankSeconds, want) {
		t.Errorf("rank end times = %v, want %v", rep.RankSeconds, want)
	}
	if rep.Faults.DownSeconds != 1 || rep.Faults.Interrupts != 1 {
		t.Errorf("fault stats (%v down, %d interrupts), want (1, 1)", rep.Faults.DownSeconds, rep.Faults.Interrupts)
	}
}

// An outage entirely after the last event never fires: failure-free
// accounting, and a Config with such windows stays byte-identical to
// one without (the guarantee goldens rely on).
func TestOutageAfterCompletion(t *testing.T) {
	clean := starConfig(4, 2)
	clean.CollectTrace = true
	ref, err := Run(clean, ringBody)
	if err != nil {
		t.Fatal(err)
	}
	faulty := starConfig(4, 2)
	faulty.CollectTrace = true
	faulty.Outages = []Outage{{Node: 0, Start: 1e6, End: 2e6}}
	faulty.Net.Reset()
	got, err := Run(faulty, ringBody)
	if err != nil {
		t.Fatal(err)
	}
	if got.Faults.DownSeconds != 0 || got.Faults.Interrupts != 0 {
		t.Errorf("phantom outage fired: %v down, %d interrupts", got.Faults.DownSeconds, got.Faults.Interrupts)
	}
	if !reflect.DeepEqual(got.RankSeconds, ref.RankSeconds) ||
		!reflect.DeepEqual(got.Trace.Intervals, ref.Trace.Intervals) {
		t.Error("an unreached outage window moved the simulation")
	}
}

func ringBody(p *Proc) error {
	next, prev := (p.Rank()+1)%p.Size(), (p.Rank()-1+p.Size())%p.Size()
	for it := 0; it < 3; it++ {
		p.Compute(1e-4, "work")
		if err := p.Send(next, it, 4096); err != nil {
			return err
		}
		if err := p.Recv(prev, it); err != nil {
			return err
		}
	}
	return nil
}

// DegradeLink on a missing edge is a configuration error, not a no-op.
func TestDegradeUnknownLink(t *testing.T) {
	net := network.Star(2)
	err := net.DegradeLink("node7->sw", network.Degradation{Start: 0, End: 1, BandwidthFactor: 2})
	if err == nil || !strings.Contains(err.Error(), "node7->sw") {
		t.Fatalf("err = %v, want the missing link named", err)
	}
}
