package simmpi

// msgq is one FIFO of in-flight messages for a (src, tag) pair bound
// for a single destination rank. Delivered messages are popped by
// advancing head instead of re-slicing (`q = q[1:]`), so the backing
// array is reused once the queue drains rather than pinned alive by a
// moving slice start — the long-queue retention bug of the map-based
// seed mailbox. A queue that never fully drains is compacted once the
// delivered prefix dominates the live tail.
type msgq struct {
	src, tag int
	head     int
	msgs     []msg
}

func (q *msgq) empty() bool { return q.head == len(q.msgs) }

// mailboxIndexThreshold is the live-queue count past which a mailbox
// builds its key index. Below it a linear scan is cheaper than map
// maintenance (and allocation-free); above it — fan-in patterns like
// the Figure 4 incast, where every rank holds an open queue to one
// destination — lookups must not degrade to O(ranks).
const mailboxIndexThreshold = 8

// mailbox holds the in-flight messages of one destination rank as a
// set of per-(src, tag) FIFOs. Drained queues are retired to a free
// list and recycled (backing arrays included) for new keys, so the
// queue slice tracks the *simultaneously live* key count, not the
// total keys ever seen. Lookup is a linear scan while few queues are
// live — neighbour exchanges and ping-pongs stay allocation-free —
// and switches to a lazily built key index once fan-in traffic opens
// more than mailboxIndexThreshold concurrent queues, keeping push and
// match O(1) amortized in the incast regime too.
type mailbox struct {
	queues []msgq
	free   []int          // positions of retired queues, ready for reuse
	index  map[uint64]int // key -> live queue position; nil until needed
}

// mbkey packs a (src, tag) pair into one index key. Ranks are
// non-negative and collective tags stay far below 2^32.
func mbkey(src, tag int) uint64 {
	return uint64(uint32(src))<<32 | uint64(uint32(tag))
}

// findLive returns the position of the live queue for (src, tag), or
// -1. Retired queues carry src = -1 and can never match.
func (mb *mailbox) findLive(src, tag int) int {
	if mb.index != nil {
		if i, ok := mb.index[mbkey(src, tag)]; ok {
			return i
		}
		return -1
	}
	for i := range mb.queues {
		q := &mb.queues[i]
		if q.src == src && q.tag == tag {
			return i
		}
	}
	return -1
}

// push appends a message to the (src, tag) FIFO, recycling a retired
// queue or creating one as needed.
func (mb *mailbox) push(src, tag int, m msg) {
	if i := mb.findLive(src, tag); i >= 0 {
		q := &mb.queues[i]
		q.msgs = append(q.msgs, m)
		return
	}
	var pos int
	if n := len(mb.free); n > 0 {
		pos = mb.free[n-1]
		mb.free = mb.free[:n-1]
		q := &mb.queues[pos]
		q.src, q.tag, q.head = src, tag, 0
		q.msgs = append(q.msgs[:0], m)
	} else {
		pos = len(mb.queues)
		mb.queues = append(mb.queues, msgq{src: src, tag: tag, msgs: []msg{m}})
	}
	switch {
	case mb.index != nil:
		mb.index[mbkey(src, tag)] = pos
	case len(mb.queues)-len(mb.free) > mailboxIndexThreshold:
		mb.index = make(map[uint64]int, 2*mailboxIndexThreshold)
		for i := range mb.queues {
			if q := &mb.queues[i]; q.src >= 0 {
				mb.index[mbkey(q.src, q.tag)] = i
			}
		}
	}
}

// match pops the oldest in-flight message for (src, tag), preserving
// per-key FIFO order.
func (mb *mailbox) match(src, tag int) (msg, bool) {
	i := mb.findLive(src, tag)
	if i < 0 {
		return msg{}, false
	}
	q := &mb.queues[i]
	if q.empty() {
		return msg{}, false
	}
	m := q.msgs[q.head]
	q.head++
	switch {
	case q.empty():
		mb.retire(i)
	case q.head >= 32 && q.head*2 >= len(q.msgs):
		// Long-lived queue: copy the live tail down so the delivered
		// prefix cannot grow without bound.
		n := copy(q.msgs, q.msgs[q.head:])
		q.msgs = q.msgs[:n]
		q.head = 0
	}
	return m, true
}

// xsend is one committed cross-node send awaiting delivery at a window
// barrier of the parallel scheduler. The fields are copied out of the
// sender's reusable op struct at commit time: the sender resumes
// immediately and may overwrite its postBuf long before the barrier
// runs.
type xsend struct {
	time  float64 // commit (= ready = post) time; becomes Comm.Sent
	rank  int     // sender
	dst   int
	tag   int
	bytes int
}

// outbox is a shard's dense FIFO of cross-node sends in shard commit
// order, following the mailbox design: a head-indexed backing array,
// reused across windows, so the steady state allocates nothing once it
// has grown to the busiest window's traffic. The barrier drains the
// shards' outboxes merged by (time, rank) — the global commit order —
// because link reservations are order-sensitive.
type outbox struct {
	head int
	a    []xsend
}

func (ob *outbox) push(x xsend) { ob.a = append(ob.a, x) }

// peek returns the oldest undelivered send, or nil when drained.
func (ob *outbox) peek() *xsend {
	if ob.head == len(ob.a) {
		return nil
	}
	return &ob.a[ob.head]
}

func (ob *outbox) pop() { ob.head++ }

// reset empties the outbox for the next window, keeping the array.
func (ob *outbox) reset() {
	ob.head = 0
	ob.a = ob.a[:0]
}

// retire marks the drained queue at position i reusable. FIFO per key
// survives recycling: a retired queue is empty, so a later message for
// its old key starting a fresh queue cannot reorder anything.
func (mb *mailbox) retire(i int) {
	q := &mb.queues[i]
	if mb.index != nil {
		delete(mb.index, mbkey(q.src, q.tag))
	}
	q.src, q.tag = -1, -1
	q.head = 0
	q.msgs = q.msgs[:0]
	mb.free = append(mb.free, i)
}
