package simmpi

// opHeap is an indexed binary min-heap of executable operations ordered
// by (ready, rank). This is exactly the total order the seed
// scheduler's per-commit linear scan walked (strictly-smaller ready
// wins; ties go to the lowest rank), so replacing the scan with
// push/pop changes commit cost from O(Ranks) to O(log Ranks) without
// perturbing a single commit decision — the determinism contract of
// the package rests on this equivalence, which the property suite in
// equivalence_test.go checks against the retained linear-scan
// reference picker.
//
// Each op carries its heap position in heapIdx (-1 when outside the
// heap); the index is maintained on every swap so membership checks and
// future decrease-key-style operations stay O(1).
type opHeap struct {
	a []*op
}

// opLess orders ops by (ready, rank) ascending.
func opLess(x, y *op) bool {
	return x.ready < y.ready || (x.ready == y.ready && x.rank < y.rank)
}

// push inserts an executable op.
func (h *opHeap) push(o *op) {
	h.a = append(h.a, o)
	o.heapIdx = len(h.a) - 1
	h.up(o.heapIdx)
}

// peek returns the op with the smallest (ready, rank) without removing
// it, or nil when the heap is empty. The parallel scheduler's window
// loop peeks to decide whether the minimum is committable before the
// window edge.
func (h *opHeap) peek() *op {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}

// pop removes and returns the op with the smallest (ready, rank), or
// nil when the heap is empty.
func (h *opHeap) pop() *op {
	if len(h.a) == 0 {
		return nil
	}
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a[last] = nil // drop the stale reference so ops don't leak
	h.a = h.a[:last]
	if last > 0 {
		h.a[0].heapIdx = 0
		h.down(0)
	}
	top.heapIdx = -1
	return top
}

func (h *opHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !opLess(h.a[i], h.a[parent]) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *opHeap) down(i int) {
	n := len(h.a)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		s := l
		if r := l + 1; r < n && opLess(h.a[r], h.a[l]) {
			s = r
		}
		if !opLess(h.a[s], h.a[i]) {
			return
		}
		h.swap(i, s)
		i = s
	}
}

func (h *opHeap) swap(i, j int) {
	h.a[i], h.a[j] = h.a[j], h.a[i]
	h.a[i].heapIdx = i
	h.a[j].heapIdx = j
}
