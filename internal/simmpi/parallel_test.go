package simmpi

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"montblanc/internal/network"
	"montblanc/internal/xrand"
)

// The parallel scheduler's contract: byte-identical output at any
// worker count. These tests run the same workload sequentially
// (Workers: 0, the reference) and under the windowed scheduler at
// workers 1..8, comparing reports, drop counts and full traces. The
// suite runs under -race in CI, doubling as the data-race proof of the
// shard/barrier ownership discipline.

// runParallelWorkers executes cfg/body at the given worker count on a
// pristine network.
func runParallelWorkers(t *testing.T, cfg Config, workers int, body func(*Proc) error) *Report {
	t.Helper()
	cfg.Workers = workers
	cfg.Net.Reset()
	rep, err := Run(cfg, body)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return rep
}

// assertParallelEquivalent checks every worker count in 2..8 against
// the sequential reference on the same config and body.
func assertParallelEquivalent(t *testing.T, cfg Config, body func(*Proc) error) {
	t.Helper()
	ref := runParallelWorkers(t, cfg, 0, body)
	for workers := 2; workers <= 8; workers++ {
		got := runParallelWorkers(t, cfg, workers, body)
		if got.Seconds != ref.Seconds {
			t.Fatalf("workers=%d: makespan %v, sequential %v", workers, got.Seconds, ref.Seconds)
		}
		if !reflect.DeepEqual(got.RankSeconds, ref.RankSeconds) {
			t.Fatalf("workers=%d: rank end times differ\ngot %v\nref %v", workers, got.RankSeconds, ref.RankSeconds)
		}
		if got.Drops != ref.Drops {
			t.Fatalf("workers=%d: drops %d, sequential %d", workers, got.Drops, ref.Drops)
		}
		if got.Faults.DownSeconds != ref.Faults.DownSeconds || got.Faults.Interrupts != ref.Faults.Interrupts {
			t.Fatalf("workers=%d: fault accounting (%v down, %d interrupts), sequential (%v, %d)",
				workers, got.Faults.DownSeconds, got.Faults.Interrupts, ref.Faults.DownSeconds, ref.Faults.Interrupts)
		}
		if got.Sched.Events != ref.Sched.Events {
			t.Fatalf("workers=%d: events %d, sequential %d", workers, got.Sched.Events, ref.Sched.Events)
		}
		if got.Sched.LocalSends != ref.Sched.LocalSends || got.Sched.CrossSends != ref.Sched.CrossSends {
			t.Fatalf("workers=%d: send split (%d local, %d cross), sequential (%d, %d)",
				workers, got.Sched.LocalSends, got.Sched.CrossSends, ref.Sched.LocalSends, ref.Sched.CrossSends)
		}
		if cfg.CollectTrace {
			if !reflect.DeepEqual(got.Trace.Intervals, ref.Trace.Intervals) {
				t.Fatalf("workers=%d: trace intervals differ", workers)
			}
			if !reflect.DeepEqual(got.Trace.Comms, ref.Trace.Comms) {
				t.Fatalf("workers=%d: trace comms differ", workers)
			}
		}
	}
}

// Tie-heavy workload: every rank enters a barrier storm at t=0, so
// each round is wall-to-wall equal-ready commits — the shard heaps'
// (ready, rank) tie-break and the barrier merge's rank tie-break must
// reproduce the global order exactly.
func TestParallelEquivalenceBarrierStorm(t *testing.T) {
	cfg := starConfig(16, 2)
	cfg.CollectTrace = true
	assertParallelEquivalent(t, cfg, func(p *Proc) error {
		for i := 0; i < 5; i++ {
			if err := p.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

// Neighbour ring with mixed intra- and cross-node hops plus an
// allreduce: the scale-ranks benchmark body in miniature.
func TestParallelEquivalenceRing(t *testing.T) {
	cfg := starConfig(24, 2)
	cfg.CollectTrace = true
	assertParallelEquivalent(t, cfg, func(p *Proc) error {
		next, prev := (p.Rank()+1)%p.Size(), (p.Rank()-1+p.Size())%p.Size()
		for it := 0; it < 4; it++ {
			if err := p.Send(next, 1+it, 2048); err != nil {
				return err
			}
			if err := p.Recv(prev, 1+it); err != nil {
				return err
			}
			if err := p.Allreduce(1024); err != nil {
				return err
			}
		}
		return nil
	})
}

// Congestion: the Figure 4 incast — a linear alltoallv overflowing the
// switch buffers. Drop counts and retransmit-delayed arrivals must
// survive the window barrier byte-identically.
func TestParallelEquivalenceIncast(t *testing.T) {
	cfg := starConfig(24, 2)
	cfg.CollectTrace = true
	assertParallelEquivalent(t, cfg, func(p *Proc) error {
		counts := make([]int, p.Size())
		for i := range counts {
			counts[i] = 48 << 10
		}
		for it := 0; it < 2; it++ {
			if err := p.Alltoallv(counts, AlltoallvLinear); err != nil {
				return err
			}
		}
		return nil
	})
}

// Rendezvous path: messages above EagerThreshold take the
// flow-controlled protocol with its handshake latency.
func TestParallelEquivalenceRendezvous(t *testing.T) {
	cfg := starConfig(8, 2)
	cfg.CollectTrace = true
	assertParallelEquivalent(t, cfg, func(p *Proc) error {
		peer := p.Rank() ^ 1
		if p.Rank()%2 == 0 {
			return p.Send(peer, 7, EagerThreshold+4096)
		}
		return p.Recv(peer, 7)
	})
}

// Tree topology: two latency classes (same-leaf and cross-leaf), so
// the lookahead is the tighter same-leaf bound while most traffic
// crosses leaves.
func TestParallelEquivalenceTree(t *testing.T) {
	const ranks, per = 80, 2
	cfg := Config{Ranks: ranks, RanksPerNode: per, Net: network.Tree(ranks/per, 8), CollectTrace: true}
	assertParallelEquivalent(t, cfg, func(p *Proc) error {
		far := (p.Rank() + p.Size()/2) % p.Size()
		for it := 0; it < 3; it++ {
			if p.Rank() < p.Size()/2 {
				if err := p.Send(far, it, 4096); err != nil {
					return err
				}
				if err := p.Recv(far, 100+it); err != nil {
					return err
				}
			} else {
				if err := p.Recv(far, it); err != nil {
					return err
				}
				if err := p.Send(far, 100+it, 4096); err != nil {
					return err
				}
			}
			if err := p.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

// Randomized workloads: every rank runs a seeded random program of
// computes, sends and recvs (matched by construction: rank r talks to
// its round-robin partner with deterministic tags), across random
// rank/node shapes. testing/quick drives the seeds.
func TestParallelEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property suite in -short mode")
	}
	check := func(seed uint64) bool {
		rng := xrand.New(seed%1000 + 1)
		ranks := 4 + int(rng.Uint64()%20)     // 4..23
		per := 1 + int(rng.Uint64()%3)        // 1..3
		rounds := 2 + int(rng.Uint64()%4)     // 2..5
		bytes := 256 << (rng.Uint64() % 8)    // 256B..32KiB
		jitter := float64(rng.Uint64() % 100) // per-rank compute skew
		cfg := starConfig(ranks, per)
		cfg.CollectTrace = true
		body := func(p *Proc) error {
			prng := xrand.New(seed*1000 + uint64(p.Rank()))
			for it := 0; it < rounds; it++ {
				p.Compute(jitter*1e-6*float64(prng.Uint64()%7), "work")
				peer := (p.Rank() + 1 + it) % p.Size()
				anti := (p.Rank() - 1 - it + p.Size()*(it+2)) % p.Size()
				if err := p.Send(peer, it, bytes); err != nil {
					return err
				}
				if err := p.Recv(anti, it); err != nil {
					return err
				}
				if it%2 == 1 {
					if err := p.Allreduce(512); err != nil {
						return err
					}
				}
			}
			return nil
		}
		assertParallelEquivalent(t, cfg, body)
		return !t.Failed()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// The deadlock diagnostic must be identical at any worker count: the
// parallel scheduler reconstructs it from the same global pending
// table.
func TestParallelDeadlockMessage(t *testing.T) {
	cfg := starConfig(8, 2)
	body := func(p *Proc) error {
		// Ranks 0 and 1 wait on each other forever; everyone else exits.
		if p.Rank() == 0 {
			return p.Recv(1, 5)
		}
		if p.Rank() == 1 {
			return p.Recv(0, 5)
		}
		return nil
	}
	cfg.Net.Reset()
	cfg.Workers = 0
	_, refErr := Run(cfg, body)
	if refErr == nil {
		t.Fatal("sequential run did not deadlock")
	}
	for workers := 2; workers <= 8; workers++ {
		cfg.Workers = workers
		cfg.Net.Reset()
		_, err := Run(cfg, body)
		if err == nil {
			t.Fatalf("workers=%d: no deadlock reported", workers)
		}
		if err.Error() != refErr.Error() {
			t.Fatalf("workers=%d: deadlock message %q, sequential %q", workers, err, refErr)
		}
	}
}

// Worker-count plumbing: absurd values clamp, negatives are rejected,
// and sub-shardable jobs fall back to the sequential path.
func TestParallelWorkerValidation(t *testing.T) {
	body := func(p *Proc) error { return nil }
	t.Run("negative", func(t *testing.T) {
		cfg := starConfig(4, 1)
		cfg.Workers = -1
		if _, err := Run(cfg, body); err == nil {
			t.Fatal("negative Workers accepted")
		}
	})
	t.Run("clamped", func(t *testing.T) {
		cfg := starConfig(4, 1)
		cfg.Workers = 1 << 20
		cfg.Net.Reset()
		rep, err := Run(cfg, body)
		if err != nil {
			t.Fatal(err)
		}
		// 4 nodes bound the shard count below MaxWorkers.
		if rep.Sched.Workers > 4 {
			t.Fatalf("worker count %d not clamped to node count", rep.Sched.Workers)
		}
	})
	t.Run("single-node-falls-back", func(t *testing.T) {
		cfg := starConfig(4, 4)
		cfg.Workers = 8
		cfg.Net.Reset()
		rep, err := Run(cfg, body)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Sched.Workers != 1 {
			t.Fatalf("single-node job used %d workers, want sequential", rep.Sched.Workers)
		}
	})
	t.Run("no-lookahead-falls-back", func(t *testing.T) {
		links := []*network.Link{network.NewLink("wire", 1e9, 0, 0, 0)}
		net := network.New(4, links, func(src, dst int) []*network.Link { return links })
		cfg := Config{Ranks: 4, Net: net, Workers: 4}
		rep, err := Run(cfg, body)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Sched.Workers != 1 {
			t.Fatalf("zero-lookahead network used %d workers, want sequential fallback", rep.Sched.Workers)
		}
	})
}

// Window accounting sanity: a parallel run reports its shard count,
// the network's lookahead and a positive window count.
func TestParallelSchedStats(t *testing.T) {
	cfg := starConfig(16, 2)
	cfg.Workers = 4
	cfg.Net.Reset()
	rep, err := Run(cfg, func(p *Proc) error {
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() - 1 + p.Size()) % p.Size()
		for it := 0; it < 3; it++ {
			if err := p.Send(next, it, 1024); err != nil {
				return err
			}
			if err := p.Recv(prev, it); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Sched
	if st.Workers != 4 {
		t.Errorf("workers = %d, want 4", st.Workers)
	}
	if want := 2 * network.GigELatency; math.Abs(st.Lookahead-want) > 1e-12 {
		t.Errorf("lookahead = %v, want %v", st.Lookahead, want)
	}
	if st.Windows == 0 {
		t.Error("no windows recorded on the parallel path")
	}
	if st.Events == 0 || st.CrossSends == 0 || st.LocalSends == 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
}

// Fault-injected workloads: randomized outage storms plus degraded
// star uplinks. Outages warp rank clocks and degradations stretch
// cross-node transfers — both must survive the window barrier
// byte-identically at every worker count. Link degradations live on
// the network and Net.Reset clears them, so this test re-applies the
// schedule after each reset instead of using assertParallelEquivalent.
func TestParallelEquivalenceFaultStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-storm property suite in -short mode")
	}
	var sawInterrupt, sawDegraded bool
	check := func(seed uint64) bool {
		rng := xrand.New(seed%1000 + 1)
		ranks := 4 + int(rng.Uint64()%16) // 4..19
		per := 1 + int(rng.Uint64()%2)    // 1..2
		rounds := 2 + int(rng.Uint64()%3) // 2..4
		bytes := 512 << (rng.Uint64() % 6)
		nodes := (ranks + per - 1) / per
		cfg := starConfig(ranks, per)
		cfg.CollectTrace = true
		// One early outage that always lands inside the active phase,
		// plus up to two random ones (possibly overlapping — the merge
		// path is part of what must reproduce).
		cfg.Outages = []Outage{{Node: int(rng.Uint64() % uint64(nodes)), Start: 1e-4, End: 5e-3}}
		for i := 0; i < int(rng.Uint64()%3); i++ {
			start := 1e-5 * float64(rng.Uint64()%3000)
			cfg.Outages = append(cfg.Outages, Outage{
				Node:  int(rng.Uint64() % uint64(nodes)),
				Start: start,
				End:   start + 1e-5*float64(1+rng.Uint64()%2000),
			})
		}
		// One always-hot degradation over the first transfers, plus a
		// random later window on a random uplink.
		type linkDeg struct {
			link string
			d    network.Degradation
		}
		degs := []linkDeg{{
			link: fmt.Sprintf("node%d->sw", rng.Uint64()%uint64(nodes)),
			d:    network.Degradation{Start: 0, End: 10e-3, BandwidthFactor: 1 + float64(rng.Uint64()%10)},
		}}
		if rng.Uint64()%2 == 0 {
			start := 1e-5 * float64(rng.Uint64()%2000)
			degs = append(degs, linkDeg{
				link: fmt.Sprintf("node%d->sw", rng.Uint64()%uint64(nodes)),
				d: network.Degradation{
					Start:           start,
					End:             start + 1e-5*float64(1+rng.Uint64()%3000),
					BandwidthFactor: 1 + float64(rng.Uint64()%20),
					ExtraLatency:    1e-6 * float64(rng.Uint64()%200),
				},
			})
		}
		body := func(p *Proc) error {
			prng := xrand.New(seed*7919 + uint64(p.Rank()))
			for it := 0; it < rounds; it++ {
				p.Compute(1e-5*float64(prng.Uint64()%400), "work")
				peer := (p.Rank() + 1 + it) % p.Size()
				anti := (p.Rank() - 1 - it + p.Size()*(it+2)) % p.Size()
				if err := p.Send(peer, it, bytes); err != nil {
					return err
				}
				if err := p.Recv(anti, it); err != nil {
					return err
				}
				if it%2 == 0 {
					if err := p.Barrier(); err != nil {
						return err
					}
				}
			}
			return nil
		}
		run := func(workers int) *Report {
			cfg.Workers = workers
			cfg.Net.Reset()
			for _, dg := range degs {
				if err := cfg.Net.DegradeLink(dg.link, dg.d); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
			rep, err := Run(cfg, body)
			if err != nil {
				t.Fatalf("seed %d workers=%d: %v", seed, workers, err)
			}
			return rep
		}
		ref := run(0)
		if ref.Faults.Interrupts > 0 {
			sawInterrupt = true
		}
		if cfg.Net.DegradedTransfers() > 0 {
			sawDegraded = true
		}
		for workers := 2; workers <= 8; workers++ {
			got := run(workers)
			switch {
			case got.Seconds != ref.Seconds:
				t.Fatalf("seed %d workers=%d: makespan %v, sequential %v", seed, workers, got.Seconds, ref.Seconds)
			case !reflect.DeepEqual(got.RankSeconds, ref.RankSeconds):
				t.Fatalf("seed %d workers=%d: rank end times differ", seed, workers)
			case got.Faults.DownSeconds != ref.Faults.DownSeconds || got.Faults.Interrupts != ref.Faults.Interrupts:
				t.Fatalf("seed %d workers=%d: fault accounting (%v down, %d interrupts), sequential (%v, %d)",
					seed, workers, got.Faults.DownSeconds, got.Faults.Interrupts, ref.Faults.DownSeconds, ref.Faults.Interrupts)
			case got.Drops != ref.Drops:
				t.Fatalf("seed %d workers=%d: drops %d, sequential %d", seed, workers, got.Drops, ref.Drops)
			case !reflect.DeepEqual(got.Trace.Intervals, ref.Trace.Intervals):
				t.Fatalf("seed %d workers=%d: trace intervals differ", seed, workers)
			case !reflect.DeepEqual(got.Trace.Comms, ref.Trace.Comms):
				t.Fatalf("seed %d workers=%d: trace comms differ", seed, workers)
			}
		}
		return !t.Failed()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
	if !sawInterrupt {
		t.Error("no seed produced an interrupting outage — the storm never bit")
	}
	if !sawDegraded {
		t.Error("no seed produced a degraded transfer — the link faults never bit")
	}
}
