package simmpi

import (
	"reflect"
	"testing"
	"testing/quick"

	"montblanc/internal/xrand"
)

// The determinism contract of the heap rewrite: the indexed min-heap is
// an index over the same (ready, rank) total order the seed scheduler's
// linear scan walked, so the two pickers must commit identical
// operation sequences — same kinds, same ranks, same ready times — and
// produce bit-identical reports and traces. These tests run every
// workload under both pickers (hooks.linearScan retains the seed scan)
// and compare.

type commitRecord struct {
	kind  opKind
	rank  int
	ready float64
}

// runBoth executes the same workload under the heap picker and the
// linear-scan reference, returning both commit logs and reports.
func runBoth(t *testing.T, cfg Config, body func(*Proc) error) (heapLog, scanLog []commitRecord, heapRep, scanRep *Report) {
	t.Helper()
	exec := func(linear bool) ([]commitRecord, *Report) {
		cfg.Net.Reset() // both pickers start from pristine link state
		var log []commitRecord
		rep, err := run(cfg, body, hooks{
			linearScan: linear,
			onCommit: func(kind opKind, rank int, ready float64) {
				log = append(log, commitRecord{kind, rank, ready})
			},
		})
		if err != nil {
			t.Fatalf("linear=%v: %v", linear, err)
		}
		return log, rep
	}
	heapLog, heapRep = exec(false)
	scanLog, scanRep = exec(true)
	return
}

func assertEquivalent(t *testing.T, cfg Config, body func(*Proc) error) {
	t.Helper()
	heapLog, scanLog, heapRep, scanRep := runBoth(t, cfg, body)
	if len(heapLog) != len(scanLog) {
		t.Fatalf("commit counts differ: heap %d, scan %d", len(heapLog), len(scanLog))
	}
	for i := range heapLog {
		if heapLog[i] != scanLog[i] {
			t.Fatalf("commit %d differs: heap %+v, scan %+v", i, heapLog[i], scanLog[i])
		}
	}
	if heapRep.Seconds != scanRep.Seconds {
		t.Fatalf("makespans differ: heap %v, scan %v", heapRep.Seconds, scanRep.Seconds)
	}
	if !reflect.DeepEqual(heapRep.RankSeconds, scanRep.RankSeconds) {
		t.Fatalf("rank end times differ:\nheap %v\nscan %v", heapRep.RankSeconds, scanRep.RankSeconds)
	}
	if heapRep.Drops != scanRep.Drops {
		t.Fatalf("drop counts differ: heap %d, scan %d", heapRep.Drops, scanRep.Drops)
	}
	if cfg.CollectTrace {
		if !reflect.DeepEqual(heapRep.Trace.Intervals, scanRep.Trace.Intervals) {
			t.Fatal("trace intervals differ between pickers")
		}
		if !reflect.DeepEqual(heapRep.Trace.Comms, scanRep.Trace.Comms) {
			t.Fatal("trace comms differ between pickers")
		}
	}
}

// All ranks enter a barrier at t=0: every round is wall-to-wall ready
// ties, the case where the heap's (ready, rank) tie-break must mirror
// the scan's lowest-rank-wins rule exactly.
func TestHeapMatchesScanOnTies(t *testing.T) {
	cfg := starConfig(8, 2)
	cfg.CollectTrace = true
	assertEquivalent(t, cfg, func(p *Proc) error {
		for i := 0; i < 3; i++ {
			if err := p.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

// The Figure 4 incast: 36 ranks of linear alltoallv with eager-sized
// messages, drops included — retransmission penalties, parked recvs and
// long single-key mailbox queues all in play.
func TestHeapMatchesScanUnderCongestion(t *testing.T) {
	cfg := starConfig(36, 2)
	cfg.CollectTrace = true
	assertEquivalent(t, cfg, func(p *Proc) error {
		counts := make([]int, p.Size())
		for i := range counts {
			counts[i] = 48 << 10
		}
		return p.Alltoallv(counts, AlltoallvLinear)
	})
}

// Property: on randomized symmetric workloads — mixed collectives,
// skewed compute, ring point-to-point, random sizes crossing the
// eager/rendezvous threshold — the heap and scan pickers commit the
// same sequence and produce identical reports and traces.
func TestHeapScanEquivalenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		ranks := 2 + rng.Intn(12)
		per := 1 + rng.Intn(2)
		nOps := 1 + rng.Intn(6)
		kinds := make([]int, nOps)
		sizes := make([]int, nOps)
		for i := range kinds {
			kinds[i] = rng.Intn(7)
			sizes[i] = 1 + rng.Intn(150000)
		}
		cfg := starConfig(ranks, per)
		cfg.CollectTrace = seed%2 == 0
		assertEquivalent(t, cfg, func(p *Proc) error {
			for i, kind := range kinds {
				var err error
				switch kind {
				case 0:
					err = p.Barrier()
				case 1:
					err = p.Bcast(i%p.Size(), sizes[i])
				case 2:
					err = p.Allreduce(sizes[i])
				case 3:
					counts := make([]int, p.Size())
					for j := range counts {
						counts[j] = sizes[i] / p.Size()
					}
					err = p.Alltoallv(counts, AlltoallvAlgorithm(i%2))
				case 4:
					err = p.Allgather(sizes[i])
				case 5:
					// Skewed compute then a ring shift.
					p.Compute(float64(p.Rank()%4)*1e-4, "skew")
					next := (p.Rank() + 1) % p.Size()
					prev := (p.Rank() - 1 + p.Size()) % p.Size()
					if err = p.Send(next, 100+i, sizes[i]); err == nil {
						err = p.Recv(prev, 100+i)
					}
				default:
					// Eager self-traffic plus a barrier.
					if err = p.Send(p.Rank(), 200+i, sizes[i]); err == nil {
						if err = p.Recv(p.Rank(), 200+i); err == nil {
							err = p.Barrier()
						}
					}
				}
				if err != nil {
					return err
				}
			}
			return nil
		})
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
