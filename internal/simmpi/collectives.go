package simmpi

import "fmt"

// Collective operations implemented over Send/Recv with the standard
// algorithms real MPI libraries use — which is what exposes them to
// switch congestion exactly as the paper observed: the naive linear
// all-to-all floods destination ports (Figure 4), while neighbour-only
// patterns stay clean.

// Internal tag space for collectives, above any sane user tag.
const (
	tagBarrier   = 1 << 20
	tagBcast     = 2 << 20
	tagReduce    = 3 << 20
	tagAlltoall  = 4 << 20
	tagAllgather = 5 << 20
)

// Barrier synchronizes all ranks (dissemination algorithm: works for
// any rank count, log2(n) rounds).
func (p *Proc) Barrier() error {
	return p.Collective("barrier", func() error {
		for k := 1; k < p.size; k <<= 1 {
			dst := (p.rank + k) % p.size
			src := (p.rank - k + p.size) % p.size
			if err := p.Send(dst, tagBarrier+k, 1); err != nil {
				return err
			}
			if err := p.Recv(src, tagBarrier+k); err != nil {
				return err
			}
		}
		return nil
	})
}

// Bcast broadcasts bytes from root to all ranks (binomial tree).
func (p *Proc) Bcast(root, bytes int) error {
	return p.Collective("bcast", func() error {
		return p.bcastBinomial(root, bytes, tagBcast)
	})
}

func (p *Proc) bcastBinomial(root, bytes, tag int) error {
	relative := (p.rank - root + p.size) % p.size
	mask := 1
	for mask < p.size {
		if relative&mask != 0 {
			src := (relative - mask + root) % p.size
			if err := p.Recv(src, tag); err != nil {
				return err
			}
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if relative+mask < p.size {
			dst := (relative + mask + root) % p.size
			if err := p.Send(dst, tag, bytes); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	return nil
}

// BcastPipelined broadcasts bytes from root along a ring in segments —
// the algorithm HPL-class codes use for large panels: for enough
// segments the cost approaches bytes/bandwidth independent of the rank
// count.
func (p *Proc) BcastPipelined(root, bytes, segments int) error {
	if segments < 1 {
		segments = 1
	}
	return p.Collective("bcast", func() error {
		if p.size == 1 {
			return nil
		}
		relative := (p.rank - root + p.size) % p.size
		next := (p.rank + 1) % p.size
		prev := (p.rank - 1 + p.size) % p.size
		segBytes := (bytes + segments - 1) / segments
		for s := 0; s < segments; s++ {
			tag := tagBcast + 1 + s
			if relative != 0 {
				if err := p.Recv(prev, tag); err != nil {
					return err
				}
			}
			if relative != p.size-1 {
				if err := p.Send(next, tag, segBytes); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// BcastLarge broadcasts bytes from root with the scatter + ring
// allgather algorithm MPI libraries use for large messages (and HPL for
// panel broadcasts): the root binomially scatters 1/size-sized chunks,
// then a ring allgather circulates them. Total cost approaches
// 2*bytes/bandwidth independent of rank count, with size-1 neighbour
// messages — no incast.
func (p *Proc) BcastLarge(root, bytes int) error {
	return p.Collective("bcast", func() error {
		if p.size == 1 {
			return nil
		}
		relative := (p.rank - root + p.size) % p.size
		chunk := (bytes + p.size - 1) / p.size
		// Scatter phase: binomial tree where each hop forwards only the
		// destination subtree's share.
		mask := 1
		for mask < p.size {
			if relative&mask != 0 {
				src := (relative - mask + root) % p.size
				if err := p.Recv(src, tagBcast+mask); err != nil {
					return err
				}
				break
			}
			mask <<= 1
		}
		mask >>= 1
		for mask > 0 {
			if relative+mask < p.size {
				dst := (relative + mask + root) % p.size
				subtree := mask
				if relative+2*mask > p.size {
					subtree = p.size - relative - mask
				}
				if err := p.Send(dst, tagBcast+mask, subtree*chunk); err != nil {
					return err
				}
			}
			mask >>= 1
		}
		// Allgather phase: ring circulation of the size-1 missing chunks.
		// Rounds are batched (several chunks per message) to keep the
		// event count manageable; the bandwidth term — each ring link
		// carries (size-1)*chunk bytes — is preserved exactly.
		next := (p.rank + 1) % p.size
		prev := (p.rank - 1 + p.size) % p.size
		rounds := p.size - 1
		if rounds > 8 {
			rounds = 8
		}
		total := (p.size - 1) * chunk
		for round := 0; round < rounds; round++ {
			share := total / rounds
			if round == rounds-1 {
				share = total - share*(rounds-1)
			}
			if err := p.Send(next, tagAllgather+round, share); err != nil {
				return err
			}
			if err := p.Recv(prev, tagAllgather+round); err != nil {
				return err
			}
		}
		return nil
	})
}

// Reduce combines bytes from all ranks at root (binomial tree, reversed
// broadcast order).
func (p *Proc) Reduce(root, bytes int) error {
	return p.Collective("reduce", func() error {
		relative := (p.rank - root + p.size) % p.size
		mask := 1
		for mask < p.size {
			if relative&mask == 0 {
				srcRel := relative | mask
				if srcRel < p.size {
					src := (srcRel + root) % p.size
					if err := p.Recv(src, tagReduce+mask); err != nil {
						return err
					}
				}
			} else {
				dst := (relative&^mask + root) % p.size
				if err := p.Send(dst, tagReduce+mask, bytes); err != nil {
					return err
				}
				break
			}
			mask <<= 1
		}
		return nil
	})
}

// Allreduce reduces bytes across all ranks and distributes the result
// (reduce to rank 0, then broadcast).
func (p *Proc) Allreduce(bytes int) error {
	return p.Collective("allreduce", func() error {
		relative := p.rank
		mask := 1
		for mask < p.size {
			if relative&mask == 0 {
				srcRel := relative | mask
				if srcRel < p.size {
					if err := p.Recv(srcRel, tagReduce+mask); err != nil {
						return err
					}
				}
			} else {
				dst := relative &^ mask
				if err := p.Send(dst, tagReduce+mask, bytes); err != nil {
					return err
				}
				break
			}
			mask <<= 1
		}
		return p.bcastBinomial(0, bytes, tagBcast-1)
	})
}

// AlltoallvAlgorithm selects the all-to-all exchange schedule.
type AlltoallvAlgorithm int

// Alltoallv schedules.
const (
	// AlltoallvLinear posts sends to every peer in rank order before
	// receiving — OpenMPI's basic_linear. All senders flood rank 0's
	// port first, then rank 1's, ...: the incast pattern that overflows
	// commodity switch buffers at scale.
	AlltoallvLinear AlltoallvAlgorithm = iota
	// AlltoallvPairwise walks shifted rounds (dst = rank+r, src =
	// rank-r), keeping traffic one-to-one per round.
	AlltoallvPairwise
)

// Alltoallv exchanges bytesTo[i] bytes with every rank i (len(bytesTo)
// must equal Size). The schedule decides how hard the switch suffers.
func (p *Proc) Alltoallv(bytesTo []int, algo AlltoallvAlgorithm) error {
	if len(bytesTo) != p.size {
		return fmt.Errorf("simmpi: alltoallv counts length %d != size %d", len(bytesTo), p.size)
	}
	return p.Collective("alltoallv", func() error {
		switch algo {
		case AlltoallvPairwise:
			for off := 1; off < p.size; off++ {
				dst := (p.rank + off) % p.size
				src := (p.rank - off + p.size) % p.size
				if err := p.Send(dst, tagAlltoall+off, bytesTo[dst]); err != nil {
					return err
				}
				if err := p.Recv(src, tagAlltoall+off); err != nil {
					return err
				}
			}
			return nil
		default: // AlltoallvLinear
			for dst := 0; dst < p.size; dst++ {
				if dst == p.rank {
					continue
				}
				if err := p.Send(dst, tagAlltoall, bytesTo[dst]); err != nil {
					return err
				}
			}
			for src := 0; src < p.size; src++ {
				if src == p.rank {
					continue
				}
				if err := p.Recv(src, tagAlltoall); err != nil {
					return err
				}
			}
			return nil
		}
	})
}

// Allgather distributes bytes from every rank to every rank (ring
// algorithm: size-1 rounds of neighbour forwarding).
func (p *Proc) Allgather(bytes int) error {
	return p.Collective("allgather", func() error {
		next := (p.rank + 1) % p.size
		prev := (p.rank - 1 + p.size) % p.size
		for round := 0; round < p.size-1; round++ {
			if err := p.Send(next, tagAllgather+round, bytes); err != nil {
				return err
			}
			if err := p.Recv(prev, tagAllgather+round); err != nil {
				return err
			}
		}
		return nil
	})
}

// Gather collects bytes from every rank at root (linear).
func (p *Proc) Gather(root, bytes int) error {
	return p.Collective("gather", func() error {
		if p.rank == root {
			for src := 0; src < p.size; src++ {
				if src == root {
					continue
				}
				if err := p.Recv(src, tagAllgather-1); err != nil {
					return err
				}
			}
			return nil
		}
		return p.Send(root, tagAllgather-1, bytes)
	})
}
