package simmpi

import (
	"testing"
)

// The zero-alloc hot-path contract: with tracing off, Send and Recv
// commit through the pooled op structs, the dense pending slice, the
// reused network route buffers and the head-indexed mailbox — so the
// steady state allocates (amortized) nothing per operation. The guard
// asserts <= 1 allocation per op, an order of magnitude above the
// measured steady state (~0.01), so only a structural regression (a
// fresh allocation back on the per-op path) can trip it.
func TestSendRecvAllocsPerOp(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	cfg := starConfig(2, 1)
	const rounds = 2000
	const opsPerRun = 4 * rounds // 2 ranks x (send + recv) x rounds
	body := func(p *Proc) error {
		for r := 0; r < rounds; r++ {
			if p.Rank() == 0 {
				if err := p.Send(1, 1, 1024); err != nil {
					return err
				}
				if err := p.Recv(1, 2); err != nil {
					return err
				}
			} else {
				if err := p.Recv(0, 1); err != nil {
					return err
				}
				if err := p.Send(0, 2, 1024); err != nil {
					return err
				}
			}
		}
		return nil
	}
	allocsPerRun := testing.AllocsPerRun(3, func() {
		cfg.Net.Reset()
		if _, err := Run(cfg, body); err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	perOp := allocsPerRun / opsPerRun
	t.Logf("allocs: %.0f per run, %.4f per op", allocsPerRun, perOp)
	if perOp > 1.0 {
		t.Errorf("Send/Recv hot path allocates %.2f per op, want <= 1 (tracing off)", perOp)
	}
}

// A long incast queue (many sends parked for one slow receiver) must
// not allocate per message beyond the amortized queue growth, and the
// head-indexed mailbox must reuse its backing array across drains.
func TestMailboxQueueAllocsAmortized(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	cfg := starConfig(2, 1)
	const msgs = 1024
	body := func(p *Proc) error {
		if p.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := p.Send(1, 9, 256); err != nil {
					return err
				}
			}
			return nil
		}
		p.Compute(1.0, "late start")
		for i := 0; i < msgs; i++ {
			if err := p.Recv(0, 9); err != nil {
				return err
			}
		}
		return nil
	}
	allocsPerRun := testing.AllocsPerRun(3, func() {
		cfg.Net.Reset()
		if _, err := Run(cfg, body); err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	perOp := allocsPerRun / (2 * msgs)
	t.Logf("allocs: %.0f per run, %.4f per op", allocsPerRun, perOp)
	if perOp > 1.0 {
		t.Errorf("long-queue path allocates %.2f per op, want <= 1", perOp)
	}
}
