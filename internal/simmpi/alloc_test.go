package simmpi

import (
	"testing"
)

// The zero-alloc hot-path contract: with tracing off, Send and Recv
// commit through the pooled op structs, the dense pending slice, the
// reused network route buffers and the head-indexed mailbox — so the
// steady state allocates (amortized) nothing per operation. The guard
// asserts <= 1 allocation per op, an order of magnitude above the
// measured steady state (~0.01), so only a structural regression (a
// fresh allocation back on the per-op path) can trip it.
func TestSendRecvAllocsPerOp(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	cfg := starConfig(2, 1)
	const rounds = 2000
	const opsPerRun = 4 * rounds // 2 ranks x (send + recv) x rounds
	body := func(p *Proc) error {
		for r := 0; r < rounds; r++ {
			if p.Rank() == 0 {
				if err := p.Send(1, 1, 1024); err != nil {
					return err
				}
				if err := p.Recv(1, 2); err != nil {
					return err
				}
			} else {
				if err := p.Recv(0, 1); err != nil {
					return err
				}
				if err := p.Send(0, 2, 1024); err != nil {
					return err
				}
			}
		}
		return nil
	}
	allocsPerRun := testing.AllocsPerRun(3, func() {
		cfg.Net.Reset()
		if _, err := Run(cfg, body); err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	perOp := allocsPerRun / opsPerRun
	t.Logf("allocs: %.0f per run, %.4f per op", allocsPerRun, perOp)
	if perOp > 1.0 {
		t.Errorf("Send/Recv hot path allocates %.2f per op, want <= 1 (tracing off)", perOp)
	}
}

// The sharded scheduler must hold the same amortized contract: shard
// heaps, outboxes and window barriers reuse their backing arrays, so a
// parallel run's per-op allocation stays within the sequential bound
// (fixed per-run costs — goroutines, shard structs — amortize out over
// a long ring exchange).
func TestParallelAllocsPerOp(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	cfg := starConfig(8, 2)
	cfg.Workers = 4
	const rounds = 500
	const opsPerRun = 8 * 2 * rounds // 8 ranks x (send + recv) x rounds
	body := func(p *Proc) error {
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() - 1 + p.Size()) % p.Size()
		for r := 0; r < rounds; r++ {
			if err := p.Send(next, r, 1024); err != nil {
				return err
			}
			if err := p.Recv(prev, r); err != nil {
				return err
			}
		}
		return nil
	}
	allocsPerRun := testing.AllocsPerRun(3, func() {
		cfg.Net.Reset()
		rep, err := Run(cfg, body)
		if err != nil {
			t.Error(err)
		} else if rep.Sched.Workers != 4 {
			t.Errorf("ran with %d workers, want 4", rep.Sched.Workers)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	perOp := allocsPerRun / opsPerRun
	t.Logf("allocs: %.0f per run, %.4f per op", allocsPerRun, perOp)
	if perOp > 1.0 {
		t.Errorf("sharded hot path allocates %.2f per op, want <= 1 (tracing off)", perOp)
	}
}

// A long incast queue (many sends parked for one slow receiver) must
// not allocate per message beyond the amortized queue growth, and the
// head-indexed mailbox must reuse its backing array across drains.
func TestMailboxQueueAllocsAmortized(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	cfg := starConfig(2, 1)
	const msgs = 1024
	body := func(p *Proc) error {
		if p.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := p.Send(1, 9, 256); err != nil {
					return err
				}
			}
			return nil
		}
		p.Compute(1.0, "late start")
		for i := 0; i < msgs; i++ {
			if err := p.Recv(0, 9); err != nil {
				return err
			}
		}
		return nil
	}
	allocsPerRun := testing.AllocsPerRun(3, func() {
		cfg.Net.Reset()
		if _, err := Run(cfg, body); err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	perOp := allocsPerRun / (2 * msgs)
	t.Logf("allocs: %.0f per run, %.4f per op", allocsPerRun, perOp)
	if perOp > 1.0 {
		t.Errorf("long-queue path allocates %.2f per op, want <= 1", perOp)
	}
}
