package simmpi

import (
	"math"
	"sync/atomic"
	"time"
)

// engineStart anchors nowMonotonic: wall-clock durations measured
// against a process-local monotonic origin.
//
//detlint:allow wallclock -- monotonic origin for SchedStats.Wall telemetry; wall time feeds -time and /metrics, never simulation results
var engineStart = time.Now()

//detlint:allow wallclock -- wall-clock telemetry only (events/s rates); simulation output never includes it
func nowMonotonic() float64 { return time.Since(engineStart).Seconds() }

// engineTotals aggregates SchedStats across every Run in the process,
// lock-free so concurrent simulations (the runner pool, the service)
// account without contention. Float sums are stored as IEEE bits and
// updated by CAS.
var engineTotals struct {
	runs, events, windows      atomic.Uint64
	localSends, crossSends     atomic.Uint64
	wallBits, lookaheadSumBits atomic.Uint64
}

func addFloatBits(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

// recordEngineRun folds one successful run into the process totals.
func recordEngineRun(st SchedStats) {
	engineTotals.runs.Add(1)
	engineTotals.events.Add(st.Events)
	engineTotals.windows.Add(st.Windows)
	engineTotals.localSends.Add(st.LocalSends)
	engineTotals.crossSends.Add(st.CrossSends)
	addFloatBits(&engineTotals.wallBits, st.Wall)
	addFloatBits(&engineTotals.lookaheadSumBits, st.Lookahead)
}

// EngineStats is the process-wide scheduler aggregate: every completed
// Run since process start, with the derived rates the speedup curve is
// read against. Rendered by the CLI under -time and by the service's
// /metrics document.
type EngineStats struct {
	Runs          uint64  `json:"runs"`
	Events        uint64  `json:"events"`
	Windows       uint64  `json:"windows"`
	LocalSends    uint64  `json:"local_sends"`
	CrossSends    uint64  `json:"cross_sends"`
	WallSeconds   float64 `json:"wall_seconds"`
	EventsPerSec  float64 `json:"events_per_second"`
	MeanLookahead float64 `json:"mean_lookahead_seconds"`
	CrossRatio    float64 `json:"cross_send_ratio"`
}

// Engine returns a snapshot of the process-wide scheduler totals.
func Engine() EngineStats {
	s := EngineStats{
		Runs:        engineTotals.runs.Load(),
		Events:      engineTotals.events.Load(),
		Windows:     engineTotals.windows.Load(),
		LocalSends:  engineTotals.localSends.Load(),
		CrossSends:  engineTotals.crossSends.Load(),
		WallSeconds: math.Float64frombits(engineTotals.wallBits.Load()),
	}
	if s.WallSeconds > 0 {
		s.EventsPerSec = float64(s.Events) / s.WallSeconds
	}
	if s.Runs > 0 {
		s.MeanLookahead = math.Float64frombits(engineTotals.lookaheadSumBits.Load()) / float64(s.Runs)
	}
	if sends := s.LocalSends + s.CrossSends; sends > 0 {
		s.CrossRatio = float64(s.CrossSends) / float64(sends)
	}
	return s
}
