package simmpi

import (
	"testing"
	"testing/quick"

	"montblanc/internal/xrand"
)

// Property: a random but symmetric program of collectives completes
// without deadlock for any rank count, and two executions produce
// identical makespans (determinism of the event engine).
func TestRandomCollectiveProgramsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		ranks := 2 + rng.Intn(10)
		per := 1 + rng.Intn(2)
		nOps := 1 + rng.Intn(6)
		ops := make([]int, nOps)
		sizes := make([]int, nOps)
		for i := range ops {
			ops[i] = rng.Intn(5)
			sizes[i] = 1 + rng.Intn(100000)
		}
		run := func() float64 {
			rep, err := Run(starConfig(ranks, per), func(p *Proc) error {
				for i, op := range ops {
					var err error
					switch op {
					case 0:
						err = p.Barrier()
					case 1:
						err = p.Bcast(i%p.Size(), sizes[i])
					case 2:
						err = p.Allreduce(sizes[i])
					case 3:
						counts := make([]int, p.Size())
						for j := range counts {
							counts[j] = sizes[i] / p.Size()
						}
						err = p.Alltoallv(counts, AlltoallvAlgorithm(i%2))
					case 4:
						err = p.Allgather(sizes[i])
					}
					if err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return -1
			}
			return rep.Seconds
		}
		a := run()
		if a < 0 {
			return false
		}
		return a == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: makespan is monotone in message size for a fixed pattern.
func TestMakespanMonotoneInSizeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		small := 1 + rng.Intn(30000)
		big := small + 1 + rng.Intn(200000)
		measure := func(bytes int) float64 {
			rep, err := Run(starConfig(6, 2), func(p *Proc) error {
				return p.Bcast(0, bytes)
			})
			if err != nil {
				return -1
			}
			return rep.Seconds
		}
		a, b := measure(small), measure(big)
		return a >= 0 && b >= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSelfSendRecv(t *testing.T) {
	rep, err := Run(starConfig(2, 1), func(p *Proc) error {
		if p.Rank() == 0 {
			if err := p.Send(0, 1, 1000); err != nil {
				return err
			}
			return p.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds <= 0 {
		t.Error("self message took no time")
	}
}

func TestZeroByteMessages(t *testing.T) {
	_, err := Run(starConfig(2, 1), func(p *Proc) error {
		if p.Rank() == 0 {
			return p.Send(1, 1, 0)
		}
		return p.Recv(0, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyTagsInterleaved(t *testing.T) {
	// Messages on distinct tags match by tag, not by arrival order.
	_, err := Run(starConfig(2, 1), func(p *Proc) error {
		const n = 16
		if p.Rank() == 0 {
			for tag := 0; tag < n; tag++ {
				if err := p.Send(1, tag, 1000*(tag+1)); err != nil {
					return err
				}
			}
			return nil
		}
		// Receive in reverse tag order.
		for tag := n - 1; tag >= 0; tag-- {
			if err := p.Recv(0, tag); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestComputeNegativeClamped(t *testing.T) {
	rep, err := Run(starConfig(1, 1), func(p *Proc) error {
		p.Compute(-5, "negative")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds != 0 {
		t.Errorf("negative compute advanced the clock: %v", rep.Seconds)
	}
}

// Eager sends are buffered: a rank can send many messages nobody has
// received yet and still make progress.
func TestEagerSendsDoNotBlock(t *testing.T) {
	rep, err := Run(starConfig(2, 1), func(p *Proc) error {
		if p.Rank() == 0 {
			for i := 0; i < 50; i++ {
				if err := p.Send(1, 9, 1000); err != nil {
					return err
				}
			}
			return nil
		}
		p.Compute(1.0, "late start")
		for i := 0; i < 50; i++ {
			if err := p.Recv(0, 9); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sender finished long before the receiver started pulling.
	if rep.RankSeconds[0] >= 1.0 {
		t.Errorf("sender blocked until %v", rep.RankSeconds[0])
	}
}

// The drop flag propagates to the receiving rank's counters.
func TestDroppedRecvCounting(t *testing.T) {
	cfg := starConfig(36, 2)
	cfg.CollectTrace = true
	rep, err := Run(cfg, func(p *Proc) error {
		counts := make([]int, p.Size())
		for i := range counts {
			counts[i] = 48 << 10
		}
		return p.Alltoallv(counts, AlltoallvLinear)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drops == 0 {
		t.Fatal("precondition: expected drops")
	}
	total := 0
	for _, iv := range rep.Trace.Intervals {
		total += iv.Dropped
	}
	if uint64(total) != rep.Drops {
		t.Errorf("interval drop counts %d != network drops %d", total, rep.Drops)
	}
}
