// Conservative parallel scheduler: ranks are sharded across worker
// goroutines on node boundaries, and events commit in bounded time
// windows whose width is the network's lookahead — the minimum one-way
// latency between distinct nodes. Within a window every shard commits
// its own events independently in (ready, rank) order; all cross-node
// sends are deferred to the window barrier, where a single sweep
// replays them against the network in the merged global (ready, rank)
// order. The result is byte-identical to the sequential reference
// scheduler at any worker count; SIMMPI.md walks the exactness
// argument in full. The short version:
//
//   - Mailbox matching is keyed by exact (src, tag) per destination and
//     both sides follow per-rank program order, so recv/message pairing
//     is independent of global commit interleaving. Only the network's
//     link state (busyUntil, drop counters) is order-sensitive.
//   - Intra-node sends traverse only the node's loopback link. Shards
//     own whole nodes, so those reservations are shard-private and the
//     shard's commit order equals the global order restricted to it.
//   - Cross-node sends touch shared links, so their reservations happen
//     in the barrier sweep in exact global order. Deferring them has no
//     observable effect inside the window: the sender's resume time
//     (post + overhead + copy) does not depend on the delivery, and the
//     message cannot arrive — so cannot match a recv — before
//     post + lookahead, which is at or beyond the window edge.
//   - Every op committed in window k has ready >= the window's opening
//     minimum, so a cross send's arrival lands at or past the next
//     window's edge: nothing committed in window k can observe it.
package simmpi

import (
	"fmt"
	"math"

	"montblanc/internal/network"
	"montblanc/internal/trace"
)

// pshard is one scheduler shard: a contiguous block of whole nodes with
// its own declaration channel, indexed min-heap and cross-send outbox.
// All fields are owned by the shard goroutine during a window and read
// by the coordinator only between phaseDone and the next cmd send.
type pshard struct {
	id       int
	opCh     chan *op
	heap     opHeap
	live     int // ranks not yet exited
	nPending int // ranks with a declared, uncommitted op
	out      outbox
	comms    []trace.Comm // intra-node comms in shard commit order
	events   uint64
	locals   uint64 // intra-node sends committed shard-locally

	cmd chan float64 // next window edge; closed to stop the shard

	// First intra-node delivery failure in shard order; the coordinator
	// resolves the globally-first error across shards and the barrier.
	err     error
	errTime float64
	errRank int
}

// pworld is the parallel scheduler's state: the shared world plus the
// shard set and the coordinator's bookkeeping.
type pworld struct {
	*world
	shards     []*pshard
	shardOf    []int // rank -> shard id
	phaseDone  chan struct{}
	endTimes   []float64
	rankErrs   []error
	crossSends uint64
}

// runParallel executes body under the conservative windowed scheduler
// with the given shard count (>= 2, already bounded by the node count).
func runParallel(cfg Config, body func(*Proc) error, workers int) (*Report, error) {
	start := nowMonotonic()
	la := cfg.Net.Lookahead()
	pw := &pworld{
		world:     newWorld(cfg, hooks{}),
		shardOf:   make([]int, cfg.Ranks),
		phaseDone: make(chan struct{}, workers),
		endTimes:  make([]float64, cfg.Ranks),
		rankErrs:  make([]error, cfg.Ranks),
	}
	// Shards own contiguous node blocks: intra-node traffic (loopback
	// links, same-node mailboxes) then never crosses a shard boundary.
	nodes := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	base, rem := nodes/workers, nodes%workers
	node0 := 0
	for i := 0; i < workers; i++ {
		nn := base
		if i < rem {
			nn++
		}
		lo := node0 * cfg.RanksPerNode
		hi := (node0 + nn) * cfg.RanksPerNode
		if hi > cfg.Ranks {
			hi = cfg.Ranks
		}
		s := &pshard{id: i, opCh: make(chan *op), cmd: make(chan float64), live: hi - lo}
		s.heap.a = make([]*op, 0, hi-lo)
		for r := lo; r < hi; r++ {
			pw.shardOf[r] = i
		}
		pw.shards = append(pw.shards, s)
		node0 += nn
	}
	procs := pw.spawnProcs(body, func(rank int) chan *op { return pw.shards[pw.shardOf[rank]].opCh })
	for _, s := range pw.shards {
		go pw.shardLoop(s)
	}

	stats := SchedStats{Workers: workers, Lookahead: la}
	var netErr, deadlock error
	edge := math.Inf(-1) // first phase only collects declarations
	for {
		for _, s := range pw.shards {
			s.cmd <- edge
		}
		for range pw.shards {
			<-pw.phaseDone
		}
		if netErr = pw.barrier(); netErr != nil {
			break
		}
		live := 0
		for _, s := range pw.shards {
			live += s.live
		}
		if live == 0 {
			break
		}
		// The next window opens at the global minimum ready time (the
		// barrier may have matched recvs into the heaps) and spans one
		// lookahead.
		minNext := math.Inf(1)
		for _, s := range pw.shards {
			if m := s.heap.peek(); m != nil && m.ready < minNext {
				minNext = m.ready
			}
		}
		if math.IsInf(minNext, 1) {
			deadlock = pw.deadlockError()
			break
		}
		edge = minNext + la
		stats.Windows++
	}
	for _, s := range pw.shards {
		close(s.cmd)
	}
	if netErr != nil {
		return nil, netErr
	}
	if deadlock != nil {
		return nil, deadlock
	}
	for r, err := range pw.rankErrs {
		if err != nil {
			return nil, fmt.Errorf("simmpi: rank %d: %w", r, err)
		}
	}

	for _, s := range pw.shards {
		stats.Events += s.events
		stats.LocalSends += s.locals
	}
	stats.CrossSends = pw.crossSends
	stats.Wall = nowMonotonic() - start
	rep := &Report{RankSeconds: pw.endTimes, Drops: cfg.Net.Drops(), Sched: stats,
		Faults: faultTotals(procs)}
	for _, t := range pw.endTimes {
		if t > rep.Seconds {
			rep.Seconds = t
		}
	}
	if cfg.CollectTrace {
		rep.Trace = mergeTrace(cfg, procs, pw.mergedComms())
	}
	recordEngineRun(stats)
	return rep, nil
}

// shardLoop runs one shard: a window per cmd value until the channel
// closes.
func (pw *pworld) shardLoop(s *pshard) {
	for edge := range s.cmd {
		pw.runWindow(s, edge)
		pw.phaseDone <- struct{}{}
	}
}

// runWindow collects declarations and commits this shard's events with
// ready < edge, in the shard's (ready, rank) order — exactly the global
// commit order restricted to the shard's ranks.
func (pw *pworld) runWindow(s *pshard, edge float64) {
	s.out.reset()
	for s.err == nil {
		// Collect until every live rank of the shard has declared — an
		// undeclared rank is running and will post; parked recvs count
		// as declared.
		for s.nPending < s.live {
			o := <-s.opCh
			pw.pending[o.rank] = o
			s.nPending++
			switch o.kind {
			case opSend, opExit:
				o.ready = o.time
				s.heap.push(o)
			case opRecv:
				o.ready = math.Inf(1)
				pw.matchShard(s, o)
			}
		}
		best := s.heap.peek()
		if best == nil || best.ready >= edge {
			return
		}
		s.heap.pop()
		pw.pending[best.rank] = nil
		s.nPending--
		s.events++
		switch best.kind {
		case opSend:
			pw.commitSend(s, best)
		case opRecv:
			copyCost := float64(best.matchedMsg.bytes) / pw.cfg.CopyBandwidth
			pw.resume[best.rank] <- resumeMsg{
				time:    best.ready + copyCost,
				dropped: best.matchedMsg.dropped,
			}
		case opExit:
			s.live--
			pw.endTimes[best.rank] = best.time
			pw.rankErrs[best.rank] = best.err
		}
	}
}

// commitSend commits one send. Intra-node sends deliver immediately on
// the shard-private loopback link; cross-node sends are copied into the
// outbox for the barrier sweep. Either way the sender resumes now: its
// resume time does not depend on the delivery outcome.
func (pw *pworld) commitSend(s *pshard, o *op) {
	cfg := &pw.cfg
	// Grouped exactly as the sequential path computes it: float addition
	// is not associative and the outputs must match to the last bit.
	overhead := cfg.SendOverhead + float64(o.bytes)/cfg.CopyBandwidth
	resumeAt := o.time + overhead
	if pw.node(o.rank) != pw.node(o.dst) {
		s.out.push(xsend{time: o.time, rank: o.rank, dst: o.dst, tag: o.tag, bytes: o.bytes})
		pw.resume[o.rank] <- resumeMsg{time: resumeAt}
		return
	}
	s.locals++
	res, err := pw.deliver(o)
	if err != nil {
		s.err, s.errTime, s.errRank = err, o.time, o.rank
		return
	}
	m := msg{arrival: res.Arrival, dropped: res.Dropped, bytes: o.bytes}
	pw.mail[o.dst].push(o.rank, o.tag, m)
	if cfg.CollectTrace {
		s.comms = append(s.comms, trace.Comm{
			Src: o.rank, Dst: o.dst, Tag: o.tag, Bytes: o.bytes,
			Sent: o.time, Arrived: res.Arrival, Dropped: res.Dropped,
		})
	}
	if ro := pw.pending[o.dst]; ro != nil && ro.kind == opRecv && !ro.matched {
		pw.matchShard(s, ro)
	}
	pw.resume[o.rank] <- resumeMsg{time: resumeAt}
}

// matchShard completes a pending recv against the mailbox if possible,
// pushing it onto the shard's heap.
func (pw *pworld) matchShard(s *pshard, o *op) {
	m, ok := pw.mail[o.rank].match(o.src, o.tag)
	if !ok {
		return
	}
	o.matched = true
	o.matchedMsg = m
	o.ready = math.Max(o.time, m.arrival)
	s.heap.push(o)
}

// barrier runs between windows with every shard parked: it drains the
// shards' outboxes merged by (time, rank) — reproducing the sequential
// scheduler's link reservation order exactly — delivers into the
// mailboxes and matches parked recvs into their shards' heaps. It
// returns the globally-first error, honouring shard-local failures that
// interleave with barrier deliveries in commit order.
func (pw *pworld) barrier() error {
	cutErr := error(nil)
	cutT, cutR := math.Inf(1), 0
	for _, s := range pw.shards {
		if s.err != nil && (cutErr == nil || s.errTime < cutT || (s.errTime == cutT && s.errRank < cutR)) {
			cutErr, cutT, cutR = s.err, s.errTime, s.errRank
		}
	}
	cfg := &pw.cfg
	for {
		var best *pshard
		var bx *xsend
		for _, s := range pw.shards {
			x := s.out.peek()
			if x == nil {
				continue
			}
			if bx == nil || x.time < bx.time || (x.time == bx.time && x.rank < bx.rank) {
				best, bx = s, x
			}
		}
		if bx == nil {
			break
		}
		if cutErr != nil && (bx.time > cutT || (bx.time == cutT && bx.rank > cutR)) {
			return cutErr // the shard-local failure committed first
		}
		best.out.pop()
		opts := network.SendOptions{FlowControlled: bx.bytes > EagerThreshold}
		res, err := cfg.Net.SendOpts(bx.time, pw.node(bx.rank), pw.node(bx.dst), bx.bytes, opts)
		if err != nil {
			return err
		}
		pw.crossSends++
		pw.mail[bx.dst].push(bx.rank, bx.tag, msg{arrival: res.Arrival, dropped: res.Dropped, bytes: bx.bytes})
		if cfg.CollectTrace {
			pw.comms = append(pw.comms, trace.Comm{
				Src: bx.rank, Dst: bx.dst, Tag: bx.tag, Bytes: bx.bytes,
				Sent: bx.time, Arrived: res.Arrival, Dropped: res.Dropped,
			})
		}
		if ro := pw.pending[bx.dst]; ro != nil && ro.kind == opRecv && !ro.matched {
			pw.matchBarrier(ro)
		}
	}
	return cutErr
}

// matchBarrier is matchShard for the coordinator: the matched recv goes
// to the heap of whichever shard owns the destination rank.
func (pw *pworld) matchBarrier(o *op) {
	m, ok := pw.mail[o.rank].match(o.src, o.tag)
	if !ok {
		return
	}
	o.matched = true
	o.matchedMsg = m
	o.ready = math.Max(o.time, m.arrival)
	pw.shards[pw.shardOf[o.rank]].heap.push(o)
}

// deadlockError reconstructs the sequential scheduler's deadlock
// diagnostic from the global pending table.
func (pw *pworld) deadlockError() error {
	pw.nPending = 0
	for _, s := range pw.shards {
		pw.nPending += s.nPending
	}
	return pw.world.deadlockError()
}

// mergedComms merges the shards' intra-node comm logs with the barrier
// comm log by (Sent, Src). Sent times are strictly increasing per
// sender (every send pays SendOverhead before the next), so the key is
// unique and the merge reproduces the sequential insertion order — the
// tie-break trace.Sort's stable by-Sent sort depends on.
func (pw *pworld) mergedComms() []trace.Comm {
	lists := make([][]trace.Comm, 0, len(pw.shards)+1)
	total := 0
	for _, s := range pw.shards {
		lists = append(lists, s.comms)
		total += len(s.comms)
	}
	lists = append(lists, pw.comms)
	total += len(pw.comms)
	out := make([]trace.Comm, 0, total)
	cur := make([]int, len(lists))
	for len(out) < total {
		best := -1
		for i, l := range lists {
			if cur[i] >= len(l) {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			c, b := &l[cur[i]], &lists[best][cur[best]]
			if c.Sent < b.Sent || (c.Sent == b.Sent && c.Src < b.Src) {
				best = i
			}
		}
		out = append(out, lists[best][cur[best]])
		cur[best]++
	}
	return out
}
