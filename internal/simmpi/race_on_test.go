//go:build race

package simmpi

// raceEnabled reports whether the race detector is active; allocation
// guards skip under -race, where instrumentation skews alloc counts.
const raceEnabled = true
