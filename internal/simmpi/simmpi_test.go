package simmpi

import (
	"errors"
	"strings"
	"testing"

	"montblanc/internal/network"
	"montblanc/internal/trace"
)

func starConfig(ranks, ranksPerNode int) Config {
	nodes := (ranks + ranksPerNode - 1) / ranksPerNode
	return Config{
		Ranks:        ranks,
		RanksPerNode: ranksPerNode,
		Net:          network.Star(nodes),
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("empty config accepted")
	}
	if err := (Config{Ranks: 4}).Validate(); err == nil {
		t.Error("nil network accepted")
	}
	c := starConfig(8, 2)
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
	c.Ranks = 100 // 50 nodes needed, star has 4
	if err := c.Validate(); err == nil {
		t.Error("oversubscribed network accepted")
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	rep, err := Run(starConfig(1, 1), func(p *Proc) error {
		p.Compute(1.5, "work")
		p.Compute(0.5, "more")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds != 2.0 {
		t.Errorf("makespan = %v, want 2.0", rep.Seconds)
	}
}

func TestComputeFlops(t *testing.T) {
	cfg := starConfig(1, 1)
	cfg.CoreFlopsPerSec = 2e9
	rep, err := Run(cfg, func(p *Proc) error {
		p.ComputeFlops(4e9, "flops")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds != 2.0 {
		t.Errorf("makespan = %v, want 2.0", rep.Seconds)
	}
}

func TestSendRecvTiming(t *testing.T) {
	rep, err := Run(starConfig(2, 1), func(p *Proc) error {
		if p.Rank() == 0 {
			return p.Send(1, 7, 125000) // 1ms serialization per link
		}
		return p.Recv(0, 7)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two GigE hops: 2*(50us + 1ms) = 2.1ms at least.
	if rep.Seconds < 0.0021 {
		t.Errorf("makespan = %v, want >= 2.1ms", rep.Seconds)
	}
	if rep.Seconds > 0.01 {
		t.Errorf("makespan = %v, unreasonably slow", rep.Seconds)
	}
}

func TestRecvBeforeSendCompletes(t *testing.T) {
	// Receiver posts recv immediately; sender computes 1s first. The
	// receiver must wait for the message, not complete early.
	rep, err := Run(starConfig(2, 1), func(p *Proc) error {
		if p.Rank() == 0 {
			p.Compute(1.0, "delay")
			return p.Send(1, 1, 1000)
		}
		return p.Recv(0, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RankSeconds[1] < 1.0 {
		t.Errorf("receiver finished at %v, before the send happened", rep.RankSeconds[1])
	}
}

func TestMessageOrderingFIFO(t *testing.T) {
	// Two messages same (src,dst,tag): the first recv gets the first.
	rep, err := Run(starConfig(2, 1), func(p *Proc) error {
		if p.Rank() == 0 {
			if err := p.Send(1, 5, 125000); err != nil {
				return err
			}
			return p.Send(1, 5, 125)
		}
		if err := p.Recv(0, 5); err != nil {
			return err
		}
		first := p.Now()
		if err := p.Recv(0, 5); err != nil {
			return err
		}
		if p.Now() < first {
			return errors.New("second recv completed before first")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = rep
}

func TestDeadlockDetection(t *testing.T) {
	_, err := Run(starConfig(2, 1), func(p *Proc) error {
		// Both ranks receive from each other; nobody sends.
		return p.Recv(1-p.Rank(), 9)
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want deadlock", err)
	}
}

func TestDeadlockReportsActualPendingOps(t *testing.T) {
	// A three-rank recv cycle: the report must name rank 0's actual
	// pending operation (source and tag) and tally the others by kind
	// instead of assuming everything stuck is a recv.
	_, err := Run(starConfig(3, 1), func(p *Proc) error {
		if p.Rank() == 0 {
			return p.Recv(2, 5)
		}
		return p.Recv(p.Rank()-1, 7)
	})
	if err == nil {
		t.Fatal("recv cycle completed")
	}
	for _, want := range []string{
		"deadlock", "rank 0", "recv from 2 tag 5", "2 more ranks blocked", "3 recv",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("deadlock error %q missing %q", err, want)
		}
	}
}

func TestRankErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(starConfig(2, 1), func(p *Proc) error {
		if p.Rank() == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	_, err := Run(starConfig(2, 1), func(p *Proc) error {
		if p.Rank() == 0 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("err = %v", err)
	}
}

func TestSendRecvValidation(t *testing.T) {
	_, err := Run(starConfig(2, 1), func(p *Proc) error {
		if err := p.Send(5, 0, 10); err == nil {
			return errors.New("invalid dst accepted")
		}
		if err := p.Send(0, 0, -1); err == nil {
			return errors.New("negative bytes accepted")
		}
		if err := p.Recv(-1, 0); err == nil {
			return errors.New("invalid src accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		rep, err := Run(starConfig(8, 2), func(p *Proc) error {
			for it := 0; it < 3; it++ {
				p.Compute(0.01*float64(p.Rank()%3), "work")
				counts := make([]int, p.Size())
				for i := range counts {
					counts[i] = 10000
				}
				if err := p.Alltoallv(counts, AlltoallvLinear); err != nil {
					return err
				}
			}
			return p.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Seconds
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs disagreed: %v vs %v", a, b)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	rep, err := Run(starConfig(4, 2), func(p *Proc) error {
		p.Compute(float64(p.Rank())*0.1, "skew")
		if err := p.Barrier(); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// All ranks finish at/after the slowest pre-barrier rank (0.3s).
	for r, s := range rep.RankSeconds {
		if s < 0.3 {
			t.Errorf("rank %d finished at %v, before barrier release", r, s)
		}
	}
}

func TestBcastReachesEveryone(t *testing.T) {
	for _, ranks := range []int{2, 3, 5, 8} {
		rep, err := Run(starConfig(ranks, 1), func(p *Proc) error {
			return p.Bcast(0, 50000)
		})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		for r := 1; r < ranks; r++ {
			if rep.RankSeconds[r] <= 0 {
				t.Errorf("ranks=%d: rank %d never received", ranks, r)
			}
		}
	}
}

func TestBcastPipelinedBeatsBinomialForBigMessages(t *testing.T) {
	const ranks = 16
	const bytes = 8 << 20
	binom, err := Run(starConfig(ranks, 1), func(p *Proc) error {
		return p.Bcast(0, bytes)
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := Run(starConfig(ranks, 1), func(p *Proc) error {
		return p.BcastPipelined(0, bytes, 32)
	})
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Seconds >= binom.Seconds {
		t.Errorf("pipelined bcast %.4fs not faster than binomial %.4fs",
			pipe.Seconds, binom.Seconds)
	}
}

func TestAllreduceAndReduceComplete(t *testing.T) {
	for _, ranks := range []int{2, 3, 6, 7} {
		_, err := Run(starConfig(ranks, 1), func(p *Proc) error {
			if err := p.Reduce(0, 1000); err != nil {
				return err
			}
			return p.Allreduce(1000)
		})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
	}
}

func TestAlltoallvBothAlgorithms(t *testing.T) {
	for _, algo := range []AlltoallvAlgorithm{AlltoallvLinear, AlltoallvPairwise} {
		_, err := Run(starConfig(6, 2), func(p *Proc) error {
			counts := make([]int, p.Size())
			for i := range counts {
				counts[i] = 5000
			}
			return p.Alltoallv(counts, algo)
		})
		if err != nil {
			t.Fatalf("algo=%d: %v", algo, err)
		}
	}
}

func TestAlltoallvCountsValidation(t *testing.T) {
	_, err := Run(starConfig(2, 1), func(p *Proc) error {
		return p.Alltoallv([]int{1, 2, 3}, AlltoallvLinear)
	})
	if err == nil {
		t.Error("wrong counts length accepted")
	}
}

// The Figure 4 mechanism end-to-end: a linear alltoallv of eager-sized
// messages at scale drops packets; the pairwise schedule on the same
// workload drops none.
func TestLinearAlltoallvCongestsPairwiseDoesNot(t *testing.T) {
	const ranks, per = 36, 2
	counts := func(p *Proc) []int {
		c := make([]int, p.Size())
		for i := range c {
			c[i] = 48 << 10 // eager-sized
		}
		return c
	}
	linear, err := Run(starConfig(ranks, per), func(p *Proc) error {
		return p.Alltoallv(counts(p), AlltoallvLinear)
	})
	if err != nil {
		t.Fatal(err)
	}
	if linear.Drops == 0 {
		t.Error("linear alltoallv at 36 ranks should overflow switch buffers")
	}
	pair, err := Run(starConfig(ranks, per), func(p *Proc) error {
		return p.Alltoallv(counts(p), AlltoallvPairwise)
	})
	if err != nil {
		t.Fatal(err)
	}
	if pair.Drops != 0 {
		t.Errorf("pairwise alltoallv dropped %d times", pair.Drops)
	}
}

// Rendezvous protection: messages above the eager threshold never drop
// even under the linear schedule.
func TestRendezvousImmuneToIncast(t *testing.T) {
	rep, err := Run(starConfig(16, 2), func(p *Proc) error {
		c := make([]int, p.Size())
		for i := range c {
			c[i] = 256 << 10 // rendezvous-sized
		}
		return p.Alltoallv(c, AlltoallvLinear)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drops != 0 {
		t.Errorf("rendezvous messages dropped %d times", rep.Drops)
	}
}

func TestAllgatherGatherComplete(t *testing.T) {
	_, err := Run(starConfig(5, 1), func(p *Proc) error {
		if err := p.Allgather(2000); err != nil {
			return err
		}
		return p.Gather(2, 2000)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTraceCollection(t *testing.T) {
	cfg := starConfig(4, 2)
	cfg.CollectTrace = true
	rep, err := Run(cfg, func(p *Proc) error {
		p.Compute(0.01, "step")
		counts := make([]int, p.Size())
		for i := range counts {
			counts[i] = 1000
		}
		if err := p.Alltoallv(counts, AlltoallvLinear); err != nil {
			return err
		}
		return p.Alltoallv(counts, AlltoallvLinear)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("no trace collected")
	}
	insts := rep.Trace.Collectives("alltoallv")
	if len(insts) != 2 {
		t.Fatalf("alltoallv instances = %d, want 2", len(insts))
	}
	for _, in := range insts {
		if in.Ranks != 4 {
			t.Errorf("instance %s has %d ranks", in.Name, in.Ranks)
		}
	}
	if len(rep.Trace.Comms) == 0 {
		t.Error("no comms recorded")
	}
	found := false
	for _, iv := range rep.Trace.Intervals {
		if iv.Kind == trace.StateCompute && iv.Name == "step" {
			found = true
		}
	}
	if !found {
		t.Error("compute interval missing")
	}
}

func TestSingleRankCollectives(t *testing.T) {
	_, err := Run(starConfig(1, 1), func(p *Proc) error {
		if err := p.Barrier(); err != nil {
			return err
		}
		if err := p.Bcast(0, 100); err != nil {
			return err
		}
		if err := p.BcastPipelined(0, 100, 4); err != nil {
			return err
		}
		if err := p.Allreduce(100); err != nil {
			return err
		}
		return p.Alltoallv([]int{100}, AlltoallvLinear)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntraNodeFasterThanInterNode(t *testing.T) {
	intra, err := Run(starConfig(2, 2), func(p *Proc) error { // same node
		if p.Rank() == 0 {
			return p.Send(1, 1, 60000)
		}
		return p.Recv(0, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := Run(starConfig(2, 1), func(p *Proc) error { // two nodes
		if p.Rank() == 0 {
			return p.Send(1, 1, 60000)
		}
		return p.Recv(0, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if intra.Seconds >= inter.Seconds {
		t.Errorf("intra-node %.6fs not faster than inter-node %.6fs",
			intra.Seconds, inter.Seconds)
	}
}
