package network

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinkTransferTiming(t *testing.T) {
	l := NewLink("l", 100, 0.5, 0, 0) // 100 B/s, 0.5s latency
	done, dropped := l.Transfer(0, 100)
	if dropped {
		t.Error("unexpected drop")
	}
	if done != 1.5 { // 0.5 latency + 1s serialization
		t.Errorf("done = %v, want 1.5", done)
	}
	// Second message queues behind the first.
	done2, _ := l.Transfer(0, 100)
	if done2 != 3.0 {
		t.Errorf("done2 = %v, want 3.0", done2)
	}
}

func TestLinkIdleGap(t *testing.T) {
	l := NewLink("l", 100, 0, 0, 0)
	l.Transfer(0, 100) // busy until 1.0
	done, _ := l.Transfer(5, 100)
	if done != 6.0 {
		t.Errorf("done = %v, want 6.0 (idle gap honoured)", done)
	}
}

func TestLinkBacklogAndDrop(t *testing.T) {
	l := NewLink("l", 100, 0, 150, 1.0) // buffer 150 bytes, 1s penalty
	l.Transfer(0, 100)                  // backlog at t=0 afterwards: 100 bytes
	if b := l.Backlog(0); b != 100 {
		t.Errorf("backlog = %v, want 100", b)
	}
	// Second message at t=0: backlog 100 <= 150, no drop; busy until 2.
	if _, dropped := l.Transfer(0, 100); dropped {
		t.Error("drop below buffer threshold")
	}
	// Third at t=0: backlog 200 > 150: dropped, severity-scaled penalty.
	done, dropped := l.Transfer(0, 100)
	if !dropped {
		t.Error("expected drop above buffer threshold")
	}
	// start 2.0 + 1.0 serialization + penalty*(1+log2(200/150)).
	want := 3.0 + (1 + math.Log2(200.0/150.0))
	if math.Abs(done-want) > 1e-9 {
		t.Errorf("done = %v, want %v", done, want)
	}
	if _, drops := l.Stats(); drops != 1 {
		t.Errorf("drops = %d, want 1", drops)
	}
}

func TestLinkInfiniteBufferNeverDrops(t *testing.T) {
	l := NewLink("l", 100, 0, 0, 1.0)
	for i := 0; i < 50; i++ {
		if _, dropped := l.Transfer(0, 1000); dropped {
			t.Fatal("infinite buffer dropped")
		}
	}
}

func TestLinkReset(t *testing.T) {
	l := NewLink("l", 100, 0, 0, 0)
	l.Transfer(0, 100)
	l.Reset()
	if l.Backlog(0) != 0 {
		t.Error("reset kept backlog")
	}
	if tr, _ := l.Stats(); tr != 0 {
		t.Error("reset kept stats")
	}
}

func TestStarRouting(t *testing.T) {
	n := Star(4)
	res, err := n.Send(0, 0, 3, 125)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hops != 2 {
		t.Errorf("hops = %d, want 2 (up + down)", res.Hops)
	}
	want := 2*GigELatency + 2*125/GigEBandwidth
	if math.Abs(res.Arrival-want) > 1e-12 {
		t.Errorf("arrival = %v, want %v", res.Arrival, want)
	}
	// Loopback is one cheap hop.
	self, err := n.Send(0, 2, 2, 125)
	if err != nil {
		t.Fatal(err)
	}
	if self.Hops != 1 {
		t.Errorf("loopback hops = %d", self.Hops)
	}
	if self.Arrival >= res.Arrival {
		t.Error("loopback should beat the switch path")
	}
}

func TestSendValidation(t *testing.T) {
	n := Star(2)
	if _, err := n.Send(0, -1, 1, 10); err == nil {
		t.Error("negative src accepted")
	}
	if _, err := n.Send(0, 0, 2, 10); err == nil {
		t.Error("out-of-range dst accepted")
	}
	if _, err := n.Send(0, 0, 1, -5); err == nil {
		t.Error("negative size accepted")
	}
}

// Incast: many senders to one destination overflow its down-port buffer
// and suffer the retransmit penalty — the Figure 4 mechanism.
func TestIncastCausesDrops(t *testing.T) {
	const nodes = 18
	n := Star(nodes)
	const msg = 100 << 10
	var last Result
	for src := 1; src < nodes; src++ {
		res, err := n.Send(0, src, 0, msg)
		if err != nil {
			t.Fatal(err)
		}
		last = res
	}
	if n.Drops() == 0 {
		t.Fatal("17-to-1 incast of 100KB messages should overflow a 192KB port buffer")
	}
	// The delayed completion must reflect the retransmit penalties.
	serial := float64((nodes-1)*msg) / GigEBandwidth
	if last.Arrival < serial+RetransmitPenalty {
		t.Errorf("last arrival %.4fs does not include penalties (serial %.4fs)",
			last.Arrival, serial)
	}
}

// One-to-one traffic (the SPECFEM3D pattern) never drops.
func TestPairwiseTrafficClean(t *testing.T) {
	const nodes = 16
	n := Star(nodes)
	for round := 1; round < nodes; round++ {
		for src := 0; src < nodes; src++ {
			dst := (src + round) % nodes
			if _, err := n.Send(float64(round), src, dst, 64<<10); err != nil {
				t.Fatal(err)
			}
		}
	}
	if d := n.Drops(); d != 0 {
		t.Errorf("pairwise traffic dropped %d times", d)
	}
}

func TestTreeCrossLeafPath(t *testing.T) {
	n := Tree(64, 32)
	same, err := n.Send(0, 0, 31, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if same.Hops != 2 {
		t.Errorf("intra-leaf hops = %d, want 2", same.Hops)
	}
	cross, err := n.Send(0, 1, 40, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if cross.Hops != 4 {
		t.Errorf("cross-leaf hops = %d, want 4 (up, leaf-up, root-down, down)", cross.Hops)
	}
	if cross.Arrival <= same.Arrival {
		t.Error("cross-leaf path should be slower")
	}
}

// The leaf uplink is 1:32 oversubscribed: cross-leaf all-to-all traffic
// funnels through it and congests far worse than intra-leaf traffic.
func TestTreeUplinkOversubscription(t *testing.T) {
	n := Tree(64, 32)
	const msg = 64 << 10
	var crossLast float64
	for src := 0; src < 32; src++ {
		res, err := n.Send(0, src, 32+src, msg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Arrival > crossLast {
			crossLast = res.Arrival
		}
	}
	n2 := Tree(64, 32)
	var intraLast float64
	for src := 0; src < 16; src++ {
		res, err := n2.Send(0, src, 16+src, msg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Arrival > intraLast {
			intraLast = res.Arrival
		}
	}
	if crossLast < 8*intraLast {
		t.Errorf("uplink funnel: cross-leaf %.4fs vs intra-leaf %.4fs — not oversubscribed",
			crossLast, intraLast)
	}
}

func TestInfiniteBuffersAblation(t *testing.T) {
	const nodes = 18
	n := Star(nodes)
	n.InfiniteBuffers()
	for src := 1; src < nodes; src++ {
		if _, err := n.Send(0, src, 0, 100<<10); err != nil {
			t.Fatal(err)
		}
	}
	if n.Drops() != 0 {
		t.Error("infinite buffers still dropped")
	}
}

func TestNetworkReset(t *testing.T) {
	n := Star(18)
	for src := 1; src < 18; src++ {
		n.Send(0, src, 0, 100<<10)
	}
	if n.Drops() == 0 {
		t.Fatal("precondition: expected drops")
	}
	n.Reset()
	if n.Drops() != 0 {
		t.Error("reset kept drops")
	}
	res, err := n.Send(0, 1, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := 2*GigELatency + 2*1000/GigEBandwidth
	if math.Abs(res.Arrival-want) > 1e-12 {
		t.Error("reset kept link reservations")
	}
}

// Property: arrival is monotone in injection time and never precedes
// injection + total latency + serialization of the slowest hop.
func TestArrivalLowerBoundProperty(t *testing.T) {
	f := func(seedT uint16, bytesRaw uint16) bool {
		tIn := float64(seedT) / 1000
		bytes := int(bytesRaw)%65536 + 1
		n := Star(4)
		res, err := n.Send(tIn, 1, 2, bytes)
		if err != nil {
			return false
		}
		lower := tIn + 2*GigELatency + float64(bytes)/GigEBandwidth
		return res.Arrival >= lower-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNewLinkClampsBadValues(t *testing.T) {
	l := NewLink("bad", -5, -1, -100, -0.5)
	if l.Bandwidth <= 0 || l.Latency < 0 || l.Buffer < 0 || l.RetransmitPenalty < 0 {
		t.Errorf("bad values not clamped: %+v", l)
	}
	// Must not produce NaN/Inf timings.
	done, _ := l.Transfer(0, 1000)
	if math.IsNaN(done) || math.IsInf(done, 0) {
		t.Errorf("degenerate link produced %v", done)
	}
}

// The send path must be allocation-free: the Star/Tree route closures
// return a reused path buffer (see New's allocation contract), so a
// simulation's per-message cost is pure arithmetic. Guards the
// simmpi hot path's zero-alloc contract from below.
func TestSendPathAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	for _, tc := range []struct {
		name string
		net  *Network
	}{
		{"star", Star(4)},
		{"tree-intra-leaf", Tree(64, 32)},
		{"tree-cross-leaf", Tree(64, 32)},
		{"loopback", Star(4)},
	} {
		src, dst := 1, 2
		switch tc.name {
		case "tree-cross-leaf":
			src, dst = 1, 40
		case "loopback":
			src, dst = 3, 3
		}
		now := 0.0
		allocs := testing.AllocsPerRun(100, func() {
			res, err := tc.net.Send(now, src, dst, 4096)
			if err != nil {
				t.Fatal(err)
			}
			now = res.Arrival
		})
		if allocs != 0 {
			t.Errorf("%s: Send allocates %.1f per message, want 0", tc.name, allocs)
		}
	}
}
