// Package network simulates the Ethernet fabric of the Tibidabo cluster:
// full-duplex links, store-and-forward switches with finite per-port
// buffers, and hierarchical 48-port 1 GbE topologies. The model is
// flow-level: a message reserves each link of its path in sequence, and
// the backlog a link has accumulated when a message arrives stands in
// for switch queue occupancy — when it exceeds the port buffer the
// message suffers a retransmission penalty. That mechanism is the
// paper's diagnosis for BigDFT's delayed all_to_all_v collectives
// (Figure 4): "The Ethernet switches used in Tibidabo was identified as
// the origin of these bad performances."
package network

import (
	"fmt"
	"math"

	"montblanc/internal/topo"
)

// Link is one direction of a cable or backplane port.
type Link struct {
	Name      string
	Bandwidth float64 // bytes/s
	Latency   float64 // seconds per traversal
	Buffer    int     // egress buffer in bytes; 0 = infinite (no drops)
	// RetransmitPenalty is added to a message's completion when it
	// arrives to an overflowing buffer (drop + timeout + resend).
	RetransmitPenalty float64

	busyUntil float64
	transfers uint64
	drops     uint64

	// degs are the link's scheduled degradation windows (fault
	// injection); degraded counts the transfers that started inside one.
	degs     []Degradation
	degraded uint64
}

// Degradation weakens a link over [Start, End) of virtual time:
// bandwidth is divided by BandwidthFactor (>= 1; zero means 1, a
// latency-only fault) and ExtraLatency is added per traversal. The
// window that applies to a message is chosen by its transfer *start*
// time — a pure function of prior traffic, so degraded runs stay
// byte-identical under the sequential and parallel schedulers.
// Degradations only ever slow a link down, which keeps the parallel
// scheduler's lookahead (a lower bound on cross-node latency)
// conservative; Degrade rejects windows that would speed one up.
type Degradation struct {
	Start, End      float64
	BandwidthFactor float64
	ExtraLatency    float64
}

// Validate reports why the degradation is unusable, if it is.
func (d Degradation) Validate() error {
	switch {
	case math.IsNaN(d.Start) || math.IsNaN(d.End) ||
		math.IsInf(d.Start, 0) || math.IsInf(d.End, 0):
		return fmt.Errorf("network: degradation window [%v, %v) is not finite", d.Start, d.End)
	case d.Start < 0:
		return fmt.Errorf("network: degradation start %v is negative", d.Start)
	case d.End <= d.Start:
		return fmt.Errorf("network: degradation window [%v, %v) is empty", d.Start, d.End)
	case math.IsNaN(d.BandwidthFactor) || (d.BandwidthFactor != 0 && d.BandwidthFactor < 1):
		return fmt.Errorf("network: bandwidth factor %v would speed the link up (need >= 1)", d.BandwidthFactor)
	case math.IsInf(d.BandwidthFactor, 1):
		return fmt.Errorf("network: bandwidth factor is infinite")
	case math.IsNaN(d.ExtraLatency) || math.IsInf(d.ExtraLatency, 0) || d.ExtraLatency < 0:
		return fmt.Errorf("network: extra latency %v is not a non-negative finite duration", d.ExtraLatency)
	}
	return nil
}

// Degrade schedules a degradation window on the link. Windows may
// overlap; overlapping effects stack (factors multiply, latencies
// add).
func (l *Link) Degrade(d Degradation) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("%w (link %s)", err, l.Name)
	}
	if d.BandwidthFactor == 0 {
		d.BandwidthFactor = 1
	}
	l.degs = append(l.degs, d)
	return nil
}

// NewLink returns a link with the given characteristics. Non-positive
// bandwidths and negative latencies are clamped to tiny-but-valid
// values so a misconfigured topology degrades instead of dividing by
// zero.
func NewLink(name string, bandwidth, latency float64, buffer int, penalty float64) *Link {
	if bandwidth <= 0 {
		bandwidth = 1
	}
	if latency < 0 {
		latency = 0
	}
	if buffer < 0 {
		buffer = 0
	}
	if penalty < 0 {
		penalty = 0
	}
	return &Link{
		Name:              name,
		Bandwidth:         bandwidth,
		Latency:           latency,
		Buffer:            buffer,
		RetransmitPenalty: penalty,
	}
}

// Backlog returns the queued bytes not yet serialized at time t.
func (l *Link) Backlog(t float64) float64 {
	if l.busyUntil <= t {
		return 0
	}
	return (l.busyUntil - t) * l.Bandwidth
}

// Transfer reserves the link for a message of the given size arriving at
// time t. It returns the time the last byte leaves the link and whether
// the message was delayed by a buffer overrun. The retransmission
// penalty delays the message's own delivery but not the link: other
// traffic flows while the dropped packet waits for its timeout.
func (l *Link) Transfer(t float64, bytes int) (done float64, dropped bool) {
	return l.transfer(t, bytes, false)
}

// TransferFlowControlled is Transfer for receiver-paced (rendezvous)
// messages: they share bandwidth and queue like everyone else, but a
// full buffer never drops them.
func (l *Link) TransferFlowControlled(t float64, bytes int) float64 {
	done, _ := l.transfer(t, bytes, true)
	return done
}

func (l *Link) transfer(t float64, bytes int, flowControlled bool) (done float64, dropped bool) {
	l.transfers++
	severity := 1.0
	if !flowControlled && l.Buffer > 0 {
		if backlog := l.Backlog(t); backlog > float64(l.Buffer) {
			dropped = true
			l.drops++
			// Sustained overload loses several packets in a row and
			// triggers exponential backoff: scale the penalty with the
			// (log of the) overflow factor.
			severity = 1 + math.Log2(backlog/float64(l.Buffer))
		}
	}
	start := math.Max(t, l.busyUntil)
	latency, bandwidth := l.Latency, l.Bandwidth
	if len(l.degs) > 0 {
		hit := false
		for _, d := range l.degs {
			if start >= d.Start && start < d.End {
				latency += d.ExtraLatency
				bandwidth /= d.BandwidthFactor
				hit = true
			}
		}
		if hit {
			l.degraded++
		}
	}
	done = start + latency + float64(bytes)/bandwidth
	l.busyUntil = done
	if dropped {
		done += l.RetransmitPenalty * severity
	}
	return done, dropped
}

// Stats returns the transfer and drop counts.
func (l *Link) Stats() (transfers, drops uint64) { return l.transfers, l.drops }

// Degraded returns how many transfers started inside a degradation
// window.
func (l *Link) Degraded() uint64 { return l.degraded }

// Reset returns the link to its pristine built state: reservations,
// counters and degradation windows are all cleared. Fault injection is
// per run — whoever resets the fabric re-applies its schedule.
func (l *Link) Reset() {
	l.busyUntil = 0
	l.transfers = 0
	l.drops = 0
	l.degs = nil
	l.degraded = 0
}

// Network is a set of nodes with a routing function returning the
// ordered links a message crosses from src to dst.
type Network struct {
	NumNodes int
	route    func(src, dst int) []*Link
	links    []*Link

	interconnect *topo.Object
	lookahead    float64
}

// New creates a network over numNodes nodes. route must return the link
// path for any src != dst pair; links is the full link inventory (for
// stats and reset).
//
// Allocation contract: Send/SendOpts only iterate the returned path and
// never retain it past the call, so route may return a reused buffer
// (the Star and Tree builders do, making the per-message send path
// allocation-free). A Network already serializes no state across
// concurrent Sends — link reservations mutate shared busyUntil fields —
// so buffer reuse adds no new constraint: one simulation drives one
// Network at a time.
func New(numNodes int, links []*Link, route func(src, dst int) []*Link) *Network {
	return &Network{NumNodes: numNodes, route: route, links: links}
}

// SetInterconnect attaches the interconnect topology tree describing
// this network's fabric and derives the conservative lookahead from it
// (topo.Object.MinCrossLatency): the minimum one-way latency any
// message between distinct nodes pays. The Star and Tree builders call
// it; custom networks may either build their own tree or call
// SetLookahead directly. An unreachable bound (fewer than two
// machines) leaves the lookahead at zero, meaning unknown.
func (n *Network) SetInterconnect(root *topo.Object) error {
	if err := root.Validate(); err != nil {
		return err
	}
	n.interconnect = root
	if la := root.MinCrossLatency(); !math.IsInf(la, 1) {
		n.lookahead = la
	}
	return nil
}

// Interconnect returns the fabric topology tree, or nil when the
// network was built without one.
func (n *Network) Interconnect() *topo.Object { return n.interconnect }

// SetLookahead overrides the minimum cross-node latency bound in
// seconds. Only needed for custom route functions without an
// interconnect tree; a bound larger than the true minimum breaks the
// parallel scheduler's determinism guarantee, so derive it from the
// slowest-case route, never guess. A custom network advertising a
// lookahead must also make route(src, src) safe for concurrent calls
// (return immutable per-node paths, as the builders do): the parallel
// scheduler delivers same-node messages from multiple shards at once.
func (n *Network) SetLookahead(seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	n.lookahead = seconds
}

// Lookahead returns the minimum one-way latency between distinct
// nodes in seconds, or zero when unknown. A conservative parallel
// scheduler may commit events closer than this bound apart without
// observing a not-yet-sent message.
func (n *Network) Lookahead() float64 { return n.lookahead }

// Result describes one message delivery.
type Result struct {
	Arrival float64 // when the last byte reaches dst
	Dropped bool    // at least one hop overran a buffer
	Hops    int
}

// SendOptions tunes one message delivery.
type SendOptions struct {
	// FlowControlled marks a rendezvous-protocol message: the receiver
	// paces the sender, so switch buffers cannot overflow, at the cost
	// of an extra handshake round-trip.
	FlowControlled bool
}

// Send delivers an eager message of the given size from src to dst,
// injected at time t, and returns its arrival time. Store-and-forward:
// each link is traversed after the previous one delivered the full
// message.
func (n *Network) Send(t float64, src, dst, bytes int) (Result, error) {
	return n.SendOpts(t, src, dst, bytes, SendOptions{})
}

// SendOpts is Send with explicit protocol options.
func (n *Network) SendOpts(t float64, src, dst, bytes int, o SendOptions) (Result, error) {
	if src < 0 || src >= n.NumNodes || dst < 0 || dst >= n.NumNodes {
		return Result{}, fmt.Errorf("network: rank out of range: %d -> %d", src, dst)
	}
	if bytes < 0 {
		return Result{}, fmt.Errorf("network: negative message size %d", bytes)
	}
	path := n.route(src, dst)
	res := Result{Arrival: t, Hops: len(path)}
	if o.FlowControlled {
		// Rendezvous handshake: request + clear-to-send round trip.
		for _, l := range path {
			res.Arrival += 2 * l.Latency
		}
		for _, l := range path {
			res.Arrival = l.TransferFlowControlled(res.Arrival, bytes)
		}
		return res, nil
	}
	for _, l := range path {
		done, dropped := l.Transfer(res.Arrival, bytes)
		res.Arrival = done
		res.Dropped = res.Dropped || dropped
	}
	return res, nil
}

// DegradeLink schedules a degradation window on the named link. The
// builders name links after their endpoints ("node3->sw", "sw->node3",
// "node3-loop", "leaf0->root", "root->leaf0"); LinkNames lists the
// inventory. Naming a link the topology does not have is an error — a
// fault schedule aimed at a missing edge is a configuration bug, not a
// no-op.
func (n *Network) DegradeLink(name string, d Degradation) error {
	for _, l := range n.links {
		if l.Name == name {
			return l.Degrade(d)
		}
	}
	return fmt.Errorf("network: no link named %q (see LinkNames)", name)
}

// LinkNames returns every link name in inventory order.
func (n *Network) LinkNames() []string {
	names := make([]string, len(n.links))
	for i, l := range n.links {
		names[i] = l.Name
	}
	return names
}

// DegradedTransfers returns the total transfers that started inside a
// degradation window, across all links.
func (n *Network) DegradedTransfers() uint64 {
	var d uint64
	for _, l := range n.links {
		d += l.Degraded()
	}
	return d
}

// Drops returns the total buffer overruns across all links.
func (n *Network) Drops() uint64 {
	var d uint64
	for _, l := range n.links {
		_, dd := l.Stats()
		d += dd
	}
	return d
}

// Reset clears all link state, including any scheduled degradations
// (see Link.Reset): a reset fabric is failure-free until a fault
// schedule is applied again.
func (n *Network) Reset() {
	for _, l := range n.links {
		l.Reset()
	}
}

// GigE characteristics used by the Tibidabo builders.
const (
	GigEBandwidth = 125e6 // bytes/s (1 Gb/s)
	FastBandwidth = 12.5e6
	// GigELatency is the per-hop latency including the slow TCP stack on
	// the Tegra2 (the Tibidabo report measures ~50-100us MPI latency).
	GigELatency = 50e-6
	// SwitchPortBuffer approximates the shared buffer slice one port of
	// a commodity 48-port GbE switch gets.
	SwitchPortBuffer = 256 << 10
	// RetransmitPenalty is the effective cost of a drop: TCP fast
	// retransmit / timeout on a slow ARM host.
	RetransmitPenalty = 15e-3
	// LoopbackBandwidth models intra-node (shared-memory) transfers on
	// the Tegra2's DDR2.
	LoopbackBandwidth = 600e6
	LoopbackLatency   = 2e-6
)

// Star builds a single-switch network: every node connects to one switch
// with an up and a down link. This is a Tibidabo slice of up to one
// 48-port switch (the ≤36-core experiments of Figures 3c and 4).
func Star(nodes int) *Network {
	up := make([]*Link, nodes)
	down := make([]*Link, nodes)
	loop := make([]*Link, nodes)
	var all []*Link
	for i := 0; i < nodes; i++ {
		up[i] = NewLink(fmt.Sprintf("node%d->sw", i), GigEBandwidth, GigELatency, 0, 0)
		down[i] = NewLink(fmt.Sprintf("sw->node%d", i), GigEBandwidth, GigELatency,
			SwitchPortBuffer, RetransmitPenalty)
		loop[i] = NewLink(fmt.Sprintf("node%d-loop", i), LoopbackBandwidth, LoopbackLatency, 0, 0)
		all = append(all, up[i], down[i], loop[i])
	}
	// Cross-node routes share a reused path buffer (valid until the next
	// route call, see New); loopback routes are immutable per-node
	// slices so concurrent same-node deliveries from parallel scheduler
	// shards never touch shared route state.
	path := make([]*Link, 0, 2)
	loopPath := loopPaths(loop)
	n := New(nodes, all, func(src, dst int) []*Link {
		if src == dst {
			return loopPath[src]
		}
		return append(path[:0], up[src], down[dst])
	})
	// Interconnect tree: one switch, every node one GigE hop away.
	// Loopback links are intra-node and do not appear: the lookahead
	// bounds traffic between *distinct* nodes only.
	sw := topo.NewSwitch(0, 0)
	for i := 0; i < nodes; i++ {
		sw.Add(topo.NewFabricMachine(i, GigELatency))
	}
	if err := n.SetInterconnect(topo.NewCluster().Add(sw)); err != nil {
		panic("network: invalid Star interconnect: " + err.Error())
	}
	return n
}

// Tree builds a two-level switch hierarchy: nodes attach to leaf
// switches of leafSize ports; leaves connect to a root switch through
// one uplink pair each (1:leafSize oversubscription, as on Tibidabo
// where 48-port leaf switches interconnect hierarchically).
func Tree(nodes, leafSize int) *Network {
	if leafSize <= 0 {
		leafSize = 32
	}
	nLeaves := (nodes + leafSize - 1) / leafSize
	up := make([]*Link, nodes)
	down := make([]*Link, nodes)
	loop := make([]*Link, nodes)
	leafUp := make([]*Link, nLeaves)
	leafDown := make([]*Link, nLeaves)
	var all []*Link
	for i := 0; i < nodes; i++ {
		up[i] = NewLink(fmt.Sprintf("node%d->leaf", i), GigEBandwidth, GigELatency, 0, 0)
		down[i] = NewLink(fmt.Sprintf("leaf->node%d", i), GigEBandwidth, GigELatency,
			SwitchPortBuffer, RetransmitPenalty)
		loop[i] = NewLink(fmt.Sprintf("node%d-loop", i), LoopbackBandwidth, LoopbackLatency, 0, 0)
		all = append(all, up[i], down[i], loop[i])
	}
	for s := 0; s < nLeaves; s++ {
		leafUp[s] = NewLink(fmt.Sprintf("leaf%d->root", s), GigEBandwidth, GigELatency,
			SwitchPortBuffer, RetransmitPenalty)
		leafDown[s] = NewLink(fmt.Sprintf("root->leaf%d", s), GigEBandwidth, GigELatency,
			SwitchPortBuffer, RetransmitPenalty)
		all = append(all, leafUp[s], leafDown[s])
	}
	leafOf := func(node int) int { return node / leafSize }
	// Cross-node routes share a reused path buffer (see New); loopback
	// routes are immutable per-node slices, safe under concurrent
	// same-node deliveries (as in Star).
	path := make([]*Link, 0, 4)
	loopPath := loopPaths(loop)
	n := New(nodes, all, func(src, dst int) []*Link {
		if src == dst {
			return loopPath[src]
		}
		ls, ld := leafOf(src), leafOf(dst)
		if ls == ld {
			return append(path[:0], up[src], down[dst])
		}
		return append(path[:0], up[src], leafUp[ls], leafDown[ld], down[dst])
	})
	// Interconnect tree mirroring the route structure: leaf switches one
	// GigE uplink from the root, nodes one GigE hop from their leaf.
	root := topo.NewSwitch(0, 0)
	for s := 0; s < nLeaves; s++ {
		leaf := topo.NewSwitch(1+s, GigELatency)
		for i := s * leafSize; i < nodes && i < (s+1)*leafSize; i++ {
			leaf.Add(topo.NewFabricMachine(i, GigELatency))
		}
		root.Add(leaf)
	}
	if err := n.SetInterconnect(topo.NewCluster().Add(root)); err != nil {
		panic("network: invalid Tree interconnect: " + err.Error())
	}
	return n
}

// loopPaths builds one immutable single-link route per node. Returning
// these from route(src, src) instead of the shared scratch buffer is
// what lets the parallel scheduler's shards deliver intra-node messages
// concurrently: each shard then only ever mutates its own nodes' loop
// links, never shared route state.
func loopPaths(loop []*Link) [][]*Link {
	paths := make([][]*Link, len(loop))
	for i, l := range loop {
		paths[i] = []*Link{l}
	}
	return paths
}

// InfiniteBuffers disables buffer overruns on every link — the ablation
// knob for the Figure 3c collapse (DESIGN.md decision 2).
func (n *Network) InfiniteBuffers() {
	for _, l := range n.links {
		l.Buffer = 0
	}
}
