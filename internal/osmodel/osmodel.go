// Package osmodel models the operating-system effects the paper singles
// out in §V.A: the physical-page allocation policy (V.A.1) and the
// scheduler (V.A.2). Its centerpiece is the real-time scheduler model
// reproducing Figure 5: under SCHED_FIFO on the ARM board, measurements
// fall into two modes — a normal one and a ~5x degraded one — and the
// degraded measurements are *consecutive in time*, pointing at "plainly
// wrong OS scheduling decisions during that period".
package osmodel

import (
	"fmt"

	"montblanc/internal/mem"
	"montblanc/internal/xrand"
)

// PagePolicy selects how the OS hands out physical pages.
type PagePolicy int

// Page allocation policies.
const (
	// ContiguousPages models the lucky case: consecutive physical pages,
	// balanced page colours, reproducible performance.
	ContiguousPages PagePolicy = iota
	// RandomPages models the ARM behaviour observed in the paper:
	// nonconsecutive physical pages that may oversubscribe a page colour
	// of the physically-indexed L1.
	RandomPages
)

// String names the policy.
func (p PagePolicy) String() string {
	switch p {
	case ContiguousPages:
		return "contiguous"
	case RandomPages:
		return "random"
	default:
		return fmt.Sprintf("PagePolicy(%d)", int(p))
	}
}

// NewMapper builds a page mapper implementing the policy. The seed
// models the boot/process state: within one "run" the OS reuses the same
// pages (malloc/free returns the same memory), so a single mapper should
// be reused for all measurements of a run; a new run gets a new seed.
func (p PagePolicy) NewMapper(seed uint64) mem.Mapper {
	switch p {
	case RandomPages:
		return mem.NewRandomMapper(seed, 1<<16)
	default:
		return mem.NewContiguousMapper(0)
	}
}

// Scheduler perturbs a sequence of measurements the way an OS scheduling
// policy would. Next returns the slowdown factor (>= 1) applied to the
// next measurement in wall-clock order.
type Scheduler interface {
	Name() string
	Next() float64
}

// FairScheduler models the default time-sharing policy on an otherwise
// idle machine: measurements see only small noise.
type FairScheduler struct {
	Noise float64 // relative sigma of the multiplicative noise
	rng   *xrand.Rand
}

// NewFairScheduler returns a fair scheduler with the given noise level
// (e.g. 0.01 for 1% jitter), seeded deterministically.
func NewFairScheduler(noise float64, seed uint64) *FairScheduler {
	return &FairScheduler{Noise: noise, rng: xrand.New(seed)}
}

// Name implements Scheduler.
func (s *FairScheduler) Name() string { return "fair" }

// Next implements Scheduler.
func (s *FairScheduler) Next() float64 {
	f := 1 + s.Noise*s.rng.NormFloat64()
	if f < 1 {
		// Noise can only slow a measurement down relative to the ideal.
		f = 2 - f
	}
	return f
}

// RTScheduler models SCHED_FIFO on the ARM board. It is a two-state
// Markov chain: in the normal state measurements behave like the fair
// scheduler's; with probability EnterProb per measurement the scheduler
// enters a degraded window where throughput drops by DegradeFactor, and
// it leaves the window with probability ExitProb per measurement. The
// sticky window is what makes all degraded measurements consecutive in
// sequence order (Figure 5b).
type RTScheduler struct {
	EnterProb     float64
	ExitProb      float64
	DegradeFactor float64
	Noise         float64

	rng      *xrand.Rand
	degraded bool
}

// NewRTScheduler returns the Figure 5 real-time scheduler model with the
// calibrated defaults: rare entry, sticky stay, ~5x degradation.
func NewRTScheduler(seed uint64) *RTScheduler {
	return &RTScheduler{
		EnterProb:     0.0008,
		ExitProb:      0.004,
		DegradeFactor: 5.0,
		Noise:         0.01,
		rng:           xrand.New(seed),
	}
}

// Name implements Scheduler.
func (s *RTScheduler) Name() string { return "rt-fifo" }

// Degraded reports whether the scheduler is currently in the degraded
// window (after the last Next call).
func (s *RTScheduler) Degraded() bool { return s.degraded }

// Next implements Scheduler.
func (s *RTScheduler) Next() float64 {
	if s.degraded {
		if s.rng.Float64() < s.ExitProb {
			s.degraded = false
		}
	} else if s.rng.Float64() < s.EnterProb {
		s.degraded = true
	}
	f := 1 + s.Noise*s.rng.NormFloat64()
	if f < 1 {
		f = 2 - f
	}
	if s.degraded {
		f *= s.DegradeFactor
	}
	return f
}

// Environment bundles the OS-level knobs of one experimental setup, the
// "environment parameters" of §V.A whose influence the paper measures.
type Environment struct {
	Pages     PagePolicy
	Scheduler Scheduler
	Seed      uint64
}

// DefaultEnvironment is an idle machine with a fair scheduler and
// contiguous pages: the well-behaved x86 baseline.
func DefaultEnvironment(seed uint64) Environment {
	return Environment{
		Pages:     ContiguousPages,
		Scheduler: NewFairScheduler(0.01, seed),
		Seed:      seed,
	}
}

// ARMRealTimeEnvironment is the §V.A.2 setup: real-time priority on the
// Snowball.
func ARMRealTimeEnvironment(seed uint64) Environment {
	return Environment{
		Pages:     ContiguousPages,
		Scheduler: NewRTScheduler(seed),
		Seed:      seed,
	}
}

// ARMRandomPagesEnvironment is the §V.A.1 setup: fair scheduling but
// unlucky physical page placement.
func ARMRandomPagesEnvironment(seed uint64) Environment {
	return Environment{
		Pages:     RandomPages,
		Scheduler: NewFairScheduler(0.01, seed),
		Seed:      seed,
	}
}
