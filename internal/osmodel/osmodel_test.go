package osmodel

import (
	"testing"

	"montblanc/internal/mem"
	"montblanc/internal/stats"
)

func TestPagePolicyMappers(t *testing.T) {
	if _, ok := ContiguousPages.NewMapper(1).(*mem.ContiguousMapper); !ok {
		t.Error("contiguous policy returned wrong mapper type")
	}
	if _, ok := RandomPages.NewMapper(1).(*mem.RandomMapper); !ok {
		t.Error("random policy returned wrong mapper type")
	}
	if ContiguousPages.String() != "contiguous" || RandomPages.String() != "random" {
		t.Error("policy names wrong")
	}
}

func TestFairSchedulerStaysNearOne(t *testing.T) {
	s := NewFairScheduler(0.01, 42)
	for i := 0; i < 5000; i++ {
		f := s.Next()
		if f < 1 || f > 1.2 {
			t.Fatalf("fair factor %f out of expected band", f)
		}
	}
}

func TestFairSchedulerDeterministic(t *testing.T) {
	a, b := NewFairScheduler(0.02, 7), NewFairScheduler(0.02, 7)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

// The heart of Figure 5: over a long measurement sequence the RT
// scheduler must produce (a) two well-separated modes ~5x apart and
// (b) degraded measurements that are consecutive, i.e. few long streaks
// rather than scattered noise.
func TestRTSchedulerBimodalAndSticky(t *testing.T) {
	const n = 2100 // 42 reps x 50 sizes, as in Figure 5
	foundEpisode := false
	for seed := uint64(0); seed < 10; seed++ {
		s := NewRTScheduler(seed)
		factors := make([]float64, n)
		marks := make([]bool, n)
		for i := range factors {
			factors[i] = s.Next()
			marks[i] = s.Degraded()
		}
		st := stats.FindStreaks(marks)
		if st.Total == 0 {
			continue // this seed never degraded; acceptable for some runs
		}
		foundEpisode = true
		// Degraded measurements must be clustered: few long episodes
		// rather than scattered single points.
		if st.Count > 5 {
			t.Errorf("seed %d: %d separate degraded episodes, want few", seed, st.Count)
		}
		if mean := float64(st.Total) / float64(st.Count); mean < 40 {
			t.Errorf("seed %d: mean episode length %.1f of %d degraded points — not sticky",
				seed, mean, st.Total)
		}
		// Factor separation ~5x between modes.
		m := stats.TwoModes(factors)
		if m.Bimodal && (m.Ratio < 3.5 || m.Ratio > 6.5) {
			t.Errorf("seed %d: mode ratio %.2f, want ~5", seed, m.Ratio)
		}
	}
	if !foundEpisode {
		t.Fatal("no seed in 0..9 produced a degraded episode; EnterProb too low")
	}
}

func TestRTSchedulerDegradedFactor(t *testing.T) {
	s := NewRTScheduler(1)
	s.EnterProb = 1 // force immediate degradation
	f := s.Next()
	if !s.Degraded() {
		t.Fatal("scheduler did not degrade with EnterProb=1")
	}
	if f < 4.5 || f > 5.6 {
		t.Errorf("degraded factor = %f, want ~5", f)
	}
}

func TestRTSchedulerRecovers(t *testing.T) {
	s := NewRTScheduler(1)
	s.EnterProb = 1
	s.Next()
	if !s.Degraded() {
		t.Fatal("did not degrade")
	}
	s.EnterProb = 0
	s.ExitProb = 1
	s.Next() // leaves the window on this step
	if s.Degraded() {
		t.Error("scheduler stuck in degraded state with ExitProb=1")
	}
}

func TestEnvironments(t *testing.T) {
	d := DefaultEnvironment(1)
	if d.Pages != ContiguousPages || d.Scheduler.Name() != "fair" {
		t.Error("default environment wrong")
	}
	rt := ARMRealTimeEnvironment(1)
	if rt.Scheduler.Name() != "rt-fifo" {
		t.Error("RT environment wrong")
	}
	rp := ARMRandomPagesEnvironment(1)
	if rp.Pages != RandomPages {
		t.Error("random-pages environment wrong")
	}
}

// All scheduler factors are >= 1: the model can only slow a measurement
// down relative to the undisturbed ideal, never speed it up.
func TestFactorsNeverBelowOne(t *testing.T) {
	scheds := []Scheduler{
		NewFairScheduler(0.05, 3),
		NewRTScheduler(3),
	}
	for _, s := range scheds {
		for i := 0; i < 3000; i++ {
			if f := s.Next(); f < 1 {
				t.Fatalf("%s produced factor %f < 1", s.Name(), f)
			}
		}
	}
}
