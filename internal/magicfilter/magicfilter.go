// Package magicfilter implements BigDFT's core computational kernel —
// the "magic filter", a 16-tap convolution applied along each dimension
// of a 3-D array to compute the electronic potential — together with the
// unrolled-variant performance model behind the paper's auto-tuning
// study (§V.B, Figure 7).
//
// Two layers live here:
//
//   - A real, tested convolution kernel (Apply1D/Apply3D) operating on
//     float64 data with periodic boundaries, decomposed exactly as the
//     paper describes: "three successive applications of a basic
//     operation, which consists of nested loops".
//
//   - A variant model (MeasureVariant/SweepUnroll) that predicts cycles
//     and cache accesses for unroll degrees 1..12 on a given platform,
//     combining the core issue model with genuine cache simulation of
//     the kernel's memory traffic. It reproduces Figure 7's findings:
//     convex cycle curves, cache accesses that explode once the unrolled
//     window spills the register file, and a much narrower sweet spot on
//     the in-order Tegra2 than on Nehalem.
package magicfilter

import (
	"fmt"
	"math"

	"montblanc/internal/cache"
	"montblanc/internal/papi"
	"montblanc/internal/platform"
)

// Taps is the filter support: BigDFT's magic filter spans [-7, 8].
const Taps = 16

// lowOff is the offset of the first tap relative to the output index.
const lowOff = -7

// Coefficients returns the 16 filter taps. The values are a normalized
// windowed-sinc lowpass with the same support and symmetry class as
// BigDFT's Daubechies magic filter; the performance study depends only
// on the 16-tap convolution structure, not the exact weights.
func Coefficients() [Taps]float64 {
	var w [Taps]float64
	sum := 0.0
	for i := 0; i < Taps; i++ {
		x := float64(i+lowOff) + 0.5 // sample points straddle the output
		sinc := 1.0
		if x != 0 {
			sinc = math.Sin(math.Pi*x/2) / (math.Pi * x / 2)
		}
		// Blackman window over the support.
		t := float64(i) / float64(Taps-1)
		win := 0.42 - 0.5*math.Cos(2*math.Pi*t) + 0.08*math.Cos(4*math.Pi*t)
		w[i] = sinc * win
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum // unit DC gain: constants map to constants
	}
	return w
}

// Apply1D convolves src with the magic filter into dst using periodic
// boundary conditions. len(dst) must equal len(src).
func Apply1D(dst, src []float64) error {
	n := len(src)
	if len(dst) != n {
		return fmt.Errorf("magicfilter: dst length %d != src length %d", len(dst), n)
	}
	if n == 0 {
		return nil
	}
	w := Coefficients()
	for i := 0; i < n; i++ {
		acc := 0.0
		for j := 0; j < Taps; j++ {
			k := i + j + lowOff
			// Periodic wrap; n may be smaller than the support.
			k %= n
			if k < 0 {
				k += n
			}
			acc += w[j] * src[k]
		}
		dst[i] = acc
	}
	return nil
}

// Apply1DUnrolled is Apply1D with a manually unrolled output loop, the
// transformation the paper's auto-tuning tool generates with degrees 1
// to 12. Results are identical to Apply1D; only the loop structure
// differs. It exists so the functional kernel matches what the variant
// model measures.
func Apply1DUnrolled(dst, src []float64, unroll int) error {
	n := len(src)
	if len(dst) != n {
		return fmt.Errorf("magicfilter: dst length %d != src length %d", len(dst), n)
	}
	if unroll < 1 {
		return fmt.Errorf("magicfilter: unroll %d < 1", unroll)
	}
	w := Coefficients()
	i := 0
	for ; i+unroll <= n; i += unroll {
		// One unrolled iteration produces `unroll` outputs sharing most
		// of their input window.
		for u := 0; u < unroll; u++ {
			acc := 0.0
			for j := 0; j < Taps; j++ {
				k := i + u + j + lowOff
				k %= n
				if k < 0 {
					k += n
				}
				acc += w[j] * src[k]
			}
			dst[i+u] = acc
		}
	}
	for ; i < n; i++ { // remainder loop
		acc := 0.0
		for j := 0; j < Taps; j++ {
			k := i + j + lowOff
			k %= n
			if k < 0 {
				k += n
			}
			acc += w[j] * src[k]
		}
		dst[i] = acc
	}
	return nil
}

// Apply3D applies the magic filter along all three dimensions of a
// n1 x n2 x n3 array stored x-fastest, using the transposition scheme
// BigDFT uses: convolve along the fastest axis, then rotate the array so
// each axis takes a turn being fastest. dst and src must both have
// n1*n2*n3 elements; src is preserved.
func Apply3D(dst, src []float64, n1, n2, n3 int) error {
	total := n1 * n2 * n3
	if len(src) != total || len(dst) != total {
		return fmt.Errorf("magicfilter: need %d elements, have src=%d dst=%d",
			total, len(src), len(dst))
	}
	if total == 0 {
		return nil
	}
	a := append([]float64(nil), src...)
	b := make([]float64, total)
	line := make([]float64, 0, total)
	dims := [3]int{n1, n2, n3}
	for pass := 0; pass < 3; pass++ {
		nFast := dims[0]
		nRest := total / nFast
		for r := 0; r < nRest; r++ {
			row := a[r*nFast : (r+1)*nFast]
			line = line[:nFast]
			if err := Apply1D(line, row); err != nil {
				return err
			}
			// Rotate: output element (i, r) goes to position r + i*nRest,
			// making the next dimension fastest.
			for i := 0; i < nFast; i++ {
				b[r+i*nRest] = line[i]
			}
		}
		a, b = b, a
		dims[0], dims[1], dims[2] = dims[1], dims[2], dims[0]
	}
	copy(dst, a)
	return nil
}

// FlopsPerPoint is the floating-point work per output point of one 1-D
// pass: Taps multiply-accumulate pairs.
func FlopsPerPoint() float64 { return 2 * Taps }

// Flops3D returns the total flops of a full 3-D application.
func Flops3D(n1, n2, n3 int) float64 {
	return 3 * float64(n1*n2*n3) * FlopsPerPoint()
}

// VariantResult is one point of the Figure 7 sweep.
type VariantResult struct {
	Platform       string
	Unroll         int
	Points         int     // outputs produced
	Cycles         float64 // total cycles
	CyclesPerPoint float64
	CacheAccesses  uint64 // total data-cache accesses (PAPI_L1_DCA + L2 + L3)
	AccessesPerPt  float64
	Counters       papi.Counters
}

// windowOverheadRegs is the bookkeeping register pressure of the kernel
// loop (pointers, index, bound, filter base) on top of the accumulators
// and the rolling input window.
const windowOverheadRegs = 10

// MeasureVariant models one unrolled variant of the 1-D magic filter
// over n points on platform p, returning predicted cycles and measured
// (simulated) cache accesses. The accounting:
//
//   - FP: Taps MACs per point. Issue cost derives from the core's DP
//     throughput; in-order cores additionally expose the MAC dependency
//     latency, divided across the `unroll` independent accumulators.
//   - Memory: 15+unroll distinct input loads and `unroll` stores per
//     iteration (consecutive outputs share their window), simulated
//     against the platform's cache hierarchy.
//   - Spills: live values beyond the register file spill to the stack;
//     the cascade grows quadratically with the excess, each spill a
//     store+reload pair through the cache simulator.
func MeasureVariant(p *platform.Platform, n, unroll int) (VariantResult, error) {
	if unroll < 1 || unroll > 64 {
		return VariantResult{}, fmt.Errorf("magicfilter: unroll %d out of range", unroll)
	}
	if n < Taps {
		return VariantResult{}, fmt.Errorf("magicfilter: n %d below filter support", n)
	}
	h, err := p.NewHierarchy(nil)
	if err != nil {
		return VariantResult{}, err
	}
	core := p.CPU

	// --- analytic issue model (cycles that don't depend on cache state)
	macIssue := 2 / core.FlopsPerCycleDP // cycles per MAC at peak
	fpPerPoint := float64(Taps) * macIssue
	if !core.OutOfOrder {
		// Dependency latency of the accumulation chain, interleaved
		// across `unroll` independent accumulators.
		macLatency := macIssue * 4
		perMac := macLatency / float64(unroll)
		if perMac > macIssue {
			fpPerPoint = float64(Taps) * perMac
		}
	}

	loadsPerIter := Taps - 1 + unroll // shared sliding window
	storesPerIter := unroll

	// Register pressure: accumulators + window + bookkeeping.
	live := unroll + windowOverheadRegs
	excess := live - core.Regs[1] // 64-bit values
	spillTouches := 0
	if excess > 0 {
		// Each spilled value displaces another: quadratic cascade.
		spillTouches = int(math.Round(1.8 * float64(excess) * float64(excess)))
	}

	issuePerIter := float64(loadsPerIter)*core.LoadIssue[1] +
		float64(storesPerIter)*core.LoadIssue[1] +
		core.LoopOverhead +
		float64(spillTouches)*core.SpillCost*core.SpillPipelineFactor

	// --- simulated memory traffic (stalls + counters). The sliding
	// input window and the output stores are ascending strided runs, so
	// they drive the batched engine (cache.Hierarchy.AccessRun); the
	// window's periodic wrap at the array edges splits a run into at
	// most three contiguous segments, accessed in the same order the
	// scalar loop would. Spill traffic alternates store/reload on a hot
	// stack frame and stays on the scalar path.
	const elem = 8 // float64
	srcBase := uint64(0)
	dstBase := uint64(n*elem + 4096) // separate pages
	stackBase := uint64(2*n*elem + 1<<20)

	var traffic cache.RunResult
	iters := n / unroll
	for it := 0; it < iters; it++ {
		i := it * unroll
		// Loads: window indices i+lowOff .. i+lowOff+loadsPerIter-1,
		// wrapped into [0, n). Emit the wrapped-low, interior and
		// wrapped-high segments in index order (== scalar access order).
		lo := i + lowOff
		if lo < 0 {
			traffic.Add(h.AccessRun(srcBase+uint64((lo+n)*elem), elem, -lo, false))
			lo = 0
		}
		hi := i + lowOff + loadsPerIter // one past the last window index
		if over := hi - n; over > 0 {
			traffic.Add(h.AccessRun(srcBase+uint64(lo*elem), elem, n-lo, false))
			traffic.Add(h.AccessRun(srcBase, elem, over, false))
		} else {
			traffic.Add(h.AccessRun(srcBase+uint64(lo*elem), elem, hi-lo, false))
		}
		traffic.Add(h.AccessRun(dstBase+uint64(i*elem), elem, unroll, true))
		for s := 0; s < spillTouches; s++ {
			// Store + reload on a small hot stack frame: alternating
			// write/read, so each touch is its own single-access run.
			addr := stackBase + uint64((s%16)*elem)
			traffic.Add(h.AccessRun(addr, 0, 1, s%2 == 0))
		}
	}
	points := iters * unroll

	totalCycles := float64(points)*fpPerPoint +
		float64(iters)*issuePerIter +
		core.StallCyclesTotal(traffic.Extra)

	counters := papi.FromHierarchy(h).
		Add(papi.TOT_CYC, uint64(math.Round(totalCycles))).
		Add(papi.FP_OPS, uint64(float64(points)*FlopsPerPoint()))

	res := VariantResult{
		Platform:       p.Name,
		Unroll:         unroll,
		Points:         points,
		Cycles:         totalCycles,
		CyclesPerPoint: totalCycles / float64(points),
		CacheAccesses:  counters.CacheAccesses(),
		Counters:       counters,
	}
	res.AccessesPerPt = float64(res.CacheAccesses) / float64(points)
	return res, nil
}

// SweepUnroll measures unroll degrees 1..maxUnroll (Figure 7 uses 12)
// over n points on platform p.
func SweepUnroll(p *platform.Platform, n, maxUnroll int) ([]VariantResult, error) {
	out := make([]VariantResult, 0, maxUnroll)
	for u := 1; u <= maxUnroll; u++ {
		r, err := MeasureVariant(p, n, u)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// BestUnroll returns the unroll degree with the fewest cycles per point.
func BestUnroll(results []VariantResult) int {
	best, bestCyc := 0, math.Inf(1)
	for _, r := range results {
		if r.CyclesPerPoint < bestCyc {
			best, bestCyc = r.Unroll, r.CyclesPerPoint
		}
	}
	return best
}

// SweetSpot returns the contiguous range of unroll degrees around the
// optimum whose cycles stay within tolerance (e.g. 0.15 for 15%) of the
// minimum — the paper's "[4:7] on Tegra2 vs [4:12] on Nehalem".
func SweetSpot(results []VariantResult, tolerance float64) (lo, hi int) {
	if len(results) == 0 {
		return 0, 0
	}
	minCyc := math.Inf(1)
	bestIdx := 0
	for i, r := range results {
		if r.CyclesPerPoint < minCyc {
			minCyc = r.CyclesPerPoint
			bestIdx = i
		}
	}
	limit := minCyc * (1 + tolerance)
	lo, hi = results[bestIdx].Unroll, results[bestIdx].Unroll
	for i := bestIdx - 1; i >= 0 && results[i].CyclesPerPoint <= limit; i-- {
		lo = results[i].Unroll
	}
	for i := bestIdx + 1; i < len(results) && results[i].CyclesPerPoint <= limit; i++ {
		hi = results[i].Unroll
	}
	return lo, hi
}
