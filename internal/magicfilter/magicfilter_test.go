package magicfilter

import (
	"math"
	"testing"
	"testing/quick"

	"montblanc/internal/platform"
	"montblanc/internal/xrand"
)

func TestCoefficientsUnitDCGain(t *testing.T) {
	w := Coefficients()
	sum := 0.0
	for _, c := range w {
		sum += c
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("tap sum = %v, want 1", sum)
	}
}

func TestApply1DPreservesConstants(t *testing.T) {
	src := make([]float64, 64)
	for i := range src {
		src[i] = 3.5
	}
	dst := make([]float64, 64)
	if err := Apply1D(dst, src); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		if math.Abs(v-3.5) > 1e-9 {
			t.Fatalf("dst[%d] = %v, want 3.5 (unit DC gain)", i, v)
		}
	}
}

func TestApply1DLengthMismatch(t *testing.T) {
	if err := Apply1D(make([]float64, 3), make([]float64, 4)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestApply1DEmpty(t *testing.T) {
	if err := Apply1D(nil, nil); err != nil {
		t.Errorf("empty input should be fine: %v", err)
	}
}

// Linearity: filter(a*x + b*y) == a*filter(x) + b*filter(y).
func TestApply1DLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 16 + rng.Intn(100)
		x := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
			y[i] = rng.Float64()*2 - 1
			z[i] = 2*x[i] + 3*y[i]
		}
		fx, fy, fz := make([]float64, n), make([]float64, n), make([]float64, n)
		if Apply1D(fx, x) != nil || Apply1D(fy, y) != nil || Apply1D(fz, z) != nil {
			return false
		}
		for i := range fz {
			if math.Abs(fz[i]-(2*fx[i]+3*fy[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Shift invariance under periodic boundaries: filtering a rotated signal
// equals rotating the filtered signal.
func TestApply1DShiftInvarianceProperty(t *testing.T) {
	f := func(seed uint64, shiftRaw uint8) bool {
		rng := xrand.New(seed)
		n := 32 + rng.Intn(64)
		shift := int(shiftRaw) % n
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
		}
		rot := make([]float64, n)
		for i := range x {
			rot[i] = x[(i+shift)%n]
		}
		fx, frot := make([]float64, n), make([]float64, n)
		if Apply1D(fx, x) != nil || Apply1D(frot, rot) != nil {
			return false
		}
		for i := range fx {
			if math.Abs(frot[i]-fx[(i+shift)%n]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Every unroll degree computes exactly the same result as the reference.
func TestUnrolledVariantsMatchReference(t *testing.T) {
	rng := xrand.New(7)
	n := 97 // odd length exercises the remainder loop
	src := make([]float64, n)
	for i := range src {
		src[i] = rng.Float64()*10 - 5
	}
	ref := make([]float64, n)
	if err := Apply1D(ref, src); err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 12; u++ {
		got := make([]float64, n)
		if err := Apply1DUnrolled(got, src, u); err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if math.Abs(got[i]-ref[i]) > 1e-12 {
				t.Fatalf("unroll=%d: dst[%d] = %v, want %v", u, i, got[i], ref[i])
			}
		}
	}
	if err := Apply1DUnrolled(make([]float64, n), src, 0); err == nil {
		t.Error("unroll 0 accepted")
	}
}

func TestApply3DPreservesConstants(t *testing.T) {
	const n1, n2, n3 = 8, 6, 10
	src := make([]float64, n1*n2*n3)
	for i := range src {
		src[i] = -1.25
	}
	dst := make([]float64, len(src))
	if err := Apply3D(dst, src, n1, n2, n3); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		if math.Abs(v+1.25) > 1e-9 {
			t.Fatalf("dst[%d] = %v", i, v)
		}
	}
}

func TestApply3DDimensionMismatch(t *testing.T) {
	if err := Apply3D(make([]float64, 10), make([]float64, 10), 2, 2, 2); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

// Apply3D must not mutate its input.
func TestApply3DPreservesSource(t *testing.T) {
	rng := xrand.New(3)
	src := make([]float64, 4*4*4)
	for i := range src {
		src[i] = rng.Float64()
	}
	orig := append([]float64(nil), src...)
	dst := make([]float64, len(src))
	if err := Apply3D(dst, src, 4, 4, 4); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if src[i] != orig[i] {
			t.Fatal("Apply3D mutated src")
		}
	}
}

func TestFlops3D(t *testing.T) {
	if f := Flops3D(10, 10, 10); f != 3*1000*32 {
		t.Errorf("Flops3D = %v", f)
	}
}

const sweepN = 4096

// Figure 7's headline: the sweet spot is much narrower on Tegra2
// ([4:7]) than on Nehalem ([4:12]).
func TestFigure7SweetSpots(t *testing.T) {
	neh, err := SweepUnroll(platform.XeonX5550(), sweepN, 12)
	if err != nil {
		t.Fatal(err)
	}
	teg, err := SweepUnroll(platform.Tegra2Node(), sweepN, 12)
	if err != nil {
		t.Fatal(err)
	}
	nLo, nHi := SweetSpot(neh, 0.15)
	tLo, tHi := SweetSpot(teg, 0.15)
	if nHi != 12 {
		t.Errorf("Nehalem sweet spot [%d:%d], want upper edge 12", nLo, nHi)
	}
	if tHi < 6 || tHi > 8 {
		t.Errorf("Tegra2 sweet spot [%d:%d], want upper edge ~7", tLo, tHi)
	}
	if nWidth, tWidth := nHi-nLo, tHi-tLo; tWidth >= nWidth {
		t.Errorf("Tegra2 sweet spot (%d wide) not narrower than Nehalem's (%d wide)",
			tWidth+1, nWidth+1)
	}
	if lo, _ := SweetSpot(neh, 0.15); lo < 3 {
		t.Errorf("Nehalem sweet spot starts at %d, want >= 3", lo)
	}
}

// "on Tegra2, the total number of cycles significantly grows when
// unrolling too much (unroll=12)".
func TestFigure7Tegra2CyclesBlowUp(t *testing.T) {
	teg, err := SweepUnroll(platform.Tegra2Node(), sweepN, 12)
	if err != nil {
		t.Fatal(err)
	}
	min := math.Inf(1)
	for _, r := range teg {
		if r.CyclesPerPoint < min {
			min = r.CyclesPerPoint
		}
	}
	last := teg[len(teg)-1]
	if last.CyclesPerPoint < 1.2*min {
		t.Errorf("Tegra2 unroll=12 cycles %.1f not significantly above min %.1f",
			last.CyclesPerPoint, min)
	}
}

// "the number of cache accesses ... start growing very quickly
// (starting at unroll=4)" on Tegra2; on Nehalem the staircase appears
// only around unroll=9.
func TestFigure7CacheAccessGrowth(t *testing.T) {
	teg, err := SweepUnroll(platform.Tegra2Node(), sweepN, 12)
	if err != nil {
		t.Fatal(err)
	}
	accT := func(u int) float64 { return teg[u-1].AccessesPerPt }
	if accT(8) <= accT(4) {
		t.Error("Tegra2 accesses should grow past unroll=4")
	}
	if accT(12) <= accT(8) {
		t.Error("Tegra2 accesses should keep growing to unroll=12")
	}

	neh, err := SweepUnroll(platform.XeonX5550(), sweepN, 12)
	if err != nil {
		t.Fatal(err)
	}
	accN := func(u int) float64 { return neh[u-1].AccessesPerPt }
	// Before the staircase the curve still decreases...
	if accN(8) >= accN(4) {
		t.Error("Nehalem accesses should still decrease at unroll=8")
	}
	// ...and it turns upward only late.
	if accN(12) <= accN(9) {
		t.Error("Nehalem staircase should appear past unroll=9")
	}
	// The Tegra2 inflection is earlier than Nehalem's.
	tegMinAt, nehMinAt := 0, 0
	tegMin, nehMin := math.Inf(1), math.Inf(1)
	for u := 1; u <= 12; u++ {
		if accT(u) < tegMin {
			tegMin, tegMinAt = accT(u), u
		}
		if accN(u) < nehMin {
			nehMin, nehMinAt = accN(u), u
		}
	}
	if tegMinAt >= nehMinAt {
		t.Errorf("Tegra2 access minimum at unroll=%d should precede Nehalem's at %d",
			tegMinAt, nehMinAt)
	}
}

// "The shapes of the curves are somehow similar but differ drastically
// in scale."
func TestFigure7ScaleGap(t *testing.T) {
	neh, err := MeasureVariant(platform.XeonX5550(), sweepN, 4)
	if err != nil {
		t.Fatal(err)
	}
	teg, err := MeasureVariant(platform.Tegra2Node(), sweepN, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gap := teg.CyclesPerPoint / neh.CyclesPerPoint; gap < 3 {
		t.Errorf("Tegra2/Nehalem cycle gap = %.1fx, want drastic (>3x)", gap)
	}
}

// Both cycle curves are roughly convex: they fall to a single minimum
// and never dip again afterwards.
func TestFigure7Convexity(t *testing.T) {
	for _, p := range []*platform.Platform{platform.XeonX5550(), platform.Tegra2Node()} {
		rs, err := SweepUnroll(p, sweepN, 12)
		if err != nil {
			t.Fatal(err)
		}
		best := BestUnroll(rs)
		for i := 1; i < len(rs); i++ {
			u := rs[i].Unroll
			if u <= best && rs[i].CyclesPerPoint > rs[i-1].CyclesPerPoint*1.001 {
				t.Errorf("%s: cycles rose before the minimum at unroll=%d", p.Name, u)
			}
			if u > best && rs[i].CyclesPerPoint < rs[i-1].CyclesPerPoint*0.999 {
				t.Errorf("%s: cycles dipped after the minimum at unroll=%d", p.Name, u)
			}
		}
	}
}

func TestMeasureVariantErrors(t *testing.T) {
	p := platform.XeonX5550()
	if _, err := MeasureVariant(p, sweepN, 0); err == nil {
		t.Error("unroll 0 accepted")
	}
	if _, err := MeasureVariant(p, sweepN, 65); err == nil {
		t.Error("unroll 65 accepted")
	}
	if _, err := MeasureVariant(p, 8, 1); err == nil {
		t.Error("n below filter support accepted")
	}
}

func TestMeasureVariantDeterminism(t *testing.T) {
	p := platform.Tegra2Node()
	a, err := MeasureVariant(p, sweepN, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureVariant(p, sweepN, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.CacheAccesses != b.CacheAccesses {
		t.Error("variant measurement not deterministic")
	}
}

func TestSweetSpotEmpty(t *testing.T) {
	lo, hi := SweetSpot(nil, 0.15)
	if lo != 0 || hi != 0 {
		t.Error("empty sweep should give [0:0]")
	}
}
