// Package membench implements the memory-intensive kernel of §V.A,
// modelled after Tikir et al.'s benchmark (the paper's [14]): it loops
// over an array of fixed size with a fixed stride and reports the
// effective memory bandwidth. The array size probes temporal locality
// (cache capacity), the stride spatial locality (line utilization), and
// the element width / unroll degree the instruction-level effects of
// Figure 6.
package membench

import (
	"fmt"
	"slices"

	"montblanc/internal/cache"
	"montblanc/internal/cpu"
	"montblanc/internal/mem"
	"montblanc/internal/osmodel"
	"montblanc/internal/papi"
	"montblanc/internal/platform"
	"montblanc/internal/xrand"
)

// Config parameterizes one bandwidth measurement.
type Config struct {
	ArrayBytes    int       // working-set size
	StrideElems   int       // stride in elements (default 1)
	Width         cpu.Width // element width (default 32-bit)
	Unroll        int       // manual unroll degree (default 1)
	WarmPasses    int       // passes before measurement (default 2)
	MeasurePasses int       // measured passes (default 2)
}

func (c Config) withDefaults() Config {
	if c.StrideElems <= 0 {
		c.StrideElems = 1
	}
	if c.Width == 0 {
		c.Width = cpu.W32
	}
	if c.Unroll <= 0 {
		c.Unroll = 1
	}
	if c.WarmPasses <= 0 {
		c.WarmPasses = 2
	}
	if c.MeasurePasses <= 0 {
		c.MeasurePasses = 2
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.ArrayBytes < c.Width.Bytes() {
		return fmt.Errorf("membench: array of %d bytes smaller than one element", c.ArrayBytes)
	}
	return nil
}

// Result is one bandwidth measurement.
type Result struct {
	Config    Config
	Cycles    float64
	Accesses  uint64
	Seconds   float64
	Bandwidth float64 // effective bytes/s = accesses * elemBytes / time
	Counters  papi.Counters
}

// Runner performs measurements against one platform with one page
// mapping, modelling a single process whose malloc/free keeps returning
// the same physical pages (§V.A.1). Measurements run on the batched
// cache engine (cache.Hierarchy.AccessRun) with periodic-pass
// memoization; RunScalar retains the element-at-a-time reference path,
// and the two are pinned exactly equivalent by the property suite in
// equivalence_test.go. See internal/cache/CACHE.md.
type Runner struct {
	plat *platform.Platform
	hier *cache.Hierarchy

	// Memoization scratch, reused across passes and Runs so the steady
	// state allocates nothing: two canonical-state snapshots for
	// fixed-point detection and three counter snapshots for delta
	// capture and replay.
	statePrev, stateCur             []uint64
	statsPre, statsPost, statsDelta cache.HierarchyStats
}

// NewRunner creates a Runner for platform p with page mapper m (nil for
// identity mapping).
func NewRunner(p *platform.Platform, m mem.Mapper) (*Runner, error) {
	h, err := p.NewHierarchy(m)
	if err != nil {
		return nil, err
	}
	return &Runner{plat: p, hier: h}, nil
}

// Hierarchy exposes the Runner's cache hierarchy for tests and
// diagnostics.
func (r *Runner) Hierarchy() *cache.Hierarchy { return r.hier }

// Run measures one configuration and returns the result. It drives the
// batched engine: translation once per page, set machinery once per
// line, and — once a measured pass is detected to leave the hierarchy's
// canonical state at a fixed point — the remaining passes replayed as
// counter deltas instead of being re-simulated. Results are exactly
// those of RunScalar.
func (r *Runner) Run(cfg Config) (Result, error) { return r.run(cfg, false) }

// RunScalar is the reference implementation: one Hierarchy.Access per
// element, no batching, no memoization. It exists to pin the batched
// engine — the equivalence suite asserts identical cycles, per-level
// Stats and papi counters against it — and as the baseline the
// BenchmarkMembench* family measures speedups over.
func (r *Runner) RunScalar(cfg Config) (Result, error) { return r.run(cfg, true) }

// statesEqual compares two canonical-state encodings.
func statesEqual(a, b []uint64) bool { return slices.Equal(a, b) }

func (r *Runner) run(cfg Config, scalar bool) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	elemBytes := cfg.Width.Bytes()
	n := cfg.ArrayBytes / elemBytes
	stride := cfg.StrideElems
	strideBytes := stride * elemBytes
	count := (n + stride - 1) / stride // accesses per pass

	// Issue cost per access from the core model: the unrolled loop body
	// amortizes loop overhead but may spill registers.
	issuePerAccess := r.plat.CPU.IterationCost(cfg.Width, cfg.Unroll) / float64(cfg.Unroll)
	l1Hit := r.hier.L1HitLatency()

	pass := func() cache.RunResult {
		if scalar {
			var rr cache.RunResult
			for i := 0; i < n; i += stride {
				va := uint64(i * elemBytes)
				lat := r.hier.Access(va, false)
				rr.Accesses++
				rr.Latency += uint64(lat)
				if lat > l1Hit {
					rr.Extra += uint64(lat - l1Hit)
				}
			}
			return rr
		}
		return r.hier.AccessRun(0, strideBytes, count, false)
	}
	passCycles := func(rr cache.RunResult) float64 {
		return float64(rr.Accesses)*issuePerAccess + r.plat.CPU.StallCyclesTotal(rr.Extra)
	}

	// Fixed-point detection costs two canonical snapshots per pass;
	// only pay it when a pass dwarfs the snapshot.
	memo := !scalar && count >= r.hier.StateWords()

	// Warm passes evolve state only (counters are reset below), so once
	// a warm pass maps the canonical state onto itself the remaining
	// warm passes are no-ops and may be skipped.
	if memo && cfg.WarmPasses > 1 {
		r.stateCur = r.hier.AppendState(r.stateCur[:0])
		for w := 0; w < cfg.WarmPasses; w++ {
			pass()
			r.statePrev, r.stateCur = r.stateCur, r.statePrev
			r.stateCur = r.hier.AppendState(r.stateCur[:0])
			if statesEqual(r.statePrev, r.stateCur) {
				break
			}
		}
	} else {
		for w := 0; w < cfg.WarmPasses; w++ {
			pass()
		}
		if memo {
			r.stateCur = r.hier.AppendState(r.stateCur[:0])
		}
	}
	r.hier.ResetStats()

	var totalCycles float64
	var totalAccesses uint64
	var memoAgg cache.RunResult
	var memoCycles float64
	haveMemo := false
	for p := 0; p < cfg.MeasurePasses; p++ {
		if haveMemo {
			// Every remaining pass starts from the verified fixed point
			// and is therefore identical: advance the counters by the
			// captured delta and replay the identical cycle/access
			// contributions in pass order.
			remaining := cfg.MeasurePasses - p
			r.hier.AddStats(&r.statsDelta, uint64(remaining))
			for i := 0; i < remaining; i++ {
				totalCycles += memoCycles
				totalAccesses += memoAgg.Accesses
			}
			break
		}
		if memo && p < cfg.MeasurePasses-1 {
			r.hier.ReadStats(&r.statsPre)
			rr := pass()
			cyc := passCycles(rr)
			totalCycles += cyc
			totalAccesses += rr.Accesses
			r.hier.ReadStats(&r.statsPost)
			r.statePrev, r.stateCur = r.stateCur, r.statePrev
			r.stateCur = r.hier.AppendState(r.stateCur[:0])
			if statesEqual(r.statePrev, r.stateCur) {
				r.statsDelta.Delta(&r.statsPost, &r.statsPre)
				memoAgg, memoCycles, haveMemo = rr, cyc, true
			}
			continue
		}
		rr := pass()
		totalCycles += passCycles(rr)
		totalAccesses += rr.Accesses
	}

	res := Result{
		Config:   cfg,
		Cycles:   totalCycles,
		Accesses: totalAccesses,
	}
	res.Seconds = totalCycles * r.plat.CPU.SecondsPerCycle()
	if res.Seconds > 0 {
		res.Bandwidth = float64(totalAccesses) * float64(elemBytes) / res.Seconds
	}
	res.Counters = papi.FromHierarchy(r.hier)
	return res, nil
}

// Run is a convenience that builds a fresh Runner and measures cfg once.
func Run(p *platform.Platform, m mem.Mapper, cfg Config) (Result, error) {
	r, err := NewRunner(p, m)
	if err != nil {
		return Result{}, err
	}
	return r.Run(cfg)
}

// Measurement is one point of a randomized sweep (Figure 5).
type Measurement struct {
	Seq       int // wall-clock order in the sweep
	SizeBytes int
	Rep       int
	Bandwidth float64 // effective bytes/s after scheduler perturbation
	Degraded  bool    // scheduler was in a degraded window (if knowable)
}

// Sweep measures every size in sizes reps times under environment env,
// in randomized order as §V.A.1 prescribes ("benchmarks ... need to be
// thoroughly randomized"), and returns measurements in wall-clock order.
func Sweep(p *platform.Platform, env osmodel.Environment, sizes []int, reps int) ([]Measurement, error) {
	mapper := env.Pages.NewMapper(env.Seed)
	runner, err := NewRunner(p, mapper)
	if err != nil {
		return nil, err
	}

	type point struct{ size, rep int }
	var order []point
	for _, s := range sizes {
		for r := 0; r < reps; r++ {
			order = append(order, point{s, r})
		}
	}
	rng := xrand.New(env.Seed)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	// Cache raw (unperturbed) results per size: the simulated kernel is
	// deterministic for a fixed mapper, so re-running identical
	// configurations only costs time. Scheduler perturbation is applied
	// per measurement afterwards, which is also physically faithful:
	// the kernel's work is identical, the OS window slows it down.
	raw := make(map[int]Result)
	out := make([]Measurement, 0, len(order))
	rt, _ := env.Scheduler.(*osmodel.RTScheduler)
	for seq, pt := range order {
		res, ok := raw[pt.size]
		if !ok {
			res, err = runner.Run(Config{ArrayBytes: pt.size})
			if err != nil {
				return nil, err
			}
			raw[pt.size] = res
		}
		factor := env.Scheduler.Next()
		m := Measurement{
			Seq:       seq,
			SizeBytes: pt.size,
			Rep:       pt.rep,
			Bandwidth: res.Bandwidth / factor,
		}
		if rt != nil {
			m.Degraded = rt.Degraded()
		}
		out = append(out, m)
	}
	return out, nil
}

// GridPoint is one cell of the Figure 6 optimization grid.
type GridPoint struct {
	Width     cpu.Width
	Unroll    int
	Bandwidth float64 // bytes/s
}

// OptimizationGrid measures the element-width x unroll grid of Figure 6
// on platform p for the given array size (the paper uses 50 KB, stride
// 1, unroll in {1, 8}).
func OptimizationGrid(p *platform.Platform, arrayBytes int, unrolls []int) ([]GridPoint, error) {
	var out []GridPoint
	for _, w := range cpu.Widths() {
		for _, u := range unrolls {
			res, err := Run(p, nil, Config{
				ArrayBytes: arrayBytes,
				Width:      w,
				Unroll:     u,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, GridPoint{Width: w, Unroll: u, Bandwidth: res.Bandwidth})
		}
	}
	return out, nil
}

// Find returns the grid point for (w, u), or false if absent.
func Find(grid []GridPoint, w cpu.Width, u int) (GridPoint, bool) {
	for _, g := range grid {
		if g.Width == w && g.Unroll == u {
			return g, true
		}
	}
	return GridPoint{}, false
}
