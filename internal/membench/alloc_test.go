package membench

import (
	"testing"

	"montblanc/internal/cpu"
	"montblanc/internal/mem"
	"montblanc/internal/platform"
	"montblanc/internal/units"
)

// The steady-state membench contract (mirroring the simmpi guards): a
// measured pass on a warm Runner allocates (amortized) nothing — the
// batched engine works in reused buffers and fixed-point snapshots live
// in Runner-owned scratch. This guard pins the *executed-pass* path: the
// array is kept below the memoization gate (count < StateWords), so all
// WarmPasses+MeasurePasses passes really run through AccessRun and a
// single allocation reintroduced per executed pass trips the <= 1
// bound. Only the per-Run constant overhead (the papi.Counters
// snapshot) allocates, so the measured figure is ~0.03.
func TestMembenchSteadyPassAllocsPerOp(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	r, err := NewRunner(platform.MustLookup("Snowball"), mem.NewContiguousMapper(0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		ArrayBytes:    64 * units.KiB,
		Width:         cpu.W64,
		WarmPasses:    2,
		MeasurePasses: 64,
	}
	const passes = 2 + 64
	if count := cfg.ArrayBytes / cfg.Width.Bytes(); count >= r.Hierarchy().StateWords() {
		t.Fatalf("config reaches the memoization gate (count %d >= %d state words); "+
			"the guard would divide by passes that never execute", count, r.Hierarchy().StateWords())
	}
	// Prime the Runner-owned scratch.
	if _, err := r.Run(cfg); err != nil {
		t.Fatal(err)
	}
	allocsPerRun := testing.AllocsPerRun(3, func() {
		if _, err := r.Run(cfg); err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	perPass := allocsPerRun / passes
	t.Logf("allocs: %.0f per run, %.4f per executed pass", allocsPerRun, perPass)
	if perPass > 1.0 {
		t.Errorf("steady-state membench pass allocates %.2f per pass, want <= 1", perPass)
	}
}

// The memoized path's own contract: above the gate, a Run's allocation
// cost is a small constant regardless of MeasurePasses — snapshots,
// delta capture and replay all work in Runner-owned scratch. A flat
// per-Run bound (not a diluted per-pass average) catches an allocation
// reintroduced anywhere on the memoized path.
func TestMembenchMemoizedRunAllocsConstant(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	r, err := NewRunner(platform.MustLookup("Snowball"), mem.NewContiguousMapper(0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		ArrayBytes:    2 * units.MiB,
		Width:         cpu.W64,
		WarmPasses:    2,
		MeasurePasses: 64,
	}
	if count := cfg.ArrayBytes / cfg.Width.Bytes(); count < r.Hierarchy().StateWords() {
		t.Fatalf("config misses the memoization gate (count %d < %d state words)",
			count, r.Hierarchy().StateWords())
	}
	if _, err := r.Run(cfg); err != nil {
		t.Fatal(err)
	}
	allocsPerRun := testing.AllocsPerRun(3, func() {
		if _, err := r.Run(cfg); err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	t.Logf("allocs: %.0f per memoized 64-pass run", allocsPerRun)
	if allocsPerRun > 16 {
		t.Errorf("memoized run allocates %.0f, want a small constant (<= 16)", allocsPerRun)
	}
}

// The same guard for the scalar reference path: RunScalar predates the
// batched engine and must stay allocation-free per pass too, so
// speedup comparisons measure simulation work, not allocator traffic.
func TestMembenchScalarPassAllocsPerOp(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under -race")
	}
	r, err := NewRunner(platform.MustLookup("Snowball"), mem.NewContiguousMapper(0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		ArrayBytes:    64 * units.KiB,
		Width:         cpu.W64,
		WarmPasses:    2,
		MeasurePasses: 16,
	}
	const passes = 2 + 16
	if _, err := r.RunScalar(cfg); err != nil {
		t.Fatal(err)
	}
	allocsPerRun := testing.AllocsPerRun(3, func() {
		if _, err := r.RunScalar(cfg); err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	perPass := allocsPerRun / passes
	t.Logf("allocs: %.0f per run, %.4f per pass", allocsPerRun, perPass)
	if perPass > 1.0 {
		t.Errorf("scalar membench pass allocates %.2f per pass, want <= 1", perPass)
	}
}
