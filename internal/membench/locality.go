package membench

import (
	"fmt"

	"montblanc/internal/platform"
)

// LocalityPoint is one cell of a temporal/spatial locality profile.
type LocalityPoint struct {
	ArrayBytes  int
	StrideElems int
	Bandwidth   float64 // bytes/s
}

// LocalityProfile sweeps array size (temporal locality: cache capacity)
// against stride (spatial locality: line utilization), the full
// parameter space of the §V.A kernel: "Such parameters provide a crude
// estimation how temporal and spatial locality of the code impact
// performance on a given machine."
func LocalityProfile(p *platform.Platform, sizes, strides []int) ([]LocalityPoint, error) {
	if len(sizes) == 0 || len(strides) == 0 {
		return nil, fmt.Errorf("membench: empty locality sweep")
	}
	out := make([]LocalityPoint, 0, len(sizes)*len(strides))
	for _, size := range sizes {
		for _, stride := range strides {
			res, err := Run(p, nil, Config{ArrayBytes: size, StrideElems: stride})
			if err != nil {
				return nil, err
			}
			out = append(out, LocalityPoint{
				ArrayBytes:  size,
				StrideElems: stride,
				Bandwidth:   res.Bandwidth,
			})
		}
	}
	return out, nil
}

// At returns the profile cell for (size, stride), or false.
func At(profile []LocalityPoint, size, stride int) (LocalityPoint, bool) {
	for _, pt := range profile {
		if pt.ArrayBytes == size && pt.StrideElems == stride {
			return pt, true
		}
	}
	return LocalityPoint{}, false
}

// CapacityCliffs returns, for the given stride, the bandwidth drop
// factors across each consecutive size pair — the signature used to
// locate cache-level boundaries from measurements alone.
func CapacityCliffs(profile []LocalityPoint, stride int) []float64 {
	var sizes []int
	bw := map[int]float64{}
	for _, pt := range profile {
		if pt.StrideElems == stride {
			sizes = append(sizes, pt.ArrayBytes)
			bw[pt.ArrayBytes] = pt.Bandwidth
		}
	}
	var cliffs []float64
	for i := 1; i < len(sizes); i++ {
		prev, cur := bw[sizes[i-1]], bw[sizes[i]]
		if cur > 0 {
			cliffs = append(cliffs, prev/cur)
		}
	}
	return cliffs
}
