package membench

import (
	"reflect"
	"testing"

	"montblanc/internal/cpu"
	"montblanc/internal/mem"
	"montblanc/internal/papi"
	"montblanc/internal/platform"
	"montblanc/internal/units"
	"montblanc/internal/xrand"
)

// mapperSpec builds a fresh, independently seeded mapper per call so a
// scalar and a batched runner each own an identical world.
type mapperSpec struct {
	name  string
	build func(seed uint64) mem.Mapper
}

var mapperSpecs = []mapperSpec{
	{"identity", func(uint64) mem.Mapper { return nil }},
	{"contiguous", func(uint64) mem.Mapper { return mem.NewContiguousMapper(0) }},
	{"random", func(seed uint64) mem.Mapper { return mem.NewRandomMapper(seed, 1<<14) }},
	// A tiny physical pool oversubscribes the Snowball L1's two page
	// colours in nearly every draw: the §V.A.1 conflict regime.
	{"tiny-pool", func(seed uint64) mem.Mapper { return mem.NewRandomMapper(seed, 12) }},
}

// compareRuns asserts exact equivalence of one configuration between a
// batched and a scalar runner: identical cycles (bitwise), accesses,
// bandwidth, papi counters, per-level stats, TLB/memory counters, and
// canonical hierarchy state.
func compareRuns(t *testing.T, batched, scalar *Runner, cfg Config, ctx string) {
	t.Helper()
	got, err := batched.Run(cfg)
	if err != nil {
		t.Fatalf("%s: batched: %v", ctx, err)
	}
	want, err := scalar.RunScalar(cfg)
	if err != nil {
		t.Fatalf("%s: scalar: %v", ctx, err)
	}
	if got.Cycles != want.Cycles {
		t.Fatalf("%s: cycles %v != scalar %v", ctx, got.Cycles, want.Cycles)
	}
	if got.Accesses != want.Accesses || got.Seconds != want.Seconds || got.Bandwidth != want.Bandwidth {
		t.Fatalf("%s: result diverges: %+v vs %+v", ctx, got, want)
	}
	if !reflect.DeepEqual(got.Counters, want.Counters) {
		t.Fatalf("%s: counters diverge: %v vs %v", ctx, got.Counters, want.Counters)
	}
	bh, sh := batched.Hierarchy(), scalar.Hierarchy()
	for i := 0; i < bh.Depth(); i++ {
		if a, b := bh.Level(i).Stats(), sh.Level(i).Stats(); a != b {
			t.Fatalf("%s: level %d stats diverge: %+v vs %+v", ctx, i, a, b)
		}
	}
	if a, b := bh.Memory().Stats(), sh.Memory().Stats(); a != b {
		t.Fatalf("%s: memory stats diverge: %+v vs %+v", ctx, a, b)
	}
	bth, btm, _ := bh.TLBStats()
	sth, stm, _ := sh.TLBStats()
	if bth != sth || btm != stm {
		t.Fatalf("%s: TLB stats diverge: %d/%d vs %d/%d", ctx, bth, btm, sth, stm)
	}
	if !statesEqual(bh.AppendState(nil), sh.AppendState(nil)) {
		t.Fatalf("%s: canonical hierarchy state diverges", ctx)
	}
}

// The batched engine contract end to end: Run (line/page fast path plus
// periodic-pass memoization) is exactly equivalent to RunScalar over
// randomized sizes, strides, widths, unrolls, pass counts, platforms
// and page mappings.
func TestRunMatchesScalarRandomized(t *testing.T) {
	platforms := []string{"Snowball", "XeonX5550", "Tegra2", "ThunderX2"}
	sizes := []int{
		2 * units.KiB, 8 * units.KiB, 31 * units.KiB, 32 * units.KiB,
		50 * units.KiB, 64 * units.KiB, 100 * units.KiB, 256 * units.KiB, 1 * units.MiB,
	}
	strides := []int{1, 2, 3, 5, 8, 16, 33, 64}
	widths := []cpu.Width{cpu.W32, cpu.W64, cpu.W128}
	rng := xrand.New(7)
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		plat := platform.MustLookup(platforms[rng.Uint64()%uint64(len(platforms))])
		ms := mapperSpecs[rng.Uint64()%uint64(len(mapperSpecs))]
		seed := rng.Uint64()
		cfg := Config{
			ArrayBytes:    sizes[rng.Uint64()%uint64(len(sizes))],
			StrideElems:   strides[rng.Uint64()%uint64(len(strides))],
			Width:         widths[rng.Uint64()%3],
			Unroll:        1 + int(rng.Uint64()%8),
			WarmPasses:    1 + int(rng.Uint64()%3),
			MeasurePasses: 1 + int(rng.Uint64()%5),
		}
		batched, err := NewRunner(plat, ms.build(seed))
		if err != nil {
			t.Fatal(err)
		}
		scalar, err := NewRunner(plat, ms.build(seed))
		if err != nil {
			t.Fatal(err)
		}
		ctx := plat.Name + "/" + ms.name
		compareRuns(t, batched, scalar, cfg, ctx)
		// Runner reuse (the Sweep pattern): a second, different
		// configuration against the now-warm hierarchy must stay
		// equivalent — memoized replay may not leak state errors into
		// later measurements.
		cfg2 := cfg
		cfg2.ArrayBytes = sizes[rng.Uint64()%uint64(len(sizes))]
		cfg2.StrideElems = strides[rng.Uint64()%uint64(len(strides))]
		compareRuns(t, batched, scalar, cfg2, ctx+"/second-run")
	}
}

// The §V.A.1 unlucky-page-colour cases must keep conflicting on the
// batched path: for an L1-sized array on the two-colour Snowball L1,
// unlucky random placements show L1 misses in the measured window where
// contiguous placement shows essentially none — and every case stays
// exactly equivalent to the scalar reference.
func TestPageColourConflictsPreserved(t *testing.T) {
	p := platform.MustLookup("Snowball")
	cfg := Config{ArrayBytes: 32 * units.KiB}
	contig, err := Run(p, mem.NewContiguousMapper(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	conflicts := 0
	for seed := uint64(1); seed <= 8; seed++ {
		build := func() mem.Mapper { return mem.NewRandomMapper(seed, 64) }
		batched, err := NewRunner(p, build())
		if err != nil {
			t.Fatal(err)
		}
		scalar, err := NewRunner(p, build())
		if err != nil {
			t.Fatal(err)
		}
		compareRuns(t, batched, scalar, cfg, "colour-conflict")
		res, err := batched.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Counters.Get(papi.L1_DCM) > 4*contig.Counters.Get(papi.L1_DCM)+100 {
			conflicts++
		}
	}
	if conflicts == 0 {
		t.Fatal("no random placement produced L1 conflict misses; the batched engine erased §V.A.1")
	}
	if contig.Counters.MissRatio() > 0.001 {
		t.Errorf("contiguous placement missing at ratio %f", contig.Counters.MissRatio())
	}
}

// Sweep and OptimizationGrid ride on Run; a direct spot-check that the
// high-level entry points agree with the scalar path too.
func TestHighLevelEntryPointsMatchScalar(t *testing.T) {
	p := platform.MustLookup("XeonX5550")
	for _, cfg := range []Config{
		{ArrayBytes: 50 * units.KiB, Width: cpu.W128, Unroll: 8},
		{ArrayBytes: 256 * units.KiB, StrideElems: 16},
	} {
		batched, err := NewRunner(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		scalar, err := NewRunner(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		compareRuns(t, batched, scalar, cfg, "entry-point")
	}
}
