package membench

import (
	"testing"

	"montblanc/internal/cpu"
	"montblanc/internal/mem"
	"montblanc/internal/osmodel"
	"montblanc/internal/papi"
	"montblanc/internal/platform"
	"montblanc/internal/stats"
	"montblanc/internal/units"
)

func TestConfigDefaultsAndValidation(t *testing.T) {
	c := Config{ArrayBytes: 1024}.withDefaults()
	if c.StrideElems != 1 || c.Width != cpu.W32 || c.Unroll != 1 ||
		c.WarmPasses != 2 || c.MeasurePasses != 2 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if err := (Config{ArrayBytes: 2, Width: cpu.W64}).Validate(); err == nil {
		t.Error("sub-element array accepted")
	}
	if err := (Config{ArrayBytes: 1024}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestRunBasics(t *testing.T) {
	p := platform.Snowball()
	res, err := Run(p, nil, Config{ArrayBytes: 8 * units.KiB})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 2*8*units.KiB/4 {
		t.Errorf("accesses = %d", res.Accesses)
	}
	if res.Bandwidth <= 0 || res.Seconds <= 0 {
		t.Errorf("non-positive results: %+v", res)
	}
	// After warm-up an 8KB array fits the 32KB L1: misses ~ 0.
	if r := res.Counters.MissRatio(); r > 0.001 {
		t.Errorf("L1-resident array missing at ratio %f", r)
	}
}

// Figure 5a's background shape: bandwidth drops when the array exceeds
// the 32KB L1.
func TestBandwidthDropsBeyondL1(t *testing.T) {
	p := platform.Snowball()
	small, err := Run(p, nil, Config{ArrayBytes: 16 * units.KiB})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(p, nil, Config{ArrayBytes: 48 * units.KiB})
	if err != nil {
		t.Fatal(err)
	}
	if big.Bandwidth >= small.Bandwidth {
		t.Errorf("48KB bandwidth %.0f >= 16KB bandwidth %.0f",
			big.Bandwidth, small.Bandwidth)
	}
}

// Spatial locality: striding past the cache line makes every access miss
// and effective bandwidth collapse.
func TestStridePenalty(t *testing.T) {
	p := platform.Snowball()
	unit, err := Run(p, nil, Config{ArrayBytes: 256 * units.KiB, StrideElems: 1})
	if err != nil {
		t.Fatal(err)
	}
	strided, err := Run(p, nil, Config{ArrayBytes: 256 * units.KiB, StrideElems: 16})
	if err != nil {
		t.Fatal(err)
	}
	if strided.Bandwidth >= unit.Bandwidth/2 {
		t.Errorf("stride-16 bandwidth %.0f should be far below stride-1 %.0f",
			strided.Bandwidth, unit.Bandwidth)
	}
}

func TestDeterminism(t *testing.T) {
	p := platform.XeonX5550()
	cfg := Config{ArrayBytes: 50 * units.KiB, Width: cpu.W64, Unroll: 8}
	a, err := Run(p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bandwidth != b.Bandwidth || a.Cycles != b.Cycles {
		t.Error("identical configurations disagreed")
	}
}

// The §V.A.1 reproducibility story, end to end: with random physical
// pages, run-to-run bandwidth of a 32KB array varies far more than with
// contiguous pages.
func TestPageAllocationRunToRunVariance(t *testing.T) {
	p := platform.Snowball()
	const runs = 12
	bandwidthsUnder := func(policy osmodel.PagePolicy) []float64 {
		var bws []float64
		for seed := uint64(0); seed < runs; seed++ {
			res, err := Run(p, policy.NewMapper(seed), Config{ArrayBytes: 32 * units.KiB})
			if err != nil {
				t.Fatal(err)
			}
			bws = append(bws, res.Bandwidth)
		}
		return bws
	}
	contig := bandwidthsUnder(osmodel.ContiguousPages)
	random := bandwidthsUnder(osmodel.RandomPages)
	cvContig := stats.CoeffVar(contig)
	cvRandom := stats.CoeffVar(random)
	if cvRandom < 4*cvContig+0.01 {
		t.Errorf("random pages CV %.4f not clearly above contiguous CV %.4f",
			cvRandom, cvContig)
	}
	// And random never beats contiguous meaningfully.
	if stats.Max(random) > stats.Max(contig)*1.05 {
		t.Error("random placement should not outperform contiguous")
	}
}

// Figure 6a: on the Xeon, wider elements and unrolling monotonically
// improve effective bandwidth at 50KB/stride 1.
func TestFigure6XeonMonotone(t *testing.T) {
	grid, err := OptimizationGrid(platform.XeonX5550(), 50*units.KiB, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int{1, 8} {
		prev := 0.0
		for _, w := range cpu.Widths() {
			g, ok := Find(grid, w, u)
			if !ok {
				t.Fatalf("missing grid point %v/%d", w, u)
			}
			if g.Bandwidth <= prev {
				t.Errorf("Xeon %v unroll=%d: bandwidth %.2fGB/s not above narrower width",
					w, u, g.Bandwidth/1e9)
			}
			prev = g.Bandwidth
		}
	}
	for _, w := range cpu.Widths() {
		u1, _ := Find(grid, w, 1)
		u8, _ := Find(grid, w, 8)
		if u8.Bandwidth <= u1.Bandwidth {
			t.Errorf("Xeon %v: unrolling did not help (%.2f vs %.2f GB/s)",
				w, u8.Bandwidth/1e9, u1.Bandwidth/1e9)
		}
	}
}

// Figure 6b: on the Snowball, 128-bit vectorization is no better than
// 32-bit, and unrolling *degrades* 128-bit bandwidth; 64-bit unrolled is
// the best configuration.
func TestFigure6SnowballPathologies(t *testing.T) {
	grid, err := OptimizationGrid(platform.Snowball(), 50*units.KiB, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	w32u1, _ := Find(grid, cpu.W32, 1)
	w128u1, _ := Find(grid, cpu.W128, 1)
	w128u8, _ := Find(grid, cpu.W128, 8)
	w64u1, _ := Find(grid, cpu.W64, 1)
	w64u8, _ := Find(grid, cpu.W64, 8)

	// "vectorizing with 128 is similar to using 32 bit elements"
	if ratio := w128u1.Bandwidth / w32u1.Bandwidth; ratio > 1.4 || ratio < 0.6 {
		t.Errorf("ARM 128b/32b ratio = %.2f, want ~1", ratio)
	}
	// "loop unrolling may even dramatically degrade performance"
	if w128u8.Bandwidth >= w128u1.Bandwidth {
		t.Errorf("ARM 128b: unrolling helped (%.0f vs %.0f)",
			w128u8.Bandwidth, w128u1.Bandwidth)
	}
	// "the best configuration on ARM is obtained when using 64 bits and
	// loop unrolling"
	best := w64u8.Bandwidth
	for _, g := range grid {
		if g.Bandwidth > best {
			t.Errorf("ARM best is %v/unroll=%d, want 64b/unroll=8", g.Width, g.Unroll)
		}
	}
	// "increasing element size from 32 bits to 64 bits practically
	// doubles the bandwidths" (stall cycles keep the model slightly
	// below a perfect 2x).
	if ratio := w64u1.Bandwidth / w32u1.Bandwidth; ratio < 1.5 || ratio > 2.5 {
		t.Errorf("ARM 64b/32b ratio = %.2f, want ~2", ratio)
	}
}

// The two platforms differ in *scale* as in the paper's figures:
// Xeon bandwidths are an order of magnitude above the Snowball's.
func TestFigure6ScaleGap(t *testing.T) {
	xeon, err := Run(platform.XeonX5550(), nil,
		Config{ArrayBytes: 50 * units.KiB, Width: cpu.W128, Unroll: 8})
	if err != nil {
		t.Fatal(err)
	}
	arm, err := Run(platform.Snowball(), nil,
		Config{ArrayBytes: 50 * units.KiB, Width: cpu.W64, Unroll: 8})
	if err != nil {
		t.Fatal(err)
	}
	if gap := xeon.Bandwidth / arm.Bandwidth; gap < 5 || gap > 30 {
		t.Errorf("best-config bandwidth gap = %.1fx, want 5-30x", gap)
	}
	// Order of magnitude targets from the figure axes (GB/s):
	if xeon.Bandwidth < 5e9 || xeon.Bandwidth > 40e9 {
		t.Errorf("Xeon best = %.2f GB/s, want O(10)", xeon.Bandwidth/1e9)
	}
	if arm.Bandwidth < 0.5e9 || arm.Bandwidth > 4e9 {
		t.Errorf("ARM best = %.2f GB/s, want O(1)", arm.Bandwidth/1e9)
	}
}

func TestSweepRandomizedButComplete(t *testing.T) {
	p := platform.Snowball()
	env := osmodel.DefaultEnvironment(3)
	sizes := []int{4 * units.KiB, 16 * units.KiB, 48 * units.KiB}
	ms, err := Sweep(p, env, sizes, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 12 {
		t.Fatalf("measurements = %d, want 12", len(ms))
	}
	counts := map[int]int{}
	inOrder := true
	for i, m := range ms {
		counts[m.SizeBytes]++
		if m.Seq != i {
			t.Error("Seq not in wall-clock order")
		}
		if i > 0 && ms[i].SizeBytes < ms[i-1].SizeBytes {
			inOrder = false
		}
	}
	for _, s := range sizes {
		if counts[s] != 4 {
			t.Errorf("size %d measured %d times, want 4", s, counts[s])
		}
	}
	if inOrder {
		t.Error("sweep order not randomized")
	}
}

func TestSweepRTProducesDegradedRuns(t *testing.T) {
	p := platform.Snowball()
	sizes := make([]int, 25)
	for i := range sizes {
		sizes[i] = (i + 1) * 2 * units.KiB
	}
	// Find a seed whose degraded window intersects the sweep.
	for seed := uint64(0); seed < 12; seed++ {
		env := osmodel.ARMRealTimeEnvironment(seed)
		ms, err := Sweep(p, env, sizes, 8)
		if err != nil {
			t.Fatal(err)
		}
		var marks []bool
		var bws []float64
		for _, m := range ms {
			marks = append(marks, m.Degraded)
			bws = append(bws, m.Bandwidth)
		}
		st := stats.FindStreaks(marks)
		if st.Total == 0 {
			continue
		}
		// Degraded measurements are consecutive (few episodes).
		if st.Count > 4 {
			t.Errorf("seed %d: %d degraded episodes", seed, st.Count)
		}
		// And degraded bandwidths are far below normal ones.
		modes := stats.TwoModes(bws)
		if modes.Bimodal && (modes.Ratio < 2.5 || modes.Ratio > 9) {
			t.Errorf("seed %d: mode ratio %.1f", seed, modes.Ratio)
		}
		return
	}
	t.Fatal("no seed produced a degraded episode within the sweep")
}

func TestRunnerReportsCounters(t *testing.T) {
	p := platform.Snowball()
	r, err := NewRunner(p, mem.NewContiguousMapper(0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(Config{ArrayBytes: 64 * units.KiB})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Get(papi.L1_DCA) == 0 {
		t.Error("no L1 accesses recorded")
	}
	if res.Counters.Get(papi.L2_DCA) == 0 {
		t.Error("64KB working set should reach L2")
	}
}

func TestFindMissing(t *testing.T) {
	if _, ok := Find(nil, cpu.W32, 1); ok {
		t.Error("Find on empty grid succeeded")
	}
}
