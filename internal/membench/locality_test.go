package membench

import (
	"testing"

	"montblanc/internal/platform"
	"montblanc/internal/units"
)

func TestLocalityProfileShape(t *testing.T) {
	p := platform.Snowball()
	sizes := []int{16 * units.KiB, 64 * units.KiB, 2 * units.MiB}
	strides := []int{1, 4, 16}
	profile, err := LocalityProfile(p, sizes, strides)
	if err != nil {
		t.Fatal(err)
	}
	if len(profile) != 9 {
		t.Fatalf("profile cells = %d, want 9", len(profile))
	}
	// Temporal locality: L1-resident beats L2-resident beats DRAM.
	l1, _ := At(profile, 16*units.KiB, 1)
	l2, _ := At(profile, 64*units.KiB, 1)
	dram, _ := At(profile, 2*units.MiB, 1)
	if !(l1.Bandwidth > l2.Bandwidth && l2.Bandwidth > dram.Bandwidth) {
		t.Errorf("capacity ordering broken: %.2f / %.2f / %.2f GB/s",
			l1.Bandwidth/1e9, l2.Bandwidth/1e9, dram.Bandwidth/1e9)
	}
	// Spatial locality: striding past the 32B line (8 x 32-bit elements)
	// wastes the line, so stride 16 is far slower than stride 1 for
	// DRAM-resident arrays.
	s1, _ := At(profile, 2*units.MiB, 1)
	s16, _ := At(profile, 2*units.MiB, 16)
	if s16.Bandwidth > s1.Bandwidth/3 {
		t.Errorf("stride-16 bandwidth %.3f GB/s not <3x below stride-1 %.3f",
			s16.Bandwidth/1e9, s1.Bandwidth/1e9)
	}
	// Within the L1 (no misses at any stride) strides cost nothing.
	f1, _ := At(profile, 16*units.KiB, 1)
	f16, _ := At(profile, 16*units.KiB, 16)
	if f16.Bandwidth < f1.Bandwidth*0.95 {
		t.Errorf("L1-resident stride sensitivity unexpected: %.3f vs %.3f GB/s",
			f16.Bandwidth/1e9, f1.Bandwidth/1e9)
	}
}

func TestCapacityCliffsLocateCacheLevels(t *testing.T) {
	p := platform.Snowball() // L1 32KB, L2 512KB
	sizes := []int{16 * units.KiB, 64 * units.KiB, 1 * units.MiB}
	profile, err := LocalityProfile(p, sizes, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	cliffs := CapacityCliffs(profile, 1)
	if len(cliffs) != 2 {
		t.Fatalf("cliffs = %d, want 2", len(cliffs))
	}
	// Crossing L1 and crossing L2 must each cost a visible factor.
	if cliffs[0] < 1.1 {
		t.Errorf("L1 boundary cliff = %.2f, want > 1.1", cliffs[0])
	}
	if cliffs[1] < 1.5 {
		t.Errorf("L2 boundary cliff = %.2f, want > 1.5", cliffs[1])
	}
}

func TestLocalityProfileValidation(t *testing.T) {
	if _, err := LocalityProfile(platform.Snowball(), nil, []int{1}); err == nil {
		t.Error("empty sizes accepted")
	}
	if _, err := LocalityProfile(platform.Snowball(), []int{1024}, nil); err == nil {
		t.Error("empty strides accepted")
	}
}

func TestAtMissing(t *testing.T) {
	if _, ok := At(nil, 1, 1); ok {
		t.Error("At on empty profile succeeded")
	}
}
