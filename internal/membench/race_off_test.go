//go:build !race

package membench

// raceEnabled reports whether the race detector is active; the
// AllocsPerRun guards skip under -race (instrumentation skews
// allocation counts).
const raceEnabled = false
