package power

import (
	"strings"
	"testing"
)

// tx2 is a non-uniform profile shaped like the ThunderX2 study
// (arXiv:2007.04868): idle and load diverge by more than 3x.
var tx2 = Profile{Name: "TX2", Idle: 55, Compute: 175, Memory: 150, Comm: 95}

func TestUniformIsTheConstantModel(t *testing.T) {
	p := Uniform("Snowball", 2.5)
	if !p.IsUniform() {
		t.Fatal("Uniform profile not reported uniform")
	}
	for _, s := range States() {
		if w := p.Watts(s); w != 2.5 {
			t.Errorf("Watts(%s) = %v, want 2.5", s, w)
		}
	}
	// Whole-run accounting and per-state integration agree everywhere.
	if e := p.Energy(10); e != 25 {
		t.Errorf("Energy(10) = %v, want 25", e)
	}
	for _, s := range States() {
		if e := p.EnergyIn(s, 10); e != 25 {
			t.Errorf("EnergyIn(%s, 10) = %v, want 25", s, e)
		}
	}
	if j := p.EnergyPerOp(2.5); j != 1 {
		t.Errorf("EnergyPerOp = %v, want 1", j)
	}
}

func TestProfileStates(t *testing.T) {
	want := map[State]float64{
		StateIdle: 55, StateCompute: 175, StateMemory: 150, StateComm: 95,
	}
	for s, w := range want {
		if got := tx2.Watts(s); got != w {
			t.Errorf("Watts(%s) = %v, want %v", s, got, w)
		}
	}
	if tx2.IsUniform() {
		t.Error("non-uniform profile reported uniform")
	}
	// Whole-run accounting still charges the envelope (§III.C).
	if e := tx2.Energy(2); e != 350 {
		t.Errorf("Energy(2) = %v, want 350", e)
	}
	if e := tx2.EnergyIn(StateIdle, 2); e != 110 {
		t.Errorf("EnergyIn(idle, 2) = %v, want 110", e)
	}
	if State(99).String() != "State(99)" {
		t.Errorf("unknown state string = %q", State(99))
	}
}

func TestProfileScale(t *testing.T) {
	half := tx2.Scale(0.5)
	if half.Idle != 27.5 || half.Compute != 87.5 || half.Memory != 75 || half.Comm != 47.5 {
		t.Errorf("Scale(0.5) = %+v", half)
	}
	if half.Name != tx2.Name {
		t.Errorf("Scale lost the name: %q", half.Name)
	}
	// Scale returns a copy; the receiver is untouched.
	if tx2.Compute != 175 {
		t.Errorf("Scale mutated receiver: %+v", tx2)
	}
}

func TestProfileValidate(t *testing.T) {
	if err := tx2.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	if err := Uniform("ok", 5).Validate(); err != nil {
		t.Errorf("uniform profile rejected: %v", err)
	}
	bad := []Profile{
		{Name: "zero", Idle: 0, Compute: 5, Memory: 5, Comm: 5},
		{Name: "neg", Idle: 1, Compute: -5, Memory: 5, Comm: 5},
		{Name: "inverted", Idle: 10, Compute: 5, Memory: 12, Comm: 12},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %s validated", p.Name)
		}
	}
}

func TestProfileString(t *testing.T) {
	if s := Uniform("Xeon", 95).String(); s != "Xeon(95.0W)" {
		t.Errorf("uniform String = %q", s)
	}
	s := tx2.String()
	for _, frag := range []string{"TX2", "idle 55.0W", "compute 175.0W", "mem 150.0W", "comm 95.0W"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String = %q, missing %q", s, frag)
		}
	}
}
