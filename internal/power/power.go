// Package power implements the energy models of the reproduction. The
// paper's deliberately conservative accounting (§III.C) charges the
// Snowball board its full 2.5 W USB power envelope and the Xeon its full
// 95 W TDP — "highly unfavorable for the ARM platform", yet ARM still
// wins on several workloads. That constant model is the uniform special
// case of the state-resolved Profile (profile.go), which additionally
// distinguishes idle, compute, memory and communication draw for
// phase-resolved energy integration.
package power

// EnergyRatioByTime returns the paper's "Energy Ratio" column for
// time-to-solution workloads: energy(candidate)/energy(reference) when
// both run the same problem. A value below 1 means the candidate
// (the ARM board) needs less energy.
func EnergyRatioByTime(candidate Profile, candidateSeconds float64, reference Profile, referenceSeconds float64) float64 {
	refE := reference.Energy(referenceSeconds)
	if refE == 0 {
		return 0
	}
	return candidate.Energy(candidateSeconds) / refE
}

// EnergyRatioByRate returns the energy ratio for throughput workloads
// (LINPACK MFLOPS, CoreMark ops/s): joules-per-op(candidate) over
// joules-per-op(reference).
func EnergyRatioByRate(candidate Profile, candidateRate float64, reference Profile, referenceRate float64) float64 {
	refJ := reference.EnergyPerOp(referenceRate)
	if refJ == 0 {
		return 0
	}
	return candidate.EnergyPerOp(candidateRate) / refJ
}

// GFLOPSPerWatt returns the efficiency figure used by the Green500
// discussion in the introduction.
func GFLOPSPerWatt(flopsPerSecond, watts float64) float64 {
	if watts <= 0 {
		return 0
	}
	return flopsPerSecond / 1e9 / watts
}

// ExaflopBudget captures the paper's framing numbers: an exaflop system
// under the 20 MW barrier needs 50 GFLOPS/W, a factor ~25 above the
// 2012 state of the art (~2 GFLOPS/W).
type ExaflopBudget struct {
	TargetFlops    float64 // 1e18
	PowerBudgetW   float64 // 20e6
	RequiredGFperW float64
	CurrentGFperW  float64
	ImprovementGap float64
}

// NewExaflopBudget computes the efficiency gap for reaching targetFlops
// within budgetWatts given the current best efficiency.
func NewExaflopBudget(targetFlops, budgetWatts, currentGFLOPSPerWatt float64) ExaflopBudget {
	req := targetFlops / 1e9 / budgetWatts
	gap := 0.0
	if currentGFLOPSPerWatt > 0 {
		gap = req / currentGFLOPSPerWatt
	}
	return ExaflopBudget{
		TargetFlops:    targetFlops,
		PowerBudgetW:   budgetWatts,
		RequiredGFperW: req,
		CurrentGFperW:  currentGFLOPSPerWatt,
		ImprovementGap: gap,
	}
}
