package power

import "fmt"

// State classifies what a machine is doing for power accounting. The
// follow-on measurement work the reproduction tracks (arXiv:1410.3440,
// arXiv:2007.04868) shows real platforms draw very different power in
// different execution phases — idle vs. load diverges by more than 3x
// on a ThunderX2 node — so energy integration is per-state, not one
// constant envelope.
type State int

// Accounting states, in rendering order.
const (
	StateIdle State = iota
	StateCompute
	StateMemory
	StateComm
)

// States returns every accounting state in rendering order.
func States() []State {
	return []State{StateIdle, StateCompute, StateMemory, StateComm}
}

// String names the state.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateCompute:
		return "compute"
	case StateMemory:
		return "memory"
	case StateComm:
		return "communication"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Profile is a state-resolved power model for one platform: the watts
// drawn while idle, under full compute load, in memory-bound phases and
// during communication. The paper's deliberately conservative constant
// model (§III.C) is the uniform special case — every state charged the
// full envelope — so profile-based accounting reduces exactly to the
// paper's numbers when a profile is uniform, and whole-run accounting
// (Energy, EnergyPerOp) always charges the Compute envelope to preserve
// the §III.C convention.
type Profile struct {
	Name string
	// Idle is the floor: the machine powered on, doing nothing.
	Idle float64
	// Compute is the full-load draw — the paper's constant envelope
	// (2.5 W Snowball USB budget, 95 W Xeon TDP).
	Compute float64
	// Memory is the draw of memory-bound phases: cores stalled on DRAM,
	// the memory system active.
	Memory float64
	// Comm is the draw while blocked in or driving communication.
	Comm float64
}

// Uniform returns the constant-power profile of the paper's §III.C
// model: every state charged the same watts.
func Uniform(name string, watts float64) Profile {
	return Profile{Name: name, Idle: watts, Compute: watts, Memory: watts, Comm: watts}
}

// IsUniform reports whether every state draws the same power — the
// profile is exactly the paper's constant model.
func (p Profile) IsUniform() bool {
	return p.Idle == p.Compute && p.Memory == p.Compute && p.Comm == p.Compute
}

// Watts returns the draw in the given state.
func (p Profile) Watts(s State) float64 {
	switch s {
	case StateIdle:
		return p.Idle
	case StateMemory:
		return p.Memory
	case StateComm:
		return p.Comm
	default:
		return p.Compute
	}
}

// Energy returns the joules to run for the given seconds under the
// paper's conservative whole-run accounting: the full Compute envelope
// for the entire duration, whatever the phase mix. Phase-resolved
// integration lives in trace.EnergyByState.
func (p Profile) Energy(seconds float64) float64 { return p.Compute * seconds }

// EnergyIn returns the joules drawn over the given seconds spent in
// state s.
func (p Profile) EnergyIn(s State, seconds float64) float64 {
	return p.Watts(s) * seconds
}

// EnergyPerOp returns joules per unit of work given a rate in ops/s,
// charged at the Compute envelope like Energy.
func (p Profile) EnergyPerOp(opsPerSecond float64) float64 {
	if opsPerSecond <= 0 {
		return 0
	}
	return p.Compute / opsPerSecond
}

// Scale returns the profile with every state multiplied by f — e.g. the
// per-core share of a node profile (f = 1/cores).
func (p Profile) Scale(f float64) Profile {
	p.Idle *= f
	p.Compute *= f
	p.Memory *= f
	p.Comm *= f
	return p
}

// Validate checks the profile: every state must draw positive power and
// idle must not exceed any active state — an inverted profile is almost
// certainly a transposed spec file.
func (p Profile) Validate() error {
	for _, s := range States() {
		if w := p.Watts(s); w <= 0 {
			return fmt.Errorf("power: profile %s: %s power %g W", p.Name, s, w)
		}
	}
	for _, s := range []State{StateCompute, StateMemory, StateComm} {
		if p.Idle > p.Watts(s) {
			return fmt.Errorf("power: profile %s: idle %g W exceeds %s %g W",
				p.Name, p.Idle, s, p.Watts(s))
		}
	}
	return nil
}

// String describes the profile; the uniform case keeps the historical
// constant-model form.
func (p Profile) String() string {
	if p.IsUniform() {
		return fmt.Sprintf("%s(%.1fW)", p.Name, p.Compute)
	}
	return fmt.Sprintf("%s(idle %.1fW / compute %.1fW / mem %.1fW / comm %.1fW)",
		p.Name, p.Idle, p.Compute, p.Memory, p.Comm)
}
