package power

import (
	"math"
	"testing"
)

var (
	snowball = Uniform("Snowball", 2.5)
	xeon     = Uniform("Xeon", 95)
)

func TestEnergy(t *testing.T) {
	if e := snowball.Energy(10); e != 25 {
		t.Errorf("Energy = %v", e)
	}
	if e := xeon.Energy(0); e != 0 {
		t.Errorf("zero-time energy = %v", e)
	}
}

func TestEnergyPerOp(t *testing.T) {
	if j := snowball.EnergyPerOp(2.5); j != 1 {
		t.Errorf("EnergyPerOp = %v", j)
	}
	if j := snowball.EnergyPerOp(0); j != 0 {
		t.Errorf("EnergyPerOp(0) = %v", j)
	}
}

// Reproduce Table II's Energy Ratio column from the paper's raw numbers.
func TestTable2EnergyRatios(t *testing.T) {
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"LINPACK", EnergyRatioByRate(snowball, 620, xeon, 24000), 1.0},
		{"CoreMark", EnergyRatioByRate(snowball, 5877, xeon, 41950), 0.2},
		{"StockFish", EnergyRatioByRate(snowball, 224113, xeon, 4521733), 0.5},
		{"SPECFEM3D", EnergyRatioByTime(snowball, 186.8, xeon, 23.5), 0.2},
		{"BigDFT", EnergyRatioByTime(snowball, 420.4, xeon, 18.1), 0.6},
	}
	for _, c := range cases {
		if math.Abs(c.got-c.want) > 0.07 {
			t.Errorf("%s energy ratio = %.3f, want ~%.1f", c.name, c.got, c.want)
		}
	}
}

func TestEnergyRatioZeroReference(t *testing.T) {
	if r := EnergyRatioByTime(snowball, 10, Profile{}, 0); r != 0 {
		t.Errorf("ratio with zero reference = %v", r)
	}
	if r := EnergyRatioByRate(snowball, 10, xeon, 0); r != 0 {
		t.Errorf("rate ratio with zero reference = %v", r)
	}
}

func TestGFLOPSPerWatt(t *testing.T) {
	// Paper intro: ~2 GFLOPS/W for the 2012 leader.
	if g := GFLOPSPerWatt(16.3e15, 7.9e6); math.Abs(g-2.06) > 0.05 {
		t.Errorf("Sequoia-class efficiency = %v", g)
	}
	if GFLOPSPerWatt(1, 0) != 0 {
		t.Error("zero watts should yield 0")
	}
}

// Paper intro: exaflop at 20 MW needs 50 GFLOPS/W, ~25x the 2012 state
// of the art.
func TestExaflopBudget(t *testing.T) {
	b := NewExaflopBudget(1e18, 20e6, 2.0)
	if b.RequiredGFperW != 50 {
		t.Errorf("required = %v GF/W, want 50", b.RequiredGFperW)
	}
	if b.ImprovementGap != 25 {
		t.Errorf("gap = %v, want 25", b.ImprovementGap)
	}
	b0 := NewExaflopBudget(1e18, 20e6, 0)
	if b0.ImprovementGap != 0 {
		t.Error("zero current efficiency should yield zero gap")
	}
}

// The Mont-Blanc perspective (§VI.A): Exynos 5 at ~100 GFLOPS / 5 W
// would reach 5-7 GFLOPS/W at the node level even after overheads.
func TestExynosPerspective(t *testing.T) {
	g := GFLOPSPerWatt(100e9, 5)
	if g != 20 {
		t.Errorf("Exynos5 peak efficiency = %v, want 20", g)
	}
	withOverheads := GFLOPSPerWatt(100e9, 5+10) // network+cooling+storage
	if withOverheads < 5 {
		t.Errorf("even with overheads should stay above 5 GF/W, got %v", withOverheads)
	}
}
