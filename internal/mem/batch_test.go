package mem

import "testing"

// TranslateRun must be exactly equivalent to n consecutive Translate
// calls on addresses of one page: same physical address, same first-
// access cost, same hit/miss counters, same LRU state afterwards.
func TestTranslateRunMatchesScalar(t *testing.T) {
	build := func() (*TLB, *TLB) {
		return NewTLB(4, 30, NewRandomMapper(3, 64)), NewTLB(4, 30, NewRandomMapper(3, 64))
	}
	scalar, batched := build()
	pages := []uint64{0, 1, 2, 5, 1, 0, 9, 2, 5, 5, 0, 7, 8, 9, 1}
	for _, vpn := range pages {
		for _, n := range []int{1, 2, 7} {
			base := vpn * PageSize
			wantPA, wantCyc := scalar.Translate(base)
			for i := 1; i < n; i++ {
				if _, c := scalar.Translate(base + uint64(i)*8); c != 0 {
					t.Fatalf("vpn %d: follow-up translate cost %d, want 0", vpn, c)
				}
			}
			gotPA, gotCyc := batched.TranslateRun(base, n)
			if wantPA != gotPA || wantCyc != gotCyc {
				t.Fatalf("vpn %d n=%d: (%d,%d) vs (%d,%d)", vpn, n, wantPA, wantCyc, gotPA, gotCyc)
			}
			sh, sm := scalar.Stats()
			bh, bm := batched.Stats()
			if sh != bh || sm != bm {
				t.Fatalf("vpn %d n=%d: counters diverge %d/%d vs %d/%d", vpn, n, sh, sm, bh, bm)
			}
		}
	}
	// The LRU state must match too: further scalar traffic behaves
	// identically on both.
	for vpn := uint64(0); vpn < 12; vpn++ {
		_, a := scalar.Translate(vpn * PageSize)
		_, b := batched.Translate(vpn * PageSize)
		if a != b {
			t.Fatalf("post-run vpn %d: costs diverge %d vs %d", vpn, a, b)
		}
	}
}

// A pass-through TLB (no entries, or no mapper) keeps TranslateRun
// working as a plain translation.
func TestTranslateRunPassThrough(t *testing.T) {
	identity := NewTLB(0, 0, nil)
	if pa, c := identity.TranslateRun(12345, 10); pa != 12345 || c != 0 {
		t.Fatalf("identity: (%d,%d)", pa, c)
	}
	mapped := NewTLB(0, 30, NewContiguousMapper(1<<20))
	if pa, c := mapped.TranslateRun(100, 5); pa != 1<<20+100 || c != 0 {
		t.Fatalf("disabled TLB with mapper: (%d,%d)", pa, c)
	}
	if h, m := mapped.Stats(); h != 0 || m != 0 {
		t.Fatalf("pass-through TLB counted %d/%d", h, m)
	}
}

// ResetStats zeroes the counters but keeps translations warm, unlike
// Flush which drops both.
func TestTLBResetStatsKeepsEntries(t *testing.T) {
	tlb := NewTLB(4, 30, NewRandomMapper(1, 64))
	tlb.Translate(0)
	tlb.Translate(PageSize)
	tlb.ResetStats()
	if h, m := tlb.Stats(); h != 0 || m != 0 {
		t.Fatalf("counters survived reset: %d/%d", h, m)
	}
	if _, c := tlb.Translate(8); c != 0 {
		t.Fatal("warm entry missed after ResetStats")
	}
	tlb.Flush()
	if _, c := tlb.Translate(8); c == 0 {
		t.Fatal("entry survived Flush")
	}
}

// AddStats advances the counters without touching state.
func TestTLBAddStats(t *testing.T) {
	tlb := NewTLB(2, 10, NewContiguousMapper(0))
	tlb.Translate(0)
	before := tlb.AppendState(nil)
	tlb.AddStats(7, 3)
	h, m := tlb.Stats()
	if h != 7 || m != 4 { // 1 cold miss + 3 added
		t.Fatalf("counters %d/%d, want 7/4", h, m)
	}
	after := tlb.AppendState(nil)
	if len(before) != len(after) {
		t.Fatal("encoding length changed")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("AddStats moved the canonical state")
		}
	}
}

// The canonical encoding has the documented length and tracks LRU
// movement: re-touching an entry reorders ranks and changes the
// encoding, while counters do not appear in it.
func TestTLBAppendState(t *testing.T) {
	tlb := NewTLB(3, 10, NewContiguousMapper(0))
	if got, want := len(tlb.AppendState(nil)), tlb.StateWords(); got != want {
		t.Fatalf("encoded %d words, StateWords says %d", got, want)
	}
	tlb.Translate(0)
	tlb.Translate(PageSize)
	a := tlb.AppendState(nil)
	tlb.Translate(16) // re-touch page 0: LRU order flips
	b := tlb.AppendState(nil)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("LRU reordering not visible in the encoding")
	}
}
