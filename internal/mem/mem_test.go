package mem

import (
	"testing"
	"testing/quick"
)

func TestContiguousMapper(t *testing.T) {
	m := NewContiguousMapper(0x10000)
	if pa := m.Translate(0); pa != 0x10000 {
		t.Errorf("Translate(0) = %#x", pa)
	}
	if pa := m.Translate(123); pa != 0x10000+123 {
		t.Errorf("Translate(123) = %#x", pa)
	}
	// Base must be page aligned even if constructed unaligned.
	m2 := NewContiguousMapper(0x10007)
	if m2.Base%PageSize != 0 {
		t.Errorf("base not aligned: %#x", m2.Base)
	}
}

func TestRandomMapperSticky(t *testing.T) {
	m := NewRandomMapper(42, 1024)
	pa1 := m.Translate(0x3000)
	pa2 := m.Translate(0x3000 + 17)
	if pa1/PageSize != pa2/PageSize {
		t.Error("same virtual page mapped to different physical pages")
	}
	if pa2%PageSize != (0x3000+17)%PageSize {
		t.Error("page offset not preserved")
	}
	// Repeated translation is stable.
	if m.Translate(0x3000) != pa1 {
		t.Error("mapping not sticky")
	}
}

func TestRandomMapperSeedReproducible(t *testing.T) {
	a := NewRandomMapper(7, 4096)
	b := NewRandomMapper(7, 4096)
	for p := uint64(0); p < 64; p++ {
		if a.Translate(p*PageSize) != b.Translate(p*PageSize) {
			t.Fatalf("same seed produced different mapping at page %d", p)
		}
	}
}

func TestRandomMapperResetChangesMapping(t *testing.T) {
	m := NewRandomMapper(7, 1<<16)
	before := make([]uint64, 32)
	for p := range before {
		before[p] = m.Translate(uint64(p) * PageSize)
	}
	m.Reset()
	changed := 0
	for p := range before {
		if m.Translate(uint64(p)*PageSize) != before[p] {
			changed++
		}
	}
	if changed < 16 {
		t.Errorf("Reset changed only %d/32 mappings", changed)
	}
}

func TestPageColors(t *testing.T) {
	// Cortex-A9 L1: 32KB 4-way => way size 8KB => 2 colours.
	if c := PageColors(32<<10, 4); c != 2 {
		t.Errorf("A9 L1 colours = %d, want 2", c)
	}
	// Nehalem L1: 32KB 8-way => way size 4KB => 1 colour (immune).
	if c := PageColors(32<<10, 8); c != 1 {
		t.Errorf("Nehalem L1 colours = %d, want 1", c)
	}
	// L2 512KB 8-way => 16 colours.
	if c := PageColors(512<<10, 8); c != 16 {
		t.Errorf("L2 colours = %d, want 16", c)
	}
	if c := PageColors(1024, 0); c != 0 {
		t.Errorf("zero associativity colours = %d, want 0", c)
	}
}

func TestColorSpreadContiguousIsBalanced(t *testing.T) {
	m := NewContiguousMapper(0)
	spread := ColorSpread(m, 8, 2)
	if spread[0] != 4 || spread[1] != 4 {
		t.Errorf("contiguous spread = %v, want [4 4]", spread)
	}
}

func TestColorSpreadRandomCanSkew(t *testing.T) {
	// With 2 colours and 8 pages, at least one random seed in a small
	// range must produce an unbalanced spread (probability of balance
	// per seed is C(8,4)/2^8 ≈ 27%).
	skewed := false
	for seed := uint64(0); seed < 16 && !skewed; seed++ {
		m := NewRandomMapper(seed, 1<<16)
		spread := ColorSpread(m, 8, 2)
		if MaxColorLoad(spread) >= 6 {
			skewed = true
		}
	}
	if !skewed {
		t.Error("no random seed produced a skewed colour spread; allocator too uniform")
	}
}

func TestColorOf(t *testing.T) {
	if c := ColorOf(0, 2); c != 0 {
		t.Errorf("ColorOf(0) = %d", c)
	}
	if c := ColorOf(PageSize, 2); c != 1 {
		t.Errorf("ColorOf(page 1) = %d", c)
	}
	if c := ColorOf(3*PageSize, 2); c != 1 {
		t.Errorf("ColorOf(page 3) = %d", c)
	}
	if c := ColorOf(12345, 1); c != 0 {
		t.Errorf("single colour must always be 0")
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(4, 30, NewContiguousMapper(0))
	// First touch: miss.
	if _, cyc := tlb.Translate(0); cyc != 30 {
		t.Errorf("first access cost %d, want 30", cyc)
	}
	// Same page: hit.
	if _, cyc := tlb.Translate(100); cyc != 0 {
		t.Errorf("same-page access cost %d, want 0", cyc)
	}
	hits, misses := tlb.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits %d misses", hits, misses)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(2, 30, NewContiguousMapper(0))
	tlb.Translate(0 * PageSize) // miss, load page 0
	tlb.Translate(1 * PageSize) // miss, load page 1
	tlb.Translate(0 * PageSize) // hit page 0 (now MRU)
	tlb.Translate(2 * PageSize) // miss, evicts page 1 (LRU)
	if _, cyc := tlb.Translate(0 * PageSize); cyc != 0 {
		t.Error("page 0 should have survived eviction")
	}
	if _, cyc := tlb.Translate(1 * PageSize); cyc != 30 {
		t.Error("page 1 should have been evicted")
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(4, 30, NewContiguousMapper(0))
	tlb.Translate(0)
	tlb.Flush()
	if _, cyc := tlb.Translate(0); cyc != 30 {
		t.Error("flush did not invalidate entries")
	}
	hits, misses := tlb.Stats()
	if hits != 0 || misses != 1 {
		t.Errorf("stats after flush = %d/%d", hits, misses)
	}
}

func TestTLBDisabled(t *testing.T) {
	tlb := NewTLB(0, 30, NewContiguousMapper(0x1000))
	pa, cyc := tlb.Translate(5)
	if cyc != 0 || pa != 0x1000+5 {
		t.Errorf("disabled TLB: pa=%#x cyc=%d", pa, cyc)
	}
	nilTLB := NewTLB(4, 30, nil)
	if pa, cyc := nilTLB.Translate(5); pa != 5 || cyc != 0 {
		t.Errorf("nil-mapper TLB: pa=%#x cyc=%d", pa, cyc)
	}
}

// Property: translation preserves the page offset for every mapper.
func TestTranslatePreservesOffsetProperty(t *testing.T) {
	f := func(seed uint64, vaRaw uint64) bool {
		va := vaRaw % (1 << 30)
		rm := NewRandomMapper(seed, 1<<16)
		cm := NewContiguousMapper(uint64(seed) * PageSize)
		return rm.Translate(va)%PageSize == va%PageSize &&
			cm.Translate(va)%PageSize == va%PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: TLB translation agrees with the raw mapper for any sequence.
func TestTLBMatchesMapperProperty(t *testing.T) {
	f := func(seed uint64) bool {
		mapper := NewRandomMapper(seed, 1<<14)
		shadow := NewRandomMapper(seed, 1<<14)
		tlb := NewTLB(8, 25, mapper)
		rng := seed
		for i := 0; i < 200; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			va := rng % (1 << 24)
			pa, _ := tlb.Translate(va)
			if pa != shadow.Translate(va) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
