// Package mem models the virtual-memory layer that the paper identifies
// as a major source of irreproducibility on ARM platforms (§V.A.1):
// depending on how the OS allocates physical pages, an array that fits
// the 32 KB L1 cache may or may not map onto conflicting cache sets.
//
// The package provides virtual→physical address translation with
// pluggable page-allocation policies and a small TLB model.
package mem

import (
	"fmt"

	"montblanc/internal/xrand"
)

// PageSize is the page granularity used by all allocators (4 KiB, as on
// both the Snowball's Linaro kernel and the Xeon's Debian kernel).
const PageSize = 4096

// Mapper translates virtual addresses to physical addresses.
//
// Implementations must be page-granular (all addresses within one
// virtual page map into one physical page, offset-preserving) and
// idempotent (translating the same address twice yields the same
// physical address and the same mapper state). The batched access path
// (cache.Hierarchy.AccessRun) relies on both properties to translate
// once per page instead of once per access.
type Mapper interface {
	// Translate returns the physical address backing va, establishing a
	// mapping on first touch.
	Translate(va uint64) uint64
	// Reset drops all mappings, simulating a fresh process.
	Reset()
}

// ContiguousMapper maps virtual pages to consecutive physical pages
// starting at a fixed base: the "lucky" allocation in which page colours
// follow virtual layout and an L1-sized array never conflicts with
// itself. This is the behaviour the paper implicitly assumes on x86
// for warmed-up runs.
type ContiguousMapper struct {
	Base uint64 // physical base address (page aligned)
}

// NewContiguousMapper returns a mapper with physical base base, rounded
// down to a page boundary.
func NewContiguousMapper(base uint64) *ContiguousMapper {
	return &ContiguousMapper{Base: base &^ (PageSize - 1)}
}

// Translate implements Mapper.
func (m *ContiguousMapper) Translate(va uint64) uint64 { return m.Base + va }

// Reset implements Mapper. Contiguous mappings are stateless.
func (m *ContiguousMapper) Reset() {}

// RandomMapper assigns each virtual page a pseudo-random physical page
// on first touch: the "unlucky" ARM behaviour in which nonconsecutive
// physical pages around the L1 size cause conflict misses. Mappings are
// sticky until Reset, reproducing the paper's observation that within
// one run the OS kept reusing the same pages (malloc/free returning the
// same memory), so intra-run noise was low while run-to-run behaviour
// varied wildly.
type RandomMapper struct {
	rng      *xrand.Rand
	seed     uint64
	physPool uint64 // number of physical pages to draw from
	pages    map[uint64]uint64
	nextDraw int
}

// NewRandomMapper returns a mapper drawing physical pages uniformly from
// a pool of poolPages pages, seeded with seed. A fresh seed models a
// fresh boot/run; Reset re-rolls the mapping with a derived seed,
// modelling a new process in the same booted system.
func NewRandomMapper(seed uint64, poolPages int) *RandomMapper {
	if poolPages <= 0 {
		poolPages = 1 << 16 // 256 MiB pool by default
	}
	return &RandomMapper{
		rng:      xrand.New(seed),
		seed:     seed,
		physPool: uint64(poolPages),
		pages:    make(map[uint64]uint64),
	}
}

// Translate implements Mapper.
func (m *RandomMapper) Translate(va uint64) uint64 {
	vpn := va / PageSize
	ppn, ok := m.pages[vpn]
	if !ok {
		ppn = m.rng.Uint64() % m.physPool
		m.pages[vpn] = ppn
	}
	return ppn*PageSize + va%PageSize
}

// Reset implements Mapper: drops mappings and derives a new random
// stream, as a new process image would.
func (m *RandomMapper) Reset() {
	m.nextDraw++
	m.rng = xrand.New(m.seed + uint64(m.nextDraw)*0x9e3779b97f4a7c15)
	m.pages = make(map[uint64]uint64)
}

// PageColors returns the number of distinct page colours for a
// physically-indexed cache of the given size and associativity: the
// number of pages that make up one way. If <= 1 every allocation is
// equivalent and physical placement cannot cause extra conflicts.
func PageColors(cacheSize, associativity int) int {
	if associativity <= 0 {
		return 0
	}
	waySize := cacheSize / associativity
	colors := waySize / PageSize
	if colors < 1 {
		return 1
	}
	return colors
}

// ColorOf returns the page colour of physical address pa for a cache
// with the given number of colours.
func ColorOf(pa uint64, colors int) int {
	if colors <= 1 {
		return 0
	}
	return int((pa / PageSize) % uint64(colors))
}

// ColorSpread reports, for the first nPages pages of a virtual buffer,
// how many pages land on each colour. A perfectly balanced spread means
// no allocation-induced conflicts; heavy skew predicts conflict misses.
func ColorSpread(m Mapper, nPages, colors int) []int {
	counts := make([]int, colors)
	for p := 0; p < nPages; p++ {
		pa := m.Translate(uint64(p) * PageSize)
		counts[ColorOf(pa, colors)]++
	}
	return counts
}

// MaxColorLoad returns the maximum per-colour page count in spread.
func MaxColorLoad(spread []int) int {
	m := 0
	for _, c := range spread {
		if c > m {
			m = c
		}
	}
	return m
}

// TLB models a small fully-associative translation lookaside buffer with
// LRU replacement. It charges MissPenalty cycles per miss and relies on
// a Mapper for the actual translation.
type TLB struct {
	Entries     int
	MissPenalty int // cycles

	mapper  Mapper
	slots   []tlbSlot
	clock   uint64
	hits    uint64
	misses  uint64
	enabled bool
}

type tlbSlot struct {
	vpn   uint64
	ppn   uint64
	valid bool
	used  uint64
}

// NewTLB returns a TLB with the given entry count and miss penalty,
// backed by mapper. A nil mapper or entries <= 0 yields a pass-through
// TLB that never misses (useful to disable the model).
func NewTLB(entries, missPenalty int, mapper Mapper) *TLB {
	t := &TLB{Entries: entries, MissPenalty: missPenalty, mapper: mapper}
	if mapper != nil && entries > 0 {
		t.slots = make([]tlbSlot, entries)
		t.enabled = true
	}
	return t
}

// Translate returns the physical address for va and the cycle cost of
// the translation (0 on hit, MissPenalty on miss).
func (t *TLB) Translate(va uint64) (pa uint64, cycles int) {
	pa, cycles, _ = t.translate(va)
	return pa, cycles
}

// translate is Translate returning also the slot index holding the
// mapping afterwards (-1 when the TLB is pass-through).
func (t *TLB) translate(va uint64) (pa uint64, cycles, slot int) {
	if !t.enabled {
		if t.mapper != nil {
			return t.mapper.Translate(va), 0, -1
		}
		return va, 0, -1
	}
	t.clock++
	vpn := va / PageSize
	lruIdx, lruUsed := 0, ^uint64(0)
	for i := range t.slots {
		s := &t.slots[i]
		if s.valid && s.vpn == vpn {
			s.used = t.clock
			t.hits++
			return s.ppn*PageSize + va%PageSize, 0, i
		}
		if !s.valid {
			lruIdx, lruUsed = i, 0
		} else if s.used < lruUsed {
			lruIdx, lruUsed = i, s.used
		}
	}
	t.misses++
	pa = t.mapper.Translate(va)
	t.slots[lruIdx] = tlbSlot{vpn: vpn, ppn: pa / PageSize, valid: true, used: t.clock}
	return pa, t.MissPenalty, lruIdx
}

// TranslateRun translates the first of n accesses that all fall on the
// page containing va and bulk-accounts the n-1 that follow. It is
// exactly equivalent to n consecutive Translate calls on addresses of
// that page: after the first lookup the page is the most recently used
// entry, so the remaining n-1 lookups are guaranteed hits — they are
// charged as hits, advance the LRU clock, and refresh the slot without
// the per-access scan. It returns the physical address of va and the
// cycle cost of the first translation (the guaranteed hits cost 0).
func (t *TLB) TranslateRun(va uint64, n int) (pa uint64, cycles int) {
	pa, cycles, slot := t.translate(va)
	if slot >= 0 && n > 1 {
		t.clock += uint64(n - 1)
		t.hits += uint64(n - 1)
		t.slots[slot].used = t.clock
	}
	return pa, cycles
}

// Stats returns hit and miss counts since creation or the last Flush.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// ResetStats zeroes the hit/miss counters without touching the cached
// translations (the counter counterpart of a warm cache).
func (t *TLB) ResetStats() { t.hits, t.misses = 0, 0 }

// AddStats bulk-advances the hit/miss counters. It exists for verified
// periodic-pass replay (see internal/cache/CACHE.md): after a pass is
// proven to leave the TLB state at a fixed point, the counter movement
// of further identical passes may be added without re-simulating them.
func (t *TLB) AddStats(hits, misses uint64) {
	t.hits += hits
	t.misses += misses
}

// Flush invalidates all entries and zeroes the counters (context switch).
func (t *TLB) Flush() {
	for i := range t.slots {
		t.slots[i] = tlbSlot{}
	}
	t.hits, t.misses = 0, 0
}

// AppendState appends a canonical encoding of the TLB's replacement
// state to dst and returns the extended slice. Two TLBs with equal
// encodings (and equal configuration and backing mapper state) behave
// identically for any subsequent access sequence: the encoding captures
// each slot's mapping, validity and relative LRU rank, which — together
// with the strictly increasing clock — is all replacement decisions
// depend on. Absolute clock/used values are deliberately excluded so a
// periodic pass reaches a detectable fixed point.
func (t *TLB) AppendState(dst []uint64) []uint64 {
	for i := range t.slots {
		s := &t.slots[i]
		rank := uint64(0)
		for j := range t.slots {
			if t.slots[j].used < s.used {
				rank++
			}
		}
		flags := rank << 1
		if s.valid {
			flags |= 1
		}
		dst = append(dst, s.vpn, s.ppn, flags)
	}
	return dst
}

// StateWords returns the length of the AppendState encoding.
func (t *TLB) StateWords() int { return 3 * len(t.slots) }

// String describes the TLB configuration.
func (t *TLB) String() string {
	if !t.enabled {
		return "TLB(disabled)"
	}
	return fmt.Sprintf("TLB(%d entries, %d-cycle miss)", t.Entries, t.MissPenalty)
}
