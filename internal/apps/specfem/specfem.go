// Package specfem reproduces the SPECFEM3D workload of the paper: a
// continuous-Galerkin spectral-element wave propagation code. It
// contains a real, tested spectral-element kernel (1-D acoustic wave
// equation, degree-4 GLL elements, leapfrog time stepping — the same
// numerics class as SPECFEM3D's per-element operators), the calibrated
// single-node time model behind Table II row 4, and the distributed
// halo-exchange version whose neighbour-only communication pattern gives
// the excellent strong scaling of Figure 3b.
package specfem

import (
	"errors"
	"fmt"
	"math"

	"montblanc/internal/cluster"
	"montblanc/internal/platform"
	"montblanc/internal/simmpi"
	"montblanc/internal/units"
)

// Degree is the spectral-element polynomial degree (SPECFEM's default 4).
const Degree = 4

// nodesPerElem is the number of GLL points per element.
const nodesPerElem = Degree + 1

// gllPoints holds the Gauss-Lobatto-Legendre nodes for degree 4 on
// [-1, 1].
var gllPoints = [nodesPerElem]float64{
	-1, -math.Sqrt(3.0 / 7.0), 0, math.Sqrt(3.0 / 7.0), 1,
}

// gllWeights are the matching quadrature weights.
var gllWeights = [nodesPerElem]float64{
	1.0 / 10, 49.0 / 90, 32.0 / 45, 49.0 / 90, 1.0 / 10,
}

// lagrangeDeriv returns d/dx of Lagrange basis j evaluated at node i.
func lagrangeDeriv(j, i int) float64 {
	// l_j(x) = prod_{m != j} (x - x_m)/(x_j - x_m)
	// l_j'(x_i) = sum_{k != j} 1/(x_j - x_k) * prod_{m != j,k} (x_i - x_m)/(x_j - x_m)
	xi := gllPoints[i]
	xj := gllPoints[j]
	if i == j {
		s := 0.0
		for k := 0; k < nodesPerElem; k++ {
			if k != j {
				s += 1 / (xj - gllPoints[k])
			}
		}
		return s
	}
	num := 1.0
	for m := 0; m < nodesPerElem; m++ {
		if m != j && m != i {
			num *= xi - gllPoints[m]
		}
	}
	den := 1.0
	for m := 0; m < nodesPerElem; m++ {
		if m != j {
			den *= xj - gllPoints[m]
		}
	}
	return num / den
}

// Solver is a 1-D spectral-element acoustic wave solver on [0, L] with
// periodic boundary conditions.
type Solver struct {
	Elems int
	L     float64 // domain length
	C     float64 // wave speed

	nGlobal int
	h       float64 // element size
	// stiff is the element stiffness matrix K[i][j] (reference element,
	// scaled by 2/h); mass is the lumped diagonal global mass matrix.
	stiff [nodesPerElem][nodesPerElem]float64
	mass  []float64

	U []float64 // displacement at global GLL points
	V []float64 // velocity
}

// NewSolver builds a solver with the given element count, domain length
// and wave speed.
func NewSolver(elems int, length, c float64) (*Solver, error) {
	if elems < 2 {
		return nil, errors.New("specfem: need at least two elements")
	}
	if length <= 0 || c <= 0 {
		return nil, errors.New("specfem: non-positive length or wave speed")
	}
	s := &Solver{
		Elems:   elems,
		L:       length,
		C:       c,
		nGlobal: elems * Degree, // periodic: last point wraps to first
		h:       length / float64(elems),
	}
	// Reference stiffness: K[i][j] = sum_k w_k l_i'(x_k) l_j'(x_k),
	// scaled by (2/h) for the mapping (the (h/2) Jacobian and two (2/h)
	// derivative factors combine to 2/h).
	for i := 0; i < nodesPerElem; i++ {
		for j := 0; j < nodesPerElem; j++ {
			sum := 0.0
			for k := 0; k < nodesPerElem; k++ {
				sum += gllWeights[k] * lagrangeDeriv(i, k) * lagrangeDeriv(j, k)
			}
			s.stiff[i][j] = sum * 2 / s.h
		}
	}
	// Lumped mass: M_global[g] += w_i * h/2 assembled over elements.
	s.mass = make([]float64, s.nGlobal)
	for e := 0; e < elems; e++ {
		for i := 0; i < nodesPerElem; i++ {
			g := s.globalIndex(e, i)
			s.mass[g] += gllWeights[i] * s.h / 2
		}
	}
	s.U = make([]float64, s.nGlobal)
	s.V = make([]float64, s.nGlobal)
	return s, nil
}

// globalIndex maps element-local node i of element e to the global
// continuous numbering (shared endpoints, periodic wrap).
func (s *Solver) globalIndex(e, i int) int {
	return (e*Degree + i) % s.nGlobal
}

// X returns the coordinate of global point g.
func (s *Solver) X(g int) float64 {
	e := g / Degree
	i := g % Degree
	return float64(e)*s.h + (gllPoints[i]+1)/2*s.h
}

// SetGaussian initializes the displacement to a Gaussian pulse centered
// at x0 with width sigma, at rest.
func (s *Solver) SetGaussian(x0, sigma float64) {
	for g := 0; g < s.nGlobal; g++ {
		d := s.X(g) - x0
		s.U[g] = math.Exp(-d * d / (2 * sigma * sigma))
		s.V[g] = 0
	}
}

// forces computes F = -c^2 K u assembled over elements.
func (s *Solver) forces(f []float64) {
	for g := range f {
		f[g] = 0
	}
	c2 := s.C * s.C
	var local [nodesPerElem]float64
	for e := 0; e < s.Elems; e++ {
		for i := 0; i < nodesPerElem; i++ {
			local[i] = s.U[s.globalIndex(e, i)]
		}
		for i := 0; i < nodesPerElem; i++ {
			sum := 0.0
			for j := 0; j < nodesPerElem; j++ {
				sum += s.stiff[i][j] * local[j]
			}
			f[s.globalIndex(e, i)] -= c2 * sum
		}
	}
}

// StableDt returns a CFL-safe time step.
func (s *Solver) StableDt() float64 {
	// Minimum GLL spacing within an element scaled to physical size.
	minDx := (gllPoints[1] - gllPoints[0]) / 2 * s.h
	return 0.5 * minDx / s.C
}

// Step advances the solution by dt using velocity-Verlet (leapfrog).
func (s *Solver) Step(dt float64) {
	f := make([]float64, s.nGlobal)
	s.forces(f)
	for g := range s.U {
		a := f[g] / s.mass[g]
		s.V[g] += 0.5 * dt * a
		s.U[g] += dt * s.V[g]
	}
	s.forces(f)
	for g := range s.U {
		a := f[g] / s.mass[g]
		s.V[g] += 0.5 * dt * a
	}
}

// Run advances steps time steps of size dt.
func (s *Solver) Run(steps int, dt float64) {
	for i := 0; i < steps; i++ {
		s.Step(dt)
	}
}

// Energy returns the discrete total energy (kinetic + potential), a
// conserved quantity of the leapfrog scheme.
func (s *Solver) Energy() float64 {
	kin := 0.0
	for g, v := range s.V {
		kin += 0.5 * s.mass[g] * v * v
	}
	pot := 0.0
	c2 := s.C * s.C
	var local [nodesPerElem]float64
	for e := 0; e < s.Elems; e++ {
		for i := 0; i < nodesPerElem; i++ {
			local[i] = s.U[s.globalIndex(e, i)]
		}
		for i := 0; i < nodesPerElem; i++ {
			for j := 0; j < nodesPerElem; j++ {
				pot += 0.5 * c2 * local[i] * s.stiff[i][j] * local[j]
			}
		}
	}
	return kin + pot
}

// FlopsPerElemStep is the per-element, per-step floating point work of
// the 3-D production code (stiffness application over a 5^3 GLL cube
// with three directional contractions): the constant feeding both the
// Table II model and the scaling study.
const FlopsPerElemStep = 5000

// --- Table II model -------------------------------------------------

// scalarFlopsPerCycle is the sustained per-core rate of the unchanged
// Fortran build: gfortran 4.6 emits scalar code, so the Xeon runs far
// below its SSE peak and the Snowball's single-precision VFP is not
// NEON-vectorized either (softfp ABI). Calibrated against Table II:
// 186.8 s vs 23.5 s. The 0.35 figure is the ARMv7 softfp penalty; a
// hard-float aarch64 toolchain has no such handicap, so 64-bit
// platforms land in the server scalar class.
func scalarFlopsPerCycle(p *platform.Platform) float64 {
	if p.ISA == platform.ARM32 {
		return 0.35
	}
	return 0.45
}

// Table II instance characteristics: single-precision flop volume and
// memory traffic of the paper's small test case.
const (
	instanceFlops = 100e9
	instanceBytes = 80e9
)

// SmallInstanceTime returns the modeled wall time of the Table II
// SPECFEM3D instance on platform p: compute at scalar rate plus the
// exposed fraction of the memory traffic.
func SmallInstanceTime(p *platform.Platform) float64 {
	rate := float64(p.Cores) * p.CPU.ClockHz * scalarFlopsPerCycle(p)
	compute := instanceFlops / rate
	memory := instanceBytes / p.MemBandwidth * (1 - p.CPU.MissOverlap)
	return compute + memory
}

// --- Figure 3b: distributed strong scaling ---------------------------

// ScalingConfig parameterizes the distributed run.
type ScalingConfig struct {
	Elems int // total spectral elements (default 98304)
	Steps int // time steps (default 100)
	// HaloBytesPerEdgeElem is the face data exchanged per boundary
	// element per neighbour per step.
	HaloBytesPerEdgeElem int
	// MemoryBytes is the instance footprint; the paper's use case does
	// not fit one Tibidabo node, forcing a 4-core (2-node) baseline.
	MemoryBytes int64
	// SimWorkers selects the simulator scheduler (see
	// cluster.JobConfig.SimWorkers); results are byte-identical at any
	// value.
	SimWorkers int
}

func (c ScalingConfig) withDefaults() ScalingConfig {
	if c.Elems <= 0 {
		// A 512x512-element use case: large enough that compute
		// dominates the (latency-bound) halo exchange out to 200 cores,
		// matching Figure 3b's ~90% efficiency.
		c.Elems = 262144
	}
	if c.Steps <= 0 {
		c.Steps = 100
	}
	if c.HaloBytesPerEdgeElem <= 0 {
		c.HaloBytesPerEdgeElem = 300 // 5x5 face points x 3 fields x 4B
	}
	if c.MemoryBytes <= 0 {
		c.MemoryBytes = 1400 * units.MiB
	}
	return c
}

// grid factors ranks into the most square rows x cols decomposition.
func grid(ranks int) (rows, cols int) {
	rows = int(math.Sqrt(float64(ranks)))
	for rows > 1 && ranks%rows != 0 {
		rows--
	}
	return rows, ranks / rows
}

// kernelEfficiency is the fraction of the platform's SP rate the real
// assembled stiffness kernel reaches.
const kernelEfficiency = 0.7

// TimeDistributed simulates the strong-scaling run on ranks cores: each
// time step computes the local elements and exchanges halos with the
// 2-D grid neighbours (point-to-point only — the pattern that keeps
// SPECFEM3D off the congested switch paths).
func TimeDistributed(c *cluster.Cluster, ranks int, cfg ScalingConfig) (*simmpi.Report, error) {
	return timeDistributed(c, ranks, cfg, false)
}

// TraceDistributed is TimeDistributed with trace collection.
func TraceDistributed(c *cluster.Cluster, ranks int, cfg ScalingConfig) (*simmpi.Report, error) {
	return timeDistributed(c, ranks, cfg, true)
}

func timeDistributed(c *cluster.Cluster, ranks int, cfg ScalingConfig, collectTrace bool) (*simmpi.Report, error) {
	cfg = cfg.withDefaults()
	job := cluster.JobConfig{
		Ranks:           ranks,
		CoreFlopsPerSec: c.CoreFlops(false, kernelEfficiency),
		MemoryBytes:     cfg.MemoryBytes,
		CollectTrace:    collectTrace,
		// Per step: one compute interval plus a send and a recv per
		// grid neighbour (at most four).
		TraceHint:  cfg.Steps * 9,
		SimWorkers: cfg.SimWorkers,
	}
	rows, cols := grid(ranks)
	elemsPerRank := float64(cfg.Elems) / float64(ranks)
	edge := int(math.Sqrt(elemsPerRank))
	if edge < 1 {
		edge = 1
	}
	halo := edge * cfg.HaloBytesPerEdgeElem
	const haloTag = 77
	return c.Run(job, func(p *simmpi.Proc) error {
		r, cl := p.Rank()/cols, p.Rank()%cols
		var neighbours []int
		if r > 0 {
			neighbours = append(neighbours, p.Rank()-cols)
		}
		if r < rows-1 {
			neighbours = append(neighbours, p.Rank()+cols)
		}
		if cl > 0 {
			neighbours = append(neighbours, p.Rank()-1)
		}
		if cl < cols-1 {
			neighbours = append(neighbours, p.Rank()+1)
		}
		// The 2-D grid is bipartite: checkerboard-parity phases stagger
		// the halo traffic (evens send while odds receive, then the
		// reverse), the standard trick that keeps the exchange off the
		// switch buffers — this is why SPECFEM3D never congests.
		evenCell := (r+cl)%2 == 0
		for step := 0; step < cfg.Steps; step++ {
			p.ComputeFlops(elemsPerRank*FlopsPerElemStep, "stiffness")
			tag := haloTag + step%16
			sendAll := func() error {
				for _, nb := range neighbours {
					if err := p.Send(nb, tag, halo); err != nil {
						return err
					}
				}
				return nil
			}
			recvAll := func() error {
				for _, nb := range neighbours {
					if err := p.Recv(nb, tag); err != nil {
						return err
					}
				}
				return nil
			}
			if evenCell {
				if err := sendAll(); err != nil {
					return err
				}
				if err := recvAll(); err != nil {
					return err
				}
			} else {
				if err := recvAll(); err != nil {
					return err
				}
				if err := sendAll(); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// StrongScaling produces the Figure 3b speedup points. The first core
// count is the baseline (the paper uses 4 cores: the instance cannot run
// on fewer than two nodes).
func StrongScaling(c *cluster.Cluster, coreCounts []int, cfg ScalingConfig) ([]cluster.SpeedupPoint, error) {
	points := make([]cluster.SpeedupPoint, 0, len(coreCounts))
	for _, cores := range coreCounts {
		rep, err := TimeDistributed(c, cores, cfg)
		if err != nil {
			return nil, fmt.Errorf("specfem: %d cores: %w", cores, err)
		}
		points = append(points, cluster.SpeedupPoint{
			Cores: cores, Seconds: rep.Seconds, Drops: rep.Drops,
		})
	}
	base := points[0]
	for i := range points {
		points[i].Speedup = base.Seconds / points[i].Seconds * float64(base.Cores)
		points[i].Efficiency = points[i].Speedup / float64(points[i].Cores)
	}
	return points, nil
}
