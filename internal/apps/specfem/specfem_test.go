package specfem

import (
	"math"
	"testing"

	"montblanc/internal/cluster"
	"montblanc/internal/platform"
	"montblanc/internal/power"
)

func TestGLLWeightsSumToTwo(t *testing.T) {
	// Quadrature over [-1, 1] must integrate constants exactly.
	sum := 0.0
	for _, w := range gllWeights {
		sum += w
	}
	if math.Abs(sum-2) > 1e-14 {
		t.Errorf("GLL weight sum = %v, want 2", sum)
	}
}

func TestLagrangeDerivativeRowsSumToZero(t *testing.T) {
	// The derivative of the constant function (sum of all basis
	// functions) is zero at every node.
	for i := 0; i < nodesPerElem; i++ {
		s := 0.0
		for j := 0; j < nodesPerElem; j++ {
			s += lagrangeDeriv(j, i)
		}
		if math.Abs(s) > 1e-12 {
			t.Errorf("derivative row %d sums to %g", i, s)
		}
	}
}

func TestLagrangeDerivativeExactForPolynomials(t *testing.T) {
	// Differentiation matrix must be exact for x^3 (degree < 4).
	for i := 0; i < nodesPerElem; i++ {
		got := 0.0
		for j := 0; j < nodesPerElem; j++ {
			xj := gllPoints[j]
			got += lagrangeDeriv(j, i) * xj * xj * xj
		}
		want := 3 * gllPoints[i] * gllPoints[i]
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("d/dx x^3 at node %d = %v, want %v", i, got, want)
		}
	}
}

func TestSolverValidation(t *testing.T) {
	if _, err := NewSolver(1, 1, 1); err == nil {
		t.Error("single element accepted")
	}
	if _, err := NewSolver(4, -1, 1); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := NewSolver(4, 1, 0); err == nil {
		t.Error("zero wave speed accepted")
	}
}

func TestConstantFieldIsEquilibrium(t *testing.T) {
	s, err := NewSolver(16, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for g := range s.U {
		s.U[g] = 2.5
	}
	s.Run(50, s.StableDt())
	for g, u := range s.U {
		if math.Abs(u-2.5) > 1e-10 {
			t.Fatalf("constant field moved at point %d: %v", g, u)
		}
	}
}

func TestEnergyConservation(t *testing.T) {
	s, err := NewSolver(32, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGaussian(0.5, 0.05)
	e0 := s.Energy()
	if e0 <= 0 {
		t.Fatal("initial energy not positive")
	}
	s.Run(400, s.StableDt())
	e1 := s.Energy()
	if drift := math.Abs(e1-e0) / e0; drift > 0.01 {
		t.Errorf("energy drifted %.4f%% over 400 steps", drift*100)
	}
}

func TestPulsePropagatesAtWaveSpeed(t *testing.T) {
	const c = 2.0
	s, err := NewSolver(64, 1, c)
	if err != nil {
		t.Fatal(err)
	}
	s.SetGaussian(0.25, 0.03)
	dt := s.StableDt()
	elapsed := 0.0
	for elapsed < 0.1 {
		s.Step(dt)
		elapsed += dt
	}
	// A resting Gaussian splits into two pulses moving at +-c; the right
	// one should now be near 0.25 + c*t.
	wantRight := 0.25 + c*elapsed
	// Find the maximum right of the center.
	bestX, bestU := 0.0, -1.0
	for g := 0; g < s.nGlobal; g++ {
		if x := s.X(g); x > 0.3 {
			if s.U[g] > bestU {
				bestU, bestX = s.U[g], x
			}
		}
	}
	if math.Abs(bestX-wantRight) > 0.05 {
		t.Errorf("right pulse at x=%.3f, want ~%.3f", bestX, wantRight)
	}
	if bestU < 0.3 {
		t.Errorf("right pulse amplitude %.3f too small (should be ~0.5)", bestU)
	}
}

func TestStableDtScalesWithElements(t *testing.T) {
	a, _ := NewSolver(16, 1, 1)
	b, _ := NewSolver(32, 1, 1)
	if b.StableDt() >= a.StableDt() {
		t.Error("finer mesh must demand a smaller dt")
	}
}

// Table II row 4: 186.8s on the Snowball vs 23.5s on the Xeon (ratio
// 7.9), energy ratio ~0.2.
func TestTable2SpecfemRow(t *testing.T) {
	snow := SmallInstanceTime(platform.Snowball())
	xeon := SmallInstanceTime(platform.XeonX5550())
	if math.Abs(snow-186.8)/186.8 > 0.10 {
		t.Errorf("Snowball = %.1fs, want ~186.8", snow)
	}
	if math.Abs(xeon-23.5)/23.5 > 0.12 {
		t.Errorf("Xeon = %.1fs, want ~23.5", xeon)
	}
	if ratio := snow / xeon; math.Abs(ratio-7.9)/7.9 > 0.15 {
		t.Errorf("ratio = %.1f, want ~7.9", ratio)
	}
	eRatio := power.EnergyRatioByTime(
		platform.Snowball().Power, snow, platform.XeonX5550().Power, xeon)
	if math.Abs(eRatio-0.2) > 0.07 {
		t.Errorf("energy ratio = %.2f, want ~0.2", eRatio)
	}
}

func TestGridFactorization(t *testing.T) {
	cases := map[int][2]int{
		4: {2, 2}, 8: {2, 4}, 16: {4, 4}, 36: {6, 6}, 96: {8, 12}, 7: {1, 7},
	}
	for ranks, want := range cases {
		r, c := grid(ranks)
		if r*c != ranks {
			t.Errorf("grid(%d) = %dx%d does not cover", ranks, r, c)
		}
		if r != want[0] || c != want[1] {
			t.Errorf("grid(%d) = %dx%d, want %dx%d", ranks, r, c, want[0], want[1])
		}
	}
}

// The memory constraint: the instance cannot run on a single node.
func TestInstanceNeedsTwoNodes(t *testing.T) {
	c, _ := cluster.Tibidabo(8)
	if _, err := TimeDistributed(c, 2, ScalingConfig{}); err == nil {
		t.Error("2 ranks (one node) should fail the 1.4GB memory check")
	}
	if _, err := TimeDistributed(c, 4, ScalingConfig{Steps: 2}); err != nil {
		t.Errorf("4 ranks (two nodes) should work: %v", err)
	}
}

// Figure 3b: strong scaling with ~90% efficiency against the 4-core
// baseline, and zero switch drops (point-to-point only).
func TestFigure3bScaling(t *testing.T) {
	c, err := cluster.Tibidabo(96)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScalingConfig{Steps: 20}
	points, err := StrongScaling(c, []int{4, 16, 64, 192}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	last := points[len(points)-1]
	if last.Efficiency < 0.82 {
		t.Errorf("192-core efficiency = %.3f, want ~0.9", last.Efficiency)
	}
	if last.Efficiency > 1.01 {
		t.Errorf("192-core efficiency = %.3f, superlinear?", last.Efficiency)
	}
	for _, pt := range points {
		if pt.Drops != 0 {
			t.Errorf("%d cores: %d drops; halo exchange must not congest", pt.Cores, pt.Drops)
		}
	}
}

func TestDistributedDeterminism(t *testing.T) {
	c, _ := cluster.Tibidabo(8)
	cfg := ScalingConfig{Steps: 5}
	a, err := TimeDistributed(c, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TimeDistributed(c, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds {
		t.Error("not deterministic")
	}
}
