package coremark

import (
	"math"
	"testing"

	"montblanc/internal/platform"
	"montblanc/internal/power"
	"montblanc/internal/xrand"
)

func TestCrc16KnownValue(t *testing.T) {
	// CRC-16/ARC of "123456789" with init 0 is 0xBB3D.
	crc := uint16(0)
	for _, b := range []byte("123456789") {
		crc = Crc16(b, crc)
	}
	if crc != 0xBB3D {
		t.Errorf("CRC = %#x, want 0xBB3D", crc)
	}
}

func TestCrc16WordOrder(t *testing.T) {
	// Folding a word must equal folding its bytes low-first.
	a := Crc16Word(0x1234, 0xFFFF)
	b := Crc16(0x12, Crc16(0x34, 0xFFFF))
	if a != b {
		t.Errorf("word fold %#x != byte fold %#x", a, b)
	}
}

func TestScanToken(t *testing.T) {
	cases := map[string]scanState{
		"123":    stateInt,
		"0":      stateInt,
		"3.14":   stateFloat,
		"0x1A2b": stateHex,
		"12.3.4": stateInvalid,
		"abc":    stateInvalid,
		"":       stateInvalid,
		"12Z3":   stateInvalid,
		"0xZZ":   stateInvalid,
		"999.":   stateFloat, // trailing dot: still float state
	}
	for tok, want := range cases {
		if got := ScanToken(tok); got != want {
			t.Errorf("ScanToken(%q) = %d, want %d", tok, got, want)
		}
	}
}

func TestRunReproducibleCRC(t *testing.T) {
	a, err := Run(5, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.CRC != b.CRC {
		t.Error("same seed produced different checksums")
	}
	c, err := Run(5, 43)
	if err != nil {
		t.Fatal(err)
	}
	if c.CRC == a.CRC {
		t.Error("different seed produced identical checksum (suspicious)")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(0, 1); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestListBenchDeterministic(t *testing.T) {
	if listBench(64, xrand.New(9)) != listBench(64, xrand.New(9)) {
		t.Error("list workload not deterministic")
	}
}

func TestMatrixBenchDeterministic(t *testing.T) {
	if matrixBench(8, xrand.New(9)) != matrixBench(8, xrand.New(9)) {
		t.Error("matrix workload not deterministic")
	}
}

// Table II row 2: 5877 vs 41950 ops/s, ratio 7.1, energy ratio 0.2.
func TestTable2CoreMarkRow(t *testing.T) {
	snow := Score(platform.Snowball())
	xeon := Score(platform.XeonX5550())
	if math.Abs(snow-5877)/5877 > 0.05 {
		t.Errorf("Snowball = %.0f, want ~5877", snow)
	}
	if math.Abs(xeon-41950)/41950 > 0.05 {
		t.Errorf("Xeon = %.0f, want ~41950", xeon)
	}
	if ratio := xeon / snow; math.Abs(ratio-7.1)/7.1 > 0.10 {
		t.Errorf("ratio = %.2f, want ~7.1", ratio)
	}
	eRatio := power.EnergyRatioByRate(
		platform.Snowball().Power, snow, platform.XeonX5550().Power, xeon)
	if math.Abs(eRatio-0.2) > 0.05 {
		t.Errorf("energy ratio = %.2f, want ~0.2", eRatio)
	}
}

// CoreMark/MHz sanity: the Cortex-A9 delivered ~2.9 CM/MHz, Nehalem ~4.
func TestScorePerMHz(t *testing.T) {
	if cm := ScorePerMHz(platform.Snowball()); cm < 2.5 || cm > 3.5 {
		t.Errorf("A9 CoreMark/MHz = %.2f, want ~2.9", cm)
	}
	if cm := ScorePerMHz(platform.XeonX5550()); cm < 3.5 || cm > 4.5 {
		t.Errorf("Nehalem CoreMark/MHz = %.2f, want ~3.9", cm)
	}
}
