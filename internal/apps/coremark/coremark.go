// Package coremark implements a CoreMark-class benchmark — "a benchmark
// aimed at becoming the industry standard for embedded platforms" — with
// the same three workload classes as EEMBC CoreMark: linked-list
// processing, matrix arithmetic and a state machine, tied together by a
// CRC-16 that doubles as a self-check. A real, runnable implementation
// feeds the Go benchmarks; the calibrated throughput model reproduces
// Table II row 2.
package coremark

import (
	"errors"
	"fmt"

	"montblanc/internal/platform"
	"montblanc/internal/xrand"
)

// --- CRC-16 (CCITT, as CoreMark uses) ---------------------------------

// Crc16 updates a CCITT CRC-16 with one byte.
func Crc16(b byte, crc uint16) uint16 {
	crc ^= uint16(b)
	for i := 0; i < 8; i++ {
		if crc&1 != 0 {
			crc = (crc >> 1) ^ 0xA001
		} else {
			crc >>= 1
		}
	}
	return crc
}

// Crc16Word folds a 16-bit value into the CRC.
func Crc16Word(v uint16, crc uint16) uint16 {
	return Crc16(byte(v>>8), Crc16(byte(v), crc))
}

// --- Workload 1: linked list ------------------------------------------

type listNode struct {
	value int16
	next  *listNode
}

// listBench builds a list, reverses it, then finds values — the memory
// chasing workload.
func listBench(n int, rng *xrand.Rand) uint16 {
	var head *listNode
	for i := 0; i < n; i++ {
		head = &listNode{value: int16(rng.Intn(1 << 14)), next: head}
	}
	// Reverse.
	var rev *listNode
	for head != nil {
		next := head.next
		head.next = rev
		rev = head
		head = next
	}
	// Walk and fold values into a CRC.
	crc := uint16(0xFFFF)
	for n := rev; n != nil; n = n.next {
		crc = Crc16Word(uint16(n.value), crc)
	}
	return crc
}

// --- Workload 2: matrix -----------------------------------------------

// matrixBench multiplies two n x n int16 matrices (with int32
// accumulation as CoreMark does) and CRCs the result.
func matrixBench(n int, rng *xrand.Rand) uint16 {
	a := make([]int16, n*n)
	b := make([]int16, n*n)
	for i := range a {
		a[i] = int16(rng.Intn(256) - 128)
		b[i] = int16(rng.Intn(256) - 128)
	}
	crc := uint16(0xFFFF)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc int32
			for k := 0; k < n; k++ {
				acc += int32(a[i*n+k]) * int32(b[k*n+j])
			}
			crc = Crc16Word(uint16(acc), crc)
		}
	}
	return crc
}

// --- Workload 3: state machine ----------------------------------------

// scanState is the state of the number scanner.
type scanState int

// Scanner states (CoreMark's core_state machine).
const (
	stateStart scanState = iota
	stateInt
	stateFloat
	stateHex
	stateInvalid
)

// ScanToken classifies a token the way CoreMark's state machine does:
// decimal integer, float (digits with one dot), or 0x-prefixed hex.
func ScanToken(tok string) scanState {
	st := stateStart
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		switch st {
		case stateStart:
			switch {
			case c == '0' && i+1 < len(tok) && tok[i+1] == 'x':
				st = stateHex
			case c >= '0' && c <= '9':
				st = stateInt
			default:
				return stateInvalid
			}
		case stateInt:
			switch {
			case c >= '0' && c <= '9':
			case c == '.':
				st = stateFloat
			default:
				return stateInvalid
			}
		case stateFloat:
			if c < '0' || c > '9' {
				return stateInvalid
			}
		case stateHex:
			if c == 'x' {
				continue
			}
			isHex := (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
			if !isHex {
				return stateInvalid
			}
		}
	}
	if st == stateStart {
		return stateInvalid
	}
	return st
}

// stateBench scans generated tokens through the state machine.
func stateBench(n int, rng *xrand.Rand) uint16 {
	crc := uint16(0xFFFF)
	for i := 0; i < n; i++ {
		var tok string
		switch rng.Intn(4) {
		case 0:
			tok = fmt.Sprintf("%d", rng.Intn(100000))
		case 1:
			tok = fmt.Sprintf("%d.%d", rng.Intn(1000), rng.Intn(1000))
		case 2:
			tok = fmt.Sprintf("0x%x", rng.Intn(1<<16))
		default:
			tok = fmt.Sprintf("%dZ%d", rng.Intn(100), rng.Intn(100))
		}
		crc = Crc16Word(uint16(ScanToken(tok)), crc)
	}
	return crc
}

// --- The iteration -----------------------------------------------------

// Result carries the outcome of a run.
type Result struct {
	Iterations int
	CRC        uint16 // combined checksum: must be reproducible
}

// Run executes the given number of CoreMark-class iterations with a
// deterministic seed, returning the fold of all workload CRCs. Each
// iteration runs a list pass (list size 128), an 8x8 matrix multiply and
// 64 state-machine tokens — proportions mirroring CoreMark's profile.
func Run(iterations int, seed uint64) (Result, error) {
	if iterations <= 0 {
		return Result{}, errors.New("coremark: non-positive iteration count")
	}
	rng := xrand.New(seed)
	crc := uint16(0xFFFF)
	for i := 0; i < iterations; i++ {
		crc = Crc16Word(listBench(128, rng), crc)
		crc = Crc16Word(matrixBench(8, rng), crc)
		crc = Crc16Word(stateBench(64, rng), crc)
	}
	return Result{Iterations: iterations, CRC: crc}, nil
}

// --- Table II model -----------------------------------------------------

// instrPerIteration is the calibrated machine-instruction count of one
// CoreMark iteration per ISA (gcc -O3 builds): the x86 build executes
// more machine instructions than the RISC builds, whose counts are
// similar on armv7 and aarch64 — so, deliberately, both ARM ISAs share
// the denser figure. Calibration targets Table II: 5877 ops/s on the
// Snowball, 41950 on the Xeon.
func instrPerIteration(isa platform.ISA) float64 {
	if isa == platform.X8664 {
		return 393100
	}
	return 323300
}

// Score returns the modeled CoreMark throughput of the full node in
// iterations/s — Table II row 2.
func Score(p *platform.Platform) float64 {
	return p.IntThroughput() / instrPerIteration(p.ISA)
}

// ScorePerMHz returns the marketing CoreMark/MHz figure (per core).
func ScorePerMHz(p *platform.Platform) float64 {
	return Score(p) / float64(p.Cores) / (p.CPU.ClockHz / 1e6)
}
