package chess

import "math/bits"

// Move encodes from, to, promotion piece (0 = none) and a kind flag.
type Move uint32

// Move kinds.
const (
	moveNormal = iota
	moveCastle
	moveEnPassant
	moveDouble
)

func newMove(from, to, promo, kind int) Move {
	return Move(from | to<<6 | promo<<12 | kind<<16)
}

// From returns the origin square.
func (m Move) From() int { return int(m) & 63 }

// To returns the destination square.
func (m Move) To() int { return int(m>>6) & 63 }

// Promo returns the promotion piece kind (0 when not a promotion; pawns
// never promote to pawns, so 0 is unambiguous).
func (m Move) Promo() int { return int(m>>12) & 15 }

func (m Move) kind() int { return int(m>>16) & 3 }

// String returns long algebraic notation (e2e4, e7e8q).
func (m Move) String() string {
	s := SquareName(m.From()) + SquareName(m.To())
	if p := m.Promo(); p != 0 {
		s += string(pieceChars[p])
	}
	return s
}

// Precomputed attack tables.
var (
	knightAttacks [64]Bitboard
	kingAttacks   [64]Bitboard
	pawnAttacks   [2][64]Bitboard
)

func init() {
	dirs := func(sq int, deltas [][2]int) Bitboard {
		var bb Bitboard
		r, f := sq/8, sq%8
		for _, d := range deltas {
			nr, nf := r+d[0], f+d[1]
			if nr >= 0 && nr < 8 && nf >= 0 && nf < 8 {
				bb |= bit(nr*8 + nf)
			}
		}
		return bb
	}
	for sq := 0; sq < 64; sq++ {
		knightAttacks[sq] = dirs(sq, [][2]int{
			{2, 1}, {2, -1}, {-2, 1}, {-2, -1}, {1, 2}, {1, -2}, {-1, 2}, {-1, -2},
		})
		kingAttacks[sq] = dirs(sq, [][2]int{
			{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1},
		})
		pawnAttacks[White][sq] = dirs(sq, [][2]int{{1, 1}, {1, -1}})
		pawnAttacks[Black][sq] = dirs(sq, [][2]int{{-1, 1}, {-1, -1}})
	}
}

var bishopDirs = [4][2]int{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}}
var rookDirs = [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}

// slidingAttacks walks rays from sq until blocked by occ.
func slidingAttacks(sq int, occ Bitboard, diag bool) Bitboard {
	var bb Bitboard
	dirSet := rookDirs
	if diag {
		dirSet = bishopDirs
	}
	r0, f0 := sq/8, sq%8
	for _, d := range dirSet {
		r, f := r0+d[0], f0+d[1]
		for r >= 0 && r < 8 && f >= 0 && f < 8 {
			s := r*8 + f
			bb |= bit(s)
			if occ&bit(s) != 0 {
				break
			}
			r += d[0]
			f += d[1]
		}
	}
	return bb
}

// Attacked reports whether square sq is attacked by side c.
func (b *Board) Attacked(sq int, c Color) bool {
	if pawnAttacks[c.Other()][sq]&b.Pieces[c][Pawn] != 0 {
		return true
	}
	if knightAttacks[sq]&b.Pieces[c][Knight] != 0 {
		return true
	}
	if kingAttacks[sq]&b.Pieces[c][King] != 0 {
		return true
	}
	diag := slidingAttacks(sq, b.All, true)
	if diag&(b.Pieces[c][Bishop]|b.Pieces[c][Queen]) != 0 {
		return true
	}
	straight := slidingAttacks(sq, b.All, false)
	return straight&(b.Pieces[c][Rook]|b.Pieces[c][Queen]) != 0
}

// InCheck reports whether side c's king is attacked.
func (b *Board) InCheck(c Color) bool {
	king := bits.TrailingZeros64(uint64(b.Pieces[c][King]))
	return b.Attacked(king, c.Other())
}

// pseudoMoves appends all pseudo-legal moves for the side to move.
func (b *Board) pseudoMoves(out []Move) []Move {
	us, them := b.Side, b.Side.Other()
	own, opp := b.Occ[us], b.Occ[them]

	// Pawns.
	fwd, startRank, promoRank := 8, 1, 7
	if us == Black {
		fwd, startRank, promoRank = -8, 6, 0
	}
	pawns := b.Pieces[us][Pawn]
	for bb := pawns; bb != 0; bb &= bb - 1 {
		from := bits.TrailingZeros64(uint64(bb))
		to := from + fwd
		if to >= 0 && to < 64 && b.All&bit(to) == 0 {
			if to/8 == promoRank {
				for _, p := range []int{Queen, Rook, Bishop, Knight} {
					out = append(out, newMove(from, to, p, moveNormal))
				}
			} else {
				out = append(out, newMove(from, to, 0, moveNormal))
				if from/8 == startRank {
					to2 := to + fwd
					if b.All&bit(to2) == 0 {
						out = append(out, newMove(from, to2, 0, moveDouble))
					}
				}
			}
		}
		for att := pawnAttacks[us][from]; att != 0; att &= att - 1 {
			to := bits.TrailingZeros64(uint64(att))
			if opp&bit(to) != 0 {
				if to/8 == promoRank {
					for _, p := range []int{Queen, Rook, Bishop, Knight} {
						out = append(out, newMove(from, to, p, moveNormal))
					}
				} else {
					out = append(out, newMove(from, to, 0, moveNormal))
				}
			} else if to == b.EP {
				out = append(out, newMove(from, to, 0, moveEnPassant))
			}
		}
	}

	appendTargets := func(from int, targets Bitboard) []Move {
		for t := targets &^ own; t != 0; t &= t - 1 {
			out = append(out, newMove(from, bits.TrailingZeros64(uint64(t)), 0, moveNormal))
		}
		return out
	}
	for bb := b.Pieces[us][Knight]; bb != 0; bb &= bb - 1 {
		from := bits.TrailingZeros64(uint64(bb))
		out = appendTargets(from, knightAttacks[from])
	}
	for bb := b.Pieces[us][Bishop]; bb != 0; bb &= bb - 1 {
		from := bits.TrailingZeros64(uint64(bb))
		out = appendTargets(from, slidingAttacks(from, b.All, true))
	}
	for bb := b.Pieces[us][Rook]; bb != 0; bb &= bb - 1 {
		from := bits.TrailingZeros64(uint64(bb))
		out = appendTargets(from, slidingAttacks(from, b.All, false))
	}
	for bb := b.Pieces[us][Queen]; bb != 0; bb &= bb - 1 {
		from := bits.TrailingZeros64(uint64(bb))
		out = appendTargets(from, slidingAttacks(from, b.All, true)|slidingAttacks(from, b.All, false))
	}
	kingSq := bits.TrailingZeros64(uint64(b.Pieces[us][King]))
	out = appendTargets(kingSq, kingAttacks[kingSq])

	// Castling: rights present, path empty, king path unattacked.
	type castleRule struct {
		right      uint8
		kFrom, kTo int
		empty      []int
		safe       []int
	}
	var rules []castleRule
	if us == White {
		rules = []castleRule{
			{castleWK, 4, 6, []int{5, 6}, []int{4, 5, 6}},
			{castleWQ, 4, 2, []int{1, 2, 3}, []int{4, 3, 2}},
		}
	} else {
		rules = []castleRule{
			{castleBK, 60, 62, []int{61, 62}, []int{60, 61, 62}},
			{castleBQ, 60, 58, []int{57, 58, 59}, []int{60, 59, 58}},
		}
	}
	for _, r := range rules {
		if b.Castle&r.right == 0 {
			continue
		}
		ok := true
		for _, s := range r.empty {
			if b.All&bit(s) != 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, s := range r.safe {
			if b.Attacked(s, them) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, newMove(r.kFrom, r.kTo, 0, moveCastle))
		}
	}
	return out
}

// Make applies a move and returns the resulting position (copy-make).
// The move must come from this position's move generation.
func (b *Board) Make(m Move) Board {
	nb := *b
	us, them := b.Side, b.Side.Other()
	from, to := m.From(), m.To()
	piece := nb.pieceAt(us, from)

	// Capture (including rook capture updating castle rights below).
	if cap := nb.pieceAt(them, to); cap >= 0 {
		nb.remove(them, cap, to)
	}
	nb.remove(us, piece, from)
	placed := piece
	if m.Promo() != 0 {
		placed = m.Promo()
	}
	nb.place(us, placed, to)

	nb.EP = -1
	switch m.kind() {
	case moveDouble:
		nb.EP = (from + to) / 2
	case moveEnPassant:
		capSq := to - 8
		if us == Black {
			capSq = to + 8
		}
		nb.remove(them, Pawn, capSq)
	case moveCastle:
		var rFrom, rTo int
		switch to {
		case 6:
			rFrom, rTo = 7, 5
		case 2:
			rFrom, rTo = 0, 3
		case 62:
			rFrom, rTo = 63, 61
		case 58:
			rFrom, rTo = 56, 59
		}
		nb.remove(us, Rook, rFrom)
		nb.place(us, Rook, rTo)
	}

	// Castling rights decay when king or rooks move or rooks fall.
	clear := func(sq int, right uint8) {
		if from == sq || to == sq {
			nb.Castle &^= right
		}
	}
	if piece == King {
		if us == White {
			nb.Castle &^= castleWK | castleWQ
		} else {
			nb.Castle &^= castleBK | castleBQ
		}
	}
	clear(0, castleWQ)
	clear(7, castleWK)
	clear(56, castleBQ)
	clear(63, castleBK)

	nb.Side = them
	return nb
}

// LegalMoves returns all legal moves in the position.
func (b *Board) LegalMoves() []Move {
	pseudo := b.pseudoMoves(make([]Move, 0, 48))
	legal := pseudo[:0]
	for _, m := range pseudo {
		nb := b.Make(m)
		if !nb.InCheck(b.Side) {
			legal = append(legal, m)
		}
	}
	return legal
}

// Perft counts leaf nodes of the legal move tree to the given depth —
// the standard move-generator correctness and speed benchmark.
func Perft(b *Board, depth int) uint64 {
	if depth == 0 {
		return 1
	}
	moves := b.LegalMoves()
	if depth == 1 {
		return uint64(len(moves))
	}
	var total uint64
	for _, m := range moves {
		nb := b.Make(m)
		total += Perft(&nb, depth-1)
	}
	return total
}
