package chess

import (
	"math/bits"

	"montblanc/internal/platform"
)

// pieceValues in centipawns.
var pieceValues = [pieceKinds]int{100, 320, 330, 500, 900, 0}

// centerBonus rewards central squares, a minimal positional term that
// keeps the search from shuffling rooks.
func centerBonus(sq int) int {
	r, f := sq/8, sq%8
	dr, df := r, f
	if dr > 3 {
		dr = 7 - dr
	}
	if df > 3 {
		df = 7 - df
	}
	return dr + df
}

// Evaluate scores the position in centipawns from the side to move's
// perspective (material plus centralization).
func Evaluate(b *Board) int {
	score := 0
	for c := White; c <= Black; c++ {
		sign := 1
		if c != b.Side {
			sign = -1
		}
		for p := Pawn; p < pieceKinds; p++ {
			for bb := b.Pieces[c][p]; bb != 0; bb &= bb - 1 {
				sq := bits.TrailingZeros64(uint64(bb))
				score += sign * (pieceValues[p] + centerBonus(sq))
			}
		}
	}
	return score
}

const (
	mateScore = 100000
	infScore  = 1 << 20
)

// SearchResult carries the outcome of a fixed-depth search.
type SearchResult struct {
	BestMove Move
	Score    int    // centipawns, side-to-move perspective
	Nodes    uint64 // nodes visited — the Table II "ops" unit
}

// Search runs a fixed-depth negamax with alpha-beta pruning (captures
// ordered first) and returns the best move, its score and the node
// count — the quantity StockFish's bench command reports per second.
func Search(b *Board, depth int) SearchResult {
	res := SearchResult{}
	res.Score = negamax(b, depth, -infScore, infScore, &res.Nodes, &res.BestMove, true)
	return res
}

func negamax(b *Board, depth, alpha, beta int, nodes *uint64, best *Move, root bool) int {
	*nodes++
	if depth == 0 {
		return Evaluate(b)
	}
	moves := b.LegalMoves()
	if len(moves) == 0 {
		if b.InCheck(b.Side) {
			return -mateScore - depth // prefer faster mates
		}
		return 0 // stalemate
	}
	// Order captures first: cheap MVV approximation.
	ordered := make([]Move, 0, len(moves))
	var quiets []Move
	for _, m := range moves {
		if b.Occ[b.Side.Other()]&bit(m.To()) != 0 || m.kind() == moveEnPassant {
			ordered = append(ordered, m)
		} else {
			quiets = append(quiets, m)
		}
	}
	ordered = append(ordered, quiets...)

	for _, m := range ordered {
		nb := b.Make(m)
		score := -negamax(&nb, depth-1, -beta, -alpha, nodes, best, false)
		if score > alpha {
			alpha = score
			if root {
				*best = m
			}
			if alpha >= beta {
				break
			}
		}
	}
	return alpha
}

// --- Table II model ----------------------------------------------------

// instrPerNode is the calibrated machine-instruction cost of visiting
// one search node. A 64-bit build works on native 64-bit bitboards;
// the ARMv7 build emulates every 64-bit operation with instruction
// pairs, roughly two and a third times the work — so the tax keys on
// the ISA's word width, and aarch64 platforms pay the native cost.
// Calibration targets Table II: 224113 nodes/s on the Snowball,
// 4521733 on the Xeon.
func instrPerNode(isa platform.ISA) float64 {
	if isa.Bits() == 64 {
		return 3647
	}
	return 8478
}

// NodesPerSecond returns the modeled whole-node search throughput —
// Table II row 3.
func NodesPerSecond(p *platform.Platform) float64 {
	return p.IntThroughput() / instrPerNode(p.ISA)
}
