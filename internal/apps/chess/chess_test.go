package chess

import (
	"math"
	"strings"
	"testing"

	"montblanc/internal/platform"
	"montblanc/internal/power"
)

func TestFENRoundTripStartPos(t *testing.T) {
	b := StartPos()
	if b.Side != White {
		t.Error("start position side wrong")
	}
	if b.Castle != castleWK|castleWQ|castleBK|castleBQ {
		t.Error("start position castling rights wrong")
	}
	diagram := b.String()
	if !strings.HasPrefix(diagram, "r n b q k b n r") {
		t.Errorf("diagram wrong:\n%s", diagram)
	}
}

func TestFENErrors(t *testing.T) {
	bad := []string{
		"",
		"8/8/8/8/8/8/8/8 w - -", // no kings
		"rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR x KQkq -", // bad side
		"9/8/8/8/8/8/8/4K2k w - -",                             // bad digit
		"4k3/8/8/8/8/8/8/4K3 w ZZ -",                           // bad castling
		"4k3/8/8/8/8/8/8/4K3 w - z9",                           // bad ep square
	}
	for _, fen := range bad {
		if _, err := FromFEN(fen); err == nil {
			t.Errorf("FEN %q accepted", fen)
		}
	}
}

func TestSquareName(t *testing.T) {
	if SquareName(0) != "a1" || SquareName(63) != "h8" || SquareName(28) != "e4" {
		t.Error("square names wrong")
	}
}

// The canonical perft values from the initial position.
func TestPerftStartPos(t *testing.T) {
	want := []uint64{1, 20, 400, 8902, 197281}
	b := StartPos()
	for depth, w := range want {
		if got := Perft(b, depth); got != w {
			t.Errorf("perft(%d) = %d, want %d", depth, got, w)
		}
	}
}

// Kiwipete: the standard torture position for castling, en passant,
// promotions and pins.
func TestPerftKiwipete(t *testing.T) {
	b, err := FromFEN("r3k2r/p1ppqpb1/bn2pnp1/3PN3/1p2P3/2N2Q1p/PPPBBPPP/R3K2R w KQkq -")
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 48, 2039, 97862}
	for depth, w := range want {
		if got := Perft(b, depth); got != w {
			t.Errorf("kiwipete perft(%d) = %d, want %d", depth, got, w)
		}
	}
}

// Position 3 from the Chess Programming Wiki: en-passant discovered
// checks.
func TestPerftPosition3(t *testing.T) {
	b, err := FromFEN("8/2p5/3p4/KP5r/1R3p1k/8/4P1P1/8 w - -")
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 14, 191, 2812, 43238}
	for depth, w := range want {
		if got := Perft(b, depth); got != w {
			t.Errorf("pos3 perft(%d) = %d, want %d", depth, got, w)
		}
	}
}

func TestEnPassantCapture(t *testing.T) {
	// White pawn on e5, black plays d7d5, white captures e5xd6 e.p.
	b, err := FromFEN("4k3/3p4/8/4P3/8/8/8/4K3 b - -")
	if err != nil {
		t.Fatal(err)
	}
	var double Move
	for _, m := range b.LegalMoves() {
		if m.String() == "d7d5" {
			double = m
		}
	}
	if double == 0 {
		t.Fatal("double push not generated")
	}
	nb := b.Make(double)
	if nb.EP < 0 || SquareName(nb.EP) != "d6" {
		t.Fatalf("ep square = %d", nb.EP)
	}
	var ep Move
	for _, m := range nb.LegalMoves() {
		if m.String() == "e5d6" && m.kind() == moveEnPassant {
			ep = m
		}
	}
	if ep == 0 {
		t.Fatal("en passant capture not generated")
	}
	after := nb.Make(ep)
	if after.Pieces[Black][Pawn] != 0 {
		t.Error("captured pawn still on board")
	}
}

func TestCastlingThroughCheckForbidden(t *testing.T) {
	// Black rook on f8 attacks f1: white cannot castle kingside.
	b, err := FromFEN("4kr2/8/8/8/8/8/8/4K2R w K -")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range b.LegalMoves() {
		if m.kind() == moveCastle {
			t.Errorf("castling generated through an attacked square: %v", m)
		}
	}
	// Remove the attack: castling reappears.
	b2, _ := FromFEN("4k3/8/8/8/8/8/8/4K2R w K -")
	found := false
	for _, m := range b2.LegalMoves() {
		if m.kind() == moveCastle {
			found = true
		}
	}
	if !found {
		t.Error("legal castling not generated")
	}
}

func TestPromotionGeneratesAllPieces(t *testing.T) {
	b, err := FromFEN("8/P3k3/8/8/8/8/8/4K3 w - -")
	if err != nil {
		t.Fatal(err)
	}
	promos := map[string]bool{}
	for _, m := range b.LegalMoves() {
		if m.Promo() != 0 {
			promos[m.String()] = true
		}
	}
	for _, want := range []string{"a7a8q", "a7a8r", "a7a8b", "a7a8n"} {
		if !promos[want] {
			t.Errorf("promotion %s not generated", want)
		}
	}
}

func TestSearchFindsMateInOne(t *testing.T) {
	// Back-rank mate: Ra8#.
	b, err := FromFEN("6k1/5ppp/8/8/8/8/8/R3K3 w - -")
	if err != nil {
		t.Fatal(err)
	}
	res := Search(b, 3)
	if res.BestMove.String() != "a1a8" {
		t.Errorf("best move = %v, want a1a8 (mate)", res.BestMove)
	}
	if res.Score < mateScore {
		t.Errorf("score %d does not reflect mate", res.Score)
	}
	if res.Nodes == 0 {
		t.Error("no nodes searched")
	}
}

func TestSearchPrefersCapture(t *testing.T) {
	// White queen can take a free rook.
	b, err := FromFEN("4k3/8/8/3r4/8/3Q4/8/4K3 w - -")
	if err != nil {
		t.Fatal(err)
	}
	res := Search(b, 3)
	if res.BestMove.String() != "d3d5" {
		t.Errorf("best move = %v, want d3d5", res.BestMove)
	}
}

func TestStalemateScoresZero(t *testing.T) {
	// Classic stalemate: black to move, no legal moves, not in check.
	b, err := FromFEN("7k/5Q2/6K1/8/8/8/8/8 b - -")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.LegalMoves()) != 0 {
		t.Fatal("expected stalemate")
	}
	if b.InCheck(Black) {
		t.Fatal("stalemate position in check")
	}
	res := Search(b, 2)
	if res.Score != 0 {
		t.Errorf("stalemate score = %d, want 0", res.Score)
	}
}

func TestEvaluateSymmetry(t *testing.T) {
	b := StartPos()
	if e := Evaluate(b); e != 0 {
		t.Errorf("start position eval = %d, want 0", e)
	}
}

// Table II row 3: 224113 vs 4521733 nodes/s, ratio 20.2, energy 0.5.
func TestTable2StockFishRow(t *testing.T) {
	snow := NodesPerSecond(platform.Snowball())
	xeon := NodesPerSecond(platform.XeonX5550())
	if math.Abs(snow-224113)/224113 > 0.05 {
		t.Errorf("Snowball = %.0f nodes/s, want ~224113", snow)
	}
	if math.Abs(xeon-4521733)/4521733 > 0.05 {
		t.Errorf("Xeon = %.0f nodes/s, want ~4521733", xeon)
	}
	if ratio := xeon / snow; math.Abs(ratio-20.2)/20.2 > 0.10 {
		t.Errorf("ratio = %.1f, want ~20.2", ratio)
	}
	eRatio := power.EnergyRatioByRate(
		platform.Snowball().Power, snow, platform.XeonX5550().Power, xeon)
	if math.Abs(eRatio-0.5) > 0.08 {
		t.Errorf("energy ratio = %.2f, want ~0.5", eRatio)
	}
}

// The 64-bit emulation tax: ARM needs > 2x the instructions per node.
func TestBitboardEmulationTax(t *testing.T) {
	tax := instrPerNode(platform.ARM32) / instrPerNode(platform.X8664)
	if tax < 2 || tax > 3 {
		t.Errorf("instruction tax = %.2f, want 2-3x", tax)
	}
}
