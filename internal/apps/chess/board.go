// Package chess implements the StockFish workload of Table II: a
// bitboard chess engine with full legal move generation, perft
// validation and an alpha-beta search benchmark. Chess engines are the
// paper's proxy for branchy 64-bit integer code — exactly the class
// where the 32-bit ARM pays a double-instruction tax emulating 64-bit
// bitboard operations, giving the 20.2x throughput gap of Table II.
package chess

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

// Color is a side to move.
type Color int

// Sides.
const (
	White Color = iota
	Black
)

// Other returns the opposing side.
func (c Color) Other() Color { return 1 - c }

// Piece kinds.
const (
	Pawn = iota
	Knight
	Bishop
	Rook
	Queen
	King
	pieceKinds
)

// Castling right bits.
const (
	castleWK = 1 << iota
	castleWQ
	castleBK
	castleBQ
)

// Bitboard is a 64-square occupancy set, a1 = bit 0, h8 = bit 63.
type Bitboard uint64

func bit(sq int) Bitboard { return 1 << uint(sq) }

// Board is a complete chess position. It is a value type: Make returns
// a new Board (copy-make), so undo is free.
type Board struct {
	Pieces [2][pieceKinds]Bitboard
	Occ    [2]Bitboard
	All    Bitboard
	Side   Color
	Castle uint8
	EP     int // en-passant target square, -1 when none
}

// pieceAt returns the piece kind on sq for color c, or -1.
func (b *Board) pieceAt(c Color, sq int) int {
	m := bit(sq)
	for p := Pawn; p < pieceKinds; p++ {
		if b.Pieces[c][p]&m != 0 {
			return p
		}
	}
	return -1
}

// place puts a piece on the board (bookkeeping helper).
func (b *Board) place(c Color, piece, sq int) {
	m := bit(sq)
	b.Pieces[c][piece] |= m
	b.Occ[c] |= m
	b.All |= m
}

// remove clears a square.
func (b *Board) remove(c Color, piece, sq int) {
	m := ^bit(sq)
	b.Pieces[c][piece] &= Bitboard(m)
	b.Occ[c] &= Bitboard(m)
	b.All &= Bitboard(m)
}

// StartPos returns the initial chess position.
func StartPos() *Board {
	b, err := FromFEN("rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w KQkq -")
	if err != nil {
		panic("chess: bad start FEN: " + err.Error())
	}
	return b
}

var pieceChars = [pieceKinds]byte{'p', 'n', 'b', 'r', 'q', 'k'}

// FromFEN parses the board, side, castling and en-passant fields of a
// FEN string (move counters are optional and ignored).
func FromFEN(fen string) (*Board, error) {
	fields := strings.Fields(fen)
	if len(fields) < 2 {
		return nil, errors.New("chess: FEN needs at least board and side fields")
	}
	b := &Board{EP: -1}
	rank, file := 7, 0
	for _, ch := range fields[0] {
		switch {
		case ch == '/':
			rank--
			file = 0
			if rank < 0 {
				return nil, errors.New("chess: too many ranks")
			}
		case ch >= '1' && ch <= '8':
			file += int(ch - '0')
		default:
			if file > 7 {
				return nil, fmt.Errorf("chess: rank overflow at %q", ch)
			}
			color := White
			lower := ch
			if ch >= 'a' && ch <= 'z' {
				color = Black
			} else {
				lower = ch - 'A' + 'a'
			}
			piece := -1
			for p, pc := range pieceChars {
				if byte(lower) == pc {
					piece = p
				}
			}
			if piece < 0 {
				return nil, fmt.Errorf("chess: bad piece %q", ch)
			}
			b.place(color, piece, rank*8+file)
			file++
		}
	}
	switch fields[1] {
	case "w":
		b.Side = White
	case "b":
		b.Side = Black
	default:
		return nil, fmt.Errorf("chess: bad side %q", fields[1])
	}
	if len(fields) > 2 && fields[2] != "-" {
		for _, ch := range fields[2] {
			switch ch {
			case 'K':
				b.Castle |= castleWK
			case 'Q':
				b.Castle |= castleWQ
			case 'k':
				b.Castle |= castleBK
			case 'q':
				b.Castle |= castleBQ
			default:
				return nil, fmt.Errorf("chess: bad castling %q", ch)
			}
		}
	}
	if len(fields) > 3 && fields[3] != "-" {
		sq, err := parseSquare(fields[3])
		if err != nil {
			return nil, err
		}
		b.EP = sq
	}
	if bits.OnesCount64(uint64(b.Pieces[White][King])) != 1 ||
		bits.OnesCount64(uint64(b.Pieces[Black][King])) != 1 {
		return nil, errors.New("chess: each side needs exactly one king")
	}
	return b, nil
}

func parseSquare(s string) (int, error) {
	if len(s) != 2 || s[0] < 'a' || s[0] > 'h' || s[1] < '1' || s[1] > '8' {
		return 0, fmt.Errorf("chess: bad square %q", s)
	}
	return int(s[1]-'1')*8 + int(s[0]-'a'), nil
}

// SquareName returns algebraic notation for sq.
func SquareName(sq int) string {
	return string([]byte{byte('a' + sq%8), byte('1' + sq/8)})
}

// String renders the position as an ASCII diagram.
func (b *Board) String() string {
	var sb strings.Builder
	for rank := 7; rank >= 0; rank-- {
		for file := 0; file < 8; file++ {
			sq := rank*8 + file
			ch := byte('.')
			if p := b.pieceAt(White, sq); p >= 0 {
				ch = pieceChars[p] - 'a' + 'A'
			} else if p := b.pieceAt(Black, sq); p >= 0 {
				ch = pieceChars[p]
			}
			sb.WriteByte(ch)
			if file < 7 {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
