package linpack

import (
	"math"
	"testing"
	"testing/quick"

	"montblanc/internal/cluster"
	"montblanc/internal/platform"
	"montblanc/internal/power"
	"montblanc/internal/xrand"
)

func TestSolveRandomSystem(t *testing.T) {
	for _, n := range []int{1, 2, 5, 32, 100} {
		a := RandomMatrix(n, uint64(n))
		b := make([]float64, n)
		rng := xrand.New(uint64(n) + 99)
		for i := range b {
			b[i] = rng.Float64()*2 - 1
		}
		x, err := a.Solve(b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r := Residual(a, x, b); r > 1e-10 {
			t.Errorf("n=%d: residual %g too large", n, r)
		}
	}
}

func TestFactorRequiresPivoting(t *testing.T) {
	// Zero top-left pivot: only partial pivoting can factor this.
	a := NewMatrix(2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	x, err := a.Solve([]float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Solution of [[0,1],[1,1]] x = [2,3] is x = [1, 2].
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Errorf("x = %v, want [1 2]", x)
	}
}

func TestFactorSingular(t *testing.T) {
	a := NewMatrix(3) // all zeros
	if _, err := a.Factor(); err == nil {
		t.Error("singular matrix factored")
	}
}

func TestSolveBadRHS(t *testing.T) {
	a := RandomMatrix(4, 1)
	if _, err := a.Solve(make([]float64, 3)); err == nil {
		t.Error("mismatched rhs accepted")
	}
}

func TestSolveDoesNotMutate(t *testing.T) {
	a := RandomMatrix(8, 3)
	orig := a.Clone()
	b := make([]float64, 8)
	for i := range b {
		b[i] = float64(i)
	}
	if _, err := a.Solve(b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != orig.Data[i] {
			t.Fatal("Solve mutated the matrix")
		}
	}
}

func TestFlopsFormula(t *testing.T) {
	if f := Flops(100); f != 2.0/3.0*1e6+2e4 {
		t.Errorf("Flops(100) = %v", f)
	}
}

// Property: A * Solve(A, b) == b for well-conditioned random systems.
func TestSolveInverseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(24)
		a := RandomMatrix(n, seed)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		x, err := a.Solve(b)
		if err != nil {
			return false
		}
		return Residual(a, x, b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Table II row 1: 620 MFLOPS on the Snowball, 24000 on the Xeon,
// ratio 38.7, energy ratio 1.0.
func TestTable2LinpackRow(t *testing.T) {
	snow := Mflops(platform.Snowball())
	xeon := Mflops(platform.XeonX5550())
	if math.Abs(snow-620)/620 > 0.10 {
		t.Errorf("Snowball = %.0f MFLOPS, want ~620", snow)
	}
	if math.Abs(xeon-24000)/24000 > 0.10 {
		t.Errorf("Xeon = %.0f MFLOPS, want ~24000", xeon)
	}
	ratio := xeon / snow
	if math.Abs(ratio-38.7)/38.7 > 0.15 {
		t.Errorf("ratio = %.1f, want ~38.7", ratio)
	}
	eRatio := power.EnergyRatioByRate(
		platform.Snowball().Power, snow, platform.XeonX5550().Power, xeon)
	if math.Abs(eRatio-1.0) > 0.15 {
		t.Errorf("energy ratio = %.2f, want ~1.0", eRatio)
	}
}

func TestSolveTimeScalesCubed(t *testing.T) {
	p := platform.Snowball()
	t1 := SolveTime(p, 1000)
	t2 := SolveTime(p, 2000)
	if ratio := t2 / t1; ratio < 7.5 || ratio > 8.5 {
		t.Errorf("doubling N scaled time by %.2f, want ~8", ratio)
	}
}

func TestDistributedSmallInstance(t *testing.T) {
	c, err := cluster.Tibidabo(16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScalingConfig{N: 2048, NB: 64}
	points, err := StrongScaling(c, []int{2, 4, 8, 16}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Efficiency decreases with scale but stays reasonable.
	for i := 1; i < len(points); i++ {
		if points[i].Efficiency > points[i-1].Efficiency+0.01 {
			t.Errorf("efficiency rose from %.3f to %.3f at %d cores",
				points[i-1].Efficiency, points[i].Efficiency, points[i].Cores)
		}
	}
	last := points[len(points)-1]
	if last.Efficiency < 0.4 {
		t.Errorf("16-core efficiency %.3f collapsed", last.Efficiency)
	}
	if last.Speedup <= points[0].Speedup {
		t.Error("no speedup at all")
	}
}

func TestDistributedValidation(t *testing.T) {
	c, _ := cluster.Tibidabo(4)
	if _, err := TimeDistributed(c, 2, ScalingConfig{N: 1000, NB: 64}); err == nil {
		t.Error("N not multiple of NB accepted")
	}
	// Default instance (3.4GB) cannot fit two nodes.
	if _, err := TimeDistributed(c, 4, ScalingConfig{}); err == nil {
		t.Error("memory oversubscription accepted")
	}
}

func TestDistributedDeterminism(t *testing.T) {
	c, _ := cluster.Tibidabo(8)
	cfg := ScalingConfig{N: 1024, NB: 64}
	a, err := TimeDistributed(c, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TimeDistributed(c, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds {
		t.Error("distributed LU not deterministic")
	}
}

func TestLUEfficiencyOrdering(t *testing.T) {
	if LUEfficiency(platform.Snowball()) >= LUEfficiency(platform.XeonX5550()) {
		t.Error("in-order core should reach a smaller fraction of peak")
	}
}
