// Package linpack implements the LINPACK benchmark: a dense LU solver
// with partial pivoting (the real algorithm, used by tests and
// benchmarks), the calibrated single-node throughput model behind
// Table II, and a block-cyclic distributed LU over the simulated MPI
// runtime for the Figure 3a strong-scaling study.
package linpack

import (
	"errors"
	"fmt"
	"math"

	"montblanc/internal/cluster"
	"montblanc/internal/platform"
	"montblanc/internal/simmpi"
	"montblanc/internal/xrand"
)

// Matrix is a dense row-major n x n matrix.
type Matrix struct {
	N    int
	Data []float64
}

// NewMatrix allocates an n x n zero matrix.
func NewMatrix(n int) *Matrix { return &Matrix{N: n, Data: make([]float64, n*n)} }

// RandomMatrix returns a well-conditioned random matrix (diagonally
// dominated) for benchmarking, seeded deterministically.
func RandomMatrix(n int, seed uint64) *Matrix {
	rng := xrand.New(seed)
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Data[i*n+j] = rng.Float64() - 0.5
		}
		m.Data[i*n+i] += float64(n) // dominance keeps pivots healthy
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{N: m.N, Data: append([]float64(nil), m.Data...)}
}

// Factor computes an in-place LU factorization with partial pivoting
// (PA = LU) and returns the pivot indices. It fails on singularity.
func (m *Matrix) Factor() ([]int, error) {
	n := m.N
	piv := make([]int, n)
	for k := 0; k < n; k++ {
		// Pivot search in column k.
		p, maxAbs := k, math.Abs(m.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(m.At(i, k)); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs == 0 {
			return nil, fmt.Errorf("linpack: singular matrix at column %d", k)
		}
		piv[k] = p
		if p != k {
			for j := 0; j < n; j++ {
				m.Data[k*n+j], m.Data[p*n+j] = m.Data[p*n+j], m.Data[k*n+j]
			}
		}
		// Eliminate below the pivot.
		inv := 1 / m.At(k, k)
		for i := k + 1; i < n; i++ {
			l := m.At(i, k) * inv
			m.Set(i, k, l)
			if l == 0 {
				continue
			}
			rowI := m.Data[i*n:]
			rowK := m.Data[k*n:]
			for j := k + 1; j < n; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	return piv, nil
}

// Solve solves A x = b using a factorization computed on a copy of m.
func (m *Matrix) Solve(b []float64) ([]float64, error) {
	n := m.N
	if len(b) != n {
		return nil, fmt.Errorf("linpack: rhs length %d != %d", len(b), n)
	}
	lu := m.Clone()
	piv, err := lu.Factor()
	if err != nil {
		return nil, err
	}
	x := append([]float64(nil), b...)
	// Apply pivots.
	for k := 0; k < n; k++ {
		if p := piv[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		row := lu.Data[i*n:]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := lu.Data[i*n:]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// Residual returns the normalized residual ||Ax-b|| / (n ||x||), the
// quantity LINPACK uses to validate a solution.
func Residual(a *Matrix, x, b []float64) float64 {
	n := a.N
	var rNorm, xNorm float64
	for i := 0; i < n; i++ {
		s := -b[i]
		row := a.Data[i*n:]
		for j := 0; j < n; j++ {
			s += row[j] * x[j]
		}
		rNorm += s * s
	}
	for _, v := range x {
		xNorm += v * v
	}
	if xNorm == 0 {
		return math.Sqrt(rNorm)
	}
	return math.Sqrt(rNorm) / (float64(n) * math.Sqrt(xNorm))
}

// Flops returns the floating-point operation count of solving one n x n
// system: 2/3 n^3 + 2 n^2, the standard LINPACK accounting.
func Flops(n int) float64 {
	fn := float64(n)
	return 2.0/3.0*fn*fn*fn + 2*fn*fn
}

// LUEfficiency returns the fraction of the platform's sustained DP rate
// the unchanged-Fortran LINPACK reaches: in-order cores lose more of
// their pipeline to the dependency chains of the unblocked solver.
// Calibration targets Table II: 620 MFLOPS on the Snowball, 24 GFLOPS on
// the Xeon.
func LUEfficiency(p *platform.Platform) float64 {
	if p.CPU.OutOfOrder {
		return 0.98
	}
	return 0.886
}

// Mflops returns the modeled LINPACK throughput of the full node in
// MFLOPS — the Table II row 1 quantity.
func Mflops(p *platform.Platform) float64 {
	return p.SustainedFlops(true, LUEfficiency(p)) / 1e6
}

// SolveTime returns the modeled time to solve an n x n system.
func SolveTime(p *platform.Platform, n int) float64 {
	return Flops(n) / (Mflops(p) * 1e6)
}

// ScalingConfig parameterizes the distributed block LU run.
type ScalingConfig struct {
	N  int // matrix order
	NB int // panel width (block size)
	// SimWorkers selects the simulator scheduler (see
	// cluster.JobConfig.SimWorkers); results are byte-identical at any
	// value.
	SimWorkers int
}

func (c ScalingConfig) withDefaults() ScalingConfig {
	if c.N <= 0 {
		// Sized to Figure 3a: ~3.4 GB of matrix needs four nodes, and
		// compute dominates communication up to ~100 cores.
		c.N = 20480
	}
	if c.NB <= 0 {
		c.NB = 32
	}
	return c
}

// TimeDistributed simulates an HPL-style distributed LU on the cluster:
// column panels are block-cyclic over ranks; each step factors a panel
// on its owner, broadcasts it (pipelined ring, as HPL does), and updates
// the trailing matrix in parallel. It returns the simulated report.
func TimeDistributed(c *cluster.Cluster, ranks int, cfg ScalingConfig) (*simmpi.Report, error) {
	cfg = cfg.withDefaults()
	if cfg.N%cfg.NB != 0 {
		return nil, errors.New("linpack: N must be a multiple of NB")
	}
	coreRate := c.CoreFlops(true, LUEfficiency(c.Node))
	job := cluster.JobConfig{
		Ranks:           ranks,
		CoreFlopsPerSec: coreRate,
		// The matrix dominates memory: 8 N^2 bytes.
		MemoryBytes: int64(8 * cfg.N * cfg.N),
		SimWorkers:  cfg.SimWorkers,
	}
	panels := cfg.N / cfg.NB
	return c.Run(job, func(p *simmpi.Proc) error {
		n, nb := float64(cfg.N), float64(cfg.NB)
		for k := 0; k < panels; k++ {
			rows := n - float64(k)*nb
			owner := k % p.Size()
			if p.Rank() == owner {
				// Panel factorization: ~ rows * nb^2 flops.
				p.ComputeFlops(rows*nb*nb, "panel")
			}
			if err := p.BcastLarge(owner, int(rows*nb*8)); err != nil {
				return err
			}
			// Trailing update: 2 * rows * cols * nb flops split evenly.
			cols := rows - nb
			if cols > 0 {
				p.ComputeFlops(2*rows*cols*nb/float64(p.Size()), "update")
			}
		}
		return p.Barrier()
	})
}

// StrongScaling produces the Figure 3a speedup curve for the given core
// counts.
func StrongScaling(c *cluster.Cluster, coreCounts []int, cfg ScalingConfig) ([]cluster.SpeedupPoint, error) {
	cfg = cfg.withDefaults()
	points := make([]cluster.SpeedupPoint, 0, len(coreCounts))
	for _, cores := range coreCounts {
		rep, err := TimeDistributed(c, cores, cfg)
		if err != nil {
			return nil, err
		}
		points = append(points, cluster.SpeedupPoint{
			Cores: cores, Seconds: rep.Seconds, Drops: rep.Drops,
		})
	}
	base := points[0]
	for i := range points {
		points[i].Speedup = base.Seconds / points[i].Seconds * float64(base.Cores)
		points[i].Efficiency = points[i].Speedup / float64(points[i].Cores)
	}
	return points, nil
}
