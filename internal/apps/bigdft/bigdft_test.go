package bigdft

import (
	"math"
	"testing"

	"montblanc/internal/cluster"
	"montblanc/internal/platform"
	"montblanc/internal/power"
	"montblanc/internal/trace"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(8, 20, 20); err == nil {
		t.Error("grid below filter support accepted")
	}
	g, err := NewGrid(20, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	if g.Points() != 8000 {
		t.Errorf("points = %d", g.Points())
	}
}

// The magicfilter has unit DC gain, so smoothing conserves total mass —
// the physical sanity check of the density iteration.
func TestSmoothConservesMass(t *testing.T) {
	g, err := NewGrid(20, 18, 22)
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(42)
	before := g.Mass()
	if err := g.Smooth(); err != nil {
		t.Fatal(err)
	}
	after := g.Mass()
	if math.Abs(after-before)/math.Abs(before) > 1e-9 {
		t.Errorf("mass changed: %v -> %v", before, after)
	}
}

// Repeated smoothing damps every non-constant mode: the iteration
// converges (relative change shrinks) and the field flattens.
func TestSolveConverges(t *testing.T) {
	g, err := NewGrid(16, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	g.Randomize(7)
	early, err := g.Solve(1)
	if err != nil {
		t.Fatal(err)
	}
	late, err := g.Solve(10)
	if err != nil {
		t.Fatal(err)
	}
	if late >= early {
		t.Errorf("iteration not converging: change %v -> %v", early, late)
	}
	// Field variance must have shrunk toward the mean.
	mean := g.Mass() / float64(g.Points())
	variance := 0.0
	for _, v := range g.Data {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(g.Points())
	if variance > 0.01 {
		t.Errorf("field variance %v still large after smoothing", variance)
	}
}

func TestSolveValidation(t *testing.T) {
	g, _ := NewGrid(16, 16, 16)
	if _, err := g.Solve(0); err == nil {
		t.Error("zero iterations accepted")
	}
}

// Table II row 5: 420.4s vs 18.1s (ratio 23.2 — the worst ARM ratio in
// the table, because BigDFT is double-precision only), energy ratio 0.6.
func TestTable2BigDFTRow(t *testing.T) {
	snow := SmallInstanceTime(platform.Snowball())
	xeon := SmallInstanceTime(platform.XeonX5550())
	if math.Abs(snow-420.4)/420.4 > 0.10 {
		t.Errorf("Snowball = %.1fs, want ~420.4", snow)
	}
	if math.Abs(xeon-18.1)/18.1 > 0.10 {
		t.Errorf("Xeon = %.1fs, want ~18.1", xeon)
	}
	if ratio := snow / xeon; math.Abs(ratio-23.2)/23.2 > 0.15 {
		t.Errorf("ratio = %.1f, want ~23.2", ratio)
	}
	eRatio := power.EnergyRatioByTime(
		platform.Snowball().Power, snow, platform.XeonX5550().Power, xeon)
	if math.Abs(eRatio-0.6) > 0.12 {
		t.Errorf("energy ratio = %.2f, want ~0.6", eRatio)
	}
}

// BigDFT must have the worst time ratio of the Table II applications on
// ARM: double precision cannot use NEON.
func TestBigDFTWorstRatio(t *testing.T) {
	ratio := SmallInstanceTime(platform.Snowball()) / SmallInstanceTime(platform.XeonX5550())
	if ratio < 15 {
		t.Errorf("DP-only penalty too small: ratio %.1f", ratio)
	}
}

// Figure 3c: efficiency starts high and "drops rapidly"; by 36 cores it
// is far below the LINPACK/SPECFEM3D levels at comparable scale.
func TestFigure3cScalingCollapse(t *testing.T) {
	c, err := cluster.Tibidabo(32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScalingConfig{Iters: 5}
	points, err := StrongScaling(c, []int{1, 4, 8, 16, 36}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	get := func(cores int) cluster.SpeedupPoint {
		for _, p := range points {
			if p.Cores == cores {
				return p
			}
		}
		t.Fatalf("missing %d cores", cores)
		return cluster.SpeedupPoint{}
	}
	if e := get(4).Efficiency; e < 0.75 {
		t.Errorf("4-core efficiency %.2f already collapsed", e)
	}
	if e := get(36).Efficiency; e > 0.55 {
		t.Errorf("36-core efficiency %.2f did not collapse", e)
	}
	if get(36).Efficiency >= get(8).Efficiency {
		t.Error("efficiency must decrease with scale")
	}
	// The collapse coincides with switch buffer overruns.
	if get(36).Drops == 0 {
		t.Error("no drops at 36 cores; the Figure 4 mechanism is missing")
	}
	if get(8).Drops != 0 {
		t.Error("drops at 8 cores; rendezvous should protect small scales")
	}
}

// Figure 4: at 36 cores most alltoallv instances are delayed by
// retransmissions; in some all ranks suffer, in others only part.
func TestFigure4DelayedCollectives(t *testing.T) {
	c, err := cluster.Tibidabo(32)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := TraceDistributed(c, 36, ScalingConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("no trace")
	}
	cr := trace.AnalyzeCongestion(rep.Trace, "alltoallv")
	if cr.Instances != 30 { // 10 iterations x 3 transposes
		t.Errorf("instances = %d, want 30", cr.Instances)
	}
	if float64(cr.Delayed) < 0.5*float64(cr.Instances) {
		t.Errorf("delayed = %d of %d; paper says 'most ... are longer and delayed'",
			cr.Delayed, cr.Instances)
	}
	if cr.FullyDelayed == 0 {
		t.Error("no fully-delayed instances ('in some cases all the nodes are delayed')")
	}
	if cr.PartiallyDelayed == 0 {
		t.Error("no partially-delayed instances ('in other, only part of them suffers')")
	}

	// The same instance at 8 cores stays clean.
	small, err := TraceDistributed(c, 8, ScalingConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cr8 := trace.AnalyzeCongestion(small.Trace, "alltoallv"); cr8.Delayed != 0 {
		t.Errorf("8-core run has %d delayed instances", cr8.Delayed)
	}
}

// The ablation of DESIGN.md decision 2: with infinite switch buffers the
// collapse disappears.
func TestAblationInfiniteBuffers(t *testing.T) {
	c1, _ := cluster.Tibidabo(32)
	cfg := ScalingConfig{Iters: 5}
	finite, err := TimeDistributed(c1, 36, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := cluster.Tibidabo(32)
	c2.Net.InfiniteBuffers()
	infinite, err := TimeDistributed(c2, 36, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if infinite.Drops != 0 {
		t.Error("infinite buffers still dropped")
	}
	if finite.Seconds < infinite.Seconds*1.2 {
		t.Errorf("finite buffers (%.3fs) should be >=20%% slower than infinite (%.3fs)",
			finite.Seconds, infinite.Seconds)
	}
}

func TestDistributedDeterminism(t *testing.T) {
	c, _ := cluster.Tibidabo(16)
	cfg := ScalingConfig{Iters: 3}
	a, err := TimeDistributed(c, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TimeDistributed(c, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds || a.Drops != b.Drops {
		t.Error("not deterministic")
	}
}
