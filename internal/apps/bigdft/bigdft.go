// Package bigdft reproduces the BigDFT workload of the paper: an
// electronic-structure code built on Daubechies wavelets whose core
// operation is the magicfilter 3-D convolution, and whose distributed
// form transposes the grid between dimensions with MPI_Alltoallv — the
// communication pattern that the Tibidabo Ethernet switches punished
// (Figures 3c and 4).
//
// The package contains a real iterative density-smoothing solver over
// the magicfilter (tested for conservation and convergence), the
// calibrated Table II row-5 time model, and the distributed simulation
// whose strong scaling collapses once per-peer transpose messages fall
// below the eager threshold and incast drops begin.
package bigdft

import (
	"errors"
	"fmt"
	"math"

	"montblanc/internal/cluster"
	"montblanc/internal/magicfilter"
	"montblanc/internal/platform"
	"montblanc/internal/simmpi"
	"montblanc/internal/xrand"
)

// Grid is a periodic n1 x n2 x n3 scalar field (x fastest).
type Grid struct {
	N1, N2, N3 int
	Data       []float64
}

// NewGrid allocates a zero grid.
func NewGrid(n1, n2, n3 int) (*Grid, error) {
	if n1 < magicfilter.Taps || n2 < magicfilter.Taps || n3 < magicfilter.Taps {
		return nil, fmt.Errorf("bigdft: grid %dx%dx%d below filter support %d",
			n1, n2, n3, magicfilter.Taps)
	}
	return &Grid{N1: n1, N2: n2, N3: n3, Data: make([]float64, n1*n2*n3)}, nil
}

// Points returns the grid size.
func (g *Grid) Points() int { return g.N1 * g.N2 * g.N3 }

// Mass returns the sum over the field — conserved by the magicfilter's
// unit DC gain.
func (g *Grid) Mass() float64 {
	s := 0.0
	for _, v := range g.Data {
		s += v
	}
	return s
}

// Randomize fills the grid with deterministic positive noise.
func (g *Grid) Randomize(seed uint64) {
	rng := xrand.New(seed)
	for i := range g.Data {
		g.Data[i] = rng.Float64()
	}
}

// Smooth applies one magicfilter pass along each dimension, the
// potential-application step of BigDFT's SCF loop.
func (g *Grid) Smooth() error {
	out := make([]float64, len(g.Data))
	if err := magicfilter.Apply3D(out, g.Data, g.N1, g.N2, g.N3); err != nil {
		return err
	}
	copy(g.Data, out)
	return nil
}

// Solve runs iters smoothing iterations and returns the relative change
// of the final iteration (a convergence figure: the field approaches its
// mean, as the filter damps every non-DC mode).
func (g *Grid) Solve(iters int) (float64, error) {
	if iters <= 0 {
		return 0, errors.New("bigdft: non-positive iteration count")
	}
	prev := append([]float64(nil), g.Data...)
	change := 0.0
	for i := 0; i < iters; i++ {
		copy(prev, g.Data)
		if err := g.Smooth(); err != nil {
			return 0, err
		}
		var num, den float64
		for j := range g.Data {
			d := g.Data[j] - prev[j]
			num += d * d
			den += prev[j] * prev[j]
		}
		if den > 0 {
			change = math.Sqrt(num / den)
		}
	}
	return change, nil
}

// --- Table II model ---------------------------------------------------

// Table II instance: double-precision flop volume of the paper's small
// BigDFT case. BigDFT is DP-only, which is what ruins the A9500: its
// NEON unit cannot help, everything runs on the non-pipelined VFP.
const instanceFlops = 260e9

// kernelEfficiency is the fraction of the platform's sustained DP rate
// the magicfilter convolutions reach: BigDFT is hand-optimized for x86,
// where it is cache-blocked but bound by SSE shuffle pressure (0.60 of
// sustained); the unchanged build on ARMv7 runs close to the VFP's
// modest sustained rate (0.88) — an easy target to saturate. Wide
// 64-bit vector units (SSE or NEONv2 alike) are shuffle-bound the same
// way, so aarch64 platforms get the vectorized-kernel figure.
func kernelEfficiency(p *platform.Platform) float64 {
	if p.ISA == platform.ARM32 {
		return 0.88
	}
	return 0.60
}

// SmallInstanceTime returns the modeled wall time of the Table II BigDFT
// instance on platform p.
func SmallInstanceTime(p *platform.Platform) float64 {
	return instanceFlops / p.SustainedFlops(true, kernelEfficiency(p))
}

// --- Figures 3c and 4: distributed run --------------------------------

// ScalingConfig parameterizes the distributed BigDFT simulation.
type ScalingConfig struct {
	GridPoints int // wavelet coefficients (default 100^3)
	Iters      int // SCF iterations (default 10)
	// FlopsPerPoint is the per-point work of one iteration (all
	// convolution passes, kinetic + potential + preconditioner).
	FlopsPerPoint float64
	// JitterPct desynchronizes per-rank compute times by up to this
	// fraction (OS noise), which spreads the congestion across
	// alltoallv instances: some end up fully delayed, some partially —
	// the Figure 4 picture.
	JitterPct float64
	Seed      uint64
	// SimWorkers selects the simulator scheduler (see
	// cluster.JobConfig.SimWorkers); results are byte-identical at any
	// value.
	SimWorkers int
}

func (c ScalingConfig) withDefaults() ScalingConfig {
	if c.GridPoints <= 0 {
		c.GridPoints = 100 * 100 * 100
	}
	if c.Iters <= 0 {
		c.Iters = 10
	}
	if c.FlopsPerPoint <= 0 {
		c.FlopsPerPoint = 475
	}
	if c.JitterPct <= 0 {
		c.JitterPct = 0.06
	}
	return c
}

// TimeDistributed simulates the distributed run on ranks cores: each
// iteration computes the local convolutions and performs three
// transposes (one per dimension), each an Alltoallv with the linear
// schedule OpenMPI's basic module uses. Per-peer message size is
// total/(p^2): at small scale the rendezvous protocol protects the
// switches; past ~16 ranks messages turn eager and incast drops delay
// the collectives.
func TimeDistributed(c *cluster.Cluster, ranks int, cfg ScalingConfig) (*simmpi.Report, error) {
	return timeDistributed(c, ranks, cfg, false)
}

// TraceDistributed is TimeDistributed with trace collection (Figure 4).
func TraceDistributed(c *cluster.Cluster, ranks int, cfg ScalingConfig) (*simmpi.Report, error) {
	return timeDistributed(c, ranks, cfg, true)
}

func timeDistributed(c *cluster.Cluster, ranks int, cfg ScalingConfig, collectTrace bool) (*simmpi.Report, error) {
	cfg = cfg.withDefaults()
	job := cluster.JobConfig{
		Ranks:           ranks,
		CoreFlopsPerSec: c.CoreFlops(true, kernelEfficiency(c.Node)),
		MemoryBytes:     int64(3 * 8 * cfg.GridPoints), // field + two work arrays
		CollectTrace:    collectTrace,
		// Per iteration: one compute interval plus three linear
		// alltoallv transposes, each 2*(ranks-1) send/recv intervals
		// and a collective interval.
		TraceHint:  cfg.Iters * (1 + 3*(2*(ranks-1)+1)),
		SimWorkers: cfg.SimWorkers,
	}
	totalBytes := 8 * cfg.GridPoints
	flopsPerRank := float64(cfg.GridPoints) * cfg.FlopsPerPoint / float64(ranks)
	return c.Run(job, func(p *simmpi.Proc) error {
		rng := xrand.New(cfg.Seed + uint64(p.Rank())*0x9e3779b9)
		counts := make([]int, p.Size())
		perPeer := totalBytes / (p.Size() * p.Size())
		for i := range counts {
			counts[i] = perPeer
		}
		for iter := 0; iter < cfg.Iters; iter++ {
			jitter := 1 + cfg.JitterPct*(rng.Float64()-0.5)*2
			p.ComputeFlops(flopsPerRank*jitter, "convolution")
			for pass := 0; pass < 3; pass++ {
				if err := p.Alltoallv(counts, simmpi.AlltoallvLinear); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// StrongScaling produces the Figure 3c speedup points (baseline = first
// core count; the paper's instance fits a single node).
func StrongScaling(c *cluster.Cluster, coreCounts []int, cfg ScalingConfig) ([]cluster.SpeedupPoint, error) {
	points := make([]cluster.SpeedupPoint, 0, len(coreCounts))
	for _, cores := range coreCounts {
		rep, err := TimeDistributed(c, cores, cfg)
		if err != nil {
			return nil, fmt.Errorf("bigdft: %d cores: %w", cores, err)
		}
		points = append(points, cluster.SpeedupPoint{
			Cores: cores, Seconds: rep.Seconds, Drops: rep.Drops,
		})
	}
	base := points[0]
	for i := range points {
		points[i].Speedup = base.Seconds / points[i].Seconds * float64(base.Cores)
		points[i].Efficiency = points[i].Speedup / float64(points[i].Cores)
	}
	return points, nil
}
