package fault

import (
	"fmt"
	"math"
)

// Policy is a checkpoint/restart policy: how often an application
// checkpoints and what one checkpoint and one restart cost. The
// resilience probe charges both costs to the memory power state
// (checkpoint images stream through DRAM to node-local storage), so
// phase-resolved energy accounting prices the policy for free.
type Policy struct {
	IntervalSeconds   float64 // tau: useful work between checkpoints (> 0)
	CheckpointSeconds float64 // C: cost of writing one checkpoint
	RestartSeconds    float64 // R: cost of reading one back after a crash
}

// Validate reports why the policy is unusable, if it is.
func (p Policy) Validate() error {
	if math.IsNaN(p.IntervalSeconds) || math.IsInf(p.IntervalSeconds, 0) || p.IntervalSeconds <= 0 {
		return fmt.Errorf("fault: checkpoint interval must be > 0 seconds, got %v", p.IntervalSeconds)
	}
	if err := finiteNonNeg("checkpoint cost", p.CheckpointSeconds); err != nil {
		return err
	}
	if err := finiteNonNeg("restart cost", p.RestartSeconds); err != nil {
		return err
	}
	return nil
}

// checkArgs validates the (C, MTBF) pair shared by the interval
// optimizers. The MTBF here is the one the application sees — for a
// coordinated job that is the SYSTEM MTBF (per-node MTBF / nodes),
// since any node's crash stalls the whole job.
func checkArgs(checkpointSeconds, mtbfSeconds float64) error {
	if math.IsNaN(checkpointSeconds) || math.IsInf(checkpointSeconds, 0) || checkpointSeconds <= 0 {
		return fmt.Errorf("fault: checkpoint cost must be > 0 seconds, got %v", checkpointSeconds)
	}
	if math.IsNaN(mtbfSeconds) || math.IsInf(mtbfSeconds, 0) || mtbfSeconds <= 0 {
		return fmt.Errorf("fault: MTBF must be > 0 seconds, got %v", mtbfSeconds)
	}
	return nil
}

// YoungInterval returns Young's first-order optimal checkpoint
// interval, sqrt(2*C*M): the classic balance between checkpoint
// overhead (~C/tau per unit work) and expected rework (~tau/2 per
// failure).
func YoungInterval(checkpointSeconds, mtbfSeconds float64) (float64, error) {
	if err := checkArgs(checkpointSeconds, mtbfSeconds); err != nil {
		return 0, err
	}
	return math.Sqrt(2 * checkpointSeconds * mtbfSeconds), nil
}

// DalyInterval returns Daly's higher-order estimate of the optimal
// checkpoint interval (J. T. Daly, "A higher order estimate of the
// optimum checkpoint interval for restart dumps", FGCS 2006):
//
//	tau = sqrt(2*C*M) * [1 + (1/3)*sqrt(C/(2M)) + (1/9)*(C/(2M))] - C
//
// for C < 2M, and tau = M once checkpoints cost more than the machine
// stays up (the model says: just run).
func DalyInterval(checkpointSeconds, mtbfSeconds float64) (float64, error) {
	if err := checkArgs(checkpointSeconds, mtbfSeconds); err != nil {
		return 0, err
	}
	c, m := checkpointSeconds, mtbfSeconds
	if c >= 2*m {
		return m, nil
	}
	x := c / (2 * m)
	return math.Sqrt(2*c*m)*(1+math.Sqrt(x)/3+x/9) - c, nil
}
