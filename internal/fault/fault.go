// Package fault turns failures into data: deterministic fault
// schedules — node crash/restart windows and transient degradations on
// named fabric links — described as spec-like JSON, validated like
// platform specs, and resolved against a concrete cluster shape into
// the simulator's fault primitives (simmpi.Outage windows and
// network.Degradation windows).
//
// A schedule is either explicit (a list of crash events and link
// faults) or generated: with MTBFSeconds set, each node draws crash
// times from an exponential interarrival process via internal/xrand —
// the only sanctioned randomness — so the same Spec always resolves to
// the same failures. Node n's crash stream depends only on (Seed, n),
// never on the node count, so growing a cluster leaves the existing
// nodes' failures untouched.
//
// FAULT.md documents the schema, the recovery protocol the resilience
// experiments model on top, and the exactness argument for why
// fault-injected runs stay byte-identical at any scheduler worker
// count.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"montblanc/internal/network"
	"montblanc/internal/simmpi"
	"montblanc/internal/xrand"
)

// DefaultDowntime is the restart time charged per crash when a spec
// does not say otherwise: the order of a node reboot plus job rejoin.
const DefaultDowntime = 30.0

// maxResolvedOutages bounds how many outages one schedule may resolve
// to. A dense schedule (tiny MTBF over a long horizon on many nodes)
// is almost always a unit mix-up; failing loudly beats simulating a
// cluster that spends its life rebooting.
const maxResolvedOutages = 1 << 17

// Spec is a fault schedule as data. The zero value is a valid,
// failure-free schedule; JSON specs are validated on load exactly like
// platform specs (unknown fields rejected, hostile numbers refused).
type Spec struct {
	// Name labels the schedule in reports and errors.
	Name string `json:"name,omitempty"`

	// Seed drives the generated part of the schedule via internal/xrand
	// (0 is a valid seed).
	Seed uint64 `json:"seed,omitempty"`

	// MTBFSeconds, when > 0, generates crashes per node with this mean
	// time between failures (exponential interarrivals) over
	// [0, HorizonSeconds). The failure rate is 1/MTBFSeconds.
	MTBFSeconds float64 `json:"mtbf_seconds,omitempty"`

	// HorizonSeconds bounds generated crash times. Zero defers to the
	// horizon hint the resolving caller supplies (experiments pass
	// their estimated makespan).
	HorizonSeconds float64 `json:"horizon_seconds,omitempty"`

	// DowntimeSeconds is the crash-to-restart time; zero means
	// DefaultDowntime.
	DowntimeSeconds float64 `json:"downtime_seconds,omitempty"`

	// Events are explicit crashes, applied in addition to any generated
	// ones.
	Events []Event `json:"events,omitempty"`

	// Links are transient degradation windows on named fabric links
	// (the network builders' names: "node3->sw", "leaf0->root", ...).
	Links []LinkFault `json:"links,omitempty"`

	// CheckpointIntervalSeconds pins the checkpoint interval for the
	// resilience experiments (must be > 0 when set; zero lets each
	// experiment choose its own grid or the Daly optimum).
	CheckpointIntervalSeconds float64 `json:"checkpoint_interval_seconds,omitempty"`
}

// Event is one explicit node crash.
type Event struct {
	Node int     `json:"node"`
	Time float64 `json:"time"`
	// Downtime overrides the spec-level DowntimeSeconds for this crash
	// (zero defers to it).
	Downtime float64 `json:"downtime,omitempty"`
}

// LinkFault is one transient degradation (a flap, a renegotiated
// speed, a lossy cable) on a named link.
type LinkFault struct {
	Link  string  `json:"link"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// BandwidthFactor divides the link bandwidth while the fault is
	// active; >= 1 (zero means 1: a latency-only fault).
	BandwidthFactor float64 `json:"bandwidth_factor,omitempty"`
	// ExtraLatencySeconds is added to every traversal while active.
	ExtraLatencySeconds float64 `json:"extra_latency_seconds,omitempty"`
}

// finiteNonNeg rejects NaN, infinities and negatives with a structured
// error naming the field.
func finiteNonNeg(field string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return fmt.Errorf("fault: %s must be a non-negative finite number, got %v", field, v)
	}
	return nil
}

// Validate reports the first reason the spec is unusable. It is the
// single validation authority: the CLI flags, the service request path
// and the JSON loader all funnel through it, so hostile numbers (NaN
// rates, negative MTBFs, non-positive checkpoint intervals) are
// refused at every entry point with the same structured errors.
func (s *Spec) Validate() error {
	if err := finiteNonNeg("mtbf_seconds", s.MTBFSeconds); err != nil {
		return err
	}
	if err := finiteNonNeg("horizon_seconds", s.HorizonSeconds); err != nil {
		return err
	}
	if err := finiteNonNeg("downtime_seconds", s.DowntimeSeconds); err != nil {
		return err
	}
	if s.CheckpointIntervalSeconds != 0 {
		if math.IsNaN(s.CheckpointIntervalSeconds) || math.IsInf(s.CheckpointIntervalSeconds, 0) ||
			s.CheckpointIntervalSeconds <= 0 {
			return fmt.Errorf("fault: checkpoint_interval_seconds must be > 0 when set, got %v",
				s.CheckpointIntervalSeconds)
		}
	}
	for i, e := range s.Events {
		if e.Node < 0 {
			return fmt.Errorf("fault: events[%d]: negative node %d", i, e.Node)
		}
		if err := finiteNonNeg(fmt.Sprintf("events[%d].time", i), e.Time); err != nil {
			return err
		}
		if err := finiteNonNeg(fmt.Sprintf("events[%d].downtime", i), e.Downtime); err != nil {
			return err
		}
	}
	for i, lf := range s.Links {
		if strings.TrimSpace(lf.Link) == "" {
			return fmt.Errorf("fault: links[%d]: empty link name", i)
		}
		if err := (network.Degradation{
			Start:           lf.Start,
			End:             lf.End,
			BandwidthFactor: lf.BandwidthFactor,
			ExtraLatency:    lf.ExtraLatencySeconds,
		}).Validate(); err != nil {
			return fmt.Errorf("fault: links[%d] (%s): %w", i, lf.Link, err)
		}
	}
	return nil
}

// ParseSpec decodes and validates one JSON fault schedule. Unknown
// fields are rejected, like platform spec files: a typo'd knob must
// fail loudly, not silently leave the cluster failure-free.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("fault: decoding schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpecFile reads and validates a JSON fault schedule from disk.
func LoadSpecFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	return s, nil
}

// downtime returns the restart time one crash costs.
func (s *Spec) downtime(override float64) float64 {
	if override > 0 {
		return override
	}
	if s.DowntimeSeconds > 0 {
		return s.DowntimeSeconds
	}
	return DefaultDowntime
}

// Resolved is a fault schedule bound to a concrete cluster shape:
// outage windows ready for simmpi.Config.Outages and link faults ready
// to apply to a fabric. Resolution is deterministic — the same
// (spec, nodes, horizon) always yields the same Resolved.
type Resolved struct {
	Spec    *Spec
	Nodes   int
	Horizon float64 // the generation horizon actually used (0 if none)
	Outages []simmpi.Outage
}

// Resolve binds the spec to a cluster of the given node count.
// horizonHint bounds generated crash times when the spec does not pin
// its own horizon; callers pass their estimated makespan (with slack).
// Explicit events outside the node range are an error — a schedule
// written for a bigger machine must not silently lose its failures.
func (s *Spec) Resolve(nodes int, horizonHint float64) (*Resolved, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("fault: resolving against %d nodes", nodes)
	}
	if err := finiteNonNeg("horizon hint", horizonHint); err != nil {
		return nil, err
	}
	r := &Resolved{Spec: s, Nodes: nodes}
	for i, e := range s.Events {
		if e.Node >= nodes {
			return nil, fmt.Errorf("fault: events[%d] names node %d, cluster has %d", i, e.Node, nodes)
		}
		d := s.downtime(e.Downtime)
		r.Outages = append(r.Outages, simmpi.Outage{Node: e.Node, Start: e.Time, End: e.Time + d})
	}
	if s.MTBFSeconds > 0 {
		horizon := s.HorizonSeconds
		if horizon <= 0 {
			horizon = horizonHint
		}
		if horizon <= 0 {
			return nil, fmt.Errorf("fault: mtbf_seconds set but no horizon (set horizon_seconds or pass a hint)")
		}
		r.Horizon = horizon
		if expect := horizon / s.MTBFSeconds * float64(nodes); expect > maxResolvedOutages {
			return nil, fmt.Errorf("fault: schedule too dense: ~%.0f expected crashes over %d nodes (max %d) — check the MTBF/horizon units",
				expect, nodes, maxResolvedOutages)
		}
		d := s.downtime(0)
		for node := 0; node < nodes; node++ {
			// One independent stream per node, mixed from (Seed, node) so
			// the stream is invariant in the cluster size.
			rng := xrand.New(s.Seed ^ (uint64(node+1) * 0x9e3779b97f4a7c15))
			t := 0.0
			for {
				t += s.MTBFSeconds * rng.ExpFloat64()
				if t >= horizon {
					break
				}
				r.Outages = append(r.Outages, simmpi.Outage{Node: node, Start: t, End: t + d})
				if len(r.Outages) > maxResolvedOutages {
					return nil, fmt.Errorf("fault: schedule too dense: more than %d outages", maxResolvedOutages)
				}
				t += d // a node cannot fail while it is down
			}
		}
	}
	sort.Slice(r.Outages, func(i, j int) bool {
		a, b := r.Outages[i], r.Outages[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.End < b.End
	})
	return r, nil
}

// Apply schedules the spec's link faults on the fabric. Callers apply
// after any Reset (a reset fabric is failure-free) and before the run.
func (r *Resolved) Apply(net *network.Network) error {
	for i, lf := range r.Spec.Links {
		err := net.DegradeLink(lf.Link, network.Degradation{
			Start:           lf.Start,
			End:             lf.End,
			BandwidthFactor: lf.BandwidthFactor,
			ExtraLatency:    lf.ExtraLatencySeconds,
		})
		if err != nil {
			return fmt.Errorf("fault: links[%d]: %w", i, err)
		}
	}
	return nil
}

// NodeOutages returns one node's outage windows in start order.
func (r *Resolved) NodeOutages(node int) []simmpi.Outage {
	var out []simmpi.Outage
	for _, o := range r.Outages {
		if o.Node == node {
			out = append(out, o)
		}
	}
	return out
}

// CrashesBefore counts outages beginning before t — the failures a run
// of that length actually experienced.
func (r *Resolved) CrashesBefore(t float64) int {
	n := 0
	for _, o := range r.Outages {
		if o.Start < t {
			n++
		}
	}
	return n
}
