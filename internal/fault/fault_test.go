package fault

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"montblanc/internal/network"
)

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"mtbf_seconds": 100, "mtfb_seconds": 5}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("want unknown-field error, got %v", err)
	}
}

func TestParseSpecHostileInputs(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"nan mtbf", `{"mtbf_seconds": "NaN"}`, "decoding"},
		{"negative mtbf", `{"mtbf_seconds": -3600}`, "mtbf_seconds"},
		{"negative horizon", `{"horizon_seconds": -1}`, "horizon_seconds"},
		{"negative downtime", `{"downtime_seconds": -0.5}`, "downtime_seconds"},
		{"zero checkpoint interval", `{"checkpoint_interval_seconds": 0.0}`, ""},
		{"negative checkpoint interval", `{"checkpoint_interval_seconds": -30}`, "checkpoint_interval_seconds"},
		{"negative event node", `{"events": [{"node": -1, "time": 10}]}`, "negative node"},
		{"negative event time", `{"events": [{"node": 0, "time": -10}]}`, "events[0].time"},
		{"negative event downtime", `{"events": [{"node": 0, "time": 10, "downtime": -1}]}`, "events[0].downtime"},
		{"empty link name", `{"links": [{"link": "  ", "start": 0, "end": 1}]}`, "empty link name"},
		{"inverted link window", `{"links": [{"link": "node0->sw", "start": 5, "end": 5}]}`, "links[0]"},
		{"speedup factor", `{"links": [{"link": "node0->sw", "start": 0, "end": 1, "bandwidth_factor": 0.5}]}`, "links[0]"},
		{"negative extra latency", `{"links": [{"link": "node0->sw", "start": 0, "end": 1, "extra_latency_seconds": -1e-6}]}`, "links[0]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.json))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("want ok, got %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestValidateRejectsNaNCheckpointInterval(t *testing.T) {
	s := &Spec{CheckpointIntervalSeconds: math.NaN()}
	if err := s.Validate(); err == nil {
		t.Fatal("NaN checkpoint interval accepted")
	}
	s = &Spec{MTBFSeconds: math.Inf(1)}
	if err := s.Validate(); err == nil {
		t.Fatal("infinite MTBF accepted")
	}
}

func TestResolveExplicitEvents(t *testing.T) {
	s := &Spec{
		DowntimeSeconds: 20,
		Events: []Event{
			{Node: 2, Time: 100},
			{Node: 0, Time: 50, Downtime: 5},
		},
	}
	r, err := s.Resolve(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Outages) != 2 {
		t.Fatalf("want 2 outages, got %d", len(r.Outages))
	}
	// Sorted by start time.
	if r.Outages[0].Node != 0 || r.Outages[0].Start != 50 || r.Outages[0].End != 55 {
		t.Fatalf("first outage wrong: %+v", r.Outages[0])
	}
	if r.Outages[1].Node != 2 || r.Outages[1].Start != 100 || r.Outages[1].End != 120 {
		t.Fatalf("second outage wrong: %+v", r.Outages[1])
	}
	if got := r.CrashesBefore(60); got != 1 {
		t.Fatalf("CrashesBefore(60) = %d, want 1", got)
	}
	if got := r.NodeOutages(2); len(got) != 1 || got[0].Start != 100 {
		t.Fatalf("NodeOutages(2) = %+v", got)
	}
	if got := r.NodeOutages(3); got != nil {
		t.Fatalf("NodeOutages(3) = %+v, want none", got)
	}
}

func TestResolveEventOutOfRange(t *testing.T) {
	s := &Spec{Events: []Event{{Node: 4, Time: 10}}}
	if _, err := s.Resolve(4, 0); err == nil || !strings.Contains(err.Error(), "names node 4") {
		t.Fatalf("want out-of-range error, got %v", err)
	}
}

func TestResolveBadNodesAndHint(t *testing.T) {
	s := &Spec{}
	if _, err := s.Resolve(0, 0); err == nil {
		t.Fatal("resolving against 0 nodes accepted")
	}
	if _, err := s.Resolve(4, math.NaN()); err == nil {
		t.Fatal("NaN horizon hint accepted")
	}
	// MTBF set but no horizon anywhere.
	s = &Spec{MTBFSeconds: 3600}
	if _, err := s.Resolve(4, 0); err == nil || !strings.Contains(err.Error(), "no horizon") {
		t.Fatalf("want no-horizon error, got %v", err)
	}
}

func TestResolveDeterministic(t *testing.T) {
	s := &Spec{Seed: 7, MTBFSeconds: 1000, HorizonSeconds: 10000, DowntimeSeconds: 30}
	a, err := s.Resolve(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Resolve(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Outages, b.Outages) {
		t.Fatal("same spec resolved to different schedules")
	}
	if len(a.Outages) == 0 {
		t.Fatal("expected some generated crashes over 10 MTBFs x 8 nodes")
	}
	for _, o := range a.Outages {
		if o.End != o.Start+30 {
			t.Fatalf("outage [%v, %v), want downtime 30", o.Start, o.End)
		}
		if o.Start < 0 || o.Start >= 10000 {
			t.Fatalf("outage start %v outside horizon", o.Start)
		}
	}
}

func TestResolveNodeStreamsInvariantInClusterSize(t *testing.T) {
	s := &Spec{Seed: 42, MTBFSeconds: 500, HorizonSeconds: 5000}
	small, err := s.Resolve(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	big, err := s.Resolve(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	for node := 0; node < 4; node++ {
		if !reflect.DeepEqual(small.NodeOutages(node), big.NodeOutages(node)) {
			t.Fatalf("node %d crash stream changed with cluster size", node)
		}
	}
}

func TestResolveHorizonHint(t *testing.T) {
	s := &Spec{Seed: 1, MTBFSeconds: 200}
	r, err := s.Resolve(2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Horizon != 1000 {
		t.Fatalf("horizon = %v, want hint 1000", r.Horizon)
	}
	// Spec horizon wins over the hint.
	s.HorizonSeconds = 400
	r, err = s.Resolve(2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Horizon != 400 {
		t.Fatalf("horizon = %v, want spec 400", r.Horizon)
	}
}

func TestResolveDensityGuard(t *testing.T) {
	s := &Spec{MTBFSeconds: 1e-3, HorizonSeconds: 1e6}
	if _, err := s.Resolve(64, 0); err == nil || !strings.Contains(err.Error(), "too dense") {
		t.Fatalf("want density error, got %v", err)
	}
}

func TestApplyLinkFaults(t *testing.T) {
	s := &Spec{Links: []LinkFault{
		{Link: "node0->sw", Start: 10, End: 20, BandwidthFactor: 4},
	}}
	r, err := s.Resolve(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	net := network.Star(4)
	if err := r.Apply(net); err != nil {
		t.Fatal(err)
	}
	// Unknown link name must fail.
	bad := &Spec{Links: []LinkFault{{Link: "no-such-link", Start: 0, End: 1}}}
	rb, err := bad.Resolve(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Apply(net); err == nil || !strings.Contains(err.Error(), "no-such-link") {
		t.Fatalf("want unknown-link error, got %v", err)
	}
}

func TestDowntimeDefaults(t *testing.T) {
	s := &Spec{Events: []Event{{Node: 0, Time: 10}}}
	r, err := s.Resolve(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Outages[0].End - r.Outages[0].Start; got != DefaultDowntime {
		t.Fatalf("default downtime = %v, want %v", got, DefaultDowntime)
	}
}

func TestYoungInterval(t *testing.T) {
	got, err := YoungInterval(60, 3600)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(2 * 60 * 3600)
	if got != want {
		t.Fatalf("YoungInterval = %v, want %v", got, want)
	}
}

func TestDalyInterval(t *testing.T) {
	c, m := 60.0, 3600.0
	got, err := DalyInterval(c, m)
	if err != nil {
		t.Fatal(err)
	}
	x := c / (2 * m)
	want := math.Sqrt(2*c*m)*(1+math.Sqrt(x)/3+x/9) - c
	if got != want {
		t.Fatalf("DalyInterval = %v, want %v", got, want)
	}
	// Daly is a refinement of Young: shorter by roughly C for small C/M.
	young, _ := YoungInterval(c, m)
	if got >= young {
		t.Fatalf("Daly %v should be below Young %v for small C/M", got, young)
	}
	// Degenerate regime: checkpoints cost more than the machine stays up.
	got, err = DalyInterval(100, 40)
	if err != nil {
		t.Fatal(err)
	}
	if got != 40 {
		t.Fatalf("degenerate Daly = %v, want MTBF 40", got)
	}
}

func TestIntervalHelpersHostileInputs(t *testing.T) {
	bad := []struct{ c, m float64 }{
		{math.NaN(), 100}, {100, math.NaN()},
		{math.Inf(1), 100}, {100, math.Inf(1)},
		{0, 100}, {100, 0}, {-1, 100}, {100, -1},
	}
	for _, b := range bad {
		if _, err := YoungInterval(b.c, b.m); err == nil {
			t.Fatalf("YoungInterval(%v, %v) accepted", b.c, b.m)
		}
		if _, err := DalyInterval(b.c, b.m); err == nil {
			t.Fatalf("DalyInterval(%v, %v) accepted", b.c, b.m)
		}
	}
}

func TestPolicyValidate(t *testing.T) {
	good := Policy{IntervalSeconds: 600, CheckpointSeconds: 30, RestartSeconds: 60}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Policy{
		{IntervalSeconds: 0},
		{IntervalSeconds: math.NaN()},
		{IntervalSeconds: 600, CheckpointSeconds: -1},
		{IntervalSeconds: 600, RestartSeconds: math.Inf(1)},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("policy %+v accepted", p)
		}
	}
}

func TestLoadSpecFileMissing(t *testing.T) {
	if _, err := LoadSpecFile("/nonexistent/fault.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
