package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "Table II",
		Headers: []string{"Benchmark", "Snowball", "Xeon", "Ratio"},
	}
	tab.AddRow("LINPACK (MFLOPS)", 620.0, 24000.0, 38.7)
	tab.AddRow("CoreMark (ops/s)", 5877.0, 41950.0, 7.1)
	out := tab.String()
	for _, want := range []string{"Table II", "LINPACK", "620", "24000", "38.70", "7.10"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: every data line has the same length.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var dataLens []int
	for _, l := range lines[1:] {
		dataLens = append(dataLens, len(l))
	}
	for _, n := range dataLens {
		if n != dataLens[0] {
			t.Errorf("ragged table:\n%s", out)
			break
		}
	}
}

func TestTableHandlesMixedTypes(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b", "c"}}
	tab.AddRow(1, "x", 0.25)
	out := tab.String()
	if !strings.Contains(out, "0.2500") {
		t.Errorf("small float format wrong:\n%s", out)
	}
}

func TestChartRendering(t *testing.T) {
	ch := &Chart{Title: "Speedup", XLabel: "cores", YLabel: "speedup", Width: 40, Height: 10}
	xs := []float64{1, 25, 50, 75, 100}
	ch.Add("ideal", '.', xs, xs)
	ch.Add("LINPACK", 'o', xs, []float64{1, 23, 44, 60, 73})
	out := ch.String()
	for _, want := range []string{"Speedup", ".=ideal", "o=LINPACK", "cores: 1 .. 100", "speedup: 1 .. 100"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, ".") {
		t.Error("chart missing markers")
	}
}

func TestChartEmpty(t *testing.T) {
	ch := &Chart{Title: "empty"}
	if out := ch.String(); !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	ch := &Chart{Width: 10, Height: 5}
	ch.Add("flat", 'x', []float64{1, 1, 1}, []float64{2, 2, 2})
	out := ch.String()
	if !strings.Contains(out, "x") {
		t.Errorf("degenerate chart lost its points:\n%s", out)
	}
}

func TestChartCollisionMarker(t *testing.T) {
	ch := &Chart{Width: 10, Height: 5}
	ch.Add("a", 'a', []float64{0, 1}, []float64{0, 1})
	ch.Add("b", 'b', []float64{0, 1}, []float64{0, 1})
	out := ch.String()
	if !strings.Contains(out, "*") {
		t.Errorf("collisions not marked:\n%s", out)
	}
}
