package report

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestFormatFloatEdgeCases(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.NaN(), "NaN"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{0, "0"},
		{-0.0, "0"},
		{1e9, "1000000000"},   // at the integer cutoff: falls to the >=1000 branch
		{2.5e9, "2500000000"}, // large non-integers lose the fraction, not digits
		{-1e12, "-1000000000000"},
		{1e18, "1000000000000000000"},
		{999.994, "999.99"},
		{1234.5, "1234"}, // >=1000: rounded to integer (1234.5 rounds to even)
		{1, "1"},
		{-1.005, "-1.00"},
		{0.00004, "0.0000"}, // underflows the 4-decimal format
		{-0.5, "-0.5000"},
	}
	for _, c := range cases {
		if got := formatFloat(c.in); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTableNonFiniteCells(t *testing.T) {
	tab := &Table{Headers: []string{"metric", "value"}}
	tab.AddRow("nan", math.NaN())
	tab.AddRow("inf", math.Inf(1))
	tab.AddRow("neginf", math.Inf(-1))
	tab.AddRow("huge", 3.2e9)
	out := tab.String()
	for _, want := range []string{"NaN", "+Inf", "-Inf", "3200000000"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Alignment still holds with the odd-width cells.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for _, l := range lines {
		if len(l) != len(lines[0]) {
			t.Fatalf("ragged table with non-finite cells:\n%s", out)
		}
	}
}

func TestEmptyTable(t *testing.T) {
	var tab Table
	out := tab.String() // must not panic
	if out == "" {
		t.Error("empty table rendered nothing at all")
	}
	tab2 := Table{Headers: []string{"a", "b"}}
	out2 := tab2.String()
	if !strings.Contains(out2, "| a ") || !strings.Contains(out2, "| b ") {
		t.Errorf("headers-only table lost its headers:\n%s", out2)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := &Table{Headers: []string{"a"}}
	tab.AddRow("x", "extra1", "extra2")
	tab.AddRow("y")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for _, l := range lines {
		if len(l) != len(lines[0]) {
			t.Fatalf("rows wider than headers break alignment:\n%s", out)
		}
	}
	if !strings.Contains(out, "extra2") {
		t.Errorf("overflow cells dropped:\n%s", out)
	}
}

func TestChartSkipsNonFinitePoints(t *testing.T) {
	ch := &Chart{Width: 20, Height: 8}
	ch.Add("data", 'o',
		[]float64{1, 2, math.NaN(), 4, 5},
		[]float64{1, math.Inf(1), 3, 4, 5})
	out := ch.String() // must not panic on int(NaN) grid indices
	// Ranges come from the finite points only: x 1..5, y 1..5.
	if !strings.Contains(out, "x: 1 .. 5") || !strings.Contains(out, "y: 1 .. 5") {
		t.Errorf("non-finite points corrupted the scale:\n%s", out)
	}
	// The chart with bad points dropped equals the chart of only the
	// finite points.
	clean := &Chart{Width: 20, Height: 8}
	clean.Add("data", 'o', []float64{1, 4, 5}, []float64{1, 4, 5})
	if out != clean.String() {
		t.Errorf("skipping non-finite points changed the finite rendering:\n%s\nvs\n%s",
			out, clean.String())
	}
}

func TestChartAllNonFinite(t *testing.T) {
	ch := &Chart{Title: "void", Width: 10, Height: 4}
	ch.Add("bad", 'x',
		[]float64{math.NaN(), math.Inf(1)},
		[]float64{math.Inf(-1), math.NaN()})
	if out := ch.String(); !strings.Contains(out, "no data") {
		t.Errorf("all-non-finite chart = %q, want no-data notice", out)
	}
}

func TestChartHugeValues(t *testing.T) {
	ch := &Chart{Width: 16, Height: 6}
	ch.Add("big", 'B', []float64{0, 1e9, 2e9}, []float64{0, 5e9, 1e10})
	out := ch.String() // values >= 1e9 must still render and label
	if !strings.Contains(out, "2000000000") || !strings.Contains(out, "10000000000") {
		t.Errorf("axis labels lost large magnitudes:\n%s", out)
	}
	if !strings.Contains(out, "B") {
		t.Errorf("points missing:\n%s", out)
	}
}

func TestEncodeJSON(t *testing.T) {
	var buf bytes.Buffer
	v := map[string]string{"html": "<table> & co"}
	if err := EncodeJSON(&buf, v); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Error("no trailing newline")
	}
	if strings.Contains(out, `\u003c`) {
		t.Errorf("HTML escaping on: %q", out)
	}
	var back map[string]string
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back["html"] != v["html"] {
		t.Errorf("round-trip %q, want %q", back["html"], v["html"])
	}
}
