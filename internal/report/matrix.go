package report

// Matrix renders a labeled cross grid — a row-label column plus one
// column per compared entity — the comparison-matrix form used by the
// cross-platform sweep experiments. It delegates formatting to Table so
// matrices and tables share the exact same cell rendering.
type Matrix struct {
	Title  string
	Corner string // header of the row-label column, e.g. "workload \ platform"
	Cols   []string
	rows   [][]interface{}
}

// AddRow appends one labeled row; values follow Cols order.
func (m *Matrix) AddRow(label string, values ...interface{}) {
	row := make([]interface{}, 0, len(values)+1)
	row = append(row, label)
	row = append(row, values...)
	m.rows = append(m.rows, row)
}

// String renders the matrix as an aligned table.
func (m *Matrix) String() string {
	tab := &Table{
		Title:   m.Title,
		Headers: append([]string{m.Corner}, m.Cols...),
	}
	for _, r := range m.rows {
		tab.AddRow(r...)
	}
	return tab.String()
}
