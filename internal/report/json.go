package report

import (
	"encoding/json"
	"io"
)

// EncodeJSON writes v as indented JSON with a trailing newline, for
// the machine-readable output modes of the drivers. Unlike the default
// encoder it does not escape <, >, & — the output is for terminals and
// tooling, not HTML.
func EncodeJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
