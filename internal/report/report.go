// Package report renders experiment results as aligned ASCII tables and
// scatter/line charts, so every table and figure of the paper can be
// regenerated on a terminal.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple titled grid.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells (stringified with %v).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(&b, "| %-*s ", widths[i], cell)
		}
		b.WriteString("|\n")
	}
	sep := func() {
		for i := 0; i < cols; i++ {
			b.WriteString("+" + strings.Repeat("-", widths[i]+2))
		}
		b.WriteString("+\n")
	}
	sep()
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		sep()
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	sep()
	return b.String()
}

// Series is one named point set of a chart.
type Series struct {
	Name   string
	Marker rune
	X, Y   []float64
}

// Chart is an ASCII scatter/line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 64)
	Height int // plot rows (default 20)
	Series []Series
}

// Add appends a series with the given marker.
func (c *Chart) Add(name string, marker rune, xs, ys []float64) {
	c.Series = append(c.Series, Series{Name: name, Marker: marker, X: xs, Y: ys})
}

// String renders the chart with axes and ranges.
func (c *Chart) String() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		for i := range s.X {
			// Non-finite points cannot be placed on a finite grid:
			// skip them here and below rather than corrupt the scale.
			if !finitePoint(s.X[i], s.Y[i]) {
				continue
			}
			points++
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if points == 0 {
		return c.Title + " (no data)\n"
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}
	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", w))
	}
	for _, s := range c.Series {
		for i := range s.X {
			if !finitePoint(s.X[i], s.Y[i]) {
				continue
			}
			col := clamp(int((s.X[i]-minX)/(maxX-minX)*float64(w-1)), 0, w-1)
			row := clamp(int((s.Y[i]-minY)/(maxY-minY)*float64(h-1)), 0, h-1)
			r := h - 1 - row
			if grid[r][col] == ' ' || grid[r][col] == s.Marker {
				grid[r][col] = s.Marker
			} else {
				grid[r][col] = '*' // collision
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	legend := make([]string, 0, len(c.Series))
	for _, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Marker, s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "[%s]\n", strings.Join(legend, "  "))
	}
	fmt.Fprintf(&b, "%s: %s .. %s\n", orDefault(c.YLabel, "y"), formatFloat(minY), formatFloat(maxY))
	for _, row := range grid {
		fmt.Fprintf(&b, "  |%s\n", string(row))
	}
	fmt.Fprintf(&b, "  +%s\n", strings.Repeat("-", w))
	fmt.Fprintf(&b, "   %s: %s .. %s\n", orDefault(c.XLabel, "x"), formatFloat(minX), formatFloat(maxX))
	return b.String()
}

func finitePoint(x, y float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0) && !math.IsNaN(y) && !math.IsInf(y, 0)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}
