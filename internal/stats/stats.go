// Package stats provides the descriptive statistics, regressions and
// mode analyses used throughout the reproduction: exponential growth
// fitting for the TOP500 trend (Figure 1), bimodality detection and
// streak analysis for the real-time-scheduler study (Figure 5), and
// plain summaries for every measurement sweep.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoeffVar returns the coefficient of variation (stddev/mean), a
// scale-free noise measure. Returns 0 when the mean is 0.
func CoeffVar(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Min returns the smallest element of xs.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It copies and sorts the
// sample on every call; callers taking several quantiles of the same
// data should sort once and use SortedQuantile.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return SortedQuantile(s, q)
}

// SortedQuantile is Quantile's fast path: xs must already be sorted
// ascending. No copy, no sort — the repeated-quantile callers
// (Summarize, the collective-delay analyses) pay for one sort total.
func SortedQuantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	pos := q * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs. Min, Median and Max come from a
// single sorted copy instead of three independent scans and sorts.
func Summarize(xs []float64) Summary {
	sum := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    math.NaN(),
		Median: math.NaN(),
		Max:    math.NaN(),
	}
	if len(xs) == 0 {
		return sum
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum.Min = s[0]
	sum.Median = SortedQuantile(s, 0.5)
	sum.Max = s[len(s)-1]
	return sum
}

// LinearFit holds the result of an ordinary-least-squares line fit
// y = Intercept + Slope*x.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear fits a straight line to (xs, ys) by least squares.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	slope := sxy / sxx
	fit := LinearFit{
		Slope:     slope,
		Intercept: my - slope*mx,
	}
	if syy > 0 {
		// R^2 = explained variance fraction.
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	return fit, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// ExpFit holds an exponential growth fit y = A * G^x (G = growth factor
// per unit of x). Used for the TOP500 performance trend.
type ExpFit struct {
	A  float64 // value at x = 0
	G  float64 // growth factor per x unit
	R2 float64 // of the underlying log-linear fit
}

// FitExponential fits y = A*G^x by linear regression in log space.
// All ys must be positive.
func FitExponential(xs, ys []float64) (ExpFit, error) {
	logs := make([]float64, len(ys))
	for i, y := range ys {
		if y <= 0 {
			return ExpFit{}, errors.New("stats: exponential fit needs positive y")
		}
		logs[i] = math.Log(y)
	}
	lin, err := FitLinear(xs, logs)
	if err != nil {
		return ExpFit{}, err
	}
	return ExpFit{
		A:  math.Exp(lin.Intercept),
		G:  math.Exp(lin.Slope),
		R2: lin.R2,
	}, nil
}

// Predict evaluates the fitted exponential at x.
func (f ExpFit) Predict(x float64) float64 { return f.A * math.Pow(f.G, x) }

// SolveFor returns the x at which the fitted exponential reaches y.
func (f ExpFit) SolveFor(y float64) float64 {
	return math.Log(y/f.A) / math.Log(f.G)
}

// Modes is the result of a two-mode (bimodality) analysis.
type Modes struct {
	Bimodal   bool      // true when two well-separated modes were found
	Low, High float64   // mode centers (Low <= High)
	Ratio     float64   // High / Low
	Assign    []bool    // per-sample: true = high mode
	Sizes     [2]int    // number of samples in {low, high} mode
	Gap       float64   // separation / pooled stddev ("d" statistic)
	Centers   []float64 // convenience: {Low, High}
}

// TwoModes performs a 1-D two-means clustering of xs and reports whether
// the sample is meaningfully bimodal. This is the detector behind
// Figure 5: under real-time scheduling the bandwidth samples split into
// a "normal" and a "degraded" mode roughly 5x apart.
func TwoModes(xs []float64) Modes {
	m := Modes{Assign: make([]bool, len(xs))}
	if len(xs) < 4 {
		m.Low, m.High = Mean(xs), Mean(xs)
		m.Ratio = 1
		m.Centers = []float64{m.Low, m.High}
		return m
	}
	// Initialize centers at the 10th and 90th percentiles (one sort for
	// both), then Lloyd iterations; 1-D k-means converges in a handful
	// of steps.
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	lo, hi := SortedQuantile(sorted, 0.1), SortedQuantile(sorted, 0.9)
	if lo == hi {
		hi = lo + 1e-12
	}
	for iter := 0; iter < 64; iter++ {
		var sumLo, sumHi float64
		var nLo, nHi int
		for i, x := range xs {
			if math.Abs(x-lo) <= math.Abs(x-hi) {
				m.Assign[i] = false
				sumLo += x
				nLo++
			} else {
				m.Assign[i] = true
				sumHi += x
				nHi++
			}
		}
		if nLo == 0 || nHi == 0 {
			break
		}
		newLo, newHi := sumLo/float64(nLo), sumHi/float64(nHi)
		if newLo == lo && newHi == hi {
			break
		}
		lo, hi = newLo, newHi
	}
	if lo > hi {
		lo, hi = hi, lo
		for i := range m.Assign {
			m.Assign[i] = !m.Assign[i]
		}
	}
	m.Low, m.High = lo, hi
	m.Centers = []float64{lo, hi}
	var loVals, hiVals []float64
	for i, x := range xs {
		if m.Assign[i] {
			hiVals = append(hiVals, x)
		} else {
			loVals = append(loVals, x)
		}
	}
	m.Sizes = [2]int{len(loVals), len(hiVals)}
	if lo > 0 {
		m.Ratio = hi / lo
	}
	// Separation statistic: distance between centers over pooled spread.
	pooled := math.Sqrt((Variance(loVals)*float64(len(loVals)) +
		Variance(hiVals)*float64(len(hiVals))) / float64(len(xs)))
	if pooled == 0 {
		pooled = 1e-12
	}
	m.Gap = (hi - lo) / pooled
	// Declare bimodality when both modes are populated (>=5% each), the
	// centers are far apart relative to in-mode spread, and the ratio is
	// substantial.
	minFrac := 0.05 * float64(len(xs))
	m.Bimodal = float64(m.Sizes[0]) >= minFrac && float64(m.Sizes[1]) >= minFrac &&
		m.Gap > 4 && m.Ratio > 1.8
	return m
}

// Streaks describes maximal runs of "true" in a boolean sequence.
type Streaks struct {
	Count   int // number of maximal true-runs
	Longest int // length of the longest run
	Total   int // total number of true values
}

// FindStreaks scans marks and summarizes its true-runs. Figure 5b's
// observation — "all degraded measures occurred consecutively" — shows
// up as Count == 1 with Longest == Total.
func FindStreaks(marks []bool) Streaks {
	var s Streaks
	run := 0
	for _, m := range marks {
		if m {
			s.Total++
			run++
			if run > s.Longest {
				s.Longest = run
			}
			if run == 1 {
				s.Count++
			}
		} else {
			run = 0
		}
	}
	return s
}

// GeoMean returns the geometric mean of xs; all values must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean needs positive values")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}
