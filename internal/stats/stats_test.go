package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"montblanc/internal/xrand"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if sd := StdDev(xs); sd != 2 {
		t.Errorf("StdDev = %v, want 2", sd)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Variance(nil) != 0 {
		t.Error("Variance(nil) != 0")
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) || !math.IsNaN(Median(nil)) {
		t.Error("Min/Max/Median of empty should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Errorf("q.25 = %v", q)
	}
	// Interpolated quantile.
	if q := Quantile([]float64{0, 10}, 0.5); q != 5 {
		t.Errorf("interpolated median = %v", q)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.Slope, 2, 1e-12) || !almost(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !almost(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if !almost(fit.Predict(10), 21, 1e-12) {
		t.Errorf("Predict(10) = %v", fit.Predict(10))
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("expected error for single point")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
	if _, err := FitLinear([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("expected error for degenerate x")
	}
}

func TestFitExponentialExact(t *testing.T) {
	// y = 3 * 2^x
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(2, x)
	}
	fit, err := FitExponential(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(fit.A, 3, 1e-9) || !almost(fit.G, 2, 1e-9) {
		t.Errorf("fit = %+v", fit)
	}
	if !almost(fit.SolveFor(3*math.Pow(2, 7)), 7, 1e-9) {
		t.Errorf("SolveFor = %v", fit.SolveFor(3*math.Pow(2, 7)))
	}
}

func TestFitExponentialRejectsNonPositive(t *testing.T) {
	if _, err := FitExponential([]float64{1, 2}, []float64{1, -1}); err == nil {
		t.Error("expected error for non-positive y")
	}
}

func TestTwoModesClearlyBimodal(t *testing.T) {
	r := xrand.New(1)
	var xs []float64
	for i := 0; i < 30; i++ {
		xs = append(xs, 1000+10*r.NormFloat64()) // high mode
	}
	for i := 0; i < 12; i++ {
		xs = append(xs, 200+5*r.NormFloat64()) // degraded mode, ~5x lower
	}
	m := TwoModes(xs)
	if !m.Bimodal {
		t.Fatalf("expected bimodal, got %+v", m)
	}
	if !almost(m.Ratio, 5, 0.5) {
		t.Errorf("mode ratio = %v, want ~5", m.Ratio)
	}
	if m.Sizes[0] != 12 || m.Sizes[1] != 30 {
		t.Errorf("mode sizes = %v, want [12 30]", m.Sizes)
	}
}

func TestTwoModesUnimodal(t *testing.T) {
	r := xrand.New(2)
	var xs []float64
	for i := 0; i < 50; i++ {
		xs = append(xs, 100+3*r.NormFloat64())
	}
	if m := TwoModes(xs); m.Bimodal {
		t.Errorf("unimodal sample flagged bimodal: %+v", m)
	}
}

func TestTwoModesTiny(t *testing.T) {
	m := TwoModes([]float64{1, 2})
	if m.Bimodal {
		t.Error("tiny sample should not be bimodal")
	}
}

func TestFindStreaks(t *testing.T) {
	cases := []struct {
		marks []bool
		want  Streaks
	}{
		{[]bool{}, Streaks{}},
		{[]bool{false, false}, Streaks{}},
		{[]bool{true, true, true}, Streaks{Count: 1, Longest: 3, Total: 3}},
		{[]bool{true, false, true, true}, Streaks{Count: 2, Longest: 2, Total: 3}},
		{[]bool{false, true, false, true, false, true}, Streaks{Count: 3, Longest: 1, Total: 3}},
	}
	for i, c := range cases {
		if got := FindStreaks(c.marks); got != c.want {
			t.Errorf("case %d: got %+v, want %+v", i, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(g, 4, 1e-12) {
		t.Errorf("GeoMean = %v, want 4", g)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("expected error on zero value")
	}
}

// Property: mean of (xs + c) == mean(xs) + c and variance unchanged.
func TestMeanVarianceShiftProperty(t *testing.T) {
	f := func(seed uint64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		r := xrand.New(seed)
		n := 3 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
			ys[i] = xs[i] + shift
		}
		return almost(Mean(ys), Mean(xs)+shift, 1e-6) &&
			almost(Variance(ys), Variance(xs), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + r.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 1000
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// SortedQuantile must agree exactly with Quantile on pre-sorted data —
// it is the same interpolation minus the copy and sort.
func TestSortedQuantileMatchesQuantile(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 1000
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for q := -0.1; q <= 1.1; q += 0.07 {
			a, b := Quantile(xs, q), SortedQuantile(sorted, q)
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(SortedQuantile(nil, 0.5)) {
		t.Error("empty SortedQuantile should be NaN")
	}
}

// Summarize's single-sort path must match the individual statistics.
func TestSummarizeSingleSortMatches(t *testing.T) {
	xs := []float64{5, 1, 4, 1, 3}
	s := Summarize(xs)
	if s.Min != Min(xs) || s.Max != Max(xs) || s.Median != Median(xs) {
		t.Errorf("Summarize = %+v, want min/median/max %v/%v/%v",
			s, Min(xs), Median(xs), Max(xs))
	}
	// The input is not mutated (the sort works on a copy).
	if xs[0] != 5 || xs[4] != 3 {
		t.Errorf("Summarize mutated its input: %v", xs)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Min) || !math.IsNaN(empty.Median) || !math.IsNaN(empty.Max) {
		t.Errorf("empty Summarize = %+v", empty)
	}
}
