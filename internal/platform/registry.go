package platform

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// The process-wide platform registry. Built-in machines register during
// package init (builtin.go); user machines arrive through Register or
// LoadSpecFile. Reads vastly outnumber writes (every experiment looks
// platforms up), hence the RWMutex.
var (
	regMu sync.RWMutex
	specs = map[string]Spec{}
)

// Register adds a validated spec to the registry. Registering a name
// twice is an error: platform identity is global, and silently
// replacing a machine mid-suite would make experiment output depend on
// registration order.
func Register(s Spec) error {
	return registerBatch([]Spec{s})
}

// registerBatch validates and inserts a set of specs atomically: the
// whole batch is checked (validation, duplicates against the registry
// and within the batch) and inserted under one lock, so a bad or
// racing batch never half-applies. The registry stores deep copies,
// insulating it from later caller mutations.
func registerBatch(batch []Spec) error {
	for _, s := range batch {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	seen := map[string]bool{}
	for _, s := range batch {
		if _, dup := specs[s.Name]; dup || seen[s.Name] {
			return fmt.Errorf("platform: duplicate registration of %q", s.Name)
		}
		seen[s.Name] = true
	}
	for _, s := range batch {
		specs[s.Name] = s.clone()
	}
	return nil
}

// MustRegister registers a spec and panics on error — for package init
// of built-in machines, where a failure is a programming bug.
func MustRegister(s Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Lookup builds a fresh Platform for the named spec. Each call returns
// an independent value (see Spec.Build), so callers may mutate it.
func Lookup(name string) (*Platform, error) {
	s, ok := LookupSpec(name)
	if !ok {
		return nil, fmt.Errorf("platform: unknown platform %q (registered: %v)", name, Names())
	}
	return s.Build()
}

// MustLookup is Lookup for names known to be registered (the built-in
// machines); it panics on error.
func MustLookup(name string) *Platform {
	p, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return p
}

// LookupSpec returns the registered spec by name. The result is a deep
// copy: editing it (the copy-a-builtin-and-tweak pattern) never writes
// through into the registry.
func LookupSpec(name string) (Spec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := specs[name]
	if !ok {
		return Spec{}, false
	}
	return s.clone(), true
}

// Names returns every registered platform name in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(specs))
	for name := range specs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Specs returns every registered spec sorted by name.
func Specs() []Spec {
	names := Names()
	out := make([]Spec, 0, len(names))
	for _, n := range names {
		s, _ := LookupSpec(n)
		out = append(out, s)
	}
	return out
}

// ParseSpecs decodes one spec object or an array of spec objects from
// JSON. Unknown fields are rejected so a typo in a hand-written machine
// file fails loudly instead of silently defaulting.
func ParseSpecs(r io.Reader) ([]Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("platform: reading specs: %w", err)
	}
	decode := func(v interface{}) error {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			return err
		}
		// Trailing garbage after the value is a malformed file.
		if _, err := dec.Token(); err != io.EOF {
			return fmt.Errorf("trailing data after spec")
		}
		return nil
	}
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '[' {
		var many []Spec
		if err := decode(&many); err != nil {
			return nil, fmt.Errorf("platform: parsing specs: %w", err)
		}
		return many, nil
	}
	var one Spec
	if err := decode(&one); err != nil {
		return nil, fmt.Errorf("platform: parsing specs: %w", err)
	}
	return []Spec{one}, nil
}

// LoadSpecFile parses a JSON spec file (one spec object or an array)
// and registers every machine in it, returning the registered names in
// file order. The file applies atomically: validation failures and
// duplicate names abort before any spec from it is registered.
func LoadSpecFile(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("platform: %w", err)
	}
	defer f.Close()
	// ParseSpecs and registerBatch errors already carry the package
	// prefix; wrap with just the file path to avoid stuttering it.
	loaded, err := ParseSpecs(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(loaded) == 0 {
		return nil, fmt.Errorf("platform: %s: no specs in file", path)
	}
	if err := registerBatch(loaded); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	names := make([]string, 0, len(loaded))
	for _, s := range loaded {
		names = append(names, s.Name)
	}
	return names, nil
}
